package telemetry

import (
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the telemetry endpoint of one process: an HTTP listener
// serving the registry at /metrics and the Go profiling handlers under
// /debug/pprof/. It binds eagerly (so port 0 callers can read the
// assigned address before the run starts) and serves on its own mux —
// nothing is registered on http.DefaultServeMux, so embedding binaries
// keep their namespace clean.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server

	mu    sync.Mutex
	extra []func(io.Writer)
}

// NewServer binds addr (host:port; port 0 picks a free port) and starts
// serving /metrics from reg plus the pprof handlers in a background
// goroutine. Close shuts it down.
func NewServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// serveMetrics renders the registry, then any OnScrape appenders (the
// cluster rollup hangs off this).
func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
	s.mu.Lock()
	extra := s.extra
	s.mu.Unlock()
	for _, fn := range extra {
		fn(w)
	}
}

// OnScrape registers fn to append extra exposition text after the
// registry on every /metrics scrape — rank 0 of a cluster appends the
// per-rank rollup here. Appenders must emit valid exposition text for
// families not already in the registry.
func (s *Server) OnScrape(fn func(io.Writer)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.extra = append(s.extra, fn)
	s.mu.Unlock()
}

// Addr returns the bound listen address ("127.0.0.1:43live" form) — what
// callers print, and what tests dial after binding port 0.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Registry returns the registry this server exposes.
func (s *Server) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Close stops the listener and in-flight handlers. Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
