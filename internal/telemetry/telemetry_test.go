package telemetry

import (
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCounterExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "A test counter.")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	var b strings.Builder
	reg.WriteText(&b)
	want := "# HELP test_total A test counter.\n# TYPE test_total counter\ntest_total 42\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestLabelRenderingAndEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("g", "", []Label{{"b", "x\"y\\z\nw"}, {"a", "1"}}, func() float64 { return 2.5 })
	var b strings.Builder
	reg.WriteText(&b)
	// Labels sorted by name, value escaped.
	want := `g{a="1",b="x\"y\\z\nw"} 2.5`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("exposition %q missing %q", b.String(), want)
	}
}

func TestSummaryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.SummaryFunc("lat_seconds", "h", []Label{{"rank", "3"}}, func() Summary {
		return Summary{
			Quantiles: []Quantile{{0.5, 0.001}, {0.99, 0.25}},
			Sum:       1.5,
			Count:     7,
		}
	})
	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds summary\n",
		`lat_seconds{rank="3",quantile="0.5"} 0.001`,
		`lat_seconds{rank="3",quantile="0.99"} 0.25`,
		`lat_seconds_sum{rank="3"} 1.5`,
		`lat_seconds_count{rank="3"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSpecialFloatValues(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("nan", "", nil, func() float64 { return math.NaN() })
	reg.GaugeFunc("pinf", "", nil, func() float64 { return math.Inf(1) })
	reg.GaugeFunc("ninf", "", nil, func() float64 { return math.Inf(-1) })
	var b strings.Builder
	reg.WriteText(&b)
	for _, want := range []string{"nan NaN\n", "pinf +Inf\n", "ninf -Inf\n"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("bad metric name", func() {
		NewRegistry().Counter("bad-name", "")
	})
	expectPanic("bad label name", func() {
		NewRegistry().Counter("ok", "", Label{"bad-label", "v"})
	})
	expectPanic("duplicate series", func() {
		r := NewRegistry()
		r.Counter("dup", "", Label{"a", "1"})
		r.Counter("dup", "", Label{"a", "1"})
	})
	expectPanic("type mismatch", func() {
		r := NewRegistry()
		r.Counter("m", "")
		r.GaugeFunc("m", "", []Label{{"a", "1"}}, func() float64 { return 0 })
	})
	// Same family, different labels: fine.
	r := NewRegistry()
	r.Counter("ok_total", "", Label{"a", "1"})
	r.Counter("ok_total", "", Label{"a", "2"})
}

func TestValidNames(t *testing.T) {
	for _, tc := range []struct {
		name string
		ok   bool
	}{
		{"up", true}, {"go_goroutines", true}, {"ns:sub_total", true},
		{"_lead", true}, {"0lead", false}, {"", false}, {"a-b", false}, {"a b", false},
	} {
		if got := validMetricName(tc.name); got != tc.ok {
			t.Errorf("validMetricName(%q) = %v, want %v", tc.name, got, tc.ok)
		}
	}
	if validLabelName("a:b") {
		t.Error("label names must not contain colons")
	}
}

// TestServerScrape binds port 0, scrapes /metrics over real HTTP, and
// checks the exposition plus the pprof index and OnScrape appenders.
func TestServerScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("scraped_total", "Scrapes observed.")
	c.Add(5)
	RegisterRuntime(reg)
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.OnScrape(func(w io.Writer) {
		io.WriteString(w, "# TYPE extra_gauge gauge\nextra_gauge 1\n")
	})

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := get("/metrics")
	for _, want := range []string{
		"scraped_total 5\n",
		"# TYPE go_goroutines gauge\n",
		"go_memstats_heap_alloc_bytes",
		"extra_gauge 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Error("pprof index not served")
	}
}

// TestSamplerBridge runs a real tracer + sampler and checks the uts_*
// projection end to end, including the per-kind label vocabulary.
func TestSamplerBridge(t *testing.T) {
	tr := obs.New(2, 64)
	l0 := tr.Lane(0)
	l0.Rec(obs.KindStealRequest, 1, 0)
	l0.Rec(obs.KindChunkTransfer, 1, 12)
	l0.AddNodes(100)
	tr.Lane(1).Rec(obs.KindStealRequest, 0, 0)
	tr.Lane(1).Rec(obs.KindStealFail, 0, 0)

	s := obs.NewSampler(tr)
	s.Sample()

	reg := NewRegistry()
	RegisterSampler(reg, s)
	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"uts_nodes_total 100\n",
		"uts_events_total 4\n",
		"uts_steals_total 1\n",
		"uts_steal_failures_total 1\n",
		`uts_events_kind_total{kind="chunk-transfer"} 1`,
		`uts_events_kind_total{kind="steal-fail"} 1`,
		"uts_steal_latency_seconds_count 2\n",
		"uts_chunk_size_nodes_sum 12\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Nil sampler: families registered, everything reads zero.
	nilReg := NewRegistry()
	RegisterSampler(nilReg, nil)
	b.Reset()
	nilReg.WriteText(&b)
	if !strings.Contains(b.String(), "uts_nodes_total 0\n") {
		t.Error("nil-sampler projection should read zero")
	}
}

// TestSamplerWindowedRates checks that a second sample closes a window
// with positive rates.
func TestSamplerWindowedRates(t *testing.T) {
	tr := obs.New(1, 64)
	s := obs.NewSampler(tr)
	s.Sample()
	tr.Lane(0).AddNodes(1000)
	tr.Lane(0).Rec(obs.KindRelease, -1, 1)
	time.Sleep(5 * time.Millisecond)
	st := s.Sample()
	if st.NodesPerSec <= 0 {
		t.Errorf("NodesPerSec = %v, want > 0", st.NodesPerSec)
	}
	if st.EventsPerSec <= 0 {
		t.Errorf("EventsPerSec = %v, want > 0", st.EventsPerSec)
	}
	if st.Window <= 0 {
		t.Errorf("Window = %v, want > 0", st.Window)
	}
}
