// Package telemetry is the repo's stdlib-only metrics plane: a small
// Prometheus-compatible registry (counters, gauges, summaries, all
// pull-based), a text-exposition /metrics handler, /debug/pprof wiring,
// Go runtime gauges, and a bridge that projects an obs.Sampler's live
// scheduler statistics into metric families.
//
// It deliberately implements only the slice of the Prometheus text
// exposition format (version 0.0.4) this project needs — # HELP / # TYPE
// headers, label escaping, counter/gauge/summary sample lines — so the
// repo stays dependency-free while remaining scrapeable by a stock
// Prometheus server or a curl | grep smoke test.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric. Names must match
// the Prometheus label grammar; values may be anything (they are escaped
// on exposition).
type Label struct {
	Name, Value string
}

// Summary is the snapshot a summary metric exposes: pre-computed
// quantiles plus the cumulative sum and count. Following Prometheus
// summary semantics, quantiles may cover a recent window while Sum and
// Count are cumulative since process start.
type Summary struct {
	// Quantiles maps q in [0,1] to the estimated value, exposed as
	// {quantile="0.5"}-style labeled samples in ascending q order.
	Quantiles []Quantile
	Sum       float64
	Count     int64
}

// Quantile is one (q, value) pair of a Summary.
type Quantile struct {
	Q, V float64
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All registration methods panic on invalid or
// duplicate registrations (programmer errors, caught at startup); the
// collect path only reads. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family is one metric name: HELP/TYPE header plus its labeled series.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// series is one labeled time series; collect writes its sample line(s).
type series struct {
	labels  string // pre-rendered `{k="v",…}`, or ""
	collect func(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter is a monotonically increasing int64 metric. Concurrency-safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %d\n", n, l, c.Value())
	})
	return c
}

// CounterFunc registers a counter whose value is pulled from fn at scrape
// time — the shape used to project the Sampler's monotone tallies.
func (r *Registry) CounterFunc(name, help string, labels []Label, fn func() float64) {
	r.register(name, help, "counter", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(fn()))
	})
}

// GaugeFunc registers a gauge whose value is pulled from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, labels []Label, fn func() float64) {
	r.register(name, help, "gauge", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(fn()))
	})
}

// SummaryFunc registers a summary whose quantiles/sum/count are pulled
// from fn at scrape time.
func (r *Registry) SummaryFunc(name, help string, labels []Label, fn func() Summary) {
	r.register(name, help, "summary", labels, func(w io.Writer, n, l string) {
		s := fn()
		for _, q := range s.Quantiles {
			fmt.Fprintf(w, "%s%s %s\n", n, mergeLabels(l, Label{"quantile", trimFloat(q.Q)}), formatFloat(q.V))
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", n, l, formatFloat(s.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", n, l, s.Count)
	})
}

// register adds one series under the named family, creating the family on
// first use and enforcing name validity, help/type consistency, and
// series uniqueness.
func (r *Registry) register(name, help, typ string, labels []Label, collect func(io.Writer, string, string)) {
	if !validMetricName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic("telemetry: invalid label name " + strconv.Quote(l.Name) + " on " + name)
		}
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic("telemetry: metric " + name + " re-registered as " + typ + " (was " + f.typ + ")")
	}
	if _, dup := f.byLabels[ls]; dup {
		panic("telemetry: duplicate series " + name + ls)
	}
	s := &series{labels: ls, collect: collect}
	f.byLabels[ls] = s
	f.series = append(f.series, s)
}

// WriteText renders every family in registration order in the Prometheus
// text exposition format (0.0.4).
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.collect(w, f.name, s.labels)
		}
	}
}

// ServeHTTP serves the exposition as text/plain; version=0.0.4 — mount
// this (or a Server) at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteText(w)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" || strings.ContainsRune(name, ':') {
		return false
	}
	return validMetricName(name)
}

// renderLabels renders `{k="v",…}` with labels sorted by name ("" when
// empty), escaping values per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices extra labels into an already-rendered label string
// (used to add the quantile label to summary sample lines).
func mergeLabels(rendered string, extra ...Label) string {
	add := renderLabels(extra)
	if rendered == "" {
		return add
	}
	if add == "" {
		return rendered
	}
	return rendered[:len(rendered)-1] + "," + add[1:]
}

// escapeLabelValue escapes backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value: integers without an exponent, NaN
// and infinities in the exposition spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// trimFloat renders a quantile label value ("0.5", "0.99").
func trimFloat(q float64) string {
	return strconv.FormatFloat(q, 'g', -1, 64)
}
