package telemetry

import (
	"repro/internal/obs"
	"repro/internal/policy"
)

// RegisterSampler projects a live obs.Sampler into reg as the uts_*
// metric families. Every function pulls from Sampler.Stats() — the last
// periodic fold — so scrapes never trigger a fold themselves and the
// sampler's windowing cadence stays owned by its own goroutine. Values
// follow Prometheus conventions: durations in seconds, monotone tallies
// as counters, windowed rates and fractions as gauges, latency as a
// summary whose quantiles cover the last sample window while _sum/_count
// are cumulative.
//
// Nil-safe: with a nil sampler the families are still registered (so the
// exposition shape is stable) and read as zero.
func RegisterSampler(reg *Registry, s *obs.Sampler) {
	stat := func(f func(obs.LiveStats) float64) func() float64 {
		return func() float64 { return f(s.Stats()) }
	}
	reg.CounterFunc("uts_nodes_total", "Tree nodes expanded.", nil,
		stat(func(st obs.LiveStats) float64 { return float64(st.Nodes) }))
	reg.CounterFunc("uts_events_total", "Protocol events recorded across all PE lanes.", nil,
		stat(func(st obs.LiveStats) float64 { return float64(st.Events) }))
	reg.CounterFunc("uts_events_missed_total", "Events overwritten before the sampler read them.", nil,
		stat(func(st obs.LiveStats) float64 { return float64(st.Missed) }))
	reg.CounterFunc("uts_steals_total", "Successful steals (chunk transfers).", nil,
		stat(func(st obs.LiveStats) float64 { return float64(st.Steals) }))
	reg.CounterFunc("uts_steal_failures_total", "Steal attempts that came back empty.", nil,
		stat(func(st obs.LiveStats) float64 { return float64(st.FailedSteals) }))
	reg.CounterFunc("uts_probes_total", "Work-availability probes answered.", nil,
		stat(func(st obs.LiveStats) float64 { return float64(st.Probes) }))
	reg.CounterFunc("uts_releases_total", "Chunks released local to shared.", nil,
		stat(func(st obs.LiveStats) float64 { return float64(st.Releases) }))
	reg.CounterFunc("uts_reacquires_total", "Chunks reacquired shared to local.", nil,
		stat(func(st obs.LiveStats) float64 { return float64(st.Reacquires) }))

	for k := 0; k < obs.NumKinds; k++ {
		kind := obs.Kind(k)
		reg.CounterFunc("uts_events_kind_total", "Events recorded by kind.",
			[]Label{{"kind", kind.String()}},
			stat(func(st obs.LiveStats) float64 { return float64(st.Kinds[kind]) }))
	}

	reg.GaugeFunc("uts_events_per_second", "Event rate over the last sample window.", nil,
		stat(func(st obs.LiveStats) float64 { return st.EventsPerSec }))
	reg.GaugeFunc("uts_nodes_per_second", "Node expansion rate over the last sample window.", nil,
		stat(func(st obs.LiveStats) float64 { return st.NodesPerSec }))
	reg.GaugeFunc("uts_steals_per_second", "Steal rate over the last sample window.", nil,
		stat(func(st obs.LiveStats) float64 { return st.StealsPerSec }))
	reg.GaugeFunc("uts_virtual_time_seconds", "Newest virtual (DES) timestamp observed; 0 for real-time runs.", nil,
		stat(func(st obs.LiveStats) float64 { return st.Virt.Seconds() }))

	states := []string{"working", "searching", "stealing", "idle"}
	for i, name := range states {
		idx := i
		reg.GaugeFunc("uts_state_dwell_fraction", "Fraction of observed PE time in each Figure-1 state over the last window.",
			[]Label{{"state", name}},
			stat(func(st obs.LiveStats) float64 { return st.DwellFrac[idx] }))
	}

	reg.SummaryFunc("uts_steal_latency_seconds", "Steal request-to-outcome round trip. Quantiles cover the last sample window; sum/count are cumulative.", nil,
		func() Summary {
			st := s.Stats()
			return Summary{
				Quantiles: []Quantile{
					{0.5, float64(st.StealLatency.Quantile(0.50)) / 1e9},
					{0.95, float64(st.StealLatency.Quantile(0.95)) / 1e9},
					{0.99, float64(st.StealLatency.Quantile(0.99)) / 1e9},
				},
				Sum:   float64(st.StealLatencyCum.Sum()) / 1e9,
				Count: st.StealLatencyCum.Count(),
			}
		})
	reg.SummaryFunc("uts_chunk_size_nodes", "Nodes obtained per successful steal (cumulative).", nil,
		func() Summary {
			st := s.Stats()
			return Summary{
				Quantiles: []Quantile{
					{0.5, float64(st.ChunkSize.Quantile(0.50))},
					{0.95, float64(st.ChunkSize.Quantile(0.95))},
					{0.99, float64(st.ChunkSize.Quantile(0.99))},
				},
				Sum:   float64(st.ChunkSize.Sum()),
				Count: st.ChunkSize.Count(),
			}
		})
}

// RegisterPolicy projects an adaptive controller set into reg as the
// uts_policy_* gauge families. Every value comes from Set.Snap() — the
// lock-free atomic knob mirrors — so scrapes never contend with the
// workers' adaptation windows. Gauges, not counters: the chunk spread
// and steal-half population move in both directions as the controllers
// track the workload.
//
// Nil-safe: with a nil set the families are still registered (stable
// exposition shape) and read as zero.
func RegisterPolicy(reg *Registry, ps *policy.Set) {
	snap := func(f func(policy.Snapshot) float64) func() float64 {
		return func() float64 { return f(ps.Snap()) }
	}
	reg.GaugeFunc("uts_policy_pes", "PEs under adaptive control (0 = controllers off).", nil,
		snap(func(sn policy.Snapshot) float64 { return float64(sn.PEs) }))
	reg.GaugeFunc("uts_policy_windows_total", "Adaptation windows closed across all PEs.", nil,
		snap(func(sn policy.Snapshot) float64 { return float64(sn.Windows) }))
	reg.GaugeFunc("uts_policy_chunk_min", "Smallest current chunk across PEs.", nil,
		snap(func(sn policy.Snapshot) float64 { return float64(sn.ChunkMin) }))
	reg.GaugeFunc("uts_policy_chunk_max", "Largest current chunk across PEs.", nil,
		snap(func(sn policy.Snapshot) float64 { return float64(sn.ChunkMax) }))
	reg.GaugeFunc("uts_policy_chunk_mean", "Mean current chunk across PEs.", nil,
		snap(func(sn policy.Snapshot) float64 { return sn.ChunkMean }))
	reg.GaugeFunc("uts_policy_poll_min", "Smallest current poll interval across PEs (mpi-ws).", nil,
		snap(func(sn policy.Snapshot) float64 { return float64(sn.PollMin) }))
	reg.GaugeFunc("uts_policy_poll_max", "Largest current poll interval across PEs (mpi-ws).", nil,
		snap(func(sn policy.Snapshot) float64 { return float64(sn.PollMax) }))
	reg.GaugeFunc("uts_policy_steal_half_on", "PEs currently stealing half instead of k.", nil,
		snap(func(sn policy.Snapshot) float64 { return float64(sn.StealHalfOn) }))
}
