package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntime adds the standard Go runtime gauges to reg: goroutine
// count, heap usage, and GC activity. ReadMemStats stops the world for
// microseconds, so the stats are cached for a second between scrapes —
// invisible at Prometheus cadence, and it keeps a curl loop from turning
// the telemetry plane into a perturbation source.
func RegisterRuntime(reg *Registry) {
	var (
		mu   sync.Mutex
		ms   runtime.MemStats
		last time.Time
	)
	mem := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			if now := time.Now(); now.Sub(last) > time.Second {
				runtime.ReadMemStats(&ms)
				last = now
			}
			return f(&ms)
		}
	}
	reg.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	reg.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	reg.GaugeFunc("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.Sys) }))
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	reg.CounterFunc("go_gc_pause_seconds_total", "Total GC stop-the-world pause time.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
}
