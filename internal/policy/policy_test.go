package policy

import (
	"strings"
	"testing"
)

// win is the test window length in nanoseconds: long enough that steal
// latencies fit inside it, short enough that a single NoteNodes call can
// close it at a chosen timestamp.
const win = 1000

func newCtl(t *testing.T, cfg Config, base Base) (*Set, *Controller) {
	t.Helper()
	if cfg.Window == 0 {
		cfg.Window = win
	}
	s := NewSet(&cfg, base, 1)
	if s == nil {
		t.Fatal("NewSet returned nil for a non-nil config")
	}
	return s, s.Controller(0)
}

// fail books one failed steal attempt of the given latency.
func fail(c *Controller, at, lat int64) {
	c.StealBegin(at)
	c.StealEnd(false, 0, at+lat)
}

// ok books one successful steal attempt delivering nodes.
func ok(c *Controller, at, lat int64, nodes int) {
	c.StealBegin(at)
	c.StealEnd(true, nodes, at+lat)
}

func TestNewSetNil(t *testing.T) {
	if s := NewSet(nil, Base{Chunk: 16}, 4); s != nil {
		t.Fatalf("nil config must disable adaptation, got %+v", s)
	}
	var s *Set
	if c := s.Controller(0); c != nil {
		t.Errorf("nil Set.Controller = %+v, want nil", c)
	}
	if n := s.PEs(); n != 0 {
		t.Errorf("nil Set.PEs = %d, want 0", n)
	}
	if sum := s.Summary(); sum != nil {
		t.Errorf("nil Set.Summary = %+v, want nil", sum)
	}
	if sn := s.Snap(); sn != (Snapshot{}) {
		t.Errorf("nil Set.Snap = %+v, want zero", sn)
	}
	if got := (*Summary)(nil).String(); got != "" {
		t.Errorf("nil Summary.String = %q, want empty", got)
	}
}

func TestBaseKnobs(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16, Poll: 8, StealHalf: true})
	if c.Chunk() != 16 || c.Poll() != 8 || !c.StealHalf() || c.NodeSize() != 1 {
		t.Errorf("base knobs not adopted: k=%d poll=%d half=%v tier=%d",
			c.Chunk(), c.Poll(), c.StealHalf(), c.NodeSize())
	}
}

func TestHierTier(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16, NodeSize: 8, HierPays: true})
	if c.NodeSize() != 8 {
		t.Errorf("hier-pays tier = %d, want 8", c.NodeSize())
	}
	_, c = newCtl(t, Config{}, Base{Chunk: 16, NodeSize: 8, HierPays: false})
	if c.NodeSize() != 1 {
		t.Errorf("flat-model tier = %d, want 1", c.NodeSize())
	}
}

// TestFailHeavyHalves: a window where every attempt fails halves the
// chunk (work withheld below the release threshold) and flips steal-half
// on (scarcity hysteresis).
func TestFailHeavyHalves(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16})
	for i := int64(0); i < 4; i++ {
		fail(c, i*20, 10)
	}
	c.NoteNodes(10, 0, win)
	if c.Chunk() != 8 {
		t.Errorf("all-fail window: chunk = %d, want 8", c.Chunk())
	}
	if !c.StealHalf() {
		t.Error("all-fail window must turn steal-half on")
	}
}

// TestShareDoubles: successful steals whose latency fills most of the
// window (share > 0.5) double the chunk — the slow-start escape from the
// far-left of the Figure-4 curve.
func TestShareDoubles(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16})
	for i := int64(0); i < 4; i++ {
		ok(c, i*220, 200, 5)
	}
	c.NoteNodes(10, 0, win)
	if c.Chunk() != 32 {
		t.Errorf("share>0.5 window: chunk = %d, want 32", c.Chunk())
	}
}

// TestShareAdditive: moderate steal overhead (0.15 < share <= 0.5) grows
// the chunk additively by k/4.
func TestShareAdditive(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16})
	for i := int64(0); i < 4; i++ {
		ok(c, i*100, 50, 5)
	}
	c.NoteNodes(10, 0, win)
	if c.Chunk() != 20 {
		t.Errorf("moderate-share window: chunk = %d, want 16+4", c.Chunk())
	}
}

// TestCalmHolds: cheap, successful steals (share ~0, no failures) leave
// every knob alone — the controller must not chatter on the plateau.
func TestCalmHolds(t *testing.T) {
	s, c := newCtl(t, Config{}, Base{Chunk: 16})
	for i := int64(0); i < 4; i++ {
		ok(c, i*10, 1, 5)
	}
	c.NoteNodes(10, 0, win)
	if c.Chunk() != 16 {
		t.Errorf("calm window: chunk = %d, want 16", c.Chunk())
	}
	sum := s.Summary()
	if sum.Windows != 1 || sum.Changes != 0 {
		t.Errorf("calm window: windows=%d changes=%d, want 1/0", sum.Windows, sum.Changes)
	}
}

// TestStealHalfHysteresis: scarcity turns steal-half on; it stays on
// through a middling window and reverts to the base only once the failed
// fraction drops below the lower threshold.
func TestStealHalfHysteresis(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16})
	for i := int64(0); i < 4; i++ {
		fail(c, i*20, 1)
	}
	c.NoteNodes(10, 0, win)
	if !c.StealHalf() {
		t.Fatal("scarcity must turn steal-half on")
	}
	// Middling window: 2 of 4 fail (0.2 < 0.5 < 0.6) — no change.
	at := int64(win)
	fail(c, at+10, 1)
	fail(c, at+30, 1)
	ok(c, at+50, 1, 5)
	ok(c, at+70, 1, 5)
	c.NoteNodes(10, 0, 2*win)
	if !c.StealHalf() {
		t.Error("hysteresis: steal-half must hold through a middling window")
	}
	// Calm window: all succeed — revert to base (steal-k).
	at = 2 * win
	for i := int64(0); i < 4; i++ {
		ok(c, at+i*20, 1, 5)
	}
	c.NoteNodes(10, 0, 3*win)
	if c.StealHalf() {
		t.Error("calm window must revert steal-half to the base selection")
	}
}

// TestPollAdapts: an all-miss drain window doubles the poll interval, an
// all-hit window halves it back.
func TestPollAdapts(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16, Poll: 8})
	c.NoteNodes(0, 0, 0) // open the window at t=0, as the scheduler wiring does
	for i := 0; i < 4; i++ {
		c.NotePoll(0)
	}
	c.NoteNodes(1, 0, win)
	if c.Poll() != 16 {
		t.Errorf("all-miss window: poll = %d, want 16", c.Poll())
	}
	for i := 0; i < 4; i++ {
		c.NotePoll(1)
	}
	c.NoteNodes(1, 0, 2*win)
	if c.Poll() != 8 {
		t.Errorf("all-hit window: poll = %d, want 8", c.Poll())
	}
}

// TestEvidenceExtends: a window with too few attempts extends instead of
// acting, and the carried-over evidence counts toward the next close.
func TestEvidenceExtends(t *testing.T) {
	s, c := newCtl(t, Config{}, Base{Chunk: 16})
	fail(c, 0, 10)
	fail(c, 50, 10)
	c.NoteNodes(10, 0, win)
	if c.Chunk() != 16 || s.Summary().Windows != 0 {
		t.Fatalf("2 attempts must extend, not act: k=%d windows=%d",
			c.Chunk(), s.Summary().Windows)
	}
	fail(c, win+10, 10)
	fail(c, win+50, 10)
	c.NoteNodes(10, 0, 2*win)
	if c.Chunk() != 8 {
		t.Errorf("accumulated evidence (4 fails over 2 windows) must halve: k=%d", c.Chunk())
	}
}

// TestStaleDiscard: evidence that sits below the gate for staleWindows
// extensions is discarded, so it cannot combine with attempts from a
// much later epoch.
func TestStaleDiscard(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16})
	fail(c, 0, 10)
	fail(c, 20, 10)
	fail(c, 40, 10)
	for i := int64(1); i <= staleWindows; i++ {
		c.NoteNodes(1, 0, i*win)
	}
	// The 3 early fails were discarded on the staleWindows-th close; one
	// more attempt must not reach the 4-attempt gate.
	fail(c, staleWindows*win+10, 10)
	c.NoteNodes(1, 0, (staleWindows+1)*win)
	if c.Chunk() != 16 {
		t.Errorf("stale evidence acted: k=%d, want 16", c.Chunk())
	}
}

// TestDeniedHalves: victim-side denials alone (no attempts of our own)
// satisfy the evidence gate and halve the chunk.
func TestDeniedHalves(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16})
	c.NoteNodes(0, 0, 0) // open the window at t=0
	for i := 0; i < 4; i++ {
		c.NoteDenied()
	}
	c.NoteNodes(10, 0, win)
	if c.Chunk() != 8 {
		t.Errorf("denied-heavy window: chunk = %d, want 8", c.Chunk())
	}
}

// TestStarvationEscape: a working PE with no steal traffic in either
// role and a stack that never reaches the 2k release threshold jumps k
// down to depthMax/4 in a single window — the only signal-free escape
// from the serialized k-too-big regime.
func TestStarvationEscape(t *testing.T) {
	s, c := newCtl(t, Config{}, Base{Chunk: 64})
	c.NoteNodes(0, 0, 0) // open the window at t=0
	c.NoteNodes(100, 10, win)
	if c.Chunk() != 2 {
		t.Errorf("starved window: chunk = %d, want depthMax/4 = 2", c.Chunk())
	}
	sum := s.Summary()
	if sum.Windows != 1 || sum.Changes != 1 {
		t.Errorf("starved window: windows=%d changes=%d, want 1/1", sum.Windows, sum.Changes)
	}
	// A deep stack (at or above 2k) is not starved: no move.
	_, c = newCtl(t, Config{}, Base{Chunk: 8})
	c.NoteNodes(0, 0, 0)
	c.NoteNodes(100, 40, win)
	if c.Chunk() != 8 {
		t.Errorf("deep-stack window must hold: chunk = %d, want 8", c.Chunk())
	}
}

// TestBoundsClamp: explicit bounds cap both the starting chunk and every
// adaptation step.
func TestBoundsClamp(t *testing.T) {
	_, c := newCtl(t, Config{MinChunk: 4, MaxChunk: 32}, Base{Chunk: 64})
	if c.Chunk() != 32 {
		t.Fatalf("start clamped: k=%d, want 32", c.Chunk())
	}
	for w := int64(0); w < 6; w++ {
		at := w * win
		for i := int64(0); i < 4; i++ {
			fail(c, at+i*20, 10)
		}
		c.NoteNodes(10, 0, at+win)
	}
	if c.Chunk() != 4 {
		t.Errorf("halving must stop at MinChunk: k=%d, want 4", c.Chunk())
	}
}

// TestSummaryAndSnap: the post-run summary and the live snapshot agree
// on what the controllers did.
func TestSummaryAndSnap(t *testing.T) {
	s, c := newCtl(t, Config{}, Base{Chunk: 16})
	for i := int64(0); i < 4; i++ {
		fail(c, i*20, 10)
	}
	c.NoteNodes(10, 0, win)

	sum := s.Summary()
	if sum.PEs != 1 || sum.ChunkStart != 16 || sum.ChunkFinalMin != 8 ||
		sum.ChunkFinalMax != 8 || sum.ChunkLo != 8 || sum.ChunkHi != 16 {
		t.Errorf("summary fields wrong: %+v", sum)
	}
	if len(sum.Trajectory) < 2 {
		t.Errorf("PE 0 must record a trajectory, got %d samples", len(sum.Trajectory))
	}
	if !strings.Contains(sum.String(), "adaptive: chunk 16 -> 8.0") {
		t.Errorf("summary line wrong: %q", sum.String())
	}

	sn := s.Snap()
	if sn.PEs != 1 || sn.ChunkMin != 8 || sn.ChunkMax != 8 || sn.Windows != 1 {
		t.Errorf("snapshot wrong: %+v", sn)
	}
}

// TestStealEndUnpaired: a StealEnd with no matching StealBegin is
// ignored rather than corrupting the window counters.
func TestStealEndUnpaired(t *testing.T) {
	_, c := newCtl(t, Config{}, Base{Chunk: 16})
	c.StealEnd(true, 100, 50)
	c.NoteNodes(10, 0, win)
	if c.Chunk() != 16 {
		t.Errorf("unpaired StealEnd changed the chunk: k=%d", c.Chunk())
	}
}
