// Package policy implements per-PE closed-loop controllers for the three
// steal-tuning knobs the paper fixes statically: the chunk size k
// (Section 4.2.1's manually-swept granularity), steal-half vs steal-k
// selection, and the mpi-ws poll interval — plus a hierarchical
// victim-selection tier driven by the latency model rather than by the
// operator. Controllers consume windowed feedback (steal latency
// quantiles via obs.Histogram.DeltaFrom, failed-steal rate, delivered
// chunk sizes, poll hit rate) and adjust their PE's knobs between
// windows, so a deployment started from a bad static configuration walks
// itself onto the Figure-4 plateau instead of needing a uts-tune re-sweep.
//
// The package is deliberately clockless: every observation carries a
// caller-supplied timestamp in nanoseconds, which is wall time under the
// real schedulers and virtual time under the DES. That keeps the DES
// variant deterministic (and detcheck-clean) and makes adaptive sweeps
// meaningful at 100K+ simulated PEs.
//
// Concurrency contract: a Controller is owned by its PE — all Note*/knob
// methods are owner-only, unsynchronized, and allocation-free on the hot
// path. The only cross-thread reads are the atomic knob mirrors used by
// the telemetry gauges, refreshed on window close (cold path).
package policy

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config enables adaptation and bounds it. The zero value means "adapt
// with defaults derived from the base configuration": callers that want
// fixed behavior pass a nil *Config instead.
type Config struct {
	// Window is the feedback interval between adaptation decisions, in
	// the caller's time base (wall for real runs, virtual for the DES).
	// <= 0 picks a default from the base configuration: the wiring in
	// internal/core uses 500µs of wall time, the DES derives a window
	// from the machine model's message costs.
	Window time.Duration

	// MinChunk/MaxChunk bound the adapted chunk size. Zero values derive
	// bounds from the base chunk: [1, max(128, 8·base)]. The range is
	// deliberately wide — a deliberately-bad start (k=1 on a machine
	// whose plateau sits at 16) must be able to reach the plateau.
	MinChunk, MaxChunk int

	// MinPoll/MaxPoll bound the adapted mpi-ws poll interval. Zero
	// values derive [max(1, base/4), base·8].
	MinPoll, MaxPoll int
}

// Base is the static configuration the controllers start from and adapt
// around, resolved by the scheduler wiring after its own defaulting.
type Base struct {
	Chunk     int  // resolved Options.Chunk / Config.Chunk
	Poll      int  // resolved PollInterval (mpi-ws); 0 elsewhere
	StealHalf bool // base variant steals half (upc-term-rapdif) vs k
	NodeSize  int  // configured node width; <= 1 means no topology
	// HierPays reports the latency model's verdict on the intra-node
	// tier: true when an intra-node steal round-trip is at most half the
	// remote one, so preferring same-node victims is worth the narrower
	// victim pool. Computed once by the wiring (it has both models).
	HierPays bool
}

// Controller tuning constants. The decision rule is slow-start plus AIMD
// (DESIGN.md §15): multiplicative moves while the signal is extreme,
// additive fine-tuning near the plateau, with hysteresis from the
// evidence gate.
const (
	// minAttempts is the evidence gate: a window must contain at least
	// this many steal attempts (successful or failed) before the chunk
	// rule may act. Windows without evidence extend rather than reset.
	minAttempts = 4
	// staleWindows caps how long an evidence-starved window may extend
	// before its counters are discarded as stale.
	staleWindows = 8
	// failHi is the failed-steal fraction above which the chunk is
	// halved: probes keep finding victims below their release threshold,
	// the signature of work withheld by a too-large k.
	failHi = 0.5
	// shareHi / shareExtreme bound the fraction of the window this PE
	// spent inside steal attempts (the windowed latency histogram's sum
	// over the window length). Above shareHi the chunk grows additively;
	// above shareExtreme it doubles (slow-start region, the far left of
	// Figure 4 where steal traffic swamps useful work). Share is the
	// right increase signal because it self-quenches: once chunks are
	// coarse enough that stealing is occasional, the share collapses and
	// the chunk stops climbing — no oscillation around the plateau.
	shareHi      = 0.15
	shareExtreme = 0.5
	// halfOn/halfOff are the failed-steal hysteresis for the steal-half
	// toggle: scarcity turns it on, calm turns it back to the base.
	halfOn  = 0.6
	halfOff = 0.2
	// pollLo/pollHi bound the drain hit rate: below pollLo the mpi-ws
	// poll interval doubles (polling too often), above pollHi it halves.
	pollLo = 0.02
	pollHi = 0.2
	// trajCap bounds the recorded knob trajectory per tracked PE.
	trajCap = 128
)

// Sample is one point of a knob trajectory: the knob values holding from
// AtNS onward.
type Sample struct {
	AtNS      int64
	Chunk     int
	Poll      int
	StealHalf bool
}

// Controller adapts one PE's knobs. All methods are owner-only; the
// zero-value Controller is not usable — obtain one from a Set.
type Controller struct {
	cfg  Config
	base Base

	// Knobs, read by the owning PE on its hot path.
	k        int
	half     bool
	poll     int
	nodeSize int // victim-walk tier: base.NodeSize when hier pays, else 1

	// Window accounting (owner-only). The steal-evidence counters
	// (attempts..denied, nodes, obsStart) and the poll counters reset
	// independently: a window closed on poll evidence alone leaves the
	// still-thin steal evidence accumulating for a later window.
	winStart int64 // window-length timer
	obsStart int64 // start of the steal-evidence accumulation
	winOpen  bool
	extends  int
	attempts int64
	okSteals int64
	stolen   int64 // nodes delivered by successful steals
	nodes    int64 // nodes explored since obsStart
	depthMax int   // deepest sampled stack depth since obsStart
	polls    int64
	msgs     int64
	denied   int64 // steal requests denied while holding work

	inSteal bool
	stealT0 int64
	latCum  obs.Histogram // cumulative steal-attempt latency
	latPrev obs.Histogram // snapshot at last window close

	// Cross-thread mirrors for telemetry, refreshed on window close.
	aChunk   atomic.Int64
	aPoll    atomic.Int64
	aHalf    atomic.Int64
	aWindows atomic.Int64

	windows  int64
	changes  int64
	kLo, kHi int
	traj     []Sample // nil unless this controller tracks a trajectory
}

func (c *Controller) init(cfg Config, base Base, track bool) {
	c.cfg = cfg
	c.base = base
	if c.cfg.MinChunk <= 0 {
		c.cfg.MinChunk = 1
	}
	if c.cfg.MaxChunk <= 0 {
		c.cfg.MaxChunk = 8 * base.Chunk
		if c.cfg.MaxChunk < 128 {
			c.cfg.MaxChunk = 128
		}
	}
	if c.cfg.MinPoll <= 0 {
		c.cfg.MinPoll = base.Poll / 4
		if c.cfg.MinPoll < 1 {
			c.cfg.MinPoll = 1
		}
	}
	if c.cfg.MaxPoll <= 0 {
		c.cfg.MaxPoll = 8 * base.Poll
		if c.cfg.MaxPoll < c.cfg.MinPoll {
			c.cfg.MaxPoll = c.cfg.MinPoll
		}
	}
	if c.cfg.Window <= 0 {
		c.cfg.Window = 500 * time.Microsecond
	}
	c.k = clamp(base.Chunk, c.cfg.MinChunk, c.cfg.MaxChunk)
	c.half = base.StealHalf
	c.poll = clamp(base.Poll, c.cfg.MinPoll, c.cfg.MaxPoll)
	c.nodeSize = 1
	if base.NodeSize > 1 && base.HierPays {
		c.nodeSize = base.NodeSize
	}
	c.kLo, c.kHi = c.k, c.k
	c.aChunk.Store(int64(c.k))
	c.aPoll.Store(int64(c.poll))
	c.aHalf.Store(boolInt(c.half))
	if track {
		c.traj = make([]Sample, 0, trajCap)
		c.traj = append(c.traj, Sample{AtNS: 0, Chunk: c.k, Poll: c.poll, StealHalf: c.half})
	}
}

// Chunk returns the adapted chunk size (owner-only read).
//
//uts:noalloc
func (c *Controller) Chunk() int { return c.k }

// StealHalf returns the adapted steal-half/steal-k selection.
//
//uts:noalloc
func (c *Controller) StealHalf() bool { return c.half }

// Poll returns the adapted mpi-ws poll interval.
//
//uts:noalloc
func (c *Controller) Poll() int { return c.poll }

// NodeSize returns the victim-walk tier: the configured node width when
// the latency model favors intra-node steals, 1 (flat) otherwise. Fixed
// for the run — topology does not drift — so no window logic touches it.
//
//uts:noalloc
func (c *Controller) NodeSize() int { return c.nodeSize }

// StealBegin marks the start of a steal attempt. One attempt may be in
// flight per PE (true of every scheduler here).
//
//uts:noalloc
func (c *Controller) StealBegin(nowNS int64) {
	c.open(nowNS)
	c.inSteal = true
	c.stealT0 = nowNS
}

// StealEnd completes the attempt begun by StealBegin: ok reports whether
// work was obtained and nodes how many tree nodes came with it.
//
//uts:noalloc
func (c *Controller) StealEnd(ok bool, nodes int, nowNS int64) {
	if !c.inSteal {
		return
	}
	c.inSteal = false
	c.attempts++
	if ok {
		c.okSteals++
		c.stolen += int64(nodes)
	}
	c.latCum.Observe(nowNS - c.stealT0)
}

// NoteNodes reports n nodes explored since the last call, the current
// local stack depth, and gives the controller a timestamp to close
// windows against. Call it from the scheduler's existing yield/batch
// boundary, not per node. The sampled depth feeds the release-starvation
// rule: an owner whose stack never reaches the 2k release threshold
// shares nothing, generates no steal evidence at all (one-sided probes
// are invisible to it), and would otherwise serialize the run forever.
//
//uts:noalloc
func (c *Controller) NoteNodes(n, depth int, nowNS int64) {
	c.open(nowNS)
	c.nodes += int64(n)
	if depth > c.depthMax {
		c.depthMax = depth
	}
	if nowNS-c.winStart >= int64(c.cfg.Window) {
		c.closeWindow(nowNS)
	}
}

// NotePoll reports one incoming-message drain and how many messages it
// found (mpi-ws).
//
//uts:noalloc
func (c *Controller) NotePoll(msgs int) {
	c.polls++
	c.msgs += int64(msgs)
}

// NoteDenied reports a steal request this PE denied while still holding
// work above the steal threshold's reach — the victim-side witness that
// its own k is withholding work from live demand.
//
//uts:noalloc
func (c *Controller) NoteDenied() { c.denied++ }

//uts:noalloc
func (c *Controller) open(nowNS int64) {
	if !c.winOpen {
		c.winOpen = true
		c.winStart = nowNS
		c.obsStart = nowNS
	}
}

// closeWindow evaluates the evidence gates and either adapts or extends.
func (c *Controller) closeWindow(nowNS int64) {
	stealEv := c.attempts >= minAttempts || c.denied >= minAttempts
	pollEv := c.polls >= minAttempts
	// Release starvation: this PE worked through the window, saw no steal
	// traffic in either role, and its stack never reached the release
	// threshold — so it cannot have shared anything, and nobody could tell
	// it demand exists. Halving k is the only signal-free escape from the
	// serialized regime (the k=128-on-a-small-tree pathology).
	if !stealEv && c.nodes > 0 && c.depthMax >= 4 && c.depthMax < 2*c.k {
		c.windows++
		prevK := c.k
		// Jump to the largest k that would have released given the depth
		// actually seen (threshold 2k at half the observed peak), rather
		// than creeping down by halves — every starved window extends the
		// serialized prefix, so the escape must be a single move.
		c.k = clamp(min(c.k/2, c.depthMax/4), c.cfg.MinChunk, c.cfg.MaxChunk)
		if c.k < c.kLo {
			c.kLo = c.k
		}
		if c.k != prevK {
			c.changes++
			if c.traj != nil && len(c.traj) < trajCap {
				c.traj = append(c.traj, Sample{
					AtNS: nowNS, Chunk: c.k, Poll: c.poll, StealHalf: c.half,
				})
			}
		}
		c.aChunk.Store(int64(c.k))
		c.aWindows.Store(c.windows)
		c.resetSteal(nowNS)
		if pollEv {
			c.resetPoll()
		}
		c.extends = 0
		c.winStart = nowNS
		return
	}
	if !stealEv && !pollEv {
		// Not enough signal to act on. Extend the window (keep
		// accumulating) unless it has gone stale.
		c.extends++
		if c.extends < staleWindows {
			c.winStart = nowNS
			return
		}
		c.resetSteal(nowNS)
		c.resetPoll()
		c.extends = 0
		c.winStart = nowNS
		return
	}
	c.adapt(nowNS, stealEv, pollEv)
	if stealEv {
		c.resetSteal(nowNS)
	}
	if pollEv {
		c.resetPoll()
	}
	c.extends = 0
	c.winStart = nowNS
}

//uts:noalloc
func (c *Controller) resetSteal(nowNS int64) {
	c.obsStart = nowNS
	c.attempts, c.okSteals, c.stolen = 0, 0, 0
	c.nodes, c.denied = 0, 0
	c.depthMax = 0
	c.latPrev = c.latCum
}

//uts:noalloc
func (c *Controller) resetPoll() {
	c.polls, c.msgs = 0, 0
}

// adapt applies the decision rules to one closed window. Cold path: runs
// once per window per PE.
func (c *Controller) adapt(nowNS int64, stealEv, pollEv bool) {
	c.windows++
	prevK, prevHalf, prevPoll := c.k, c.half, c.poll

	if stealEv {
		win := c.latCum.DeltaFrom(&c.latPrev)
		var failFrac float64
		if c.attempts > 0 {
			failFrac = float64(c.attempts-c.okSteals) / float64(c.attempts)
		}

		// Steal-overhead share: the fraction of this window the PE spent
		// inside steal attempts. DeltaFrom's clamped sum (the satellite
		// bugfix) is what makes this number trustworthy on a windowed
		// snapshot.
		var share float64
		if elapsed := nowNS - c.obsStart; elapsed > 0 {
			share = float64(win.Sum()) / float64(elapsed)
		}

		switch {
		case failFrac > failHi || c.denied >= minAttempts:
			// Work withheld: victims (or we, as a victim) sit below the
			// release threshold while demand goes unmet. Halve.
			c.k = clamp(c.k/2, c.cfg.MinChunk, c.cfg.MaxChunk)
		case share > shareExtreme:
			// Steal traffic swamps useful work — far left of the Figure-4
			// plateau. Slow-start: double.
			c.k = clamp(c.k*2, c.cfg.MinChunk, c.cfg.MaxChunk)
		case share > shareHi:
			// Overhead still material: additive increase.
			c.k = clamp(c.k+max(1, c.k/4), c.cfg.MinChunk, c.cfg.MaxChunk)
		}

		// Steal-half under scarcity: when most attempts fail, a success
		// should take as much as it can carry; revert to the base
		// selection once the system calms down.
		if failFrac > halfOn {
			c.half = true
		} else if failFrac < halfOff {
			c.half = c.base.StealHalf
		}
	}

	if pollEv {
		hit := float64(c.msgs) / float64(c.polls)
		if hit < pollLo {
			c.poll = clamp(c.poll*2, c.cfg.MinPoll, c.cfg.MaxPoll)
		} else if hit > pollHi {
			c.poll = clamp(c.poll/2, c.cfg.MinPoll, c.cfg.MaxPoll)
		}
	}

	if c.k < c.kLo {
		c.kLo = c.k
	}
	if c.k > c.kHi {
		c.kHi = c.k
	}
	if c.k != prevK || c.half != prevHalf || c.poll != prevPoll {
		c.changes++
		if c.traj != nil && len(c.traj) < trajCap {
			c.traj = append(c.traj, Sample{
				AtNS: nowNS, Chunk: c.k, Poll: c.poll, StealHalf: c.half,
			})
		}
	}
	c.aChunk.Store(int64(c.k))
	c.aPoll.Store(int64(c.poll))
	c.aHalf.Store(boolInt(c.half))
	c.aWindows.Store(c.windows)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Set is the per-run collection of controllers, one per PE. A nil *Set
// is the disabled state: Controller(i) returns nil and every scheduler
// hot path guards with a single nil check, keeping controller-off runs
// byte-identical to a build without this package.
type Set struct {
	cfg  Config
	base Base
	ctls []*Controller
}

// NewSet builds n controllers from cfg and base. A nil cfg returns a nil
// Set (adaptation disabled). PE 0's controller records a knob trajectory
// for stats.Run; the rest carry counters only.
func NewSet(cfg *Config, base Base, n int) *Set {
	if cfg == nil || n <= 0 {
		return nil
	}
	s := &Set{cfg: *cfg, base: base, ctls: make([]*Controller, n)}
	for i := range s.ctls {
		c := &Controller{}
		c.init(*cfg, base, i == 0)
		s.ctls[i] = c
	}
	return s
}

// Controller returns PE i's controller, or nil for a nil/out-of-range Set.
func (s *Set) Controller(i int) *Controller {
	if s == nil || i < 0 || i >= len(s.ctls) {
		return nil
	}
	return s.ctls[i]
}

// PEs returns the number of controllers (0 for a nil Set).
func (s *Set) PEs() int {
	if s == nil {
		return 0
	}
	return len(s.ctls)
}

// Snapshot is the cross-thread view of the set's current knobs, built
// from the atomic mirrors; safe to call from a telemetry scraper while
// the run is live.
type Snapshot struct {
	PEs         int
	Windows     int64 // adaptation windows closed, all PEs
	ChunkMin    int64
	ChunkMax    int64
	ChunkMean   float64
	PollMin     int64
	PollMax     int64
	StealHalfOn int64 // PEs currently stealing half
}

// Snap aggregates the atomic knob mirrors. Nil-safe.
func (s *Set) Snap() Snapshot {
	var sn Snapshot
	if s == nil || len(s.ctls) == 0 {
		return sn
	}
	sn.PEs = len(s.ctls)
	sn.ChunkMin, sn.PollMin = int64(1)<<62, int64(1)<<62
	var kSum int64
	for _, c := range s.ctls {
		k, p := c.aChunk.Load(), c.aPoll.Load()
		kSum += k
		if k < sn.ChunkMin {
			sn.ChunkMin = k
		}
		if k > sn.ChunkMax {
			sn.ChunkMax = k
		}
		if p < sn.PollMin {
			sn.PollMin = p
		}
		if p > sn.PollMax {
			sn.PollMax = p
		}
		sn.StealHalfOn += c.aHalf.Load()
		sn.Windows += c.aWindows.Load()
	}
	sn.ChunkMean = float64(kSum) / float64(len(s.ctls))
	return sn
}

// Summary condenses the run's adaptation for stats.Run. Owner-phase
// only: call after the workers have stopped. Nil-safe (returns nil).
func (s *Set) Summary() *Summary {
	if s == nil {
		return nil
	}
	sum := &Summary{
		PEs:        len(s.ctls),
		ChunkStart: s.ctls[0].base.Chunk,
		HierTier:   s.ctls[0].nodeSize,
	}
	lo, hi := int(^uint(0)>>1), 0
	var kSum int64
	for _, c := range s.ctls {
		sum.Windows += c.windows
		sum.Changes += c.changes
		if c.k < lo {
			lo = c.k
		}
		if c.k > hi {
			hi = c.k
		}
		kSum += int64(c.k)
		if c.half {
			sum.StealHalfOn++
		}
		if c.kLo < sum.ChunkLo || sum.ChunkLo == 0 {
			sum.ChunkLo = c.kLo
		}
		if c.kHi > sum.ChunkHi {
			sum.ChunkHi = c.kHi
		}
	}
	sum.ChunkFinalMin, sum.ChunkFinalMax = lo, hi
	sum.ChunkFinalMean = float64(kSum) / float64(len(s.ctls))
	sum.PollFinal = s.ctls[0].poll
	sum.Trajectory = s.ctls[0].traj
	return sum
}

// Summary is the post-run report of what the controllers did, carried on
// stats.Run and rendered into its Summary() block.
type Summary struct {
	PEs     int
	Windows int64 // adaptation windows closed across all PEs
	Changes int64 // knob changes across all PEs

	ChunkStart     int // the base (static) chunk every PE started from
	ChunkLo        int // lowest chunk any PE visited
	ChunkHi        int // highest chunk any PE visited
	ChunkFinalMin  int
	ChunkFinalMax  int
	ChunkFinalMean float64

	StealHalfOn int // PEs that ended on steal-half
	PollFinal   int // PE 0's final poll interval (mpi-ws)
	HierTier    int // victim-walk tier in effect (1 = flat)

	Trajectory []Sample // PE 0's knob changes, capped
}

// String renders the one-line form used by stats.Run.Summary().
func (s *Summary) String() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf(
		"adaptive: chunk %d -> %.1f (final %d..%d, visited %d..%d), steal-half %d/%d, windows %d, changes %d",
		s.ChunkStart, s.ChunkFinalMean, s.ChunkFinalMin, s.ChunkFinalMax,
		s.ChunkLo, s.ChunkHi, s.StealHalfOn, s.PEs, s.Windows, s.Changes)
}
