package rng

import (
	"crypto/sha1"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// maxChildren mirrors uts.MaxChildren (not imported to keep this package
// dependency-free); SpawnMany batches in the tree generator never exceed it
// times the granularity.
const maxChildren = 100

// refSpawn is the definition the kernel must match: SHA-1 (via crypto/sha1)
// of the 24-byte parent-state‖big-endian-child-index message.
func refSpawn(s *State, i int) State {
	var msg [StateSize + 4]byte
	copy(msg[:], s[:])
	binary.BigEndian.PutUint32(msg[StateSize:], uint32(i))
	return State(sha1.Sum(msg[:]))
}

// TestSpawnFastAgainstStdlib is the differential property test of the
// tentpole kernel: on random states and child indices across the whole
// uint32 range, the specialized single-block kernel must agree bit-for-bit
// with crypto/sha1 on the 24-byte spawn message.
func TestSpawnFastAgainstStdlib(t *testing.T) {
	f := func(raw [StateSize]byte, i uint32) bool {
		s := State(raw)
		return sha1Spawn(&s, int(i)) == refSpawn(&s, int(i))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestSpawnFastAgainstGeneric pins the fast path against the retained
// generic sha1Sum path, so the two in-repo implementations cannot drift.
func TestSpawnFastAgainstGeneric(t *testing.T) {
	f := func(raw [StateSize]byte, i uint32) bool {
		s := State(raw)
		return sha1Spawn(&s, int(i)) == spawnGeneric(&s, int(i))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestSpawnFastBoundaryIndices exercises the child-index word at its
// boundary values, where a padding or byte-order slip would hide from
// random testing.
func TestSpawnFastBoundaryIndices(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	indices := []int{0, 1, 2, maxChildren - 1, maxChildren, 255, 256, 65535, 65536,
		1<<31 - 1, int(uint32(1 << 31)), int(uint32(0xffffffff))}
	for trial := 0; trial < 50; trial++ {
		var s State
		r.Read(s[:])
		for _, i := range indices {
			if got, want := sha1Spawn(&s, i), refSpawn(&s, i); got != want {
				t.Fatalf("index %d: %x, want %x", i, got, want)
			}
		}
	}
}

// TestSpawnIntoMatchesSpawn checks the in-place form against the value
// form, including that repeated SpawnInto calls into the same destination
// fully overwrite it.
func TestSpawnIntoMatchesSpawn(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var dst State
	for trial := 0; trial < 200; trial++ {
		var s State
		r.Read(s[:])
		i := int(uint32(r.Int63()))
		BRG{}.SpawnInto(&dst, &s, i)
		if want := (BRG{}).Spawn(&s, i); dst != want {
			t.Fatalf("SpawnInto diverges from Spawn at index %d", i)
		}
	}
}

// TestSpawnManyMatchesSpawn cross-checks the batched kernel against
// per-call Spawn for every batch width up to MaxChildren, at both base 0
// and a granularity-style nonzero base.
func TestSpawnManyMatchesSpawn(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	var s State
	r.Read(s[:])
	dst := make([]State, maxChildren)
	for k := 1; k <= maxChildren; k++ {
		for _, base := range []int{0, 7 * k, 1 << 20} {
			batch := dst[:k]
			BRG{}.SpawnMany(batch, &s, base)
			for j, got := range batch {
				if want := (BRG{}).Spawn(&s, base+j); got != want {
					t.Fatalf("k=%d base=%d child %d: batch %x, want %x", k, base, j, got, want)
				}
			}
		}
	}
}

// TestSpawnerReuse checks that one Reset serves SpawnInto calls in any
// order and any number — the property the per-node hoisting relies on.
func TestSpawnerReuse(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var s State
	r.Read(s[:])
	var z Spawner
	z.Reset(&s)
	order := r.Perm(300)
	for _, i := range order {
		var got State
		z.SpawnInto(&got, i)
		if want := refSpawn(&s, i); got != want {
			t.Fatalf("reused Spawner wrong at index %d", i)
		}
	}
}

// BenchmarkSpawn compares the spawn kernel variants. "generic" is the
// pre-specialization path (per-call pad buffer, length-generic loop),
// "fast" is the specialized one-shot kernel, "into" removes the return
// copy, "hoisted" amortizes the parent prefix across a MaxChildren batch,
// and "crypto-sha1" is the stdlib (amd64 assembly) on the same message —
// the reference ceiling for a single unbatched evaluation.
func BenchmarkSpawn(b *testing.B) {
	var s State = BRG{}.Init(0)
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s = spawnGeneric(&s, i&1)
		}
	})
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s = sha1Spawn(&s, i&1)
		}
	})
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BRG{}.SpawnInto(&s, &s, i&1)
		}
	})
	b.Run("hoisted", func(b *testing.B) {
		// Per-spawn cost with the parent prefix hoisted across a full
		// MaxChildren batch, the shape of one wide node expansion.
		var dst [maxChildren]State
		b.ReportAllocs()
		for i := 0; i < b.N; i += maxChildren {
			BRG{}.SpawnMany(dst[:], &s, 0)
		}
	})
	b.Run("crypto-sha1", func(b *testing.B) {
		var msg [StateSize + 4]byte
		copy(msg[:], s[:])
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			msg[StateSize+3] = byte(i)
			d := sha1.Sum(msg[:])
			copy(s[:], d[:])
		}
	})
}
