package rng

import "encoding/binary"

// BRG is the SHA-1 based splittable stream from the UTS distribution
// (named after the Brian Gladman reference implementation UTS shipped).
// A node's state is a SHA-1 digest; child states are digests of the parent
// state concatenated with the 4-byte big-endian child index. This is the
// generator used for all results in the paper: the sequential exploration
// rate of UTS is essentially the machine's SHA-1 throughput. The digest
// comes from this package's own RFC 3174 implementation (sha1.go), just
// as UTS shipped its own; the tests cross-check it against crypto/sha1.
//
// BRG is safe for concurrent use; it holds no state.
type BRG struct{}

// Init returns the root state: SHA-1 of the 4-byte big-endian seed.
func (BRG) Init(seed int32) State {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(seed))
	return State(sha1Sum(buf[:]))
}

// Spawn hashes the parent state and the child index into the child state,
// through the specialized single-block kernel of sha1spawn.go.
func (BRG) Spawn(s *State, i int) State {
	return sha1Spawn(s, i)
}

// SpawnInto computes the state of child i of s directly into *dst, with no
// copying and no heap traffic. It is the form the traversal hot loops use.
func (BRG) SpawnInto(dst *State, s *State, i int) {
	var z Spawner
	z.Reset(s)
	z.SpawnInto(dst, i)
}

// SpawnMany fills dst[j] with the state of child base+j of s for every j,
// hoisting the parent-dependent prefix of the kernel (message words and
// rounds 0..4) once across the whole batch. It is equivalent to len(dst)
// calls to Spawn with consecutive indices.
func (BRG) SpawnMany(dst []State, s *State, base int) {
	var z Spawner
	z.Reset(s)
	for j := range dst {
		z.SpawnInto(&dst[j], base+j)
	}
}

// spawnGeneric is the pre-specialization spawn path, retained as the
// differential reference for the fast kernel (see sha1spawn_test.go) and
// as the baseline leg of the BenchmarkSpawn suite.
func spawnGeneric(s *State, i int) State {
	var buf [StateSize + 4]byte
	copy(buf[:StateSize], s[:])
	binary.BigEndian.PutUint32(buf[StateSize:], uint32(i))
	return State(sha1Sum(buf[:]))
}

// Rand interprets the last four state bytes as a big-endian word and masks
// it to 31 bits, per the UTS POS_MASK convention.
func (BRG) Rand(s *State) int32 {
	return StateRand(s)
}

// Name reports "BRG".
func (BRG) Name() string { return "BRG" }
