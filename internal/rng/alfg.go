package rng

import "encoding/binary"

// ALFG is a cheap splittable stream in the spirit of the additive
// lagged-Fibonacci generator option of the UTS distribution. It exists for
// the same reason the original did: on very large trees SHA-1 dominates the
// sequential cost, and a fast generator lets the simulator explore trees an
// order of magnitude larger in the same wall time.
//
// Layout of the 20-byte state: bytes [0:8] hold a 64-bit stream key, bytes
// [8:16] a 64-bit position word, bytes [16:20] the cached 31-bit random value
// (so Rand is a pure read, exactly as with BRG). Spawning mixes the parent
// key with the child index through a SplitMix64 finalizer and then clocks a
// short lag-(17,5) additive Fibonacci register seeded from the mixed key to
// produce the child's random value. The register evaluation is what makes
// child values statistically well-behaved even for adjacent child indices.
//
// ALFG is safe for concurrent use; it holds no state.
type ALFG struct{}

// alfgShort/alfgLong are the register lags. (17,5) is a classic additive
// lagged-Fibonacci pair with maximal period over the low bits.
const (
	alfgShort = 5
	alfgLong  = 17
	alfgWarm  = 2 * alfgLong // clock the register twice around before use
)

// splitmix64 is the SplitMix64 finalizer: an invertible 64-bit mixer with
// full avalanche, used to derive child keys and to seed the register.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// alfgValue seeds a lag-(17,5) register from key and clocks it alfgWarm
// times, returning the final word. Cost is ~50 integer adds — roughly 30x
// cheaper than a SHA-1 compression.
func alfgValue(key uint64) uint64 {
	var reg [alfgLong]uint64
	s := key
	for i := range reg {
		s = splitmix64(s)
		reg[i] = s
	}
	// Additive LFG requires at least one odd word to reach full period on
	// the low bit; force it deterministically.
	reg[0] |= 1
	j, k := alfgLong-alfgShort-1, 0
	var v uint64
	for i := 0; i < alfgWarm; i++ {
		v = reg[j] + reg[k]
		reg[k] = v
		j = (j + 1) % alfgLong
		k = (k + 1) % alfgLong
	}
	return v
}

func alfgPack(key, pos uint64) State {
	var s State
	binary.BigEndian.PutUint64(s[0:8], key)
	binary.BigEndian.PutUint64(s[8:16], pos)
	binary.BigEndian.PutUint32(s[16:20], uint32(alfgValue(key))&posMask)
	return s
}

// Init returns the root state for the seed.
func (ALFG) Init(seed int32) State {
	return alfgPack(splitmix64(uint64(uint32(seed))), 0)
}

// Spawn derives child i's state by mixing the parent key with the child
// index and advancing the position word.
func (ALFG) Spawn(s *State, i int) State {
	key := binary.BigEndian.Uint64(s[0:8])
	pos := binary.BigEndian.Uint64(s[8:16])
	child := splitmix64(key ^ splitmix64(uint64(i)+1))
	return alfgPack(child, pos+1)
}

// SpawnInto is the write-in-place form of Spawn, mirroring BRG.SpawnInto so
// traversal loops can use either family without heap traffic.
func (a ALFG) SpawnInto(dst *State, s *State, i int) {
	*dst = a.Spawn(s, i)
}

// Rand returns the cached 31-bit value computed at spawn time.
func (ALFG) Rand(s *State) int32 {
	return StateRand(s)
}

// Name reports "ALFG".
func (ALFG) Name() string { return "ALFG" }
