package rng

import (
	"encoding/binary"
	"math/bits"
)

// This file is the spawn fast path: a SHA-1 kernel specialized for the one
// message shape the tree generator ever hashes — the 24-byte concatenation
// of a 20-byte parent state and a 4-byte big-endian child index. That
// message always fits one 64-byte block, so the padding is known at compile
// time and baked into the round constants: word 6 is 0x80000000 (the 0x80
// terminator), words 7..14 are zero (folded away entirely), and word 15 is
// 192 (the bit length). The 80 rounds are fully unrolled with the message
// schedule kept in named locals, so there is no pad buffer, no message
// copy, no schedule array and no per-round branch — and nothing escapes to
// the heap.
//
// The kernel is additionally split around an algebraic property of the
// message: rounds 0..4 consume only words 0..4 (the parent state), so for
// a fixed parent the chaining registers after round 4 are the same for
// every child index. Spawner caches that prefix once per parent; each
// SpawnInto then runs only rounds 5..79. A node expansion that evaluates
// k·g spawns (k children under granularity g) pays for the prefix once.
//
// The differential tests in sha1spawn_test.go pin this kernel bit-for-bit
// against both crypto/sha1 and the generic sha1Sum path on random states
// and child indices.

// Spawner holds the parent-invariant prefix of the spawn kernel: the five
// parent message words and the SHA-1 chaining registers after the five
// rounds that consume them. The zero value is meaningless; call Reset
// before SpawnInto. A Spawner is a plain value (no heap state) intended to
// live on the caller's stack for the duration of one node expansion.
type Spawner struct {
	w0, w1, w2, w3, w4 uint32 // parent state as big-endian message words
	a, b, c, d, e      uint32 // chaining registers after rounds 0..4
}

// Reset loads the parent state s and precomputes the child-independent
// rounds 0..4.
//
//uts:noalloc
func (z *Spawner) Reset(s *State) {
	w0 := binary.BigEndian.Uint32(s[0:4])
	w1 := binary.BigEndian.Uint32(s[4:8])
	w2 := binary.BigEndian.Uint32(s[8:12])
	w3 := binary.BigEndian.Uint32(s[12:16])
	w4 := binary.BigEndian.Uint32(s[16:20])
	a, b, c, d, e := uint32(sha1Init0), uint32(sha1Init1), uint32(sha1Init2), uint32(sha1Init3), uint32(sha1Init4)
	e += bits.RotateLeft32(a, 5) + (((c ^ d) & b) ^ d) + sha1K0 + w0
	b = bits.RotateLeft32(b, 30)
	d += bits.RotateLeft32(e, 5) + (((b ^ c) & a) ^ c) + sha1K0 + w1
	a = bits.RotateLeft32(a, 30)
	c += bits.RotateLeft32(d, 5) + (((a ^ b) & e) ^ b) + sha1K0 + w2
	e = bits.RotateLeft32(e, 30)
	b += bits.RotateLeft32(c, 5) + (((e ^ a) & d) ^ a) + sha1K0 + w3
	d = bits.RotateLeft32(d, 30)
	a += bits.RotateLeft32(b, 5) + (((d ^ e) & c) ^ e) + sha1K0 + w4
	c = bits.RotateLeft32(c, 30)
	z.w0, z.w1, z.w2, z.w3, z.w4 = w0, w1, w2, w3, w4
	z.a, z.b, z.c, z.d, z.e = a, b, c, d, e
}

// SpawnInto writes the state of child number i of the Reset parent into
// *dst, running rounds 5..79 of the specialized block. It does not modify
// the Spawner, so one Reset serves any number of SpawnInto calls.
//
//uts:noalloc
func (z *Spawner) SpawnInto(dst *State, i int) {
	w5 := uint32(i)
	w0, w1, w2, w3, w4 := z.w0, z.w1, z.w2, z.w3, z.w4
	a, b, c, d, e := z.a, z.b, z.c, z.d, z.e
	e += bits.RotateLeft32(a, 5) + (((c ^ d) & b) ^ d) + 0x5a827999 + w5
	b = bits.RotateLeft32(b, 30)
	d += bits.RotateLeft32(e, 5) + (((b ^ c) & a) ^ c) + 0xda827999
	a = bits.RotateLeft32(a, 30)
	c += bits.RotateLeft32(d, 5) + (((a ^ b) & e) ^ b) + 0x5a827999
	e = bits.RotateLeft32(e, 30)
	b += bits.RotateLeft32(c, 5) + (((e ^ a) & d) ^ a) + 0x5a827999
	d = bits.RotateLeft32(d, 30)
	a += bits.RotateLeft32(b, 5) + (((d ^ e) & c) ^ e) + 0x5a827999
	c = bits.RotateLeft32(c, 30)
	e += bits.RotateLeft32(a, 5) + (((c ^ d) & b) ^ d) + 0x5a827999
	b = bits.RotateLeft32(b, 30)
	d += bits.RotateLeft32(e, 5) + (((b ^ c) & a) ^ c) + 0x5a827999
	a = bits.RotateLeft32(a, 30)
	c += bits.RotateLeft32(d, 5) + (((a ^ b) & e) ^ b) + 0x5a827999
	e = bits.RotateLeft32(e, 30)
	b += bits.RotateLeft32(c, 5) + (((e ^ a) & d) ^ a) + 0x5a827999
	d = bits.RotateLeft32(d, 30)
	a += bits.RotateLeft32(b, 5) + (((d ^ e) & c) ^ e) + 0x5a827999
	c = bits.RotateLeft32(c, 30)
	e += bits.RotateLeft32(a, 5) + (((c ^ d) & b) ^ d) + 0x5a827a59
	b = bits.RotateLeft32(b, 30)
	x16 := bits.RotateLeft32(w2^w0, 1)
	d += bits.RotateLeft32(e, 5) + (((b ^ c) & a) ^ c) + 0x5a827999 + x16
	a = bits.RotateLeft32(a, 30)
	x17 := bits.RotateLeft32(w3^w1, 1)
	c += bits.RotateLeft32(d, 5) + (((a ^ b) & e) ^ b) + 0x5a827999 + x17
	e = bits.RotateLeft32(e, 30)
	x18 := bits.RotateLeft32(w4^w2^0xc0, 1)
	b += bits.RotateLeft32(c, 5) + (((e ^ a) & d) ^ a) + 0x5a827999 + x18
	d = bits.RotateLeft32(d, 30)
	x19 := bits.RotateLeft32(x16^w5^w3, 1)
	a += bits.RotateLeft32(b, 5) + (((d ^ e) & c) ^ e) + 0x5a827999 + x19
	c = bits.RotateLeft32(c, 30)
	x20 := bits.RotateLeft32(x17^w4^0x80000000, 1)
	e += bits.RotateLeft32(a, 5) + (b ^ c ^ d) + 0x6ed9eba1 + x20
	b = bits.RotateLeft32(b, 30)
	x21 := bits.RotateLeft32(x18^w5, 1)
	d += bits.RotateLeft32(e, 5) + (a ^ b ^ c) + 0x6ed9eba1 + x21
	a = bits.RotateLeft32(a, 30)
	x22 := bits.RotateLeft32(x19^0x80000000, 1)
	c += bits.RotateLeft32(d, 5) + (e ^ a ^ b) + 0x6ed9eba1 + x22
	e = bits.RotateLeft32(e, 30)
	x23 := bits.RotateLeft32(x20^0xc0, 1)
	b += bits.RotateLeft32(c, 5) + (d ^ e ^ a) + 0x6ed9eba1 + x23
	d = bits.RotateLeft32(d, 30)
	x24 := bits.RotateLeft32(x21^x16, 1)
	a += bits.RotateLeft32(b, 5) + (c ^ d ^ e) + 0x6ed9eba1 + x24
	c = bits.RotateLeft32(c, 30)
	x25 := bits.RotateLeft32(x22^x17, 1)
	e += bits.RotateLeft32(a, 5) + (b ^ c ^ d) + 0x6ed9eba1 + x25
	b = bits.RotateLeft32(b, 30)
	x26 := bits.RotateLeft32(x23^x18, 1)
	d += bits.RotateLeft32(e, 5) + (a ^ b ^ c) + 0x6ed9eba1 + x26
	a = bits.RotateLeft32(a, 30)
	x27 := bits.RotateLeft32(x24^x19, 1)
	c += bits.RotateLeft32(d, 5) + (e ^ a ^ b) + 0x6ed9eba1 + x27
	e = bits.RotateLeft32(e, 30)
	x28 := bits.RotateLeft32(x25^x20, 1)
	b += bits.RotateLeft32(c, 5) + (d ^ e ^ a) + 0x6ed9eba1 + x28
	d = bits.RotateLeft32(d, 30)
	x29 := bits.RotateLeft32(x26^x21^0xc0, 1)
	a += bits.RotateLeft32(b, 5) + (c ^ d ^ e) + 0x6ed9eba1 + x29
	c = bits.RotateLeft32(c, 30)
	x30 := bits.RotateLeft32(x27^x22^x16, 1)
	e += bits.RotateLeft32(a, 5) + (b ^ c ^ d) + 0x6ed9eba1 + x30
	b = bits.RotateLeft32(b, 30)
	x31 := bits.RotateLeft32(x28^x23^x17^0xc0, 1)
	d += bits.RotateLeft32(e, 5) + (a ^ b ^ c) + 0x6ed9eba1 + x31
	a = bits.RotateLeft32(a, 30)
	x32 := bits.RotateLeft32(x29^x24^x18^x16, 1)
	c += bits.RotateLeft32(d, 5) + (e ^ a ^ b) + 0x6ed9eba1 + x32
	e = bits.RotateLeft32(e, 30)
	x33 := bits.RotateLeft32(x30^x25^x19^x17, 1)
	b += bits.RotateLeft32(c, 5) + (d ^ e ^ a) + 0x6ed9eba1 + x33
	d = bits.RotateLeft32(d, 30)
	x34 := bits.RotateLeft32(x31^x26^x20^x18, 1)
	a += bits.RotateLeft32(b, 5) + (c ^ d ^ e) + 0x6ed9eba1 + x34
	c = bits.RotateLeft32(c, 30)
	x35 := bits.RotateLeft32(x32^x27^x21^x19, 1)
	e += bits.RotateLeft32(a, 5) + (b ^ c ^ d) + 0x6ed9eba1 + x35
	b = bits.RotateLeft32(b, 30)
	x36 := bits.RotateLeft32(x33^x28^x22^x20, 1)
	d += bits.RotateLeft32(e, 5) + (a ^ b ^ c) + 0x6ed9eba1 + x36
	a = bits.RotateLeft32(a, 30)
	x37 := bits.RotateLeft32(x34^x29^x23^x21, 1)
	c += bits.RotateLeft32(d, 5) + (e ^ a ^ b) + 0x6ed9eba1 + x37
	e = bits.RotateLeft32(e, 30)
	x38 := bits.RotateLeft32(x35^x30^x24^x22, 1)
	b += bits.RotateLeft32(c, 5) + (d ^ e ^ a) + 0x6ed9eba1 + x38
	d = bits.RotateLeft32(d, 30)
	x39 := bits.RotateLeft32(x36^x31^x25^x23, 1)
	a += bits.RotateLeft32(b, 5) + (c ^ d ^ e) + 0x6ed9eba1 + x39
	c = bits.RotateLeft32(c, 30)
	x40 := bits.RotateLeft32(x37^x32^x26^x24, 1)
	e += bits.RotateLeft32(a, 5) + (((b | c) & d) | (b & c)) + 0x8f1bbcdc + x40
	b = bits.RotateLeft32(b, 30)
	x41 := bits.RotateLeft32(x38^x33^x27^x25, 1)
	d += bits.RotateLeft32(e, 5) + (((a | b) & c) | (a & b)) + 0x8f1bbcdc + x41
	a = bits.RotateLeft32(a, 30)
	x42 := bits.RotateLeft32(x39^x34^x28^x26, 1)
	c += bits.RotateLeft32(d, 5) + (((e | a) & b) | (e & a)) + 0x8f1bbcdc + x42
	e = bits.RotateLeft32(e, 30)
	x43 := bits.RotateLeft32(x40^x35^x29^x27, 1)
	b += bits.RotateLeft32(c, 5) + (((d | e) & a) | (d & e)) + 0x8f1bbcdc + x43
	d = bits.RotateLeft32(d, 30)
	x44 := bits.RotateLeft32(x41^x36^x30^x28, 1)
	a += bits.RotateLeft32(b, 5) + (((c | d) & e) | (c & d)) + 0x8f1bbcdc + x44
	c = bits.RotateLeft32(c, 30)
	x45 := bits.RotateLeft32(x42^x37^x31^x29, 1)
	e += bits.RotateLeft32(a, 5) + (((b | c) & d) | (b & c)) + 0x8f1bbcdc + x45
	b = bits.RotateLeft32(b, 30)
	x46 := bits.RotateLeft32(x43^x38^x32^x30, 1)
	d += bits.RotateLeft32(e, 5) + (((a | b) & c) | (a & b)) + 0x8f1bbcdc + x46
	a = bits.RotateLeft32(a, 30)
	x47 := bits.RotateLeft32(x44^x39^x33^x31, 1)
	c += bits.RotateLeft32(d, 5) + (((e | a) & b) | (e & a)) + 0x8f1bbcdc + x47
	e = bits.RotateLeft32(e, 30)
	x48 := bits.RotateLeft32(x45^x40^x34^x32, 1)
	b += bits.RotateLeft32(c, 5) + (((d | e) & a) | (d & e)) + 0x8f1bbcdc + x48
	d = bits.RotateLeft32(d, 30)
	x49 := bits.RotateLeft32(x46^x41^x35^x33, 1)
	a += bits.RotateLeft32(b, 5) + (((c | d) & e) | (c & d)) + 0x8f1bbcdc + x49
	c = bits.RotateLeft32(c, 30)
	x50 := bits.RotateLeft32(x47^x42^x36^x34, 1)
	e += bits.RotateLeft32(a, 5) + (((b | c) & d) | (b & c)) + 0x8f1bbcdc + x50
	b = bits.RotateLeft32(b, 30)
	x51 := bits.RotateLeft32(x48^x43^x37^x35, 1)
	d += bits.RotateLeft32(e, 5) + (((a | b) & c) | (a & b)) + 0x8f1bbcdc + x51
	a = bits.RotateLeft32(a, 30)
	x52 := bits.RotateLeft32(x49^x44^x38^x36, 1)
	c += bits.RotateLeft32(d, 5) + (((e | a) & b) | (e & a)) + 0x8f1bbcdc + x52
	e = bits.RotateLeft32(e, 30)
	x53 := bits.RotateLeft32(x50^x45^x39^x37, 1)
	b += bits.RotateLeft32(c, 5) + (((d | e) & a) | (d & e)) + 0x8f1bbcdc + x53
	d = bits.RotateLeft32(d, 30)
	x54 := bits.RotateLeft32(x51^x46^x40^x38, 1)
	a += bits.RotateLeft32(b, 5) + (((c | d) & e) | (c & d)) + 0x8f1bbcdc + x54
	c = bits.RotateLeft32(c, 30)
	x55 := bits.RotateLeft32(x52^x47^x41^x39, 1)
	e += bits.RotateLeft32(a, 5) + (((b | c) & d) | (b & c)) + 0x8f1bbcdc + x55
	b = bits.RotateLeft32(b, 30)
	x56 := bits.RotateLeft32(x53^x48^x42^x40, 1)
	d += bits.RotateLeft32(e, 5) + (((a | b) & c) | (a & b)) + 0x8f1bbcdc + x56
	a = bits.RotateLeft32(a, 30)
	x57 := bits.RotateLeft32(x54^x49^x43^x41, 1)
	c += bits.RotateLeft32(d, 5) + (((e | a) & b) | (e & a)) + 0x8f1bbcdc + x57
	e = bits.RotateLeft32(e, 30)
	x58 := bits.RotateLeft32(x55^x50^x44^x42, 1)
	b += bits.RotateLeft32(c, 5) + (((d | e) & a) | (d & e)) + 0x8f1bbcdc + x58
	d = bits.RotateLeft32(d, 30)
	x59 := bits.RotateLeft32(x56^x51^x45^x43, 1)
	a += bits.RotateLeft32(b, 5) + (((c | d) & e) | (c & d)) + 0x8f1bbcdc + x59
	c = bits.RotateLeft32(c, 30)
	x60 := bits.RotateLeft32(x57^x52^x46^x44, 1)
	e += bits.RotateLeft32(a, 5) + (b ^ c ^ d) + 0xca62c1d6 + x60
	b = bits.RotateLeft32(b, 30)
	x61 := bits.RotateLeft32(x58^x53^x47^x45, 1)
	d += bits.RotateLeft32(e, 5) + (a ^ b ^ c) + 0xca62c1d6 + x61
	a = bits.RotateLeft32(a, 30)
	x62 := bits.RotateLeft32(x59^x54^x48^x46, 1)
	c += bits.RotateLeft32(d, 5) + (e ^ a ^ b) + 0xca62c1d6 + x62
	e = bits.RotateLeft32(e, 30)
	x63 := bits.RotateLeft32(x60^x55^x49^x47, 1)
	b += bits.RotateLeft32(c, 5) + (d ^ e ^ a) + 0xca62c1d6 + x63
	d = bits.RotateLeft32(d, 30)
	x64 := bits.RotateLeft32(x61^x56^x50^x48, 1)
	a += bits.RotateLeft32(b, 5) + (c ^ d ^ e) + 0xca62c1d6 + x64
	c = bits.RotateLeft32(c, 30)
	x65 := bits.RotateLeft32(x62^x57^x51^x49, 1)
	e += bits.RotateLeft32(a, 5) + (b ^ c ^ d) + 0xca62c1d6 + x65
	b = bits.RotateLeft32(b, 30)
	x66 := bits.RotateLeft32(x63^x58^x52^x50, 1)
	d += bits.RotateLeft32(e, 5) + (a ^ b ^ c) + 0xca62c1d6 + x66
	a = bits.RotateLeft32(a, 30)
	x67 := bits.RotateLeft32(x64^x59^x53^x51, 1)
	c += bits.RotateLeft32(d, 5) + (e ^ a ^ b) + 0xca62c1d6 + x67
	e = bits.RotateLeft32(e, 30)
	x68 := bits.RotateLeft32(x65^x60^x54^x52, 1)
	b += bits.RotateLeft32(c, 5) + (d ^ e ^ a) + 0xca62c1d6 + x68
	d = bits.RotateLeft32(d, 30)
	x69 := bits.RotateLeft32(x66^x61^x55^x53, 1)
	a += bits.RotateLeft32(b, 5) + (c ^ d ^ e) + 0xca62c1d6 + x69
	c = bits.RotateLeft32(c, 30)
	x70 := bits.RotateLeft32(x67^x62^x56^x54, 1)
	e += bits.RotateLeft32(a, 5) + (b ^ c ^ d) + 0xca62c1d6 + x70
	b = bits.RotateLeft32(b, 30)
	x71 := bits.RotateLeft32(x68^x63^x57^x55, 1)
	d += bits.RotateLeft32(e, 5) + (a ^ b ^ c) + 0xca62c1d6 + x71
	a = bits.RotateLeft32(a, 30)
	x72 := bits.RotateLeft32(x69^x64^x58^x56, 1)
	c += bits.RotateLeft32(d, 5) + (e ^ a ^ b) + 0xca62c1d6 + x72
	e = bits.RotateLeft32(e, 30)
	x73 := bits.RotateLeft32(x70^x65^x59^x57, 1)
	b += bits.RotateLeft32(c, 5) + (d ^ e ^ a) + 0xca62c1d6 + x73
	d = bits.RotateLeft32(d, 30)
	x74 := bits.RotateLeft32(x71^x66^x60^x58, 1)
	a += bits.RotateLeft32(b, 5) + (c ^ d ^ e) + 0xca62c1d6 + x74
	c = bits.RotateLeft32(c, 30)
	x75 := bits.RotateLeft32(x72^x67^x61^x59, 1)
	e += bits.RotateLeft32(a, 5) + (b ^ c ^ d) + 0xca62c1d6 + x75
	b = bits.RotateLeft32(b, 30)
	x76 := bits.RotateLeft32(x73^x68^x62^x60, 1)
	d += bits.RotateLeft32(e, 5) + (a ^ b ^ c) + 0xca62c1d6 + x76
	a = bits.RotateLeft32(a, 30)
	x77 := bits.RotateLeft32(x74^x69^x63^x61, 1)
	c += bits.RotateLeft32(d, 5) + (e ^ a ^ b) + 0xca62c1d6 + x77
	e = bits.RotateLeft32(e, 30)
	x78 := bits.RotateLeft32(x75^x70^x64^x62, 1)
	b += bits.RotateLeft32(c, 5) + (d ^ e ^ a) + 0xca62c1d6 + x78
	d = bits.RotateLeft32(d, 30)
	x79 := bits.RotateLeft32(x76^x71^x65^x63, 1)
	a += bits.RotateLeft32(b, 5) + (c ^ d ^ e) + 0xca62c1d6 + x79
	c = bits.RotateLeft32(c, 30)
	binary.BigEndian.PutUint32(dst[0:4], sha1Init0+a)
	binary.BigEndian.PutUint32(dst[4:8], sha1Init1+b)
	binary.BigEndian.PutUint32(dst[8:12], sha1Init2+c)
	binary.BigEndian.PutUint32(dst[12:16], sha1Init3+d)
	binary.BigEndian.PutUint32(dst[16:20], sha1Init4+e)
}

// sha1Spawn is the one-shot form of the fast path: the child state of s at
// child index i, equal to sha1Sum(s ‖ bigendian32(i)).
func sha1Spawn(s *State, i int) State {
	var z Spawner
	z.Reset(s)
	var out State
	z.SpawnInto(&out, i)
	return out
}
