package rng

import "encoding/binary"

// This file implements SHA-1 from scratch per RFC 3174 / FIPS 180-1 — the
// algorithm the paper's reference [6] specifies and whose evaluation
// throughput bounds the whole benchmark ("the sequential rate of
// depth-first search primarily reflects the speed at which the processor
// can calculate SHA-1 hash evaluations", Section 4.1). UTS shipped its own
// SHA-1 (the BRG reference code); this reproduction does the same rather
// than treating the hash as an external dependency. The unit tests verify
// it bit-for-bit against crypto/sha1 and the published test vectors.
//
// SHA-1 is used here purely as a high-quality splittable mixing function;
// its cryptographic brokenness (collision attacks) is irrelevant to tree
// generation.

// sha1 chaining constants (FIPS 180-1 §7).
const (
	sha1Init0 = 0x67452301
	sha1Init1 = 0xefcdab89
	sha1Init2 = 0x98badcfe
	sha1Init3 = 0x10325476
	sha1Init4 = 0xc3d2e1f0

	sha1K0 = 0x5a827999 // rounds 0..19
	sha1K1 = 0x6ed9eba1 // rounds 20..39
	sha1K2 = 0x8f1bbcdc // rounds 40..59
	sha1K3 = 0xca62c1d6 // rounds 60..79
)

// sha1Sum computes the SHA-1 digest of data.
func sha1Sum(data []byte) [20]byte {
	h := [5]uint32{sha1Init0, sha1Init1, sha1Init2, sha1Init3, sha1Init4}

	// Process all complete blocks of the message proper.
	full := len(data) / 64 * 64
	for i := 0; i < full; i += 64 {
		sha1Block(&h, data[i:i+64])
	}

	// Padding: 0x80, zeros, and the bit length in the last 8 bytes
	// (FIPS 180-1 §4). At most two further blocks.
	var pad [128]byte
	rest := copy(pad[:], data[full:])
	pad[rest] = 0x80
	padLen := 64
	if rest+1+8 > 64 {
		padLen = 128
	}
	binary.BigEndian.PutUint64(pad[padLen-8:], uint64(len(data))*8)
	for i := 0; i < padLen; i += 64 {
		sha1Block(&h, pad[i:i+64])
	}

	var out [20]byte
	for i, v := range h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// sha1Block applies the compression function to one 64-byte block.
func sha1Block(h *[5]uint32, p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[4*i:])
	}
	for i := 16; i < 80; i++ {
		t := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = t<<1 | t>>31
	}

	a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = (b & c) | (^b & d) // Ch
			k = sha1K0
		case i < 40:
			f = b ^ c ^ d // Parity
			k = sha1K1
		case i < 60:
			f = (b & c) | (b & d) | (c & d) // Maj
			k = sha1K2
		default:
			f = b ^ c ^ d // Parity
			k = sha1K3
		}
		t := (a<<5 | a>>27) + f + e + k + w[i]
		e = d
		d = c
		c = b<<30 | b>>2
		b = a
		a = t
	}
	h[0] += a
	h[1] += b
	h[2] += c
	h[3] += d
	h[4] += e
}
