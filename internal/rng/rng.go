// Package rng provides the splittable pseudo-random streams that drive
// Unbalanced Tree Search (UTS) tree generation.
//
// UTS defines an implicit tree: the full description of any node is a small
// fixed-size random-number-generator state, and the i-th child's state is a
// deterministic function of the parent state and the child index i. This
// package supplies two interchangeable stream families, mirroring the RNG
// options in the original UTS distribution:
//
//   - BRG: the SHA-1 based generator used in the paper. Each node state is a
//     20-byte SHA-1 digest; spawning child i hashes the parent state
//     concatenated with i. Cryptographic mixing guarantees that sibling
//     subtrees are statistically independent, which is what gives UTS its
//     extreme, position-independent imbalance.
//   - ALFG: an additive lagged-Fibonacci generator. Much cheaper per spawn,
//     used for very large simulator runs where SHA-1 would dominate runtime.
//
// All streams are deterministic functions of the root seed, so every tree in
// this repository is exactly reproducible.
package rng

import "encoding/binary"

// StateSize is the size in bytes of a node's RNG state. Both generator
// families use 20-byte states so that node descriptors are interchangeable.
const StateSize = 20

// State is the per-node random state. It fully describes a UTS subtree.
type State [StateSize]byte

// posMask reduces a 32-bit word to a non-negative 31-bit value, matching the
// POS_MASK convention of the original UTS sources.
const posMask = 0x7fffffff

// RandMax is one greater than the largest value returned by Stream.Rand.
const RandMax = 1 << 31

// StateRand reads the 31-bit random value from the trailing four state
// bytes — the layout both built-in stream families share (BRG stores the
// digest there; ALFG caches its register output there precisely so the two
// agree). Hot traversal loops that have established the stream is a
// built-in call this directly instead of dispatching through the Stream
// interface, which would force the node's address to escape to the heap.
func StateRand(s *State) int32 {
	return int32(binary.BigEndian.Uint32(s[StateSize-4:]) & posMask)
}

// Stream generates the random values for one UTS tree. Implementations must
// be pure: identical seeds yield identical trees. Streams are stateless with
// respect to nodes (all per-node state lives in State), so a single Stream
// may be shared by any number of concurrent traversals as long as the
// implementation documents itself as safe for concurrent use.
type Stream interface {
	// Init returns the root node state for the given seed.
	Init(seed int32) State

	// Spawn returns the state of child number i (0-based) of the node with
	// state s.
	Spawn(s *State, i int) State

	// Rand extracts the node's random value in [0, RandMax) from its state.
	// The value is a deterministic function of the state alone.
	Rand(s *State) int32

	// Name reports the generator family name ("BRG" or "ALFG").
	Name() string
}

// New returns the stream implementation with the given name. Recognised
// names are "BRG" (SHA-1, the paper's generator) and "ALFG". It returns nil
// for unrecognised names.
func New(name string) Stream {
	switch name {
	case "BRG", "brg", "sha1", "SHA1":
		return BRG{}
	case "ALFG", "alfg":
		return ALFG{}
	}
	return nil
}
