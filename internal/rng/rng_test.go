package rng

import (
	"crypto/sha1"
	"testing"
	"testing/quick"
)

var streams = []Stream{BRG{}, ALFG{}}

func TestInitDeterministic(t *testing.T) {
	for _, s := range streams {
		a := s.Init(42)
		b := s.Init(42)
		if a != b {
			t.Errorf("%s: Init(42) not deterministic: %x vs %x", s.Name(), a, b)
		}
	}
}

func TestInitSeedSensitivity(t *testing.T) {
	for _, s := range streams {
		seen := map[State]int32{}
		for seed := int32(0); seed < 1000; seed++ {
			st := s.Init(seed)
			if prev, dup := seen[st]; dup {
				t.Fatalf("%s: seeds %d and %d collide", s.Name(), prev, seed)
			}
			seen[st] = seed
		}
	}
}

func TestSpawnDeterministic(t *testing.T) {
	for _, s := range streams {
		root := s.Init(0)
		a := s.Spawn(&root, 7)
		b := s.Spawn(&root, 7)
		if a != b {
			t.Errorf("%s: Spawn not deterministic", s.Name())
		}
	}
}

func TestSpawnSiblingsDistinct(t *testing.T) {
	for _, s := range streams {
		root := s.Init(0)
		seen := map[State]int{}
		for i := 0; i < 2000; i++ {
			c := s.Spawn(&root, i)
			if prev, dup := seen[c]; dup {
				t.Fatalf("%s: children %d and %d collide", s.Name(), prev, i)
			}
			seen[c] = i
		}
	}
}

func TestSpawnDoesNotMutateParent(t *testing.T) {
	for _, s := range streams {
		root := s.Init(5)
		before := root
		_ = s.Spawn(&root, 0)
		if root != before {
			t.Errorf("%s: Spawn mutated parent state", s.Name())
		}
	}
}

func TestRandRange(t *testing.T) {
	for _, s := range streams {
		st := s.Init(1)
		for i := 0; i < 10000; i++ {
			v := s.Rand(&st)
			if v < 0 || int64(v) >= RandMax {
				t.Fatalf("%s: Rand out of range: %d", s.Name(), v)
			}
			st = s.Spawn(&st, int(v)%3)
		}
	}
}

// TestRandUniformity is a coarse chi-square-free sanity check: over a long
// spawn chain the mean of Rand/RandMax should approach 1/2 and each of 16
// buckets should receive a plausible share.
func TestRandUniformity(t *testing.T) {
	const n = 50000
	for _, s := range streams {
		var sum float64
		var buckets [16]int
		st := s.Init(3)
		for i := 0; i < n; i++ {
			v := s.Rand(&st)
			sum += float64(v) / float64(RandMax)
			buckets[v>>27]++
			st = s.Spawn(&st, i&1)
		}
		mean := sum / n
		if mean < 0.47 || mean > 0.53 {
			t.Errorf("%s: mean %.4f outside [0.47,0.53]", s.Name(), mean)
		}
		for b, c := range buckets {
			exp := n / 16
			if c < exp*7/10 || c > exp*13/10 {
				t.Errorf("%s: bucket %d has %d of expected %d", s.Name(), b, c, exp)
			}
		}
	}
}

// TestSpawnAvalancheProperty checks, via testing/quick, that spawning two
// different child indices from a random parent state yields different child
// states, and that Rand depends on the state (not on the stream receiver).
func TestSpawnAvalancheProperty(t *testing.T) {
	for _, s := range streams {
		s := s
		f := func(raw [StateSize]byte, i, j uint8) bool {
			if i == j {
				return true
			}
			st := State(raw)
			a := s.Spawn(&st, int(i))
			b := s.Spawn(&st, int(j))
			return a != b
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestNewByName(t *testing.T) {
	cases := map[string]string{
		"BRG": "BRG", "brg": "BRG", "sha1": "BRG", "SHA1": "BRG",
		"ALFG": "ALFG", "alfg": "ALFG",
	}
	for in, want := range cases {
		s := New(in)
		if s == nil || s.Name() != want {
			t.Errorf("New(%q) = %v, want %s", in, s, want)
		}
	}
	if New("nope") != nil {
		t.Error("New(nope) should be nil")
	}
}

// TestBRGKnownAnswer pins the BRG construction against an independently
// computed SHA-1 value so that accidental changes to the byte layout are
// caught. SHA1(00 00 00 00) is a fixed public value.
func TestBRGKnownAnswer(t *testing.T) {
	st := BRG{}.Init(0)
	const want = "9069ca78e7450a285173431b3e52c5c25299e473"
	got := ""
	for _, b := range st {
		got += string("0123456789abcdef"[b>>4]) + string("0123456789abcdef"[b&15])
	}
	if got != want {
		t.Errorf("BRG.Init(0) = %s, want %s", got, want)
	}
}

func BenchmarkSpawnBRG(b *testing.B) {
	s := BRG{}
	st := s.Init(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st = s.Spawn(&st, i&1)
	}
}

func BenchmarkSpawnALFG(b *testing.B) {
	s := ALFG{}
	st := s.Init(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st = s.Spawn(&st, i&1)
	}
}

// TestSHA1AgainstStdlib cross-checks the from-scratch RFC 3174
// implementation against crypto/sha1 on random inputs of every length
// class (empty, sub-block, exact block, padding overflow, multi-block).
func TestSHA1AgainstStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return sha1Sum(data) == sha1.Sum(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, n := range []int{0, 1, 23, 55, 56, 63, 64, 65, 119, 120, 127, 128, 1000} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 37)
		}
		if sha1Sum(data) != sha1.Sum(data) {
			t.Errorf("length %d: digest mismatch vs crypto/sha1", n)
		}
	}
}

// TestSHA1KnownVectors pins the FIPS 180-1 / RFC 3174 published vectors.
func TestSHA1KnownVectors(t *testing.T) {
	hex := func(d [20]byte) string {
		const digits = "0123456789abcdef"
		out := make([]byte, 40)
		for i, b := range d {
			out[2*i] = digits[b>>4]
			out[2*i+1] = digits[b&15]
		}
		return string(out)
	}
	vectors := map[string]string{
		"":    "da39a3ee5e6b4b0d3255bfef95601890afd80709",
		"abc": "a9993e364706816aba3e25717850c26c9cd0d89d",
		"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq": "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
	}
	for in, want := range vectors {
		if got := hex(sha1Sum([]byte(in))); got != want {
			t.Errorf("SHA1(%q) = %s, want %s", in, got, want)
		}
	}
	// The million-'a' vector exercises long multi-block hashing.
	million := make([]byte, 1_000_000)
	for i := range million {
		million[i] = 'a'
	}
	if got := hex(sha1Sum(million)); got != "34aa973cd4c4daa4f61eeb2bdbad27316534016f" {
		t.Errorf("SHA1(1M x 'a') = %s", got)
	}
}
