package stack

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/uts"
)

// rch builds a one-node chunk tagged with id (via Height) so tests can
// track which published chunk each consumer ended up with.
func rch(id int) Chunk {
	return Chunk{uts.Node{Height: int32(id)}}
}

func rid(c Chunk) int { return int(c[0].Height) }

func TestRelaxedPublishRetractLIFO(t *testing.T) {
	r := NewRelaxed(0)
	for i := 0; i < 3; i++ {
		if rec, ok := r.Publish(rch(i)); !ok || rec != nil {
			t.Fatalf("Publish(%d) = (%v, %v), want (nil, true)", i, rec, ok)
		}
	}
	if r.Live() != 3 {
		t.Fatalf("Live() = %d, want 3", r.Live())
	}
	for want := 2; want >= 0; want-- {
		c, ok := r.Retract()
		if !ok || rid(c) != want {
			t.Fatalf("Retract() = (%v, %v), want chunk %d", c, ok, want)
		}
	}
	if c, ok := r.Retract(); ok {
		t.Fatalf("Retract() on empty ring returned %v", c)
	}
	if r.Live() != 0 || r.Unconsumed() != 0 {
		t.Fatalf("Live=%d Unconsumed=%d after drain, want 0/0", r.Live(), r.Unconsumed())
	}
}

func TestRelaxedClaimOldest(t *testing.T) {
	r := NewRelaxed(0)
	for i := 0; i < 3; i++ {
		r.Publish(rch(i))
	}
	for want := 0; want < 3; want++ {
		c, dups, ok := r.Claim(7)
		if !ok || dups != 0 || rid(c) != want {
			t.Fatalf("Claim = (%v, %d, %v), want chunk %d", c, dups, ok, want)
		}
	}
	if _, dups, ok := r.Claim(7); ok || dups != 0 {
		t.Fatalf("Claim on empty ring succeeded")
	}
	// The owner has not observed the thief's consumption, so Live still
	// reports 3; Retract discovers the losses and returns empty-handed.
	if r.Live() != 3 {
		t.Fatalf("Live() = %d before lazy discovery, want 3", r.Live())
	}
	if c, ok := r.Retract(); ok {
		t.Fatalf("Retract() after thief drain returned %v", c)
	}
	if r.Live() != 0 || r.Unconsumed() != 0 {
		t.Fatalf("Live=%d Unconsumed=%d, want 0/0", r.Live(), r.Unconsumed())
	}
}

func TestRelaxedRingFull(t *testing.T) {
	r := NewRelaxed(0)
	for i := 0; i < RelaxedSlots; i++ {
		if _, ok := r.Publish(rch(i)); !ok {
			t.Fatalf("Publish(%d) reported full on a non-full ring", i)
		}
	}
	if !r.Full() {
		t.Fatal("Full() = false on a saturated ring")
	}
	if _, ok := r.Publish(rch(99)); ok {
		t.Fatal("Publish succeeded on a full ring")
	}
	// A thief claim replaces the oldest slot's word with a claim marker,
	// so the ring is no longer full and the next publish resolves the
	// consumed position and reuses it.
	c, _, ok := r.Claim(3)
	if !ok || rid(c) != 0 {
		t.Fatalf("Claim = (%v, %v), want chunk 0", c, ok)
	}
	if r.Full() {
		t.Fatal("Full() = true after a claim freed a slot")
	}
	if rec, ok := r.Publish(rch(100)); !ok || rec != nil {
		t.Fatalf("Publish after claim = (%v, %v), want (nil, true)", rec, ok)
	}
	// Drain: owner retracts everything that is left.
	got := map[int]bool{}
	for {
		c, ok := r.Retract()
		if !ok {
			break
		}
		got[rid(c)] = true
	}
	if len(got) != RelaxedSlots {
		t.Fatalf("drained %d chunks, want %d", len(got), RelaxedSlots)
	}
	if r.Unconsumed() != 0 {
		t.Fatalf("Unconsumed() = %d after drain, want 0", r.Unconsumed())
	}
}

// TestRelaxedForcedDuplicateTake drives the claim handshake halves
// directly to force the multiplicity window: two thieves take (read) the
// same chunk before either commits. Exactly one must win the ledger CAS;
// the other must report a duplicate take, and accounting must close.
func TestRelaxedForcedDuplicateTake(t *testing.T) {
	r := NewRelaxed(0)
	r.Publish(rch(42))

	t1 := r.takeSnapshot(0, 1)
	t2 := r.takeSnapshot(0, 1)
	if !t1.ok || !t2.ok {
		t.Fatalf("takeSnapshot ok = %v/%v, want true/true", t1.ok, t2.ok)
	}
	if rid(t1.c) != 42 || rid(t2.c) != 42 {
		t.Fatalf("both snapshots should carry chunk 42, got %d/%d", rid(t1.c), rid(t2.c))
	}

	c1, dup1 := r.commitTake(t1, 1)
	c2, dup2 := r.commitTake(t2, 2)
	if c1 == nil || dup1 {
		t.Fatalf("first commit = (%v, dup=%v), want win", c1, dup1)
	}
	if c2 != nil || !dup2 {
		t.Fatalf("second commit = (%v, dup=%v), want duplicate take", c2, dup2)
	}
	if r.Unconsumed() != 0 {
		t.Fatalf("Unconsumed() = %d, want 0 (ledger settled)", r.Unconsumed())
	}
	// A third, later claimer sees the consumed ledger word and does not
	// even count a take.
	t3 := r.takeSnapshot(0, 1)
	if t3.ok {
		t.Fatal("takeSnapshot after consumption should be a silent skip")
	}
}

// TestRelaxedStaleClaimClobber forces the worst interleaving the protocol
// tolerates: a thief's stale claim-marker store lands on a slot that has
// since been republished with a newer chunk, hiding that chunk from other
// thieves. The owner's shadow-driven arbitration must recover it — via
// Retract, and via Publish's slot-reuse resolution — with nothing lost
// and nothing double-consumed.
func TestRelaxedStaleClaimClobber(t *testing.T) {
	t.Run("RetractRecovers", func(t *testing.T) {
		r := NewRelaxed(0)
		r.Publish(rch(1)) // seq 1 at position 0

		stale := r.takeSnapshot(0, 1)
		if !stale.ok {
			t.Fatal("stale takeSnapshot failed")
		}
		// Another thief claims seq 1 outright.
		if c, _, ok := r.Claim(2); !ok || rid(c) != 1 {
			t.Fatalf("Claim = (%v, %v), want chunk 1", c, ok)
		}
		// Owner wraps the ring back to position 0 and publishes seq 65.
		for i := 2; i <= RelaxedSlots+1; i++ {
			if _, ok := r.Publish(rch(i)); !ok {
				t.Fatalf("Publish(%d) unexpectedly full", i)
			}
		}
		// The stale commit clobbers position 0's pub(65) word and loses
		// the ledger CAS for seq 1: a duplicate take.
		c, dup := r.commitTake(stale, 9)
		if c != nil || !dup {
			t.Fatalf("stale commit = (%v, dup=%v), want duplicate", c, dup)
		}
		// Chunk 65 is invisible to thieves now (its slot word is a claim
		// marker), but the owner's shadow still knows seq 65 lives at
		// position 0: Retract recovers it first (newest-first).
		got, ok := r.Retract()
		if !ok || rid(got) != RelaxedSlots+1 {
			t.Fatalf("Retract = (%v, %v), want clobbered chunk %d", got, ok, RelaxedSlots+1)
		}
	})

	t.Run("PublishRecovers", func(t *testing.T) {
		r := NewRelaxed(0)
		r.Publish(rch(1))
		stale := r.takeSnapshot(0, 1)
		if c, _, ok := r.Claim(2); !ok || rid(c) != 1 {
			t.Fatalf("Claim = (%v, %v), want chunk 1", c, ok)
		}
		for i := 2; i <= RelaxedSlots+1; i++ {
			r.Publish(rch(i)) // seq 65 = chunk 65 lands at position 0
		}
		if c, dup := r.commitTake(stale, 9); c != nil || !dup {
			t.Fatalf("stale commit = (%v, dup=%v), want duplicate", c, dup)
		}
		// Thieves drain seqs 2..64 (the clobbered seq 65 is invisible).
		for i := 2; i <= RelaxedSlots; i++ {
			if c, _, ok := r.Claim(3); !ok || rid(c) != i {
				t.Fatalf("Claim drain = (%v, %v), want chunk %d", c, ok, i)
			}
		}
		// Owner keeps publishing; when position 0 is reused, the seq-65
		// shadow mismatch triggers resolution and the clobbered chunk
		// comes back as recovered.
		var recovered Chunk
		for i := RelaxedSlots + 2; i <= 2*RelaxedSlots+1; i++ {
			rec, ok := r.Publish(rch(i))
			if !ok {
				t.Fatalf("Publish(%d) unexpectedly full", i)
			}
			if rec != nil {
				if recovered != nil {
					t.Fatalf("two recoveries: %d then %d", rid(recovered), rid(rec))
				}
				recovered = rec
			}
		}
		if recovered == nil || rid(recovered) != RelaxedSlots+1 {
			t.Fatalf("Publish recovery = %v, want chunk %d", recovered, RelaxedSlots+1)
		}
	})
}

// TestRelaxedPrune publishes and consumes enough chunks that the ledger's
// fully-consumed prefix segments are released, and checks that lookups of
// pruned sequence numbers degrade to "consumed" instead of crashing.
func TestRelaxedPrune(t *testing.T) {
	r := NewRelaxed(0)
	n := 4 * relaxedSegSize // publish/consume through 4 full segments
	for i := 0; i < n; i++ {
		if _, ok := r.Publish(rch(i)); !ok {
			t.Fatalf("Publish(%d) full", i)
		}
		if c, _, ok := r.Claim(5); !ok || rid(c) != i {
			t.Fatalf("Claim = (%v, %v), want chunk %d", c, ok, i)
		}
	}
	led := r.led.Load()
	if led == nil || led.base == 0 {
		t.Fatal("no ledger segments dropped after full consumption")
	}
	if len(led.segs) > 3 {
		t.Fatalf("live ledger window is %d segments, want <= 3 (O(1) memory)", len(led.segs))
	}
	if seg, _ := r.entry(1); seg != nil {
		t.Fatal("entry(1) should be pruned")
	}
	if tk := r.takeSnapshot(0, 1); tk.ok {
		t.Fatal("takeSnapshot of a pruned sequence should skip")
	}
	if r.Unconsumed() != 0 {
		t.Fatalf("Unconsumed() = %d, want 0", r.Unconsumed())
	}
}

// TestRelaxedConcurrentStress runs the real protocol under -race: one
// owner publishing (and retracting when full), several thieves claiming
// concurrently. Every published chunk must be consumed exactly once
// across all participants, and the ledger must close to zero.
func TestRelaxedConcurrentStress(t *testing.T) {
	const n = 4000
	const thieves = 4
	r := NewRelaxed(0)

	var stop sync.WaitGroup
	done := make(chan struct{})
	got := make([][]int, thieves+1) // index 0 = owner
	dupTotal := make([]int, thieves)

	stop.Add(thieves)
	for th := 0; th < thieves; th++ {
		go func(th int) {
			defer stop.Done()
			for {
				c, d, ok := r.Claim(th + 1)
				dupTotal[th] += d
				if ok {
					got[th+1] = append(got[th+1], rid(c))
					continue
				}
				select {
				case <-done:
					return
				default:
					runtime.Gosched()
				}
			}
		}(th)
	}

	for i := 0; i < n; i++ {
		for {
			rec, ok := r.Publish(rch(i))
			if rec != nil {
				got[0] = append(got[0], rid(rec))
			}
			if ok {
				break
			}
			// Ring full: reacquire one chunk like the real owner does.
			if c, ok2 := r.Retract(); ok2 {
				got[0] = append(got[0], rid(c))
			} else {
				runtime.Gosched()
			}
		}
	}
	// Owner drains whatever the thieves have not taken.
	for {
		c, ok := r.Retract()
		if !ok {
			break
		}
		got[0] = append(got[0], rid(c))
	}
	close(done)
	stop.Wait()

	seen := make(map[int]int, n)
	for who, ids := range got {
		for _, id := range ids {
			seen[id]++
			if seen[id] > 1 {
				t.Fatalf("chunk %d consumed twice (last by participant %d)", id, who)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("consumed %d distinct chunks, want %d", len(seen), n)
	}
	if r.Unconsumed() != 0 {
		t.Fatalf("Unconsumed() = %d after drain, want 0", r.Unconsumed())
	}
	if r.Published() < n {
		t.Fatalf("Published() = %d, want >= %d", r.Published(), n)
	}
}
