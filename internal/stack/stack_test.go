package stack

import (
	"testing"
	"testing/quick"

	"repro/internal/uts"
)

// mk builds a node whose Height encodes an identity for order checks.
func mk(i int) uts.Node { return uts.Node{Height: int32(i)} }

func TestDequeLIFO(t *testing.T) {
	var d Deque
	for i := 0; i < 100; i++ {
		d.Push(mk(i))
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := 99; i >= 0; i-- {
		n, ok := d.Pop()
		if !ok || int(n.Height) != i {
			t.Fatalf("pop %d: got (%v, %v)", i, n.Height, ok)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Error("pop from empty deque succeeded")
	}
}

func TestDequeTakeBottomOrder(t *testing.T) {
	var d Deque
	for i := 0; i < 10; i++ {
		d.Push(mk(i))
	}
	got := d.TakeBottom(4)
	for i, n := range got {
		if int(n.Height) != i {
			t.Fatalf("TakeBottom[%d] = %d, want %d (oldest-first)", i, n.Height, i)
		}
	}
	if d.Len() != 6 {
		t.Fatalf("Len after TakeBottom = %d", d.Len())
	}
	// Remaining stack still pops LIFO from the top.
	n, _ := d.Pop()
	if n.Height != 9 {
		t.Fatalf("top after TakeBottom = %d", n.Height)
	}
}

func TestDequeTakeBottomPanicsBeyondLen(t *testing.T) {
	var d Deque
	d.Push(mk(1))
	defer func() {
		if recover() == nil {
			t.Error("TakeBottom(2) on len-1 deque should panic")
		}
	}()
	d.TakeBottom(2)
}

func TestDequePushAll(t *testing.T) {
	var d Deque
	d.PushAll([]uts.Node{mk(1), mk(2), mk(3)})
	n, _ := d.Pop()
	if n.Height != 3 {
		t.Errorf("top after PushAll = %d, want 3", n.Height)
	}
}

// TestDequeCompaction drives many release-style TakeBottom calls and checks
// contents survive the internal compaction.
func TestDequeCompaction(t *testing.T) {
	var d Deque
	next := 0
	taken := 0
	for round := 0; round < 3000; round++ {
		for i := 0; i < 8; i++ {
			d.Push(mk(next))
			next++
		}
		if d.Len() >= 6 {
			got := d.TakeBottom(3)
			for i, n := range got {
				if int(n.Height) != taken+i {
					t.Fatalf("round %d: TakeBottom[%d] = %d, want %d", round, i, n.Height, taken+i)
				}
			}
			taken += 3
		}
	}
	// Drain: tops come down to the first unreleased id.
	prev := next
	for d.Len() > 0 {
		n, _ := d.Pop()
		if int(n.Height) >= prev {
			t.Fatalf("pop order violated: %d then %d", prev, n.Height)
		}
		prev = int(n.Height)
	}
	if prev != taken {
		t.Fatalf("bottom-most popped = %d, want first unreleased %d", prev, taken)
	}
}

// TestDequeModel property-checks Deque against a straightforward slice
// model under random push/pop/takebottom traces.
func TestDequeModel(t *testing.T) {
	f := func(ops []uint8) bool {
		var d Deque
		var model []uts.Node
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				d.Push(mk(next))
				model = append(model, mk(next))
				next++
			case 1: // pop
				got, ok := d.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || got != want {
					return false
				}
			case 2: // take bottom up to 2
				k := 2
				if k > len(model) {
					k = len(model)
				}
				if k == 0 || k > d.Len() {
					continue
				}
				got := d.TakeBottom(k)
				for i := 0; i < k; i++ {
					if got[i] != model[i] {
						return false
					}
				}
				model = model[k:]
			}
			if d.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPoolFIFOOldest(t *testing.T) {
	var p Pool
	for i := 0; i < 5; i++ {
		p.Put(Chunk{mk(i)})
	}
	if p.Len() != 5 || p.Nodes() != 5 {
		t.Fatalf("Len=%d Nodes=%d", p.Len(), p.Nodes())
	}
	for i := 0; i < 5; i++ {
		c, ok := p.TakeOldest()
		if !ok || int(c[0].Height) != i {
			t.Fatalf("TakeOldest %d: got %v", i, c)
		}
	}
	if _, ok := p.TakeOldest(); ok {
		t.Error("TakeOldest from empty pool succeeded")
	}
}

func TestPoolTakeNewest(t *testing.T) {
	var p Pool
	for i := 0; i < 3; i++ {
		p.Put(Chunk{mk(i)})
	}
	c, ok := p.TakeNewest()
	if !ok || c[0].Height != 2 {
		t.Fatalf("TakeNewest = %v", c)
	}
	c, _ = p.TakeOldest()
	if c[0].Height != 0 {
		t.Fatalf("TakeOldest after TakeNewest = %v", c)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPoolTakeHalf(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {7, 4}, {8, 4}}
	for _, tc := range cases {
		var p Pool
		for i := 0; i < tc.n; i++ {
			p.Put(Chunk{mk(i)})
		}
		got := p.TakeHalf()
		if len(got) != tc.want {
			t.Errorf("TakeHalf of %d chunks took %d, want %d", tc.n, len(got), tc.want)
			continue
		}
		// Oldest chunks are taken, in order.
		for i, c := range got {
			if int(c[0].Height) != i {
				t.Errorf("TakeHalf[%d] = chunk %d", i, c[0].Height)
			}
		}
		if p.Len() != tc.n-tc.want {
			t.Errorf("pool left with %d chunks, want %d", p.Len(), tc.n-tc.want)
		}
	}
}

// TestPoolNoChunkLostOrDuplicated runs a long random put/take trace and
// checks conservation: every chunk put is taken exactly once.
func TestPoolNoChunkLostOrDuplicated(t *testing.T) {
	var p Pool
	seen := map[int32]bool{}
	next := 0
	taken := 0
	rand := uint32(12345)
	for step := 0; step < 20000; step++ {
		rand = rand*1664525 + 1013904223
		switch rand % 4 {
		case 0, 1:
			p.Put(Chunk{mk(next)})
			next++
		case 2:
			if c, ok := p.TakeOldest(); ok {
				if seen[c[0].Height] {
					t.Fatalf("chunk %d taken twice", c[0].Height)
				}
				seen[c[0].Height] = true
				taken++
			}
		case 3:
			for _, c := range p.TakeHalf() {
				if seen[c[0].Height] {
					t.Fatalf("chunk %d taken twice (half)", c[0].Height)
				}
				seen[c[0].Height] = true
				taken++
			}
		}
	}
	for p.Len() > 0 {
		c, _ := p.TakeNewest()
		if seen[c[0].Height] {
			t.Fatalf("chunk %d taken twice (drain)", c[0].Height)
		}
		seen[c[0].Height] = true
		taken++
	}
	if taken != next {
		t.Fatalf("put %d chunks, took %d", next, taken)
	}
}

func BenchmarkDequePushPop(b *testing.B) {
	var d Deque
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(mk(i))
		if i%3 == 0 {
			d.Pop()
		}
		if d.Len() > 1024 {
			d.TakeBottom(512)
		}
	}
}

// TestTakeHalfCountProperty property-checks the steal-half arithmetic:
// TakeHalf removes exactly ceil(len/2) chunks, always the oldest ones.
func TestTakeHalfCountProperty(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8 % 64)
		var p Pool
		for i := 0; i < n; i++ {
			p.Put(Chunk{mk(i)})
		}
		got := p.TakeHalf()
		want := (n + 1) / 2
		if n == 0 {
			return got == nil && p.Len() == 0
		}
		if len(got) != want || p.Len() != n-want {
			return false
		}
		for i, c := range got {
			if int(c[0].Height) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDequeBoundedFootprint drives the steady-state release pattern of a
// long-lived worker — push a few, take a chunk from the bottom, never fully
// drain — and checks the backing array stays proportional to the live node
// count instead of growing with the cumulative release total.
func TestDequeBoundedFootprint(t *testing.T) {
	var d Deque
	next := 0
	for i := 0; i < 64; i++ { // seed some residents
		d.Push(mk(next))
		next++
	}
	for step := 0; step < 100000; step++ {
		for i := 0; i < 4; i++ {
			d.Push(mk(next))
			next++
		}
		d.TakeBottom(4)
		if c := cap(d.buf); c > 16*64 {
			t.Fatalf("step %d: cap(buf) = %d for Len = %d; dead prefix not compacted", step, c, d.Len())
		}
	}
	if d.Len() != 64 {
		t.Fatalf("Len = %d after balanced push/take, want 64", d.Len())
	}
	// The survivors must be the 64 newest in order.
	for i := 0; i < 64; i++ {
		want := next - 1 - i
		n, ok := d.Pop()
		if !ok || int(n.Height) != want {
			t.Fatalf("pop %d: got (%v, %v), want %d", i, n.Height, ok, want)
		}
	}
}

func TestDequeTakeBottomAppendReusesBuffer(t *testing.T) {
	var d Deque
	for i := 0; i < 8; i++ {
		d.Push(mk(i))
	}
	buf := make([]uts.Node, 0, 4)
	out := d.TakeBottomAppend(buf, 4)
	if &out[0] != &buf[:1][0] {
		t.Error("TakeBottomAppend reallocated despite sufficient capacity")
	}
	for i, n := range out {
		if n.Height != int32(i) {
			t.Fatalf("out[%d] = %d, want %d (oldest first)", i, n.Height, i)
		}
	}
	if d.Len() != 4 {
		t.Fatalf("deque has %d nodes left, want 4", d.Len())
	}
}

func TestPoolTakeHalfAppendReusesBuffer(t *testing.T) {
	var p Pool
	for i := 0; i < 5; i++ {
		p.Put(Chunk{mk(i)})
	}
	buf := make([]Chunk, 0, 3)
	out := p.TakeHalfAppend(buf)
	if len(out) != 3 {
		t.Fatalf("took %d chunks, want 3 (ceil(5/2))", len(out))
	}
	if &out[0] != &buf[:1][0] {
		t.Error("TakeHalfAppend reallocated despite sufficient capacity")
	}
	for i, c := range out {
		if c[0].Height != int32(i) {
			t.Fatalf("chunk %d is %d, want %d (oldest first)", i, c[0].Height, i)
		}
	}
	if got := p.TakeHalfAppend(out[:0]); len(got) != 1 {
		t.Fatalf("second take got %d chunks, want 1", len(got))
	}
	p.TakeHalfAppend(nil) // drain the last chunk
	if got := p.TakeHalfAppend(out[:0]); len(got) != 0 {
		t.Fatalf("empty pool returned %d chunks, want dst unchanged", len(got))
	}
}
