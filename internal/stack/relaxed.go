package stack

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/uts"
)

// Relaxed is the fence-free shared (steal) region of the upc-term-relaxed
// algorithm: a fixed ring of versioned chunk slots written by a single
// owner with plain atomic stores — no lock, no read-modify-write on the
// publish path — and claimed by thieves with a load+store handshake that
// may, rarely, let two claimers take the same chunk.
//
// The design follows Castañeda & Piña's fence-free work stealing with
// multiplicity: mutual exclusion on the ring is abandoned, and correctness
// moves to accounting. Every published chunk carries a unique, monotonic
// sequence number (its chunk ID, assigned at release), and a per-ring
// ledger holds one word per ID. Taking a chunk from the ring (reading its
// payload) is unarbitrated and may happen more than once; *exploring* it
// is finalized by a single compare-and-swap on the ledger word, so exactly
// one claimer wins each ID and every loser discards its copy and reports a
// duplicate take. Final node/leaf counts are therefore exact by
// construction — the ledger dedups re-taken subtrees before they are
// explored, not after.
//
// Protocol summary (S = RelaxedSlots, seq = monotonic publish counter):
//
//	owner publish   write chunk into ledger entry seq (plain, pre-publish),
//	                then one atomic store of pub(seq) into slot bot%S.
//	thief claim     scan the slot words for the oldest pub(seq); check the
//	                ledger word is unclaimed; read the chunk (the take);
//	                store claim(seq,tag) into the slot; CAS the ledger word.
//	                Losing the CAS after the read is a duplicate take.
//	owner retract   newest-first over its private shadow of published IDs:
//	                CAS the ledger word, winner keeps the chunk. The owner
//	                CASes before reading, so it never duplicate-takes.
//
// Slot words are advisory: the unique sequence numbers make torn or stale
// slot states harmless (a stale claim store can clobber a newer publish's
// slot word — the owner detects the sequence mismatch against its shadow
// and re-arbitrates through the ledger, reclaiming the chunk if it was
// never consumed). The ledger is the single source of truth.
//
// Affinity: slots and ledger live in the owner's partition. The owner's
// publish path is one local store; a thief pays one-sided remote reads for
// the scan and a remote store+CAS for the claim — two remote references in
// place of the lock-based path's lock round trip (internal/core charges
// them through pgas.Domain).
type Relaxed struct {
	slots [RelaxedSlots]relaxedSlot
	// led is the ledger: one entry per published sequence number, in
	// fixed-size immutable segments behind a base offset. The outer
	// relaxedLedger is replaced (never mutated) when it grows, and the
	// fully-consumed prefix is dropped by advancing base — an unconsumed
	// sequence is always within the last RelaxedSlots publishes (a
	// pinned position blocks bot, see Publish), so the live window is at
	// most two segments and ledger memory stays O(1). Claimers holding
	// an older ledger pointer still read valid segments; a sequence
	// below base reads as consumed.
	led atomic.Pointer[relaxedLedger]

	// Owner-private state. The single-writer discipline is what keeps the
	// publish path free of read-modify-write operations.
	ownerMark int32  // ledger mark for owner retracts (owner id + 1)
	seq       uint64 // last assigned publish sequence number
	bot       uint64 // next publish position (slot = bot % RelaxedSlots)
	// shadow[p] is seq<<1 | consumedBit for the sequence last published at
	// position p (0 = never published); the low bit records the owner's
	// knowledge that the sequence is consumed. One word per position keeps
	// the publish and retract bookkeeping to a single array access.
	shadow [RelaxedSlots]uint64
	live   int // published positions not yet known consumed
	// scanTop is the retract scan cursor: every position strictly above it
	// (1-based absolute position index) is known consumed, so a retract
	// resumes where the previous one stopped instead of re-skipping the
	// consumed suffix. Publish resets it to bot.
	scanTop uint64
	// ownLed / ownSeg cache the owner's view of the ledger so the publish
	// and retract hot paths skip the atomic led load (and, for publishes
	// within one segment, the segment lookup entirely). ownSeg covers
	// sequence numbers (ownSegGi*relaxedSegSize, (ownSegGi+1)*relaxedSegSize].
	ownLed   *relaxedLedger
	ownSeg   *relaxedSeg
	ownSegGi uint64
}

// RelaxedSlots is the fixed ring capacity in chunks. When the ring is full
// (no slot's previous occupant is known consumed), the owner skips the
// release and keeps exploring locally — bounded-buffer semantics, the same
// back-pressure a full shared region exerts in the lock-based algorithm.
const RelaxedSlots = 64

// relaxedSegSize is the ledger segment granularity: ledger memory grows
// (and is pruned) in steps of this many published chunks. Large segments
// keep the allocator off the owner's publish path — one large-object
// allocation amortized over 2048 publishes — while the base-offset prune
// in grow still bounds the live ledger to two segments.
const relaxedSegSize = 2048

// relaxedTagBits is the width of the claim-tag field in a slot word.
const relaxedTagBits = 16
const relaxedTagMask = (1 << relaxedTagBits) - 1

// relaxedSlot is one versioned ring slot. The word encodes
// seq<<relaxedTagBits | tagField: tagField 0 is a publication, nonzero is
// a claim marker (claimer tag + 1). Sequence numbers are never reused, so
// slot-word ABA is impossible.
type relaxedSlot struct{ w atomic.Uint64 }

// relaxedSeg is one ledger segment: the arbitration word and the chunk
// payload for relaxedSegSize consecutive sequence numbers. state is 0
// while unconsumed, consumer tag + 1 after. The payload is stored
// compressed — node pointer plus length, 16 bytes per sequence instead of
// a 24-byte slice header next to an 8-byte word — because every published
// sequence allocates its entry exactly once and the allocator's zeroing
// of fresh segments is the dominant owner-side overhead after the slot
// store itself. ptr and n are written exactly once by the owner before
// the sequence is published (the publishing slot store orders them for
// claimers) and never written again, so plain reads after an atomic slot
// load are race-free.
type relaxedSeg struct {
	state [relaxedSegSize]atomic.Int32
	n     [relaxedSegSize]int32
	ptr   [relaxedSegSize]*uts.Node
}

// payload reconstructs the chunk published at entry i. The header was
// torn into ptr/n at publish; length and capacity coincide, which is
// harmless — takers only read the nodes (PushAll copies them into the
// local deque).
//
//uts:noalloc
func (g *relaxedSeg) payload(i int) Chunk {
	if g.n[i] == 0 {
		return nil
	}
	return unsafe.Slice(g.ptr[i], g.n[i])
}

// relaxedLedger is the immutable outer view of the ledger: segs[i] holds
// sequence numbers ((base+i)*relaxedSegSize, (base+i+1)*relaxedSegSize].
// Segments are never recycled — a dropped segment stays valid (and
// settled) for any claimer still holding a pointer to it; the garbage
// collector reclaims it when the last stale claimer lets go.
type relaxedLedger struct {
	base uint64 // whole segments dropped off the front
	segs []*relaxedSeg
}

// NewRelaxed returns an empty ring owned by thread owner. Only the owner
// may call Publish, Retract, Full, Live and Unconsumed; any thread may
// call Claim.
func NewRelaxed(owner int) *Relaxed {
	return &Relaxed{ownerMark: int32(owner) + 1}
}

func pubWord(s uint64) uint64 { return s << relaxedTagBits }

func claimWord(s uint64, tag int) uint64 {
	return s<<relaxedTagBits | uint64(tag&(relaxedTagMask-1)) + 1
}

// entry locates the ledger entry of sequence s. A nil return means the
// segment was consumed and dropped (s is below the ledger base).
//
//uts:noalloc
func (r *Relaxed) entry(s uint64) (*relaxedSeg, int) {
	led := r.led.Load()
	gi := (s - 1) / relaxedSegSize
	if led == nil || gi < led.base || gi-led.base >= uint64(len(led.segs)) {
		return nil, 0
	}
	return led.segs[gi-led.base], int((s - 1) % relaxedSegSize)
}

// ownerEntry is entry for the owner's publish path, growing the ledger
// when s crosses into a new segment. Growth replaces the outer ledger
// view, so concurrent claimers keep reading through their own loaded
// pointer. The common case — s lands in the same segment as the previous
// publish — is a cached-pointer hit with no atomic load.
//
//uts:noalloc
func (r *Relaxed) ownerEntry(s uint64) (*relaxedSeg, int) {
	gi := (s - 1) / relaxedSegSize
	if gi != r.ownSegGi || r.ownSeg == nil {
		led := r.ownLed
		if led == nil || gi-led.base >= uint64(len(led.segs)) {
			r.grow()
			led = r.ownLed
		}
		r.ownSeg, r.ownSegGi = led.segs[gi-led.base], gi
	}
	return r.ownSeg, int((s - 1) % relaxedSegSize)
}

// ownEntry is the owner's non-growing ledger lookup (retract and resolve
// paths): the same bounds discipline as entry, through the owner's plain
// cached view instead of the atomic pointer.
//
//uts:noalloc
func (r *Relaxed) ownEntry(s uint64) (*relaxedSeg, int) {
	led := r.ownLed
	gi := (s - 1) / relaxedSegSize
	if led == nil || gi < led.base || gi-led.base >= uint64(len(led.segs)) {
		return nil, 0
	}
	return led.segs[gi-led.base], int((s - 1) % relaxedSegSize)
}

// grow appends one ledger segment and drops the fully-consumed prefix by
// advancing base — the pruning that keeps ledger memory O(1) no matter
// how many chunks a run publishes. Owner-only, amortized over
// relaxedSegSize publishes.
func (r *Relaxed) grow() {
	old := r.ownLed
	led := &relaxedLedger{}
	if old != nil {
		led.base = old.base
		// Drop every whole segment below the floor: nothing in it can
		// still be unconsumed.
		if floorSeg := (r.pruneFloor() - 1) / relaxedSegSize; floorSeg > led.base {
			drop := floorSeg - led.base
			if drop > uint64(len(old.segs)) {
				drop = uint64(len(old.segs))
			}
			led.base += drop
			led.segs = append(led.segs, old.segs[drop:]...)
		} else {
			led.segs = append(led.segs, old.segs...)
		}
	}
	led.segs = append(led.segs, &relaxedSeg{})
	r.ownLed = led
	r.led.Store(led)
}

// pruneFloor returns the smallest sequence number that may still be
// unconsumed: every ID below it is ledger-settled, so segments entirely
// below the floor can be released. An ID not present in the owner's
// current shadow was resolved before its position was reused.
func (r *Relaxed) pruneFloor() uint64 {
	floor := r.seq + 1
	for p := 0; p < RelaxedSlots; p++ {
		if sh := r.shadow[p]; sh != 0 && sh&1 == 0 && sh>>1 < floor {
			floor = sh >> 1
		}
	}
	return floor
}

// resolve settles a position whose slot word no longer matches its
// publication: either a claimer consumed it, or a stale claim store
// clobbered a live publication. The ledger CAS arbitrates; winning means
// the chunk was never consumed and the owner reclaims it.
func (r *Relaxed) resolve(s uint64) (Chunk, bool) {
	seg, i := r.ownEntry(s)
	if seg == nil {
		return nil, false // pruned: consumed long ago
	}
	if seg.state[i].CompareAndSwap(0, r.ownerMark) {
		return seg.payload(i), true
	}
	return nil, false
}

// Full reports whether the next publish position still holds an
// unconsumed publication — the owner-side cheap check (one atomic load)
// that gates release attempts while the ring is saturated.
//
//uts:noalloc
func (r *Relaxed) Full() bool {
	p := r.bot % RelaxedSlots
	sh := r.shadow[p]
	return sh != 0 && sh&1 == 0 && r.slots[p].w.Load() == pubWord(sh>>1)
}

// Publish makes c stealable: it writes the chunk into the ledger entry of
// a fresh sequence number and publishes with a single atomic slot store —
// the entire owner-side release is store-only. It reports false (and
// leaves c unpublished) when the ring is full. The returned chunk is
// non-nil in the rare case where resolving the reused slot reclaimed a
// clobbered, never-consumed publication: the caller owns it again and
// must put it back to work.
//
// The ledger entry (count word) must be complete before the slot store
// makes the sequence number visible to thieves — ordercheck enforces
// the declared invariant by dominance.
//
//uts:noalloc
//uts:orders ledger<slot
func (r *Relaxed) Publish(c Chunk) (Chunk, bool) {
	var recovered Chunk
	p := r.bot % RelaxedSlots
	if sh := r.shadow[p]; sh != 0 && sh&1 == 0 {
		prev := sh >> 1
		if r.slots[p].w.Load() == pubWord(prev) {
			return nil, false // still published and unconsumed: ring full
		}
		if rec, ok := r.resolve(prev); ok {
			recovered = rec
		}
		r.shadow[p] = sh | 1
		r.live--
	}
	r.seq++
	s := r.seq
	seg, i := r.ownerEntry(s)
	if len(c) > 0 {
		seg.ptr[i] = &c[0]
	}
	seg.n[i] = int32(len(c))       //uts:mark ledger
	r.slots[p].w.Store(pubWord(s)) //uts:mark slot
	r.shadow[p] = s << 1
	r.bot++
	r.live++
	r.scanTop = r.bot
	return recovered, true
}

// Retract takes back the newest chunk the owner still owns, newest-first
// to mirror the lock-based reacquire (work nearest the owner's current
// exploration). The owner arbitrates through the ledger before touching
// the payload, so a retract never duplicates a thief's take; positions
// lost to thieves are marked consumed and skipped on later calls. It
// reports false once every published chunk has been consumed — by the
// owner or by thieves — which is the owner's proof that no published work
// remains before it declares itself out of work.
//
//uts:noalloc
func (r *Relaxed) Retract() (Chunk, bool) {
	if r.live == 0 {
		return nil, false
	}
	lo := uint64(1)
	if r.bot > RelaxedSlots {
		lo = r.bot - RelaxedSlots + 1
	}
	// Every position above scanTop is already consumed (the cursor only
	// moves down past consumed positions, and Publish resets it), so the
	// scan resumes where the previous retract stopped.
	for pos := r.scanTop; pos >= lo; pos-- {
		p := (pos - 1) % RelaxedSlots
		sh := r.shadow[p]
		if sh == 0 || sh&1 != 0 {
			r.scanTop = pos - 1
			continue
		}
		s := sh >> 1
		r.shadow[p] = sh | 1
		r.live--
		r.scanTop = pos - 1
		seg, i := r.ownEntry(s)
		if seg == nil {
			continue // pruned: consumed
		}
		if seg.state[i].CompareAndSwap(0, r.ownerMark) {
			return seg.payload(i), true
		}
		// A thief won this ID; keep scanning older positions.
	}
	return nil, false
}

// Claim takes the oldest published chunk on behalf of thief tag. It scans
// the slot words once (one-sided reads), then runs the load+store
// handshake on candidates oldest-first: ledger check, payload read (the
// take), claim-marker store, ledger CAS. dups counts duplicate takes —
// candidates whose payload this thief read and then lost to a concurrent
// claimer — which the caller surfaces in the run statistics. ok reports
// whether a chunk was won.
//
//uts:noalloc
func (r *Relaxed) Claim(tag int) (c Chunk, dups int, ok bool) {
	var snap [RelaxedSlots]uint64
	for p := 0; p < RelaxedSlots; p++ {
		snap[p] = r.slots[p].w.Load()
	}
	for {
		best := -1
		var bs uint64
		for p := 0; p < RelaxedSlots; p++ {
			w := snap[p]
			if w == 0 || w&relaxedTagMask != 0 {
				continue // empty or claim marker
			}
			if s := w >> relaxedTagBits; best < 0 || s < bs {
				best, bs = p, s
			}
		}
		if best < 0 {
			return nil, dups, false
		}
		snap[best] = 0
		t := r.takeSnapshot(best, bs)
		if !t.ok {
			continue
		}
		got, dup := r.commitTake(t, tag)
		if dup {
			dups++
		}
		if got != nil {
			return got, dups, true
		}
	}
}

// relaxedTake is an in-flight claim: the chunk has been taken (read) but
// not yet committed through the ledger.
type relaxedTake struct {
	p   int
	s   uint64
	seg *relaxedSeg
	i   int
	c   Chunk
	ok  bool
}

// takeSnapshot performs the read half of the claim handshake on the chunk
// published as sequence s at position p: skip if the ledger already shows
// a consumer, otherwise take (read) the payload. Between this read and
// commitTake the chunk may also be taken by others — that window is the
// protocol's multiplicity.
//
//uts:noalloc
func (r *Relaxed) takeSnapshot(p int, s uint64) (t relaxedTake) {
	seg, i := r.entry(s)
	if seg == nil || seg.state[i].Load() != 0 {
		return t // consumed (or pruned): not a take, nothing to dedup
	}
	t.p, t.s, t.seg, t.i = p, s, seg, i
	t.c = seg.payload(i)
	t.ok = true
	return t
}

// commitTake performs the store half of the handshake: the claim-marker
// store into the slot word (plain store — this is what can clobber a
// newer publication when stale, and what the owner's shadow recovery
// handles), then the ledger CAS that finalizes exactly one consumer.
// dup reports that the taken chunk was lost to a concurrent claimer.
//
//uts:noalloc
func (r *Relaxed) commitTake(t relaxedTake, tag int) (c Chunk, dup bool) {
	r.slots[t.p].w.Store(claimWord(t.s, tag))
	if t.seg.state[t.i].CompareAndSwap(0, int32(tag)+1) {
		return t.c, false
	}
	return nil, true
}

// Live returns the owner's estimate of stealable chunks: published
// positions whose consumption the owner has not yet observed. It may
// overestimate (thief consumptions are discovered lazily) but never
// underestimates, so a zero is a guarantee of an empty ring.
func (r *Relaxed) Live() int { return r.live }

// Unconsumed counts published sequence numbers whose ledger word is still
// unclaimed — the end-of-run accounting check. A drained ring (Retract
// exhausted) must report zero: every chunk ever published was finalized by
// exactly one consumer. Owner-only.
func (r *Relaxed) Unconsumed() int {
	led := r.led.Load()
	if led == nil {
		return 0
	}
	n := 0
	for idx, seg := range led.segs {
		base := (led.base + uint64(idx)) * relaxedSegSize
		for i := 0; i < relaxedSegSize && base+uint64(i) < r.seq; i++ {
			if seg.state[i].Load() == 0 {
				n++
			}
		}
	}
	return n
}

// Published returns the number of chunks ever published (the high water
// mark of sequence numbers). Owner-only; for accounting and tests.
func (r *Relaxed) Published() uint64 { return r.seq }
