// Package stack provides the depth-first-search stack structures of the UTS
// work-stealing implementations.
//
// Following Section 3.1 of the paper, a thread's stack has two regions: a
// local region, touched only by the owner with no synchronization, and a
// shared (steal) region holding whole chunks of k nodes that other threads
// may take. release() moves the k oldest local nodes into the shared
// region; reacquire() moves a chunk back; steal() removes chunks on behalf
// of another thread. The types here are pure data structures — safe for a
// single accessor only. The real-concurrency layer (internal/core) guards
// them with locks or ownership protocols exactly as each algorithm
// prescribes, and the simulator (internal/des) uses them single-threaded
// under virtual-time locks; keeping them unsynchronized is what lets both
// modes share one implementation.
package stack

import "repro/internal/uts"

// Deque is a DFS node stack with O(1) amortized removal from the bottom.
// The owner pushes and pops at the top while exploring; releases take from
// the bottom, where the nodes closest to the root — statistically the
// largest subtrees — live.
type Deque struct {
	buf  []uts.Node
	base int // index of the bottom-most live node in buf
}

// Len returns the number of nodes on the stack.
func (d *Deque) Len() int { return len(d.buf) - d.base }

// Push places n on top of the stack.
func (d *Deque) Push(n uts.Node) { d.buf = append(d.buf, n) }

// PushAll places nodes on top of the stack in order (the last element of
// nodes becomes the new top).
func (d *Deque) PushAll(nodes []uts.Node) { d.buf = append(d.buf, nodes...) }

// Pop removes and returns the top node. It reports false on an empty stack.
func (d *Deque) Pop() (uts.Node, bool) {
	if d.Len() == 0 {
		return uts.Node{}, false
	}
	n := d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	if d.Len() == 0 {
		d.reset()
	}
	return n, true
}

// TakeBottom removes the k oldest nodes and returns them in a fresh slice,
// oldest first. It panics if k exceeds Len; callers check Len first.
func (d *Deque) TakeBottom(k int) []uts.Node {
	return d.TakeBottomAppend(make([]uts.Node, 0, k), k)
}

// TakeBottomAppend is TakeBottom appending into dst, so callers holding a
// recycled buffer avoid the per-release allocation.
func (d *Deque) TakeBottomAppend(dst []uts.Node, k int) []uts.Node {
	if k > d.Len() {
		panic("stack: TakeBottom beyond length")
	}
	dst = append(dst, d.buf[d.base:d.base+k]...)
	d.base += k
	if d.Len() == 0 {
		d.reset()
	} else if d.base > len(d.buf)/2 {
		// Compact whenever the dead prefix outweighs the live suffix, so a
		// long-lived deque that releases steadily without ever draining
		// keeps its footprint proportional to Len. The copy moves fewer
		// elements than were removed since the last compaction, so the
		// amortized cost per TakeBottom stays O(k).
		n := copy(d.buf, d.buf[d.base:])
		d.buf = d.buf[:n]
		d.base = 0
	}
	return dst
}

// reset drops the backing array once empty if it has grown large, so a
// thread that briefly held a huge subtree does not pin the memory forever.
func (d *Deque) reset() {
	if cap(d.buf) > 1<<16 {
		d.buf = nil
	} else {
		d.buf = d.buf[:0]
	}
	d.base = 0
}

// Chunk is a fixed group of nodes moved between threads as a unit. The
// chunk size k is the paper's central tuning parameter (Section 4.2.1).
type Chunk = []uts.Node

// Pool is the shared (steal) region: an ordered collection of chunks,
// oldest first. Thieves take from the oldest end (work nearest the root);
// the owner reacquires from the newest end (work nearest its current
// exploration).
type Pool struct {
	chunks []Chunk
	head   int // index of oldest live chunk
}

// Len returns the number of chunks in the pool.
func (p *Pool) Len() int { return len(p.chunks) - p.head }

// Nodes returns the total node count across chunks.
func (p *Pool) Nodes() int {
	n := 0
	for _, c := range p.chunks[p.head:] {
		n += len(c)
	}
	return n
}

// Put appends a chunk at the newest end.
func (p *Pool) Put(c Chunk) { p.chunks = append(p.chunks, c) }

// TakeOldest removes and returns the oldest chunk, reporting false if the
// pool is empty.
func (p *Pool) TakeOldest() (Chunk, bool) {
	if p.Len() == 0 {
		return nil, false
	}
	c := p.chunks[p.head]
	p.chunks[p.head] = nil // release for GC
	p.head++
	p.maybeReset()
	return c, true
}

// TakeNewest removes and returns the newest chunk, reporting false if the
// pool is empty.
func (p *Pool) TakeNewest() (Chunk, bool) {
	if p.Len() == 0 {
		return nil, false
	}
	c := p.chunks[len(p.chunks)-1]
	p.chunks[len(p.chunks)-1] = nil
	p.chunks = p.chunks[:len(p.chunks)-1]
	p.maybeReset()
	return c, true
}

// TakeHalf removes ceil(Len/2) chunks from the oldest end — the rapid-
// diffusion steal of Section 3.3.2 ("half the available chunks if more
// than one chunk is available, or one chunk otherwise"). It returns nil
// if the pool is empty.
func (p *Pool) TakeHalf() []Chunk {
	if p.Len() == 0 {
		return nil
	}
	return p.TakeHalfAppend(nil)
}

// TakeHalfAppend is TakeHalf appending into dst, so callers holding a
// recycled buffer avoid the per-steal allocation. An empty pool returns
// dst unchanged.
func (p *Pool) TakeHalfAppend(dst []Chunk) []Chunk {
	n := p.Len()
	if n == 0 {
		return dst
	}
	take := (n + 1) / 2
	dst = append(dst, p.chunks[p.head:p.head+take]...)
	for i := p.head; i < p.head+take; i++ {
		p.chunks[i] = nil
	}
	p.head += take
	p.maybeReset()
	return dst
}

func (p *Pool) maybeReset() {
	if p.Len() == 0 {
		p.chunks = p.chunks[:0]
		p.head = 0
	} else if p.head > 256 && p.head > len(p.chunks)/2 {
		n := copy(p.chunks, p.chunks[p.head:])
		p.chunks = p.chunks[:n]
		p.head = 0
	}
}
