package term

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pgas"
)

func dom(t *testing.T, n int) *pgas.Domain {
	t.Helper()
	d, err := pgas.NewDomain(n, &pgas.SharedMemory)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCancelBarrierAllEnterTerminates(t *testing.T) {
	const p = 8
	b := NewCancelBarrier(dom(t, p))
	var wg sync.WaitGroup
	var terminated atomic.Int32
	for me := 0; me < p; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			if b.Enter(me) {
				terminated.Add(1)
			}
		}(me)
	}
	wg.Wait()
	if terminated.Load() != p {
		t.Errorf("%d of %d threads saw termination", terminated.Load(), p)
	}
}

func TestCancelBarrierCancelWakesWaiter(t *testing.T) {
	const p = 2
	b := NewCancelBarrier(dom(t, p))
	result := make(chan bool, 1)
	go func() { result <- b.Enter(0) }()

	// Wait until thread 0 is actually parked at the barrier.
	deadline := time.Now().Add(2 * time.Second)
	for b.Waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never reached barrier")
		}
		time.Sleep(time.Millisecond)
	}
	b.Cancel(1) // a working thread released work
	select {
	case got := <-result:
		if got {
			t.Error("canceled barrier reported termination")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not wake the waiter")
	}
	if b.Waiting() != 0 {
		t.Errorf("count = %d after cancel exit", b.Waiting())
	}
}

func TestCancelBarrierStaleCancelDoesNotBlockTermination(t *testing.T) {
	// A cancel with no waiters leaves the flag set; termination must still
	// be reachable: the first waiter consumes the stale cancel (returns
	// false), re-enters, and then all arrive.
	const p = 4
	b := NewCancelBarrier(dom(t, p))
	b.Cancel(0) // no waiters: should be a no-op (guarded), flag stays clear
	var wg sync.WaitGroup
	var term atomic.Int32
	for me := 0; me < p; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			for !b.Enter(me) {
			}
			term.Add(1)
		}(me)
	}
	wg.Wait()
	if term.Load() != p {
		t.Errorf("%d of %d terminated", term.Load(), p)
	}
}

func TestCancelBarrierRepeatedCycles(t *testing.T) {
	// Stress the cancel/re-enter path: one worker cancels repeatedly while
	// others wait, then everyone converges.
	const p = 4
	b := NewCancelBarrier(dom(t, p))
	var wg sync.WaitGroup
	var term atomic.Int32
	for me := 1; me < p; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			for !b.Enter(me) {
			}
			term.Add(1)
		}(me)
	}
	for i := 0; i < 50; i++ {
		b.Cancel(0)
		time.Sleep(time.Microsecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !b.Enter(0) {
		}
		term.Add(1)
	}()
	wg.Wait()
	if term.Load() != p {
		t.Errorf("%d of %d terminated", term.Load(), p)
	}
}

func TestStreamBarrierLastArrivalAnnounces(t *testing.T) {
	const p = 16
	b := NewStreamBarrier(dom(t, p))
	last := 0
	for me := 0; me < p; me++ {
		if b.Enter(me) {
			last++
			if me != p-1 {
				t.Errorf("thread %d announced before all arrived", me)
			}
		}
	}
	if last != 1 {
		t.Errorf("%d announcers, want exactly 1", last)
	}
	if !b.Done(3) {
		t.Error("Done should report true after announcement")
	}
}

func TestStreamBarrierLeaveBeforeSteal(t *testing.T) {
	const p = 3
	b := NewStreamBarrier(dom(t, p))
	if b.Enter(0) || b.Enter(1) {
		t.Fatal("premature announcement")
	}
	// Thread 1 probes, sees work, leaves to steal.
	if !b.Leave(1) {
		t.Fatal("Leave before termination should succeed")
	}
	if b.Waiting() != 1 {
		t.Errorf("Waiting = %d", b.Waiting())
	}
	// Thread 2 enters: count 2 of 3, no announcement (thread 1 is out
	// holding a potential steal).
	if b.Enter(2) {
		t.Fatal("announced while a thread was outside stealing")
	}
	// Thread 1's steal failed; it re-enters as the last arrival.
	if !b.Enter(1) {
		t.Fatal("final arrival should announce")
	}
	if b.Leave(0) {
		t.Error("Leave after announcement must be refused")
	}
}

func TestStreamBarrierConcurrent(t *testing.T) {
	// All threads enter concurrently; exactly one announces, everyone
	// observes Done.
	const p = 32
	b := NewStreamBarrier(dom(t, p))
	var wg sync.WaitGroup
	var announcers atomic.Int32
	for me := 0; me < p; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			if b.Enter(me) {
				announcers.Add(1)
				return
			}
			for !b.Done(me) {
				time.Sleep(time.Microsecond)
			}
		}(me)
	}
	wg.Wait()
	if announcers.Load() != 1 {
		t.Errorf("%d announcers, want 1", announcers.Load())
	}
}

func TestStreamBarrierSingleThread(t *testing.T) {
	b := NewStreamBarrier(dom(t, 1))
	if !b.Enter(0) {
		t.Error("sole thread entering should announce immediately")
	}
}
