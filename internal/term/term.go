// Package term implements the termination-detection mechanisms of the three
// algorithm families in the paper:
//
//   - CancelBarrier: the cancelable barrier of the shared-memory algorithm
//     (Section 3.1). Threads out of work wait at the barrier spinning on
//     shared flags; a thread releasing work cancels the barrier, waking
//     waiters to resume searching. All barrier state transitions go through
//     a lock, and waiters spin on remote flags — exactly the costs Section
//     3.3.1 identifies as the scalability problem.
//
//   - StreamBarrier: the streamlined detector of the distributed-memory
//     algorithm (Section 3.3.1). Threads enter only when a full probe cycle
//     shows every other thread out of work, so the barrier is almost always
//     entered exactly once. While waiting, a thread may leave to attempt a
//     steal (it must leave *before* the attempt, which preserves the
//     invariant that any thread holding work is outside the barrier) and
//     re-enters if the attempt fails. The last thread to enter launches a
//     tree-shaped termination announcement.
//
// The Dijkstra token-ring detector used by mpi-ws is message-driven and
// lives with the mpi-ws searcher in internal/core.
package term

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"repro/internal/pgas"
)

// CancelBarrier is the cancelable barrier. Semantics follow the UTS
// reference implementation: Enter returns true when all threads have
// arrived (global termination) and false when the barrier was canceled by
// a release of new work, in which case the caller resumes work discovery.
type CancelBarrier struct {
	dom *pgas.Domain
	lk  *pgas.Lock
	// count is mutated only under lk; it is atomic so the Waiting
	// diagnostic can read it without joining the lock protocol.
	count  atomic.Int32
	cancel atomic.Bool
	done   atomic.Bool
	// abort, when set and raised, releases waiters as if terminated; used
	// by cancellable runs so no thread is stranded in the spin loop.
	abort *atomic.Bool
}

// NewCancelBarrier creates the barrier for all threads of dom. The barrier
// state has affinity to thread 0, so every other thread pays remote costs
// to use it — the behaviour the paper measures.
func NewCancelBarrier(dom *pgas.Domain) *CancelBarrier {
	return &CancelBarrier{dom: dom, lk: dom.NewLock(0)}
}

// Enter blocks the calling thread at the barrier. It returns true if the
// computation terminated (every thread arrived) and false if the barrier
// was canceled because work became available.
func (b *CancelBarrier) Enter(me int) bool {
	b.lk.Acquire(me)
	if int(b.count.Add(1)) == b.dom.Threads() {
		b.done.Store(true)
	}
	b.lk.Release(me)

	for !b.cancel.Load() && !b.done.Load() {
		if b.abort != nil && b.abort.Load() {
			return true
		}
		// Waiters spin remotely on the termination/cancellation flags —
		// "an arbitrary number of remote operations" (Section 3.1).
		b.dom.ChargeRef(me, 0)
		runtime.Gosched()
	}

	b.lk.Acquire(me)
	if b.done.Load() {
		b.lk.Release(me)
		return true
	}
	b.count.Add(-1)
	b.cancel.Store(false)
	b.lk.Release(me)
	return false
}

// SetAbort installs an abort flag: once it reads true, Enter returns true
// (treating the run as terminated) instead of waiting indefinitely.
func (b *CancelBarrier) SetAbort(flag *atomic.Bool) { b.abort = flag }

// Cancel wakes barrier waiters because new work was released. It is called
// by a working thread after every release() — the remote operation whose
// cost Section 3.3.1 sets out to eliminate.
func (b *CancelBarrier) Cancel(me int) {
	b.lk.Acquire(me)
	if b.count.Load() > 0 && !b.done.Load() {
		b.cancel.Store(true)
	}
	b.lk.Release(me)
}

// Waiting reports the number of threads currently at the barrier
// (diagnostic; racy by nature).
func (b *CancelBarrier) Waiting() int {
	return int(b.count.Load())
}

// StreamBarrier is the streamlined termination detector. Protocol
// invariant: a thread enters only when it holds no work, and leaves before
// attempting any steal; therefore when the arrival count reaches the
// thread count, no work exists anywhere and the last arrival announces
// termination.
type StreamBarrier struct {
	dom       *pgas.Domain
	count     atomic.Int32
	announced atomic.Bool
}

// NewStreamBarrier creates the detector for all threads of dom.
func NewStreamBarrier(dom *pgas.Domain) *StreamBarrier {
	return &StreamBarrier{dom: dom}
}

// Enter registers the calling thread at the barrier. If it is the last to
// arrive it performs the termination announcement and Enter reports true;
// otherwise the caller should alternate Done checks with single-victim
// probes, per Section 3.3.1. Enter costs one remote reference (the barrier
// counter has affinity to thread 0).
func (b *StreamBarrier) Enter(me int) bool {
	b.dom.ChargeRef(me, 0)
	if int(b.count.Add(1)) == b.dom.Threads() {
		b.announce(me)
		return true
	}
	return false
}

// Leave withdraws the calling thread, which must do so before attempting
// an in-barrier steal. It reports false — leaving is impossible — if
// termination has already been announced, in which case the caller must
// not steal and should exit instead.
func (b *StreamBarrier) Leave(me int) bool {
	if b.announced.Load() {
		return false
	}
	b.dom.ChargeRef(me, 0)
	b.count.Add(-1)
	// A concurrent final arrival may have announced between the check and
	// the decrement; re-check so the caller never proceeds past a
	// termination announcement. (The decrement is harmless then: the run
	// is over and the counter is dead.)
	return !b.announced.Load()
}

// Done reports whether termination has been announced. Waiters poll this
// (a remote reference) between probes.
func (b *StreamBarrier) Done(me int) bool {
	b.dom.ChargeRef(me, 0)
	return b.announced.Load()
}

// AnnounceLevels returns the depth of the tree-shaped termination
// announcement for p participants: ceil(log2 p) levels of remote writes,
// zero for a single participant. It is the shared cost hook between this
// package's real barrier and the discrete-event simulator's virtual one,
// so both charge the announcer identically.
func AnnounceLevels(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// announce performs the tree-based termination announcement: the announcer
// pays ceil(log2 P) levels of remote writes rather than P−1 sequential
// ones. In a single address space one flag reaches everyone; the tree is
// reflected in the charged cost.
func (b *StreamBarrier) announce(me int) {
	p := b.dom.Threads()
	for i := 0; i < AnnounceLevels(p); i++ {
		b.dom.ChargeRef(me, (me+1)<<i%p)
	}
	b.announced.Store(true)
}

// Waiting reports the number of threads currently registered (diagnostic).
func (b *StreamBarrier) Waiting() int {
	return int(b.count.Load())
}
