package cluster

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// renderFaultRule formats a rule back into the -fault mini-language with
// every field explicit, using the same vocabulary tables the parser
// reads. Inverse of one ParseFaultSpec rule for all parseable rules.
func renderFaultRule(r FaultRule) string {
	sideNames := map[FaultSide]string{AnySide: "any", ClientSide: "client", ServerSide: "server"}
	kindName := "any"
	for name, k := range faultKindNames {
		if k == r.Kind {
			kindName = name
			break
		}
	}
	return fmt.Sprintf("rank=%d,peer=%d,side=%s,kind=%s,op=%s,p=%s,delay=%s,after=%d,times=%d",
		r.Rank, r.Peer, sideNames[r.Side], kindName, r.Op,
		strconv.FormatFloat(r.P, 'g', -1, 64), r.Delay, r.After, r.Times)
}

// FuzzParseFaultSpec drives the -fault mini-language parser with
// arbitrary input. Invariants:
//
//   - never panics (the fuzzer's implicit property);
//   - error and plan are mutually exclusive, and a returned plan has at
//     least one rule (the documented contract);
//   - every accepted rule round-trips: rendering it back to spec syntax
//     and reparsing yields the identical rule, so nothing the parser
//     accepts is outside what it can represent.
func FuzzParseFaultSpec(f *testing.F) {
	// The documented examples, each field at least once, and shapes that
	// probe parser edges (empty rules, whitespace, duplicate keys,
	// malformed values, huge numbers).
	seeds := []string{
		"rank=2,side=server,kind=cas,after=1,op=kill",
		"kind=getchunks,op=drop,p=0.1;rank=1,op=delay,delay=5ms",
		"op=sever",
		"op=blackhole,times=3 ; op=drop,peer=0",
		" rank=-1 , peer=-1 , side=any , kind=any , op=delay , delay=1h2m3s , p=1 ",
		"kind=barrier-enter,op=drop;kind=barrier-leave,op=drop;kind=barrier-done,op=drop",
		"kind=hello,op=sever;kind=getavail,op=drop;kind=putresponse,op=drop",
		"kind=stats,op=delay,delay=250us;kind=peerdown,op=drop",
		"op=kill,p=0.5,after=10,times=1",
		"op=delay,delay=0s,p=1e-9",
		"",
		";;;",
		"op=",
		"op=kill,op=drop",
		"rank=2",
		"rank=x,op=kill",
		"p=NaN,op=drop",
		"delay=5,op=delay",
		"rank=9999999999999999999,op=kill",
		"unknown=1,op=kill",
		"kind=getchunks op=drop",
		"=,=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseFaultSpec(spec)
		if err != nil {
			if plan != nil {
				t.Fatalf("ParseFaultSpec(%q) returned both a plan and error %v", spec, err)
			}
			return
		}
		if plan == nil || len(plan.Rules) == 0 {
			t.Fatalf("ParseFaultSpec(%q) succeeded with an empty plan", spec)
		}
		for _, r := range plan.Rules {
			if _, ok := map[FaultOp]bool{FaultDelay: true, FaultDrop: true, FaultSever: true,
				FaultBlackHole: true, FaultKill: true}[r.Op]; !ok {
				t.Fatalf("ParseFaultSpec(%q) produced unknown op %v", spec, r.Op)
			}
			if r.Delay < 0 {
				// A negative delay would make time.Sleep a no-op but is
				// never meaningful; the renderer still round-trips it.
				t.Logf("note: negative delay %v accepted", r.Delay)
			}
			rt := renderFaultRule(r)
			plan2, err := ParseFaultSpec(rt)
			if err != nil {
				t.Fatalf("round-trip of %q via %q failed: %v", spec, rt, err)
			}
			if len(plan2.Rules) != 1 || !reflect.DeepEqual(plan2.Rules[0], r) {
				t.Fatalf("round-trip of rule %+v via %q produced %+v", r, rt, plan2.Rules[0])
			}
		}
		// Rule count matches the number of non-empty ';' segments.
		n := 0
		for _, seg := range strings.Split(spec, ";") {
			if strings.TrimSpace(seg) != "" {
				n++
			}
		}
		if n != len(plan.Rules) {
			t.Fatalf("ParseFaultSpec(%q): %d non-empty segments but %d rules", spec, n, len(plan.Rules))
		}
	})
}

// TestRenderFaultRuleInverse pins the renderer against a hand-built rule
// so corpus shrinkage cannot silently weaken the round-trip property.
func TestRenderFaultRuleInverse(t *testing.T) {
	r := FaultRule{Rank: 3, Peer: 1, Side: ServerSide, Kind: int(kindGetChunks),
		Op: FaultDelay, P: 0.25, Delay: 5 * time.Millisecond, After: 2, Times: 7}
	plan, err := ParseFaultSpec(renderFaultRule(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Rules[0], r) {
		t.Fatalf("got %+v, want %+v", plan.Rules[0], r)
	}
}
