// Package cluster runs the paper's distributed-memory work-stealing
// algorithm (Section 3.3) across real operating-system processes connected
// by TCP — the genuinely distributed port of the UPC program.
//
// Each process hosts one worker thread and a progress engine. The progress
// engine is the software analogue of the Berkeley UPC runtime's active-
// message handlers (the machinery behind bupc_poll() that the paper's
// Section 6.1 discusses): it serves one-sided operations — reads of the
// work-available word, compare-and-swap on the request word, gets of
// reserved chunks — without involving the worker thread, which is what
// preserves the paper's work-first property over a network with no RDMA.
//
// The protocol is exactly the Section 3.3.3 algorithm:
//
//	thief                           victim
//	-----                           ------
//	GetAvail (one-sided)     →      progress engine answers
//	CASRequest (one-sided)   →      progress engine claims request word
//	                                worker polls request word (local),
//	                                reserves chunks in the handoff table,
//	         ←  PutResponse         writes amount+handle to the thief
//	GetChunks (one-sided)    →      progress engine serves from handoff
//
// Termination is the streamlined barrier of Section 3.3.1, hosted by rank
// 0's progress engine so barrier traffic never interrupts rank 0's worker.
package cluster

import (
	"repro/internal/stack"
	"repro/internal/stats"
)

// reqKind tags a request on a peer connection.
type reqKind uint8

const (
	// kindHello registers a rank and its listen address with the
	// coordinator; the reply carries the full address map once every rank
	// has registered.
	kindHello reqKind = iota
	// kindGetAvail reads the remote work-available word (one-sided).
	kindGetAvail
	// kindCASRequest attempts to claim the remote request word (one-sided).
	kindCASRequest
	// kindPutResponse writes a steal response (amount + chunk handle) into
	// the requesting thief's response slot.
	kindPutResponse
	// kindGetChunks fetches reserved chunks from the victim's handoff
	// table (one-sided; the "one-sided get" of Section 3.3.3).
	kindGetChunks
	// kindBarrierEnter/Leave/Done operate rank 0's streamlined barrier.
	kindBarrierEnter
	kindBarrierLeave
	kindBarrierDone
	// kindStats delivers a finished rank's counters to the coordinator.
	// Duplicate deliveries are ignored (the coordinator tracks which
	// ranks reported), which is what makes the RPC safe to retry.
	kindStats
	// kindPeerDown reports a detected peer failure to the coordinator so
	// the termination barrier and the stats gather can complete over the
	// surviving membership. Idempotent: repeats are harmless.
	kindPeerDown
	// kindMetrics reads a rank's live telemetry snapshot (one-sided; the
	// progress engine answers from the sampler's last fold plus a few
	// atomics). Pure read, so idempotent; rank 0's rollup poller issues it
	// on /metrics scrapes, skipping dead ranks like probe cycles do.
	kindMetrics
)

// request is the wire format of one RPC request. Fields are a union over
// the kinds; gob handles the sparse encoding.
type request struct {
	Kind reqKind
	From int

	Addr   string // kindHello: the sender's listen address
	Thief  int32  // kindCASRequest: thief ID to write into the request word
	Amount int32  // kindPutResponse: chunks granted (0 = denial)
	Handle uint64 // kindPutResponse / kindGetChunks: handoff table key
	Dead   int32  // kindPeerDown: the rank declared dead by the sender

	Stats *stats.Thread // kindStats
}

// reset clears a request for reuse. Gob leaves fields absent from a
// message untouched, so a reused decode target must be zeroed between
// requests or values leak from one request into the next.
func (r *request) reset() { *r = request{} }

// response is the wire format of one RPC reply.
type response struct {
	OK    bool          // kindCASRequest: claim succeeded; kindBarrierLeave: leave permitted
	Avail int32         // kindGetAvail
	Last  bool          // kindBarrierEnter: caller was the final arrival
	Done  bool          // kindBarrierDone
	Addrs []string      // kindHello: rank → listen address map
	Chunk []stack.Chunk // kindGetChunks

	Metrics *MetricsSnapshot // kindMetrics
}

// reset clears a reply for reuse (and drops chunk/address references so
// recycled buffers are not pinned past their encode).
func (r *response) reset() { *r = response{} }
