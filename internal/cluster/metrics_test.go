package cluster

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/uts"
)

// expositionLine matches one valid line of the Prometheus text format
// (version 0.0.4): a HELP/TYPE comment or a sample with optional labels.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN))$`)

// scrapeMetrics GETs one exposition and validates every line's syntax.
func scrapeMetrics(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	body := string(buf)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	return body
}

// sampleValue finds the value of an exact sample line ("name" or
// "name{labels}"), or NaN-like -1 when absent.
func sampleValue(body, series string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// TestMetricsRollup brings up a 3-rank in-process cluster with the
// telemetry plane enabled on every rank and scrapes rank 0 during the
// linger window: the exposition must be syntactically valid and the
// rollup must show every rank up, the per-rank families populated, and
// the cluster-wide node sum equal to the tree's exact size.
func TestMetricsRollup(t *testing.T) {
	const n = 3
	old := runtime.GOMAXPROCS(n + 1)
	defer runtime.GOMAXPROCS(old)
	sp := &uts.BenchTiny
	const linger = 4 * time.Second

	ready := make(chan string, 1)
	mready := make(chan string, 1)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := Run(Config{
			Rank: 0, Ranks: n, Coord: "127.0.0.1:0", CoordReady: ready,
			Spec: sp, Chunk: 4, Seed: 0,
			MetricsAddr: "127.0.0.1:0", MetricsReady: mready, MetricsLinger: linger,
		}); err != nil {
			errs <- err
		}
	}()
	var coord string
	select {
	case coord = <-ready:
	case err := <-errs:
		t.Fatalf("coordinator failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never came up")
	}
	for r := 1; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if _, err := Run(Config{
				Rank: r, Ranks: n, Coord: coord,
				Spec: sp, Chunk: 4, Seed: 0,
				MetricsAddr: "127.0.0.1:0", MetricsLinger: linger,
			}); err != nil {
				errs <- err
			}
		}(r)
	}
	var addr string
	select {
	case addr = <-mready:
	case <-time.After(10 * time.Second):
		t.Fatal("rank 0 metrics endpoint never came up")
	}

	// The samplers fold once a second and the rollup caches for a second,
	// so poll until the cluster-wide totals converge on the finished run.
	wantNodes := float64(3337)
	deadline := time.Now().Add(linger)
	var body string
	for {
		body = scrapeMetrics(t, addr)
		nodes, _ := sampleValue(body, "uts_cluster_nodes_total")
		up, _ := sampleValue(body, "uts_cluster_ranks_up")
		if nodes == wantNodes && up == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollup never converged (nodes=%v up=%v); last scrape:\n%s", nodes, up, body)
		}
		time.Sleep(300 * time.Millisecond)
	}

	for r := 0; r < n; r++ {
		if v, ok := sampleValue(body, fmt.Sprintf("uts_rank_up{rank=%q}", strconv.Itoa(r))); !ok || v != 1 {
			t.Errorf("uts_rank_up{rank=%d} = %v (present=%v), want 1", r, v, ok)
		}
	}
	perRank := strings.Count(body, "uts_rank_nodes_total{rank=")
	if perRank < 2 {
		t.Errorf("per-rank nodes series from %d ranks, want >= 2", perRank)
	}
	for _, series := range []string{
		"uts_dead_peers", "uts_suspected_ranks", "uts_handoff_pending",
		"uts_cluster_steals_total", "uts_cluster_rpc_retries_total",
		"uts_cluster_dead_peers", "go_goroutines",
	} {
		if _, ok := sampleValue(body, series); !ok {
			t.Errorf("series %s missing from the rollup exposition", series)
		}
	}
	if v, ok := sampleValue(body, "uts_dead_peers"); !ok || v != 0 {
		t.Errorf("uts_dead_peers = %v, want 0 on a healthy cluster", v)
	}
	if !strings.Contains(body, `uts_steal_latency_seconds{quantile="0.95"}`) {
		t.Error("local steal-latency summary missing from rank 0's exposition")
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cluster run timed out")
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
