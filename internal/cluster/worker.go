package cluster

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// search runs the Section 3.3 distributed-memory algorithm on this rank's
// worker thread, with every remote interaction going over TCP.
func (n *node) search() error {
	w := &clusterWorker{
		n:     n,
		sp:    n.cfg.Spec,
		k:     n.cfg.Chunk,
		rng:   core.NewProbeOrder(n.cfg.Seed, n.cfg.Rank),
		ranks: n.cfg.Ranks,
		me:    n.cfg.Rank,
		ex:    uts.NewExpander(n.cfg.Spec),
		lane:  n.cfg.Tracer.Lane(n.cfg.Rank),
	}
	if w.me == 0 {
		w.local.Push(uts.Root(w.sp))
	}
	w.n.t.StartTimers(time.Now())
	defer func() { w.n.t.StopTimers(time.Now()) }()
	return w.main()
}

// clusterWorker is the per-process worker thread state.
type clusterWorker struct {
	n     *node
	sp    *uts.Spec
	k     int
	me    int
	ranks int
	rng   *core.ProbeOrder

	local stack.Deque
	pool  stack.Pool
	ex    *uts.Expander
	lane  *obs.Lane // nil when the run is untraced
}

// setState pairs the stats state timer with the tracer's state event.
func (w *clusterWorker) setState(s stats.State) {
	w.n.t.Switch(s, time.Now())
	w.lane.Rec(obs.KindStateChange, -1, int64(s))
}

func (w *clusterWorker) main() error {
	t := &w.n.t
	w.lane.Rec(obs.KindStateChange, -1, int64(stats.Working))
	for {
		if err := w.work(); err != nil {
			return err
		}
		w.n.workAvail.Store(-1)
		w.setState(stats.Searching)
		got, err := w.discover()
		if err != nil {
			return err
		}
		if got {
			w.setState(stats.Working)
			continue
		}
		w.setState(stats.Idle)
		t.TermBarrierEntries++
		w.lane.Rec(obs.KindTermEnter, -1, 0)
		done, err := w.terminate()
		if err != nil {
			return err
		}
		if done {
			return w.service() // deny any last raced-in request
		}
		w.lane.Rec(obs.KindTermExit, -1, 0)
		w.setState(stats.Working)
	}
}

// work explores nodes until the local stack and the steal pool drain,
// polling the request word (a local atomic) every node.
func (w *clusterWorker) work() error {
	t := &w.n.t
	sinceYield := 0
	for {
		if sinceYield++; sinceYield >= 256 {
			sinceYield = 0
			runtime.Gosched()
		}
		if err := w.service(); err != nil {
			return err
		}
		node, ok := w.local.Pop()
		if !ok {
			c, ok2 := w.pool.TakeNewest()
			if !ok2 {
				return nil
			}
			w.n.workAvail.Store(int32(w.pool.Len()))
			t.Reacquires++
			w.lane.Rec(obs.KindReacquire, -1, int64(len(c)))
			w.local.PushAll(c)
			w.n.putNodeBuf(c) // contents copied; buffer rejoins the cycle
			continue
		}
		t.Nodes++
		if node.NumKids == 0 {
			t.Leaves++
		} else {
			w.local.PushAll(w.ex.Children(&node))
		}
		t.NoteDepth(w.local.Len())
		if w.local.Len() >= 2*w.k {
			w.pool.Put(w.local.TakeBottomAppend(w.n.getNodeBuf(), w.k))
			w.n.workAvail.Store(int32(w.pool.Len()))
			t.Releases++
			w.lane.Rec(obs.KindRelease, -1, int64(w.pool.Len()))
		}
	}
}

// service answers a pending steal request: reserve half the pool in the
// handoff table and write amount+handle into the thief's response slot.
func (w *clusterWorker) service() error {
	thief := w.n.reqWord.Load()
	if thief < 0 {
		return nil
	}
	var amount int32
	var handle uint64
	if w.pool.Len() > 0 {
		chunks := w.pool.TakeHalfAppend(w.n.getChunkBuf())
		w.n.workAvail.Store(int32(w.pool.Len()))
		amount = int32(len(chunks))
		handle = w.n.deposit(chunks)
	}
	if int(thief) == w.me {
		return fmt.Errorf("cluster: rank %d received a self-steal request", w.me)
	}
	pc, err := w.n.peer(int(thief))
	if err != nil {
		return err
	}
	if _, err := pc.call(&request{
		Kind: kindPutResponse, From: w.me, Amount: amount, Handle: handle,
	}); err != nil {
		return err
	}
	w.n.reqWord.Store(-1)
	w.n.t.Requests++
	if amount > 0 {
		w.lane.Rec(obs.KindStealGrant, thief, int64(amount))
	} else {
		w.lane.Rec(obs.KindStealDeny, thief, 0)
	}
	return nil
}

// discover probes the other ranks in pseudo-random cycles, returning true
// once work has been stolen onto the local stack and false when a full
// cycle saw every other rank entirely out of work.
func (w *clusterWorker) discover() (bool, error) {
	if w.ranks == 1 {
		return false, nil
	}
	for {
		sawWorker := false
		for _, v := range w.rng.Cycle(w.me, w.ranks) {
			if err := w.service(); err != nil {
				return false, err
			}
			wa, err := w.probe(v)
			if err != nil {
				return false, err
			}
			if wa > 0 {
				w.setState(stats.Stealing)
				ok, err := w.steal(v)
				w.setState(stats.Searching)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
			if wa >= 0 {
				sawWorker = true
			}
		}
		if !sawWorker {
			return false, nil
		}
		runtime.Gosched()
	}
}

// probe reads rank v's work-available word with a one-sided get.
func (w *clusterWorker) probe(v int) (int32, error) {
	w.n.t.Probes++
	pc, err := w.n.peer(v)
	if err != nil {
		return 0, err
	}
	resp, err := pc.call(&request{Kind: kindGetAvail, From: w.me})
	if err != nil {
		return 0, err
	}
	w.lane.Rec(obs.KindProbeResult, int32(v), int64(resp.Avail))
	return resp.Avail, nil
}

// steal claims v's request word, waits for the owner's response in the
// local slot, then fetches the reserved chunks with a one-sided get.
func (w *clusterWorker) steal(v int) (bool, error) {
	t := &w.n.t
	pc, err := w.n.peer(v)
	if err != nil {
		return false, err
	}
	w.lane.Rec(obs.KindStealRequest, int32(v), 0)
	resp, err := pc.call(&request{Kind: kindCASRequest, From: w.me, Thief: int32(w.me)})
	if err != nil {
		return false, err
	}
	if !resp.OK {
		t.FailedSteals++
		w.lane.Rec(obs.KindStealFail, int32(v), 0)
		return false, nil
	}
	for !w.n.respReady.Load() {
		if err := w.service(); err != nil {
			return false, err
		}
		runtime.Gosched()
	}
	amount, handle, from := w.n.respAmount, w.n.respHandle, w.n.respFrom
	w.n.respReady.Store(false)
	if amount == 0 {
		t.FailedSteals++
		w.lane.Rec(obs.KindStealFail, int32(v), 0)
		return false, nil
	}
	if from != v {
		return false, fmt.Errorf("cluster: rank %d got a response from %d while stealing from %d", w.me, from, v)
	}
	got, err := pc.call(&request{Kind: kindGetChunks, From: w.me, Handle: handle})
	if err != nil {
		return false, err
	}
	if len(got.Chunk) == 0 {
		return false, fmt.Errorf("cluster: rank %d: empty handoff %d at rank %d", w.me, handle, v)
	}
	t.Steals++
	t.ChunksGot += int64(len(got.Chunk))
	total := 0
	for _, c := range got.Chunk {
		total += len(c)
	}
	w.lane.Rec(obs.KindChunkTransfer, int32(v), int64(total))
	w.local.PushAll(got.Chunk[0])
	w.n.putNodeBuf(got.Chunk[0]) // contents copied; buffer rejoins the cycle
	for _, c := range got.Chunk[1:] {
		w.pool.Put(c)
	}
	w.n.workAvail.Store(int32(w.pool.Len()))
	return true, nil
}

// Barrier operations, served by rank 0's progress engine; rank 0's own
// worker shortcuts to local state.
func (w *clusterWorker) barrierEnter() (bool, error) {
	n := w.n
	if w.me == 0 {
		n.barMu.Lock()
		n.barCount++
		last := n.barCount == w.ranks
		if last {
			n.announced.Store(true)
		}
		n.barMu.Unlock()
		return last, nil
	}
	pc, err := n.peer(0)
	if err != nil {
		return false, err
	}
	resp, err := pc.call(&request{Kind: kindBarrierEnter, From: w.me})
	if err != nil {
		return false, err
	}
	return resp.Last, nil
}

func (w *clusterWorker) barrierLeave() (bool, error) {
	n := w.n
	if w.me == 0 {
		n.barMu.Lock()
		ok := !n.announced.Load()
		if ok {
			n.barCount--
		}
		n.barMu.Unlock()
		return ok, nil
	}
	pc, err := n.peer(0)
	if err != nil {
		return false, err
	}
	resp, err := pc.call(&request{Kind: kindBarrierLeave, From: w.me})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

func (w *clusterWorker) barrierDone() (bool, error) {
	n := w.n
	if w.me == 0 {
		return n.announced.Load(), nil
	}
	pc, err := n.peer(0)
	if err != nil {
		return false, err
	}
	resp, err := pc.call(&request{Kind: kindBarrierDone, From: w.me})
	if err != nil {
		return false, err
	}
	return resp.Done, nil
}

// terminate runs the streamlined termination protocol of Section 3.3.1
// over the barrier RPCs: enter only when a full cycle saw no work, keep
// servicing requests while waiting, inspect one rank at a time, and leave
// before any steal attempt.
func (w *clusterWorker) terminate() (bool, error) {
	last, err := w.barrierEnter()
	if err != nil || last {
		return last, err
	}
	for {
		if err := w.service(); err != nil {
			return false, err
		}
		done, err := w.barrierDone()
		if err != nil || done {
			return done, err
		}
		if w.ranks < 2 {
			continue
		}
		v := w.rng.Victim(w.me, w.ranks)
		wa, err := w.probe(v)
		if err != nil {
			return false, err
		}
		if wa > 0 {
			ok, err := w.barrierLeave()
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil // termination raced in; we are done
			}
			w.setState(stats.Stealing)
			got, err := w.steal(v)
			w.setState(stats.Idle)
			if err != nil {
				return false, err
			}
			if got {
				return false, nil
			}
			last, err := w.barrierEnter()
			if err != nil || last {
				return last, err
			}
		}
		runtime.Gosched()
	}
}
