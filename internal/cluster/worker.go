package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// search runs the Section 3.3 distributed-memory algorithm on this rank's
// worker thread, with every remote interaction going over TCP.
func (n *node) search() error {
	w := &clusterWorker{
		n:     n,
		sp:    n.cfg.Spec,
		k:     n.cfg.Chunk,
		rng:   core.NewProbeOrder(n.cfg.Seed, n.cfg.Rank),
		ranks: n.cfg.Ranks,
		me:    n.cfg.Rank,
		ex:    uts.NewExpander(n.cfg.Spec),
		lane:  n.cfg.Tracer.Lane(n.cfg.Rank),
		ctl:   n.pset.Controller(0),
	}
	if w.me == 0 {
		w.local.Push(uts.Root(w.sp))
	}
	w.n.t.StartTimers(time.Now())
	defer func() { w.n.t.StopTimers(time.Now()) }()
	return w.main()
}

// clusterWorker is the per-process worker thread state.
type clusterWorker struct {
	n     *node
	sp    *uts.Spec
	k     int
	me    int
	ranks int
	rng   *core.ProbeOrder

	local stack.Deque
	pool  stack.Pool
	ex    *uts.Expander
	lane  *obs.Lane // nil when the run is untraced

	nodesFlushed int64 // t.Nodes already published to the lane's live counter

	// Adaptive control (nil ctl = fixed knobs, the wiring costs nothing).
	// This rank is one PE, so it owns the set's single controller; k is
	// refreshed from it at the yield cadence, never mid-release.
	ctl      *policy.Controller
	ctlNodes int64 // t.Nodes already reported to the controller
	stolen   int   // nodes delivered by the last successful steal
}

// noteCtl feeds node progress and the current stack depth to the
// controller and refreshes the adapted chunk. Called at the yield cadence
// — a point with no release in flight, so the 2k threshold and the
// TakeBottom granularity never straddle a knob change.
func (w *clusterWorker) noteCtl() {
	if w.ctl == nil {
		return
	}
	w.ctl.NoteNodes(int(w.n.t.Nodes-w.ctlNodes), w.local.Len(), time.Now().UnixNano())
	w.ctlNodes = w.n.t.Nodes
	w.k = w.ctl.Chunk()
}

// stealTimed wraps steal with the controller's latency observation.
func (w *clusterWorker) stealTimed(v int) (bool, error) {
	if w.ctl == nil {
		return w.steal(v)
	}
	w.ctl.StealBegin(time.Now().UnixNano())
	w.stolen = 0
	ok, err := w.steal(v)
	w.ctl.StealEnd(ok, w.stolen, time.Now().UnixNano())
	return ok, err
}

// flushNodes publishes node progress to the lane's live counter (read by
// the Sampler and the kindMetrics snapshot) in batches at protocol
// cadence — one atomic add per flush, never per node, so the hot loop
// stays free of shared-memory traffic.
func (w *clusterWorker) flushNodes() {
	if d := w.n.t.Nodes - w.nodesFlushed; d != 0 {
		w.lane.AddNodes(d)
		w.nodesFlushed = w.n.t.Nodes
	}
}

// setState pairs the stats state timer with the tracer's state event.
func (w *clusterWorker) setState(s stats.State) {
	w.n.t.Switch(s, time.Now())
	w.lane.Rec(obs.KindStateChange, -1, int64(s))
}

func (w *clusterWorker) main() error {
	t := &w.n.t
	w.lane.Rec(obs.KindStateChange, -1, int64(stats.Working))
	for {
		if err := w.work(); err != nil {
			return err
		}
		w.n.workAvail.Store(-1)
		w.setState(stats.Searching)
		got, err := w.discover()
		if err != nil {
			return err
		}
		if got {
			w.setState(stats.Working)
			continue
		}
		w.setState(stats.Idle)
		// Reserved-but-unfetched handoff entries pin this worker out of
		// the termination barrier: entering with work still reserved
		// could let the run terminate with that subtree unexplored. Wait
		// for every entry to be fetched or reclaimed; reclaimed work
		// sends the worker back to Working instead.
		regained, err := w.drainHandoffs()
		if err != nil {
			return err
		}
		if regained && w.pool.Len() > 0 {
			w.setState(stats.Working)
			continue
		}
		t.TermBarrierEntries++
		w.lane.Rec(obs.KindTermEnter, -1, 0)
		done, err := w.terminate()
		if err != nil {
			return err
		}
		if done {
			return w.service() // deny any last raced-in request
		}
		w.lane.Rec(obs.KindTermExit, -1, 0)
		w.setState(stats.Working)
	}
}

// work explores nodes until the local stack and the steal pool drain,
// polling the request word (a local atomic) every node.
func (w *clusterWorker) work() error {
	t := &w.n.t
	sinceYield := 0
	for {
		if sinceYield++; sinceYield >= 256 {
			sinceYield = 0
			w.reclaim() // one atomic load while the handoff table is empty
			w.flushNodes()
			w.noteCtl()
			runtime.Gosched()
		}
		if err := w.service(); err != nil {
			return err
		}
		node, ok := w.local.Pop()
		if !ok {
			c, ok2 := w.pool.TakeNewest()
			if !ok2 {
				w.flushNodes()
				return nil
			}
			w.n.workAvail.Store(int32(w.pool.Len()))
			t.Reacquires++
			w.lane.Rec(obs.KindReacquire, -1, int64(len(c)))
			w.local.PushAll(c)
			w.n.putNodeBuf(c) // contents copied; buffer rejoins the cycle
			continue
		}
		t.Nodes++
		if node.NumKids == 0 {
			t.Leaves++
		} else {
			w.local.PushAll(w.ex.Children(&node))
		}
		t.NoteDepth(w.local.Len())
		if w.local.Len() >= 2*w.k {
			w.pool.Put(w.local.TakeBottomAppend(w.n.getNodeBuf(), w.k))
			w.n.workAvail.Store(int32(w.pool.Len()))
			t.Releases++
			w.lane.Rec(obs.KindRelease, -1, int64(w.pool.Len()))
		}
	}
}

// service answers a pending steal request: reserve half the pool in the
// handoff table and write amount+handle into the thief's response slot.
// A thief that cannot be reached is handled gracefully: the reserved
// work is withdrawn from the handoff table and returned to the pool
// (never stranded), the request word is cleared, and the worker keeps
// going — a dead thief must not take its victim down with it.
func (w *clusterWorker) service() error {
	if w.n.killed.Load() {
		return errKilled
	}
	thief := w.n.reqWord.Load()
	if thief < 0 {
		return nil
	}
	if int(thief) == w.me {
		return fmt.Errorf("cluster: rank %d received a self-steal request", w.me)
	}
	var amount int32
	var handle uint64
	if w.pool.Len() > 0 {
		chunks := w.pool.TakeHalfAppend(w.n.getChunkBuf())
		w.n.workAvail.Store(int32(w.pool.Len()))
		amount = int32(len(chunks))
		handle = w.n.deposit(chunks, thief)
	}
	_, err := w.n.call(int(thief), &request{
		Kind: kindPutResponse, From: w.me, Amount: amount, Handle: handle,
	})
	if err != nil {
		// The thief never learned the handle: un-reserve the work so it
		// is stolen or explored locally instead of leaking.
		if amount > 0 {
			if chunks, ok := w.n.withdraw(handle); ok {
				for _, c := range chunks {
					w.pool.Put(c)
				}
				w.n.putChunkBuf(chunks)
			}
			w.n.workAvail.Store(int32(w.pool.Len()))
		}
		w.n.reqWord.Store(-1)
		if errors.Is(err, errPeerDead) || errors.Is(err, errRPCFailed) {
			return nil
		}
		return err
	}
	w.n.reqWord.Store(-1)
	w.n.t.Requests++
	if amount > 0 {
		w.lane.Rec(obs.KindStealGrant, thief, int64(amount))
	} else {
		w.lane.Rec(obs.KindStealDeny, thief, 0)
		if w.ctl != nil && w.local.Len() > 0 {
			// Denied while holding private work: the release threshold is
			// withholding — evidence toward a smaller k.
			w.ctl.NoteDenied()
		}
	}
	return nil
}

// reclaim sweeps the handoff table for stranded reservations — entries
// whose thief this rank declared dead, or that sat unfetched past the
// stale bound — and puts the work back into the pool. Returns true when
// any work came back. Costs one atomic load while the table is empty,
// so the hot loop calls it on its yield cadence.
func (w *clusterWorker) reclaim() bool {
	entries := w.n.reclaimStranded()
	if len(entries) == 0 {
		return false
	}
	for _, e := range entries {
		w.lane.Rec(obs.KindHandoffReclaim, e.thief, int64(len(e.chunks)))
		for _, c := range e.chunks {
			w.pool.Put(c)
		}
		w.n.putChunkBuf(e.chunks)
	}
	w.n.workAvail.Store(int32(w.pool.Len()))
	return true
}

// drainHandoffs blocks until the handoff table is empty: every reserved
// entry has either been fetched by its thief or reclaimed back into the
// pool. It keeps servicing steal requests meanwhile (reclaimed work is
// immediately stealable again), and reports whether any reclaim put
// work back — the caller must then resume working rather than enter the
// termination barrier.
func (w *clusterWorker) drainHandoffs() (bool, error) {
	regained := false
	for w.n.handoffN.Load() > 0 {
		if err := w.service(); err != nil {
			return regained, err
		}
		if w.reclaim() {
			regained = true
		}
		runtime.Gosched()
	}
	return regained, nil
}

// discover probes the other ranks in pseudo-random cycles, returning true
// once work has been stolen onto the local stack and false when a full
// cycle saw every other rank entirely out of work. Ranks marked dead are
// skipped; a probe that dies mid-cycle degrades to "not a worker" rather
// than aborting the search. Each cycle starts with a reclaim sweep: work
// stranded by a thief that never fetched its grant counts as discovered
// work, not a reason to keep searching.
func (w *clusterWorker) discover() (bool, error) {
	if w.ranks == 1 {
		return false, nil
	}
	for {
		if w.reclaim() {
			return true, nil
		}
		sawWorker := false
		for _, v := range w.rng.Cycle(w.me, w.ranks) {
			if err := w.service(); err != nil {
				return false, err
			}
			if w.n.isDead(v) {
				continue
			}
			wa, err := w.probe(v)
			if err != nil {
				if errors.Is(err, errPeerDead) {
					continue
				}
				return false, err
			}
			if wa > 0 {
				w.setState(stats.Stealing)
				ok, err := w.stealTimed(v)
				w.setState(stats.Searching)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
			if wa >= 0 {
				sawWorker = true
			}
		}
		if !sawWorker {
			return false, nil
		}
		runtime.Gosched()
	}
}

// probe reads rank v's work-available word with a one-sided get.
func (w *clusterWorker) probe(v int) (int32, error) {
	w.n.t.Probes++
	resp, err := w.n.call(v, &request{Kind: kindGetAvail, From: w.me})
	if err != nil {
		return 0, err
	}
	w.lane.Rec(obs.KindProbeResult, int32(v), int64(resp.Avail))
	return resp.Avail, nil
}

// stealFail books one failed steal attempt at rank v.
func (w *clusterWorker) stealFail(v int) {
	w.n.t.FailedSteals++
	w.lane.Rec(obs.KindStealFail, int32(v), 0)
}

// steal claims v's request word, waits (bounded) for the owner's response
// in the local slot, then fetches the reserved chunks with a one-sided
// get. A victim that dies at any point in the exchange turns the attempt
// into a failed steal, never a hang: the CAS and the chunk fetch carry
// RPC deadlines, and the response wait is bounded by the worst case a
// live victim can spend unable to service (its own retry loop toward a
// dead peer) — after which a confirmation probe separates a dead victim
// from one whose response was merely lost.
func (w *clusterWorker) steal(v int) (bool, error) {
	t := &w.n.t
	w.lane.Rec(obs.KindStealRequest, int32(v), 0)
	resp, err := w.n.call(v, &request{Kind: kindCASRequest, From: w.me, Thief: int32(w.me)})
	if err != nil {
		if errors.Is(err, errPeerDead) || errors.Is(err, errRPCFailed) {
			w.stealFail(v)
			return false, nil
		}
		return false, err
	}
	if !resp.OK {
		w.stealFail(v)
		return false, nil
	}
	var amount int32
	var handle uint64
	respDeadline := time.Now().Add(w.n.respWait())
	spins := 0
	for {
		if w.n.respReady.Load() {
			w.n.respMu.Lock()
			a, h, from := w.n.respAmount, w.n.respHandle, w.n.respFrom
			w.n.respReady.Store(false)
			w.n.respMu.Unlock()
			if from != v {
				// Stale response from an earlier abandoned steal (its
				// victim timed out or the exchange failed): drop it and
				// keep waiting for the real one. Any grant it named is
				// taken back by its victim's reclaim sweep, so dropping
				// it loses nothing.
				continue
			}
			amount, handle = a, h
			break
		}
		if err := w.service(); err != nil {
			return false, err
		}
		if spins++; spins&0xff == 0 && time.Now().After(respDeadline) {
			// No response within the worst-case service gap. The
			// progress engine answers probes even while v's worker is
			// blocked elsewhere, so a fully retried probe separates the
			// verdicts: if it also fails, call() marks v dead; if v
			// answers, the exchange is abandoned without a verdict and
			// any reserved work returns via v's reclaim sweep.
			if _, perr := w.probe(v); perr != nil && !errors.Is(perr, errPeerDead) {
				return false, perr
			}
			w.stealFail(v)
			return false, nil
		}
		runtime.Gosched()
	}
	if amount == 0 {
		w.stealFail(v)
		return false, nil
	}
	got, err := w.n.call(v, &request{Kind: kindGetChunks, From: w.me, Handle: handle})
	if err != nil {
		if errors.Is(err, errPeerDead) || errors.Is(err, errRPCFailed) {
			// The fetch failed, but the reservation is intact at v (or
			// redeposited there when only the response leg was lost):
			// v's reclaim sweep returns the work to v's own pool.
			w.stealFail(v)
			return false, nil
		}
		return false, err
	}
	if len(got.Chunk) == 0 {
		// The entry is gone: v's reclaim sweep took it back because this
		// steal outlived the stale-entry bound. The work stays at v.
		w.stealFail(v)
		return false, nil
	}
	t.Steals++
	t.ChunksGot += int64(len(got.Chunk))
	total := 0
	for _, c := range got.Chunk {
		total += len(c)
	}
	w.stolen = total
	w.lane.Rec(obs.KindChunkTransfer, int32(v), int64(total))
	w.local.PushAll(got.Chunk[0])
	w.n.putNodeBuf(got.Chunk[0]) // contents copied; buffer rejoins the cycle
	for _, c := range got.Chunk[1:] {
		w.pool.Put(c)
	}
	w.n.workAvail.Store(int32(w.pool.Len()))
	return true, nil
}

// Barrier operations, served by rank 0's progress engine; rank 0's own
// worker shortcuts to local state. For other ranks a coordinator that
// cannot be reached is fatal — without rank 0 there is no termination
// protocol and no one to report results to — but the error arrives in
// bounded time instead of hanging.
func (w *clusterWorker) barrierEnter() (bool, error) {
	if w.me == 0 {
		return w.n.barEnter(0), nil
	}
	resp, err := w.n.call(0, &request{Kind: kindBarrierEnter, From: w.me})
	if err != nil {
		return false, err
	}
	return resp.Last, nil
}

func (w *clusterWorker) barrierLeave() (bool, error) {
	if w.me == 0 {
		return w.n.barLeave(0), nil
	}
	resp, err := w.n.call(0, &request{Kind: kindBarrierLeave, From: w.me})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

func (w *clusterWorker) barrierDone() (bool, error) {
	if w.me == 0 {
		return w.n.announced.Load(), nil
	}
	resp, err := w.n.call(0, &request{Kind: kindBarrierDone, From: w.me})
	if err != nil {
		return false, err
	}
	return resp.Done, nil
}

// terminate runs the streamlined termination protocol of Section 3.3.1
// over the barrier RPCs: enter only when a full cycle saw no work, keep
// servicing requests while waiting, inspect one rank at a time, and leave
// before any steal attempt. Dead ranks are skipped during inspection; the
// barrier itself completes over the surviving membership (rank 0 shrinks
// the required count as deaths are reported).
func (w *clusterWorker) terminate() (bool, error) {
	last, err := w.barrierEnter()
	if err != nil || last {
		return last, err
	}
	for {
		if err := w.service(); err != nil {
			return false, err
		}
		done, err := w.barrierDone()
		if err != nil || done {
			return done, err
		}
		if w.ranks < 2 {
			continue
		}
		v := w.rng.Victim(w.me, w.ranks)
		if w.n.isDead(v) {
			runtime.Gosched()
			continue
		}
		wa, err := w.probe(v)
		if err != nil {
			if errors.Is(err, errPeerDead) {
				runtime.Gosched()
				continue
			}
			return false, err
		}
		if wa > 0 {
			ok, err := w.barrierLeave()
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil // termination raced in; we are done
			}
			w.setState(stats.Stealing)
			got, err := w.stealTimed(v)
			w.setState(stats.Idle)
			if err != nil {
				return false, err
			}
			if got {
				return false, nil
			}
			last, err := w.barrierEnter()
			if err != nil || last {
				return last, err
			}
		}
		runtime.Gosched()
	}
}
