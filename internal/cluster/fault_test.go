package cluster

import (
	"errors"
	"net"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// faultCfg is the timing profile the failure tests run under: deadlines
// short enough that detecting a dead peer takes milliseconds, not the
// production 5s defaults.
func faultCfg(sp *uts.Spec, chunk int, plan *FaultPlan) Config {
	return Config{
		Spec: sp, Chunk: chunk, Fault: plan,
		RPCTimeout:   250 * time.Millisecond,
		RPCRetries:   1,
		StatsTimeout: 3 * time.Second,
		DialTimeout:  5 * time.Second,
	}
}

// launchFaulty runs an in-process cluster where ranks are allowed — even
// expected — to fail. It returns rank 0's result (nil when rank 0 itself
// failed) and every rank's error, and fails the test if the cluster does
// not wind down within deadline: bounded completion under faults is the
// property every test here is ultimately asserting.
func launchFaulty(t *testing.T, n int, base Config, deadline time.Duration) (*stats.Run, map[int]error) {
	t.Helper()
	old := runtime.GOMAXPROCS(n + 1)
	defer runtime.GOMAXPROCS(old)
	ready := make(chan string, 1)
	type rankDone struct {
		rank int
		run  *stats.Run
		err  error
	}
	results := make(chan rankDone, n)

	cfg0 := base
	cfg0.Rank, cfg0.Ranks, cfg0.Coord, cfg0.CoordReady = 0, n, "127.0.0.1:0", ready
	go func() {
		run, err := Run(cfg0)
		results <- rankDone{0, run, err}
	}()
	select {
	case coord := <-ready:
		for r := 1; r < n; r++ {
			go func(r int) {
				cfg := base
				cfg.Rank, cfg.Ranks, cfg.Coord = r, n, coord
				run, err := Run(cfg)
				results <- rankDone{r, run, err}
			}(r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never came up")
	}

	var run *stats.Run
	errs := make(map[int]error, n)
	timer := time.After(deadline)
	for got := 0; got < n; got++ {
		select {
		case d := <-results:
			errs[d.rank] = d.err
			if d.rank == 0 {
				run = d.run
			}
		case <-timer:
			t.Fatalf("cluster did not wind down within %v: %d of %d ranks finished (hang)", deadline, got, n)
		}
	}
	return run, errs
}

// TestFaultKillMidStealFourRanks is the headline degradation scenario: a
// 4-rank run where rank 2 is killed in the middle of a steal (right as it
// issues the CAS claiming a victim's request word). The survivors must
// detect the death, shrink the termination barrier, and rank 0 must return
// partial stats naming rank 2 — all within a bounded deadline.
//
// Because rank 2 dies before its first steal ever completes, it never
// holds any work, so the survivors still explore the whole tree: the
// counts match the fault-free run exactly.
func TestFaultKillMidStealFourRanks(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Rank: 2, Peer: -1, Side: ClientSide, Kind: int(kindCASRequest), Op: FaultKill},
	}}
	run, errs := launchFaulty(t, 4, faultCfg(&uts.BenchSmall, 8, plan), 60*time.Second)

	if !errors.Is(errs[2], errKilled) {
		t.Errorf("rank 2 exited with %v, want errKilled", errs[2])
	}
	for _, r := range []int{0, 1, 3} {
		if errs[r] != nil {
			t.Errorf("surviving rank %d failed: %v", r, errs[r])
		}
	}
	if run == nil {
		t.Fatal("rank 0 produced no result")
	}
	if len(run.FailedRanks) != 1 || run.FailedRanks[0] != 2 {
		t.Errorf("FailedRanks = %v, want [2]", run.FailedRanks)
	}
	if len(run.SuspectedRanks) != 1 || run.SuspectedRanks[0] != 2 {
		t.Errorf("SuspectedRanks = %v, want [2]: the coordinator saw the death verdict", run.SuspectedRanks)
	}
	if run.Nodes() != 63575 || run.Leaves() != 31887 {
		t.Errorf("counts = (%d, %d), want the full tree (63575, 31887): the victim died before holding work",
			run.Nodes(), run.Leaves())
	}
}

// requireHealthyExactRun asserts the strongest outcome a fault test can
// demand: every rank exited cleanly, the full tree was counted exactly
// once, and the run carries no degradation annotations — no missing
// stats and no death verdicts, true or false.
func requireHealthyExactRun(t *testing.T, run *stats.Run, errs map[int]error, nodes, leaves int64) {
	t.Helper()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d failed: %v", r, err)
		}
	}
	if run == nil {
		t.Fatal("rank 0 produced no result")
	}
	if run.Nodes() != nodes || run.Leaves() != leaves {
		t.Errorf("counts = (%d, %d), want exactly (%d, %d)", run.Nodes(), run.Leaves(), nodes, leaves)
	}
	if len(run.FailedRanks) != 0 {
		t.Errorf("FailedRanks = %v, want none", run.FailedRanks)
	}
	if len(run.SuspectedRanks) != 0 {
		t.Errorf("SuspectedRanks = %v, want none: no false death verdicts", run.SuspectedRanks)
	}
}

// TestFaultSeverMidSteal severs the connection right as rank 0's progress
// engine would hand stolen chunks to rank 1. The consumed handoff entry
// is redeposited on the victim side (the response never left the
// process) and the reclaim sweep returns it to rank 0's pool; the thief
// books a failed steal without a death verdict, because rank 0 still
// answers its confirmation probe over a fresh connection. One severed
// connection therefore costs one steal — not a peer, not a subtree: the
// run completes with exact counts and no degradation annotations.
func TestFaultSeverMidSteal(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Rank: 0, Peer: -1, Side: ServerSide, Kind: int(kindGetChunks), Op: FaultSever, Times: 1},
	}}
	// BenchSmall keeps rank 0 busy long enough that rank 1 reliably steals
	// (BenchTiny can drain before the thief's first steal lands, leaving
	// the fault rule nothing to fire on).
	run, errs := launchFaulty(t, 2, faultCfg(&uts.BenchSmall, 4, plan), 30*time.Second)
	requireHealthyExactRun(t, run, errs, 63575, 31887)
}

// TestFaultDropPutResponse makes the victim's steal grant vanish in
// flight: rank 0 reserves work in its handoff table, writes the response
// toward the thief, and the bytes never arrive. The victim's PutResponse
// times out, its confirmation probe finds the thief alive (no death
// verdict), and the reserved chunks come back out of the handoff table
// into the pool; the thief's own response wait expires, its probe finds
// the victim alive, and it simply retries later. Both ranks finish, the
// tree is counted exactly once, and nothing is marked failed or suspect.
func TestFaultDropPutResponse(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Rank: 0, Peer: -1, Side: ClientSide, Kind: int(kindPutResponse), Op: FaultDrop, Times: 1},
	}}
	run, errs := launchFaulty(t, 2, faultCfg(&uts.BenchSmall, 4, plan), 30*time.Second)
	requireHealthyExactRun(t, run, errs, 63575, 31887)
}

// TestFaultLostGetChunksReclaimed is the review's headline lost-work
// scenario: the thief's chunk fetch vanishes in flight after the
// victim's PutResponse succeeded, so a granted reservation sits in the
// victim's handoff table with a thief that has already given up. The
// victim's age-based reclaim sweep must take the entry back into its
// pool — without it, the subtree is never explored, yet every rank
// reports stats and the run prints a clean summary with a silently
// wrong node count.
func TestFaultLostGetChunksReclaimed(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Rank: 1, Peer: -1, Side: ClientSide, Kind: int(kindGetChunks), Op: FaultDrop, Times: 1},
	}}
	run, errs := launchFaulty(t, 2, faultCfg(&uts.BenchSmall, 4, plan), 30*time.Second)
	requireHealthyExactRun(t, run, errs, 63575, 31887)
}

// TestFaultKillBeforeBarrier kills rank 3 as it tries to enter the
// termination barrier. The barrier must complete over the surviving
// membership instead of waiting forever for a rank that will never arrive.
func TestFaultKillBeforeBarrier(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Rank: 3, Peer: -1, Side: ClientSide, Kind: int(kindBarrierEnter), Op: FaultKill},
	}}
	run, errs := launchFaulty(t, 4, faultCfg(&uts.BenchTiny, 4, plan), 60*time.Second)

	if !errors.Is(errs[3], errKilled) {
		t.Errorf("rank 3 exited with %v, want errKilled", errs[3])
	}
	for _, r := range []int{0, 1, 2} {
		if errs[r] != nil {
			t.Errorf("surviving rank %d failed: %v", r, errs[r])
		}
	}
	if run == nil {
		t.Fatal("rank 0 produced no result")
	}
	if len(run.FailedRanks) != 1 || run.FailedRanks[0] != 3 {
		t.Errorf("FailedRanks = %v, want [3]", run.FailedRanks)
	}
	if len(run.SuspectedRanks) != 1 || run.SuspectedRanks[0] != 3 {
		t.Errorf("SuspectedRanks = %v, want [3]", run.SuspectedRanks)
	}
}

// TestFaultKillMidBootstrap kills a rank before its hello reaches the
// coordinator: bootstrap must fail on every rank within the dial-timeout
// window — a bounded, descriptive error, not a hang.
func TestFaultKillMidBootstrap(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Rank: 2, Peer: -1, Side: ClientSide, Kind: int(kindHello), Op: FaultKill},
	}}
	cfg := faultCfg(&uts.BenchTiny, 4, plan)
	cfg.DialTimeout = 2 * time.Second
	run, errs := launchFaulty(t, 3, cfg, 30*time.Second)

	if run != nil {
		t.Error("rank 0 produced a result from a cluster that never finished bootstrapping")
	}
	if errs[0] == nil {
		t.Error("coordinator bootstrap succeeded with a rank missing")
	}
	if !errors.Is(errs[2], errKilled) {
		t.Errorf("rank 2 exited with %v, want errKilled", errs[2])
	}
}

// TestFaultServiceWithdrawsOnDeadThief drives the victim-side steal
// service directly against a thief that accepts the connection and never
// answers: the PutResponse must time out, the reserved chunks must come
// back out of the handoff table into the pool, and the request word must
// clear — with the worker reporting no error, because a dead thief is the
// thief's problem.
func TestFaultServiceWithdrawsOnDeadThief(t *testing.T) {
	// A listener that accepts and stays silent stands in for the thief.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	cfg, err := Config{
		Rank: 0, Ranks: 2, Spec: &uts.BenchTiny, Chunk: 4,
		RPCTimeout: 100 * time.Millisecond, RPCRetries: -1,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	n := newNode(cfg)
	n.addrs = []string{"", ln.Addr().String()}
	w := &clusterWorker{n: n, sp: n.cfg.Spec, k: cfg.Chunk, me: 0, ranks: 2}

	work := make(stack.Chunk, 4)
	for i := 0; i < 3; i++ {
		w.pool.Put(append(stack.Chunk(nil), work...))
	}
	before := w.pool.Len()
	n.workAvail.Store(int32(before))
	n.reqWord.Store(1) // rank 1 claims a steal, then never listens

	if err := w.service(); err != nil {
		t.Fatalf("service returned %v; a dead thief must not fail the victim", err)
	}
	if got := w.pool.Len(); got != before {
		t.Errorf("pool has %d chunks after withdraw, want %d (reserved work leaked)", got, before)
	}
	n.handoffMu.Lock()
	pending := len(n.handoff)
	n.handoffMu.Unlock()
	if pending != 0 {
		t.Errorf("%d handoff entries left behind", pending)
	}
	if n.reqWord.Load() != -1 {
		t.Error("request word still claimed after the failed response")
	}
	if !n.isDead(1) {
		t.Error("unresponsive thief was not marked dead")
	}
}

// reclaimNode builds a node + worker pair with one reserved handoff
// entry granted to thief, returning both and the entry's handle.
func reclaimNode(t *testing.T, thief int32) (*node, *clusterWorker, uint64) {
	t.Helper()
	cfg, err := Config{Rank: 0, Ranks: 3, Spec: &uts.BenchTiny, Chunk: 4}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	n := newNode(cfg)
	w := &clusterWorker{n: n, sp: n.cfg.Spec, k: cfg.Chunk, me: 0, ranks: 3}
	h := n.deposit(append(n.getChunkBuf(), make(stack.Chunk, 4)), thief)
	return n, w, h
}

// TestHandoffReclaimDeadThief: a reservation whose thief this rank has
// declared dead comes back into the pool on the next sweep; a fresh
// entry with a live thief does not.
func TestHandoffReclaimDeadThief(t *testing.T) {
	n, w, _ := reclaimNode(t, 2)
	if w.reclaim() {
		t.Fatal("reclaim took back a fresh entry whose thief is alive")
	}
	n.markDead(2)
	if !w.reclaim() {
		t.Fatal("reclaim skipped an entry whose thief is dead")
	}
	if got := w.pool.Len(); got != 1 {
		t.Errorf("pool has %d chunks after reclaim, want 1", got)
	}
	if n.handoffN.Load() != 0 {
		t.Error("handoff table still non-empty after reclaim")
	}
	if wa := n.workAvail.Load(); wa != 1 {
		t.Errorf("workAvail = %d after reclaim, want 1 (reclaimed work must be stealable)", wa)
	}
}

// TestHandoffReclaimStaleAge: an entry unfetched past the stale bound is
// taken back even though its thief is still considered alive — the
// false-positive-death backstop — and a thief fetching after the
// reclaim gets an empty response (a failed steal), never the work twice.
func TestHandoffReclaimStaleAge(t *testing.T) {
	n, w, h := reclaimNode(t, 1)
	n.handoffMu.Lock()
	for k, e := range n.handoff {
		e.at = time.Now().Add(-n.staleAfter() - time.Second)
		n.handoff[k] = e
	}
	n.handoffMu.Unlock()
	if !w.reclaim() {
		t.Fatal("reclaim skipped an entry older than the stale bound")
	}
	if got := w.pool.Len(); got != 1 {
		t.Errorf("pool has %d chunks after reclaim, want 1", got)
	}
	var req request
	var resp response
	req.Kind, req.Handle = kindGetChunks, h
	if _, ok := n.handleRequest(&req, &resp); !ok {
		t.Fatal("late fetch of a reclaimed handle dropped the connection")
	}
	if len(resp.Chunk) != 0 {
		t.Error("late fetch of a reclaimed handle returned chunks: work delivered twice")
	}
}

// TestHandoffRedepositStranded: chunks redeposited by the progress
// engine (a served GetChunks response that never reached the thief) are
// immediately stranded and come back on the very next sweep.
func TestHandoffRedepositStranded(t *testing.T) {
	n, w, h := reclaimNode(t, 1)
	var req request
	var resp response
	req.Kind, req.Handle = kindGetChunks, h
	recycle, ok := n.handleRequest(&req, &resp)
	if !ok || len(recycle) != 1 {
		t.Fatalf("handoff serve failed: ok=%v chunks=%d", ok, len(recycle))
	}
	n.redeposit(1, recycle)
	if !w.reclaim() {
		t.Fatal("redeposited chunks were not immediately reclaimable")
	}
	if got := w.pool.Len(); got != 1 {
		t.Errorf("pool has %d chunks after reclaim, want 1", got)
	}
}

// TestWithDefaultsClampsTimeouts: non-positive timeout configs select
// the defaults rather than producing zero backoff (rand.Int63n panics on
// n <= 0), pre-expired response deadlines, or unbounded RPCs.
func TestWithDefaultsClampsTimeouts(t *testing.T) {
	cfg, err := Config{
		Rank: 0, Ranks: 1, Spec: &uts.BenchTiny,
		RPCTimeout: -time.Second, DialTimeout: -time.Second, StatsTimeout: -time.Second,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RPCTimeout != 5*time.Second {
		t.Errorf("RPCTimeout = %v, want the 5s default", cfg.RPCTimeout)
	}
	if cfg.DialTimeout != 10*time.Second {
		t.Errorf("DialTimeout = %v, want the 10s default", cfg.DialTimeout)
	}
	if cfg.StatsTimeout != 30*time.Second {
		t.Errorf("StatsTimeout = %v, want the 30s default", cfg.StatsTimeout)
	}
}

// TestRespWaitCoversRetryBudget: the thief's response wait must exceed
// the worst case a live victim can spend inside one fully retried
// call() (redial + RPC deadline per attempt plus backoff) — otherwise
// one genuinely dead rank cascades into survivors declaring each other
// dead while blocked retrying toward it.
func TestRespWaitCoversRetryBudget(t *testing.T) {
	cfg, err := Config{Rank: 0, Ranks: 2, Spec: &uts.BenchTiny}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	n := newNode(cfg)
	budget := time.Duration(1+cfg.RPCRetries) * 2 * cfg.RPCTimeout
	if got := n.respWait(); got <= budget {
		t.Errorf("respWait = %v, want > %v (the full retry budget)", got, budget)
	}
}

// TestStatsDuplicateReportRejected locks in the coordinator-side dedup: a
// rank's counters count once no matter how often the retry loop delivers
// them, and out-of-range senders are ignored. The pre-fix code tracked
// arrivals with a bare WaitGroup counter, so a duplicate report panicked
// the coordinator via a negative counter.
func TestStatsDuplicateReportRejected(t *testing.T) {
	n := newNode(Config{Rank: 0, Ranks: 3, Spec: &uts.BenchTiny})
	th := stats.Thread{ID: 1, Nodes: 42}
	var resp response
	deliver := func(from int) {
		req := request{Kind: kindStats, From: from, Stats: &th}
		resp.reset()
		if _, ok := n.handleRequest(&req, &resp); !ok {
			t.Fatalf("stats delivery from rank %d rejected the connection", from)
		}
	}
	deliver(1)
	deliver(1) // retry of the same report
	deliver(0) // out of range: the coordinator never reports to itself
	deliver(7) // out of range: beyond the membership

	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	if len(n.collected) != 1 {
		t.Fatalf("collected %d thread reports, want 1", len(n.collected))
	}
	if n.collected[0].Nodes != 42 {
		t.Errorf("collected wrong report: %+v", n.collected[0])
	}
}

// TestBarrierMembershipShrinks exercises rank 0's barrier bookkeeping
// directly: duplicate enters are idempotent, and a death announcement
// both removes the rank from the required membership and re-checks for
// completion — the mechanism that lets termination fire with a dead rank
// still "missing".
func TestBarrierMembershipShrinks(t *testing.T) {
	n := newNode(Config{Rank: 0, Ranks: 3, Spec: &uts.BenchTiny})
	if n.barEnter(0) {
		t.Fatal("barrier announced with one of three ranks inside")
	}
	if n.barEnter(0) {
		t.Fatal("duplicate enter double-counted")
	}
	if n.barEnter(1) {
		t.Fatal("barrier announced with two of three ranks inside")
	}
	n.noteDead(2)
	if !n.announced.Load() {
		t.Fatal("barrier did not announce after the missing rank died")
	}
	// A second death report for the same rank must not corrupt the count.
	n.noteDead(2)
	n.barMu.Lock()
	defer n.barMu.Unlock()
	if n.numDead != 1 || n.barCount != 2 {
		t.Errorf("numDead=%d barCount=%d after duplicate death report, want 1 and 2", n.numDead, n.barCount)
	}
}

// TestBarrierBacksOutDyingRank covers the other ordering: a rank enters
// the barrier and then dies. It must be backed out, not counted toward
// termination on behalf of ranks still working.
func TestBarrierBacksOutDyingRank(t *testing.T) {
	n := newNode(Config{Rank: 0, Ranks: 3, Spec: &uts.BenchTiny})
	n.barEnter(1)
	n.noteDead(1)
	if n.announced.Load() {
		t.Fatal("dead rank's stale barrier entry counted toward termination")
	}
	if n.barEnter(0) {
		t.Fatal("barrier announced with a surviving rank still outside")
	}
	if !n.barEnter(2) || !n.announced.Load() {
		t.Fatal("barrier did not announce once the survivors were all inside")
	}
}

// TestGatherStatsTimeout bounds the end-of-run gather: a rank that neither
// reports nor is declared dead must only stall rank 0 for StatsTimeout,
// after which it is named in the failure list along with any dead ranks.
func TestGatherStatsTimeout(t *testing.T) {
	n := newNode(Config{Rank: 0, Ranks: 4, Spec: &uts.BenchTiny, StatsTimeout: 200 * time.Millisecond})
	th := stats.Thread{ID: 1}
	var resp response
	req := request{Kind: kindStats, From: 1, Stats: &th}
	n.handleRequest(&req, &resp)
	n.noteDead(2) // rank 2 died; rank 3 is silently wedged

	start := time.Now()
	failed := n.gatherStats()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("gather took %v, want ~StatsTimeout", elapsed)
	}
	sort.Ints(failed)
	if len(failed) != 2 || failed[0] != 2 || failed[1] != 3 {
		t.Errorf("failed ranks = %v, want [2 3]", failed)
	}
}

// TestGatherStatsSettlesEarly is the complement: once every rank has
// reported or died the gather returns immediately, long before the
// timeout backstop.
func TestGatherStatsSettlesEarly(t *testing.T) {
	n := newNode(Config{Rank: 0, Ranks: 3, Spec: &uts.BenchTiny, StatsTimeout: time.Hour})
	th := stats.Thread{ID: 1}
	var resp response
	req := request{Kind: kindStats, From: 1, Stats: &th}
	n.handleRequest(&req, &resp)
	n.noteDead(2)

	done := make(chan []int, 1)
	go func() { done <- n.gatherStats() }()
	select {
	case failed := <-done:
		if len(failed) != 1 || failed[0] != 2 {
			t.Errorf("failed ranks = %v, want [2]", failed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gather waited for the timeout despite a settled membership")
	}
}

func TestParseFaultSpec(t *testing.T) {
	plan, err := ParseFaultSpec("rank=2,side=server,kind=cas,after=1,op=kill; kind=getchunks,op=drop,p=0.25,times=3 ;rank=1,peer=0,op=delay,delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(plan.Rules))
	}
	want0 := FaultRule{Rank: 2, Peer: -1, Side: ServerSide, Kind: int(kindCASRequest), After: 1, Op: FaultKill}
	if plan.Rules[0] != want0 {
		t.Errorf("rule 0 = %+v, want %+v", plan.Rules[0], want0)
	}
	r1 := plan.Rules[1]
	if r1.Rank != -1 || r1.Kind != int(kindGetChunks) || r1.Op != FaultDrop || r1.P != 0.25 || r1.Times != 3 {
		t.Errorf("rule 1 = %+v", r1)
	}
	r2 := plan.Rules[2]
	if r2.Rank != 1 || r2.Peer != 0 || r2.Op != FaultDelay || r2.Delay != 5*time.Millisecond || r2.Kind != KindAny {
		t.Errorf("rule 2 = %+v", r2)
	}

	for _, bad := range []string{
		"",                        // no rules at all
		"rank=2",                  // missing op
		"op=explode",              // unknown op
		"kind=nope,op=drop",       // unknown kind
		"side=upsidedown,op=drop", // unknown side
		"rank=x,op=drop",          // unparsable int
		"bareword,op=drop",        // not key=value
		"hue=3,op=drop",           // unknown field
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestFaultRuleGating covers the After / Times / side / peer filters that
// the scenario tests rely on to aim a fault at one precise RPC.
func TestFaultRuleGating(t *testing.T) {
	inj := newFaultInjector(&FaultPlan{Rules: []FaultRule{
		{Rank: -1, Peer: 3, Side: ServerSide, Kind: int(kindCASRequest), Op: FaultSever, After: 2, Times: 1},
	}}, 0)
	fire := func(side FaultSide, peer int, kind reqKind) bool {
		_, _, hooked := inj.act(side, peer, kind)
		return hooked
	}
	if fire(ClientSide, 3, kindCASRequest) {
		t.Error("server-side rule fired on the client hook")
	}
	if fire(ServerSide, 1, kindCASRequest) {
		t.Error("peer filter ignored")
	}
	if fire(ServerSide, 3, kindGetAvail) {
		t.Error("kind filter ignored")
	}
	if fire(ServerSide, 3, kindCASRequest) || fire(ServerSide, 3, kindCASRequest) {
		t.Error("rule fired during its After window")
	}
	if !fire(ServerSide, 3, kindCASRequest) {
		t.Error("rule did not fire after its After window")
	}
	if fire(ServerSide, 3, kindCASRequest) {
		t.Error("rule fired beyond its Times cap")
	}

	if newFaultInjector(nil, 0) != nil {
		t.Error("nil plan compiled to a non-nil injector")
	}
	if newFaultInjector(&FaultPlan{Rules: []FaultRule{{Rank: 5, Op: FaultKill}}}, 0) != nil {
		t.Error("rules for another rank armed on this one")
	}
	var nilInj *faultInjector
	if _, _, hooked := nilInj.act(ClientSide, 0, kindGetAvail); hooked {
		t.Error("nil injector fired")
	}
}

func TestAdvertiseAddr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, port, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		advertise, want string
	}{
		{"", ln.Addr().String()},
		{"10.0.0.2", "10.0.0.2:" + port},
		{"10.0.0.2:7800", "10.0.0.2:7800"},
		{"10.0.0.2:0", "10.0.0.2:" + port},
		{"10.0.0.2:", "10.0.0.2:" + port},
	} {
		got, err := advertiseAddr(tc.advertise, ln)
		if err != nil {
			t.Errorf("advertiseAddr(%q) error: %v", tc.advertise, err)
			continue
		}
		if got != tc.want {
			t.Errorf("advertiseAddr(%q) = %q, want %q", tc.advertise, got, tc.want)
		}
	}
}

// TestBindAdvertiseCluster runs a small cluster with explicit Bind and
// Advertise settings — the multi-host plumbing, exercised on loopback —
// and checks the result is identical to the default-bound run.
func TestBindAdvertiseCluster(t *testing.T) {
	base := Config{
		Spec: &uts.BenchTiny, Chunk: 4,
		Bind: "0.0.0.0:0", Advertise: "127.0.0.1",
	}
	run, errs := launchFaulty(t, 2, base, 60*time.Second)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", r, err)
		}
	}
	if run == nil {
		t.Fatal("rank 0 produced no result")
	}
	if run.Nodes() != 3337 || run.Leaves() != 1698 {
		t.Errorf("counts = (%d, %d), want (3337, 1698)", run.Nodes(), run.Leaves())
	}
	if len(run.FailedRanks) != 0 {
		t.Errorf("healthy run reported FailedRanks = %v", run.FailedRanks)
	}
}
