// Fault injection for the cluster transport.
//
// A FaultPlan is a seeded, deterministic list of rules threaded through
// Config.Fault. Rules match RPCs by local rank, remote rank, hook side
// (thief/client vs progress-engine/server), and request kind, and fire an
// action: delay the operation, drop one message, sever the connection,
// black-hole the connection (it stays open but nothing gets through, so
// the peer runs into its deadline rather than an instant error), or kill
// the whole rank. Tests and `uts-dist -fault` use the harness to kill
// ranks mid-steal, mid-barrier, and mid-bootstrap without OS-level
// process murder, and to do so reproducibly: probabilistic rules draw
// from a rank-salted PRNG seeded by the plan.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultOp is the action a matched rule performs.
type FaultOp uint8

const (
	// FaultDelay sleeps Rule.Delay before the operation proceeds.
	FaultDelay FaultOp = iota
	// FaultDrop makes one message vanish: the sender believes the write
	// succeeded, the receiver never sees it, and the caller's deadline
	// machinery (not an instant error) detects the loss.
	FaultDrop
	// FaultSever closes the connection immediately.
	FaultSever
	// FaultBlackHole mutes the connection permanently: it stays open but
	// no further bytes are delivered, so every subsequent RPC on it runs
	// into its deadline.
	FaultBlackHole
	// FaultKill kills the whole rank: the listener closes, the progress
	// engine stops answering, and the worker exits with an error — the
	// in-process analogue of kill -9 on the rank's OS process.
	FaultKill
)

var faultOpNames = map[string]FaultOp{
	"delay": FaultDelay, "drop": FaultDrop, "sever": FaultSever,
	"blackhole": FaultBlackHole, "kill": FaultKill,
}

// String names the op in the -fault vocabulary.
func (o FaultOp) String() string {
	for name, op := range faultOpNames {
		if op == o {
			return name
		}
	}
	return fmt.Sprintf("FaultOp(%d)", uint8(o))
}

// FaultSide selects which hook a rule arms: the client side (this rank's
// outgoing RPCs) or the server side (this rank's progress engine serving
// a peer's RPC).
type FaultSide uint8

const (
	// AnySide matches both hooks.
	AnySide FaultSide = iota
	// ClientSide matches this rank's outgoing RPCs.
	ClientSide
	// ServerSide matches RPCs served by this rank's progress engine.
	ServerSide
)

// KindAny matches every request kind in a FaultRule.
const KindAny = -1

// faultKindNames maps -fault spec names to wire kinds.
var faultKindNames = map[string]int{
	"any": KindAny, "hello": int(kindHello), "getavail": int(kindGetAvail),
	"cas": int(kindCASRequest), "putresponse": int(kindPutResponse),
	"getchunks": int(kindGetChunks), "barrier-enter": int(kindBarrierEnter),
	"barrier-leave": int(kindBarrierLeave), "barrier-done": int(kindBarrierDone),
	"stats": int(kindStats), "peerdown": int(kindPeerDown),
}

// FaultRule matches a class of RPCs and fires an action. The zero value
// of the filters is permissive where that is the useful default: Side
// AnySide, P 0 meaning "always" (any value outside (0,1) fires
// unconditionally), Times 0 meaning "unlimited".
type FaultRule struct {
	// Rank is the local rank the rule arms on; -1 arms it on every rank.
	Rank int
	// Peer filters on the remote rank; -1 matches any peer.
	Peer int
	// Side filters on the hook side.
	Side FaultSide
	// Kind filters on the request kind (int(kindGetChunks), ...); use
	// KindAny to match all.
	Kind int
	// Op is the action.
	Op FaultOp
	// P is the per-match trigger probability; values outside (0,1) fire
	// on every match.
	P float64
	// Delay is the sleep for FaultDelay.
	Delay time.Duration
	// After skips the first After matches before the rule may fire.
	After int
	// Times caps how often the rule fires; 0 is unlimited.
	Times int
}

// FaultPlan is a seeded rule list shared by every rank of a run; each
// rank compiles the rules armed for it and salts the plan seed with its
// rank so probabilistic draws are reproducible yet uncorrelated.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
}

// ParseFaultSpec parses the uts-dist -fault mini-language: rules
// separated by ';', key=value fields separated by ','. Fields: rank,
// peer (ints, -1 = any, the default), side (client|server|any), kind
// (hello|getavail|cas|putresponse|getchunks|barrier-enter|barrier-leave|
// barrier-done|stats|peerdown|any), op (delay|drop|sever|blackhole|kill,
// required), p (probability), delay (Go duration), after, times (ints).
//
//	-fault "rank=2,side=server,kind=cas,after=1,op=kill"
//	-fault "kind=getchunks,op=drop,p=0.1;rank=1,op=delay,delay=5ms"
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		rule := FaultRule{Rank: -1, Peer: -1, Kind: KindAny}
		haveOp := false
		for _, field := range strings.Split(rs, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("cluster: fault field %q is not key=value", field)
			}
			var err error
			switch k {
			case "rank":
				rule.Rank, err = strconv.Atoi(v)
			case "peer":
				rule.Peer, err = strconv.Atoi(v)
			case "side":
				switch v {
				case "any":
					rule.Side = AnySide
				case "client":
					rule.Side = ClientSide
				case "server":
					rule.Side = ServerSide
				default:
					err = fmt.Errorf("unknown side %q", v)
				}
			case "kind":
				kind, ok := faultKindNames[v]
				if !ok {
					err = fmt.Errorf("unknown kind %q", v)
				}
				rule.Kind = kind
			case "op":
				op, ok := faultOpNames[v]
				if !ok {
					err = fmt.Errorf("unknown op %q", v)
				}
				rule.Op, haveOp = op, ok
			case "p":
				rule.P, err = strconv.ParseFloat(v, 64)
				if err == nil && (math.IsNaN(rule.P) || math.IsInf(rule.P, 0)) {
					err = fmt.Errorf("probability %q is not finite", v)
				}
			case "delay":
				rule.Delay, err = time.ParseDuration(v)
			case "after":
				rule.After, err = strconv.Atoi(v)
			case "times":
				rule.Times, err = strconv.Atoi(v)
			default:
				err = fmt.Errorf("unknown fault field %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: fault rule %q: %v", rs, err)
			}
		}
		if !haveOp {
			return nil, fmt.Errorf("cluster: fault rule %q has no op", rs)
		}
		plan.Rules = append(plan.Rules, rule)
	}
	if len(plan.Rules) == 0 {
		return nil, fmt.Errorf("cluster: fault spec %q contains no rules", spec)
	}
	return plan, nil
}

// faultInjector is one rank's compiled view of the plan. nil (no plan,
// or no rules armed for this rank) is a valid injector whose hooks are
// free no-ops, so fault-free runs pay a single nil check per RPC.
type faultInjector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []faultRuleState
}

type faultRuleState struct {
	FaultRule
	seen  int // matches observed (for After)
	fired int // times fired (for Times)
}

// newFaultInjector compiles the rules armed for rank. Returns nil when
// nothing is armed so the hot-path hooks stay a nil check.
func newFaultInjector(plan *FaultPlan, rank int) *faultInjector {
	if plan == nil {
		return nil
	}
	var rules []faultRuleState
	for _, r := range plan.Rules {
		if r.Rank == -1 || r.Rank == rank {
			rules = append(rules, faultRuleState{FaultRule: r})
		}
	}
	if len(rules) == 0 {
		return nil
	}
	return &faultInjector{
		rng:   rand.New(rand.NewSource(plan.Seed*1000003 + int64(rank) + 1)),
		rules: rules,
	}
}

// act consults the rules for one RPC on one side; the first rule that
// fires wins. Nil-safe.
func (f *faultInjector) act(side FaultSide, peer int, kind reqKind) (FaultOp, time.Duration, bool) {
	if f == nil {
		return 0, 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.rules {
		r := &f.rules[i]
		if r.Side != AnySide && r.Side != side {
			continue
		}
		if r.Peer != -1 && r.Peer != peer {
			continue
		}
		if r.Kind != KindAny && r.Kind != int(kind) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		if r.P > 0 && r.P < 1 && f.rng.Float64() >= r.P {
			continue
		}
		r.fired++
		return r.Op, r.Delay, true
	}
	return 0, 0, false
}

// faultConn wraps a transport connection so rules can make its traffic
// vanish without closing it: while swallow is set, writes report success
// but deliver nothing, which is what forces the peer into its deadline
// path instead of a tidy connection-reset error.
type faultConn struct {
	net.Conn
	swallow atomic.Bool
}

// Write delivers b, or pretends to when the conn is black-holed.
func (c *faultConn) Write(b []byte) (int, error) {
	if c.swallow.Load() {
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// blackhole mutes conn if it is fault-wrapped; reports whether it was.
func blackhole(conn net.Conn) bool {
	if fc, ok := conn.(*faultConn); ok {
		fc.swallow.Store(true)
		return true
	}
	return false
}

// faultListener wraps inbound connections in faultConns so server-side
// rules can black-hole them, and forwards deadline control so the
// bootstrap accept timeout works through the wrapper.
type faultListener struct {
	net.Listener
}

// Accept wraps the accepted connection.
func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: conn}, nil
}

// SetDeadline forwards to the underlying listener when it supports
// deadlines (TCP listeners do).
func (l *faultListener) SetDeadline(t time.Time) error {
	if d, ok := l.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}
