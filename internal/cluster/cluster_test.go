package cluster

import (
	"encoding/gob"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/uts"
)

// launch runs an in-process cluster of n ranks over real TCP loopback and
// returns rank 0's aggregated result.
//
// The intended deployment is one OS process per rank, where the operating
// system timeshares ranks preemptively. Hosting all ranks in one test
// process on a single-core machine would let one worker goroutine
// monopolize the sole P between ~10ms async preemptions, so the harness
// raises GOMAXPROCS to give each rank an OS thread.
func launch(t *testing.T, n int, sp *uts.Spec, chunk int, seed int64) *stats.Run {
	t.Helper()
	old := runtime.GOMAXPROCS(n + 1)
	defer runtime.GOMAXPROCS(old)
	ready := make(chan string, 1)
	results := make(chan *stats.Run, 1)
	errs := make(chan error, n)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		run, err := Run(Config{
			Rank: 0, Ranks: n, Coord: "127.0.0.1:0", CoordReady: ready,
			Spec: sp, Chunk: chunk, Seed: seed,
		})
		if err != nil {
			errs <- err
			return
		}
		results <- run
	}()

	var coord string
	if n > 1 {
		select {
		case coord = <-ready:
		case err := <-errs:
			t.Fatalf("coordinator failed to start: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("coordinator never came up")
		}
		for r := 1; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if _, err := Run(Config{
					Rank: r, Ranks: n, Coord: coord,
					Spec: sp, Chunk: chunk, Seed: seed,
				}); err != nil {
					errs <- err
				}
			}(r)
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cluster run timed out (deadlock?)")
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	select {
	case run := <-results:
		return run
	default:
		t.Fatal("rank 0 produced no result")
		return nil
	}
}

func TestSingleRank(t *testing.T) {
	run := launch(t, 1, &uts.BenchTiny, 8, 0)
	if run.Nodes() != 3337 {
		t.Errorf("nodes = %d, want 3337", run.Nodes())
	}
}

func TestTwoRanks(t *testing.T) {
	run := launch(t, 2, &uts.BenchTiny, 4, 0)
	if run.Nodes() != 3337 || run.Leaves() != 1698 {
		t.Errorf("counts = (%d, %d), want (3337, 1698)", run.Nodes(), run.Leaves())
	}
	if len(run.Threads) != 2 {
		t.Errorf("collected stats from %d ranks", len(run.Threads))
	}
}

func TestFourRanksSteals(t *testing.T) {
	run := launch(t, 4, &uts.BenchSmall, 8, 1)
	if run.Nodes() != 63575 {
		t.Errorf("nodes = %d, want 63575", run.Nodes())
	}
	if run.Sum(func(th *stats.Thread) int64 { return th.Steals }) == 0 {
		t.Error("no steals happened across a 4-process run of an unbalanced tree")
	}
	// Work must actually distribute. OS scheduling can legitimately starve
	// one rank on a loaded single-core machine, so require participation
	// rather than perfection: at least two ranks explored nodes.
	participating := 0
	for i := range run.Threads {
		if run.Threads[i].Nodes > 0 {
			participating++
		}
	}
	if participating < 2 {
		t.Errorf("only %d of 4 ranks explored any nodes", participating)
	}
}

func TestEightRanksRepeated(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process stress")
	}
	for seed := int64(0); seed < 3; seed++ {
		run := launch(t, 8, &uts.BenchTiny, 2, seed)
		if run.Nodes() != 3337 {
			t.Fatalf("seed %d: nodes = %d, want 3337", seed, run.Nodes())
		}
	}
}

func TestGeometricTreeCluster(t *testing.T) {
	run := launch(t, 3, &uts.GeoLinear, 8, 0)
	if run.Nodes() != 9332 {
		t.Errorf("nodes = %d, want 9332", run.Nodes())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := Run(Config{Rank: 3, Ranks: 2, Spec: &uts.BenchTiny}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := Run(Config{Rank: 0, Ranks: 1}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := Run(Config{Rank: 0, Ranks: 1, Spec: &uts.BenchTiny, Chunk: -1}); err == nil {
		t.Error("negative chunk accepted")
	}
	bad := uts.Spec{Kind: uts.Binomial, B0: 2, M: 2, Q: 0.9}
	if _, err := Run(Config{Rank: 0, Ranks: 1, Spec: &bad}); err == nil {
		t.Error("supercritical spec accepted")
	}
}

func TestDialRetryTimesOut(t *testing.T) {
	start := time.Now()
	_, err := dialRetry("127.0.0.1:1", 100*time.Millisecond) // port 1: nothing listens
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("dialRetry ignored its timeout")
	}
}

// TestCoordinatorRejectsBadHello drives the bootstrap error paths with a
// hand-rolled client: a hello claiming an invalid rank must abort the
// coordinator with an error rather than hang the cluster.
func TestCoordinatorRejectsBadHello(t *testing.T) {
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() {
		_, err := Run(Config{
			Rank: 0, Ranks: 3, Coord: "127.0.0.1:0", CoordReady: ready,
			Spec: &uts.BenchTiny,
		})
		errs <- err
	}()
	coord := <-ready
	conn, err := net.Dial("tcp", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(&request{Kind: kindHello, From: 99, Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("coordinator accepted a hello from rank 99 of 3")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not reject the bad hello")
	}
}

// TestProgressEngineDropsUnknownRPC verifies the served-connection
// protocol-error path: an unknown request kind closes the connection.
func TestProgressEngineDropsUnknownRPC(t *testing.T) {
	n := newNode(Config{Rank: 1, Ranks: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n.ln = ln
	go n.serve()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	// A valid one-sided read works.
	n.workAvail.Store(7)
	if err := enc.Encode(&request{Kind: kindGetAvail}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Avail != 7 {
		t.Errorf("GetAvail = %d, want 7", resp.Avail)
	}

	// An unknown kind drops the connection.
	if err := enc.Encode(&request{Kind: reqKind(200)}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := dec.Decode(&resp); err == nil {
		t.Error("connection survived an unknown RPC kind")
	}
}

// TestOneSidedCAS exercises the request-word claim semantics through the
// progress engine: first claim wins, second fails until the owner resets.
func TestOneSidedCAS(t *testing.T) {
	n := newNode(Config{Rank: 1, Ranks: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n.ln = ln
	go n.serve()

	pc := func() *peerConn {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	}()
	defer pc.conn.Close()

	r1, err := pc.callOnce(&request{Kind: kindCASRequest, Thief: 2}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.OK {
		t.Fatal("first CAS failed on an empty request word")
	}
	r2, err := pc.callOnce(&request{Kind: kindCASRequest, Thief: 3}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r2.OK {
		t.Fatal("second CAS succeeded while the word was claimed")
	}
	n.reqWord.Store(-1) // owner resets after servicing
	r3, err := pc.callOnce(&request{Kind: kindCASRequest, Thief: 3}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.OK {
		t.Fatal("CAS failed after the owner reset the word")
	}
}
