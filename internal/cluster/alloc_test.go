package cluster

import (
	"testing"

	"repro/internal/uts"
)

// TestProgressEngineZeroSteadyStateAllocs drives the progress engine's
// request handler through the full hot cycle — probe, request CAS,
// response write, chunk deposit/serve/recycle, barrier check — and
// verifies the steady state allocates nothing: reused request/reply
// structs plus the free-listed chunk buffers make every served operation
// allocation-free once the cycle is warm.
func TestProgressEngineZeroSteadyStateAllocs(t *testing.T) {
	n := newNode(Config{Rank: 0, Ranks: 4, Chunk: 4, Spec: &uts.BenchTiny})
	proto := make([]uts.Node, 4)
	var req request
	var resp response

	cycle := func() {
		// One-sided probe of the work-available word.
		req.reset()
		resp.reset()
		req.Kind = kindGetAvail
		if _, ok := n.handleRequest(&req, &resp); !ok {
			panic("getAvail rejected")
		}
		// A thief claims the request word; the victim clears it after
		// responding.
		req.reset()
		resp.reset()
		req.Kind, req.Thief = kindCASRequest, 2
		if _, ok := n.handleRequest(&req, &resp); !ok || !resp.OK {
			panic("CAS rejected")
		}
		n.reqWord.Store(-1)
		// The victim writes amount+handle into this rank's response slot.
		req.reset()
		resp.reset()
		req.Kind, req.From, req.Amount, req.Handle = kindPutResponse, 1, 1, 7
		if _, ok := n.handleRequest(&req, &resp); !ok {
			panic("putResponse rejected")
		}
		n.respReady.Store(false)
		// The worker deposits a chunk drawn from the free lists; the
		// engine serves and recycles it — the kindGetChunks hot path.
		c := append(n.getNodeBuf(), proto...)
		buf := append(n.getChunkBuf(), c)
		h := n.deposit(buf, 2)
		req.reset()
		resp.reset()
		req.Kind, req.Handle = kindGetChunks, h
		recycle, ok := n.handleRequest(&req, &resp)
		if !ok || len(resp.Chunk) != 1 || len(resp.Chunk[0]) != len(proto) {
			panic("bad handoff serve")
		}
		n.recycle(recycle)
		// A waiter polls the barrier.
		req.reset()
		resp.reset()
		req.Kind = kindBarrierDone
		if _, ok := n.handleRequest(&req, &resp); !ok {
			panic("barrierDone rejected")
		}
	}

	for i := 0; i < 10; i++ {
		cycle() // warm the free lists and the handoff table's buckets
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs > 0 {
		t.Fatalf("progress engine allocates %.2f objects per request cycle; want 0", allocs)
	}
}
