package cluster

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// MetricsSnapshot is one rank's live telemetry view, served by the
// progress engine over the kindMetrics RPC. Everything in it is read
// from the sampler's last fold or from lock-free/mutex-protected node
// state, so serving it never touches the worker thread — it is as
// one-sided as a GetAvail. Gob-encoded on the wire; fields are flat so
// the reply stays one small frame.
type MetricsSnapshot struct {
	Rank          int
	UptimeSeconds float64

	// Scheduler progress (cumulative).
	Nodes, Events, Missed                              int64
	Steals, FailedSteals, Probes, Releases, Reacquires int64

	// Windowed rates and steal-latency quantiles (ns) from the sampler's
	// last window; StealCount is the cumulative round-trip count.
	NodesPerSec, EventsPerSec, StealsPerSec float64
	StealP50Ns, StealP95Ns, StealP99Ns      int64
	StealCount                              int64

	// Fault-tolerance state: peers this rank has declared dead, ranks the
	// coordinator suspects (rank 0 only), RPC retry events recorded, and
	// handoff-table entries awaiting a thief's fetch.
	DeadPeers, SuspectedRanks, RPCRetries, HandoffPending int64
}

// metricsSnapshot builds this rank's snapshot. Safe from any goroutine
// (the progress engine serves it concurrently with the worker).
func (n *node) metricsSnapshot() *MetricsSnapshot {
	st := n.sampler.Stats() // nil-safe: zero stats when telemetry is off
	m := &MetricsSnapshot{
		Rank:          n.cfg.Rank,
		UptimeSeconds: st.Elapsed.Seconds(),
		Nodes:         st.Nodes,
		Events:        st.Events,
		Missed:        st.Missed,
		Steals:        st.Steals,
		FailedSteals:  st.FailedSteals,
		Probes:        st.Probes,
		Releases:      st.Releases,
		Reacquires:    st.Reacquires,
		NodesPerSec:   st.NodesPerSec,
		EventsPerSec:  st.EventsPerSec,
		StealsPerSec:  st.StealsPerSec,
		StealP50Ns:    st.StealLatency.Quantile(0.50),
		StealP95Ns:    st.StealLatency.Quantile(0.95),
		StealP99Ns:    st.StealLatency.Quantile(0.99),
		StealCount:    st.StealLatencyCum.Count(),

		RPCRetries:     st.Kinds[obs.KindRPCRetry],
		DeadPeers:      n.deadCount(),
		HandoffPending: int64(n.handoffN.Load()),
	}
	if n.cfg.Rank == 0 {
		m.SuspectedRanks = int64(len(n.suspectedRanks()))
	}
	return m
}

// deadCount is how many peers this rank has locally declared dead.
func (n *node) deadCount() int64 {
	var c int64
	for r := range n.dead {
		if n.dead[r].Load() {
			c++
		}
	}
	return c
}

// startMetrics brings up this rank's telemetry plane: a sampler over the
// tracer (created here when the run is otherwise untraced — sampling
// requires lanes to read), the uts_*/go_* registry, the /metrics +
// /debug/pprof HTTP server, and — on rank 0 — the cluster rollup
// appender. Called after bootstrap (the rollup needs the address map);
// no-op when Config.MetricsAddr is empty.
func (n *node) startMetrics() error {
	cfg := &n.cfg
	if cfg.MetricsAddr == "" {
		return nil
	}
	if cfg.Tracer == nil {
		// Observation-only: the tracer's record path is lock-free and
		// zero-alloc, so turning it on for telemetry leaves the schedule
		// and counters byte-identical (the differential gates prove it).
		cfg.Tracer = obs.New(cfg.Ranks, 0)
		n.lane = cfg.Tracer.Lane(cfg.Rank)
	}
	n.sampler = obs.NewSampler(cfg.Tracer)

	reg := telemetry.NewRegistry()
	reg.GaugeFunc("uts_rank", "This process's rank.", nil,
		func() float64 { return float64(cfg.Rank) })
	reg.GaugeFunc("uts_cluster_ranks", "Configured cluster size.", nil,
		func() float64 { return float64(cfg.Ranks) })
	reg.GaugeFunc("uts_dead_peers", "Peers this rank has declared dead.", nil,
		func() float64 { return float64(n.deadCount()) })
	reg.GaugeFunc("uts_suspected_ranks", "Ranks the coordinator suspects dead (0 on non-coordinators).", nil,
		func() float64 {
			if cfg.Rank != 0 {
				return 0
			}
			return float64(len(n.suspectedRanks()))
		})
	reg.GaugeFunc("uts_handoff_pending", "Handoff-table entries reserved but not yet fetched.", nil,
		func() float64 { return float64(n.handoffN.Load()) })
	telemetry.RegisterSampler(reg, n.sampler)
	telemetry.RegisterPolicy(reg, n.pset)
	telemetry.RegisterRuntime(reg)

	srv, err := telemetry.NewServer(cfg.MetricsAddr, reg)
	if err != nil {
		return fmt.Errorf("cluster: rank %d metrics listen on %q: %w", cfg.Rank, cfg.MetricsAddr, err)
	}
	n.telem = srv
	if cfg.Rank == 0 {
		n.roll = &rollup{conns: make([]*peerConn, cfg.Ranks)}
		srv.OnScrape(n.writeRollup)
	}
	n.sampler.Start(time.Second)
	if cfg.MetricsReady != nil {
		cfg.MetricsReady <- srv.Addr()
	}
	return nil
}

// stopMetrics lingers (so an external scraper can observe the finished
// run), then tears the telemetry plane down. The progress engine keeps
// serving kindMetrics during the linger — n.close has not run yet — so
// rank 0's rollup stays complete while every rank lingers the same
// window.
func (n *node) stopMetrics() {
	if n.telem == nil {
		return
	}
	if n.cfg.MetricsLinger > 0 {
		time.Sleep(n.cfg.MetricsLinger)
	}
	n.sampler.Stop()
	n.telem.Close()
	if n.roll != nil {
		n.roll.close()
	}
}

// rollup is rank 0's cluster-wide metrics poller. It keeps its own
// outgoing connections — never the worker's peer set — because the
// worker's call path records into the rank's single-writer tracer lane
// and the rollup runs on HTTP handler goroutines. Polls are single
// attempt with no retry and no death verdict: telemetry must observe the
// failure detector, not feed it, so an unreachable rank merely reports
// as down on this scrape.
type rollup struct {
	mu    sync.Mutex
	conns []*peerConn
	last  time.Time
	cache []*MetricsSnapshot
}

// minPollGap bounds how often a scrape storm can re-poll the cluster.
const minPollGap = time.Second

// poll returns a per-rank snapshot slice (nil entries = unreachable),
// cached for minPollGap between scrapes.
func (ru *rollup) poll(n *node) []*MetricsSnapshot {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if ru.cache != nil && time.Since(ru.last) < minPollGap {
		return ru.cache
	}
	snaps := make([]*MetricsSnapshot, n.cfg.Ranks)
	for r := 0; r < n.cfg.Ranks; r++ {
		switch {
		case r == n.cfg.Rank:
			snaps[r] = n.metricsSnapshot()
		case n.isDead(r):
			// Skipped like probe cycles: no traffic toward a declared-dead
			// rank, it just reports down.
		default:
			snaps[r] = ru.pollRank(n, r)
		}
	}
	ru.cache = snaps
	ru.last = time.Now()
	return snaps
}

// pollRank fetches one rank's snapshot over the rollup's own connection,
// dialing (or redialing after a failure) on demand.
func (ru *rollup) pollRank(n *node, r int) *MetricsSnapshot {
	pc := ru.conns[r]
	if pc == nil || pc.broken.Load() {
		if r >= len(n.addrs) || n.addrs[r] == "" {
			return nil
		}
		conn, err := n.dial(n.addrs[r], n.cfg.RPCTimeout)
		if err != nil {
			return nil
		}
		pc = newPeerConn(conn)
		ru.conns[r] = pc
	}
	req := request{Kind: kindMetrics, From: n.cfg.Rank}
	resp, err := pc.callOnce(&req, n.cfg.RPCTimeout)
	if err != nil {
		ru.conns[r] = nil
		return nil
	}
	return resp.Metrics
}

// close drops the poller connections.
func (ru *rollup) close() {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	for i, pc := range ru.conns {
		if pc != nil {
			pc.close()
			ru.conns[i] = nil
		}
	}
}

// rollupFamily describes one exposition family of the rollup: its
// per-rank value plus how the cluster-level aggregate combines ranks
// (sum for tallies, nothing for rates — those don't aggregate across
// asynchronous windows).
type rollupFamily struct {
	name, help, typ string
	value           func(*MetricsSnapshot) float64
	sum             bool
}

var rollupFamilies = []rollupFamily{
	{"uts_rank_nodes_total", "Tree nodes expanded, per rank.", "counter",
		func(m *MetricsSnapshot) float64 { return float64(m.Nodes) }, true},
	{"uts_rank_events_total", "Protocol events recorded, per rank.", "counter",
		func(m *MetricsSnapshot) float64 { return float64(m.Events) }, true},
	{"uts_rank_steals_total", "Successful steals, per rank.", "counter",
		func(m *MetricsSnapshot) float64 { return float64(m.Steals) }, true},
	{"uts_rank_steal_failures_total", "Failed steal attempts, per rank.", "counter",
		func(m *MetricsSnapshot) float64 { return float64(m.FailedSteals) }, true},
	{"uts_rank_rpc_retries_total", "RPC retry events, per rank.", "counter",
		func(m *MetricsSnapshot) float64 { return float64(m.RPCRetries) }, true},
	{"uts_rank_dead_peers", "Peers each rank has declared dead.", "gauge",
		func(m *MetricsSnapshot) float64 { return float64(m.DeadPeers) }, true},
	{"uts_rank_handoff_pending", "Pending handoff reservations, per rank.", "gauge",
		func(m *MetricsSnapshot) float64 { return float64(m.HandoffPending) }, true},
	{"uts_rank_nodes_per_second", "Windowed node expansion rate, per rank.", "gauge",
		func(m *MetricsSnapshot) float64 { return m.NodesPerSec }, false},
	{"uts_rank_steal_latency_p95_seconds", "Windowed steal-latency p95, per rank.", "gauge",
		func(m *MetricsSnapshot) float64 { return float64(m.StealP95Ns) / 1e9 }, false},
}

// writeRollup appends the cluster-wide rollup to rank 0's /metrics
// exposition: an up gauge and the per-rank families (rank label), then
// the cluster aggregates over the reachable ranks.
func (n *node) writeRollup(w io.Writer) {
	snaps := n.roll.poll(n)

	fmt.Fprintf(w, "# HELP uts_rank_up Whether the rank answered the last rollup poll.\n# TYPE uts_rank_up gauge\n")
	up := 0
	for r, m := range snaps {
		v := 0
		if m != nil {
			v = 1
			up++
		}
		fmt.Fprintf(w, "uts_rank_up{rank=\"%d\"} %d\n", r, v)
	}

	for _, f := range rollupFamilies {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for r, m := range snaps {
			if m == nil {
				continue
			}
			fmt.Fprintf(w, "%s{rank=\"%d\"} %g\n", f.name, r, f.value(m))
		}
	}

	fmt.Fprintf(w, "# HELP uts_cluster_ranks_up Ranks that answered the last rollup poll.\n# TYPE uts_cluster_ranks_up gauge\nuts_cluster_ranks_up %d\n", up)
	for _, f := range rollupFamilies {
		if !f.sum {
			continue
		}
		var total float64
		for _, m := range snaps {
			if m != nil {
				total += f.value(m)
			}
		}
		name := "uts_cluster" + f.name[len("uts_rank"):]
		fmt.Fprintf(w, "# HELP %s Cluster-wide sum over reachable ranks.\n# TYPE %s %s\n%s %g\n", name, name, f.typ, name, total)
	}
}
