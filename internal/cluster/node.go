package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/uts"
)

// Config configures one process of a distributed run.
type Config struct {
	// Rank is this process's ID in [0, Ranks); rank 0 is the coordinator.
	Rank int
	// Ranks is the total number of processes.
	Ranks int
	// Coord is the coordinator's listen address. Rank 0 listens on it
	// ("host:port", port may be 0 when CoordReady is used); other ranks
	// dial it.
	Coord string
	// CoordReady, if non-nil, receives rank 0's actual listen address once
	// it is accepting connections. Used by in-process launches and tests
	// that bind port 0.
	CoordReady chan<- string
	// Bind is the address non-coordinator ranks listen on for one-sided
	// traffic; default "127.0.0.1:0" (loopback, kernel-assigned port).
	// Multi-host runs bind a routable interface: "0.0.0.0:0", ":7800", …
	Bind string
	// Advertise is the address registered with the coordinator as this
	// rank's dial target; default the listener's own address. When Bind
	// is a wildcard the kernel-reported address ("0.0.0.0:4123") is not
	// dialable from other hosts, so set Advertise to this host's routable
	// IP — "10.0.0.2" or "10.0.0.2:7800"; a missing or zero port is
	// filled in from the actual listener. Applies to rank 0 as well (its
	// advertised address is what peers redial after a broken connection).
	Advertise string
	// Spec is the tree to search; every rank must be given the same spec.
	Spec *uts.Spec
	// Chunk is the steal granularity k; default 16.
	Chunk int
	// Seed randomizes probe orders.
	Seed int64
	// DialTimeout bounds bootstrap connection attempts; default 10s.
	DialTimeout time.Duration
	// RPCTimeout bounds every peer RPC (SetDeadline on the connection);
	// default 5s. A deadline miss poisons the gob stream, so the
	// connection is closed and redialed.
	RPCTimeout time.Duration
	// RPCRetries is how many times an idempotent RPC (GetAvail,
	// BarrierDone, the deduplicated Stats delivery, PeerDown) is retried
	// with exponential backoff and jitter before the peer is declared
	// dead; default 2 (three attempts total). Negative means no retries.
	// Non-idempotent kinds always get a single attempt.
	RPCRetries int
	// StatsTimeout bounds rank 0's end-of-run stats gather; default 30s.
	// Ranks still missing when it expires are reported in
	// stats.Run.FailedRanks instead of hanging the coordinator.
	StatsTimeout time.Duration
	// Adapt, when non-nil, runs this rank's worker under a closed-loop
	// policy controller (internal/policy) that adapts the steal
	// granularity k from windowed steal feedback, bounded around Chunk.
	// Every rank adapts independently off its own local evidence — there
	// is no cross-rank coordination traffic. A zero Config adapts with
	// defaults (window 10ms of wall time — steal round-trips here are
	// TCP RPCs, orders slower than the shared-memory schedulers'). Nil
	// keeps the fixed-knob path, byte-identical to a build without the
	// policy package.
	Adapt *policy.Config
	// Fault, when non-nil, arms the fault-injection harness (see
	// FaultPlan): deterministic drop/delay/sever/black-hole/kill rules
	// for tests and `uts-dist -fault` runs. Nil costs nothing.
	Fault *FaultPlan
	// Tracer, when non-nil, records this rank's steal-protocol events
	// into lane Rank (build it with obs.New(Ranks, ringSize) so lane
	// numbering matches rank numbering). Traces are per-process: each
	// rank writes its own file; there is no cross-rank event merge.
	Tracer *obs.Tracer
	// MetricsAddr, when non-empty, serves this rank's live telemetry on
	// it: /metrics (Prometheus text exposition) and /debug/pprof. Port 0
	// picks a free port (see MetricsReady). Rank 0 additionally appends
	// the cluster-wide rollup — per-rank and aggregated scheduler metrics
	// plus fault-tolerance gauges — polled over the kindMetrics RPC with
	// dead ranks skipped. A run with metrics on is bit-identical to one
	// with metrics off: the plane only reads.
	MetricsAddr string
	// MetricsReady, if non-nil, receives the telemetry server's actual
	// listen address once it is serving (the port-0 analogue of
	// CoordReady).
	MetricsReady chan<- string
	// MetricsLinger keeps the telemetry endpoint (and this rank's
	// progress engine) alive that long after the run completes, so an
	// external scraper can observe the finished state; default 0.
	MetricsLinger time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Ranks < 1 {
		return c, fmt.Errorf("cluster: need at least one rank, got %d", c.Ranks)
	}
	if c.Rank < 0 || c.Rank >= c.Ranks {
		return c, fmt.Errorf("cluster: rank %d out of range [0,%d)", c.Rank, c.Ranks)
	}
	if c.Spec == nil {
		return c, fmt.Errorf("cluster: no tree spec")
	}
	if err := c.Spec.Validate(); err != nil {
		return c, err
	}
	if c.Chunk == 0 {
		c.Chunk = 16
	}
	if c.Chunk < 1 {
		return c, fmt.Errorf("cluster: chunk must be >= 1, got %d", c.Chunk)
	}
	// Non-positive timeouts select the defaults: a negative RPCTimeout
	// would otherwise yield zero backoff (rand.Int63n panics on n <= 0),
	// an already-expired response deadline, and — via callOnce's
	// timeout > 0 guard — silently unbounded RPCs.
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 5 * time.Second
	}
	if c.RPCRetries == 0 {
		c.RPCRetries = 2
	}
	if c.RPCRetries < 0 {
		c.RPCRetries = 0
	}
	if c.StatsTimeout <= 0 {
		c.StatsTimeout = 30 * time.Second
	}
	if c.Bind == "" {
		c.Bind = "127.0.0.1:0"
	}
	return c, nil
}

// errPeerDead wraps every RPC failure that ended with the peer declared
// dead. Callers classify on it (errors.Is) and degrade — skip the rank,
// fail the steal, complete over the survivors — instead of aborting.
var errPeerDead = errors.New("peer unresponsive (marked dead)")

// errKilled is returned throughout a rank the fault injector killed: the
// in-process stand-in for the process having exited.
var errKilled = errors.New("cluster: rank killed by fault injection")

// errConnBroken reports a call attempted on a connection already
// poisoned by a previous deadline miss.
var errConnBroken = errors.New("cluster: connection broken by earlier rpc failure")

// errRPCFailed wraps a non-idempotent RPC that failed while the peer
// demonstrably stayed alive (the confirmation probe answered): the
// exchange is lost, but the peer keeps its membership. Callers degrade
// the one operation — a failed steal, a withdrawn reservation — without
// the false death verdict a single transient stall used to produce.
var errRPCFailed = errors.New("rpc failed (peer alive)")

// node is one process's runtime state.
type node struct {
	cfg   Config
	ln    net.Listener
	addrs []string // rank → address

	// Shared words served one-sidedly by the progress engine.
	workAvail atomic.Int32
	reqWord   atomic.Int32

	// Incoming response slot (written by kindPutResponse). respMu orders
	// concurrent writers: a stale response from a timed-out steal can
	// race the current victim's response, so the slot is no longer
	// single-writer.
	respMu     sync.Mutex
	respAmount int32
	respHandle uint64
	respFrom   int
	respReady  atomic.Bool

	// Handoff table: chunks reserved by the worker, fetched one-sidedly
	// by thieves. Guarded by handoffMu (worker deposits, progress engine
	// serves). Each entry remembers its thief and deposit time so the
	// worker's reclaim sweep can take back reservations that were never
	// fetched — a thief that gave up or died must not strand the subtree
	// it was granted. handoffN mirrors len(handoff) so the hot loop can
	// ask "anything pending?" with one atomic load.
	handoffMu  sync.Mutex
	handoffSeq uint64
	handoff    map[uint64]handoffEntry
	handoffN   atomic.Int32

	// Failure detection. dead[r] is this rank's local verdict that r is
	// unreachable (RPCs exhausted their retries); it removes r from
	// probe cycles. Rank 0 additionally tracks the reported membership
	// under barMu (deadSeen/numDead) so the termination barrier and the
	// stats gather complete over the survivors.
	dead []atomic.Bool

	// Fault injection (nil when Config.Fault is nil or has no rules for
	// this rank) and the killed state it can put the rank into. shut is
	// the normal-teardown analogue: once Run returns — cleanly or not —
	// the progress engine stops answering, mimicking process death so
	// in-process peers cannot mistake a finished rank for a live one.
	faults   *faultInjector
	killed   atomic.Bool
	shut     atomic.Bool
	killOnce sync.Once

	// Barrier state (rank 0 only), manipulated by the progress engine
	// under barMu. barIn tracks which ranks are inside so a duplicate
	// enter cannot double-count and a dying rank can be backed out;
	// deadSeen/numDead shrink the membership the barrier waits for.
	barMu     sync.Mutex
	barCount  int
	barIn     []bool
	deadSeen  []bool
	numDead   int
	announced atomic.Bool

	// Stats collection (rank 0 only). statsFrom tracks which ranks have
	// reported so duplicates are rejected rather than corrupting the
	// gather; statsCh (capacity 1) wakes the end-of-run gather loop.
	statsMu   sync.Mutex
	statsFrom []bool
	collected []stats.Thread
	statsCh   chan struct{}

	// Free lists recycling the kindGetChunks hot path: node buffers (the
	// k-node chunks released by the worker) and the []Chunk response
	// buffers that carry them through the handoff table. The worker draws
	// from these on release/steal service; the progress engine returns
	// both once a served response is encoded. Plain slices under a mutex
	// rather than sync.Pool: putting a slice header into an interface
	// would itself allocate, defeating the zero-steady-state goal.
	freeMu     sync.Mutex
	freeChunks []stack.Chunk
	freeBufs   [][]stack.Chunk

	// Outgoing connections, one per peer, created lazily and replaced
	// after an RPC failure (a failed exchange poisons the gob stream).
	peersMu sync.Mutex
	peers   []*peerConn

	// lane is this rank's tracer lane (nil when untraced). Recorded into
	// only from the worker/Run goroutine — obs lanes are single-writer.
	lane *obs.Lane

	// Telemetry plane (nil when Config.MetricsAddr is empty): the live
	// sampler over the tracer, the /metrics + pprof server, and — rank 0
	// only — the cluster rollup poller.
	sampler *obs.Sampler
	telem   *telemetry.Server
	roll    *rollup

	// pset holds this rank's adaptive controller (one entry — a process
	// is one PE) when Config.Adapt is set; nil otherwise.
	pset *policy.Set

	t stats.Thread
}

// newNode builds a node with every membership/bookkeeping slice sized
// for cfg.Ranks; used by Run and by tests that drive the progress engine
// directly.
func newNode(cfg Config) *node {
	n := &node{
		cfg:       cfg,
		handoff:   map[uint64]handoffEntry{},
		dead:      make([]atomic.Bool, cfg.Ranks),
		barIn:     make([]bool, cfg.Ranks),
		deadSeen:  make([]bool, cfg.Ranks),
		statsFrom: make([]bool, cfg.Ranks),
		statsCh:   make(chan struct{}, 1),
		faults:    newFaultInjector(cfg.Fault, cfg.Rank),
	}
	n.reqWord.Store(-1)
	n.t.ID = cfg.Rank
	n.lane = cfg.Tracer.Lane(cfg.Rank)
	if cfg.Adapt != nil {
		acfg := *cfg.Adapt
		if acfg.Window <= 0 {
			acfg.Window = 10 * time.Millisecond
		}
		// One controller: this process is a single PE. Victims always
		// grant half their pool here, so the steal-half knob stays at its
		// base; only k (release granularity + 2k threshold) adapts.
		n.pset = policy.NewSet(&acfg, policy.Base{Chunk: cfg.Chunk}, 1)
	}
	return n
}

// peerConn is one outgoing gob-encoded RPC connection.
type peerConn struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	broken atomic.Bool
}

func newPeerConn(conn net.Conn) *peerConn {
	return &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// close poisons the connection. Safe from any goroutine, including while
// a call is blocked in Read — Close unblocks it.
func (p *peerConn) close() {
	p.broken.Store(true)
	p.conn.Close()
}

// callOnce performs one lockstep RPC with an absolute deadline on the
// connection. Gob framing cannot survive a half-finished exchange, so
// any error — a deadline miss included — poisons the stream: the conn is
// closed and marked broken, and the owner must redial.
func (p *peerConn) callOnce(req *request, timeout time.Duration) (*response, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken.Load() {
		return nil, errConnBroken
	}
	if timeout > 0 {
		p.conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := p.enc.Encode(req); err != nil {
		p.close()
		return nil, fmt.Errorf("cluster: rpc send: %w", err)
	}
	var resp response
	if err := p.dec.Decode(&resp); err != nil {
		p.close()
		return nil, fmt.Errorf("cluster: rpc recv: %w", err)
	}
	if timeout > 0 {
		p.conn.SetDeadline(time.Time{})
	}
	return &resp, nil
}

// idempotentKind reports whether a request may be retried safely: pure
// reads (GetAvail, BarrierDone, the Metrics snapshot), the
// coordinator-deduplicated stats delivery, and failure reports.
func idempotentKind(k reqKind) bool {
	switch k {
	case kindGetAvail, kindBarrierDone, kindStats, kindPeerDown, kindMetrics:
		return true
	}
	return false
}

// call performs one RPC to rank r under the configured deadline.
// Idempotent kinds are retried with exponential backoff and jitter.
// When every attempt fails, the verdict depends on the kind: an
// exhausted idempotent retry loop is itself the evidence, but a
// non-idempotent kind had only one attempt, so a fully retried
// idempotent probe confirms first — a peer that answers it is alive,
// and the error wraps errRPCFailed (exchange lost, membership kept)
// instead of errPeerDead. Only a confirmed-unreachable r is marked
// dead. Must be called from the worker/Run goroutine (it records into
// the rank's single-writer tracer lane).
func (n *node) call(r int, req *request) (*response, error) {
	if n.killed.Load() {
		return nil, errKilled
	}
	if n.isDead(r) {
		return nil, fmt.Errorf("cluster: rank %d: %w", r, errPeerDead)
	}
	attempts := 1
	if idempotentKind(req.Kind) {
		attempts += n.cfg.RPCRetries
	}
	resp, lastErr := n.attempt(r, req, attempts)
	if resp != nil {
		return resp, nil
	}
	if errors.Is(lastErr, errKilled) {
		return nil, errKilled
	}
	if !idempotentKind(req.Kind) {
		probe := request{Kind: kindGetAvail, From: n.cfg.Rank}
		if pr, _ := n.attempt(r, &probe, 1+n.cfg.RPCRetries); pr != nil {
			return nil, fmt.Errorf("cluster: rank %d: rpc kind %d to rank %d %w: %v",
				n.cfg.Rank, req.Kind, r, errRPCFailed, lastErr)
		}
		if n.killed.Load() {
			return nil, errKilled
		}
	}
	n.markDead(r)
	return nil, fmt.Errorf("cluster: rank %d: rank %d %w after %d attempt(s): %v",
		n.cfg.Rank, r, errPeerDead, attempts, lastErr)
}

// attempt runs the bounded retry loop for one RPC: a per-attempt
// deadline via callOnce, exponential backoff with jitter between
// attempts, and a redial after every failure (a failed exchange poisons
// the gob stream). Returns the first successful response, or (nil,
// lastErr) once the attempts are spent.
func (n *node) attempt(r int, req *request, attempts int) (*response, error) {
	backoff := n.cfg.RPCTimeout / 16
	if backoff < time.Millisecond {
		backoff = time.Millisecond
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			n.lane.Rec(obs.KindRPCRetry, int32(r), int64(a))
			time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
			backoff *= 2
		}
		if op, d, hooked := n.faults.act(ClientSide, r, req.Kind); hooked {
			switch op {
			case FaultDelay:
				time.Sleep(d)
			case FaultKill:
				n.die()
				return nil, errKilled
			}
			pc, err := n.peer(r)
			if err != nil {
				lastErr = err
				continue
			}
			switch op {
			case FaultSever:
				pc.conn.Close() // this attempt fails; the conn is redialed
			case FaultDrop, FaultBlackHole:
				blackhole(pc.conn) // bytes vanish; the deadline detects it
			}
		}
		pc, err := n.peer(r)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := pc.callOnce(req, n.cfg.RPCTimeout)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		n.dropPeer(r, pc)
		if n.killed.Load() {
			return nil, errKilled
		}
	}
	return nil, lastErr
}

// respWait bounds a thief's wait for a victim's steal response: the
// worst case a live victim can go without running service() — one fully
// retried call() toward a genuinely dead peer (a redial plus an RPC
// deadline per attempt, plus the backoff sleeps between attempts) —
// with one extra RPCTimeout of slack for the response transfer itself.
// Waiting any less risks declaring a merely busy victim dead: it may be
// stuck in its own retry loop toward a dead third rank, unable to
// answer steals meanwhile.
func (n *node) respWait() time.Duration {
	rpcT := n.cfg.RPCTimeout
	if rpcT <= 0 {
		rpcT = 5 * time.Second
	}
	attempts := 1 + n.cfg.RPCRetries
	if attempts < 1 {
		attempts = 1
	}
	d := time.Duration(attempts) * 2 * rpcT
	backoff := rpcT / 16
	if backoff < time.Millisecond {
		backoff = time.Millisecond
	}
	for a := 1; a < attempts; a++ {
		d += backoff + backoff/2 // sleep is backoff/2 + jitter < backoff
		backoff *= 2
	}
	return d + rpcT
}

// staleAfter is how long a handoff entry may sit unfetched before the
// reclaim sweep takes it back: the thief's full response wait again,
// doubled, which covers its chunk fetch and any service() it performs
// between receiving the response and issuing the fetch. Past this the
// thief has provably given up (or died). Reclaiming early is safe for
// the count — a late fetch finds the entry gone and books a failed
// steal, never a double delivery — it merely wastes a granted transfer.
func (n *node) staleAfter() time.Duration {
	return 2 * n.respWait()
}

// isDead reports this rank's local verdict on r.
func (n *node) isDead(r int) bool {
	return r >= 0 && r < len(n.dead) && n.dead[r].Load()
}

// markDead records the local decision that rank r is unreachable. On
// rank 0 it feeds the barrier and stats membership directly; elsewhere
// the failure is reported (best-effort, bounded) to the coordinator so
// termination and the stats gather complete without r.
func (n *node) markDead(r int) {
	if r < 0 || r >= n.cfg.Ranks || r == n.cfg.Rank {
		return
	}
	if n.dead[r].Swap(true) {
		return
	}
	n.lane.Rec(obs.KindPeerDead, int32(r), 0)
	if n.cfg.Rank == 0 {
		n.noteDead(r)
	} else if r != 0 {
		n.reportDead(r)
	}
}

// noteDead is rank 0's membership bookkeeping for dead rank r (> 0):
// remove it from the barrier accounting and wake the stats gather. Called
// from both the local worker (via markDead) and the progress engine
// (kindPeerDown reports); deadSeen dedups the two paths.
func (n *node) noteDead(r int) {
	if r <= 0 || r >= n.cfg.Ranks {
		return
	}
	n.dead[r].Store(true)
	// Verdicts that arrive after termination has been announced are
	// shutdown races, not membership events: a finished rank closes its
	// listener while slower peers are still mid-probe in their terminate
	// loop, and the failed probe would otherwise brand a rank that
	// completed the run intact. The dead[] store above still settles the
	// stats gather, and a rank that genuinely dies post-termination shows
	// up in FailedRanks (its counters never arrive) — so skipping the
	// deadSeen record here never hides a real failure.
	if n.announced.Load() {
		n.pokeStats()
		return
	}
	n.barMu.Lock()
	if !n.deadSeen[r] {
		n.deadSeen[r] = true
		n.numDead++
		if n.barIn[r] {
			n.barIn[r] = false
			n.barCount--
		}
		n.barRecheckLocked()
	}
	n.barMu.Unlock()
	n.pokeStats()
}

// reportDead tells the coordinator about r with one bounded, best-effort
// RPC; a failure here is ignored (the coordinator will learn about r
// from another survivor, or the stats gather's timeout backstop fires).
func (n *node) reportDead(r int) {
	pc, err := n.peer(0)
	if err != nil {
		return
	}
	req := request{Kind: kindPeerDown, From: n.cfg.Rank, Dead: int32(r)}
	if _, err := pc.callOnce(&req, n.cfg.RPCTimeout); err != nil {
		n.dropPeer(0, pc)
	}
}

// Run executes this process's part of a distributed search. On rank 0 it
// returns the aggregated result once every surviving rank has reported
// (partial results annotated with FailedRanks when peers died); on other
// ranks it returns (nil, nil) after a clean shutdown.
func Run(cfg Config) (*stats.Run, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := newNode(cfg)

	if err := n.bootstrap(); err != nil {
		n.close() // a partial bootstrap may have opened the listener
		return nil, err
	}
	defer n.close()

	// The telemetry plane comes up after bootstrap (the rollup needs the
	// address map) and lingers past the run before teardown, so every
	// rank's progress engine is still answering kindMetrics while an
	// external scraper reads the finished state.
	if err := n.startMetrics(); err != nil {
		return nil, err
	}
	defer n.stopMetrics()

	start := time.Now()
	if err := n.search(); err != nil {
		return nil, err
	}

	if cfg.Rank != 0 {
		// Report counters to the coordinator and exit. Safe to retry:
		// the coordinator dedups by sender rank.
		if cfg.Ranks > 1 {
			if _, err := n.call(0, &request{Kind: kindStats, From: cfg.Rank, Stats: &n.t}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	// Rank 0: gather stats over the surviving membership, bounded by
	// StatsTimeout — dead or wedged ranks degrade the report to partial
	// results named in FailedRanks, never a permanent hang. The tracer
	// summary covers rank 0's own lane only (remote ranks write their
	// own trace files).
	failed := n.gatherStats()
	run := &stats.Run{
		Elapsed:        time.Since(start),
		FailedRanks:    failed,
		SuspectedRanks: n.suspectedRanks(),
	}
	run.Threads = append(run.Threads, n.t)
	n.statsMu.Lock()
	run.Threads = append(run.Threads, n.collected...)
	n.statsMu.Unlock()
	run.Obs = n.cfg.Tracer.Summary() // n.cfg: startMetrics may have armed the tracer
	// Each rank adapts off local evidence only, so the report covers rank
	// 0's own controller (remote knob trajectories stay at their ranks,
	// observable via each rank's uts_policy_* gauges).
	run.Policy = n.pset.Summary()
	return run, nil
}

// gatherStats waits until every rank has either reported its counters or
// been declared dead, bounded by StatsTimeout. It returns the sorted
// ranks that never reported.
func (n *node) gatherStats() []int {
	cfg := &n.cfg
	if cfg.Ranks == 1 {
		return nil
	}
	timer := time.NewTimer(cfg.StatsTimeout)
	defer timer.Stop()
wait:
	for !n.statsSettled() {
		select {
		case <-n.statsCh:
		case <-timer.C:
			break wait
		}
	}
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	var failed []int
	for r := 1; r < cfg.Ranks; r++ {
		if !n.statsFrom[r] {
			failed = append(failed, r)
		}
	}
	return failed
}

// suspectedRanks returns, in rank order, every rank the coordinator saw
// declared dead — by its own verdicts or a survivor's PeerDown report —
// whether or not that rank's stats later arrived. A suspected rank that
// still reported means the barrier membership shrank on a false
// positive: the run must be visibly annotated as degraded even though
// FailedRanks is empty, not pass as healthy.
func (n *node) suspectedRanks() []int {
	n.barMu.Lock()
	defer n.barMu.Unlock()
	var out []int
	for r, d := range n.deadSeen {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// statsSettled reports whether every rank has reported or died.
func (n *node) statsSettled() bool {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	for r := 1; r < n.cfg.Ranks; r++ {
		if !n.statsFrom[r] && !n.dead[r].Load() {
			return false
		}
	}
	return true
}

// pokeStats wakes the stats gather loop (lossy: the loop re-checks).
func (n *node) pokeStats() {
	select {
	case n.statsCh <- struct{}{}:
	default:
	}
}

// listen opens this rank's listener, fault-wrapped when injection is
// armed.
func (n *node) listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if n.faults != nil {
		ln = &faultListener{Listener: ln}
	}
	return ln, nil
}

// dial opens an outgoing connection, fault-wrapped when injection is
// armed.
func (n *node) dial(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := dialRetry(addr, timeout)
	if err != nil {
		return nil, err
	}
	if n.faults != nil {
		conn = &faultConn{Conn: conn}
	}
	return conn, nil
}

// advertiseAddr resolves the address this rank registers with the
// coordinator: the listener's own address by default, otherwise the
// configured Advertise host with a missing or zero port filled in from
// the actual listener (so "-bind 0.0.0.0:0 -advertise 10.0.0.2" works).
func advertiseAddr(advertise string, ln net.Listener) (string, error) {
	actual := ln.Addr().String()
	if advertise == "" {
		return actual, nil
	}
	_, lport, err := net.SplitHostPort(actual)
	if err != nil {
		return "", fmt.Errorf("cluster: listener address %q: %w", actual, err)
	}
	host, port, err := net.SplitHostPort(advertise)
	if err != nil {
		// Bare host with no port: take the listener's.
		return net.JoinHostPort(advertise, lport), nil
	}
	if port == "" || port == "0" {
		port = lport
	}
	return net.JoinHostPort(host, port), nil
}

// bootstrap brings up the listener, exchanges the address map through the
// coordinator, and waits until every rank is reachable.
func (n *node) bootstrap() error {
	cfg := &n.cfg
	if cfg.Ranks == 1 {
		n.addrs = []string{""}
		return nil
	}
	if cfg.Rank == 0 {
		ln, err := n.listen(cfg.Coord)
		if err != nil {
			return fmt.Errorf("cluster: coordinator listen: %w", err)
		}
		n.ln = ln
		addr0, err := advertiseAddr(cfg.Advertise, ln)
		if err != nil {
			return err
		}
		if cfg.CoordReady != nil {
			cfg.CoordReady <- ln.Addr().String()
		}
		return n.coordinate(addr0)
	}

	ln, err := n.listen(cfg.Bind)
	if err != nil {
		return fmt.Errorf("cluster: rank %d listen on %q: %w", cfg.Rank, cfg.Bind, err)
	}
	n.ln = ln
	go n.serve()

	adv, err := advertiseAddr(cfg.Advertise, ln)
	if err != nil {
		return err
	}
	conn, err := n.dial(cfg.Coord, cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: rank %d dial coordinator: %w", cfg.Rank, err)
	}
	if op, _, hooked := n.faults.act(ClientSide, 0, kindHello); hooked {
		switch op {
		case FaultKill:
			n.die()
			return errKilled
		case FaultSever:
			conn.Close()
		case FaultDrop, FaultBlackHole:
			blackhole(conn)
		}
	}
	pc := newPeerConn(conn)
	resp, err := pc.callOnce(&request{Kind: kindHello, From: cfg.Rank, Addr: adv}, cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: rank %d hello: %w", cfg.Rank, err)
	}
	n.addrs = resp.Addrs
	n.peersMu.Lock()
	n.peers = make([]*peerConn, cfg.Ranks)
	n.peers[0] = pc // reuse the coordinator connection for rank-0 RPCs
	n.peersMu.Unlock()
	return nil
}

// coordinate is rank 0's side of the bootstrap: accept one Hello per rank
// within the DialTimeout window, then answer all of them with the
// completed address map and keep serving the connections. A rank that
// dies mid-bootstrap surfaces as a bounded accept timeout naming how many
// ranks registered, not a hang.
func (n *node) coordinate(addr0 string) error {
	cfg := &n.cfg
	n.addrs = make([]string, cfg.Ranks)
	n.addrs[0] = addr0

	deadline := time.Now().Add(cfg.DialTimeout)
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := n.ln.(deadliner); ok {
		d.SetDeadline(deadline)
	}

	type pending struct {
		conn net.Conn
		enc  *gob.Encoder
		dec  *gob.Decoder
	}
	waiting := make([]pending, 0, cfg.Ranks-1)
	for registered := 0; registered < cfg.Ranks-1; {
		conn, err := n.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: bootstrap: %d of %d ranks registered within %v: %w",
				registered+1, cfg.Ranks, cfg.DialTimeout, err)
		}
		conn.SetReadDeadline(deadline)
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		var req request
		if err := dec.Decode(&req); err != nil {
			conn.Close()
			return fmt.Errorf("cluster: bad hello: %w", err)
		}
		conn.SetReadDeadline(time.Time{})
		if req.Kind != kindHello || req.From <= 0 || req.From >= cfg.Ranks || n.addrs[req.From] != "" {
			conn.Close()
			return fmt.Errorf("cluster: invalid hello from rank %d", req.From)
		}
		n.addrs[req.From] = req.Addr
		waiting = append(waiting, pending{conn, enc, dec})
		registered++
	}
	if d, ok := n.ln.(deadliner); ok {
		d.SetDeadline(time.Time{})
	}
	for _, p := range waiting {
		p.conn.SetWriteDeadline(time.Now().Add(cfg.RPCTimeout))
		if err := p.enc.Encode(&response{Addrs: n.addrs}); err != nil {
			return fmt.Errorf("cluster: address broadcast: %w", err)
		}
		p.conn.SetWriteDeadline(time.Time{})
		// The hello connection becomes a served peer connection.
		go n.serveConn(p.conn, p.enc, p.dec)
	}
	go n.serve() // later direct dials from workers to rank 0's one-sided words
	return nil
}

// dialRetry dials until the deadline with growing backoff; the
// coordinator may come up after the workers when processes are launched
// together, so early refusals are expected and polite (re-)dial pacing
// matters more than latency.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	backoff := 5 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// serve accepts inbound one-sided connections for the progress engine.
func (n *node) serve() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		if n.killed.Load() || n.shut.Load() {
			conn.Close()
			return
		}
		go n.serveConn(conn, gob.NewEncoder(conn), gob.NewDecoder(conn))
	}
}

// serveConn is the progress engine: it services one-sided operations on
// this process's shared words without involving the worker thread. The
// request and reply structs live for the whole connection — reset, never
// reallocated — and served chunk buffers return to the node's free lists
// once encoded, so the steady-state request loop allocates nothing.
// Replies carry a write deadline so a peer that stops draining its socket
// cannot wedge the engine goroutine forever.
func (n *node) serveConn(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) {
	defer conn.Close()
	var req request
	var resp response
	mute := false
	for {
		req.reset()
		if err := dec.Decode(&req); err != nil {
			return
		}
		if n.killed.Load() || n.shut.Load() {
			return
		}
		resp.reset()
		recycle, ok := n.handleRequest(&req, &resp)
		if !ok {
			return // protocol error: drop the connection
		}
		// Any path on which a served GetChunks response provably does not
		// reach the thief must redeposit the chunks — already consumed
		// from the handoff table — rather than recycle (double delivery)
		// or leak them (a lost subtree and a silently short node count).
		if op, d, hooked := n.faults.act(ServerSide, req.From, req.Kind); hooked {
			switch op {
			case FaultDelay:
				time.Sleep(d)
			case FaultDrop:
				if recycle != nil {
					n.redeposit(int32(req.From), recycle)
				}
				continue
			case FaultSever:
				if recycle != nil {
					n.redeposit(int32(req.From), recycle)
				}
				return
			case FaultBlackHole:
				mute = true
			case FaultKill:
				n.die()
				return
			}
		}
		if mute {
			if recycle != nil {
				n.redeposit(int32(req.From), recycle)
			}
			continue
		}
		if n.cfg.RPCTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(n.cfg.RPCTimeout))
		}
		if err := enc.Encode(&resp); err != nil {
			if recycle != nil {
				n.redeposit(int32(req.From), recycle)
			}
			return
		}
		if recycle != nil {
			n.recycle(recycle)
		}
	}
}

// handleRequest services one progress-engine request, writing the reply
// into resp. It returns the chunk buffer to recycle once resp has been
// encoded (kindGetChunks only) and whether the connection should stay open.
func (n *node) handleRequest(req *request, resp *response) (recycle []stack.Chunk, ok bool) {
	switch req.Kind {
	case kindGetAvail:
		resp.Avail = n.workAvail.Load()
	case kindCASRequest:
		resp.OK = n.reqWord.CompareAndSwap(-1, req.Thief)
	case kindPutResponse:
		n.respMu.Lock()
		n.respAmount = req.Amount
		n.respHandle = req.Handle
		n.respFrom = req.From
		n.respReady.Store(true)
		n.respMu.Unlock()
	case kindGetChunks:
		// An absent handle is served as an empty response, not an error:
		// the worker's reclaim sweep may have taken the entry back, and
		// the thief books a failed steal for it.
		n.handoffMu.Lock()
		if e, ok := n.handoff[req.Handle]; ok {
			delete(n.handoff, req.Handle)
			n.handoffN.Store(int32(len(n.handoff)))
			resp.Chunk = e.chunks
		}
		n.handoffMu.Unlock()
		recycle = resp.Chunk
	case kindBarrierEnter:
		resp.Last = n.barEnter(req.From)
	case kindBarrierLeave:
		resp.OK = n.barLeave(req.From)
	case kindBarrierDone:
		resp.Done = n.announced.Load()
	case kindStats:
		if req.Stats != nil && req.From > 0 && req.From < n.cfg.Ranks {
			n.statsMu.Lock()
			if !n.statsFrom[req.From] {
				n.statsFrom[req.From] = true
				n.collected = append(n.collected, *req.Stats)
			}
			n.statsMu.Unlock()
			n.pokeStats()
		}
	case kindPeerDown:
		if r := int(req.Dead); n.cfg.Rank == 0 && r > 0 && r < n.cfg.Ranks {
			n.noteDead(r)
		}
	case kindMetrics:
		resp.Metrics = n.metricsSnapshot()
	default:
		return nil, false
	}
	return recycle, true
}

// barEnter registers rank from inside the barrier and reports whether
// termination is (now) announced. Duplicate enters are idempotent.
func (n *node) barEnter(from int) bool {
	n.barMu.Lock()
	defer n.barMu.Unlock()
	if from >= 0 && from < len(n.barIn) && !n.barIn[from] {
		n.barIn[from] = true
		n.barCount++
		n.barRecheckLocked()
	}
	return n.announced.Load()
}

// barLeave backs rank from out of the barrier; it reports false when
// termination already raced in (the caller must finish instead).
func (n *node) barLeave(from int) bool {
	n.barMu.Lock()
	defer n.barMu.Unlock()
	if n.announced.Load() {
		return false
	}
	if from >= 0 && from < len(n.barIn) && n.barIn[from] {
		n.barIn[from] = false
		n.barCount--
	}
	return true
}

// barRecheckLocked announces termination once every live rank is inside
// the barrier; called under barMu whenever barCount or the membership
// changes.
func (n *node) barRecheckLocked() {
	if n.barCount > 0 && n.barCount >= n.cfg.Ranks-n.numDead {
		n.announced.Store(true)
	}
}

// peer returns (dialing if necessary) the outgoing connection to rank r.
// Post-bootstrap every listener is already up, so redials use a single
// bounded attempt — connection refused means the rank is gone, and the
// caller's retry loop provides the pacing.
func (n *node) peer(r int) (*peerConn, error) {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if n.peers == nil {
		n.peers = make([]*peerConn, n.cfg.Ranks)
	}
	if pc := n.peers[r]; pc != nil && !pc.broken.Load() {
		return pc, nil
	}
	timeout := n.cfg.RPCTimeout
	if timeout == 0 {
		timeout = n.cfg.DialTimeout
	}
	conn, err := net.DialTimeout("tcp", n.addrs[r], timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: rank %d cannot reach rank %d at %q: %w",
			n.cfg.Rank, r, n.addrs[r], err)
	}
	if n.faults != nil {
		conn = &faultConn{Conn: conn}
	}
	n.peers[r] = newPeerConn(conn)
	return n.peers[r], nil
}

// dropPeer forgets a connection that failed an RPC so the next call
// redials with a fresh gob stream.
func (n *node) dropPeer(r int, pc *peerConn) {
	pc.close()
	n.peersMu.Lock()
	if r >= 0 && r < len(n.peers) && n.peers[r] == pc {
		n.peers[r] = nil
	}
	n.peersMu.Unlock()
}

// die makes this rank behave like a killed process: stop accepting,
// stop serving, break every outgoing connection, and let the worker exit
// with errKilled at its next poll. Fault-injection only.
func (n *node) die() {
	n.killOnce.Do(func() {
		n.killed.Store(true)
		if n.ln != nil {
			n.ln.Close()
		}
		n.peersMu.Lock()
		for _, p := range n.peers {
			if p != nil {
				p.close()
			}
		}
		n.peersMu.Unlock()
	})
}

// close tears down the listener, stops the progress engine, and breaks
// every outgoing connection — the teardown a real process exit implies.
func (n *node) close() {
	n.shut.Store(true)
	if n.ln != nil {
		n.ln.Close()
	}
	n.peersMu.Lock()
	for _, p := range n.peers {
		if p != nil {
			p.close()
		}
	}
	n.peersMu.Unlock()
}

// handoffEntry is one reserved-work record in the handoff table: the
// chunks, which thief they were granted to, and when. A zero deposit
// time marks the entry as already stranded (the redeposit path), making
// it eligible for the very next reclaim sweep.
type handoffEntry struct {
	chunks []stack.Chunk
	thief  int32
	at     time.Time
}

// deposit reserves chunks in the handoff table for thief and returns
// their handle.
func (n *node) deposit(chunks []stack.Chunk, thief int32) uint64 {
	n.handoffMu.Lock()
	n.handoffSeq++
	h := n.handoffSeq
	n.handoff[h] = handoffEntry{chunks: chunks, thief: thief, at: time.Now()}
	n.handoffN.Store(int32(len(n.handoff)))
	n.handoffMu.Unlock()
	return h
}

// redeposit puts chunks whose served GetChunks response never reached
// the thief back into the table as an already-stranded entry. The
// progress engine cannot touch the worker-owned pool directly, so the
// table is the rendezvous: the worker's next reclaim sweep returns the
// work to the pool. This is the server-side counterpart of service()'s
// withdraw — a lost response must not lose the subtree it carried.
func (n *node) redeposit(thief int32, chunks []stack.Chunk) {
	n.handoffMu.Lock()
	n.handoffSeq++
	n.handoff[n.handoffSeq] = handoffEntry{chunks: chunks, thief: thief}
	n.handoffN.Store(int32(len(n.handoff)))
	n.handoffMu.Unlock()
}

// withdraw takes reserved chunks back out of the handoff table — the
// un-deposit used when the steal response never reached the thief and
// the reserved work must return to the pool instead of leaking.
func (n *node) withdraw(h uint64) ([]stack.Chunk, bool) {
	n.handoffMu.Lock()
	defer n.handoffMu.Unlock()
	e, ok := n.handoff[h]
	if ok {
		delete(n.handoff, h)
		n.handoffN.Store(int32(len(n.handoff)))
	}
	return e.chunks, ok
}

// reclaimStranded withdraws every handoff entry whose thief this rank
// has declared dead or whose age exceeds staleAfter, returning the
// entries so the worker can put the work back into its pool. This is
// the backstop for death-verdict false positives: a thief that timed
// out waiting for the response (while the PutResponse in fact landed)
// never fetches its grant, and without the sweep that subtree would sit
// in the table forever while the run printed a clean, silently short
// summary. Worker-goroutine only. Delivery and reclamation cannot
// double-count: both delete the entry under handoffMu, so exactly one
// side obtains the chunks.
func (n *node) reclaimStranded() []handoffEntry {
	if n.handoffN.Load() == 0 {
		return nil
	}
	now := time.Now()
	limit := n.staleAfter()
	var out []handoffEntry
	n.handoffMu.Lock()
	for h, e := range n.handoff {
		if n.isDead(int(e.thief)) || now.Sub(e.at) > limit {
			delete(n.handoff, h)
			out = append(out, e)
		}
	}
	n.handoffN.Store(int32(len(n.handoff)))
	n.handoffMu.Unlock()
	return out
}

// getNodeBuf returns a recycled node buffer, or nil when none is free (the
// caller's append then allocates one that will join the cycle).
func (n *node) getNodeBuf() stack.Chunk {
	n.freeMu.Lock()
	defer n.freeMu.Unlock()
	if len(n.freeChunks) == 0 {
		return nil
	}
	c := n.freeChunks[len(n.freeChunks)-1]
	n.freeChunks = n.freeChunks[:len(n.freeChunks)-1]
	return c
}

// putNodeBuf recycles one node buffer whose contents are dead (copied onto
// a stack or encoded to a thief).
func (n *node) putNodeBuf(c stack.Chunk) {
	n.freeMu.Lock()
	n.freeChunks = append(n.freeChunks, c[:0])
	n.freeMu.Unlock()
}

// getChunkBuf returns a recycled response buffer, or nil when none is free.
func (n *node) getChunkBuf() []stack.Chunk {
	n.freeMu.Lock()
	defer n.freeMu.Unlock()
	if len(n.freeBufs) == 0 {
		return nil
	}
	b := n.freeBufs[len(n.freeBufs)-1]
	n.freeBufs = n.freeBufs[:len(n.freeBufs)-1]
	return b
}

// putChunkBuf recycles a response buffer alone, dropping its references;
// used when the node buffers it carried went back to the pool instead of
// the free lists (the withdraw path).
func (n *node) putChunkBuf(buf []stack.Chunk) {
	for i := range buf {
		buf[i] = nil
	}
	n.freeMu.Lock()
	n.freeBufs = append(n.freeBufs, buf[:0])
	n.freeMu.Unlock()
}

// recycle returns a served response buffer and every node buffer it
// carries to the free lists; called after the reply has been encoded.
func (n *node) recycle(buf []stack.Chunk) {
	n.freeMu.Lock()
	for i, c := range buf {
		n.freeChunks = append(n.freeChunks, c[:0])
		buf[i] = nil
	}
	n.freeBufs = append(n.freeBufs, buf[:0])
	n.freeMu.Unlock()
}
