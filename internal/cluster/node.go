package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// Config configures one process of a distributed run.
type Config struct {
	// Rank is this process's ID in [0, Ranks); rank 0 is the coordinator.
	Rank int
	// Ranks is the total number of processes.
	Ranks int
	// Coord is the coordinator's listen address. Rank 0 listens on it
	// ("host:port", port may be 0 when CoordReady is used); other ranks
	// dial it.
	Coord string
	// CoordReady, if non-nil, receives rank 0's actual listen address once
	// it is accepting connections. Used by in-process launches and tests
	// that bind port 0.
	CoordReady chan<- string
	// Spec is the tree to search; every rank must be given the same spec.
	Spec *uts.Spec
	// Chunk is the steal granularity k; default 16.
	Chunk int
	// Seed randomizes probe orders.
	Seed int64
	// DialTimeout bounds bootstrap connection attempts; default 10s.
	DialTimeout time.Duration
	// Tracer, when non-nil, records this rank's steal-protocol events
	// into lane Rank (build it with obs.New(Ranks, ringSize) so lane
	// numbering matches rank numbering). Traces are per-process: each
	// rank writes its own file; there is no cross-rank event merge.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() (Config, error) {
	if c.Ranks < 1 {
		return c, fmt.Errorf("cluster: need at least one rank, got %d", c.Ranks)
	}
	if c.Rank < 0 || c.Rank >= c.Ranks {
		return c, fmt.Errorf("cluster: rank %d out of range [0,%d)", c.Rank, c.Ranks)
	}
	if c.Spec == nil {
		return c, fmt.Errorf("cluster: no tree spec")
	}
	if err := c.Spec.Validate(); err != nil {
		return c, err
	}
	if c.Chunk == 0 {
		c.Chunk = 16
	}
	if c.Chunk < 1 {
		return c, fmt.Errorf("cluster: chunk must be >= 1, got %d", c.Chunk)
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	return c, nil
}

// node is one process's runtime state.
type node struct {
	cfg   Config
	ln    net.Listener
	addrs []string // rank → address

	// Shared words served one-sidedly by the progress engine.
	workAvail atomic.Int32
	reqWord   atomic.Int32

	// Incoming response slot (written by kindPutResponse).
	respAmount int32
	respHandle uint64
	respFrom   int
	respReady  atomic.Bool

	// Handoff table: chunks reserved by the worker, fetched one-sidedly
	// by thieves. Guarded by handoffMu (worker deposits, progress engine
	// serves).
	handoffMu  sync.Mutex
	handoffSeq uint64
	handoff    map[uint64][]stack.Chunk

	// Barrier state (rank 0 only), manipulated by the progress engine
	// under barMu.
	barMu     sync.Mutex
	barCount  int
	announced atomic.Bool

	// Stats collection (rank 0 only).
	statsMu   sync.Mutex
	collected []stats.Thread
	statsWG   sync.WaitGroup

	// Free lists recycling the kindGetChunks hot path: node buffers (the
	// k-node chunks released by the worker) and the []Chunk response
	// buffers that carry them through the handoff table. The worker draws
	// from these on release/steal service; the progress engine returns
	// both once a served response is encoded. Plain slices under a mutex
	// rather than sync.Pool: putting a slice header into an interface
	// would itself allocate, defeating the zero-steady-state goal.
	freeMu     sync.Mutex
	freeChunks []stack.Chunk
	freeBufs   [][]stack.Chunk

	// Outgoing connections, one per peer, created lazily. Each carries
	// only this rank's requests, in lockstep, so a plain mutex per peer
	// suffices.
	peersMu sync.Mutex
	peers   []*peerConn

	t stats.Thread
}

// peerConn is one outgoing gob-encoded RPC connection.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// call performs one lockstep RPC on the connection.
func (p *peerConn) call(req *request) (*response, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("cluster: rpc send: %w", err)
	}
	var resp response
	if err := p.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: rpc recv: %w", err)
	}
	return &resp, nil
}

// Run executes this process's part of a distributed search. On rank 0 it
// returns the aggregated result once every rank has reported; on other
// ranks it returns (nil, nil) after a clean shutdown.
func Run(cfg Config) (*stats.Run, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &node{cfg: cfg, handoff: map[uint64][]stack.Chunk{}}
	n.reqWord.Store(-1)
	n.t.ID = cfg.Rank

	if err := n.bootstrap(); err != nil {
		return nil, err
	}
	defer n.close()

	start := time.Now()
	if err := n.search(); err != nil {
		return nil, err
	}

	if cfg.Rank != 0 {
		// Report counters to the coordinator and exit.
		if cfg.Ranks > 1 {
			pc, err := n.peer(0)
			if err != nil {
				return nil, err
			}
			if _, err := pc.call(&request{Kind: kindStats, From: cfg.Rank, Stats: &n.t}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	// Rank 0: wait for every other rank's stats, then aggregate. The
	// tracer summary covers rank 0's own lane only (remote ranks write
	// their own trace files).
	n.statsWG.Wait()
	run := &stats.Run{Elapsed: time.Since(start)}
	run.Threads = append(run.Threads, n.t)
	n.statsMu.Lock()
	run.Threads = append(run.Threads, n.collected...)
	n.statsMu.Unlock()
	run.Obs = cfg.Tracer.Summary()
	return run, nil
}

// bootstrap brings up the listener, exchanges the address map through the
// coordinator, and waits until every rank is reachable.
func (n *node) bootstrap() error {
	cfg := &n.cfg
	if cfg.Ranks == 1 {
		n.addrs = []string{""}
		return nil
	}
	if cfg.Rank == 0 {
		ln, err := net.Listen("tcp", cfg.Coord)
		if err != nil {
			return fmt.Errorf("cluster: coordinator listen: %w", err)
		}
		n.ln = ln
		if cfg.CoordReady != nil {
			cfg.CoordReady <- ln.Addr().String()
		}
		n.statsWG.Add(cfg.Ranks - 1)
		return n.coordinate()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("cluster: rank %d listen: %w", cfg.Rank, err)
	}
	n.ln = ln
	go n.serve()

	conn, err := dialRetry(cfg.Coord, cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: rank %d dial coordinator: %w", cfg.Rank, err)
	}
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	resp, err := pc.call(&request{Kind: kindHello, From: cfg.Rank, Addr: ln.Addr().String()})
	if err != nil {
		return err
	}
	n.addrs = resp.Addrs
	n.peersMu.Lock()
	n.peers = make([]*peerConn, cfg.Ranks)
	n.peers[0] = pc // reuse the coordinator connection for rank-0 RPCs
	n.peersMu.Unlock()
	return nil
}

// coordinate is rank 0's side of the bootstrap: accept one Hello per rank,
// then answer all of them with the completed address map and keep serving
// the connections.
func (n *node) coordinate() error {
	cfg := &n.cfg
	n.addrs = make([]string, cfg.Ranks)
	n.addrs[0] = n.ln.Addr().String()

	type pending struct {
		conn net.Conn
		enc  *gob.Encoder
		dec  *gob.Decoder
	}
	waiting := make([]pending, 0, cfg.Ranks-1)
	for registered := 0; registered < cfg.Ranks-1; {
		conn, err := n.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: coordinator accept: %w", err)
		}
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		var req request
		if err := dec.Decode(&req); err != nil {
			conn.Close()
			return fmt.Errorf("cluster: bad hello: %w", err)
		}
		if req.Kind != kindHello || req.From <= 0 || req.From >= cfg.Ranks || n.addrs[req.From] != "" {
			conn.Close()
			return fmt.Errorf("cluster: invalid hello from rank %d", req.From)
		}
		n.addrs[req.From] = req.Addr
		waiting = append(waiting, pending{conn, enc, dec})
		registered++
	}
	for _, p := range waiting {
		if err := p.enc.Encode(&response{Addrs: n.addrs}); err != nil {
			return fmt.Errorf("cluster: address broadcast: %w", err)
		}
		// The hello connection becomes a served peer connection.
		go n.serveConn(p.conn, p.enc, p.dec)
	}
	go n.serve() // later direct dials from workers to rank 0's one-sided words
	return nil
}

// dialRetry dials until the deadline; the coordinator may come up after
// the workers when processes are launched together.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// serve accepts inbound one-sided connections for the progress engine.
func (n *node) serve() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		go n.serveConn(conn, gob.NewEncoder(conn), gob.NewDecoder(conn))
	}
}

// serveConn is the progress engine: it services one-sided operations on
// this process's shared words without involving the worker thread. The
// request and reply structs live for the whole connection — reset, never
// reallocated — and served chunk buffers return to the node's free lists
// once encoded, so the steady-state request loop allocates nothing.
func (n *node) serveConn(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) {
	defer conn.Close()
	var req request
	var resp response
	for {
		req.reset()
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp.reset()
		recycle, ok := n.handleRequest(&req, &resp)
		if !ok {
			return // protocol error: drop the connection
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if recycle != nil {
			n.recycle(recycle)
		}
	}
}

// handleRequest services one progress-engine request, writing the reply
// into resp. It returns the chunk buffer to recycle once resp has been
// encoded (kindGetChunks only) and whether the connection should stay open.
func (n *node) handleRequest(req *request, resp *response) (recycle []stack.Chunk, ok bool) {
	switch req.Kind {
	case kindGetAvail:
		resp.Avail = n.workAvail.Load()
	case kindCASRequest:
		resp.OK = n.reqWord.CompareAndSwap(-1, req.Thief)
	case kindPutResponse:
		n.respAmount = req.Amount
		n.respHandle = req.Handle
		n.respFrom = req.From
		n.respReady.Store(true)
	case kindGetChunks:
		n.handoffMu.Lock()
		resp.Chunk = n.handoff[req.Handle]
		delete(n.handoff, req.Handle)
		n.handoffMu.Unlock()
		recycle = resp.Chunk
	case kindBarrierEnter:
		n.barMu.Lock()
		n.barCount++
		if n.barCount == n.cfg.Ranks {
			n.announced.Store(true)
			resp.Last = true
		}
		n.barMu.Unlock()
	case kindBarrierLeave:
		n.barMu.Lock()
		if !n.announced.Load() {
			n.barCount--
			resp.OK = true
		}
		n.barMu.Unlock()
	case kindBarrierDone:
		resp.Done = n.announced.Load()
	case kindStats:
		if req.Stats != nil {
			n.statsMu.Lock()
			n.collected = append(n.collected, *req.Stats)
			n.statsMu.Unlock()
			n.statsWG.Done()
		}
	default:
		return nil, false
	}
	return recycle, true
}

// peer returns (dialing if necessary) the outgoing connection to rank r.
func (n *node) peer(r int) (*peerConn, error) {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if n.peers == nil {
		n.peers = make([]*peerConn, n.cfg.Ranks)
	}
	if n.peers[r] == nil {
		conn, err := dialRetry(n.addrs[r], n.cfg.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("cluster: rank %d cannot reach rank %d at %q: %w",
				n.cfg.Rank, r, n.addrs[r], err)
		}
		n.peers[r] = &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	}
	return n.peers[r], nil
}

// close tears down the listener and every outgoing connection.
func (n *node) close() {
	if n.ln != nil {
		n.ln.Close()
	}
	n.peersMu.Lock()
	for _, p := range n.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	n.peersMu.Unlock()
}

// deposit reserves chunks in the handoff table and returns their handle.
func (n *node) deposit(chunks []stack.Chunk) uint64 {
	n.handoffMu.Lock()
	n.handoffSeq++
	h := n.handoffSeq
	n.handoff[h] = chunks
	n.handoffMu.Unlock()
	return h
}

// getNodeBuf returns a recycled node buffer, or nil when none is free (the
// caller's append then allocates one that will join the cycle).
func (n *node) getNodeBuf() stack.Chunk {
	n.freeMu.Lock()
	defer n.freeMu.Unlock()
	if len(n.freeChunks) == 0 {
		return nil
	}
	c := n.freeChunks[len(n.freeChunks)-1]
	n.freeChunks = n.freeChunks[:len(n.freeChunks)-1]
	return c
}

// putNodeBuf recycles one node buffer whose contents are dead (copied onto
// a stack or encoded to a thief).
func (n *node) putNodeBuf(c stack.Chunk) {
	n.freeMu.Lock()
	n.freeChunks = append(n.freeChunks, c[:0])
	n.freeMu.Unlock()
}

// getChunkBuf returns a recycled response buffer, or nil when none is free.
func (n *node) getChunkBuf() []stack.Chunk {
	n.freeMu.Lock()
	defer n.freeMu.Unlock()
	if len(n.freeBufs) == 0 {
		return nil
	}
	b := n.freeBufs[len(n.freeBufs)-1]
	n.freeBufs = n.freeBufs[:len(n.freeBufs)-1]
	return b
}

// recycle returns a served response buffer and every node buffer it
// carries to the free lists; called after the reply has been encoded.
func (n *node) recycle(buf []stack.Chunk) {
	n.freeMu.Lock()
	for i, c := range buf {
		n.freeChunks = append(n.freeChunks, c[:0])
		buf[i] = nil
	}
	n.freeBufs = append(n.freeBufs, buf[:0])
	n.freeMu.Unlock()
}
