package pgas

import (
	"fmt"
	"sync"
)

// Domain is one PGAS program instance: a fixed set of threads (UPC's
// THREADS) sharing an address space partitioned by affinity. The Domain
// does not own the shared data — the algorithms keep their own structures —
// it owns the cost accounting and the synchronization primitives whose
// semantics depend on affinity.
type Domain struct {
	n     int
	model *Model

	// Two-level topology (optional): threads are grouped into cluster
	// nodes of nodeSize consecutive IDs; references between threads on
	// the same node are charged to intra instead of model. This realizes
	// the machine structure behind the paper's Section 6.2 suggestion of
	// stealing within a node (bupc_thread_distance) before going off-node.
	nodeSize int
	intra    *Model
}

// SetTopology groups the domain's threads into cluster nodes of nodeSize
// consecutive IDs and charges references between same-node threads to the
// intra model. nodeSize <= 1 or a nil intra model restores the flat
// machine.
func (d *Domain) SetTopology(nodeSize int, intra *Model) {
	if nodeSize <= 1 || intra == nil {
		d.nodeSize = 0
		d.intra = nil
		return
	}
	d.nodeSize = nodeSize
	d.intra = intra
}

// NodeSize returns the cluster-node size, or 0 for a flat machine.
func (d *Domain) NodeSize() int { return d.nodeSize }

// SameNode reports whether threads a and b live on the same cluster node.
// On a flat machine only a == b is local.
func (d *Domain) SameNode(a, b int) bool {
	if a == b {
		return true
	}
	if d.nodeSize <= 1 {
		return false
	}
	return a/d.nodeSize == b/d.nodeSize
}

// modelFor returns the cost model governing a reference from thread me to
// data with affinity to owner.
func (d *Domain) modelFor(me, owner int) *Model {
	if d.intra != nil && me != owner && d.SameNode(me, owner) {
		return d.intra
	}
	return d.model
}

// NewDomain creates a domain of n threads under the given cost model.
// The model may be nil, meaning SharedMemory.
func NewDomain(n int, model *Model) (*Domain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pgas: domain needs at least one thread, got %d", n)
	}
	if model == nil {
		model = &SharedMemory
	}
	return &Domain{n: n, model: model}, nil
}

// Threads returns the number of threads in the domain (UPC's THREADS).
func (d *Domain) Threads() int { return d.n }

// Model returns the domain's cost model.
func (d *Domain) Model() *Model { return d.model }

// ChargeRef charges thread `me` for one shared-variable reference to data
// with affinity to thread `owner`: the local overhead if me == owner, the
// one-sided remote latency otherwise.
func (d *Domain) ChargeRef(me, owner int) {
	if me == owner {
		Charge(d.model.LocalRef)
	} else {
		Charge(d.modelFor(me, owner).RemoteRef)
	}
}

// ChargeBulk charges thread `me` for a one-sided bulk transfer of n bytes
// to or from thread `owner`'s partition (upc_memget/upc_memput).
func (d *Domain) ChargeBulk(me, owner, n int) {
	if me == owner {
		Charge(d.model.LocalRef)
	} else {
		Charge(d.modelFor(me, owner).BulkCost(n))
	}
}

// ChargeLockRTT charges thread `me` a lock round trip to data with
// affinity to thread `owner` (used for atomically claimed protocol words,
// like the distributed-memory algorithm's request variable).
func (d *Domain) ChargeLockRTT(me, owner int) {
	if me == owner {
		Charge(d.model.LocalRef)
		return
	}
	Charge(d.modelFor(me, owner).LockRTT)
}

// Lock is a UPC-style global lock: any thread may acquire it, and acquiring
// or releasing it from a thread other than its affinity owner costs a
// remote round trip on top of any queueing delay. The zero value is not
// usable; create locks through Domain.NewLock.
type Lock struct {
	dom   *Domain
	owner int
	mu    sync.Mutex
}

// NewLock returns a lock whose affinity is to thread owner.
func (d *Domain) NewLock(owner int) *Lock {
	return &Lock{dom: d, owner: owner}
}

// Acquire blocks until the lock is held by thread me, charging the
// affinity-dependent acquisition cost.
func (l *Lock) Acquire(me int) {
	if me == l.owner {
		Charge(l.dom.model.LocalRef)
	} else {
		Charge(l.dom.modelFor(me, l.owner).LockRTT)
	}
	l.mu.Lock()
}

// Release releases the lock, charging the affinity-dependent cost.
func (l *Lock) Release(me int) {
	l.mu.Unlock()
	if me == l.owner {
		Charge(l.dom.model.LocalRef)
	} else {
		Charge(l.dom.modelFor(me, l.owner).LockRTT)
	}
}
