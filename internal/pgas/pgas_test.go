package pgas

import (
	"sync"
	"testing"
	"time"
)

func TestNewDomain(t *testing.T) {
	d, err := NewDomain(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Threads() != 4 {
		t.Errorf("Threads = %d", d.Threads())
	}
	if d.Model().Name != "sharedmem" {
		t.Errorf("nil model should default to sharedmem, got %s", d.Model().Name)
	}
	if _, err := NewDomain(0, nil); err == nil {
		t.Error("zero-thread domain should fail")
	}
	if _, err := NewDomain(-3, nil); err == nil {
		t.Error("negative-thread domain should fail")
	}
}

func TestBulkCost(t *testing.T) {
	m := Model{RemoteRef: time.Microsecond, PerKB: time.Microsecond}
	if got := m.BulkCost(0); got != time.Microsecond {
		t.Errorf("BulkCost(0) = %v", got)
	}
	if got := m.BulkCost(2048); got != 3*time.Microsecond {
		t.Errorf("BulkCost(2KiB) = %v, want 3µs", got)
	}
	if got := m.BulkCost(512); got != time.Microsecond+500*time.Nanosecond {
		t.Errorf("BulkCost(512B) = %v", got)
	}
}

func TestChargeZeroIsFree(t *testing.T) {
	start := time.Now()
	for i := 0; i < 1000; i++ {
		Charge(0)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Errorf("1000 zero charges took %v", el)
	}
}

func TestChargeDelays(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	start := time.Now()
	Charge(2 * time.Millisecond) // sleep path? no: 2ms >= 50µs → sleep path
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Errorf("Charge(2ms) returned after only %v", el)
	}
	start = time.Now()
	Charge(20 * time.Microsecond) // spin path
	if el := time.Since(start); el < 20*time.Microsecond {
		t.Errorf("Charge(20µs) returned after only %v", el)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	d, _ := NewDomain(8, &SharedMemory)
	l := d.NewLock(0)
	var counter int
	var wg sync.WaitGroup
	for me := 0; me < 8; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Acquire(me)
				counter++
				l.Release(me)
			}
		}(me)
	}
	wg.Wait()
	if counter != 8*200 {
		t.Errorf("counter = %d, want %d (lock not mutually exclusive)", counter, 8*200)
	}
}

func TestLockRemoteCostCharged(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	m := Model{Name: "t", LockRTT: 200 * time.Microsecond}
	d, _ := NewDomain(2, &m)
	l := d.NewLock(0)
	start := time.Now()
	l.Acquire(1) // remote acquirer pays LockRTT
	l.Release(1)
	if el := time.Since(start); el < 400*time.Microsecond {
		t.Errorf("remote acquire+release took %v, want >= 400µs", el)
	}
	start = time.Now()
	l.Acquire(0) // owner pays ~nothing
	l.Release(0)
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Errorf("owner acquire took %v", el)
	}
}

func TestProfilesComplete(t *testing.T) {
	for name, m := range Profiles {
		if m.Name != name {
			t.Errorf("profile %q has Name %q", name, m.Name)
		}
		if m.NodeCost <= 0 {
			t.Errorf("profile %q has no NodeCost", name)
		}
		if m.String() == "" {
			t.Errorf("profile %q: empty String", name)
		}
	}
	// Cost-structure sanity: clusters must be costlier than shared memory,
	// and remote locks an order of magnitude above remote references.
	for _, m := range []*Model{&KittyHawk, &Topsail} {
		if m.RemoteRef <= Altix.RemoteRef {
			t.Errorf("%s RemoteRef should exceed Altix", m.Name)
		}
		if m.LockRTT < 5*m.RemoteRef {
			t.Errorf("%s LockRTT %v should be ~10x RemoteRef %v", m.Name, m.LockRTT, m.RemoteRef)
		}
	}
}

func TestChargeRefAffinity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	m := Model{Name: "t", LocalRef: 0, RemoteRef: 300 * time.Microsecond}
	d, _ := NewDomain(2, &m)
	start := time.Now()
	d.ChargeRef(0, 0)
	local := time.Since(start)
	start = time.Now()
	d.ChargeRef(0, 1)
	remote := time.Since(start)
	if remote < 300*time.Microsecond {
		t.Errorf("remote ref took %v, want >= 300µs", remote)
	}
	if local > remote {
		t.Errorf("local ref (%v) costlier than remote (%v)", local, remote)
	}
}

func TestTopology(t *testing.T) {
	d, _ := NewDomain(12, &Topsail)
	if d.NodeSize() != 0 {
		t.Error("flat domain should have node size 0")
	}
	if d.SameNode(1, 2) {
		t.Error("flat domain: distinct threads share no node")
	}
	if !d.SameNode(3, 3) {
		t.Error("a thread is always on its own node")
	}
	d.SetTopology(4, &Altix)
	if d.NodeSize() != 4 {
		t.Errorf("NodeSize = %d", d.NodeSize())
	}
	if !d.SameNode(0, 3) || d.SameNode(3, 4) || !d.SameNode(8, 11) {
		t.Error("node grouping wrong")
	}
	// Resetting topology.
	d.SetTopology(1, &Altix)
	if d.NodeSize() != 0 {
		t.Error("nodeSize 1 should flatten the domain")
	}
	d.SetTopology(4, nil)
	if d.NodeSize() != 0 {
		t.Error("nil intra model should flatten the domain")
	}
}

func TestTopologyChargesIntraModel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	inter := Model{Name: "inter", RemoteRef: 2 * time.Millisecond}
	intra := Model{Name: "intra", RemoteRef: 0}
	d, _ := NewDomain(8, &inter)
	d.SetTopology(4, &intra)
	start := time.Now()
	d.ChargeRef(0, 1) // same node: intra, free
	if el := time.Since(start); el > time.Millisecond {
		t.Errorf("intra-node ref took %v", el)
	}
	start = time.Now()
	d.ChargeRef(0, 5) // different node: inter
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Errorf("inter-node ref took only %v", el)
	}
}

// TestMinRemoteHop covers every built-in profile plus the fallback and
// zero cases: the minimum hop is the sharded simulator's lookahead, so a
// profile must report zero exactly when it admits instantaneous remote
// effects (the SharedMemory profile, which sharded mode rejects).
func TestMinRemoteHop(t *testing.T) {
	for name, m := range Profiles {
		hop := m.MinRemoteHop()
		if name == "sharedmem" {
			if hop != 0 {
				t.Errorf("%s: MinRemoteHop = %v, want 0 (zero-latency profile)", name, hop)
			}
			continue
		}
		if hop != m.RemoteRef {
			t.Errorf("%s: MinRemoteHop = %v, want RemoteRef %v", name, hop, m.RemoteRef)
		}
		if hop <= 0 {
			t.Errorf("%s: cluster profile reports no positive remote hop", name)
		}
		if m.LockRTT > 0 && hop > m.LockRTT {
			t.Errorf("%s: MinRemoteHop %v exceeds LockRTT %v", name, hop, m.LockRTT)
		}
		if bulk := m.BulkCost(1); hop > bulk {
			t.Errorf("%s: MinRemoteHop %v exceeds minimal bulk transfer %v", name, hop, bulk)
		}
	}
	lockOnly := Model{LockRTT: 3 * time.Microsecond}
	if got := lockOnly.MinRemoteHop(); got != 3*time.Microsecond {
		t.Errorf("lock-only model: MinRemoteHop = %v, want LockRTT", got)
	}
	var zero Model
	if got := zero.MinRemoteHop(); got != 0 {
		t.Errorf("zero model: MinRemoteHop = %v, want 0", got)
	}
}
