// Package pgas provides the partitioned-global-address-space runtime
// surface the work-stealing implementations are written against, standing in
// for UPC and the Berkeley UPC runtime used in the paper.
//
// UPC gives a program: a fixed set of threads, shared data with per-thread
// affinity, one-sided reads and writes of remote shared data, and global
// locks. On a cluster the compiler translates remote references into
// interconnect operations, and the entire argument of the paper is about the
// *cost structure* of those operations: a remote reference costs microseconds
// where a local one costs nanoseconds, and a remote lock acquisition costs an
// order of magnitude more than a remote reference (Section 3.3.3).
//
// In this reproduction, threads are goroutines in one address space, so
// affinity is a bookkeeping notion and remote references are ordinary memory
// operations plus an injected latency charge taken from a Model. The same
// Model drives the discrete-event simulator, which is how the cluster-scale
// experiments (Figures 4 and 5) are reproduced on a single machine.
package pgas

import (
	"fmt"
	"runtime"
	"time"
)

// Model is the interconnect cost model. All entries are charged to the
// calling thread: in real execution as an injected delay, in simulation as
// virtual time.
type Model struct {
	Name string

	// LocalRef is the cost of a shared-variable reference with local
	// affinity (UPC shared-pointer translation overhead).
	LocalRef time.Duration
	// RemoteRef is the one-way latency of a one-sided remote read or write
	// of a small (word-sized) shared variable.
	RemoteRef time.Duration
	// PerKB is the additional bandwidth cost of bulk one-sided transfers,
	// charged per KiB on top of RemoteRef.
	PerKB time.Duration
	// LockRTT is the cost of acquiring or releasing a lock with remote
	// affinity, beyond the queueing delay itself. The paper observes this
	// is typically ~10x a shared-variable reference.
	LockRTT time.Duration
	// NodeCost is the sequential cost of generating and visiting one tree
	// node (the SHA-1 evaluation); it calibrates the simulator's virtual
	// clock. Real-mode execution ignores it: real nodes take real time.
	NodeCost time.Duration
}

// BulkCost returns the modeled cost of a one-sided transfer of n bytes.
func (m *Model) BulkCost(n int) time.Duration {
	return m.RemoteRef + time.Duration(int64(m.PerKB)*int64(n)/1024)
}

// MinRemoteHop returns the minimum nonzero cost of any cross-PE operation
// under this model: the cheapest latency a remote reference, bulk transfer,
// or lock round trip can incur. It is the conservative lookahead of the
// sharded DES engine — no PE can affect another PE's partition in less
// virtual time than this — so a zero return means the model admits
// instantaneous remote effects and cannot be sharded. Every remote
// operation charges at least RemoteRef (BulkCost adds bandwidth on top,
// and the simulator clamps LockRTT up to RemoteRef), so the minimum hop
// is RemoteRef when it is nonzero, falling back to LockRTT for models
// that make references free but locks costly.
func (m *Model) MinRemoteHop() time.Duration {
	if m.RemoteRef > 0 {
		return m.RemoteRef
	}
	if m.LockRTT > 0 {
		return m.LockRTT
	}
	return 0
}

// String identifies the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s[local=%v remote=%v lock=%v perKB=%v node=%v]",
		m.Name, m.LocalRef, m.RemoteRef, m.LockRTT, m.PerKB, m.NodeCost)
}

// The stock machine profiles. Latencies are set from the hardware the paper
// reports: InfiniBand clusters (Kitty Hawk, Topsail) with one-sided puts/gets
// in the few-microsecond range and remote locking an order of magnitude
// above a reference, and the SGI Altix 3700 whose hypercube interconnect
// supports sub-microsecond remote references. NodeCost ≈ 1/2.2M s matches
// the paper's measured sequential rates (2.10-2.39M nodes/s on Xeon,
// 1.12M on Itanium2).
var (
	// SharedMemory is an idealized zero-latency profile: every thread pays
	// only nominal local costs. Used for pure-correctness runs.
	SharedMemory = Model{
		Name:      "sharedmem",
		LocalRef:  0,
		RemoteRef: 0,
		PerKB:     0,
		LockRTT:   0,
		NodeCost:  450 * time.Nanosecond,
	}

	// Altix models the SGI Altix 3700 of Section 4.3: hardware shared
	// memory with a low-latency interconnect.
	Altix = Model{
		Name:      "altix",
		LocalRef:  5 * time.Nanosecond,
		RemoteRef: 600 * time.Nanosecond,
		PerKB:     300 * time.Nanosecond,
		LockRTT:   2 * time.Microsecond,
		NodeCost:  890 * time.Nanosecond, // 1.12M nodes/s Itanium2
	}

	// KittyHawk models the 264-processor InfiniBand blade cluster of
	// Section 4.2 (Figure 4's machine).
	KittyHawk = Model{
		Name:      "kittyhawk",
		LocalRef:  5 * time.Nanosecond,
		RemoteRef: 4 * time.Microsecond,
		PerKB:     1 * time.Microsecond,
		LockRTT:   35 * time.Microsecond,
		NodeCost:  418 * time.Nanosecond, // 2.39M nodes/s Xeon E5150
	}

	// Topsail models the 4160-processor InfiniBand cluster of Section
	// 4.2.2 (Figure 5's machine).
	Topsail = Model{
		Name:      "topsail",
		LocalRef:  5 * time.Nanosecond,
		RemoteRef: 5 * time.Microsecond,
		PerKB:     1200 * time.Nanosecond,
		LockRTT:   40 * time.Microsecond,
		NodeCost:  476 * time.Nanosecond, // 2.10M nodes/s Xeon E5345
	}
)

// Profiles lists the stock models by name.
var Profiles = map[string]*Model{
	"sharedmem": &SharedMemory,
	"altix":     &Altix,
	"kittyhawk": &KittyHawk,
	"topsail":   &Topsail,
}

// Charge injects the model delay d into real execution on the calling
// goroutine. Sub-50µs delays are spin-waited with cooperative yields so
// that oversubscribed runs (more threads than cores) stay live; longer
// delays sleep.
func Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 50*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
