package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/policy"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/term"
	"repro/internal/uts"
)

// nodeBytes is the nominal wire size of one node descriptor (20-byte RNG
// state plus height and child count), used for bandwidth charging.
const nodeBytes = 28

// sharedStack is one thread's stack in the shared-memory algorithm
// (Section 3.1, Figure 2): a local region the owner manipulates without
// synchronization and a lock-guarded shared region holding whole chunks.
type sharedStack struct {
	lk   *pgas.Lock
	pool stack.Pool // guarded by lk

	// ring replaces lk/pool under the relaxed variant (upc-term-relaxed):
	// a fence-free versioned-slot ring with a multiplicity ledger, owner
	// publish/retract without lock round trips (DESIGN.md §14). nil for
	// the lock-based variants.
	ring *stack.Relaxed

	// workAvail is probed remotely without locking. For the streamlined-
	// termination variants it is a tri-state (Section 3.3.1): −1 when the
	// thread is entirely out of work, otherwise the number of stealable
	// chunks (0 = working but no surplus). The plain shared-memory
	// algorithm uses only the chunk count.
	workAvail atomic.Int32
}

// sharedRun bundles the state shared by all threads of one run.
type sharedRun struct {
	sp      *uts.Spec
	opt     Options
	variant sharedVariant
	dom     *pgas.Domain
	stacks  []*sharedStack
	cb      *term.CancelBarrier // sharedmem termination
	sb      *term.StreamBarrier // streamlined termination
}

// runShared executes upc-sharedmem / upc-term / upc-term-rapdif.
func runShared(sp *uts.Spec, opt Options, res *Result, v sharedVariant) error {
	dom, err := pgas.NewDomain(opt.Threads, opt.Model)
	if err != nil {
		return err
	}
	r := &sharedRun{sp: sp, opt: opt, variant: v, dom: dom}
	r.stacks = make([]*sharedStack, opt.Threads)
	for i := range r.stacks {
		r.stacks[i] = &sharedStack{lk: dom.NewLock(i)}
		if v.relaxed {
			r.stacks[i].ring = stack.NewRelaxed(i)
		}
	}
	if v.streamTerm {
		r.sb = term.NewStreamBarrier(dom)
	} else {
		r.cb = term.NewCancelBarrier(dom)
		r.cb.SetAbort(opt.abort)
	}

	var wg sync.WaitGroup
	for me := 0; me < opt.Threads; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			w := &sharedWorker{run: r, me: me, rng: NewProbeOrder(opt.Seed, me), t: &res.Threads[me], ex: uts.NewExpander(sp), lane: opt.Tracer.Lane(me), ctl: opt.policySet.Controller(me)}
			if me == 0 {
				w.local.Push(uts.Root(sp))
			}
			w.main()
		}(me)
	}
	wg.Wait()
	if v.relaxed && !opt.abort.Load() {
		// Accounting check: termination required every ring to drain, so
		// every chunk ever published must have exactly one ledger
		// consumer. A leftover unconsumed entry would mean lost work.
		// (An aborted run abandons published work by design.)
		for i, s := range r.stacks {
			if n := s.ring.Unconsumed(); n != 0 {
				return fmt.Errorf("relaxed ring %d: %d published chunks never consumed", i, n)
			}
		}
	}
	return nil
}

// sharedWorker is one thread's execution state.
type sharedWorker struct {
	run   *sharedRun
	me    int
	local stack.Deque
	rng   *ProbeOrder
	t     *stats.Thread
	ex    *uts.Expander
	lane  *obs.Lane          // nil when the run is untraced
	ctl   *policy.Controller // nil when the run is not adaptive

	nodesFlushed int64 // t.Nodes already published to the lane's live counter
	ctlNodes     int64 // t.Nodes already reported to the controller
	stolenNodes  int   // nodes delivered by the last successful steal
}

func (w *sharedWorker) stack() *sharedStack { return w.run.stacks[w.me] }

// flushNodes publishes node progress to the lane's live counter in
// batches at the hot loop's yield cadence — one atomic add per flush,
// never per node.
func (w *sharedWorker) flushNodes() {
	if d := w.t.Nodes - w.nodesFlushed; d != 0 {
		w.lane.AddNodes(d)
		w.nodesFlushed = w.t.Nodes
	}
}

// setState pairs the stats state timer with the tracer's state event.
func (w *sharedWorker) setState(s stats.State) {
	w.t.Switch(s, time.Now())
	w.lane.Rec(obs.KindStateChange, -1, int64(s))
}

// noteCtl feeds node progress (and a wall timestamp to close adaptation
// windows against) to the thread's controller. Called at the yield
// cadence, never per node; a no-op for fixed-knob runs.
func (w *sharedWorker) noteCtl() {
	if w.ctl == nil {
		return
	}
	now := time.Now() //uts:ok detcheck policy feedback timestamp; adaptive real-mode runs are wall-clock paced by design
	w.ctl.NoteNodes(int(w.t.Nodes-w.ctlNodes), w.local.Len(), now.UnixNano())
	w.ctlNodes = w.t.Nodes
}

// chunk returns the release granularity in effect: the adapted value
// under a controller, the static option otherwise.
func (w *sharedWorker) chunk() int {
	if w.ctl != nil {
		return w.ctl.Chunk()
	}
	return w.run.opt.Chunk
}

// stealTimed wraps a steal attempt with the controller's latency window
// (wall time; the pgas charges inside the attempt are real delays).
func (w *sharedWorker) stealTimed(v int) bool {
	if w.ctl == nil {
		return w.steal(v)
	}
	t0 := time.Now() //uts:ok detcheck policy steal-latency feedback; wall-paced by design in real mode
	w.ctl.StealBegin(t0.UnixNano())
	w.stolenNodes = 0
	ok := w.steal(v)
	t1 := time.Now() //uts:ok detcheck policy steal-latency feedback; wall-paced by design in real mode
	w.ctl.StealEnd(ok, w.stolenNodes, t1.UnixNano())
	return ok
}

// main is the Figure-1 state machine.
func (w *sharedWorker) main() {
	w.t.StartTimers(time.Now())
	w.lane.Rec(obs.KindStateChange, -1, int64(stats.Working))
	defer func() { w.t.StopTimers(time.Now()) }()
	for {
		w.work()
		if w.run.opt.abort.Load() {
			return
		}
		if w.run.variant.streamTerm {
			w.stack().workAvail.Store(-1)
		}
		w.setState(stats.Searching)
		if w.search() {
			w.setState(stats.Working)
			continue
		}
		w.setState(stats.Idle)
		w.t.TermBarrierEntries++
		w.lane.Rec(obs.KindTermEnter, -1, 0)
		if w.terminate() {
			return
		}
		w.lane.Rec(obs.KindTermExit, -1, 0)
		w.setState(stats.Working)
	}
}

// work explores nodes until both the local region and the thread's own
// shared region are empty ("Working" in Figure 1).
func (w *sharedWorker) work() {
	k := w.chunk()
	sinceYield := 0
	for {
		if sinceYield++; sinceYield >= yieldEvery {
			sinceYield = 0
			w.flushNodes()
			w.noteCtl()
			k = w.chunk() // may have adapted at the window boundary
			if w.run.opt.abort.Load() {
				return
			}
			runtime.Gosched()
		}
		n, ok := w.local.Pop()
		if !ok {
			if !w.reacquire() {
				w.flushNodes()
				return
			}
			continue
		}
		w.t.Nodes++
		if n.NumKids == 0 {
			w.t.Leaves++
		} else {
			w.local.PushAll(w.ex.Children(&n))
		}
		w.t.NoteDepth(w.local.Len())
		// Release surplus once the local region has a comfortable depth
		// (at least 2k, per Section 3.1).
		if w.local.Len() >= 2*k {
			w.release(k)
		}
	}
}

// release moves the k oldest local nodes into the shared region, making
// them stealable, and — under the shared-memory algorithm — resets the
// cancelable barrier, a remote lock operation charged to this thread.
func (w *sharedWorker) release(k int) {
	if w.run.variant.relaxed {
		w.releaseRelaxed(k)
		return
	}
	s := w.stack()
	chunk := w.local.TakeBottom(k)
	s.lk.Acquire(w.me)
	s.pool.Put(chunk)
	avail := int32(s.pool.Len())
	s.workAvail.Store(avail)
	s.lk.Release(w.me)
	w.t.Releases++
	w.lane.Rec(obs.KindRelease, -1, int64(avail))
	if !w.run.variant.streamTerm {
		w.run.cb.Cancel(w.me)
	}
}

// releaseRelaxed publishes the k oldest local nodes through the relaxed
// ring: no lock, a single atomic slot store. When the ring is full the
// release is skipped — bounded-buffer back-pressure; the owner keeps the
// nodes local and will try again after further expansion. workAvail is
// owner-written only under this variant and stored only on the
// empty→nonempty transition, so the owner's steady-state release path
// performs exactly one synchronizing store.
func (w *sharedWorker) releaseRelaxed(k int) {
	s := w.stack()
	if s.ring.Full() {
		return
	}
	chunk := w.local.TakeBottom(k)
	rec, ok := s.ring.Publish(chunk)
	if rec != nil {
		// Publish resolved a clobbered, never-consumed slot: the chunk
		// comes back to the owner and goes straight back to work.
		w.local.PushAll(rec)
	}
	if !ok {
		// Unreachable after the Full() check (single owner), but keep the
		// nodes rather than lose them if the protocol ever changes.
		w.local.PushAll(chunk)
		return
	}
	if s.ring.Live() == 1 {
		s.workAvail.Store(1)
	}
	w.t.Releases++
	w.lane.Rec(obs.KindRelease, -1, int64(s.ring.Live()))
}

// reacquire moves the newest chunk of the thread's own shared region back
// onto the local stack. It reports false if no chunk was available.
func (w *sharedWorker) reacquire() bool {
	if w.run.variant.relaxed {
		return w.reacquireRelaxed()
	}
	s := w.stack()
	s.lk.Acquire(w.me)
	c, ok := s.pool.TakeNewest()
	if ok {
		s.workAvail.Store(int32(s.pool.Len()))
	}
	s.lk.Release(w.me)
	if !ok {
		return false
	}
	w.t.Reacquires++
	w.lane.Rec(obs.KindReacquire, -1, int64(len(c)))
	w.local.PushAll(c)
	return true
}

// reacquireRelaxed takes the newest chunk the owner still owns back from
// the relaxed ring: no lock, one ledger compare-and-swap. A false return
// is the owner's proof that every chunk it ever published has been
// consumed (by itself or by thieves), which makes the subsequent
// workAvail=−1 store in main() safe for streamlined termination.
func (w *sharedWorker) reacquireRelaxed() bool {
	s := w.stack()
	c, ok := s.ring.Retract()
	if !ok {
		return false
	}
	if s.ring.Live() == 0 {
		s.workAvail.Store(0)
	}
	w.t.Reacquires++
	w.lane.Rec(obs.KindReacquire, -1, int64(len(c)))
	w.local.PushAll(c)
	return true
}

// search performs one or more full pseudo-random probe cycles over the
// other threads ("Work Discovery"). It returns true once work has been
// stolen onto the local stack. It returns false when the thread should
// move to termination detection: immediately after one empty cycle under
// the shared-memory algorithm, or only after a cycle in which every other
// thread was entirely out of work under streamlined termination.
func (w *sharedWorker) search() bool {
	r := w.run
	n := r.dom.Threads()
	if n == 1 {
		return false
	}
	for {
		sawWorker := false
		for _, v := range w.rng.Cycle(w.me, n) {
			wa := w.probe(v)
			if wa > 0 {
				w.setState(stats.Stealing)
				ok := w.stealTimed(v)
				w.setState(stats.Searching)
				if ok {
					return true
				}
			}
			if wa >= 0 {
				sawWorker = true
			}
		}
		if !r.variant.streamTerm {
			// Shared-memory algorithm: one empty cycle sends the thread
			// to the cancelable barrier.
			return false
		}
		if !sawWorker {
			// Streamlined termination: every other thread reported −1
			// (no work at all); only now head for the barrier.
			return false
		}
		if w.run.opt.abort.Load() {
			return false
		}
		runtime.Gosched()
	}
}

// probe reads a victim's work-available count without locking.
func (w *sharedWorker) probe(v int) int32 {
	w.run.dom.ChargeRef(w.me, v)
	w.t.Probes++
	wa := w.run.stacks[v].workAvail.Load()
	w.lane.Rec(obs.KindProbeResult, int32(v), int64(wa))
	return wa
}

// steal locks the victim's stack, reserves one chunk (or half the chunks
// under rapid diffusion), releases the lock, and transfers the reservation
// with a one-sided get. The first chunk lands on the thief's local stack;
// any further chunks go straight into the thief's own shared region, making
// the thief a work source for others (Section 3.3.2).
func (w *sharedWorker) steal(v int) bool {
	if w.run.variant.relaxed {
		return w.stealRelaxed(v)
	}
	r := w.run
	vs := r.stacks[v]
	w.lane.Rec(obs.KindStealRequest, int32(v), 0)
	half := r.variant.stealHalf
	if w.ctl != nil {
		half = w.ctl.StealHalf()
	}
	vs.lk.Acquire(w.me)
	var chunks []stack.Chunk
	if half {
		chunks = vs.pool.TakeHalf()
	} else if c, ok := vs.pool.TakeOldest(); ok {
		chunks = append(chunks, c)
	}
	if len(chunks) > 0 {
		vs.workAvail.Store(int32(vs.pool.Len()))
	}
	vs.lk.Release(w.me)
	if len(chunks) == 0 {
		w.t.FailedSteals++
		w.lane.Rec(obs.KindStealFail, int32(v), 0)
		return false
	}

	// Transfer outside the critical region: the victim keeps working
	// while the one-sided get completes.
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	r.dom.ChargeBulk(w.me, v, total*nodeBytes)
	w.t.Steals++
	w.t.ChunksGot += int64(len(chunks))
	w.stolenNodes = total
	w.lane.Rec(obs.KindChunkTransfer, int32(v), int64(total))

	w.local.PushAll(chunks[0])
	if len(chunks) > 1 {
		ms := w.stack()
		ms.lk.Acquire(w.me)
		for _, c := range chunks[1:] {
			ms.pool.Put(c)
		}
		ms.workAvail.Store(int32(ms.pool.Len()))
		ms.lk.Release(w.me)
	} else if r.variant.streamTerm {
		// Back to "working, no surplus".
		w.stack().workAvail.Store(0)
	}
	return true
}

// stealRelaxed claims the victim's oldest published chunk through the
// fence-free handshake: a one-sided scan of the slot words, then a
// claim-marker store plus ledger CAS. No victim lock is ever taken. The
// two remote rounds are charged as plain remote references — the protocol
// replaces the lock-based path's lock round trip (~10x a cached remote
// reference in the paper's cost model). A duplicate take (the chunk was
// read but the ledger CAS lost to a concurrent claimer) is counted and
// surfaced, and the duplicated subtree is discarded before exploration —
// this is the multiplicity ledger doing the dedup that keeps final counts
// exact.
func (w *sharedWorker) stealRelaxed(v int) bool {
	r := w.run
	vs := r.stacks[v]
	w.lane.Rec(obs.KindStealRequest, int32(v), 0)
	r.dom.ChargeRef(w.me, v) // slot-word scan (one-sided reads)
	r.dom.ChargeRef(w.me, v) // claim store + ledger CAS round
	c, dups, ok := vs.ring.Claim(w.me)
	if dups > 0 {
		w.t.DuplicateTakes += int64(dups)
		w.lane.Rec(obs.KindDuplicateTake, int32(v), int64(dups))
	}
	if !ok {
		w.t.FailedSteals++
		w.lane.Rec(obs.KindStealFail, int32(v), 0)
		return false
	}
	r.dom.ChargeBulk(w.me, v, len(c)*nodeBytes)
	w.t.Steals++
	w.t.ChunksGot++
	w.stolenNodes = len(c)
	w.lane.Rec(obs.KindChunkTransfer, int32(v), int64(len(c)))
	w.local.PushAll(c)
	if r.variant.streamTerm {
		// Back to "working, no surplus" (own stack: still single-writer).
		w.stack().workAvail.Store(0)
	}
	return true
}

// terminate runs the termination-detection protocol. It returns true when
// the whole computation is finished and false when the thread acquired (or
// may acquire) work and should resume the main loop.
func (w *sharedWorker) terminate() bool {
	if !w.run.variant.streamTerm {
		return w.run.cb.Enter(w.me)
	}
	sb := w.run.sb
	if sb.Enter(w.me) {
		return true
	}
	// While waiting, inspect a single thread at a time so as not to
	// overwhelm any remaining workers (Section 3.3.1).
	n := w.run.dom.Threads()
	for {
		if w.run.opt.abort.Load() {
			return true
		}
		if sb.Done(w.me) {
			return true
		}
		v := w.rng.Victim(w.me, n)
		if wa := w.probe(v); wa > 0 {
			if !sb.Leave(w.me) {
				return true
			}
			w.setState(stats.Stealing)
			ok := w.stealTimed(v)
			w.setState(stats.Idle)
			if ok {
				return false
			}
			if sb.Enter(w.me) {
				return true
			}
		}
		runtime.Gosched()
	}
}
