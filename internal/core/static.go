package core

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// runStatic executes the no-load-balancing baseline: the root's children
// are dealt round-robin to the threads up front and each thread searches
// its share with no stealing and no further coordination. This is the
// strategy the paper's introduction rules out — "the state space often has
// unpredictable and irregular structure that can not be statically
// partitioned" — and it exists here to quantify that: on the critical
// binomial trees, one subtree usually holds >99% of the nodes, so static
// partitioning approaches sequential performance regardless of thread
// count while every work-stealing implementation stays near-linear.
func runStatic(sp *uts.Spec, opt Options, res *Result) error {
	st := sp.Stream()
	root := uts.Root(sp)
	kids := uts.Children(sp, st, &root, nil)

	var wg sync.WaitGroup
	for me := 0; me < opt.Threads; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			t := &res.Threads[me]
			lane := opt.Tracer.Lane(me)
			t.StartTimers(time.Now())
			lane.Rec(obs.KindStateChange, -1, int64(stats.Working))
			defer func() { t.StopTimers(time.Now()) }()
			if me == 0 {
				t.Nodes++ // the root itself
				if root.NumKids == 0 {
					t.Leaves++
				}
			}
			var local stack.Deque
			for i := me; i < len(kids); i += opt.Threads {
				local.Push(kids[i])
			}
			ex := uts.NewExpander(sp)
			sinceYield := 0
			nodesFlushed := int64(0)
			flushNodes := func() {
				if d := t.Nodes - nodesFlushed; d != 0 {
					lane.AddNodes(d)
					nodesFlushed = t.Nodes
				}
			}
			for {
				n, ok := local.Pop()
				if !ok {
					break
				}
				t.Nodes++
				if n.NumKids == 0 {
					t.Leaves++
				} else {
					local.PushAll(ex.Children(&n))
				}
				t.NoteDepth(local.Len())
				if sinceYield++; sinceYield >= yieldEvery {
					sinceYield = 0
					flushNodes()
					if opt.abort.Load() {
						break
					}
					runtime.Gosched()
				}
			}
			flushNodes()
			t.Switch(stats.Idle, time.Now())
			lane.Rec(obs.KindStateChange, -1, int64(stats.Idle))
		}(me)
	}
	wg.Wait()
	return nil
}
