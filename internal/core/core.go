// Package core implements the paper's contribution: five dynamic
// load-balancing implementations for parallel Unbalanced Tree Search,
// matching the legend of Figure 3:
//
//	upc-sharedmem    the shared-memory algorithm (Section 3.1): two-region
//	                 DFS stack with a lock-guarded shared region, steal one
//	                 chunk at a time, cancelable-barrier termination.
//	upc-term         upc-sharedmem with the streamlined termination
//	                 detection of Section 3.3.1.
//	upc-term-rapdif  upc-term with the rapid work diffusion of Section
//	                 3.3.2 (steal half the available chunks).
//	upc-distmem      the distributed-memory algorithm of Section 3.3.3:
//	                 lock-less owner-managed stack with an asynchronous
//	                 request/response steal protocol.
//	mpi-ws           the message-passing work stealing baseline of Section
//	                 3.2, with Dijkstra token-ring termination.
//
// Every implementation runs each PGAS thread (or MPI rank) as a goroutine
// and must produce exactly the node count of the sequential traversal —
// the repository-wide correctness invariant.
package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/uts"
)

// Algorithm names a load-balancing implementation, using the labels of the
// paper's Figure 3.
type Algorithm string

// The five implementations compared in the paper, plus the sequential
// baseline.
const (
	Sequential    Algorithm = "seq"
	UPCSharedMem  Algorithm = "upc-sharedmem"
	UPCTerm       Algorithm = "upc-term"
	UPCTermRapdif Algorithm = "upc-term-rapdif"
	UPCDistMem    Algorithm = "upc-distmem"
	MPIWS         Algorithm = "mpi-ws"

	// Static is the no-load-balancing baseline: the root's children are
	// dealt round-robin to the threads up front and never move again. It
	// quantifies the introduction's premise that UTS trees cannot be
	// statically partitioned.
	Static Algorithm = "static"

	// UPCDistMemHier is this repository's implementation of the paper's
	// stated future work (Section 6.2): upc-distmem with locality-aware
	// work discovery that probes threads on the same cluster node before
	// probing off-node (the bupc_thread_distance idea). It differs from
	// upc-distmem only when Options.NodeSize groups threads into nodes.
	UPCDistMemHier Algorithm = "upc-distmem-hier"

	// UPCTermRelaxed is upc-term with the lock-guarded shared region
	// replaced by a fence-free relaxed ring (DESIGN.md §14): the owner
	// publishes and retracts chunks with atomic stores and loads only,
	// thieves claim with a versioned-slot load+store handshake that may
	// rarely duplicate a take, and a per-ring multiplicity ledger dedups
	// duplicated subtrees before exploration so final counts stay exact.
	UPCTermRelaxed Algorithm = "upc-term-relaxed"
)

// Algorithms lists the paper's parallel implementations in refinement
// order (each entry adds one of the paper's improvements over the
// previous).
var Algorithms = []Algorithm{UPCSharedMem, UPCTerm, UPCTermRapdif, UPCDistMem, MPIWS}

// Extensions lists the post-paper variants implemented in this repository.
var Extensions = []Algorithm{UPCDistMemHier, Static, UPCTermRelaxed}

// Options configures a parallel search.
type Options struct {
	// Algorithm selects the implementation; default UPCDistMem (the
	// paper's best).
	Algorithm Algorithm
	// Threads is the number of PGAS threads / MPI ranks; default 1.
	Threads int
	// Chunk is the work-stealing granularity k in nodes (Section 4.2.1);
	// default 16.
	Chunk int
	// Model is the interconnect cost model; nil means zero-latency shared
	// memory.
	Model *pgas.Model
	// PollInterval is, for mpi-ws, the number of nodes explored between
	// polls of the message queue (the paper's user-supplied parameter);
	// default 8. The UPC implementations poll their request word every
	// node, as in the paper, since that is a local read.
	PollInterval int
	// Seed randomizes the pseudo-random probe order; runs with the same
	// seed take identical probe sequences per thread.
	Seed int64
	// SeqRate, if non-zero, is the sequential baseline rate (nodes/s)
	// recorded in the result for speedup computation.
	SeqRate float64
	// NodeSize, when >= 2, groups threads into cluster nodes of NodeSize
	// consecutive IDs: references between same-node threads are charged
	// to IntraModel instead of Model, and upc-distmem-hier probes
	// same-node victims first.
	NodeSize int
	// IntraModel is the intra-node cost model used with NodeSize; nil
	// leaves the machine flat.
	IntraModel *pgas.Model
	// Tracer, when non-nil, records steal-protocol events and latency
	// histograms for every worker (one obs lane per thread; create it
	// with obs.New(Threads, ringSize)). The nil default keeps every
	// worker on the no-op fast path.
	Tracer *obs.Tracer

	// Adapt, when non-nil, enables the closed-loop per-thread controllers
	// (internal/policy): chunk size, steal-half selection, and — for
	// mpi-ws — the poll interval adapt at runtime from windowed steal
	// feedback, starting from and bounded around the static values above.
	// The nil default keeps every worker on the fixed-knob path,
	// byte-identical to a build without the policy package.
	Adapt *policy.Config

	// abort, set by RunCtx, tells every worker to abandon the search; the
	// zero value (nil) is replaced by withDefaults so workers can always
	// load it.
	abort *atomic.Bool

	// policySet, built by RunCtx from Adapt, holds the per-thread
	// controllers handed to workers.
	policySet *policy.Set
}

// PolicySet exposes the run's controller set while the run is live; used
// by the telemetry bridge to register uts_policy_* gauges. Nil when the
// run is not adaptive.
func (o *Options) PolicySet() *policy.Set { return o.policySet }

// hierPays reports whether the latency model makes intra-node victims
// worth preferring: a same-node steal round trip (lock plus reference)
// costing at most half the remote one. With no intra model the machine is
// flat and tiering cannot pay.
func hierPays(remote, intra *pgas.Model) bool {
	if intra == nil || remote == nil {
		return false
	}
	return 2*(intra.LockRTT+intra.RemoteRef) <= remote.LockRTT+remote.RemoteRef
}

// withDefaults returns a copy of o with defaults applied.
func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = UPCDistMem
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Chunk == 0 {
		o.Chunk = 16
	}
	if o.Model == nil {
		o.Model = &pgas.SharedMemory
	}
	if o.PollInterval == 0 {
		o.PollInterval = 8
	}
	if o.abort == nil {
		o.abort = new(atomic.Bool)
	}
	return o
}

// validate rejects unusable option combinations.
func (o Options) validate() error {
	if o.Threads < 0 {
		return fmt.Errorf("core: negative thread count %d", o.Threads)
	}
	if o.Chunk < 0 {
		return fmt.Errorf("core: negative chunk size %d", o.Chunk)
	}
	if o.PollInterval < 0 {
		return fmt.Errorf("core: negative poll interval %d", o.PollInterval)
	}
	if o.NodeSize < 0 {
		return fmt.Errorf("core: negative node size %d", o.NodeSize)
	}
	switch o.Algorithm {
	case Sequential, Static, UPCSharedMem, UPCTerm, UPCTermRapdif, UPCTermRelaxed, UPCDistMem, UPCDistMemHier, MPIWS, "":
	default:
		return fmt.Errorf("core: unknown algorithm %q", o.Algorithm)
	}
	return nil
}

// Result is a completed parallel search.
type Result struct {
	stats.Run
	Spec      *uts.Spec
	Algorithm Algorithm
	Chunk     int
}

// Run executes a complete traversal of sp under the given options and
// returns the aggregated statistics. The returned node count always equals
// the sequential count for sp.
func Run(sp *uts.Spec, opt Options) (*Result, error) {
	return RunCtx(context.Background(), sp, opt)
}

// RunCtx is Run with cooperative cancellation: when ctx is cancelled every
// worker abandons the search at its next check point and RunCtx returns
// ctx.Err() together with the partial statistics accumulated so far (whose
// node count is then less than the full tree's).
func RunCtx(ctx context.Context, sp *uts.Spec, opt Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}

	var abort atomic.Bool
	if ctx.Done() != nil {
		watcher := make(chan struct{})
		defer close(watcher)
		go func() {
			select {
			case <-ctx.Done():
				abort.Store(true)
			case <-watcher:
			}
		}()
	}
	opt.abort = &abort
	opt.policySet = policy.NewSet(opt.Adapt, policy.Base{
		Chunk:     opt.Chunk,
		Poll:      opt.PollInterval,
		StealHalf: opt.Algorithm == UPCTermRapdif,
		NodeSize:  opt.NodeSize,
		HierPays:  hierPays(opt.Model, opt.IntraModel),
	}, opt.Threads)

	res := &Result{Spec: sp, Algorithm: opt.Algorithm, Chunk: opt.Chunk}
	res.SeqRate = opt.SeqRate
	res.Threads = make([]stats.Thread, opt.Threads)
	for i := range res.Threads {
		res.Threads[i].ID = i
	}

	start := time.Now() //uts:ok detcheck wall-clock Elapsed/rate reporting only; scheduling runs on virtual time
	var err error
	switch opt.Algorithm {
	case Sequential:
		c, serr := uts.SearchSequentialCtx(ctx, sp)
		err = serr
		res.Threads = res.Threads[:1]
		res.Threads[0].Nodes = c.Nodes
		res.Threads[0].Leaves = c.Leaves
		res.Threads[0].InState[stats.Working] = c.Elapsed
	case Static:
		err = runStatic(sp, opt, res)
	case UPCSharedMem:
		err = runShared(sp, opt, res, sharedVariant{})
	case UPCTerm:
		err = runShared(sp, opt, res, sharedVariant{streamTerm: true})
	case UPCTermRapdif:
		err = runShared(sp, opt, res, sharedVariant{streamTerm: true, stealHalf: true})
	case UPCTermRelaxed:
		err = runShared(sp, opt, res, sharedVariant{streamTerm: true, relaxed: true})
	case UPCDistMem:
		err = runDistMem(sp, opt, res, false)
	case UPCDistMemHier:
		err = runDistMem(sp, opt, res, true)
	case MPIWS:
		err = runMPIWS(sp, opt, res)
	}
	res.Elapsed = time.Since(start)
	res.Obs = opt.Tracer.Summary()
	res.Policy = opt.policySet.Summary()
	if err != nil && err != ctx.Err() {
		return nil, err
	}
	if ctx.Err() != nil && (abort.Load() || err != nil) {
		return res, ctx.Err()
	}
	return res, nil
}

// sharedVariant selects the refinements layered onto the shared-memory
// algorithm to form upc-term and upc-term-rapdif.
type sharedVariant struct {
	// streamTerm replaces the cancelable barrier with the streamlined
	// detector (Section 3.3.1).
	streamTerm bool
	// stealHalf steals half the victim's chunks instead of one
	// (Section 3.3.2).
	stealHalf bool
	// relaxed replaces the lock-guarded shared region with the fence-free
	// relaxed ring and its multiplicity ledger (upc-term-relaxed,
	// DESIGN.md §14). Implies streamTerm in practice: the tri-state
	// workAvail termination protocol is what makes the owner-only
	// workAvail writes safe.
	relaxed bool
}

// yieldEvery is the number of nodes a worker explores between cooperative
// scheduler yields. In the paper every UPC thread owns a dedicated
// processor; when goroutine-threads outnumber cores, a working thread that
// never yields would starve searching threads and serialize the whole run.
// Yielding every few dozen nodes emulates per-processor time slicing at
// negligible cost (a Gosched with an empty run queue is cheap).
const yieldEvery = 64

// ProbeOrder is a small per-thread xorshift64* generator for pseudo-random
// probe orders; it keeps probe sequences deterministic per (seed, thread)
// without sharing math/rand state across threads. It also owns the probe
// permutation used for full cycles: the victim list for a given (me, n,
// nodeSize) is built once and only re-shuffled on later cycles, so a
// worker that fails many probe cycles in a row does not rebuild it every
// time.
type ProbeOrder struct {
	s uint64

	// Cached probe cycle. perm holds the n−1 victims (for CycleHier, the
	// first intra entries are the same-node ones); it is rebuilt only when
	// me/n/nodeSize change, which for a worker is never after the first
	// call.
	perm            []int
	built           bool
	me, n, nodeSize int
	intra           int
}

func NewProbeOrder(seed int64, me int) *ProbeOrder {
	s := uint64(seed)*0x9e3779b97f4a7c15 + uint64(me+1)*0xbf58476d1ce4e5b9
	if s == 0 {
		s = 1
	}
	return &ProbeOrder{s: s}
}

func (r *ProbeOrder) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Victim returns a uniformly random thread other than me among n threads.
// n must be at least 2.
func (r *ProbeOrder) Victim(me, n int) int {
	v := int(r.next() % uint64(n-1))
	if v >= me {
		v++
	}
	return v
}

// Cycle returns a random permutation of the n−1 threads other than me, for
// full probe cycles. The returned slice is owned by the ProbeOrder and
// reused: the identity portion is built on the first call and subsequent
// calls only re-shuffle it (a Fisher–Yates pass from any permutation is
// still uniform), so repeated failed cycles cost no rebuilding. The slice
// is valid until the next Cycle/CycleHier call.
func (r *ProbeOrder) Cycle(me, n int) []int {
	if !r.cached(me, n, 1) {
		r.perm = r.perm[:0]
		for i := 0; i < n; i++ {
			if i != me {
				r.perm = append(r.perm, i)
			}
		}
		r.remember(me, n, 1, len(r.perm))
	}
	r.shuffle(r.perm)
	return r.perm
}

// CycleHier returns a locality-aware probe cycle: the threads on me's
// cluster node (of nodeSize consecutive IDs) come first in random order,
// then all off-node threads in random order. With nodeSize <= 1 it reduces
// to Cycle. Like Cycle it builds the victim list once and re-shuffles the
// two locality segments on reuse.
func (r *ProbeOrder) CycleHier(me, n, nodeSize int) []int {
	if nodeSize <= 1 {
		return r.Cycle(me, n)
	}
	if !r.cached(me, n, nodeSize) {
		r.perm = r.perm[:0]
		node := me / nodeSize
		for i := node * nodeSize; i < (node+1)*nodeSize && i < n; i++ {
			if i != me {
				r.perm = append(r.perm, i)
			}
		}
		intra := len(r.perm)
		for i := 0; i < n; i++ {
			if i/nodeSize != node {
				r.perm = append(r.perm, i)
			}
		}
		r.remember(me, n, nodeSize, intra)
	}
	r.shuffle(r.perm[:r.intra])
	r.shuffle(r.perm[r.intra:])
	return r.perm
}

// cached reports whether the stored permutation was built for the same
// cycle parameters.
func (r *ProbeOrder) cached(me, n, nodeSize int) bool {
	return r.built && r.me == me && r.n == n && r.nodeSize == nodeSize
}

func (r *ProbeOrder) remember(me, n, nodeSize, intra int) {
	r.built = true
	r.me, r.n, r.nodeSize, r.intra = me, n, nodeSize, intra
}

// shuffle permutes s in place (Fisher–Yates).
func (r *ProbeOrder) shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		s[i], s[j] = s[j], s[i]
	}
}

// probeWalkCacheMax is the largest thread count for which probe walks
// materialize and shuffle the cached victim permutation (exact
// Cycle/CycleHier behavior, so historical schedules at experiment scales
// are preserved byte-for-byte). Above it the walk switches to a
// coprime-strided traversal of the ID space with O(1) state per walker:
// with P simulated PEs each caching an O(P) cycle, the permutations cost
// O(P²) memory in one simulator process — ≈137 GB at 131072 PEs, which
// OOM-killed exactly the runs the sharded engine exists to make possible.
const probeWalkCacheMax = 4096

// ProbeWalk is a lazily generated probe cycle: each of the n−1 victims
// exactly once, consumed with Victim (peek), Advance, and Exhausted —
// mirroring indexed iteration over a permutation slice, which is how the
// simulator's probe state machines use it across event callbacks. Below
// probeWalkCacheMax it wraps the cached Cycle/CycleHier permutation;
// above it victims come from (start + k·stride) mod n with the stride
// coprime to n — a uniformly chosen cyclic permutation rather than a
// uniformly chosen permutation. For idle-victim probing the lost shuffle
// entropy is immaterial, and the O(1) footprint is what makes 100K+-PE
// work-stealing simulations affordable in memory.
type ProbeWalk struct {
	perm []int // cached-permutation path; nil on the strided path
	idx  int

	// Strided path. Victims are (start+k·str) mod n skipping the block
	// [base, end): the walker's own node for hierarchical walks, or just
	// [me, me+1) for flat ones. Hierarchical walks first cover the block
	// itself (minus me) with its own stride s0/st0 so same-node victims
	// still come first.
	me, n      int
	base, end  int
	s0, st0    int
	start, str int
	k          int
	phase      int // 0 = intra-block segment, 1 = whole-ring segment
	cur        int
	done       bool
}

// Walk starts a probe cycle over the n−1 threads other than me.
func (r *ProbeOrder) Walk(me, n int) ProbeWalk { return r.WalkHier(me, n, 1) }

// WalkHier starts a locality-aware probe cycle: victims on me's node (of
// nodeSize consecutive IDs) first, then everyone else, as in CycleHier.
func (r *ProbeOrder) WalkHier(me, n, nodeSize int) ProbeWalk {
	if n <= probeWalkCacheMax {
		if nodeSize > 1 {
			return ProbeWalk{perm: r.CycleHier(me, n, nodeSize)}
		}
		return ProbeWalk{perm: r.Cycle(me, n)}
	}
	w := ProbeWalk{me: me, n: n, cur: -1}
	if nodeSize > 1 {
		node := me / nodeSize
		w.base = node * nodeSize
		w.end = w.base + nodeSize
		if w.end > n {
			w.end = n
		}
	} else {
		w.base, w.end = me, me+1
	}
	bl := w.end - w.base
	w.s0 = int(r.next() % uint64(bl))
	w.st0 = r.coprimeStride(bl)
	w.start = int(r.next() % uint64(n))
	w.str = r.coprimeStride(n)
	w.Advance() // position on the first victim
	return w
}

// Victim returns the walk's current victim without consuming it.
func (w *ProbeWalk) Victim() int {
	if w.perm != nil {
		return w.perm[w.idx]
	}
	return w.cur
}

// Exhausted reports whether every victim of the cycle has been consumed.
func (w *ProbeWalk) Exhausted() bool {
	if w.perm != nil {
		return w.idx >= len(w.perm)
	}
	return w.done
}

// Advance moves the walk to its next victim.
func (w *ProbeWalk) Advance() {
	if w.perm != nil {
		w.idx++
		return
	}
	for {
		if w.phase == 0 {
			bl := w.end - w.base
			if w.k >= bl {
				w.phase, w.k = 1, 0
				continue
			}
			v := w.base + (w.s0+w.k*w.st0)%bl
			w.k++
			if v != w.me {
				w.cur = v
				return
			}
			continue
		}
		if w.k >= w.n {
			w.done = true
			return
		}
		v := (w.start + w.k*w.str) % w.n
		w.k++
		if v >= w.base && v < w.end {
			continue
		}
		w.cur = v
		return
	}
}

// coprimeStride draws a uniformly random stride in [1, n) coprime to n —
// every such stride generates the full cyclic group mod n, so the strided
// walk visits each ID exactly once. Rejection terminates fast: coprime
// density is at least 1/O(log log n).
func (r *ProbeOrder) coprimeStride(n int) int {
	if n <= 2 {
		return 1
	}
	for {
		s := 1 + int(r.next()%uint64(n-1))
		if gcd(s, n) == 1 {
			return s
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
