package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/policy"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/term"
	"repro/internal/uts"
)

// noThief is the empty value of a request word.
const noThief = -1

// privStack is one thread's state in the distributed-memory algorithm
// (Section 3.3.3). The DFS stack and steal pool are touched only by their
// owner — no locks anywhere on the work path. Thieves interact through two
// words: they read workAvail one-sidedly, and write their ID into request;
// the owner polls request (a local read) and answers by writing into the
// thief's response slot.
type privStack struct {
	local stack.Deque // owner only
	pool  stack.Pool  // owner only

	// workAvail: −1 when the thread has no work at all, otherwise the
	// number of stealable chunks (0 = working, no surplus). Probed
	// remotely without locking.
	workAvail atomic.Int32

	// request holds the ID of the thief currently asking this thread for
	// work, or noThief. Thieves claim it with compare-and-swap (the
	// paper's lock-protected request variable); the owner resets it after
	// responding.
	request atomic.Int32

	// resp/respReady form this thread's *incoming* response slot: a victim
	// this thread has requested from writes the granted chunks here (two
	// remote writes in the paper: amount and address). respReady carries
	// the release/acquire ordering for resp.
	resp      []stack.Chunk
	respReady atomic.Bool
}

type distRun struct {
	sp     *uts.Spec
	opt    Options
	dom    *pgas.Domain
	stacks []*privStack
	sb     *term.StreamBarrier
	hier   bool // locality-aware probe order (upc-distmem-hier)
}

// runDistMem executes upc-distmem, or upc-distmem-hier when hier is set.
func runDistMem(sp *uts.Spec, opt Options, res *Result, hier bool) error {
	dom, err := pgas.NewDomain(opt.Threads, opt.Model)
	if err != nil {
		return err
	}
	dom.SetTopology(opt.NodeSize, opt.IntraModel)
	r := &distRun{sp: sp, opt: opt, dom: dom, sb: term.NewStreamBarrier(dom), hier: hier}
	r.stacks = make([]*privStack, opt.Threads)
	for i := range r.stacks {
		r.stacks[i] = &privStack{}
		r.stacks[i].request.Store(noThief)
	}

	var wg sync.WaitGroup
	for me := 0; me < opt.Threads; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			w := &distWorker{run: r, me: me, rng: NewProbeOrder(opt.Seed, me), t: &res.Threads[me], ex: uts.NewExpander(sp), lane: opt.Tracer.Lane(me), ctl: opt.policySet.Controller(me)}
			if me == 0 {
				w.stack().local.Push(uts.Root(sp))
			}
			w.main()
		}(me)
	}
	wg.Wait()
	return nil
}

type distWorker struct {
	run  *distRun
	me   int
	rng  *ProbeOrder
	t    *stats.Thread
	ex   *uts.Expander
	lane *obs.Lane          // nil when the run is untraced
	ctl  *policy.Controller // nil when the run is not adaptive

	nodesFlushed int64 // t.Nodes already published to the lane's live counter
	ctlNodes     int64 // t.Nodes already reported to the controller
	stolenNodes  int   // nodes delivered by the last successful steal
}

func (w *distWorker) stack() *privStack { return w.run.stacks[w.me] }

// flushNodes publishes node progress to the lane's live counter in
// batches at the hot loop's yield cadence — one atomic add per flush,
// never per node.
func (w *distWorker) flushNodes() {
	if d := w.t.Nodes - w.nodesFlushed; d != 0 {
		w.lane.AddNodes(d)
		w.nodesFlushed = w.t.Nodes
	}
}

// setState pairs the stats state timer with the tracer's state event.
func (w *distWorker) setState(s stats.State) {
	w.t.Switch(s, time.Now())
	w.lane.Rec(obs.KindStateChange, -1, int64(s))
}

// noteCtl feeds node progress to the thread's controller at the yield
// cadence; a no-op for fixed-knob runs.
func (w *distWorker) noteCtl() {
	if w.ctl == nil {
		return
	}
	now := time.Now() //uts:ok detcheck policy feedback timestamp; adaptive real-mode runs are wall-clock paced by design
	w.ctl.NoteNodes(int(w.t.Nodes-w.ctlNodes), w.stack().local.Len(), now.UnixNano())
	w.ctlNodes = w.t.Nodes
}

// chunk returns the release granularity in effect.
func (w *distWorker) chunk() int {
	if w.ctl != nil {
		return w.ctl.Chunk()
	}
	return w.run.opt.Chunk
}

// stealTimed wraps a steal attempt with the controller's latency window.
func (w *distWorker) stealTimed(v int) bool {
	if w.ctl == nil {
		return w.steal(v)
	}
	t0 := time.Now() //uts:ok detcheck policy steal-latency feedback; wall-paced by design in real mode
	w.ctl.StealBegin(t0.UnixNano())
	w.stolenNodes = 0
	ok := w.steal(v)
	t1 := time.Now() //uts:ok detcheck policy steal-latency feedback; wall-paced by design in real mode
	w.ctl.StealEnd(ok, w.stolenNodes, t1.UnixNano())
	return ok
}

func (w *distWorker) main() {
	w.t.StartTimers(time.Now())
	w.lane.Rec(obs.KindStateChange, -1, int64(stats.Working))
	defer func() { w.t.StopTimers(time.Now()) }()
	for {
		w.work()
		if w.run.opt.abort.Load() {
			return
		}
		w.stack().workAvail.Store(-1)
		w.setState(stats.Searching)
		if w.search() {
			w.setState(stats.Working)
			continue
		}
		w.setState(stats.Idle)
		w.t.TermBarrierEntries++
		w.lane.Rec(obs.KindTermEnter, -1, 0)
		if w.terminate() {
			w.service() // answer any last raced-in request with a denial
			return
		}
		w.lane.Rec(obs.KindTermExit, -1, 0)
		w.setState(stats.Working)
	}
}

// work explores nodes until local stack and steal pool are both empty.
// The owner polls its request word every iteration — a local read whose
// cost is negligible, which is the whole point of the design.
func (w *distWorker) work() {
	k := w.chunk()
	s := w.stack()
	sinceYield := 0
	for {
		if sinceYield++; sinceYield >= yieldEvery {
			sinceYield = 0
			w.flushNodes()
			w.noteCtl()
			k = w.chunk() // may have adapted at the window boundary
			if w.run.opt.abort.Load() {
				return
			}
			runtime.Gosched()
		}
		w.service()
		n, ok := s.local.Pop()
		if !ok {
			// Reacquire from the thread's own pool: owner-only, no lock.
			c, ok2 := s.pool.TakeNewest()
			if !ok2 {
				w.flushNodes()
				return
			}
			s.workAvail.Store(int32(s.pool.Len()))
			w.t.Reacquires++
			w.lane.Rec(obs.KindReacquire, -1, int64(len(c)))
			s.local.PushAll(c)
			continue
		}
		w.t.Nodes++
		if n.NumKids == 0 {
			w.t.Leaves++
		} else {
			s.local.PushAll(w.ex.Children(&n))
		}
		w.t.NoteDepth(s.local.Len())
		if s.local.Len() >= 2*k {
			s.pool.Put(s.local.TakeBottom(k))
			s.workAvail.Store(int32(s.pool.Len()))
			w.t.Releases++
			w.lane.Rec(obs.KindRelease, -1, int64(s.pool.Len()))
		}
	}
}

// service answers a pending steal request: half of the available chunks if
// any (Section 3.3.2's rapid diffusion), or a zero-chunk denial. Costs the
// owner two remote writes only when a request is actually pending.
func (w *distWorker) service() {
	s := w.stack()
	thief := s.request.Load()
	if thief == noThief {
		return
	}
	var chunks []stack.Chunk
	if s.pool.Len() > 0 {
		chunks = s.pool.TakeHalf()
		s.workAvail.Store(int32(s.pool.Len()))
	}
	// Two remote writes: the amount granted and the work's address.
	w.run.dom.ChargeRef(w.me, int(thief))
	w.run.dom.ChargeRef(w.me, int(thief))
	ts := w.run.stacks[thief]
	ts.resp = chunks
	ts.respReady.Store(true)
	s.request.Store(noThief) // local write
	w.t.Requests++
	if len(chunks) > 0 {
		w.lane.Rec(obs.KindStealGrant, thief, int64(len(chunks)))
	} else {
		w.lane.Rec(obs.KindStealDeny, thief, 0)
		if w.ctl != nil && s.local.Len() > 0 {
			// Denied while still holding local work: the victim-side
			// witness that this thread's k is withholding work from live
			// demand.
			w.ctl.NoteDenied()
		}
	}
}

// search probes other threads in pseudo-random cycles, stealing when it
// finds surplus. It returns true with work on the local stack, or false
// when a full cycle saw every other thread entirely out of work.
func (w *distWorker) search() bool {
	n := w.run.dom.Threads()
	if n == 1 {
		return false
	}
	for {
		sawWorker := false
		var perm []int
		switch {
		case w.run.hier:
			perm = w.rng.CycleHier(w.me, n, w.run.dom.NodeSize())
		case w.ctl != nil && w.ctl.NodeSize() > 1:
			// Adaptive tiering: the latency model said intra-node steals
			// are cheap enough to prefer, so walk the hierarchy even
			// though the flat algorithm was selected.
			perm = w.rng.CycleHier(w.me, n, w.ctl.NodeSize())
		default:
			perm = w.rng.Cycle(w.me, n)
		}
		for _, v := range perm {
			w.service()
			wa := w.probe(v)
			if wa > 0 {
				w.setState(stats.Stealing)
				ok := w.stealTimed(v)
				w.setState(stats.Searching)
				if ok {
					return true
				}
			}
			if wa >= 0 {
				sawWorker = true
			}
		}
		if !sawWorker {
			return false
		}
		if w.run.opt.abort.Load() {
			return false
		}
		runtime.Gosched()
	}
}

func (w *distWorker) probe(v int) int32 {
	w.run.dom.ChargeRef(w.me, v)
	w.t.Probes++
	wa := w.run.stacks[v].workAvail.Load()
	w.lane.Rec(obs.KindProbeResult, int32(v), int64(wa))
	return wa
}

// steal runs the asynchronous request/response protocol: claim the
// victim's request word, wait for the owner's answer, then transfer the
// granted chunks with a one-sided get. The wait always terminates: a
// victim in any state — working, searching, or parked in the termination
// barrier — keeps servicing its request word, and termination cannot be
// announced while this thread is outside the barrier.
func (w *distWorker) steal(v int) bool {
	r := w.run
	vs := r.stacks[v]

	// Write our ID into the lock-protected request variable.
	r.dom.ChargeLockRTT(w.me, v)
	w.lane.Rec(obs.KindStealRequest, int32(v), 0)
	if !vs.request.CompareAndSwap(noThief, int32(w.me)) {
		w.t.FailedSteals++
		w.lane.Rec(obs.KindStealFail, int32(v), 0)
		return false
	}

	// Await the response in our own slot: spinning on local memory.
	me := w.stack()
	for !me.respReady.Load() {
		if w.run.opt.abort.Load() {
			w.t.FailedSteals++
			w.lane.Rec(obs.KindStealFail, int32(v), 0)
			return false
		}
		w.service() // we may be someone else's victim meanwhile
		runtime.Gosched()
	}
	chunks := me.resp
	me.resp = nil
	me.respReady.Store(false)

	if len(chunks) == 0 {
		w.t.FailedSteals++
		w.lane.Rec(obs.KindStealFail, int32(v), 0)
		return false
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	// One-sided get of the granted work.
	r.dom.ChargeBulk(w.me, v, total*nodeBytes)
	w.t.Steals++
	w.t.ChunksGot += int64(len(chunks))
	w.stolenNodes = total
	w.lane.Rec(obs.KindChunkTransfer, int32(v), int64(total))

	me.local.PushAll(chunks[0])
	for _, c := range chunks[1:] {
		me.pool.Put(c)
	}
	me.workAvail.Store(int32(me.pool.Len()))
	return true
}

// terminate enters the streamlined barrier and, while waiting, keeps
// servicing steal requests and inspects one other thread at a time,
// leaving the barrier before any steal attempt.
func (w *distWorker) terminate() bool {
	sb := w.run.sb
	if sb.Enter(w.me) {
		return true
	}
	n := w.run.dom.Threads()
	for {
		if w.run.opt.abort.Load() {
			return true
		}
		w.service()
		if sb.Done(w.me) {
			return true
		}
		v := w.rng.Victim(w.me, n)
		if wa := w.probe(v); wa > 0 {
			if !sb.Leave(w.me) {
				return true
			}
			w.setState(stats.Stealing)
			ok := w.stealTimed(v)
			w.setState(stats.Idle)
			if ok {
				return false
			}
			if sb.Enter(w.me) {
				return true
			}
		}
		runtime.Gosched()
	}
}
