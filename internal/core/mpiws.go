package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// runMPIWS executes the message-passing work-stealing baseline of Section
// 3.2 (after Dinan et al. [2]): stealing is a request/response message
// exchange, working ranks poll for requests at a user-supplied interval,
// and termination uses the Dijkstra token-ring algorithm [9].
func runMPIWS(sp *uts.Spec, opt Options, res *Result) error {
	comm, err := msg.NewComm(opt.Threads, opt.Model)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for me := 0; me < opt.Threads; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			w := &mpiWorker{
				sp:    sp,
				abort: opt.abort,
				comm:  comm,
				me:    me,
				n:     opt.Threads,
				k:     opt.Chunk,
				poll:  opt.PollInterval,
				rng:   NewProbeOrder(opt.Seed, me),
				t:     &res.Threads[me],
				ex:    uts.NewExpander(sp),
				lane:  opt.Tracer.Lane(me),
				ctl:   opt.policySet.Controller(me),
			}
			if me == 0 {
				w.local.Push(uts.Root(sp))
				// Rank 0 owns the initial (conceptually black) token; the
				// first circulated round is never conclusive.
				w.haveToken = true
				w.tokenColor = msg.Black
				w.firstPass = true
			}
			w.main()
		}(me)
	}
	wg.Wait()
	return nil
}

type mpiWorker struct {
	sp    *uts.Spec
	abort *atomic.Bool
	comm  *msg.Comm
	me    int
	n     int
	k     int
	poll  int
	rng   *ProbeOrder
	t     *stats.Thread
	lane  *obs.Lane          // nil when the run is untraced
	ctl   *policy.Controller // nil when the run is not adaptive

	local stack.Deque
	ex    *uts.Expander

	// Dijkstra token-ring state.
	color       msg.Color // this process's color; black after sending work
	haveToken   bool
	tokenColor  msg.Color
	firstPass   bool
	outstanding bool // a steal request awaits its reply
	terminated  bool

	nodesFlushed int64 // t.Nodes already published to the lane's live counter
	ctlNodes     int64 // t.Nodes already reported to the controller
}

// flushNodes publishes node progress to the lane's live counter in
// batches at the poll/yield cadence — one atomic add per flush, never
// per node.
func (w *mpiWorker) flushNodes() {
	if d := w.t.Nodes - w.nodesFlushed; d != 0 {
		w.lane.AddNodes(d)
		w.nodesFlushed = w.t.Nodes
	}
}

// noteCtl feeds node progress to the rank's controller at the yield
// cadence and refreshes the adapted knobs (chunk size and poll interval)
// after any window boundary; a no-op for fixed-knob runs.
func (w *mpiWorker) noteCtl() {
	if w.ctl == nil {
		return
	}
	now := time.Now() //uts:ok detcheck policy feedback timestamp; adaptive real-mode runs are wall-clock paced by design
	w.ctl.NoteNodes(int(w.t.Nodes-w.ctlNodes), w.local.Len(), now.UnixNano())
	w.ctlNodes = w.t.Nodes
	w.k = w.ctl.Chunk()
	w.poll = w.ctl.Poll()
}

func (w *mpiWorker) main() {
	w.t.StartTimers(time.Now())
	w.lane.Rec(obs.KindStateChange, -1, int64(stats.Working))
	defer func() { w.t.StopTimers(time.Now()) }()
	for !w.terminated {
		if w.local.Len() > 0 {
			w.work()
		} else {
			w.idle()
		}
	}
}

// work explores nodes, polling the message queue every poll-interval nodes
// — the cost/latency tradeoff the paper's Section 3.2 highlights.
func (w *mpiWorker) work() {
	since, sinceYield := 0, 0
	for w.local.Len() > 0 && !w.terminated {
		n, _ := w.local.Pop()
		w.t.Nodes++
		if n.NumKids == 0 {
			w.t.Leaves++
		} else {
			w.local.PushAll(w.ex.Children(&n))
		}
		w.t.NoteDepth(w.local.Len())
		if since++; since >= w.poll {
			since = 0
			w.drain()
		}
		if sinceYield++; sinceYield >= yieldEvery {
			sinceYield = 0
			w.flushNodes()
			w.noteCtl()
			if w.abort.Load() {
				w.terminated = true
				return
			}
			runtime.Gosched()
		}
	}
	w.flushNodes()
	w.drain()
}

// drain handles every pending message. Each call counts as one poll for
// the adaptive controller, which tunes the poll interval from the
// hit rate (messages handled per poll).
func (w *mpiWorker) drain() {
	got := 0
	for {
		m, ok := w.comm.Recv(w.me)
		if !ok {
			break
		}
		got++
		w.handle(m)
	}
	if w.ctl != nil {
		w.ctl.NotePoll(got)
	}
}

// handle processes one message.
func (w *mpiWorker) handle(m msg.Message) {
	switch m.Tag {
	case msg.TagStealRequest:
		w.t.Requests++
		if w.local.Len() >= 2*w.k {
			chunk := w.local.TakeBottom(w.k)
			w.color = msg.Black // work moved: taint this round
			w.t.Releases++
			w.lane.Rec(obs.KindStealGrant, int32(m.From), 1)
			w.comm.Send(w.me, m.From, msg.Message{Tag: msg.TagWork, Chunks: []stack.Chunk{chunk}})
		} else {
			if w.ctl != nil && w.local.Len() > 0 {
				// Denied while holding work: victim-side evidence that the
				// release threshold (2k) is too high for the current load.
				w.ctl.NoteDenied()
			}
			w.lane.Rec(obs.KindStealDeny, int32(m.From), 0)
			w.comm.Send(w.me, m.From, msg.Message{Tag: msg.TagNoWork})
		}
	case msg.TagWork:
		w.outstanding = false
		w.t.Steals++
		w.t.ChunksGot += int64(len(m.Chunks))
		total := 0
		for _, c := range m.Chunks {
			total += len(c)
			w.local.PushAll(c)
		}
		if w.ctl != nil {
			now := time.Now() //uts:ok detcheck policy steal-latency feedback; wall-paced by design in real mode
			w.ctl.StealEnd(true, total, now.UnixNano())
		}
		w.lane.Rec(obs.KindChunkTransfer, int32(m.From), int64(total))
	case msg.TagNoWork:
		w.outstanding = false
		w.t.FailedSteals++
		if w.ctl != nil {
			now := time.Now() //uts:ok detcheck policy steal-latency feedback; wall-paced by design in real mode
			w.ctl.StealEnd(false, 0, now.UnixNano())
		}
		w.lane.Rec(obs.KindStealFail, int32(m.From), 0)
	case msg.TagToken:
		w.haveToken = true
		w.tokenColor = m.Color
	case msg.TagTerminate:
		w.terminated = true
	}
}

// idle is the searching/termination state: issue steal requests, answer
// other ranks' messages, and take part in token circulation. A rank passes
// the token only when passive — stack empty, no outstanding request, and
// inbox drained — which, with instantaneous message enqueue, is what makes
// the white-round conclusion sound.
// setState pairs the stats state timer with the tracer's state event.
func (w *mpiWorker) setState(s stats.State) {
	w.t.Switch(s, time.Now())
	w.lane.Rec(obs.KindStateChange, -1, int64(s))
}

func (w *mpiWorker) idle() {
	w.setState(stats.Searching)
	defer w.setState(stats.Working)
	for w.local.Len() == 0 && !w.terminated {
		if m, ok := w.comm.Recv(w.me); ok {
			w.handle(m)
			continue
		}
		if w.n == 1 {
			w.terminated = true
			return
		}
		// Inbox empty here: safe to pass the token if we are passive.
		if w.haveToken && !w.outstanding {
			w.passToken()
			continue
		}
		if w.abort.Load() {
			w.terminated = true
			return
		}
		if !w.outstanding {
			v := w.rng.Victim(w.me, w.n)
			w.t.Probes++
			if w.ctl != nil {
				now := time.Now() //uts:ok detcheck policy steal-latency feedback; wall-paced by design in real mode
				w.ctl.StealBegin(now.UnixNano())
			}
			w.lane.Rec(obs.KindStealRequest, int32(v), 0)
			w.comm.Send(w.me, v, msg.Message{Tag: msg.TagStealRequest})
			w.outstanding = true
			continue
		}
		w.noteCtl()
		runtime.Gosched()
	}
}

// passToken applies the Dijkstra rules. Rank 0 judges the completed round
// and either announces termination or recirculates a white token; other
// ranks taint the token if they are black and whiten themselves after
// passing.
func (w *mpiWorker) passToken() {
	w.haveToken = false
	if w.me == 0 {
		if !w.firstPass && w.tokenColor == msg.White && w.color == msg.White {
			// A full white round with rank 0 white and passive: no work
			// anywhere. Announce termination to every rank.
			for j := 1; j < w.n; j++ {
				w.comm.Send(w.me, j, msg.Message{Tag: msg.TagTerminate})
			}
			w.terminated = true
			return
		}
		w.firstPass = false
		w.color = msg.White
		w.comm.Send(w.me, 1%w.n, msg.Message{Tag: msg.TagToken, Color: msg.White})
		return
	}
	c := w.tokenColor
	if w.color == msg.Black {
		c = msg.Black
	}
	w.color = msg.White
	w.comm.Send(w.me, (w.me+1)%w.n, msg.Message{Tag: msg.TagToken, Color: c})
}
