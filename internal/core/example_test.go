package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/uts"
)

// Running the paper's distributed-memory work-stealing algorithm with four
// goroutine threads. The node count always equals the sequential count.
func ExampleRun() {
	res, err := core.Run(&uts.Balanced3x7, core.Options{
		Algorithm: core.UPCDistMem,
		Threads:   4,
		Chunk:     8,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Nodes(), res.Leaves())
	// Output: 3280 2187
}
