package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pgas"
	"repro/internal/stats"
	"repro/internal/uts"
)

// expect returns the sequential ground truth for a spec, cached across the
// test binary's lifetime.
var seqCache = map[string]uts.Count{}

func expect(t *testing.T, sp *uts.Spec) uts.Count {
	t.Helper()
	if c, ok := seqCache[sp.Name]; ok {
		return c
	}
	c := uts.SearchSequential(sp)
	seqCache[sp.Name] = c
	return c
}

// checkRun asserts the repository-wide invariant: the parallel node and
// leaf counts equal the sequential traversal exactly.
func checkRun(t *testing.T, sp *uts.Spec, res *Result) {
	t.Helper()
	want := expect(t, sp)
	if got := res.Nodes(); got != want.Nodes {
		t.Errorf("%s/%s: nodes = %d, want %d", res.Algorithm, sp.Name, got, want.Nodes)
	}
	if got := res.Leaves(); got != want.Leaves {
		t.Errorf("%s/%s: leaves = %d, want %d", res.Algorithm, sp.Name, got, want.Leaves)
	}
}

func TestAllAlgorithmsMatchSequential(t *testing.T) {
	for _, alg := range Algorithms {
		for _, threads := range []int{1, 2, 4, 8} {
			res, err := Run(&uts.BenchTiny, Options{Algorithm: alg, Threads: threads, Chunk: 4})
			if err != nil {
				t.Fatalf("%s/%d: %v", alg, threads, err)
			}
			checkRun(t, &uts.BenchTiny, res)
		}
	}
}

func TestAllAlgorithmsOnTreeFamilies(t *testing.T) {
	trees := []*uts.Spec{&uts.GeoLinear, &uts.HybridSmall, &uts.Balanced3x7}
	for _, alg := range Algorithms {
		for _, sp := range trees {
			res, err := Run(sp, Options{Algorithm: alg, Threads: 4, Chunk: 8})
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, sp.Name, err)
			}
			checkRun(t, sp, res)
		}
	}
}

func TestChunkSizeSweepCorrectness(t *testing.T) {
	for _, alg := range Algorithms {
		for _, k := range []int{1, 2, 16, 64, 500} {
			res, err := Run(&uts.BenchTiny, Options{Algorithm: alg, Threads: 4, Chunk: k})
			if err != nil {
				t.Fatalf("%s/k=%d: %v", alg, k, err)
			}
			checkRun(t, &uts.BenchTiny, res)
		}
	}
}

func TestUnderLatencyModels(t *testing.T) {
	if testing.Short() {
		t.Skip("latency injection is slow")
	}
	// Scaled-down cluster latencies keep the test quick while exercising
	// every charge path.
	model := pgas.Model{
		Name:      "test-cluster",
		LocalRef:  50 * time.Nanosecond,
		RemoteRef: 2 * time.Microsecond,
		PerKB:     500 * time.Nanosecond,
		LockRTT:   10 * time.Microsecond,
	}
	for _, alg := range Algorithms {
		res, err := Run(&uts.BenchTiny, Options{Algorithm: alg, Threads: 4, Chunk: 4, Model: &model})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkRun(t, &uts.BenchTiny, res)
	}
}

func TestBiggerTreeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, alg := range Algorithms {
		res, err := Run(&uts.BenchSmall, Options{Algorithm: alg, Threads: 8, Chunk: 8})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkRun(t, &uts.BenchSmall, res)
		if alg != UPCSharedMem && alg != Sequential {
			// With 8 threads on a 63k-node tree every implementation must
			// actually balance load: no thread may do everything.
			if res.Imbalance() > 7.99 {
				t.Errorf("%s: imbalance %.2f suggests no stealing happened", alg, res.Imbalance())
			}
		}
		if res.Sum(func(th *stats.Thread) int64 { return th.Steals }) == 0 && alg != Sequential {
			t.Errorf("%s: zero steals on an 8-thread unbalanced run", alg)
		}
	}
}

func TestManyThreadsOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("oversubscription stress")
	}
	// 32 goroutine-threads on (likely) 1 CPU: exercises the cooperative
	// yield paths and the termination protocols under heavy interleaving.
	for _, alg := range Algorithms {
		res, err := Run(&uts.BenchTiny, Options{Algorithm: alg, Threads: 32, Chunk: 2})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkRun(t, &uts.BenchTiny, res)
	}
}

func TestRepeatedRunsStable(t *testing.T) {
	// The termination protocols must not be flaky: repeat each algorithm
	// many times on a small tree with varying seeds.
	for _, alg := range Algorithms {
		for seed := int64(0); seed < 10; seed++ {
			res, err := Run(&uts.Balanced3x7, Options{Algorithm: alg, Threads: 4, Chunk: 2, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", alg, seed, err)
			}
			checkRun(t, &uts.Balanced3x7, res)
		}
	}
}

func TestSequentialAlgorithm(t *testing.T) {
	res, err := Run(&uts.BenchTiny, Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, &uts.BenchTiny, res)
	if len(res.Threads) != 1 {
		t.Errorf("sequential run has %d threads", len(res.Threads))
	}
}

func TestSingleThreadAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms {
		res, err := Run(&uts.BenchTiny, Options{Algorithm: alg, Threads: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkRun(t, &uts.BenchTiny, res)
		if res.Sum(func(th *stats.Thread) int64 { return th.Steals }) != 0 {
			t.Errorf("%s: steals on a single-thread run", alg)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(&uts.BenchTiny, Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(&uts.BenchTiny, Options{Threads: -1}); err == nil {
		t.Error("negative threads accepted")
	}
	if _, err := Run(&uts.BenchTiny, Options{Chunk: -5}); err == nil {
		t.Error("negative chunk accepted")
	}
	bad := uts.Spec{Kind: uts.Binomial, B0: 2, M: 2, Q: 0.9}
	if _, err := Run(&bad, Options{}); err == nil {
		t.Error("supercritical spec accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	res, err := Run(&uts.Balanced3x7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != UPCDistMem {
		t.Errorf("default algorithm = %s", res.Algorithm)
	}
	if res.Chunk != 16 {
		t.Errorf("default chunk = %d", res.Chunk)
	}
	checkRun(t, &uts.Balanced3x7, res)
}

func TestStatsAccounting(t *testing.T) {
	res, err := Run(&uts.BenchTiny, Options{Algorithm: UPCDistMem, Threads: 4, Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Per-thread node sums were already checked; here check the timers
	// actually accumulated and the rate/speedup plumbing works.
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
	var total time.Duration
	for i := range res.Threads {
		for _, st := range res.Threads[i].InState {
			total += st
		}
	}
	if total <= 0 {
		t.Error("no per-state time recorded")
	}
	if res.Rate() <= 0 {
		t.Error("zero rate")
	}
	res.SeqRate = res.Rate() // pretend baseline == parallel rate
	if e := res.Efficiency(); e <= 0 || e > 1.01 {
		t.Errorf("efficiency = %f", e)
	}
}

func TestProbeRNG(t *testing.T) {
	r := NewProbeOrder(1, 2)
	for i := 0; i < 1000; i++ {
		v := r.Victim(2, 8)
		if v == 2 || v < 0 || v >= 8 {
			t.Fatalf("victim(%d) out of range: %d", 2, v)
		}
	}
	perm := r.Cycle(3, 6)
	if len(perm) != 5 {
		t.Fatalf("cycle length %d", len(perm))
	}
	seen := map[int]bool{}
	for _, v := range perm {
		if v == 3 || seen[v] {
			t.Fatalf("bad cycle %v", perm)
		}
		seen[v] = true
	}
	// Determinism per (seed, thread).
	a := NewProbeOrder(7, 1)
	b := NewProbeOrder(7, 1)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("ProbeOrder not deterministic")
		}
	}
}

func TestHierarchicalVariantCorrect(t *testing.T) {
	intra := pgas.SharedMemory
	for _, threads := range []int{4, 9} {
		res, err := Run(&uts.BenchTiny, Options{
			Algorithm: UPCDistMemHier, Threads: threads, Chunk: 4,
			NodeSize: 4, IntraModel: &intra,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkRun(t, &uts.BenchTiny, res)
	}
	// Without a topology the variant must behave like plain distmem.
	res, err := Run(&uts.BenchTiny, Options{Algorithm: UPCDistMemHier, Threads: 4, Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, &uts.BenchTiny, res)
}

func TestHierarchicalOptionsValidation(t *testing.T) {
	if _, err := Run(&uts.BenchTiny, Options{Algorithm: UPCDistMemHier, NodeSize: -1}); err == nil {
		t.Error("negative node size accepted")
	}
}

func TestCycleHier(t *testing.T) {
	r := NewProbeOrder(1, 5)
	// 12 threads in nodes of 4; me = 5 lives on node 1 = {4,5,6,7}.
	perm := r.CycleHier(5, 12, 4)
	if len(perm) != 11 {
		t.Fatalf("perm length %d", len(perm))
	}
	sameNode := map[int]bool{4: true, 6: true, 7: true}
	for i, v := range perm {
		if v == 5 {
			t.Fatal("self in probe cycle")
		}
		if i < 3 && !sameNode[v] {
			t.Errorf("position %d is off-node victim %d; same-node must come first", i, v)
		}
		if i >= 3 && sameNode[v] {
			t.Errorf("position %d is same-node victim %d; should be in prefix", i, v)
		}
	}
	// nodeSize <= 1 degrades to a plain cycle.
	flat := r.CycleHier(5, 12, 1)
	if len(flat) != 11 {
		t.Fatalf("flat perm length %d", len(flat))
	}
}

func TestStaticBaselineCorrect(t *testing.T) {
	// No balancing, but the count invariant still holds, and the imbalance
	// on a critical binomial tree must be dramatic.
	res, err := Run(&uts.BenchTiny, Options{Algorithm: Static, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, &uts.BenchTiny, res)
	if res.Sum(func(th *stats.Thread) int64 { return th.Steals }) != 0 {
		t.Error("static baseline must never steal")
	}
	if res.Imbalance() < 2 {
		t.Errorf("imbalance %.2f suspiciously even for static partitioning of a critical tree", res.Imbalance())
	}
	// Single thread degenerates to sequential.
	res1, err := Run(&uts.Balanced3x7, Options{Algorithm: Static, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, &uts.Balanced3x7, res1)
}

func TestStaticMoreThreadsThanRootChildren(t *testing.T) {
	// Threads beyond the root fan-out get nothing; counts must still match.
	sp := uts.Spec{Name: "small-fanout", Kind: uts.Binomial, Seed: 3, B0: 3, M: 2, Q: 0.3}
	res, err := Run(&sp, Options{Algorithm: Static, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := uts.SearchSequential(&sp)
	if res.Nodes() != want.Nodes {
		t.Errorf("nodes = %d, want %d", res.Nodes(), want.Nodes)
	}
}

// TestCycleIsPermutationProperty property-checks that probe cycles are
// exactly the other threads, each once, for arbitrary (seed, me, n).
func TestCycleIsPermutationProperty(t *testing.T) {
	f := func(seed int64, me8, n8 uint8) bool {
		n := int(n8%63) + 2 // 2..64
		me := int(me8) % n
		r := NewProbeOrder(seed, me)
		perm := r.Cycle(me, n)
		if len(perm) != n-1 {
			return false
		}
		seen := make(map[int]bool, len(perm))
		for _, v := range perm {
			if v < 0 || v >= n || v == me || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCycleHierPartitionProperty property-checks the locality-aware cycle:
// a permutation of all other threads with every same-node victim strictly
// before every off-node victim.
func TestCycleHierPartitionProperty(t *testing.T) {
	f := func(seed int64, me8, n8, g8 uint8) bool {
		n := int(n8%63) + 2
		me := int(me8) % n
		g := int(g8%8) + 1
		r := NewProbeOrder(seed, me)
		perm := r.CycleHier(me, n, g)
		if len(perm) != n-1 {
			return false
		}
		seen := make(map[int]bool, len(perm))
		offNodeSeen := false
		for _, v := range perm {
			if v < 0 || v >= n || v == me || seen[v] {
				return false
			}
			seen[v] = true
			same := g > 1 && v/g == me/g
			if same && offNodeSeen {
				return false // same-node victim after an off-node one
			}
			if !same {
				offNodeSeen = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRelaxedLedgerDifferential is the multiplicity-ledger property test:
// the relaxed variant's ledger-deduped node/leaf counts must be bit-exact
// against every lock-based implementation — all seven parallel algorithms
// across two tree shapes and three probe seeds reduce to the same
// sequential ground truth, so any duplicate subtree the relaxed protocol
// failed to dedup (or any chunk it lost) shows up as a count mismatch.
func TestRelaxedLedgerDifferential(t *testing.T) {
	algs := append(append([]Algorithm{}, Algorithms...), UPCDistMemHier, UPCTermRelaxed)
	trees := []*uts.Spec{&uts.BenchTiny, &uts.T3Small}
	type key struct{ tree string }
	counts := map[key][2]int64{}
	for _, sp := range trees {
		want := expect(t, sp)
		counts[key{sp.Name}] = [2]int64{want.Nodes, want.Leaves}
	}
	for _, alg := range algs {
		for _, sp := range trees {
			for seed := int64(0); seed < 3; seed++ {
				res, err := Run(sp, Options{Algorithm: alg, Threads: 4, Chunk: 4, Seed: seed})
				if err != nil {
					t.Fatalf("%s/%s/seed=%d: %v", alg, sp.Name, seed, err)
				}
				want := counts[key{sp.Name}]
				if res.Nodes() != want[0] || res.Leaves() != want[1] {
					t.Errorf("%s/%s/seed=%d: counts = %d/%d, want %d/%d",
						alg, sp.Name, seed, res.Nodes(), res.Leaves(), want[0], want[1])
				}
			}
		}
	}
}

// TestRelaxedSurfacesDuplicateTakes pins the accounting plumbing: a
// thread's DuplicateTakes counter reaches the run summary, and a clean
// run (no duplicates) keeps the summary byte-identical to before.
func TestRelaxedSurfacesDuplicateTakes(t *testing.T) {
	res, err := Run(&uts.BenchTiny, Options{Algorithm: UPCTermRelaxed, Threads: 4, Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, &uts.BenchTiny, res)
	dups := res.Sum(func(th *stats.Thread) int64 { return th.DuplicateTakes })
	if got := strings.Contains(res.Summary(), "duplicate-takes="); got != (dups > 0) {
		t.Errorf("summary mentions duplicate-takes=%v, but run had %d duplicate takes", got, dups)
	}
	res.Threads[0].DuplicateTakes += 3
	if !strings.Contains(res.Summary(), "duplicate-takes=") {
		t.Error("summary omits the duplicate-takes line despite a nonzero counter")
	}
}

func TestRunCtxCancellation(t *testing.T) {
	for _, alg := range append(append([]Algorithm{}, Algorithms...), Static, UPCDistMemHier, UPCTermRelaxed, Sequential) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // aborted before the search starts
		res, err := RunCtx(ctx, &uts.BenchMedium, Options{Algorithm: alg, Threads: 4, Chunk: 8})
		if err == nil {
			t.Fatalf("%s: cancelled run returned no error", alg)
		}
		if res == nil {
			t.Fatalf("%s: cancelled run returned no partial result", alg)
		}
		want := int64(481599)
		if res.Nodes() >= want {
			t.Errorf("%s: pre-cancelled run still explored the whole tree (%d nodes)", alg, res.Nodes())
		}
	}
}

func TestRunCtxMidFlightCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now() //uts:ok detcheck measures real cancellation latency, not simulated time
	_, err := RunCtx(ctx, &uts.BenchLarge, Options{Algorithm: UPCDistMem, Threads: 4, Chunk: 16})
	if err == nil {
		t.Skip("machine finished BenchLarge before the 5ms deadline?!")
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Errorf("cancellation took %v; workers not checking the abort flag", el)
	}
}

func TestRunCtxUncancelledIsComplete(t *testing.T) {
	res, err := RunCtx(context.Background(), &uts.BenchTiny, Options{Algorithm: UPCSharedMem, Threads: 4, Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, &uts.BenchTiny, res)
}

// BenchmarkProbeOrderCycle measures one victim permutation per iteration —
// the per-search-cycle cost a thief pays. The list reuse keeps this at one
// Fisher-Yates pass with no allocation after the first call.
func BenchmarkProbeOrderCycle(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("flat-n%d", n), func(b *testing.B) {
			r := NewProbeOrder(1, 3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Cycle(3, n)
			}
		})
		b.Run(fmt.Sprintf("hier-n%d", n), func(b *testing.B) {
			r := NewProbeOrder(1, 3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.CycleHier(3, n, 4)
			}
		})
	}
}

// TestProbeWalkSmallMatchesCycle pins the compatibility contract: below
// probeWalkCacheMax a walk must visit victims in exactly the order the
// cached Cycle/CycleHier permutation would, consuming the same RNG draws,
// so schedules recorded before ProbeWalk existed stay byte-identical.
func TestProbeWalkSmallMatchesCycle(t *testing.T) {
	for _, hier := range []bool{false, true} {
		a := NewProbeOrder(42, 7)
		b := NewProbeOrder(42, 7)
		for round := 0; round < 3; round++ {
			var perm []int
			var w ProbeWalk
			if hier {
				perm = a.CycleHier(7, 64, 8)
				w = b.WalkHier(7, 64, 8)
			} else {
				perm = a.Cycle(7, 64)
				w = b.Walk(7, 64)
			}
			got := make([]int, 0, len(perm))
			for !w.Exhausted() {
				got = append(got, w.Victim())
				w.Advance()
			}
			if len(got) != len(perm) {
				t.Fatalf("hier=%v round %d: walk length %d, cycle length %d", hier, round, len(got), len(perm))
			}
			for i := range perm {
				if got[i] != perm[i] {
					t.Fatalf("hier=%v round %d: walk diverges from cycle at %d: %d != %d", hier, round, i, got[i], perm[i])
				}
			}
		}
	}
}

// TestProbeWalkLargePermutation checks the strided path is still a true
// probe cycle: each of the n−1 victims exactly once, never me, with O(1)
// walker state (the whole point — cached permutations cost O(P²) across
// P simulated PEs and OOM-killed 131072-PE work-stealing runs).
func TestProbeWalkLargePermutation(t *testing.T) {
	const n = probeWalkCacheMax*2 + 17
	const me = 4099
	r := NewProbeOrder(3, me)
	seen := make([]bool, n)
	count := 0
	for w := r.Walk(me, n); !w.Exhausted(); w.Advance() {
		v := w.Victim()
		if v < 0 || v >= n || v == me {
			t.Fatalf("bad victim %d", v)
		}
		if seen[v] {
			t.Fatalf("victim %d visited twice", v)
		}
		seen[v] = true
		count++
	}
	if count != n-1 {
		t.Fatalf("visited %d victims, want %d", count, n-1)
	}
}

// TestProbeWalkLargeHier checks the locality contract survives the
// strided path: all nodeSize−1 same-node victims strictly before any
// off-node victim, and the whole thing still a permutation.
func TestProbeWalkLargeHier(t *testing.T) {
	const n = probeWalkCacheMax * 3
	const nodeSize = 16
	const me = 8195 // node 512, mid-block
	r := NewProbeOrder(9, me)
	base := (me / nodeSize) * nodeSize
	seen := make([]bool, n)
	count, intra := 0, 0
	offNode := false
	for w := r.WalkHier(me, n, nodeSize); !w.Exhausted(); w.Advance() {
		v := w.Victim()
		if v < 0 || v >= n || v == me {
			t.Fatalf("bad victim %d", v)
		}
		if seen[v] {
			t.Fatalf("victim %d visited twice", v)
		}
		seen[v] = true
		count++
		if v >= base && v < base+nodeSize {
			if offNode {
				t.Fatalf("same-node victim %d after an off-node one", v)
			}
			intra++
		} else {
			offNode = true
		}
	}
	if count != n-1 {
		t.Fatalf("visited %d victims, want %d", count, n-1)
	}
	if intra != nodeSize-1 {
		t.Fatalf("%d same-node victims, want %d", intra, nodeSize-1)
	}
}

// probeWalkSets consumes a strided hierarchical walk and splits the
// victims into the locality prefix (same-node victims, which the contract
// says all come before any off-node victim) and the remainder, failing on
// duplicates or out-of-range IDs.
func probeWalkSets(t *testing.T, r *ProbeOrder, me, n, nodeSize int) (intra, rest map[int]bool) {
	t.Helper()
	base := (me / nodeSize) * nodeSize
	end := base + nodeSize
	if end > n {
		end = n
	}
	intra, rest = map[int]bool{}, map[int]bool{}
	offNode := false
	for w := r.WalkHier(me, n, nodeSize); !w.Exhausted(); w.Advance() {
		v := w.Victim()
		if v < 0 || v >= n || v == me {
			t.Fatalf("bad victim %d", v)
		}
		if intra[v] || rest[v] {
			t.Fatalf("victim %d visited twice", v)
		}
		if v >= base && v < end {
			if offNode {
				t.Fatalf("same-node victim %d after an off-node one", v)
			}
			intra[v] = true
		} else {
			offNode = true
			rest[v] = true
		}
	}
	return intra, rest
}

// TestProbeWalkHierPartialLastBlock: on the strided path with
// n % nodeSize != 0, a walker inside the truncated last node block must
// visit exactly the same victim sets as the cached CycleHier path — the
// partial block minus me first, then everyone else. The strided block
// bound [base, min(base+nodeSize, n)) and CycleHier's loop bound must
// agree or victims near n would be double-counted or lost.
func TestProbeWalkHierPartialLastBlock(t *testing.T) {
	const nodeSize = 16
	const n = probeWalkCacheMax*2 + 7 // last block holds 7 of 16 IDs
	if n%nodeSize == 0 {
		t.Fatal("test wants a partial last block")
	}
	for _, me := range []int{n - 3, n - 7, probeWalkCacheMax + 5} {
		r := NewProbeOrder(11, me)
		intra, rest := probeWalkSets(t, r, me, n, nodeSize)

		// The cached path is the oracle: CycleHier builds the same cycle
		// eagerly (callable at any n; only WalkHier switches on the cap).
		oracle := NewProbeOrder(99, me).CycleHier(me, n, nodeSize)
		base := (me / nodeSize) * nodeSize
		end := base + nodeSize
		if end > n {
			end = n
		}
		wantIntra, wantRest := map[int]bool{}, map[int]bool{}
		for _, v := range oracle {
			if v >= base && v < end {
				wantIntra[v] = true
			} else {
				wantRest[v] = true
			}
		}
		if len(intra) != len(wantIntra) || len(rest) != len(wantRest) {
			t.Fatalf("me=%d: walk sets %d+%d victims, CycleHier %d+%d",
				me, len(intra), len(rest), len(wantIntra), len(wantRest))
		}
		for v := range wantIntra { //uts:ok detcheck membership check: iteration order cannot affect the result
			if !intra[v] {
				t.Fatalf("me=%d: same-node victim %d missing from walk", me, v)
			}
		}
		for v := range wantRest { //uts:ok detcheck membership check: iteration order cannot affect the result
			if !rest[v] {
				t.Fatalf("me=%d: off-node victim %d missing from walk", me, v)
			}
		}
	}
}

// TestProbeWalkHierDegenerateBlock: n % nodeSize == 1 puts the last ID
// alone in its block (bl == 1), so the intra segment is empty and the
// coprimeStride(1) path runs. The walk must still be a full permutation
// matching CycleHier's set.
func TestProbeWalkHierDegenerateBlock(t *testing.T) {
	const nodeSize = 8
	const n = probeWalkCacheMax*2 + 1
	me := n - 1 // block [n-1, n): me alone, zero same-node victims
	r := NewProbeOrder(7, me)
	intra, rest := probeWalkSets(t, r, me, n, nodeSize)
	if len(intra) != 0 {
		t.Fatalf("degenerate block produced %d same-node victims, want 0", len(intra))
	}
	oracle := NewProbeOrder(42, me).CycleHier(me, n, nodeSize)
	if len(rest) != len(oracle) {
		t.Fatalf("walk visited %d victims, CycleHier has %d", len(rest), len(oracle))
	}
	for _, v := range oracle {
		if !rest[v] {
			t.Fatalf("victim %d missing from walk", v)
		}
	}
}

// TestProbeWalkDeterministic: same seed and thread, same walk.
func TestProbeWalkDeterministic(t *testing.T) {
	const n = probeWalkCacheMax + 100
	a := NewProbeOrder(5, 3)
	b := NewProbeOrder(5, 3)
	wa, wb := a.Walk(3, n), b.Walk(3, n)
	for !wa.Exhausted() {
		if wb.Exhausted() || wa.Victim() != wb.Victim() {
			t.Fatal("ProbeWalk not deterministic")
		}
		wa.Advance()
		wb.Advance()
	}
	if !wb.Exhausted() {
		t.Fatal("walk lengths differ")
	}
}
