package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/uts"
)

// TestTracedRunsMatchSequential is the real-goroutine half of the tracer
// differential test: goroutine scheduling is nondeterministic, so traced
// and untraced runs cannot be compared event-for-event, but a traced run
// must still explore exactly the sequential node and leaf counts for
// every algorithm, and the tracer's own accounting must agree with the
// stats counters.
func TestTracedRunsMatchSequential(t *testing.T) {
	for _, alg := range Algorithms {
		tr := obs.New(4, 0)
		res, err := Run(&uts.BenchTiny, Options{Algorithm: alg, Threads: 4, Chunk: 4, Tracer: tr})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkRun(t, &uts.BenchTiny, res)
		if res.Obs == nil {
			t.Fatalf("%s: traced run has no histogram summary", alg)
		}
		if res.Obs.Events == 0 {
			t.Errorf("%s: traced run recorded no events", alg)
		}
		steals := res.Sum(func(th *stats.Thread) int64 { return th.Steals })
		if got := res.Obs.ChunkSize.Count(); got != steals {
			t.Errorf("%s: %d chunk-transfer events for %d steals", alg, got, steals)
		}
		if !strings.Contains(res.Summary(), "trace: ") {
			t.Errorf("%s: traced summary lacks the trace section", alg)
		}
	}
}

// TestUntracedSummaryUnchanged pins the byte-stability promise: without a
// tracer, the report must contain no observability output at all.
func TestUntracedSummaryUnchanged(t *testing.T) {
	res, err := Run(&uts.BenchTiny, Options{Algorithm: UPCSharedMem, Threads: 4, Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Fatal("untraced run grew a histogram summary")
	}
	out := res.Summary()
	for _, banned := range []string{"trace:", "steal-latency", "dwell"} {
		if strings.Contains(out, banned) {
			t.Errorf("untraced summary contains %q:\n%s", banned, out)
		}
	}
}
