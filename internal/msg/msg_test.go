package msg

import (
	"sync"
	"testing"

	"repro/internal/stack"
	"repro/internal/uts"
)

func TestSendRecvFIFO(t *testing.T) {
	c, err := NewComm(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Send(0, 1, Message{Tag: Tag(i % 3)})
	}
	if c.Pending(1) != 10 {
		t.Fatalf("Pending = %d", c.Pending(1))
	}
	for i := 0; i < 10; i++ {
		m, ok := c.Recv(1)
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		if m.From != 0 || m.Tag != Tag(i%3) {
			t.Fatalf("recv %d: got from=%d tag=%v", i, m.From, m.Tag)
		}
	}
	if _, ok := c.Recv(1); ok {
		t.Error("recv from empty inbox succeeded")
	}
}

func TestSendToSelf(t *testing.T) {
	c, _ := NewComm(1, nil)
	c.Send(0, 0, Message{Tag: TagToken, Color: Black})
	m, ok := c.Recv(0)
	if !ok || m.Tag != TagToken || m.Color != Black {
		t.Fatalf("self-send lost: %v %v", m, ok)
	}
}

func TestWorkPayloadSurvives(t *testing.T) {
	c, _ := NewComm(2, nil)
	chunks := []stack.Chunk{{uts.Node{Height: 7}}, {uts.Node{Height: 8}, uts.Node{Height: 9}}}
	c.Send(1, 0, Message{Tag: TagWork, Chunks: chunks})
	m, ok := c.Recv(0)
	if !ok || len(m.Chunks) != 2 || m.Chunks[1][1].Height != 9 {
		t.Fatalf("payload corrupted: %+v", m)
	}
}

func TestInvalidComm(t *testing.T) {
	if _, err := NewComm(0, nil); err == nil {
		t.Error("zero-rank comm should fail")
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	c, _ := NewComm(2, nil)
	defer func() {
		if recover() == nil {
			t.Error("send to rank 5 of 2 should panic")
		}
	}()
	c.Send(0, 5, Message{})
}

// TestConcurrentSendersOneReceiver checks message conservation under
// concurrent senders: none lost, none duplicated.
func TestConcurrentSendersOneReceiver(t *testing.T) {
	const senders, per = 8, 500
	c, _ := NewComm(senders+1, nil)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Send(s+1, 0, Message{Tag: TagStealRequest, Color: Color(i)})
			}
		}(s)
	}
	wg.Wait()
	got := map[int][]int{}
	for {
		m, ok := c.Recv(0)
		if !ok {
			break
		}
		got[m.From] = append(got[m.From], int(m.Color))
	}
	total := 0
	for s := 1; s <= senders; s++ {
		seq := got[s]
		total += len(seq)
		// Per-sender FIFO order must hold even under interleaving.
		for i := 1; i < len(seq); i++ {
			if seq[i] != seq[i-1]+1 {
				t.Fatalf("sender %d: out-of-order delivery %v then %v", s, seq[i-1], seq[i])
			}
		}
	}
	if total != senders*per {
		t.Fatalf("received %d of %d messages", total, senders*per)
	}
}

func TestTagAndColorStrings(t *testing.T) {
	for _, tag := range []Tag{TagStealRequest, TagWork, TagNoWork, TagToken, TagTerminate, Tag(99)} {
		if tag.String() == "" {
			t.Errorf("tag %d: empty string", int(tag))
		}
	}
	if White.String() != "white" || Black.String() != "black" {
		t.Error("color names wrong")
	}
}

func TestMessageSizeCharging(t *testing.T) {
	m := Message{Chunks: []stack.Chunk{make([]uts.Node, 10)}}
	if m.size() != 16+240 {
		t.Errorf("size = %d, want 256", m.size())
	}
}

// TestSteadyStateReusesBacking is the regression test for the inbox
// capacity leak: Recv used to re-slice the queue (q = q[1:]), permanently
// stripping capacity off the backing array so sustained traffic forced
// Send to reallocate forever. With the head-indexed ring, a steady
// send/recv rhythm must recycle one backing array and allocate nothing
// beyond the payloads the caller hands in.
func TestSteadyStateReusesBacking(t *testing.T) {
	c, err := NewComm(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: establish the backing array at its working size.
	for i := 0; i < 64; i++ {
		c.Send(0, 1, Message{Tag: TagStealRequest})
	}
	for {
		if _, ok := c.Recv(1); !ok {
			break
		}
	}
	// Steady state: the inbox oscillates, never drains fully (the hard
	// case — a drained inbox resets head and is trivially reusable).
	c.Send(0, 1, Message{Tag: TagStealRequest})
	allocs := testing.AllocsPerRun(1000, func() {
		c.Send(0, 1, Message{Tag: TagStealRequest})
		if _, ok := c.Recv(1); !ok {
			t.Fatal("inbox unexpectedly empty")
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state send/recv allocates %.2f objects per op; want 0", allocs)
	}
}

// TestFIFOAcrossCompaction drives the inbox through many grow/compact
// cycles with interleaved sends and receives and checks strict FIFO
// order end to end — the compaction slide must never reorder or drop a
// live message.
func TestFIFOAcrossCompaction(t *testing.T) {
	c, err := NewComm(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	next := 0 // next sequence number expected out
	sent := 0
	recv := func(n int) {
		for i := 0; i < n; i++ {
			m, ok := c.Recv(1)
			if !ok {
				t.Fatalf("inbox empty with %d messages outstanding", sent-next)
			}
			if int(m.Color) != next {
				t.Fatalf("got message %d, want %d", int(m.Color), next)
			}
			next++
		}
	}
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			c.Send(0, 1, Message{Tag: TagToken, Color: Color(sent)})
			sent++
		}
		recv(5) // leave a live suffix so compaction has something to slide
	}
	recv(sent - next)
	if _, ok := c.Recv(1); ok {
		t.Error("inbox should be empty")
	}
	if c.Pending(1) != 0 {
		t.Errorf("Pending = %d after drain", c.Pending(1))
	}
}
