// Package msg is the message-passing substrate for the mpi-ws baseline
// (Section 3.2 of the paper, after Dinan et al.'s MPI implementation of
// UTS). It provides what that algorithm consumes from MPI: a fixed set of
// ranks, asynchronous tagged point-to-point sends, and a non-blocking
// polling receive. Transfers are charged to the cost model exactly like the
// PGAS one-sided operations, so the UPC and MPI implementations compete
// under the same interconnect assumptions.
//
// Sends never block: each rank's inbox is an unbounded FIFO. This mirrors
// buffered eager-mode MPI sends of small messages, which is how the UTS MPI
// implementation operates (steal requests and chunk transfers are small).
package msg

import (
	"fmt"
	"sync"

	"repro/internal/pgas"
	"repro/internal/stack"
)

// Tag discriminates message kinds for the work-stealing protocol.
type Tag int

const (
	// TagStealRequest asks the receiver for work.
	TagStealRequest Tag = iota
	// TagWork carries stolen chunks to a requester.
	TagWork
	// TagNoWork denies a steal request.
	TagNoWork
	// TagToken carries the Dijkstra termination-detection token.
	TagToken
	// TagTerminate announces global termination around the ring.
	TagTerminate
)

// String names the tag.
func (t Tag) String() string {
	switch t {
	case TagStealRequest:
		return "steal-request"
	case TagWork:
		return "work"
	case TagNoWork:
		return "no-work"
	case TagToken:
		return "token"
	case TagTerminate:
		return "terminate"
	}
	return fmt.Sprintf("Tag(%d)", int(t))
}

// Color is the Dijkstra token/process color.
type Color int

const (
	// White indicates no work has moved since the token last passed.
	White Color = iota
	// Black taints the token: work moved, the round is inconclusive.
	Black
)

// String names the color.
func (c Color) String() string {
	if c == White {
		return "white"
	}
	return "black"
}

// Message is one point-to-point message.
type Message struct {
	From   int
	Tag    Tag
	Chunks []stack.Chunk // TagWork payload
	Color  Color         // TagToken payload
}

// size estimates the wire size in bytes for bandwidth charging: a small
// fixed header plus 24 bytes per node.
func (m *Message) size() int {
	n := 16
	for _, c := range m.Chunks {
		n += 24 * len(c)
	}
	return n
}

// Comm connects a fixed set of ranks.
type Comm struct {
	n       int
	model   *pgas.Model
	inboxes []inbox
}

// inbox is a head-indexed FIFO ring: Recv advances head instead of
// re-slicing the queue (q = q[1:] permanently strips capacity off the
// backing array, so sustained traffic reallocates forever), and Send
// compacts the dead prefix before the slice would otherwise grow. In
// steady state one backing array is reused indefinitely.
type inbox struct {
	mu   sync.Mutex
	q    []Message
	head int
}

// NewComm creates a communicator of n ranks charging costs to model
// (nil means the zero-latency shared-memory profile).
func NewComm(n int, model *pgas.Model) (*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("msg: communicator needs at least one rank, got %d", n)
	}
	if model == nil {
		model = &pgas.SharedMemory
	}
	return &Comm{n: n, model: model, inboxes: make([]inbox, n)}, nil
}

// Ranks returns the communicator size.
func (c *Comm) Ranks() int { return c.n }

// Send delivers m to rank `to` asynchronously, charging the sender the
// injection latency plus the bandwidth term for the payload. Sending to
// self is allowed (used by single-rank termination).
//
//uts:noalloc
func (c *Comm) Send(from, to int, m Message) {
	if to < 0 || to >= c.n {
		panic(fmt.Sprintf("msg: send to rank %d of %d", to, c.n))
	}
	m.From = from
	if from != to {
		pgas.Charge(c.model.BulkCost(m.size()))
	}
	ib := &c.inboxes[to]
	ib.mu.Lock()
	if ib.head > 0 && len(ib.q) == cap(ib.q) {
		// About to grow: slide the live suffix down over the dead prefix
		// first so the existing backing array keeps being reused.
		live := copy(ib.q, ib.q[ib.head:])
		for i := live; i < len(ib.q); i++ {
			ib.q[i] = Message{}
		}
		ib.q = ib.q[:live]
		ib.head = 0
	}
	ib.q = append(ib.q, m) //uts:ok noalloc amortized growth; the compaction above reuses the backing array in steady state
	ib.mu.Unlock()
}

// Recv polls rank me's inbox, returning the oldest pending message if any.
// It never blocks; the work-stealing protocol is built on explicit polling
// (the paper's user-tunable polling interval).
//
//uts:noalloc
func (c *Comm) Recv(me int) (Message, bool) {
	ib := &c.inboxes[me]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.head == len(ib.q) {
		return Message{}, false
	}
	m := ib.q[ib.head]
	ib.q[ib.head] = Message{} // drop payload references promptly
	ib.head++
	if ib.head == len(ib.q) {
		ib.q = ib.q[:0]
		ib.head = 0
	}
	return m, true
}

// Pending reports the number of queued messages for rank me without
// consuming them (MPI_Iprobe analogue).
func (c *Comm) Pending(me int) int {
	ib := &c.inboxes[me]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.q) - ib.head
}
