package stats

import (
	"strings"
	"testing"
	"time"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{Working: "working", Searching: "searching", Stealing: "stealing", Idle: "idle"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if State(42).String() == "" {
		t.Error("out-of-range state should stringify")
	}
	if len(States) != 4 {
		t.Errorf("States has %d entries", len(States))
	}
}

func TestTimers(t *testing.T) {
	var th Thread
	t0 := time.Unix(0, 0)
	th.StartTimers(t0)
	th.Switch(Searching, t0.Add(100*time.Millisecond))
	th.Switch(Stealing, t0.Add(150*time.Millisecond))
	th.Switch(Working, t0.Add(170*time.Millisecond))
	th.StopTimers(t0.Add(270 * time.Millisecond))

	if th.InState[Working] != 200*time.Millisecond {
		t.Errorf("working = %v", th.InState[Working])
	}
	if th.InState[Searching] != 50*time.Millisecond {
		t.Errorf("searching = %v", th.InState[Searching])
	}
	if th.InState[Stealing] != 20*time.Millisecond {
		t.Errorf("stealing = %v", th.InState[Stealing])
	}
	// StopTimers freezes: a second stop must not double-charge.
	th.StopTimers(t0.Add(400 * time.Millisecond))
	if th.InState[Working] != 200*time.Millisecond {
		t.Errorf("double-charged after second stop: %v", th.InState[Working])
	}
}

func TestSwitchWithoutStartIsSafe(t *testing.T) {
	var th Thread
	th.Switch(Searching, time.Now()) // no StartTimers: must not panic or charge
	var total time.Duration
	for _, d := range th.InState {
		total += d
	}
	// The first Switch after a zero curSince charges nothing.
	if total != 0 {
		t.Errorf("charged %v without a started timer", total)
	}
}

func TestAddStateAndNoteDepth(t *testing.T) {
	var th Thread
	th.AddState(Working, time.Second)
	th.AddState(Idle, 2*time.Second)
	if th.InState[Working] != time.Second || th.InState[Idle] != 2*time.Second {
		t.Error("AddState accounting wrong")
	}
	th.NoteDepth(5)
	th.NoteDepth(3)
	th.NoteDepth(9)
	if th.MaxStackDepth != 9 {
		t.Errorf("MaxStackDepth = %d", th.MaxStackDepth)
	}
}

func mkRun() *Run {
	r := &Run{Elapsed: time.Second, SeqRate: 1000}
	r.Threads = make([]Thread, 4)
	for i := range r.Threads {
		r.Threads[i].ID = i
		r.Threads[i].Nodes = int64(500 * (i + 1)) // 500,1000,1500,2000 = 5000
		r.Threads[i].Leaves = int64(100 * (i + 1))
		r.Threads[i].Steals = int64(i)
		r.Threads[i].Probes = int64(10 * i)
		r.Threads[i].AddState(Working, 800*time.Millisecond)
		r.Threads[i].AddState(Searching, 150*time.Millisecond)
		r.Threads[i].AddState(Idle, 50*time.Millisecond)
	}
	return r
}

func TestRunAggregates(t *testing.T) {
	r := mkRun()
	if r.Nodes() != 5000 {
		t.Errorf("Nodes = %d", r.Nodes())
	}
	if r.Leaves() != 1000 {
		t.Errorf("Leaves = %d", r.Leaves())
	}
	if got := r.Sum(func(th *Thread) int64 { return th.Steals }); got != 6 {
		t.Errorf("Sum(steals) = %d", got)
	}
	if r.Rate() != 5000 {
		t.Errorf("Rate = %g", r.Rate())
	}
	if r.Speedup() != 5 {
		t.Errorf("Speedup = %g", r.Speedup())
	}
	if r.Efficiency() != 1.25 {
		t.Errorf("Efficiency = %g", r.Efficiency())
	}
	if r.StealsPerSecond() != 6 {
		t.Errorf("StealsPerSecond = %g", r.StealsPerSecond())
	}
}

func TestWorkingFractionAndBreakdown(t *testing.T) {
	r := mkRun()
	if wf := r.WorkingFraction(); wf < 0.799 || wf > 0.801 {
		t.Errorf("WorkingFraction = %g, want 0.8", wf)
	}
	bd := r.StateBreakdown()
	var sum float64
	for _, f := range bd {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown fractions sum to %g", sum)
	}
	if bd[Searching] < 0.149 || bd[Searching] > 0.151 {
		t.Errorf("searching fraction = %g", bd[Searching])
	}
}

func TestImbalance(t *testing.T) {
	r := mkRun()
	// max=2000, mean=1250 → 1.6
	if im := r.Imbalance(); im < 1.599 || im > 1.601 {
		t.Errorf("Imbalance = %g", im)
	}
	perfect := &Run{Threads: make([]Thread, 3)}
	for i := range perfect.Threads {
		perfect.Threads[i].Nodes = 100
	}
	if im := perfect.Imbalance(); im != 1 {
		t.Errorf("perfect imbalance = %g", im)
	}
}

func TestZeroValueEdges(t *testing.T) {
	var r Run
	if r.Rate() != 0 || r.Speedup() != 0 || r.Efficiency() != 0 ||
		r.StealsPerSecond() != 0 || r.Imbalance() != 0 || r.WorkingFraction() != 0 {
		t.Error("zero run should yield zero metrics")
	}
	zeroNodes := &Run{Threads: make([]Thread, 2), Elapsed: time.Second}
	if zeroNodes.Imbalance() != 0 {
		t.Error("all-zero node counts should give zero imbalance")
	}
}

func TestSummaryContents(t *testing.T) {
	r := mkRun()
	s := r.Summary()
	for _, want := range []string{"threads=4", "nodes=5000", "speedup=5.0", "working=80.0%", "imbalance"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// Without a baseline, no speedup line.
	r.SeqRate = 0
	if strings.Contains(r.Summary(), "speedup") {
		t.Error("speedup reported without a baseline")
	}
}

func TestPerThreadTable(t *testing.T) {
	r := mkRun()
	out := r.PerThreadTable()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+len(r.Threads) {
		t.Fatalf("table has %d lines, want %d", len(lines), 1+len(r.Threads))
	}
	if !strings.Contains(lines[0], "maxdep") || !strings.Contains(lines[0], "work%") {
		t.Errorf("header missing columns: %q", lines[0])
	}
	if !strings.Contains(out, "2000") { // thread 3's node count
		t.Errorf("table missing per-thread data:\n%s", out)
	}
	// Empty run renders just the header without panicking.
	empty := &Run{}
	if got := strings.Count(empty.PerThreadTable(), "\n"); got != 1 {
		t.Errorf("empty table has %d lines", got)
	}
}

func TestSummaryPartialResult(t *testing.T) {
	r := mkRun()
	if strings.Contains(r.Summary(), "PARTIAL") {
		t.Error("healthy run advertised a partial result")
	}
	r.FailedRanks = []int{2, 5}
	s := r.Summary()
	if !strings.Contains(s, "PARTIAL RESULT") || !strings.Contains(s, "[2 5]") {
		t.Errorf("summary does not flag the failed ranks:\n%s", s)
	}
}
