// Package stats collects the per-thread counters and per-state timers the
// paper reports: nodes explored, release/reacquire/steal/probe counts,
// chunks moved, and time spent in each of the Figure-1 states (Working,
// Searching, Stealing, Idle/Termination). Aggregation across threads yields
// the headline numbers — exploration rate, speedup, parallel efficiency,
// working-state efficiency (Section 6.2's 93%), and steal operations per
// second (Section 1's 85,000/s).
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
)

// State enumerates the Figure-1 thread states.
type State int

const (
	// Working: exploring nodes from the local stack.
	Working State = iota
	// Searching: probing other threads for available work.
	Searching
	// Stealing: executing a steal (reservation + transfer).
	Stealing
	// Idle: waiting in the termination barrier.
	Idle
	numStates
)

// String names the state.
func (s State) String() string {
	switch s {
	case Working:
		return "working"
	case Searching:
		return "searching"
	case Stealing:
		return "stealing"
	case Idle:
		return "idle"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// States lists the states in declaration order, for reports.
var States = []State{Working, Searching, Stealing, Idle}

// Thread accumulates one thread's counters. It is not safe for concurrent
// use: each worker owns its Thread and the aggregator reads it only after
// the worker has terminated.
type Thread struct {
	ID int

	Nodes  int64 // tree nodes visited
	Leaves int64

	Releases     int64 // chunks moved local → shared/steal region
	Reacquires   int64 // chunks moved back shared → local
	Steals       int64 // successful steal operations (one per victim visit)
	ChunksGot    int64 // chunks obtained by stealing (≥ Steals under steal-half)
	Probes       int64 // work-availability probes of other threads
	FailedSteals int64 // steal attempts that found the work already gone
	Requests     int64 // steal requests serviced for others (distmem/mpi)

	// DuplicateTakes counts relaxed-ring takes that lost the multiplicity-
	// ledger arbitration: the chunk was read but a concurrent claimer
	// consumed it first, so the copy was discarded before exploration.
	// Nonzero only under upc-term-relaxed.
	DuplicateTakes int64

	TermBarrierEntries int64 // times this thread entered the termination barrier
	MaxStackDepth      int

	// InState accumulates virtual or wall time per Figure-1 state.
	InState [numStates]time.Duration

	cur      State
	curSince time.Time
}

// StartTimers initializes wall-clock state accounting with the thread in
// the Working state.
func (t *Thread) StartTimers(now time.Time) {
	t.cur = Working
	t.curSince = now
}

// Switch moves the thread to state s at time now, charging the elapsed
// interval to the previous state.
func (t *Thread) Switch(s State, now time.Time) {
	if !t.curSince.IsZero() {
		t.InState[t.cur] += now.Sub(t.curSince)
	}
	t.cur = s
	t.curSince = now
}

// StopTimers charges the final interval and freezes the accounting.
func (t *Thread) StopTimers(now time.Time) {
	if !t.curSince.IsZero() {
		t.InState[t.cur] += now.Sub(t.curSince)
		t.curSince = time.Time{}
	}
}

// AddState charges d to state s directly; used by the discrete-event
// simulator, where time is virtual and timers never run.
func (t *Thread) AddState(s State, d time.Duration) {
	t.InState[s] += d
}

// NoteDepth records a stack-depth observation.
func (t *Thread) NoteDepth(d int) {
	if d > t.MaxStackDepth {
		t.MaxStackDepth = d
	}
}

// Run aggregates a complete parallel execution.
type Run struct {
	Threads []Thread
	Elapsed time.Duration // wall time (or virtual makespan for DES runs)

	// SeqRate is the sequential baseline in nodes/second used for speedup
	// and efficiency; zero means "unknown".
	SeqRate float64

	// FailedRanks lists ranks that never delivered their counters to the
	// coordinator (distributed runs only): the gather completed over the
	// surviving membership and this run's totals are partial. Empty for
	// healthy runs.
	FailedRanks []int

	// SuspectedRanks lists ranks some surviving rank declared dead
	// during the run, as recorded by the coordinator (distributed runs
	// only). A suspected rank may still have delivered its stats — a
	// death-verdict false positive under extreme slowness — so any
	// non-empty value means the termination-barrier membership shrank
	// and the run must be reported as degraded even when FailedRanks is
	// empty; a clean summary must be impossible for such a run.
	SuspectedRanks []int

	// Obs holds the merged event-tracer histograms (steal latency,
	// chunk size, probe distance, per-state dwell) when the run was
	// traced; nil otherwise. Summary folds it into the report, so
	// untraced output is byte-identical to pre-tracer releases.
	Obs *obs.Summary

	// Policy holds the closed-loop controller report (adapted chunk
	// range, steal-half selection, knob trajectory) when the run was
	// adaptive; nil otherwise. Like Obs, Summary only renders it when
	// present, so controller-off output is byte-identical to pre-policy
	// releases.
	Policy *policy.Summary
}

// Nodes returns the total nodes explored across threads.
func (r *Run) Nodes() int64 {
	var n int64
	for i := range r.Threads {
		n += r.Threads[i].Nodes
	}
	return n
}

// Leaves returns the total leaves across threads.
func (r *Run) Leaves() int64 {
	var n int64
	for i := range r.Threads {
		n += r.Threads[i].Leaves
	}
	return n
}

// Sum totals an arbitrary per-thread counter.
func (r *Run) Sum(f func(*Thread) int64) int64 {
	var n int64
	for i := range r.Threads {
		n += f(&r.Threads[i])
	}
	return n
}

// Rate returns the aggregate exploration rate in nodes/second.
func (r *Run) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Nodes()) / r.Elapsed.Seconds()
}

// Speedup returns Rate divided by the sequential baseline rate, the
// paper's definition (performance is rate-based throughout Section 4).
func (r *Run) Speedup() float64 {
	if r.SeqRate <= 0 {
		return 0
	}
	return r.Rate() / r.SeqRate
}

// Efficiency returns parallel efficiency: speedup over thread count.
func (r *Run) Efficiency() float64 {
	if len(r.Threads) == 0 {
		return 0
	}
	return r.Speedup() / float64(len(r.Threads))
}

// WorkingFraction returns the fraction of total thread-time spent in the
// Working state — the quantity behind the paper's 93% figure.
func (r *Run) WorkingFraction() float64 {
	var work, total time.Duration
	for i := range r.Threads {
		for s := State(0); s < numStates; s++ {
			total += r.Threads[i].InState[s]
		}
		work += r.Threads[i].InState[Working]
	}
	if total <= 0 {
		return 0
	}
	return float64(work) / float64(total)
}

// StateBreakdown returns, per state, the fraction of total thread-time.
func (r *Run) StateBreakdown() map[State]float64 {
	var total time.Duration
	var per [numStates]time.Duration
	for i := range r.Threads {
		for s := State(0); s < numStates; s++ {
			per[s] += r.Threads[i].InState[s]
			total += r.Threads[i].InState[s]
		}
	}
	out := make(map[State]float64, numStates)
	for s := State(0); s < numStates; s++ {
		if total > 0 {
			out[s] = float64(per[s]) / float64(total)
		}
	}
	return out
}

// StealsPerSecond returns the aggregate successful-steal throughput, the
// paper's "load balancing operations per second".
func (r *Run) StealsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Sum(func(t *Thread) int64 { return t.Steals })) / r.Elapsed.Seconds()
}

// Imbalance returns max/mean of per-thread node counts: 1.0 is perfect.
func (r *Run) Imbalance() float64 {
	if len(r.Threads) == 0 {
		return 0
	}
	var max, sum int64
	for i := range r.Threads {
		n := r.Threads[i].Nodes
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.Threads))
	return float64(max) / mean
}

// Summary renders a human-readable multi-line report in the style of the
// UTS reference output.
func (r *Run) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "threads=%d nodes=%d leaves=%d elapsed=%v rate=%.3gM nodes/s\n",
		len(r.Threads), r.Nodes(), r.Leaves(), r.Elapsed.Round(time.Microsecond), r.Rate()/1e6)
	if len(r.FailedRanks) > 0 {
		fmt.Fprintf(&b, "PARTIAL RESULT: no stats from rank(s) %v (failed or unreachable)\n", r.FailedRanks)
	}
	if len(r.SuspectedRanks) > 0 {
		fmt.Fprintf(&b, "DEGRADED: rank(s) %v were declared dead during the run (membership shrank; totals may be partial)\n", r.SuspectedRanks)
	}
	if r.SeqRate > 0 {
		fmt.Fprintf(&b, "speedup=%.1f efficiency=%.1f%%\n", r.Speedup(), 100*r.Efficiency())
	}
	fmt.Fprintf(&b, "steals=%d (%.0f/s) probes=%d failed=%d releases=%d reacquires=%d chunks-stolen=%d\n",
		r.Sum(func(t *Thread) int64 { return t.Steals }), r.StealsPerSecond(),
		r.Sum(func(t *Thread) int64 { return t.Probes }),
		r.Sum(func(t *Thread) int64 { return t.FailedSteals }),
		r.Sum(func(t *Thread) int64 { return t.Releases }),
		r.Sum(func(t *Thread) int64 { return t.Reacquires }),
		r.Sum(func(t *Thread) int64 { return t.ChunksGot }))
	if d := r.Sum(func(t *Thread) int64 { return t.DuplicateTakes }); d > 0 {
		fmt.Fprintf(&b, "duplicate-takes=%d (relaxed-ring multiplicity, deduped before exploration)\n", d)
	}
	bd := r.StateBreakdown()
	if bd[Working]+bd[Searching]+bd[Stealing]+bd[Idle] > 0 {
		keys := make([]State, 0, len(bd))
		for s := range bd {
			keys = append(keys, s)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		fmt.Fprintf(&b, "time in state:")
		for _, s := range keys {
			fmt.Fprintf(&b, " %s=%.1f%%", s, 100*bd[s])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "imbalance(max/mean nodes)=%.2f\n", r.Imbalance())
	if r.Policy != nil {
		fmt.Fprintln(&b, r.Policy.String())
	}
	if r.Obs != nil {
		b.WriteString(r.Obs.String())
	}
	return b.String()
}

// PerThreadTable renders one line per thread with the full counter set —
// the detail view behind Summary's aggregates. Columns: id, nodes, leaves,
// steals, chunks, failed, probes, releases, reacquires, requests, barrier
// entries, max stack depth, and the four state fractions.
func (r *Run) PerThreadTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %10s %10s %7s %7s %7s %8s %8s %8s %6s %4s %7s %6s %6s %6s %6s\n",
		"id", "nodes", "leaves", "steals", "chunks", "failed", "probes",
		"release", "reacq", "reqs", "bar", "maxdep", "work%", "srch%", "steal%", "idle%")
	for i := range r.Threads {
		t := &r.Threads[i]
		var total time.Duration
		for _, d := range t.InState {
			total += d
		}
		frac := func(s State) float64 {
			if total <= 0 {
				return 0
			}
			return 100 * float64(t.InState[s]) / float64(total)
		}
		fmt.Fprintf(&b, "%4d %10d %10d %7d %7d %7d %8d %8d %8d %6d %4d %7d %6.1f %6.1f %6.1f %6.1f\n",
			t.ID, t.Nodes, t.Leaves, t.Steals, t.ChunksGot, t.FailedSteals, t.Probes,
			t.Releases, t.Reacquires, t.Requests, t.TermBarrierEntries, t.MaxStackDepth,
			frac(Working), frac(Searching), frac(Stealing), frac(Idle))
	}
	return b.String()
}
