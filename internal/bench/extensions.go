package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/pgas"
	"repro/internal/stats"
	"repro/internal/uts"
)

// A4Hierarchical evaluates the paper's Section 6.2 future-work idea,
// implemented in this repository as upc-distmem-hier: on a cluster of
// multi-core nodes, first try to steal from threads on the same node
// (cheap references) before probing off-node. The machine is two-level:
// Topsail-like between nodes, Altix-like within a node.
func A4Hierarchical(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	pes := pick(sc, 8, 64, 256)
	nodeSize := pick(sc, 4, 8, 8)
	t := &Table{
		ID: "A4",
		Title: fmt.Sprintf("Extension (paper §6.2 future work): locality-aware stealing, %d PEs in nodes of %d, %s",
			pes, nodeSize, tree.Name),
		Columns: []string{"impl", "chunk", "Mnodes/s", "efficiency", "steals", "probes"},
		Notes: []string{
			"both variants run on the same two-level machine (topsail inter-node, altix intra-node);",
			"upc-distmem-hier probes same-node victims first, as bupc_thread_distance would allow",
		},
	}
	for _, alg := range []core.Algorithm{core.UPCDistMem, core.UPCDistMemHier} {
		for _, k := range pick(sc, []int{4}, []int{4, 16}, []int{4, 16, 64}) {
			res, err := des.Run(tree, des.Config{
				Algorithm: alg,
				PEs:       pes,
				Chunk:     k,
				Model:     &pgas.Topsail,
				NodeSize:  nodeSize,
				Intra:     &pgas.Altix,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(string(alg), k,
				fmt.Sprintf("%.2f", res.Rate()/1e6),
				fmt.Sprintf("%.1f%%", 100*res.Efficiency()),
				res.Sum(func(th *stats.Thread) int64 { return th.Steals }),
				res.Sum(func(th *stats.Thread) int64 { return th.Probes }))
		}
	}
	return t, nil
}

// D1Diffusion measures the rapid-diffusion mechanism of Section 3.3.2
// directly: how fast the number of "work sources" (threads with stealable
// surplus) grows from one at the start of the search, under steal-one
// (upc-term) versus steal-half (upc-term-rapdif) policies.
func D1Diffusion(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	pes := pick(sc, 8, 64, 256)
	interval := pick(sc, 20*time.Microsecond, 50*time.Microsecond, 100*time.Microsecond)
	t := &Table{
		ID:      "D1",
		Title:   fmt.Sprintf("Diffusion of work sources over time, %d PEs, %s, kittyhawk profile", pes, tree.Name),
		Columns: []string{"policy", "t(sources≥P/4)", "t(sources≥P/2)", "peak sources", "makespan"},
		Notes: []string{
			"Section 3.3.2: steal-half 'rapidly increases the number of work sources', cutting",
			"the probes needed to find a victim; steal-one leaves few sources for a long time",
		},
	}
	for _, alg := range []core.Algorithm{core.UPCTerm, core.UPCTermRapdif, core.UPCDistMem} {
		label := map[core.Algorithm]string{
			core.UPCTerm:       "steal-one (upc-term)",
			core.UPCTermRapdif: "steal-half (upc-term-rapdif)",
			core.UPCDistMem:    "steal-half lockless (upc-distmem)",
		}[alg]
		res, trace, err := des.RunTraced(tree, des.Config{
			Algorithm: alg, PEs: pes, Chunk: 8, Model: &pgas.KittyHawk,
		}, interval)
		if err != nil {
			return nil, err
		}
		peak := 0
		for _, s := range trace.Samples {
			if s.WorkSources > peak {
				peak = s.WorkSources
			}
		}
		fmtT := func(d time.Duration) string {
			if d < 0 {
				return "never"
			}
			return d.Round(time.Microsecond).String()
		}
		t.AddRow(label,
			fmtT(trace.TimeToSources(pes/4)),
			fmtT(trace.TimeToSources(pes/2)),
			peak,
			res.Elapsed.Round(time.Microsecond).String())
	}
	return t, nil
}

// E0StaticBaseline quantifies the paper's opening premise (Section 1/2):
// the UTS state space "can not be statically partitioned across
// processors", so dynamic load balancing is required. Static round-robin
// partitioning of the root's subtrees is compared against upc-distmem.
func E0StaticBaseline(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	peCounts := pick(sc, []int{4}, []int{16, 64}, []int{16, 64, 256})
	t := &Table{
		ID:      "E0",
		Title:   fmt.Sprintf("Why dynamic balancing: static partitioning vs work stealing, %s", tree.Name),
		Columns: []string{"strategy", "PEs", "Mnodes/s", "speedup", "efficiency", "imbalance(max/mean)"},
		Notes: []string{
			"over 99.9% of a critical binomial tree hangs under a few root children, so static",
			"partitioning degenerates to sequential execution regardless of processor count",
		},
	}
	for _, alg := range []core.Algorithm{core.Static, core.UPCDistMem} {
		for _, p := range peCounts {
			res, err := des.Run(tree, des.Config{Algorithm: alg, PEs: p, Chunk: 16, Model: &pgas.KittyHawk})
			if err != nil {
				return nil, err
			}
			t.AddRow(string(alg), p,
				fmt.Sprintf("%.2f", res.Rate()/1e6),
				fmt.Sprintf("%.1f", res.Speedup()),
				fmt.Sprintf("%.1f%%", 100*res.Efficiency()),
				fmt.Sprintf("%.1f", res.Imbalance()))
		}
	}
	return t, nil
}

// W1TreeShape validates the workload substitution of DESIGN.md §2: as the
// binomial extinction margin ε shrinks toward the paper's 10⁻⁸, the share
// of the tree hanging under the single largest root subtree approaches the
// paper's "over 99.9% of the work is contained in just one of the 2000
// subtrees" (Section 4.1). The bench trees keep the same heavy-tailed
// character at laptop-scale ε.
func W1TreeShape(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "W1",
		Title:   "Workload validation: dominance of the largest root subtree vs extinction margin ε",
		Columns: []string{"tree", "ε", "root-children", "nodes", "top-1 share", "top-10 share"},
		Notes: []string{
			"paper (ε=1e-8, 10.6B nodes): one subtree holds >99.9% of the work;",
			"dominance grows monotonically as ε shrinks, so laptop-scale trees preserve the regime",
		},
	}
	specs := pick(sc,
		[]*uts.Spec{&uts.BenchTiny},
		[]*uts.Spec{&uts.BenchTiny, &uts.BenchSmall, &uts.BenchMedium},
		[]*uts.Spec{&uts.BenchTiny, &uts.BenchSmall, &uts.BenchMedium, &uts.BenchLarge},
	)
	for _, sp := range specs {
		shares, total := uts.RootShares(sp)
		var top1, top10 int64
		for i, s := range shares {
			if i == 0 {
				top1 = s
			}
			if i < 10 {
				top10 += s
			}
		}
		eps := 1 - float64(sp.M)*sp.Q
		t.AddRow(sp.Name,
			fmt.Sprintf("%.0e", eps),
			len(shares),
			total,
			fmt.Sprintf("%.1f%%", 100*float64(top1)/float64(total)),
			fmt.Sprintf("%.1f%%", 100*float64(top10)/float64(total)))
	}
	return t, nil
}
