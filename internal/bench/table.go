// Package bench regenerates every table and figure of the paper's
// evaluation (Section 4), plus the ablations called out in DESIGN.md. Each
// experiment is a named driver that produces a Table — the textual
// equivalent of the paper's plot series — at one of three scales:
//
//	Smoke — seconds; used by the test suite to keep every driver honest.
//	Quick — a couple of minutes on one core; sharp enough to see every
//	        qualitative claim (orderings, crossovers, sweet spots).
//	Full  — tens of minutes; the largest trees and PE counts this
//	        reproduction runs, closest to the paper's operating point.
//
// Absolute efficiencies at Quick/Full run below the paper's: the paper
// explores 10.6–157 billion-node trees (tens of millions of nodes per
// processor) where this harness explores 10^5–10^8-node trees, so stealing
// overheads are amortized over far less work per processor. The *shapes* —
// which implementation wins, where the chunk-size sweet spot lies, how the
// refinements stack — are the reproduction target, and EXPERIMENTS.md
// records both sides.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated figure or table.
type Table struct {
	ID      string // experiment id, e.g. "E2"
	Title   string // paper reference, e.g. "Figure 4: ..."
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values (no quoting needed for
// the cell vocabulary this package emits).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
