package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every experiment driver at Smoke scale:
// each must produce a non-empty, well-formed table without error. This
// keeps the figure-regeneration paths from rotting.
func TestAllExperimentsSmoke(t *testing.T) {
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Smoke)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("empty table")
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(r), len(tab.Columns))
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if ByID("E2") == nil || ByID("A3") == nil {
		t.Error("known experiments not found")
	}
	if ByID("E99") != nil {
		t.Error("unknown experiment found")
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"smoke": Smoke, "quick": Quick, "": Quick, "full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestScaleString(t *testing.T) {
	if Smoke.String() != "smoke" || Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
	if Scale(9).String() == "" {
		t.Error("out-of-range scale should stringify")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "test table",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", 3.14159)
	tab.AddRow(42, "y")
	var b strings.Builder
	tab.Fprint(&b)
	out := b.String()
	for _, want := range []string{"## T — test table", "long-column", "3.14", "42", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,long-column\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "x,3.14\n") {
		t.Errorf("CSV row wrong: %q", csv)
	}
}

// TestExperimentsDeterministic re-runs a simulator-backed experiment and
// requires byte-identical tables: the whole figure pipeline is a pure
// function of its configuration.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"E2", "E0", "D1"} {
		e := ByID(id)
		a, err := e.Run(Smoke)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := e.Run(Smoke)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.CSV() != b.CSV() {
			t.Errorf("%s: two identical runs produced different tables:\n%s\nvs\n%s", id, a.CSV(), b.CSV())
		}
	}
}
