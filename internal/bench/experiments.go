package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/pgas"
	"repro/internal/stats"
	"repro/internal/uts"
)

// Scale selects the size of an experiment run.
type Scale int

const (
	// Smoke is the test-suite scale: seconds.
	Smoke Scale = iota
	// Quick is the default CLI scale: a couple of minutes.
	Quick
	// Full is the largest scale this reproduction runs.
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Smoke:
		return "smoke"
	case Quick:
		return "quick"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale converts a name to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "quick", "":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q (want smoke, quick or full)", s)
}

// pick chooses a per-scale value.
func pick[T any](sc Scale, smoke, quick, full T) T {
	switch sc {
	case Smoke:
		return smoke
	case Full:
		return full
	default:
		return quick
	}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Paper string // what in the paper this regenerates
	Run   func(sc Scale) (*Table, error)
}

// All lists every experiment in DESIGN.md's per-experiment index order.
var All = []Experiment{
	{"E0", "Sections 1-2 premise: static partitioning fails on UTS", E0StaticBaseline},
	{"E1", "Section 4.1: sequential exploration rate", E1Sequential},
	{"E2", "Figure 4: speedup & performance vs chunk size, all implementations", E2Fig4ChunkSweep},
	{"E3", "Figure 5: speedup & performance vs processor count", E3Fig5Scaling},
	{"E4", "Figure 6: shared-memory (Altix) scaling", E4Fig6SharedMem},
	{"E5", "Section 4.2: stacked refinements (~37% total improvement)", E5Refinements},
	{"E6", "Sections 1 & 6.2: steal throughput and working-state efficiency", E6Efficiency},
	{"E7", "Section 4.2.1: chunk-size sweet spot narrows with scale", E7SweetSpot},
	{"A1", "Ablation: steal-half (rapid diffusion) on/off", A1StealHalf},
	{"A2", "Ablation: mpi-ws polling interval", A2PollInterval},
	{"A3", "Ablation: lock-guarded vs lock-less stack", A3Lockless},
	{"A4", "Extension (paper §6.2 future work): locality-aware hierarchical stealing", A4Hierarchical},
	{"W1", "Workload validation: root-subtree dominance vs extinction margin", W1TreeShape},
	{"D1", "Diagnostic: diffusion of work sources over time (Section 3.3.2)", D1Diffusion},
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// chunkSweep is the chunk-size axis of Figure 4.
var chunkSweep = []int{1, 2, 4, 8, 16, 32, 64, 128}

// E1Sequential regenerates the Section 4.1 sequential-rate table: the
// paper reports 2.10M nodes/s (Topsail Xeon E5345), 2.39M (Kitty Hawk
// E5150) and 1.12M (Altix Itanium2), all dominated by SHA-1 throughput.
func E1Sequential(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Sequential exploration rate (Section 4.1)",
		Columns: []string{"tree", "rng", "nodes", "Mnodes/s"},
		Notes: []string{
			"paper: 2.10M/s (Topsail), 2.39M/s (Kitty Hawk), 1.12M/s (Altix); rate is SHA-1 bound",
		},
	}
	specs := []*uts.Spec{
		pick(sc, &uts.BenchTiny, &uts.BenchSmall, &uts.BenchMedium),
	}
	alfg := *pick(sc, &uts.BenchTiny, &uts.BenchSmall, &uts.BenchMedium)
	alfg.RNG = "ALFG"
	alfg.Name += "+alfg"
	specs = append(specs, &alfg)
	for _, sp := range specs {
		c := uts.SearchSequential(sp)
		t.AddRow(sp.Name, sp.Stream().Name(), c.Nodes, fmt.Sprintf("%.2f", c.Rate()/1e6))
	}
	return t, nil
}

// E2Fig4ChunkSweep regenerates Figure 4: all five implementations swept
// over chunk size on the Kitty Hawk profile. The paper's claims: the
// shared-memory algorithm collapses at small chunk sizes (cancelable-
// barrier and locking traffic), each refinement improves on the last, and
// upc-distmem meets or beats mpi-ws across the sweep.
func E2Fig4ChunkSweep(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	pes := pick(sc, 8, 64, 256)
	chunks := pick(sc, []int{2, 8, 32}, chunkSweep, chunkSweep)
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("Figure 4: chunk-size sweep, %d PEs, %s, kittyhawk profile", pes, tree.Name),
		Columns: []string{"impl", "chunk", "Mnodes/s", "speedup", "efficiency", "steals", "working"},
		Notes: []string{
			"paper (256 threads, 10.6B tree): upc-sharedmem degrades sharply at low chunk;",
			"upc-term, upc-term-rapdif, upc-distmem each improve; upc-distmem ≈ best across sweep",
		},
	}
	for _, alg := range core.Algorithms {
		for _, k := range chunks {
			res, err := des.Run(tree, des.Config{Algorithm: alg, PEs: pes, Chunk: k, Model: &pgas.KittyHawk})
			if err != nil {
				return nil, fmt.Errorf("%s k=%d: %w", alg, k, err)
			}
			t.AddRow(string(alg), k,
				fmt.Sprintf("%.2f", res.Rate()/1e6),
				fmt.Sprintf("%.1f", res.Speedup()),
				fmt.Sprintf("%.1f%%", 100*res.Efficiency()),
				res.Sum(func(th *stats.Thread) int64 { return th.Steals }),
				fmt.Sprintf("%.1f%%", 100*res.WorkingFraction()))
		}
	}
	return t, nil
}

// E3Fig5Scaling regenerates Figure 5: speedup and absolute performance of
// the best implementation (and mpi-ws) against processor count on the
// Topsail profile. The paper reaches speedup 819 (80% efficiency) at 1024
// processors on a 157B-node tree.
func E3Fig5Scaling(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchLarge, &uts.BenchHuge)
	peCounts := pick(sc, []int{4, 16}, []int{16, 64, 256}, []int{64, 128, 256, 512, 1024})
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("Figure 5: scaling on %s, topsail profile", tree.Name),
		Columns: []string{"impl", "PEs", "Mnodes/s", "speedup", "efficiency", "steals/s"},
		Notes: []string{
			"paper (157B tree): 1.7B nodes/s at 1024 procs, speedup 819, efficiency 80%;",
			"this tree is ~2000x smaller per PE, so efficiency rolls off earlier — see EXPERIMENTS.md",
		},
	}
	for _, alg := range []core.Algorithm{core.UPCDistMem, core.MPIWS} {
		for _, p := range peCounts {
			res, err := des.Run(tree, des.Config{Algorithm: alg, PEs: p, Chunk: 16, Model: &pgas.Topsail})
			if err != nil {
				return nil, fmt.Errorf("%s pes=%d: %w", alg, p, err)
			}
			t.AddRow(string(alg), p,
				fmt.Sprintf("%.2f", res.Rate()/1e6),
				fmt.Sprintf("%.1f", res.Speedup()),
				fmt.Sprintf("%.1f%%", 100*res.Efficiency()),
				fmt.Sprintf("%.0f", res.StealsPerSecond()))
		}
	}
	return t, nil
}

// E4Fig6SharedMem regenerates Figure 6: both UPC algorithms scale
// near-linearly on the low-latency Altix profile, with mpi-ws slightly
// behind (message-passing overheads that the hardware shared memory makes
// unnecessary).
func E4Fig6SharedMem(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	peCounts := pick(sc, []int{2, 8}, []int{2, 8, 32, 64}, []int{2, 8, 16, 32, 64})
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Figure 6: SGI Altix shared-memory scaling, %s", tree.Name),
		Columns: []string{"impl", "PEs", "Mnodes/s", "speedup", "efficiency"},
		Notes: []string{
			"paper: near-linear speedup to 64 procs for both UPC implementations; MPI lags slightly",
		},
	}
	for _, alg := range []core.Algorithm{core.UPCSharedMem, core.UPCDistMem, core.MPIWS} {
		for _, p := range peCounts {
			res, err := des.Run(tree, des.Config{Algorithm: alg, PEs: p, Chunk: 16, Model: &pgas.Altix})
			if err != nil {
				return nil, fmt.Errorf("%s pes=%d: %w", alg, p, err)
			}
			t.AddRow(string(alg), p,
				fmt.Sprintf("%.2f", res.Rate()/1e6),
				fmt.Sprintf("%.1f", res.Speedup()),
				fmt.Sprintf("%.1f%%", 100*res.Efficiency()))
		}
	}
	return t, nil
}

// E5Refinements regenerates the Section 4.2 claim that the three
// refinements stack to a ~37% total improvement over the shared-memory
// algorithm on a cluster. As in the paper's reading of Figure 4, each
// implementation is measured at its own best chunk size.
func E5Refinements(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	pes := pick(sc, 8, 64, 256)
	chunks := pick(sc, []int{4, 16}, []int{2, 4, 8, 16, 32}, []int{2, 4, 8, 16, 32})
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("Refinement stack at %d PEs (best chunk per impl), %s, kittyhawk profile", pes, tree.Name),
		Columns: []string{"impl", "best-chunk", "Mnodes/s", "speedup", "vs sharedmem", "vs previous"},
		Notes: []string{
			"paper: each refinement improves; total improvement over upc-sharedmem ≈ 37%;",
			"the smaller trees here amplify the gap (less work to amortize each overhead)",
		},
	}
	var base, prev float64
	for _, alg := range []core.Algorithm{core.UPCSharedMem, core.UPCTerm, core.UPCTermRapdif, core.UPCDistMem} {
		var best *core.Result
		bestK := 0
		for _, k := range chunks {
			res, err := des.Run(tree, des.Config{Algorithm: alg, PEs: pes, Chunk: k, Model: &pgas.KittyHawk})
			if err != nil {
				return nil, err
			}
			if best == nil || res.Rate() > best.Rate() {
				best, bestK = res, k
			}
		}
		rate := best.Rate()
		if base == 0 {
			base, prev = rate, rate
		}
		t.AddRow(string(alg), bestK,
			fmt.Sprintf("%.2f", rate/1e6),
			fmt.Sprintf("%.1f", best.Speedup()),
			fmt.Sprintf("%+.1f%%", 100*(rate/base-1)),
			fmt.Sprintf("%+.1f%%", 100*(rate/prev-1)))
		prev = rate
	}
	return t, nil
}

// E6Efficiency regenerates the headline operational numbers: >85,000 load
// balancing operations per second sustained (Section 1) and 93% of thread
// time spent in the Working state (Section 6.2).
func E6Efficiency(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchLarge, &uts.BenchHuge)
	pes := pick(sc, 8, 64, 1024)
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("Operational profile of upc-distmem at %d PEs on %s (topsail profile)", pes, tree.Name),
		Columns: []string{"metric", "value", "paper"},
	}
	res, err := des.Run(tree, des.Config{Algorithm: core.UPCDistMem, PEs: pes, Chunk: 16, Model: &pgas.Topsail})
	if err != nil {
		return nil, err
	}
	bd := res.StateBreakdown()
	t.AddRow("nodes/s", fmt.Sprintf("%.3g", res.Rate()), "1.7e9 @1024")
	t.AddRow("speedup", fmt.Sprintf("%.1f", res.Speedup()), "819 @1024")
	t.AddRow("efficiency", fmt.Sprintf("%.1f%%", 100*res.Efficiency()), "80% @1024")
	t.AddRow("steal ops/s", fmt.Sprintf("%.0f", res.StealsPerSecond()), ">85,000 @1024")
	t.AddRow("working-state time", fmt.Sprintf("%.1f%%", 100*res.WorkingFraction()), "93%")
	t.AddRow("searching time", fmt.Sprintf("%.1f%%", 100*bd[stats.Searching]), "—")
	t.AddRow("stealing time", fmt.Sprintf("%.1f%%", 100*bd[stats.Stealing]), "—")
	t.AddRow("idle/termination time", fmt.Sprintf("%.1f%%", 100*bd[stats.Idle]), "—")
	return t, nil
}

// E7SweetSpot regenerates the Section 4.2.1 observation that the range of
// good chunk sizes is a plateau that narrows as processors are added.
func E7SweetSpot(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	peCounts := pick(sc, []int{4, 8}, []int{16, 64}, []int{16, 64, 256})
	chunks := pick(sc, []int{2, 16, 128}, chunkSweep, chunkSweep)
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("Chunk-size sweet spot vs scale, upc-distmem, %s", tree.Name),
		Columns: []string{"PEs", "chunk", "Mnodes/s", "efficiency"},
		Notes: []string{
			"paper: performance forms a plateau over chunk size that falls off on both sides",
			"and becomes narrower/more sensitive as threads are added",
		},
	}
	for _, p := range peCounts {
		for _, k := range chunks {
			res, err := des.Run(tree, des.Config{Algorithm: core.UPCDistMem, PEs: p, Chunk: k, Model: &pgas.KittyHawk})
			if err != nil {
				return nil, err
			}
			t.AddRow(p, k,
				fmt.Sprintf("%.2f", res.Rate()/1e6),
				fmt.Sprintf("%.1f%%", 100*res.Efficiency()))
		}
	}
	return t, nil
}

// A1StealHalf isolates rapid diffusion (Section 3.3.2): upc-term and
// upc-term-rapdif differ only in stealing one chunk vs half the chunks.
func A1StealHalf(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	pes := pick(sc, 8, 64, 256)
	t := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("Ablation: steal-one vs steal-half at %d PEs on %s", pes, tree.Name),
		Columns: []string{"policy", "chunk", "Mnodes/s", "steals", "chunks-moved", "probes"},
	}
	for _, alg := range []core.Algorithm{core.UPCTerm, core.UPCTermRapdif} {
		label := "steal-one"
		if alg == core.UPCTermRapdif {
			label = "steal-half"
		}
		for _, k := range pick(sc, []int{4}, []int{4, 16, 64}, []int{4, 16, 64}) {
			res, err := des.Run(tree, des.Config{Algorithm: alg, PEs: pes, Chunk: k, Model: &pgas.KittyHawk})
			if err != nil {
				return nil, err
			}
			t.AddRow(label, k,
				fmt.Sprintf("%.2f", res.Rate()/1e6),
				res.Sum(func(th *stats.Thread) int64 { return th.Steals }),
				res.Sum(func(th *stats.Thread) int64 { return th.ChunksGot }),
				res.Sum(func(th *stats.Thread) int64 { return th.Probes }))
		}
	}
	return t, nil
}

// A2PollInterval sweeps the mpi-ws polling interval, the tuning parameter
// Section 3.2 highlights: polling too often wastes working time in
// MPI_Iprobe, polling too rarely delays steal responses.
func A2PollInterval(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	pes := pick(sc, 8, 64, 256)
	polls := pick(sc, []int{2, 16}, []int{1, 2, 4, 8, 16, 32, 64, 128}, []int{1, 2, 4, 8, 16, 32, 64, 128})
	t := &Table{
		ID:      "A2",
		Title:   fmt.Sprintf("Ablation: mpi-ws polling interval at %d PEs on %s", pes, tree.Name),
		Columns: []string{"poll-interval", "Mnodes/s", "efficiency", "working"},
	}
	for _, p := range polls {
		res, err := des.Run(tree, des.Config{Algorithm: core.MPIWS, PEs: pes, Chunk: 16, PollInterval: p, Model: &pgas.KittyHawk})
		if err != nil {
			return nil, err
		}
		t.AddRow(p,
			fmt.Sprintf("%.2f", res.Rate()/1e6),
			fmt.Sprintf("%.1f%%", 100*res.Efficiency()),
			fmt.Sprintf("%.1f%%", 100*res.WorkingFraction()))
	}
	return t, nil
}

// A3Lockless isolates the lock-less stack (Section 3.3.3): upc-term-rapdif
// and upc-distmem differ only in lock-guarded vs request/response stealing.
func A3Lockless(sc Scale) (*Table, error) {
	tree := pick(sc, &uts.BenchTiny, &uts.BenchMedium, &uts.BenchLarge)
	pes := pick(sc, 8, 64, 256)
	t := &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("Ablation: lock-guarded vs lock-less stack at %d PEs on %s", pes, tree.Name),
		Columns: []string{"stack", "chunk", "Mnodes/s", "working", "efficiency"},
	}
	for _, alg := range []core.Algorithm{core.UPCTermRapdif, core.UPCDistMem, core.UPCTermRelaxed} {
		label := "lock-guarded"
		switch alg {
		case core.UPCDistMem:
			label = "lock-less"
		case core.UPCTermRelaxed:
			label = "fence-free"
		}
		for _, k := range pick(sc, []int{4}, []int{2, 8, 32}, []int{2, 8, 32}) {
			res, err := des.Run(tree, des.Config{Algorithm: alg, PEs: pes, Chunk: k, Model: &pgas.KittyHawk})
			if err != nil {
				return nil, err
			}
			t.AddRow(label, k,
				fmt.Sprintf("%.2f", res.Rate()/1e6),
				fmt.Sprintf("%.1f%%", 100*res.WorkingFraction()),
				fmt.Sprintf("%.1f%%", 100*res.Efficiency()))
		}
	}
	return t, nil
}
