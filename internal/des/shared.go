package des

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/term"
	"repro/internal/uts"
)

// nodeBytes is the nominal wire size of a node descriptor, matching the
// bandwidth charging of internal/core.
const nodeBytes = 28

// sharedMode selects the refinements of the shared-memory family, exactly
// as core.sharedVariant does for the real implementation.
type sharedMode struct {
	streamTerm bool
	stealHalf  bool
	// relaxed models upc-term-relaxed (DESIGN.md §14): no lock on any
	// path — releases and reacquires cost one local reference (the slot
	// store / ledger CAS), steals cost two remote references (slot scan +
	// claim handshake) with no lock round trip, the shared region is
	// bounded at stack.RelaxedSlots chunks, and thieves do not refresh
	// the victim's workAvail (it is owner-written in the real protocol,
	// so probes can see stale positives that end in failed steals). The
	// simulator serializes all accesses on virtual time, so duplicate
	// takes never occur here: DES sweeps the protocol's cost shape, the
	// real-core backend exercises its races.
	relaxed bool
}

// simSharedRun is the per-run shared state of the simulated shared-memory
// family. All fields are mutated only by the PE currently scheduled by the
// event loop, so no synchronization is needed.
type simSharedRun struct {
	sp   *uts.Spec
	cfg  Config
	cs   costs
	mode sharedMode
	pes  []*simSharedPE

	// Cancelable barrier (Section 3.1).
	cbLock   Lock
	cbCount  int
	cbCancel bool
	cbDone   bool

	// Streamlined barrier (Section 3.3.1).
	sbCount     int
	sbAnnounced bool

	finish func(*Proc)
}

// simSharedPE is one simulated PE of the shared-memory family.
type simSharedPE struct {
	r     *simSharedRun
	p     *Proc
	me    int
	t     *stats.Thread
	lane  *obs.Lane // nil when the run is untraced
	state stats.State

	local     stack.Deque
	lock      Lock
	pool      stack.Pool
	workAvail int

	rng *core.ProbeOrder
	ex  *uts.Expander

	nodesFlushed int64              // t.Nodes already published to the lane's live counter
	ctl          *policy.Controller // nil when the run is not adaptive
	ctlNodes     int64              // t.Nodes already reported to the controller
	stolen       int                // nodes delivered by the last steal (controller feedback)
}

// flushNodes publishes node progress to the lane's live counter in
// batches at the work loop's quantum boundaries — one atomic add per
// flush, never per node.
func (pe *simSharedPE) flushNodes() {
	if d := pe.t.Nodes - pe.nodesFlushed; d != 0 {
		pe.lane.AddNodes(d)
		pe.nodesFlushed = pe.t.Nodes
	}
}

// noteCtl feeds node progress to the PE's controller stamped with virtual
// time, closing adaptation windows; a no-op for fixed-knob runs.
func (pe *simSharedPE) noteCtl() {
	if pe.ctl == nil {
		return
	}
	pe.ctl.NoteNodes(int(pe.t.Nodes-pe.ctlNodes), pe.local.Len(), int64(pe.p.Now()))
	pe.ctlNodes = pe.t.Nodes
}

// chunk returns the release granularity in effect: the adapted value under
// a controller, the configured constant otherwise.
func (pe *simSharedPE) chunk() int {
	if pe.ctl != nil {
		return pe.ctl.Chunk()
	}
	return pe.r.cfg.Chunk
}

// stealTimed brackets a steal attempt with the controller's latency probe,
// stamped with virtual time on both edges.
func (pe *simSharedPE) stealTimed(v int) bool {
	if pe.ctl == nil {
		return pe.steal(v)
	}
	pe.ctl.StealBegin(int64(pe.p.Now()))
	pe.stolen = 0
	ok := pe.steal(v)
	pe.ctl.StealEnd(ok, pe.stolen, int64(pe.p.Now()))
	return ok
}

// simShared sets up the PEs for upc-sharedmem / upc-term / upc-term-rapdif.
func simShared(sim *Sim, sp *uts.Spec, cfg Config, cs costs, res *core.Result, mode sharedMode, ps *policy.Set, finish func(*Proc)) (sampler, error) {
	r := &simSharedRun{sp: sp, cfg: cfg, cs: cs, mode: mode, finish: finish}
	r.pes = make([]*simSharedPE, cfg.PEs)
	for i := 0; i < cfg.PEs; i++ {
		pe := &simSharedPE{r: r, me: i, t: &res.Threads[i], lane: cfg.Tracer.Lane(i), rng: core.NewProbeOrder(cfg.Seed, i), ex: uts.NewExpander(sp), ctl: ps.Controller(i)}
		r.pes[i] = pe
		if i == 0 {
			pe.local.Push(uts.Root(sp))
		}
		sim.Spawn(func(p *Proc) {
			pe.p = p
			pe.main()
			r.finish(p)
		})
	}
	return func() (sources, working int) {
		for _, pe := range r.pes {
			if pe.workAvail > 0 {
				sources++
			}
			if pe.local.Len() > 0 || pe.pool.Len() > 0 {
				working++
			}
		}
		return
	}, nil
}

// advance consumes virtual time, charging it to the PE's current state.
func (pe *simSharedPE) advance(d time.Duration) {
	pe.t.AddState(pe.state, d)
	pe.p.Advance(d)
}

// charge books d of virtual time against the PE's current state without
// advancing the clock — used by step functions, where the engine advances.
func (pe *simSharedPE) charge(d time.Duration) time.Duration {
	pe.t.AddState(pe.state, d)
	return d
}

// rec records an event stamped with the PE's current virtual time.
func (pe *simSharedPE) rec(k obs.Kind, other int32, value int64) {
	pe.lane.RecV(k, other, value, pe.p.Now())
}

// setState pairs the stats state charge target with the tracer's state
// event.
func (pe *simSharedPE) setState(s stats.State) {
	pe.state = s
	pe.rec(obs.KindStateChange, -1, int64(s))
}

// acquire/release wrap the virtual lock with affinity-dependent costs and
// charge the queueing wait to the current state.
func (pe *simSharedPE) acquire(l *Lock, cost time.Duration) {
	before := pe.p.Now()
	pe.p.Acquire(l, cost)
	pe.t.AddState(pe.state, pe.p.Now()-before)
}

func (pe *simSharedPE) release(l *Lock, cost time.Duration) {
	before := pe.p.Now()
	pe.p.Release(l, cost)
	pe.t.AddState(pe.state, pe.p.Now()-before)
}

func (pe *simSharedPE) main() {
	pe.rec(obs.KindStateChange, -1, int64(stats.Working))
	for {
		pe.work()
		if pe.r.mode.streamTerm {
			pe.workAvail = -1
		}
		pe.setState(stats.Searching)
		if pe.search() {
			pe.setState(stats.Working)
			continue
		}
		pe.setState(stats.Idle)
		pe.t.TermBarrierEntries++
		pe.rec(obs.KindTermEnter, -1, 0)
		if pe.terminate() {
			return
		}
		pe.rec(obs.KindTermExit, -1, 0)
		pe.setState(stats.Working)
	}
}

// work explores nodes as one stepped advance: each quantum is a batch of
// node work, ending the advance at the 2k release threshold and when the
// local region drains — the lock-protected release/reacquire manipulations
// run on the PE's own goroutine between advances, at the same virtual
// instants as the original per-batch loop. Thieves of this family take
// from the pool under the victim's lock rather than posting requests, so
// no boundary ever needs an interrupt check.
func (pe *simSharedPE) work() {
	cs := &pe.r.cs
	k := pe.chunk()
	batch := pe.r.cfg.Batch
	pending := 0
	thresholdHit := false
	step := func() (time.Duration, uint8) {
		for {
			n, ok := pe.local.Pop()
			if !ok {
				d := time.Duration(pending) * cs.nodeCost
				pending = 0
				pe.flushNodes()
				return pe.charge(d), StepDone
			}
			pending++
			pe.t.Nodes++
			if n.NumKids == 0 {
				pe.t.Leaves++
			} else {
				pe.local.PushAll(pe.ex.Children(&n))
			}
			pe.t.NoteDepth(pe.local.Len())
			// Under the relaxed mode the shared region is a bounded ring:
			// when it is full the release is skipped (back-pressure) and
			// the PE keeps exploring locally instead of ending the batch.
			if pe.local.Len() >= 2*k && !(pe.r.mode.relaxed && pe.pool.Len() >= stack.RelaxedSlots) {
				thresholdHit = true
				d := time.Duration(pending) * cs.nodeCost
				pending = 0
				return pe.charge(d), StepDone
			}
			if pending >= batch {
				d := time.Duration(pending) * cs.nodeCost
				pending = 0
				pe.flushNodes()
				pe.noteCtl()
				k = pe.chunk()
				return pe.charge(d), 0
			}
		}
	}
	for {
		pe.p.AdvanceStepped(step)
		pe.noteCtl()
		k = pe.chunk()
		if thresholdHit {
			thresholdHit = false
			pe.releaseChunk(k)
			continue
		}
		if !pe.reacquire() {
			return
		}
	}
}

// releaseChunk moves k nodes into the PE's shared region under its own
// lock — where the owner can be delayed behind queued remote thieves, the
// interference Section 3.3.3 eliminates — and, under the shared-memory
// algorithm, resets the cancelable barrier.
func (pe *simSharedPE) releaseChunk(k int) {
	cs := &pe.r.cs
	chunk := pe.local.TakeBottom(k)
	if pe.r.mode.relaxed {
		// Fence-free publish: one local store into the ring slot, no lock
		// round trip at all — the owner-path saving the variant exists for.
		pe.advance(cs.localRef)
		pe.pool.Put(chunk)
		pe.workAvail = pe.pool.Len()
		pe.t.Releases++
		pe.rec(obs.KindRelease, -1, int64(pe.workAvail))
		return
	}
	pe.acquire(&pe.lock, cs.localRef)
	pe.advance(cs.localRef) // in-lock pointer updates, local affinity
	pe.pool.Put(chunk)
	pe.workAvail = pe.pool.Len()
	pe.release(&pe.lock, cs.localRef)
	pe.t.Releases++
	pe.rec(obs.KindRelease, -1, int64(pe.workAvail))
	if !pe.r.mode.streamTerm {
		pe.cbCancelOp()
	}
}

func (pe *simSharedPE) reacquire() bool {
	cs := &pe.r.cs
	if pe.r.mode.relaxed {
		// Fence-free retract: the ledger compare-and-swap on the owner's
		// own partition, no lock.
		pe.advance(cs.localRef)
		c, ok := pe.pool.TakeNewest()
		if !ok {
			return false
		}
		pe.workAvail = pe.pool.Len()
		pe.t.Reacquires++
		pe.rec(obs.KindReacquire, -1, int64(len(c)))
		pe.local.PushAll(c)
		return true
	}
	pe.acquire(&pe.lock, cs.localRef)
	pe.advance(cs.localRef) // in-lock pointer updates, local affinity
	c, ok := pe.pool.TakeNewest()
	if ok {
		pe.workAvail = pe.pool.Len()
	}
	pe.release(&pe.lock, cs.localRef)
	if !ok {
		return false
	}
	pe.t.Reacquires++
	pe.rec(obs.KindReacquire, -1, int64(len(c)))
	pe.local.PushAll(c)
	return true
}

func (pe *simSharedPE) search() bool {
	r := pe.r
	n := len(r.pes)
	if n == 1 {
		return false
	}
	var walk core.ProbeWalk
	sawWorker := false
	stealFrom := -1
	exhausted := false
	newWalk := func() {
		walk = pe.rng.Walk(pe.me, n)
		sawWorker = false
	}
	newWalk()
	probing := false
	victim := -1
	// Each quantum is one probe's remote reference; the evaluation happens
	// at the probe's completion instant inside the next step call.
	step := func() (time.Duration, uint8) {
		if probing {
			probing = false
			pe.t.Probes++
			wa := pe.r.pes[victim].workAvail
			pe.rec(obs.KindProbeResult, int32(victim), int64(wa))
			if wa > 0 {
				sawWorker = true
				stealFrom = victim
				return 0, StepDone
			}
			if wa >= 0 {
				sawWorker = true
			}
			walk.Advance()
			if walk.Exhausted() {
				if !r.mode.streamTerm || !sawWorker {
					exhausted = true
					return 0, StepDone
				}
				newWalk()
			}
		}
		victim = walk.Victim()
		pe.rec(obs.KindProbeStart, int32(victim), 0)
		probing = true
		return pe.charge(pe.r.cs.remoteRef), 0
	}
	for {
		pe.p.AdvanceStepped(step)
		if exhausted {
			return false
		}
		v := stealFrom
		stealFrom = -1
		pe.setState(stats.Stealing)
		ok := pe.stealTimed(v)
		pe.setState(stats.Searching)
		pe.noteCtl()
		if ok {
			return true
		}
		walk.Advance()
		if walk.Exhausted() {
			if !r.mode.streamTerm || !sawWorker {
				return false
			}
			newWalk()
		}
		probing = false
	}
}

func (pe *simSharedPE) steal(v int) bool {
	r := pe.r
	cs := &r.cs
	vs := r.pes[v]
	pe.rec(obs.KindStealRequest, int32(v), 0)
	if r.mode.relaxed {
		return pe.stealRelaxed(v)
	}
	pe.acquire(&vs.lock, cs.lockRTT)
	// The reservation manipulates the victim's stack pointers remotely
	// while holding the lock — this is the hold period during which the
	// paper observes working threads being delayed by thieves.
	pe.advance(2 * cs.remoteRef)
	half := r.mode.stealHalf
	if pe.ctl != nil {
		half = pe.ctl.StealHalf()
	}
	var chunks []stack.Chunk
	if half {
		chunks = vs.pool.TakeHalf()
	} else if c, ok := vs.pool.TakeOldest(); ok {
		chunks = append(chunks, c)
	}
	if len(chunks) > 0 {
		vs.workAvail = vs.pool.Len()
	}
	pe.release(&vs.lock, cs.lockRTT)
	if len(chunks) == 0 {
		pe.t.FailedSteals++
		pe.rec(obs.KindStealFail, int32(v), 0)
		return false
	}

	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	pe.advance(cs.bulk(total * nodeBytes))
	pe.t.Steals++
	pe.t.ChunksGot += int64(len(chunks))
	pe.stolen = total
	pe.rec(obs.KindChunkTransfer, int32(v), int64(total))

	pe.local.PushAll(chunks[0])
	if len(chunks) > 1 {
		pe.acquire(&pe.lock, cs.localRef)
		for _, c := range chunks[1:] {
			pe.pool.Put(c)
		}
		pe.workAvail = pe.pool.Len()
		pe.release(&pe.lock, cs.localRef)
	} else if r.mode.streamTerm {
		pe.workAvail = 0
	}
	return true
}

// stealRelaxed models the fence-free claim: a one-sided scan of the
// victim's slot words plus the claim-marker store and ledger CAS — two
// remote references with no lock round trip. The thief does not refresh
// the victim's workAvail (owner-written in the real protocol), so stale
// positives persist until the victim's next own operation and show up
// here, as on real cores, as failed steals. Virtual-time serialization
// means the ledger CAS never loses: DES runs carry zero duplicate takes.
func (pe *simSharedPE) stealRelaxed(v int) bool {
	r := pe.r
	cs := &r.cs
	vs := r.pes[v]
	pe.advance(2 * cs.remoteRef) // slot scan + claim handshake
	c, ok := vs.pool.TakeOldest()
	if !ok {
		pe.t.FailedSteals++
		pe.rec(obs.KindStealFail, int32(v), 0)
		return false
	}
	pe.advance(cs.bulk(len(c) * nodeBytes))
	pe.t.Steals++
	pe.t.ChunksGot++
	pe.stolen = len(c)
	pe.rec(obs.KindChunkTransfer, int32(v), int64(len(c)))
	pe.local.PushAll(c)
	if r.mode.streamTerm {
		pe.workAvail = 0
	}
	return true
}

// lockCost is the cancelable barrier's lock cost: its state has affinity
// to PE 0.
func (pe *simSharedPE) barrierLockCost() time.Duration {
	if pe.me == 0 {
		return pe.r.cs.localRef
	}
	return pe.r.cs.lockRTT
}

// cbEnter mirrors term.CancelBarrier.Enter under virtual time, including
// the remote spinning on the cancellation/termination flags.
// barrierFlagCost is the in-lock flag-manipulation cost of the cancelable
// barrier: local for PE 0, one remote reference otherwise.
func (pe *simSharedPE) barrierFlagCost() time.Duration {
	if pe.me == 0 {
		return pe.r.cs.localRef
	}
	return pe.r.cs.remoteRef
}

func (pe *simSharedPE) cbEnter() bool {
	r := pe.r
	pe.acquire(&r.cbLock, pe.barrierLockCost())
	pe.advance(pe.barrierFlagCost())
	r.cbCount++
	if r.cbCount == len(r.pes) {
		r.cbDone = true
	}
	pe.release(&r.cbLock, pe.barrierLockCost())

	// Remote flag spin, batched: one quantum per check interval, executed
	// inline by the engine while no earlier event intervenes.
	pe.p.AdvanceStepped(func() (time.Duration, uint8) {
		if r.cbCancel || r.cbDone {
			return 0, StepDone
		}
		return pe.charge(pe.r.cs.remoteRef), 0
	})

	pe.acquire(&r.cbLock, pe.barrierLockCost())
	pe.advance(pe.barrierFlagCost())
	if r.cbDone {
		pe.release(&r.cbLock, pe.barrierLockCost())
		return true
	}
	r.cbCount--
	r.cbCancel = false
	pe.release(&r.cbLock, pe.barrierLockCost())
	return false
}

// cbCancelOp mirrors term.CancelBarrier.Cancel: a remote lock round trip
// on every release, the dominant overhead of the shared-memory algorithm
// at small chunk sizes (Section 4.2.1).
func (pe *simSharedPE) cbCancelOp() {
	r := pe.r
	pe.acquire(&r.cbLock, pe.barrierLockCost())
	pe.advance(pe.barrierFlagCost())
	if r.cbCount > 0 && !r.cbDone {
		r.cbCancel = true
	}
	pe.release(&r.cbLock, pe.barrierLockCost())
}

// sbEnter mirrors term.StreamBarrier.Enter: one remote reference, and the
// last arrival pays the log-depth tree announcement.
func (pe *simSharedPE) sbEnter() bool {
	r := pe.r
	pe.advance(r.cs.remoteRef)
	r.sbCount++
	if r.sbCount == len(r.pes) {
		if lv := term.AnnounceLevels(len(r.pes)); lv > 0 {
			pe.advance(time.Duration(lv) * r.cs.remoteRef)
		}
		r.sbAnnounced = true
		return true
	}
	return false
}

func (pe *simSharedPE) terminate() bool {
	r := pe.r
	if !r.mode.streamTerm {
		return pe.cbEnter()
	}
	if pe.sbEnter() {
		return true
	}
	n := len(r.pes)
	announced := false
	stealFrom := -1
	victim := -1
	const (
		tAnn = iota
		tCheck
		tEval
	)
	ph := tAnn
	// Each in-barrier iteration: pay the announcement-flag poll, check it,
	// probe a victim, evaluate — all inline while no earlier event lands.
	step := func() (time.Duration, uint8) {
		switch ph {
		case tAnn:
			ph = tCheck
			return pe.charge(r.cs.remoteRef), 0
		case tCheck:
			if r.sbAnnounced {
				announced = true
				return 0, StepDone
			}
			victim = pe.rng.Victim(pe.me, n)
			pe.rec(obs.KindProbeStart, int32(victim), 0)
			ph = tEval
			return pe.charge(pe.r.cs.remoteRef), 0
		default: // tEval
			pe.t.Probes++
			wa := pe.r.pes[victim].workAvail
			pe.rec(obs.KindProbeResult, int32(victim), int64(wa))
			ph = tAnn
			if wa > 0 {
				stealFrom = victim
				return 0, StepDone
			}
			return 0, 0
		}
	}
	for {
		pe.p.AdvanceStepped(step)
		if announced {
			return true
		}
		v := stealFrom
		stealFrom = -1
		if r.sbAnnounced {
			return true
		}
		pe.advance(r.cs.remoteRef) // leave the barrier
		r.sbCount--
		pe.setState(stats.Stealing)
		ok := pe.stealTimed(v)
		pe.setState(stats.Idle)
		if ok {
			return false
		}
		if pe.sbEnter() {
			return true
		}
		ph = tAnn
	}
}
