// Package des is a deterministic discrete-event simulator that runs the
// paper's work-stealing protocols at cluster scale (hundreds to thousands
// of processing elements) on a single machine.
//
// Each simulated PE executes the *same protocol logic* as the real
// goroutine implementations in internal/core — real UTS nodes are
// generated, real stacks are manipulated, real steal/termination decisions
// are taken — but time is virtual: exploring a node costs Model.NodeCost,
// a remote reference costs Model.RemoteRef, a lock acquisition queues
// behind the current holder, and so on. Because the event loop is
// sequential and tie-broken deterministically, a simulation is an exact
// function of (tree spec, algorithm, machine profile, seed): every figure
// regenerated from it is bit-reproducible.
//
// The simulator is process-oriented: each PE is a goroutine whose
// execution is interleaved one-at-a-time by the event loop. A PE calls
// Proc.Advance to consume virtual time, Proc.Block/Proc.Wake for
// sleep/wakeup (used by lock queues), and otherwise manipulates shared
// simulation state freely — exactly one PE runs at any instant, so there
// are no data races by construction.
//
// # Engines
//
// Two engines implement that contract. The batched engine (the default,
// New) dispatches events by baton passing: control moves from the event
// queue to a PE and back through a single buffered channel send, the event
// queue is a flat 4-ary indexed min-heap of value-typed entries, an
// Advance whose deadline precedes every queued event commits inline
// without touching the heap or parking the goroutine, and protocol loops
// expressed as step functions (AdvanceStepped) run entirely inside the
// dispatcher with zero goroutine switches. The legacy engine (NewLegacy)
// keeps the original two-channel wake/park handshake and boxed
// container/heap queue; it exists as the bit-identical reference for the
// differential tests and benchmarks. Both engines execute the same events
// in the same order — Sim.Events counts identically — they differ only in
// how cheaply a boundary is reached.
package des

import (
	"fmt"
	"time"
)

// Sim is one simulation instance.
type Sim struct {
	heap     flatHeap
	pend     ev    // parked event awaiting the dispatcher, if hasPend
	hasPend  bool  // see park: fuses the park-then-dispatch heap traffic
	now      int64 // virtual time, ns
	nprocs   int
	finished int
	stuck    bool
	events   uint64

	doneCh chan error
	err    error

	remote RemoteApply // remote-operation interpreter (remote.go)

	legacy bool
	lheap  evHeap // legacy engine's boxed queue (legacy.go)

	eng *shardEngine // sharded engine, nil under the sequential ones (sharded.go)
}

// New creates an empty simulation using the batched engine.
func New() *Sim { return &Sim{} }

// NewLegacy creates an empty simulation using the legacy reference engine:
// the original two-channel wake/park handshake with a boxed container/heap
// event queue. It executes the exact same schedule as the batched engine
// and exists so differential tests and benchmarks can compare against it.
func NewLegacy() *Sim { return &Sim{legacy: true} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return time.Duration(s.now) }

// Events returns the number of simulated-time boundaries executed so far:
// every Advance and every stepped-advance quantum with nonzero duration
// counts once, whether it was reached through the event queue or committed
// inline. The count is engine-independent — the batched and legacy engines
// report the same number for the same run — so events/second measures pure
// engine overhead.
func (s *Sim) Events() uint64 { return s.events }

// Intr is a bitmask of typed interrupts posted to a PE. A thief posts
// IntrSteal after claiming a victim's request word; the victim's engine
// observes the mask at its next quantized polling boundary, exactly where
// the per-node polling of the real implementation would have seen the
// request word.
type Intr uint32

// IntrSteal signals a pending steal request on the PE's request word.
const IntrSteal Intr = 1 << 0

// Step flags returned by a Stepper alongside the quantum duration.
const (
	// StepDone ends the stepped advance; AdvanceStepped returns 0.
	StepDone uint8 = 1 << 0
	// StepNoPoll suppresses the interrupt check at this quantum's
	// boundary — used for boundaries where the original protocol had no
	// service point, keeping the batched schedule bit-identical.
	StepNoPoll uint8 = 1 << 1
)

// Stepper yields one quantum of a stepped advance: the virtual duration to
// consume and the flags governing the boundary it creates. Step functions
// may freely read and write simulation state (exactly one PE runs at any
// instant) but must not call Advance, Block, or lock operations — they
// execute in dispatcher context, possibly on another PE's goroutine.
type Stepper func() (time.Duration, uint8)

// procStatus is what a parked PE asked for (legacy engine).
type procStatus int

const (
	statusRunnable procStatus = iota // wants to run again after a delay
	statusBlocked                    // waits for an explicit Wake
	statusFinished                   // body returned
)

// Proc is the simulator-side handle of one PE.
type Proc struct {
	id  int
	sim *Sim

	// Batched engine: the single handoff channel (capacity 1, so a PE
	// popping its own next event can self-deliver), the pending interrupt
	// mask, and the parked stepped advance, if any.
	ch     chan Intr
	intr   Intr
	stepFn Stepper
	stepFl uint8

	// seq numbers this proc's scheduled resumptions; the (t, id, seq) key
	// orders the event queue identically under every engine.
	seq uint64

	// Legacy engine: two-channel wake/park handshake.
	wake   chan struct{}
	park   chan struct{}
	status procStatus
	delay  int64

	// Sharded engine: owning shard (nil under the sequential engines), the
	// staged remote-operation slots of the current quantum, and the
	// rendezvous-stall state (sharded.go). heldT/heldLive describe a proc
	// stalled at a boundary awaiting pendReplies rendezvous replies;
	// callRes receives a RemoteCall's reply.
	sh          *shard
	staged      [2]stagedOp
	nstag       int
	heldT       int64
	heldLive    bool
	pendReplies int32
	callRes     int64
}

// ID returns the PE number.
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time (valid only while running). Under
// the sharded engine this is the owning shard's clock.
func (p *Proc) Now() time.Duration {
	if p.sh != nil {
		return time.Duration(p.sh.now)
	}
	return time.Duration(p.sim.now)
}

// Post sets interrupt bits on p. The poster is another PE (or the
// simulation setup); p observes the mask at its next polling boundary.
func (p *Proc) Post(m Intr) { p.intr |= m }

// ClearIntr clears interrupt bits on p. Protocol service routines call it
// when they consume the underlying request through a direct check, so a
// stale mask cannot trigger a second service.
func (p *Proc) ClearIntr(m Intr) { p.intr &^= m }

// Spawn registers a PE with the given body, scheduled to start at virtual
// time zero. Must be called before Run.
func (s *Sim) Spawn(body func(p *Proc)) *Proc {
	p := &Proc{id: s.nprocs, sim: s}
	s.nprocs++
	if s.eng != nil {
		p.ch = make(chan Intr, 1)
		eng := s.eng
		eng.pending = append(eng.pending, p)
		go func() {
			<-p.ch // shard assignment (assign) happens before this send
			body(p)
			sh := p.sh
			sh.finished++
			if sh.finished == sh.nprocs {
				eng.shardDone()
			}
			sh.dispatch()
		}()
		return p
	}
	if s.legacy {
		p.wake = make(chan struct{})
		p.park = make(chan struct{})
		go func() {
			<-p.wake
			body(p)
			p.status = statusFinished
			p.park <- struct{}{}
		}()
	} else {
		p.ch = make(chan Intr, 1)
		go func() {
			<-p.ch
			body(p)
			s.finished++
			s.dispatch()
		}()
	}
	s.schedule(p, 0)
	return p
}

// schedule enqueues a run event for p at virtual time t.
func (s *Sim) schedule(p *Proc, t int64) {
	p.seq++
	if s.legacy {
		s.lheap.push(ev{t: t, seq: p.seq, p: p})
	} else {
		s.heap.push(ev{t: t, seq: p.seq, p: p})
	}
}

// park records p's resume event without pushing it: every park site hands
// control straight to the dispatcher, which consumes the pending event via
// next — one heap exchange (single sift-down) instead of a push/pop pair.
// The sequence number comes from the proc's own counter, exactly as
// schedule would have drawn it, so tie-breaks are unchanged.
//
//uts:noalloc
func (s *Sim) park(p *Proc, t int64) {
	p.seq++
	s.pend = ev{t: t, seq: p.seq, p: p}
	s.hasPend = true
}

// next yields the globally minimal event: the pending parked event fused
// against the heap root, or a plain pop. A parked event can never precede
// the root (the park condition required the root's key to order at or
// before the parked event's (t, id, seq) key), so the pending slot always
// goes through exchange when the heap is nonempty.
//
//uts:noalloc
func (s *Sim) next() (ev, bool) {
	if s.hasPend {
		s.hasPend = false
		if len(s.heap.a) == 0 {
			return s.pend, true
		}
		return s.heap.exchange(s.pend), true
	}
	return s.heap.pop()
}

// Run executes the simulation until every spawned PE has finished. It
// returns an error if the event queue drains while PEs are still blocked —
// a protocol deadlock, which the test suite treats as a hard failure.
func (s *Sim) Run() error {
	if s.eng != nil {
		return s.eng.run()
	}
	if s.legacy {
		return s.runLegacy()
	}
	s.doneCh = make(chan error, 1)
	s.dispatch()
	return <-s.doneCh
}

// dispatch pops events until control is handed to a PE goroutine or the
// queue drains. Exactly one goroutine executes engine code at any moment:
// either Run's caller or the PE that just yielded; every transfer of
// control is one buffered-channel send, which is also the happens-before
// edge that makes lock-free sharing of all simulation state sound.
//
//uts:noalloc
func (s *Sim) dispatch() {
	for {
		e, ok := s.next()
		if !ok {
			if s.finished != s.nprocs {
				s.stuck = true
				//uts:ok noalloc deadlock teardown: the simulation is over once this error is built
				s.err = fmt.Errorf("des: deadlock: %d of %d PEs still blocked at t=%v", s.nprocs-s.finished, s.nprocs, s.Now())
			}
			s.doneCh <- s.err
			return
		}
		s.now = e.t
		s.events++
		p := e.p
		if p.stepFn != nil {
			if s.contStep(p) {
				return
			}
			continue
		}
		p.ch <- 0
		return
	}
}

// contStep resumes a parked stepped advance at its boundary, in dispatcher
// context. It applies the boundary's flags, then keeps stepping inline —
// committing quanta that precede every queued event without any heap or
// channel traffic — until the advance ends (control is handed to the PE's
// goroutine; returns true) or a quantum collides with the queue and is
// rescheduled (returns false: the dispatcher keeps going).
//
//uts:noalloc
func (s *Sim) contStep(p *Proc) bool {
	fl := p.stepFl
	for {
		if p.nstag > 0 {
			p.runStaged()
		}
		if fl&StepDone != 0 {
			p.stepFn = nil
			p.ch <- 0
			return true
		}
		if fl&StepNoPoll == 0 && p.intr != 0 {
			m := p.intr
			p.intr = 0
			p.stepFn = nil
			p.ch <- m
			return true
		}
		var d time.Duration
		d, fl = p.stepFn()
		if d > 0 {
			t := s.now + int64(d)
			if !s.heap.empty() && !s.heap.rootAfter(t, p.id) {
				p.stepFl = fl
				s.park(p, t)
				return false
			}
			s.now = t
			s.events++
		}
	}
}

// Advance consumes d of virtual time: the PE resumes once the clock
// reaches now+d. When the deadline's (t, id, seq) key strictly precedes
// every queued event the clock commits inline — no heap traffic, no
// goroutine switch. Otherwise the smaller-keyed queued event must run
// first, exactly as if this PE had parked and been popped in key order,
// so skipping the queue preserves the schedule. Negative delays are
// treated as zero.
//
//uts:noalloc
func (p *Proc) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if p.sh != nil {
		p.shardAdvance(d)
		return
	}
	s := p.sim
	if s.legacy {
		p.legacyAdvance(int64(d))
		return
	}
	t := s.now + int64(d)
	if s.heap.empty() || s.heap.rootAfter(t, p.id) {
		s.now = t
		s.events++
		return
	}
	s.park(p, t)
	p.yield()
}

// AdvanceStepped consumes virtual time one quantum at a time, calling step
// for each. After a quantum with duration d the clock stands exactly at
// the quantum's boundary; there the engine applies the returned flags:
// StepDone ends the advance (returns 0), and — unless StepNoPoll is set —
// a pending interrupt mask ends it too (returns the mask, cleared). A
// zero-duration quantum creates no event but still gets its boundary
// flags applied, mirroring the zero-pending flush of the protocol loops.
//
// The first step executes before any interrupt check, matching protocols
// that explore before polling. Quanta run inline while their boundary
// precedes every queued event; otherwise the PE parks and the dispatcher
// continues the same step sequence in place, so a whole batch of node
// work, probes, or idle polls costs zero goroutine switches.
//
//uts:noalloc
func (p *Proc) AdvanceStepped(step Stepper) Intr {
	if p.sh != nil {
		return p.shardAdvanceStepped(step)
	}
	s := p.sim
	if s.legacy {
		return p.legacyAdvanceStepped(step)
	}
	for {
		d, fl := step()
		if d > 0 {
			t := s.now + int64(d)
			if !s.heap.empty() && !s.heap.rootAfter(t, p.id) {
				p.stepFn = step
				p.stepFl = fl
				s.park(p, t)
				return p.yield()
			}
			s.now = t
			s.events++
		}
		if p.nstag > 0 {
			p.runStaged()
		}
		if fl&StepDone != 0 {
			return 0
		}
		if fl&StepNoPoll == 0 && p.intr != 0 {
			m := p.intr
			p.intr = 0
			return m
		}
	}
}

// yield hands control to the dispatcher and blocks until an event (or a
// finished stepped advance) hands it back, delivering the interrupt mask
// that ended a stepped advance, or 0.
//
//uts:noalloc
func (p *Proc) yield() Intr {
	p.sim.dispatch()
	return <-p.ch
}

// Block parks the PE until another PE calls Wake on it.
func (p *Proc) Block() {
	if p.sh != nil {
		p.shardYield()
		return
	}
	if p.sim.legacy {
		p.legacyBlock()
		return
	}
	p.yield()
}

// Wake schedules a blocked PE q to resume at the current virtual time plus
// d. Calling Wake on a PE that is not blocked corrupts the schedule; the
// lock discipline in this package is the only caller. Under the sharded
// engine waker and woken must share a shard: Block/Wake handoffs carry no
// lookahead, so the run configuration must keep lock-coupled PEs together
// (run.go forces one shard for the shared-memory family).
func (p *Proc) Wake(q *Proc, d time.Duration) {
	if sh := p.sh; sh != nil {
		if q.sh != sh {
			panic("des: cross-shard Wake — zero-lookahead handoffs must stay within one shard")
		}
		q.seq++
		sh.heap.push(sev{t: sh.now + int64(d), pid: int32(q.id), seq: q.seq, p: q, kind: seProc})
		return
	}
	p.sim.schedule(q, p.sim.now+int64(d))
}

// ev is one scheduled resumption, ordered by the key (t, proc ID, per-proc
// seq). The key is *shard-computable*: no component depends on a global
// counter, so the sharded engine can merge events arriving from concurrent
// shards into exactly the order a sequential engine would have executed
// them — the foundation of the sharded/batched bit-identity proof (see
// DESIGN.md §12). Within one proc the seq keeps its resumptions FIFO;
// across procs a time tie resolves by proc ID, which is deterministic
// under every engine.
type ev struct {
	t   int64
	seq uint64
	p   *Proc
}

func evLess(a, b ev) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.p.id != b.p.id {
		return a.p.id < b.p.id
	}
	return a.seq < b.seq
}

// flatHeap is a flat 4-ary indexed min-heap of value-typed events: no
// interface boxing, no per-push allocation beyond slice growth, and a
// shallower tree than a binary heap — sift-downs touch ~half as many
// levels, which matters because pop is the engine's hottest operation.
type flatHeap struct {
	a []ev
}

func (h *flatHeap) empty() bool { return len(h.a) == 0 }
func (h *flatHeap) minT() int64 { return h.a[0].t }

// rootAfter reports whether the heap minimum orders strictly after a
// would-be event of proc id at time t — the inline-commit condition. A
// proc has at most one outstanding resumption, so the (t, id) prefix of
// the key can never tie exactly against a queued event and the seq
// component need not be consulted.
//
//uts:noalloc
func (h *flatHeap) rootAfter(t int64, id int) bool {
	r := &h.a[0]
	if r.t != t {
		return r.t > t
	}
	return r.p.id > id
}

//uts:noalloc
func (h *flatHeap) push(e ev) {
	h.a = append(h.a, e) //uts:ok noalloc amortized slice growth; steady-state pushes reuse the backing array
	a := h.a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !evLess(e, a[parent]) {
			break
		}
		a[i] = a[parent]
		i = parent
	}
	a[i] = e
}

//uts:noalloc
func (h *flatHeap) pop() (ev, bool) {
	n := len(h.a)
	if n == 0 {
		return ev{}, false
	}
	top := h.a[0]
	n--
	h.a[0] = h.a[n]
	h.a[n] = ev{}
	h.a = h.a[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top, true
}

// exchange replaces the minimum with e and returns it, restoring heap
// order with a single sift-down. It is the fused form of push(e)+pop()
// for the engine's hottest pattern — a PE parks and the dispatcher
// immediately needs the next event — valid whenever e orders at-or-after
// the current root, which the park condition guarantees.
//
//uts:noalloc
func (h *flatHeap) exchange(e ev) ev {
	top := h.a[0]
	h.a[0] = e
	h.siftDown(0)
	return top
}

// siftDown restores heap order below i by hole insertion: the displaced
// element is held aside while smaller children move up, then written once
// at its final slot — half the memory traffic of swapping at every level.
//
//uts:noalloc
func (h *flatHeap) siftDown(i int) {
	a := h.a
	n := len(a)
	e := a[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if evLess(a[j], a[m]) {
				m = j
			}
		}
		if !evLess(a[m], e) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = e
}

// Lock is a virtual-time mutex with FIFO queueing. Contention behaves as
// on real hardware: a PE that requests a held lock waits for every earlier
// requester — this is how the simulator reproduces the paper's observation
// that remote thieves can keep a victim's stack locked for long stretches.
// The waiter queue is a ring buffer with O(1) enqueue and dequeue, so a
// long thief queue costs nothing beyond the queueing delay it models.
type Lock struct {
	held bool
	q    []*Proc // ring buffer of waiters
	head int
	n    int
}

func (l *Lock) enqueue(p *Proc) {
	if l.n == len(l.q) {
		size := 2 * len(l.q)
		if size < 4 {
			size = 4
		}
		grown := make([]*Proc, size)
		for i := 0; i < l.n; i++ {
			grown[i] = l.q[(l.head+i)%len(l.q)]
		}
		l.q, l.head = grown, 0
	}
	l.q[(l.head+l.n)%len(l.q)] = p
	l.n++
}

func (l *Lock) dequeue() *Proc {
	p := l.q[l.head]
	l.q[l.head] = nil
	l.head = (l.head + 1) % len(l.q)
	l.n--
	return p
}

// Acquire takes the lock, first consuming cost (the acquisition RTT), then
// queueing behind the current holder if necessary.
//
//uts:noalloc
func (p *Proc) Acquire(l *Lock, cost time.Duration) {
	p.Advance(cost)
	if !l.held {
		l.held = true
		return
	}
	l.enqueue(p)
	p.Block()
	// Woken by Release with the lock already assigned to us.
}

// Release hands the lock to the oldest waiter, if any, and consumes cost
// (the release RTT) on the calling PE.
//
//uts:noalloc
func (p *Proc) Release(l *Lock, cost time.Duration) {
	if !l.held {
		panic("des: release of unheld lock")
	}
	if l.n > 0 {
		p.Wake(l.dequeue(), 0) // lock stays held, now by next
	} else {
		l.held = false
	}
	p.Advance(cost)
}
