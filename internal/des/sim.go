// Package des is a deterministic discrete-event simulator that runs the
// paper's work-stealing protocols at cluster scale (hundreds to thousands
// of processing elements) on a single machine.
//
// Each simulated PE executes the *same protocol logic* as the real
// goroutine implementations in internal/core — real UTS nodes are
// generated, real stacks are manipulated, real steal/termination decisions
// are taken — but time is virtual: exploring a node costs Model.NodeCost,
// a remote reference costs Model.RemoteRef, a lock acquisition queues
// behind the current holder, and so on. Because the event loop is
// sequential and tie-broken deterministically, a simulation is an exact
// function of (tree spec, algorithm, machine profile, seed): every figure
// regenerated from it is bit-reproducible.
//
// The simulator is process-oriented: each PE is a goroutine whose
// execution is interleaved one-at-a-time by the event loop. A PE calls
// Proc.Advance to consume virtual time, Proc.Block/Proc.Wake for
// sleep/wakeup (used by lock queues), and otherwise manipulates shared
// simulation state freely — exactly one PE runs at any instant, so there
// are no data races by construction.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Sim is one simulation instance.
type Sim struct {
	events   evHeap
	seq      uint64
	now      int64 // virtual time, ns
	nprocs   int
	finished int
	stuck    bool
}

// New creates an empty simulation.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return time.Duration(s.now) }

// procStatus is what a parked PE asked for.
type procStatus int

const (
	statusRunnable procStatus = iota // wants to run again after a delay
	statusBlocked                    // waits for an explicit Wake
	statusFinished                   // body returned
)

// Proc is the simulator-side handle of one PE.
type Proc struct {
	id     int
	sim    *Sim
	wake   chan struct{}
	park   chan struct{}
	status procStatus
	delay  int64
}

// ID returns the PE number.
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time (valid only while running).
func (p *Proc) Now() time.Duration { return time.Duration(p.sim.now) }

// Spawn registers a PE with the given body, scheduled to start at virtual
// time zero. Must be called before Run.
func (s *Sim) Spawn(body func(p *Proc)) *Proc {
	p := &Proc{id: s.nprocs, sim: s, wake: make(chan struct{}), park: make(chan struct{})}
	s.nprocs++
	go func() {
		<-p.wake
		body(p)
		p.status = statusFinished
		p.park <- struct{}{}
	}()
	s.schedule(p, 0)
	return p
}

// schedule enqueues a run event for p at virtual time t.
func (s *Sim) schedule(p *Proc, t int64) {
	s.seq++
	heap.Push(&s.events, ev{t: t, seq: s.seq, p: p})
}

// Run executes the simulation until every spawned PE has finished. It
// returns an error if the event queue drains while PEs are still blocked —
// a protocol deadlock, which the test suite treats as a hard failure.
func (s *Sim) Run() error {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(ev)
		if e.t < s.now {
			return fmt.Errorf("des: time went backwards (%d < %d)", e.t, s.now)
		}
		s.now = e.t
		e.p.wake <- struct{}{}
		<-e.p.park
		switch e.p.status {
		case statusRunnable:
			s.schedule(e.p, s.now+e.p.delay)
		case statusBlocked:
			// Another PE must Wake it later.
		case statusFinished:
			s.finished++
		}
	}
	if s.finished != s.nprocs {
		s.stuck = true
		return fmt.Errorf("des: deadlock: %d of %d PEs still blocked at t=%v",
			s.nprocs-s.finished, s.nprocs, s.Now())
	}
	return nil
}

// Advance consumes d of virtual time: the PE is descheduled and resumes
// once the clock reaches now+d. Negative delays are treated as zero.
func (p *Proc) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.status = statusRunnable
	p.delay = int64(d)
	p.park <- struct{}{}
	<-p.wake
}

// Block parks the PE until another PE calls Wake on it.
func (p *Proc) Block() {
	p.status = statusBlocked
	p.park <- struct{}{}
	<-p.wake
}

// Wake schedules a blocked PE q to resume at the current virtual time plus
// d. Calling Wake on a PE that is not blocked corrupts the schedule; the
// lock discipline in this package is the only caller.
func (p *Proc) Wake(q *Proc, d time.Duration) {
	p.sim.schedule(q, p.sim.now+int64(d))
}

// ev is one scheduled resumption.
type ev struct {
	t   int64
	seq uint64
	p   *Proc
}

// evHeap is a min-heap on (t, seq); the seq tie-break makes simultaneous
// events fire in FIFO order, keeping runs deterministic.
type evHeap []ev

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x interface{}) { *h = append(*h, x.(ev)) }
func (h *evHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Lock is a virtual-time mutex with FIFO queueing. Contention behaves as
// on real hardware: a PE that requests a held lock waits for every earlier
// requester — this is how the simulator reproduces the paper's observation
// that remote thieves can keep a victim's stack locked for long stretches.
type Lock struct {
	held  bool
	queue []*Proc
}

// Acquire takes the lock, first consuming cost (the acquisition RTT), then
// queueing behind the current holder if necessary.
func (p *Proc) Acquire(l *Lock, cost time.Duration) {
	p.Advance(cost)
	if !l.held {
		l.held = true
		return
	}
	l.queue = append(l.queue, p)
	p.Block()
	// Woken by Release with the lock already assigned to us.
}

// Release hands the lock to the oldest waiter, if any, and consumes cost
// (the release RTT) on the calling PE.
func (p *Proc) Release(l *Lock, cost time.Duration) {
	if !l.held {
		panic("des: release of unheld lock")
	}
	if len(l.queue) > 0 {
		next := l.queue[0]
		copy(l.queue, l.queue[1:])
		l.queue = l.queue[:len(l.queue)-1]
		p.Wake(next, 0) // lock stays held, now by next
	} else {
		l.held = false
	}
	p.Advance(cost)
}
