package des

import (
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// simMsg is one in-flight message: visible to the receiver once virtual
// time reaches arriveAt. The inbox is kept sorted by (sentAt, from) — the
// order in which a sequential engine executes the sends — so the sharded
// engine, whose deliveries apply at the arrival instant rather than the
// send instant, reconstructs exactly the sequential receive order.
type simMsg struct {
	arriveAt time.Duration
	sentAt   time.Duration
	from     int
	tag      msg.Tag
	chunks   []stack.Chunk
	color    msg.Color
}

// opMPIDeliver is the protocol's single remote operation: insert a message
// into rank dst's inbox. a packs (from, tag, color), b is the send-complete
// stamp; the arrival stamp is recomputed from the payload size, and
// visibility is gated on it by recv/hasArrived — the contract RemoteSend
// requires of delayed effects.
const opMPIDeliver uint8 = 0

func (r *simMPIRun) apply(dst int, op uint8, a, b int64, chunks []stack.Chunk) int64 {
	pe := r.pes[dst]
	size := 16
	for _, c := range chunks {
		size += nodeBytes * len(c)
	}
	m := simMsg{
		sentAt:   time.Duration(b),
		arriveAt: time.Duration(b) + r.cs.bulk(size),
		from:     int(a & 0xffffffff),
		tag:      msg.Tag((a >> 32) & 0xff),
		chunks:   chunks,
		color:    msg.Color((a >> 40) & 0xff),
	}
	// Sorted insert by (sentAt, from). Under the sequential engines sends
	// apply in exactly that order, so this is an append; under the sharded
	// engine a small message can be delivered before an earlier-sent bulky
	// one, and the insert restores send order.
	i := len(pe.inbox)
	pe.inbox = append(pe.inbox, simMsg{})
	for i > 0 && (pe.inbox[i-1].sentAt > m.sentAt ||
		(pe.inbox[i-1].sentAt == m.sentAt && pe.inbox[i-1].from > m.from)) {
		pe.inbox[i] = pe.inbox[i-1]
		i--
	}
	pe.inbox[i] = m
	return 0
}

// simMPIRun is the run state of the simulated mpi-ws baseline.
type simMPIRun struct {
	sp     *uts.Spec
	cfg    Config
	cs     costs
	pes    []*simMPIPE
	finish func(*Proc)
}

// simMPIPE is one simulated MPI rank.
type simMPIPE struct {
	r     *simMPIRun
	p     *Proc
	me    int
	t     *stats.Thread
	lane  *obs.Lane // nil when the run is untraced
	state stats.State

	local stack.Deque
	inbox []simMsg
	ex    *uts.Expander
	rng   *core.ProbeOrder

	color       msg.Color
	haveToken   bool
	tokenColor  msg.Color
	firstPass   bool
	outstanding bool
	terminated  bool

	nodesFlushed int64              // t.Nodes already published to the lane's live counter
	ctl          *policy.Controller // nil when the run is not adaptive
	ctlNodes     int64              // t.Nodes already reported to the controller
}

// flushNodes publishes node progress to the lane's live counter in
// batches at the explore phase's poll boundaries — one atomic add per
// flush, never per node.
func (pe *simMPIPE) flushNodes() {
	if d := pe.t.Nodes - pe.nodesFlushed; d != 0 {
		pe.lane.AddNodes(d)
		pe.nodesFlushed = pe.t.Nodes
	}
}

// noteCtl feeds node progress to the rank's controller stamped with
// virtual time, closing adaptation windows; a no-op for fixed-knob runs.
func (pe *simMPIPE) noteCtl() {
	if pe.ctl == nil {
		return
	}
	pe.ctl.NoteNodes(int(pe.t.Nodes-pe.ctlNodes), pe.local.Len(), int64(pe.p.Now()))
	pe.ctlNodes = pe.t.Nodes
}

// chunk returns the grant granularity in effect: the adapted value under
// a controller, the configured constant otherwise.
func (pe *simMPIPE) chunk() int {
	if pe.ctl != nil {
		return pe.ctl.Chunk()
	}
	return pe.r.cfg.Chunk
}

// pollIntv returns the poll interval in effect.
func (pe *simMPIPE) pollIntv() int {
	if pe.ctl != nil {
		return pe.ctl.Poll()
	}
	return pe.r.cfg.PollInterval
}

func simMPIWS(sim *Sim, sp *uts.Spec, cfg Config, cs costs, res *core.Result, ps *policy.Set, finish func(*Proc)) (sampler, error) {
	r := &simMPIRun{sp: sp, cfg: cfg, cs: cs, finish: finish}
	sim.SetRemote(r.apply)
	r.pes = make([]*simMPIPE, cfg.PEs)
	for i := 0; i < cfg.PEs; i++ {
		pe := &simMPIPE{r: r, me: i, t: &res.Threads[i], lane: cfg.Tracer.Lane(i), rng: core.NewProbeOrder(cfg.Seed, i), ex: uts.NewExpander(sp), ctl: ps.Controller(i)}
		r.pes[i] = pe
		if i == 0 {
			pe.local.Push(uts.Root(sp))
			pe.haveToken = true
			pe.tokenColor = msg.Black
			pe.firstPass = true
		}
		sim.Spawn(func(p *Proc) {
			pe.p = p
			pe.main()
			r.finish(p)
		})
	}
	return func() (sources, working int) {
		for _, pe := range r.pes {
			// An MPI rank is a work source when it has enough stack to
			// satisfy a request (the 2k surplus rule of handle()).
			if pe.local.Len() >= 2*r.cfg.Chunk {
				sources++
			}
			if pe.local.Len() > 0 {
				working++
			}
		}
		return
	}, nil
}

func (pe *simMPIPE) advance(d time.Duration) {
	pe.t.AddState(pe.state, d)
	pe.p.Advance(d)
}

// charge books d of virtual time against the rank's current state without
// advancing the clock — used by step functions, where the engine advances.
func (pe *simMPIPE) charge(d time.Duration) time.Duration {
	pe.t.AddState(pe.state, d)
	return d
}

// rec records an event stamped with the rank's current virtual time.
func (pe *simMPIPE) rec(k obs.Kind, other int32, value int64) {
	pe.lane.RecV(k, other, value, pe.p.Now())
}

// setState pairs the stats state charge target with the tracer's state
// event.
func (pe *simMPIPE) setState(s stats.State) {
	pe.state = s
	pe.rec(obs.KindStateChange, -1, int64(s))
}

// send charges the sender the injection overhead and delivers the message
// after the transfer latency.
func (pe *simMPIPE) send(to int, tag msg.Tag, chunks []stack.Chunk, color msg.Color) {
	size := 16
	for _, c := range chunks {
		size += nodeBytes * len(c)
	}
	adv := pe.r.cs.localRef // injection overhead
	pe.t.AddState(pe.state, adv)
	a := int64(uint32(pe.me)) | int64(tag)<<32 | int64(color)<<40
	b := int64(pe.p.Now() + adv)
	pe.p.RemoteSend(to, adv, pe.r.cs.bulk(size), opMPIDeliver, a, b, chunks)
}

// recv returns the oldest message that has arrived by now.
func (pe *simMPIPE) recv() (simMsg, bool) {
	now := pe.p.Now()
	for i, m := range pe.inbox {
		if m.arriveAt <= now {
			pe.inbox = append(pe.inbox[:i], pe.inbox[i+1:]...)
			return m, true
		}
	}
	return simMsg{}, false
}

// hasArrived reports whether any inbox message is visible at the current
// instant, without consuming it — the step-function form of a failed recv.
func (pe *simMPIPE) hasArrived() bool {
	now := pe.p.Now()
	for _, m := range pe.inbox {
		if m.arriveAt <= now {
			return true
		}
	}
	return false
}

func (pe *simMPIPE) main() {
	pe.rec(obs.KindStateChange, -1, int64(stats.Working))
	for !pe.terminated {
		if pe.local.Len() > 0 {
			pe.work()
		} else {
			pe.idle()
		}
	}
}

// work explores nodes as one stepped advance: each cycle is a quantum of
// up to PollInterval nodes followed by a quantum for the MPI_Iprobe check,
// all committed inline while no message event intervenes. The advance
// ends when a message has arrived (handled on the rank's own goroutine,
// because replies send) or when the stack drains after its trailing probe.
func (pe *simMPIPE) work() {
	cs := &pe.r.cs
	poll := pe.pollIntv()
	pending := 0
	const (
		wExplore = iota
		wIprobe
		wEval
	)
	ph := wExplore
	atPoll := false // this cycle's iprobe is the in-loop drain at since>=poll
	done := false
	step := func() (time.Duration, uint8) {
		switch ph {
		case wExplore:
			atPoll = false
			for pe.local.Len() > 0 && !pe.terminated {
				n, _ := pe.local.Pop()
				pending++
				pe.t.Nodes++
				if n.NumKids == 0 {
					pe.t.Leaves++
				} else {
					pe.local.PushAll(pe.ex.Children(&n))
				}
				pe.t.NoteDepth(pe.local.Len())
				if pending >= poll {
					atPoll = true
					break
				}
			}
			d := time.Duration(pending) * cs.nodeCost
			pending = 0
			pe.flushNodes()
			pe.noteCtl()
			poll = pe.pollIntv()
			ph = wIprobe
			return pe.charge(d), 0
		case wIprobe:
			// MPI_Iprobe costs library time on every check.
			ph = wEval
			return pe.charge(cs.iprobe), 0
		default: // wEval
			if pe.hasArrived() {
				return 0, StepDone
			}
			if pe.ctl != nil {
				pe.ctl.NotePoll(0) // an iprobe that found nothing
			}
			if atPoll && pe.local.Len() > 0 && !pe.terminated {
				ph = wExplore
				return 0, 0
			}
			if atPoll {
				// The loop exits here; the trailing flush is empty, but its
				// drain still pays one more iprobe.
				atPoll = false
				ph = wIprobe
				return 0, 0
			}
			done = true
			return 0, StepDone
		}
	}
	for {
		pe.p.AdvanceStepped(step)
		if done {
			return
		}
		// A message arrived: consume it and keep draining exactly as the
		// original loop — one iprobe charge per further check.
		m, _ := pe.recv()
		pe.handle(m)
		got := 1
		for {
			pe.advance(cs.iprobe)
			m, ok := pe.recv()
			if !ok {
				break
			}
			got++
			pe.handle(m)
		}
		if pe.ctl != nil {
			pe.ctl.NotePoll(got)
		}
		if !atPoll {
			// The drain that saw the message was the trailing one.
			return
		}
		if pe.local.Len() > 0 && !pe.terminated {
			ph = wExplore
			continue
		}
		// Stack drained (or terminated) at an in-loop poll: run the
		// trailing drain's iprobe before returning.
		atPoll = false
		ph = wIprobe
	}
}

func (pe *simMPIPE) handle(m simMsg) {
	switch m.tag {
	case msg.TagStealRequest:
		pe.t.Requests++
		k := pe.chunk()
		if pe.local.Len() >= 2*k {
			chunk := pe.local.TakeBottom(k)
			pe.color = msg.Black
			pe.t.Releases++
			pe.rec(obs.KindStealGrant, int32(m.from), 1)
			pe.send(m.from, msg.TagWork, []stack.Chunk{chunk}, 0)
		} else {
			if pe.ctl != nil && pe.local.Len() > 0 {
				// Denied while holding work: victim-side evidence that the
				// 2k grant threshold is withholding work from demand.
				pe.ctl.NoteDenied()
			}
			pe.rec(obs.KindStealDeny, int32(m.from), 0)
			pe.send(m.from, msg.TagNoWork, nil, 0)
		}
	case msg.TagWork:
		pe.outstanding = false
		pe.t.Steals++
		pe.t.ChunksGot += int64(len(m.chunks))
		total := 0
		for _, c := range m.chunks {
			total += len(c)
			pe.local.PushAll(c)
		}
		if pe.ctl != nil {
			pe.ctl.StealEnd(true, total, int64(pe.p.Now()))
		}
		pe.rec(obs.KindChunkTransfer, int32(m.from), int64(total))
	case msg.TagNoWork:
		pe.outstanding = false
		pe.t.FailedSteals++
		if pe.ctl != nil {
			pe.ctl.StealEnd(false, 0, int64(pe.p.Now()))
		}
		pe.rec(obs.KindStealFail, int32(m.from), 0)
	case msg.TagToken:
		pe.haveToken = true
		pe.tokenColor = m.color
	case msg.TagTerminate:
		pe.terminated = true
	}
}

func (pe *simMPIPE) idle() {
	pe.setState(stats.Searching)
	defer pe.setState(stats.Working)
	// The wait for a response or the token is a stepped advance: one
	// idle-poll quantum per check, committed inline until a message
	// arrival event lands in the window.
	wait := func() (time.Duration, uint8) {
		if pe.hasArrived() {
			return 0, StepDone
		}
		return pe.charge(pe.r.cs.idlePoll), 0
	}
	for pe.local.Len() == 0 && !pe.terminated {
		if m, ok := pe.recv(); ok {
			pe.handle(m)
			continue
		}
		if len(pe.r.pes) == 1 {
			pe.terminated = true
			return
		}
		// Passive here: no work, nothing visible in the inbox.
		if pe.haveToken && !pe.outstanding {
			pe.passToken()
			continue
		}
		if !pe.outstanding {
			v := pe.rng.Victim(pe.me, len(pe.r.pes))
			pe.t.Probes++
			if pe.ctl != nil {
				pe.ctl.StealBegin(int64(pe.p.Now()))
			}
			pe.rec(obs.KindStealRequest, int32(v), 0)
			pe.send(v, msg.TagStealRequest, nil, 0)
			pe.outstanding = true
			continue
		}
		pe.p.AdvanceStepped(wait)
		pe.noteCtl()
	}
}

func (pe *simMPIPE) passToken() {
	pe.haveToken = false
	n := len(pe.r.pes)
	if pe.me == 0 {
		if !pe.firstPass && pe.tokenColor == msg.White && pe.color == msg.White {
			for j := 1; j < n; j++ {
				pe.send(j, msg.TagTerminate, nil, 0)
			}
			pe.terminated = true
			return
		}
		pe.firstPass = false
		pe.color = msg.White
		pe.send(1%n, msg.TagToken, nil, msg.White)
		return
	}
	c := pe.tokenColor
	if pe.color == msg.Black {
		c = msg.Black
	}
	pe.color = msg.White
	pe.send((pe.me+1)%n, msg.TagToken, nil, c)
}
