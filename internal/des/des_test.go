package des

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pgas"
	"repro/internal/stats"
	"repro/internal/uts"
)

var desSeqCache = map[string]uts.Count{}

func seqCount(t *testing.T, sp *uts.Spec) uts.Count {
	t.Helper()
	if c, ok := desSeqCache[sp.Name]; ok {
		return c
	}
	c := uts.SearchSequential(sp)
	desSeqCache[sp.Name] = c
	return c
}

func checkCounts(t *testing.T, sp *uts.Spec, res *core.Result) {
	t.Helper()
	want := seqCount(t, sp)
	if got := res.Nodes(); got != want.Nodes {
		t.Errorf("%s/%s: nodes = %d, want %d", res.Algorithm, sp.Name, got, want.Nodes)
	}
	if got := res.Leaves(); got != want.Leaves {
		t.Errorf("%s/%s: leaves = %d, want %d", res.Algorithm, sp.Name, got, want.Leaves)
	}
}

func TestSimulatedCountsMatchSequential(t *testing.T) {
	for _, alg := range core.Algorithms {
		for _, pes := range []int{1, 2, 7, 16} {
			res, err := Run(&uts.BenchTiny, Config{Algorithm: alg, PEs: pes, Chunk: 4})
			if err != nil {
				t.Fatalf("%s/%d PEs: %v", alg, pes, err)
			}
			checkCounts(t, &uts.BenchTiny, res)
		}
	}
}

func TestSimulatedTreeFamilies(t *testing.T) {
	for _, alg := range core.Algorithms {
		for _, sp := range []*uts.Spec{&uts.GeoLinear, &uts.Balanced3x7, &uts.HybridSmall} {
			res, err := Run(sp, Config{Algorithm: alg, PEs: 8, Chunk: 8})
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, sp.Name, err)
			}
			checkCounts(t, sp, res)
		}
	}
}

func TestSimulationDeterministic(t *testing.T) {
	run := func() (*core.Result, error) {
		return Run(&uts.BenchTiny, Config{Algorithm: core.UPCDistMem, PEs: 12, Chunk: 4, Seed: 3})
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("makespans differ: %v vs %v", a.Elapsed, b.Elapsed)
	}
	for i := range a.Threads {
		if a.Threads[i].Nodes != b.Threads[i].Nodes || a.Threads[i].Steals != b.Threads[i].Steals {
			t.Fatalf("PE %d: per-PE stats differ across identical runs", i)
		}
	}
}

func TestSimulatedSpeedupScales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-PE simulations")
	}
	// Virtual speedup on an unbalanced tree must grow substantially with
	// PE count for the paper's best algorithm.
	var prev float64
	for _, pes := range []int{1, 4, 16} {
		res, err := Run(&uts.BenchSmall, Config{Algorithm: core.UPCDistMem, PEs: pes, Chunk: 16})
		if err != nil {
			t.Fatal(err)
		}
		checkCounts(t, &uts.BenchSmall, res)
		s := res.Speedup()
		if s < prev {
			t.Errorf("speedup fell from %.2f to %.2f going to %d PEs", prev, s, pes)
		}
		prev = s
	}
	if prev < 8 {
		t.Errorf("16-PE speedup = %.2f, want >= 8 (50%% efficiency)", prev)
	}
}

func TestSimulatedSinglePERateMatchesModel(t *testing.T) {
	// With one PE there is no communication: virtual rate must equal the
	// model's sequential rate almost exactly.
	res, err := Run(&uts.BenchTiny, Config{Algorithm: core.UPCDistMem, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	eff := res.Rate() / res.SeqRate
	if eff < 0.95 || eff > 1.05 {
		t.Errorf("single-PE efficiency = %.3f, want ~1.0", eff)
	}
}

func TestSimulatedZeroLatencyModelSafe(t *testing.T) {
	// A zero-cost model must not hang the event loop (costs are clamped
	// to 1ns).
	m := pgas.Model{Name: "zero"}
	res, err := Run(&uts.Balanced3x7, Config{Algorithm: core.UPCSharedMem, PEs: 4, Chunk: 4, Model: &m})
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, &uts.Balanced3x7, res)
}

func TestSimulatedStatsPopulated(t *testing.T) {
	res, err := Run(&uts.BenchTiny, Config{Algorithm: core.UPCDistMem, PEs: 8, Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum(func(th *stats.Thread) int64 { return th.Steals }) == 0 {
		t.Error("no steals recorded on an 8-PE unbalanced run")
	}
	if res.Elapsed <= 0 {
		t.Error("no virtual makespan")
	}
	bd := res.StateBreakdown()
	if bd[stats.Working] <= 0 { // Working fraction
		t.Error("no working time recorded")
	}
	if res.WorkingFraction() <= 0.2 {
		t.Errorf("working fraction %.2f suspiciously low", res.WorkingFraction())
	}
}

func TestSimulatedChunkExtremes(t *testing.T) {
	for _, alg := range core.Algorithms {
		for _, k := range []int{1, 64} {
			res, err := Run(&uts.BenchTiny, Config{Algorithm: alg, PEs: 6, Chunk: k})
			if err != nil {
				t.Fatalf("%s k=%d: %v", alg, k, err)
			}
			checkCounts(t, &uts.BenchTiny, res)
		}
	}
}

func TestSimulatedManyPEsSmallTree(t *testing.T) {
	// More PEs than chunks of work: most PEs never get any; termination
	// must still be clean for every protocol.
	for _, alg := range core.Algorithms {
		res, err := Run(&uts.Balanced3x7, Config{Algorithm: alg, PEs: 64, Chunk: 8})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkCounts(t, &uts.Balanced3x7, res)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(&uts.BenchTiny, Config{Algorithm: "bogus"}); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if _, err := Run(&uts.BenchTiny, Config{Algorithm: core.Sequential}); err == nil {
		t.Error("sequential is not simulatable")
	}
	if _, err := Run(&uts.BenchTiny, Config{PEs: -2}); err == nil {
		t.Error("negative PEs accepted")
	}
	if _, err := Run(&uts.BenchTiny, Config{Chunk: -1}); err == nil {
		t.Error("negative chunk accepted")
	}
	bad := uts.Spec{Kind: uts.Binomial, B0: 3, M: 2, Q: 0.8}
	if _, err := Run(&bad, Config{}); err == nil {
		t.Error("supercritical spec accepted")
	}
}

func TestCostClamping(t *testing.T) {
	cs := newCosts(&pgas.Model{})
	if cs.remoteRef < time.Nanosecond || cs.localRef < time.Nanosecond ||
		cs.nodeCost < time.Nanosecond || cs.lockRTT < time.Nanosecond {
		t.Error("zero costs not clamped")
	}
	cs = newCosts(&pgas.KittyHawk)
	if cs.lockRTT != pgas.KittyHawk.LockRTT || cs.remoteRef != pgas.KittyHawk.RemoteRef {
		t.Error("non-zero costs altered by clamping")
	}
	if cs.bulk(1024) != cs.remoteRef+pgas.KittyHawk.PerKB {
		t.Errorf("bulk(1KiB) = %v", cs.bulk(1024))
	}
}

func TestSimulatedHierarchical(t *testing.T) {
	for _, alg := range []core.Algorithm{core.UPCDistMem, core.UPCDistMemHier} {
		res, err := Run(&uts.BenchTiny, Config{
			Algorithm: alg, PEs: 16, Chunk: 4,
			Model: &pgas.Topsail, NodeSize: 4, Intra: &pgas.Altix,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkCounts(t, &uts.BenchTiny, res)
	}
}

func TestSimulatedHierWithoutTopologyMatchesFlat(t *testing.T) {
	// With no NodeSize the hier variant must produce the identical
	// deterministic schedule as plain distmem.
	a, err := Run(&uts.BenchTiny, Config{Algorithm: core.UPCDistMem, PEs: 8, Chunk: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(&uts.BenchTiny, Config{Algorithm: core.UPCDistMemHier, PEs: 8, Chunk: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("flat vs hier-without-topology makespans differ: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestRunTraced(t *testing.T) {
	res, tr, err := RunTraced(&uts.BenchTiny, Config{
		Algorithm: core.UPCTermRapdif, PEs: 8, Chunk: 4,
	}, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, &uts.BenchTiny, res)
	if len(tr.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	// Samples are time-ordered and cover the run.
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].T < tr.Samples[i-1].T {
			t.Fatal("samples out of order")
		}
	}
	if last := tr.Samples[len(tr.Samples)-1].T; last < res.Elapsed-tr.Interval {
		t.Errorf("sampling stopped at %v, before makespan %v", last, res.Elapsed)
	}
	// Work sources must have been observed at some point on an 8-PE run.
	if tr.TimeToSources(1) < 0 {
		t.Error("never observed a single work source")
	}
	if tr.TimeToSources(1000) != -1 {
		t.Error("TimeToSources(1000) should be 'never'")
	}
	if _, _, err := RunTraced(&uts.BenchTiny, Config{}, 0); err == nil {
		t.Error("zero trace interval accepted")
	}
}

func TestSimulatedExtensionCountsMatch(t *testing.T) {
	res, err := Run(&uts.GeoLinear, Config{
		Algorithm: core.UPCDistMemHier, PEs: 12, Chunk: 8,
		Model: &pgas.Topsail, NodeSize: 3, Intra: &pgas.Altix,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, &uts.GeoLinear, res)
}

func TestSimulatedStaticBaseline(t *testing.T) {
	res, err := Run(&uts.BenchTiny, Config{Algorithm: core.Static, PEs: 8, Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, &uts.BenchTiny, res)
	// Static partitioning of a critical tree: virtual speedup must be far
	// from linear (the paper's premise).
	if s := res.Speedup(); s > 4 {
		t.Errorf("static speedup %.1f on 8 PEs is implausibly good", s)
	}
	// On a tree big enough to amortize steal costs, work stealing must beat
	// static partitioning decisively.
	staticBig, err := Run(&uts.BenchSmall, Config{Algorithm: core.Static, PEs: 8, Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	stealBig, err := Run(&uts.BenchSmall, Config{Algorithm: core.UPCDistMem, PEs: 8, Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stealBig.Speedup() <= 1.5*staticBig.Speedup() {
		t.Errorf("work stealing (%.1f) should decisively beat static partitioning (%.1f)",
			stealBig.Speedup(), staticBig.Speedup())
	}
}

// TestPaperShapeRegression pins the paper's central qualitative claims at
// a deterministic mid-size configuration, so any change to the protocols
// or the cost model that breaks a headline result fails loudly:
//
//  1. upc-sharedmem collapses at small chunk sizes (Figure 4);
//  2. the refinements are ordered: term < rapdif-or-equal < distmem at
//     small chunks;
//  3. upc-distmem beats static partitioning by a wide margin.
func TestPaperShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size simulations")
	}
	rate := func(alg core.Algorithm, chunk int) float64 {
		res, err := Run(&uts.BenchSmall, Config{Algorithm: alg, PEs: 32, Chunk: chunk, Model: &pgas.KittyHawk})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkCounts(t, &uts.BenchSmall, res)
		return res.Rate()
	}
	sharedK2 := rate(core.UPCSharedMem, 2)
	termK2 := rate(core.UPCTerm, 2)
	distK2 := rate(core.UPCDistMem, 2)
	if !(sharedK2 < termK2 && termK2 < distK2) {
		t.Errorf("refinement ordering broken at chunk 2: sharedmem=%.2gM term=%.2gM distmem=%.2gM",
			sharedK2/1e6, termK2/1e6, distK2/1e6)
	}
	if distK2 < 3*sharedK2 {
		t.Errorf("sharedmem low-chunk collapse missing: distmem=%.2gM only %.1fx sharedmem=%.2gM",
			distK2/1e6, distK2/sharedK2, sharedK2/1e6)
	}
	staticRate := rate(core.Static, 2)
	if distK2 < 2*staticRate {
		t.Errorf("work stealing (%.2gM) should far exceed static partitioning (%.2gM)",
			distK2/1e6, staticRate/1e6)
	}
}

// TestSeedSweepAllProtocols fuzzes the protocol interleavings: every
// algorithm, many probe-order seeds, counts must match exactly every time.
func TestSeedSweepAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	algs := append(append([]core.Algorithm{}, core.Algorithms...), core.UPCDistMemHier, core.Static, core.UPCTermRelaxed)
	for _, alg := range algs {
		for seed := int64(0); seed < 8; seed++ {
			res, err := Run(&uts.BenchTiny, Config{Algorithm: alg, PEs: 11, Chunk: 3, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", alg, seed, err)
			}
			checkCounts(t, &uts.BenchTiny, res)
		}
	}
}

// TestSimulatedRelaxedCounts sweeps the relaxed fence-free variant across
// PE counts: exact counts always, faster-or-equal makespan than upc-term
// at the same scale (the protocol exists to shed the lock round trips),
// and zero duplicate takes — the simulator serializes every access on
// virtual time, so the ledger CAS can never lose (DESIGN.md §14).
func TestSimulatedRelaxedCounts(t *testing.T) {
	for _, pes := range []int{1, 2, 16, 64} {
		res, err := Run(&uts.BenchTiny, Config{Algorithm: core.UPCTermRelaxed, PEs: pes, Chunk: 4})
		if err != nil {
			t.Fatalf("%d PEs: %v", pes, err)
		}
		checkCounts(t, &uts.BenchTiny, res)
		if d := res.Sum(func(th *stats.Thread) int64 { return th.DuplicateTakes }); d != 0 {
			t.Errorf("%d PEs: %d duplicate takes in a serialized simulation", pes, d)
		}
		lock, err := Run(&uts.BenchTiny, Config{Algorithm: core.UPCTerm, PEs: pes, Chunk: 4})
		if err != nil {
			t.Fatalf("upc-term/%d PEs: %v", pes, err)
		}
		if res.Elapsed > lock.Elapsed {
			t.Errorf("%d PEs: relaxed makespan %v exceeds lock-based %v", pes, res.Elapsed, lock.Elapsed)
		}
	}
}

// TestPathologicalCostModel stresses the event loop with extreme cost
// ratios: locks five orders of magnitude above node cost must slow the
// lock-dependent protocols but never wedge or corrupt them.
func TestPathologicalCostModel(t *testing.T) {
	nasty := pgas.Model{
		Name:      "nasty",
		LocalRef:  time.Nanosecond,
		RemoteRef: 50 * time.Microsecond,
		PerKB:     100 * time.Microsecond,
		LockRTT:   10 * time.Millisecond,
		NodeCost:  100 * time.Nanosecond,
	}
	for _, alg := range core.Algorithms {
		res, err := Run(&uts.Balanced3x7, Config{Algorithm: alg, PEs: 5, Chunk: 4, Model: &nasty})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkCounts(t, &uts.Balanced3x7, res)
	}
}

func TestTuneChunk(t *testing.T) {
	cfg := Config{Algorithm: core.UPCDistMem, PEs: 8, Model: &pgas.KittyHawk}
	best, results, err := TuneChunk(&uts.BenchTiny, cfg, []int{2, 16, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results for %d candidates", len(results))
	}
	for k, res := range results { //uts:ok detcheck assertion sweep; pass/fail is order-independent
		checkCounts(t, &uts.BenchTiny, res)
		if res.Rate() > results[best].Rate() {
			t.Errorf("chunk %d (%.2gM/s) beats reported best %d (%.2gM/s)",
				k, res.Rate()/1e6, best, results[best].Rate()/1e6)
		}
	}
	// Default candidate axis.
	best, results, err = TuneChunk(&uts.Balanced3x7, Config{Algorithm: core.UPCTerm, PEs: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 || results[best] == nil {
		t.Errorf("default sweep produced %d results", len(results))
	}
	if _, _, err := TuneChunk(&uts.Balanced3x7, cfg, []int{0}); err == nil {
		t.Error("chunk candidate 0 accepted")
	}
}

// TestTuneBestCandidate pins the sweep's best-candidate selection against
// the two regressions TuneChunk used to have: a NaN rate poisoning the
// `>` comparison (every candidate after the NaN silently lost), and ties
// broken by candidate order rather than deterministically toward the
// smaller chunk.
func TestTuneBestCandidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name  string
		cands []int
		rates map[int]float64
		want  int
	}{
		{"plain-max", []int{1, 2, 4}, map[int]float64{1: 10, 2: 30, 4: 20}, 2},
		{"nan-skipped", []int{1, 2, 4}, map[int]float64{1: 10, 2: nan, 4: 20}, 4},
		{"nan-first", []int{1, 2}, map[int]float64{1: nan, 2: 5}, 2},
		{"inf-skipped", []int{1, 2, 4}, map[int]float64{1: inf, 2: 30, 4: 20}, 2},
		{"neg-inf-skipped", []int{1, 2}, map[int]float64{1: math.Inf(-1), 2: 1}, 2},
		{"tie-smaller-chunk", []int{8, 2, 4}, map[int]float64{8: 30, 2: 30, 4: 30}, 2},
		{"tie-after-nan", []int{16, 4}, map[int]float64{16: nan, 4: nan}, 0},
		{"all-nonfinite", []int{1, 2}, map[int]float64{1: nan, 2: inf}, 0},
		{"zero-rate-wins-over-none", []int{1}, map[int]float64{1: 0}, 1},
	}
	for _, tc := range cases {
		if got := bestCandidate(tc.cands, tc.rates); got != tc.want {
			t.Errorf("%s: bestCandidate = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestInBarrierStealPathExercised pins configurations in which the rare
// Section 3.3.1 race actually occurs — threads reach the termination
// barrier while work remains, probe from inside it, and leave to steal —
// and verifies the protocol stays exact through it. The barrier-entry
// count exceeding the PE count is the witness that the path ran (the
// simulator is deterministic, so these witnesses are stable).
func TestInBarrierStealPathExercised(t *testing.T) {
	cases := []struct {
		alg  core.Algorithm
		pes  int
		seed int64
	}{
		{core.UPCTerm, 16, 3},
		{core.UPCTerm, 32, 9},
		{core.UPCDistMem, 32, 0},
	}
	for _, tc := range cases {
		res, err := Run(&uts.BenchTiny, Config{Algorithm: tc.alg, PEs: tc.pes, Chunk: 1, Seed: tc.seed})
		if err != nil {
			t.Fatalf("%s/%d/%d: %v", tc.alg, tc.pes, tc.seed, err)
		}
		checkCounts(t, &uts.BenchTiny, res)
		entries := res.Sum(func(th *stats.Thread) int64 { return th.TermBarrierEntries })
		if entries <= int64(tc.pes) {
			t.Errorf("%s pes=%d seed=%d: barrier entries %d <= %d; in-barrier steal no longer exercised — pick a new witness config",
				tc.alg, tc.pes, tc.seed, entries, tc.pes)
		}
	}
}
