package des

import (
	"testing"
	"time"
)

func TestAdvanceOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Spawn(func(p *Proc) {
		p.Advance(30 * time.Nanosecond)
		order = append(order, 1)
	})
	s.Spawn(func(p *Proc) {
		p.Advance(10 * time.Nanosecond)
		order = append(order, 2)
		p.Advance(40 * time.Nanosecond)
		order = append(order, 3)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 3 {
		t.Errorf("order = %v, want [2 1 3]", order)
	}
	if s.Now() != 50*time.Nanosecond {
		t.Errorf("final time = %v, want 50ns", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn(func(p *Proc) {
			p.Advance(100 * time.Nanosecond)
			order = append(order, i)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order = %v, want FIFO", order)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		s := New()
		var trace []int
		for i := 0; i < 8; i++ {
			i := i
			s.Spawn(func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Advance(time.Duration((i*7+j*13)%19) * time.Nanosecond)
					trace = append(trace, i*100+j)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBlockWake(t *testing.T) {
	s := New()
	var got time.Duration
	var waiter *Proc
	waiter = s.Spawn(func(p *Proc) {
		p.Block()
		got = p.Now()
	})
	s.Spawn(func(p *Proc) {
		p.Advance(500 * time.Nanosecond)
		p.Wake(waiter, 20*time.Nanosecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 520*time.Nanosecond {
		t.Errorf("waiter resumed at %v, want 520ns", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New()
	s.Spawn(func(p *Proc) { p.Block() }) // nobody will wake it
	if err := s.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestLockMutualExclusionAndFIFO(t *testing.T) {
	s := New()
	l := &Lock{}
	var order []int
	inside := false
	for i := 0; i < 6; i++ {
		i := i
		s.Spawn(func(p *Proc) {
			p.Advance(time.Duration(i) * time.Nanosecond) // stagger arrivals
			p.Acquire(l, 10*time.Nanosecond)
			if inside {
				t.Error("two PEs inside the critical section")
			}
			inside = true
			order = append(order, i)
			p.Advance(100 * time.Nanosecond) // long critical section
			inside = false
			p.Release(l, 10*time.Nanosecond)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("only %d acquisitions", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("lock grant order %v not FIFO", order)
		}
	}
}

func TestLockQueueingCost(t *testing.T) {
	// Holder keeps the lock 1µs; a second PE arriving immediately should
	// acquire at ~(acquire cost + hold time), demonstrating queueing delay.
	s := New()
	l := &Lock{}
	var acquiredAt time.Duration
	s.Spawn(func(p *Proc) {
		p.Acquire(l, 0)
		p.Advance(time.Microsecond)
		p.Release(l, 0)
	})
	s.Spawn(func(p *Proc) {
		p.Advance(10 * time.Nanosecond)
		p.Acquire(l, 0)
		acquiredAt = p.Now()
		p.Release(l, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if acquiredAt < time.Microsecond {
		t.Errorf("queued acquirer got the lock at %v, before the holder released", acquiredAt)
	}
}

func TestNegativeAdvanceClamped(t *testing.T) {
	s := New()
	s.Spawn(func(p *Proc) {
		p.Advance(-5 * time.Nanosecond)
		if p.Now() != 0 {
			t.Errorf("negative advance moved time to %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	s := New()
	s.Spawn(func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("release of unheld lock should panic")
			}
		}()
		p.Release(&Lock{}, 0)
	})
	_ = s.Run()
}
