package des

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pgas"
	"repro/internal/uts"
)

// TestEngineDifferential proves the batched engine bit-identical to the
// legacy reference: same makespan, same event count, and the same
// per-thread counters and state times for every algorithm × tree × seed.
func TestEngineDifferential(t *testing.T) {
	algos := []core.Algorithm{
		core.Static, core.UPCSharedMem, core.UPCTerm, core.UPCTermRapdif,
		core.UPCDistMem, core.UPCDistMemHier, core.MPIWS,
	}
	trees := []*uts.Spec{&uts.GeoLinear, &uts.T3Small}
	seeds := []int64{1, 2, 3}

	for _, algo := range algos {
		for _, sp := range trees {
			for _, seed := range seeds {
				name := fmt.Sprintf("%s/%s/seed%d", algo, sp.Name, seed)
				t.Run(name, func(t *testing.T) {
					cfg := Config{
						Algorithm: algo,
						PEs:       16,
						Chunk:     8,
						Model:     &pgas.KittyHawk,
						Seed:      seed,
					}
					cfg.Engine = EngineBatched
					bres, binfo, err := RunInfo(sp, cfg)
					if err != nil {
						t.Fatalf("batched: %v", err)
					}
					cfg.Engine = EngineLegacy
					lres, linfo, err := RunInfo(sp, cfg)
					if err != nil {
						t.Fatalf("legacy: %v", err)
					}
					if bres.Elapsed != lres.Elapsed {
						t.Errorf("makespan diverged: batched %v, legacy %v", bres.Elapsed, lres.Elapsed)
					}
					if binfo.Events != linfo.Events {
						t.Errorf("event count diverged: batched %d, legacy %d", binfo.Events, linfo.Events)
					}
					for i := range bres.Threads {
						if !reflect.DeepEqual(bres.Threads[i], lres.Threads[i]) {
							t.Errorf("thread %d diverged:\nbatched %+v\nlegacy  %+v",
								i, bres.Threads[i], lres.Threads[i])
						}
					}
				})
			}
		}
	}
}

// TestUnknownEngineRejected checks the Config.Engine validation.
func TestUnknownEngineRejected(t *testing.T) {
	_, _, err := RunInfo(&uts.BenchTiny, Config{Engine: "quantum"})
	if err == nil {
		t.Fatal("expected an error for an unknown engine name")
	}
}

// TestLockRingWraparoundFIFO drives the waiter ring directly through many
// interleaved enqueue/dequeue cycles so the head index wraps repeatedly and
// the buffer grows while partially drained; order must stay strictly FIFO.
func TestLockRingWraparoundFIFO(t *testing.T) {
	l := &Lock{}
	procs := make([]*Proc, 200)
	for i := range procs {
		procs[i] = &Proc{id: i}
	}
	next := 0 // next proc to enqueue
	want := 0 // next proc a FIFO dequeue must yield
	// Sawtooth fill levels: grow, drain low (wrapping head), grow larger.
	for _, step := range []struct{ in, out int }{
		{5, 3}, {6, 7}, {17, 10}, {30, 20}, {40, 58},
	} {
		for i := 0; i < step.in; i++ {
			l.enqueue(procs[next%len(procs)])
			next++
		}
		for i := 0; i < step.out; i++ {
			got := l.dequeue()
			if got != procs[want%len(procs)] {
				t.Fatalf("dequeue %d: got proc %d, want proc %d", want, got.id, procs[want%len(procs)].id)
			}
			want++
		}
	}
	if l.n != 0 {
		t.Fatalf("ring not drained: %d left", l.n)
	}
}

// TestLockFIFOUnderHeavyContention queues many simulated PEs behind one
// long-held lock and checks grants come back in exact arrival order.
func TestLockFIFOUnderHeavyContention(t *testing.T) {
	const waiters = 40
	s := New()
	l := &Lock{}
	var order []int
	s.Spawn(func(p *Proc) {
		p.Acquire(l, 1)
		p.Advance(10 * time.Microsecond) // hold while every waiter queues
		p.Release(l, 1)
	})
	for i := 0; i < waiters; i++ {
		i := i
		s.Spawn(func(p *Proc) {
			p.Advance(time.Duration(i+1) * 10 * time.Nanosecond) // distinct arrival instants
			p.Acquire(l, 1)
			order = append(order, i)
			p.Advance(5 * time.Nanosecond)
			p.Release(l, 1)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != waiters {
		t.Fatalf("got %d grants, want %d", len(order), waiters)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("grant %d went to waiter %d; order %v", i, got, order)
		}
	}
}

// TestEngineThroughputGate is the CI regression gate for the batched
// engine: a pure-dispatch workload (the BenchmarkSimDispatch shape — 64
// PEs burning interleaved stepped quanta with no tree work) must sustain
// at least 4x the event rate of the legacy reference. The measured ratio
// is ~10x; the 4x floor leaves headroom for noisy CI runners while still
// catching any change that reintroduces per-event goroutine switches or
// per-event allocation. Skipped unless DES_BENCH_GATE=1.
func TestEngineThroughputGate(t *testing.T) {
	if os.Getenv("DES_BENCH_GATE") != "1" {
		t.Skip("set DES_BENCH_GATE=1 to run the engine throughput gate")
	}
	run := func(legacy bool) float64 {
		const pes, quanta = 64, 20000
		var sim *Sim
		if legacy {
			sim = NewLegacy()
		} else {
			sim = New()
		}
		for i := 0; i < pes; i++ {
			sim.Spawn(func(p *Proc) {
				n := 0
				p.AdvanceStepped(func() (time.Duration, uint8) {
					if n >= quanta {
						return 0, StepDone
					}
					n++
					return time.Duration(1 + (n & 3)), 0
				})
			})
		}
		start := time.Now() //uts:ok detcheck real-time throughput measurement of the engine itself
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(sim.Events()) / time.Since(start).Seconds()
	}
	best := func(legacy bool) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			if r := run(legacy); r > b {
				b = r
			}
		}
		return b
	}
	run(false) // warm the scheduler before timing anything
	batched, legacy := best(false), best(true)
	ratio := batched / legacy
	t.Logf("batched %.2fM events/s, legacy %.2fM events/s, ratio %.1fx",
		batched/1e6, legacy/1e6, ratio)
	if ratio < 4 {
		t.Errorf("batched engine dispatches at only %.1fx the legacy rate; want >= 4x", ratio)
	}
}
