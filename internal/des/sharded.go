package des

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stack"
)

// This file is the sharded engine: conservative-lookahead parallel
// execution of the exact sequential schedule.
//
// The simulated PEs are partitioned into S shards of contiguous IDs. Each
// shard owns a flat 4-ary event heap, a virtual clock, and a baton: exactly
// one goroutine executes a shard's events at any moment, handed between the
// dispatcher loop and the shard's PE goroutines exactly as in the batched
// engine — so within a shard the PR 3 inline fast path survives unchanged.
// Across shards, every interaction goes through the remote-operation layer
// (remote.go): operations become messages carrying the virtual instant and
// the initiating proc's (id, seq) position, delivered through per-shard-
// pair inboxes and merged into the owner's heap, where they execute in
// global (t, pid, seq) key order.
//
// # Conservative synchronization
//
// The pgas cost model guarantees that every cross-PE operation pays at
// least the lookahead L (the model's minimum remote-hop cost, clamped):
// a PE deciding to touch another PE's partition at instant t cannot make
// the effect land before t+L. Each shard therefore publishes a *horizon
// promise* — "no message I ever send will be stamped earlier than this" —
// computed as (earliest pending local event) + L, and each shard may
// freely execute every event strictly earlier than the minimum promise of
// its peers. Promises are exchanged through atomic words (the degenerate,
// always-current form of null messages); a shard with nothing executable
// publishes its horizon and sleeps until a peer's promise moves or a
// message arrives. Two shards whose next events carry equal timestamps t
// both promise t+L > t, so both proceed — equal horizons never deadlock
// for L > 0.
//
// Rendezvous operations (RemoteCall, StageRemote) need a result back; the
// reply is solicited — stamped with the requester's own boundary, not
// bounded below by the owner's promise — so the requester *self-gates*:
// it stalls at the boundary, executes every smaller-keyed event that
// arrives meanwhile, and resumes only when the reply lands. The shard
// holding the globally minimal proc event can always run (every peer
// promise is at least that minimum plus L), so some shard always makes
// progress and the protocol is deadlock-free; if every shard sleeps with
// an infinite horizon while procs remain, the procs are blocked on each
// other — a protocol deadlock, reported exactly like the sequential
// engine's drained-queue error.
//
// # Determinism
//
// For a fixed shard count the execution is a deterministic function of the
// configuration: every event executes in (t, pid, seq) key order within
// its owning shard, cross-shard messages are applied at keys computed at
// send time, and the only engine freedom — the order in which same-key
// delayed deliveries are drained — is over operations that commute (sorted
// inserts into a receive queue). The differential test matrix checks the
// stronger property that the result is bit-identical to the batched
// engine's; DESIGN.md §12 gives the argument.

const maxVT = int64(^uint64(0) >> 1) // +infinity for virtual time

// sev event kinds.
const (
	seProc   byte = iota // a proc resumption (scheduled or parked boundary)
	seEffect             // fire-and-forget remote apply at the stamp
	seCall               // rendezvous request: apply at the stamp, reply
	seReply              // rendezvous reply: fills a slot, never enters the heap
)

// sev is one sharded-engine event: a proc resumption or a cross-shard
// operation, ordered by the same (t, pid, seq) key the sequential engines
// use. Delayed effects carry pid −1 so they order before every proc
// boundary at their stamp — a receiver polling its queue at exactly the
// arrival instant must see the message, as it does sequentially.
type sev struct {
	t      int64
	pid    int32
	seq    uint64
	p      *Proc // seProc: the proc to resume
	kind   byte
	from   int32 // seCall: requesting shard (reply destination)
	slot   int8  // seCall/seReply: staged slot, or -1 for RemoteCall
	dst    int32 // seEffect/seCall: destination PE; seReply: requester PE
	op     uint8
	a, b   int64
	chunks []stack.Chunk
}

func sevLess(a, b *sev) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.pid != b.pid {
		return a.pid < b.pid
	}
	return a.seq < b.seq
}

// shHeap is the per-shard flat 4-ary min-heap of sharded events — the same
// layout and hole-insertion sift as the sequential flatHeap.
type shHeap struct {
	a []sev
}

//uts:noalloc
func (h *shHeap) push(e sev) {
	h.a = append(h.a, e) //uts:ok noalloc amortized slice growth; steady-state pushes reuse the backing array
	a := h.a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !sevLess(&e, &a[parent]) {
			break
		}
		a[i] = a[parent]
		i = parent
	}
	a[i] = e
}

//uts:noalloc
func (h *shHeap) pop() sev {
	n := len(h.a) - 1
	top := h.a[0]
	h.a[0] = h.a[n]
	h.a[n] = sev{}
	h.a = h.a[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

//uts:noalloc
func (h *shHeap) siftDown(i int) {
	a := h.a
	n := len(a)
	e := a[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if sevLess(&a[j], &a[m]) {
				m = j
			}
		}
		if !sevLess(&a[m], &e) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = e
}

// rootAfterProc reports whether the heap minimum orders strictly after a
// would-be boundary of proc pid at time t — the shard-local half of the
// inline-commit condition. A (t, pid) tie against a queued event is
// impossible: a proc has one outstanding resumption, its own requests
// live in other shards' heaps, and delayed effects carry pid −1.
//
//uts:noalloc
func (h *shHeap) rootAfterProc(t int64, pid int32) bool {
	r := &h.a[0]
	if r.t != t {
		return r.t > t
	}
	return r.pid > pid
}

// shInbox is one bounded shard-pair inbox: peers append under the mutex,
// the owning shard swaps the queue out wholesale. Steady state reuses two
// buffers; growth beyond the initial bound doubles (and is amortized away).
type shInbox struct {
	mu    sync.Mutex
	dirty atomic.Bool
	q     []sev
	spare []sev
}

// shard is one partition of the simulation: a block of contiguous PEs, an
// event heap, a clock, and the conservative-synchronization state.
type shard struct {
	eng  *shardEngine
	idx  int
	heap shHeap
	now  int64

	// safeT caches min over peers' promises: every event with t < safeT
	// is safe to execute without looking at the inboxes again (messages
	// stamped below it were enqueued before their sender published the
	// promise we read, so they were drained when safeT was refreshed).
	safeT int64

	// promise is this shard's published horizon (single writer: the baton
	// holder). pub mirrors it locally; lastNowPub throttles fast-path
	// republishing to once per lookahead of virtual time.
	promise    atomic.Int64
	pub        int64
	lastNowPub int64

	// helds are procs stalled at a boundary awaiting rendezvous replies,
	// each at key (heldT, id). Events beyond the minimum held key must
	// wait; events before it keep executing.
	helds []*Proc

	in       []shInbox // indexed by sending shard
	kick     chan struct{}
	sleeping atomic.Int32

	events   uint64
	nprocs   int
	finished int
	exited   bool // dispatch loop has exited (wg accounting)
}

// shardEngine coordinates the S shards of one simulation.
type shardEngine struct {
	sim      *Sim
	nshards  int
	la       int64 // lookahead L: minimum cross-shard stamp distance
	pending  []*Proc
	byPid    []*Proc
	shards   []*shard
	shardOf  []int32
	wg       sync.WaitGroup
	done     chan struct{}
	failOnce sync.Once
	err      error
	sleepers atomic.Int32
	doneShs  atomic.Int32
}

// NewSharded creates an empty simulation using the sharded engine: shards
// parallel dispatchers synchronized with conservative lookahead la, which
// must be positive when shards > 1 (it is the minimum virtual latency of
// any cross-PE operation — see pgas.Model.MinRemoteHop). PEs are assigned
// to shards in contiguous blocks of spawn order at Run time.
func NewSharded(shards int, la time.Duration) *Sim {
	if shards < 1 {
		panic("des: sharded engine needs at least one shard")
	}
	if shards > 1 && la <= 0 {
		panic("des: sharded engine needs positive lookahead")
	}
	s := &Sim{}
	s.eng = &shardEngine{sim: s, nshards: shards, la: int64(la)}
	return s
}

// Shards reports the shard count of a sharded simulation (0 under the
// sequential engines).
func (s *Sim) Shards() int {
	if s.eng == nil {
		return 0
	}
	return s.eng.nshards
}

// assign partitions the spawned procs into contiguous-ID shard blocks and
// seeds each shard's heap and horizon.
func (eng *shardEngine) assign() {
	n := len(eng.pending)
	s := eng.nshards
	if s > n {
		s = n
		eng.nshards = s
	}
	eng.byPid = eng.pending
	eng.shardOf = make([]int32, n)
	eng.shards = make([]*shard, s)
	for i := range eng.shards {
		eng.shards[i] = &shard{
			eng:   eng,
			idx:   i,
			in:    make([]shInbox, s),
			kick:  make(chan struct{}, 1),
			safeT: eng.la,
		}
	}
	for pid, p := range eng.pending {
		si := pid * s / n
		eng.shardOf[pid] = int32(si)
		sh := eng.shards[si]
		p.sh = sh
		sh.nprocs++
		p.seq++
		sh.heap.push(sev{t: 0, pid: int32(pid), seq: p.seq, p: p, kind: seProc})
	}
	for _, sh := range eng.shards {
		sh.promise.Store(eng.la) // heap min 0 + L
		sh.pub = eng.la
		if s == 1 {
			sh.safeT = maxVT // no peers: pure fast path
		}
	}
}

// run executes the simulation: one dispatcher goroutine bootstraps each
// shard's baton, and the engine waits for every shard's dispatch loop to
// exit (global completion, or a deadlock report).
func (eng *shardEngine) run() error {
	if eng.sim.nprocs == 0 {
		return nil
	}
	eng.done = make(chan struct{})
	eng.assign()
	eng.wg.Add(len(eng.shards))
	for _, sh := range eng.shards {
		go sh.dispatch()
	}
	eng.wg.Wait()
	var events uint64
	mx := int64(0)
	for _, sh := range eng.shards {
		events += sh.events
		if sh.now > mx {
			mx = sh.now
		}
	}
	eng.sim.events = events
	eng.sim.now = mx
	return eng.err
}

// fail records a terminal engine error and releases every shard.
func (eng *shardEngine) fail(err error) {
	eng.failOnce.Do(func() {
		eng.err = err
		close(eng.done)
	})
}

// shardDone is called by the wrapper of a shard's last finishing proc;
// when every shard's procs have finished the run is over (no proc can
// send again, so nothing meaningful remains in flight).
func (eng *shardEngine) shardDone() {
	if int(eng.doneShs.Add(1)) == len(eng.shards) {
		eng.failOnce.Do(func() { close(eng.done) })
	}
}

// enqueue delivers a message into this shard's inbox from the given peer
// shard, kicking the shard awake if it sleeps. The dirty store precedes
// the sleeping load (both sequentially consistent), pairing with sleep's
// flag-then-drain order so a wakeup is never lost.
//
//uts:noalloc
func (sh *shard) enqueue(from int, m sev) {
	ib := &sh.in[from]
	ib.mu.Lock()
	ib.q = append(ib.q, m) //uts:ok noalloc amortized growth of a bounded, reused inbox buffer
	ib.mu.Unlock()
	ib.dirty.Store(true)
	if sh.sleeping.Load() != 0 {
		select {
		case sh.kick <- struct{}{}:
		default:
		}
	}
}

// drain merges every arrived message: replies fill their proc's slots
// immediately (they are position-free — the stalled proc consumes them at
// its own boundary), everything else enters the heap at its key.
//
//uts:noalloc
func (sh *shard) drain() {
	for i := range sh.in {
		ib := &sh.in[i]
		if !ib.dirty.Load() {
			continue
		}
		ib.mu.Lock()
		msgs := ib.q
		ib.q = ib.spare[:0]
		ib.spare = msgs
		ib.dirty.Store(false)
		ib.mu.Unlock()
		for j := range msgs {
			m := &msgs[j]
			if m.kind == seReply {
				p := sh.eng.byPid[m.dst]
				if m.slot >= 0 {
					p.staged[m.slot].res = m.a
				} else {
					p.callRes = m.a
				}
				p.pendReplies--
				continue
			}
			sh.heap.push(*m)
			msgs[j].chunks = nil
		}
	}
}

// publish raises this shard's promise (single writer — monotone by
// construction) and kicks any sleeping peer so it can re-read horizons.
//
//uts:noalloc
func (sh *shard) publish(v int64) {
	if v <= sh.pub {
		return
	}
	sh.pub = v
	sh.promise.Store(v)
	for _, o := range sh.eng.shards {
		if o != sh && o.sleeping.Load() != 0 {
			select {
			case o.kick <- struct{}{}:
			default:
			}
		}
	}
}

// maybePublish republishes now+L from the inline fast path at most once
// per lookahead of virtual progress, so peers starve no longer than ~L
// behind a shard running a long inline batch.
//
//uts:noalloc
func (sh *shard) maybePublish(t int64) {
	if t-sh.lastNowPub >= sh.eng.la {
		sh.lastNowPub = t
		sh.publish(t + sh.eng.la)
	}
}

// refreshSafe re-reads every peer's promise, then drains, then commits the
// new safe time — in that order. A message stamped below a peer's promise
// was enqueued before that promise was published (promises are lower
// bounds on all *future* sends), so a drain that follows the promise load
// is guaranteed to see every such message; messages arriving after the
// drain are stamped at or above the promises just read. Loading after
// draining would leave that guarantee with a hole.
//
//uts:noalloc
func (sh *shard) refreshSafe() {
	m := maxVT
	for _, o := range sh.eng.shards {
		if o == sh {
			continue
		}
		if v := o.promise.Load(); v < m {
			m = v
		}
	}
	sh.drain()
	sh.safeT = m
}

// horizon is the earliest key this shard could still emit a message from:
// its earliest pending proc boundary (queued or stalled), plus lookahead.
//
//uts:noalloc
func (sh *shard) horizon() int64 {
	m := maxVT
	if len(sh.heap.a) > 0 {
		m = sh.heap.a[0].t
	}
	for _, hp := range sh.helds {
		if hp.heldT < m {
			m = hp.heldT
		}
	}
	if m == maxVT {
		return maxVT
	}
	return m + sh.eng.la
}

// minHeld returns the stalled proc with the smallest (heldT, id) key.
//
//uts:noalloc
func (sh *shard) minHeld() *Proc {
	var hp *Proc
	for _, q := range sh.helds {
		if hp == nil || q.heldT < hp.heldT || (q.heldT == hp.heldT && q.id < hp.id) {
			hp = q
		}
	}
	return hp
}

//uts:noalloc
func (sh *shard) removeHeld(p *Proc) {
	for i, q := range sh.helds {
		if q == p {
			n := len(sh.helds) - 1
			sh.helds[i] = sh.helds[n]
			sh.helds[n] = nil
			sh.helds = sh.helds[:n]
			return
		}
	}
}

// commitOK is the shard-local half of the inline-commit condition: the
// boundary (t, pid) must precede every queued event and every stalled
// proc's boundary. The cross-shard half (t < safeT) is checked by callers.
//
//uts:noalloc
func (sh *shard) commitOK(t int64, pid int32) bool {
	for _, hp := range sh.helds {
		if t > hp.heldT || (t == hp.heldT && int(pid) > hp.id) {
			return false
		}
	}
	if len(sh.heap.a) == 0 {
		return true
	}
	return sh.heap.rootAfterProc(t, pid)
}

// assertHop enforces the promise contract on protocols: every cross-shard
// operation must land at least one lookahead after its deciding instant.
//
//uts:noalloc
func (sh *shard) assertHop(stamp int64) {
	if stamp-sh.now < sh.eng.la {
		panic("des: cross-shard operation beneath the lookahead — protocol violates the cost model's minimum remote hop")
	}
}

// remoteCall implements Proc.RemoteCall under the sharded engine: enqueue
// the rendezvous request at the completion stamp, advance, and stall at
// the boundary until the owner's reply lands.
func (sh *shard) remoteCall(p *Proc, dst int, d time.Duration, op uint8, a, b int64) int64 {
	eng := sh.eng
	od := eng.shardOf[dst]
	if int(od) == sh.idx {
		p.Advance(d)
		return eng.sim.remote(dst, op, a, b, nil)
	}
	stamp := sh.now + int64(d)
	sh.assertHop(stamp)
	p.seq++
	p.pendReplies++
	eng.shards[od].enqueue(sh.idx, sev{
		t: stamp, pid: int32(p.id), seq: p.seq, kind: seCall,
		from: int32(sh.idx), slot: -1, dst: int32(dst), op: op, a: a, b: b,
	})
	p.Advance(d)
	if p.pendReplies > 0 {
		sh.stallFrame(p)
	}
	return p.callRes
}

// remoteSend implements Proc.RemoteSend under the sharded engine: the
// effect applies in the owner's shard at now+adv+effectDelay. Zero-delay
// effects keep the sender's (pid, seq) position — they commit at the
// sender's completion instant exactly as sequentially; delayed effects
// order before every proc boundary at their arrival stamp (pid −1).
func (sh *shard) remoteSend(p *Proc, dst int, adv, effectDelay time.Duration, op uint8, a, b int64, chunks []stack.Chunk) {
	eng := sh.eng
	od := eng.shardOf[dst]
	if int(od) == sh.idx {
		p.Advance(adv)
		eng.sim.remote(dst, op, a, b, chunks)
		return
	}
	stamp := sh.now + int64(adv) + int64(effectDelay)
	sh.assertHop(stamp)
	pid := int32(p.id)
	if effectDelay > 0 {
		pid = -1
	}
	p.seq++
	eng.shards[od].enqueue(sh.idx, sev{
		t: stamp, pid: pid, seq: p.seq, kind: seEffect,
		dst: int32(dst), op: op, a: a, b: b, chunks: chunks,
	})
	p.Advance(adv)
}

// stageRemote implements the sharded half of Proc.StageRemote: same-shard
// ops are marked for inline execution at the boundary; cross-shard ops
// become rendezvous requests stamped with the boundary instant.
func (sh *shard) stageRemote(p *Proc, d time.Duration) {
	st := &p.staged[p.nstag-1]
	eng := sh.eng
	od := eng.shardOf[st.dst]
	if int(od) == sh.idx {
		st.local = true
		return
	}
	stamp := sh.now + int64(d)
	sh.assertHop(stamp)
	p.seq++
	p.pendReplies++
	eng.shards[od].enqueue(sh.idx, sev{
		t: stamp, pid: int32(p.id), seq: p.seq, kind: seCall,
		from: int32(sh.idx), slot: int8(p.nstag - 1), dst: st.dst, op: st.op, a: st.a, b: st.b,
	})
}

// runStagedSharded resolves a boundary's staged ops: cross-shard slots
// were filled by rendezvous replies; same-shard slots execute here, at
// the proc's own position in its shard's schedule.
//
//uts:noalloc
func (p *Proc) runStagedSharded() {
	for i := 0; i < p.nstag; i++ {
		st := &p.staged[i]
		if st.local {
			st.local = false
			st.res = p.sh.eng.sim.remote(int(st.dst), st.op, st.a, st.b, nil)
		}
	}
	p.nstag = 0
}

// stallFrame parks the running proc at its current boundary until its
// outstanding rendezvous replies arrive, handing the baton to the
// dispatcher so every smaller-keyed event keeps executing meanwhile.
func (sh *shard) stallFrame(p *Proc) {
	p.heldT = sh.now
	p.heldLive = true
	sh.helds = append(sh.helds, p)
	sh.dispatch()
	<-p.ch
}

// shardAdvance is Proc.Advance under the sharded engine.
//
//uts:noalloc
func (p *Proc) shardAdvance(d time.Duration) {
	sh := p.sh
	t := sh.now + int64(d)
	pid := int32(p.id)
	if t < sh.safeT && sh.commitOK(t, pid) {
		sh.now = t
		sh.events++
		sh.maybePublish(t)
		return
	}
	// Refresh visibility once before paying for a park.
	sh.refreshSafe()
	if t < sh.safeT && sh.commitOK(t, pid) {
		sh.now = t
		sh.events++
		sh.maybePublish(t)
		return
	}
	p.seq++
	sh.heap.push(sev{t: t, pid: pid, seq: p.seq, p: p, kind: seProc})
	sh.dispatch()
	<-p.ch
}

// shardAdvanceStepped is Proc.AdvanceStepped under the sharded engine:
// identical boundary semantics to the batched engine, plus the rendezvous
// stall when a boundary's staged replies are still in flight.
func (p *Proc) shardAdvanceStepped(step Stepper) Intr {
	sh := p.sh
	pid := int32(p.id)
	for {
		d, fl := step()
		if d > 0 {
			t := sh.now + int64(d)
			if !(t < sh.safeT && sh.commitOK(t, pid)) {
				sh.refreshSafe()
				if !(t < sh.safeT && sh.commitOK(t, pid)) {
					p.stepFn = step
					p.stepFl = fl
					p.seq++
					sh.heap.push(sev{t: t, pid: pid, seq: p.seq, p: p, kind: seProc})
					sh.dispatch()
					return <-p.ch
				}
			}
			sh.now = t
			sh.events++
			sh.maybePublish(t)
		}
		if p.pendReplies > 0 {
			sh.stallFrame(p)
		}
		if p.nstag > 0 {
			p.runStagedSharded()
		}
		if fl&StepDone != 0 {
			return 0
		}
		if fl&StepNoPoll == 0 && p.intr != 0 {
			m := p.intr
			p.intr = 0
			return m
		}
	}
}

// shardContStep resumes a parked stepped advance at its boundary in
// dispatcher context, mirroring the batched engine's contStep. Returns
// true when the baton was handed to the proc's goroutine.
func (sh *shard) shardContStep(p *Proc) bool {
	fl := p.stepFl
	pid := int32(p.id)
	for {
		if p.nstag > 0 {
			p.runStagedSharded()
		}
		if fl&StepDone != 0 {
			p.stepFn = nil
			p.ch <- 0
			return true
		}
		if fl&StepNoPoll == 0 && p.intr != 0 {
			m := p.intr
			p.intr = 0
			p.stepFn = nil
			p.ch <- m
			return true
		}
		var d time.Duration
		d, fl = p.stepFn()
		if d > 0 {
			t := sh.now + int64(d)
			if !(t < sh.safeT && sh.commitOK(t, pid)) {
				p.stepFl = fl
				p.seq++
				sh.heap.push(sev{t: t, pid: pid, seq: p.seq, p: p, kind: seProc})
				return false
			}
			sh.now = t
			sh.events++
			sh.maybePublish(t)
		}
		if p.pendReplies > 0 {
			// Boundary awaits rendezvous replies: stall in dispatcher
			// context; dispatch resumes the continuation when they land.
			p.stepFl = fl
			p.heldT = sh.now
			sh.helds = append(sh.helds, p)
			return false
		}
	}
}

// shardYield hands the baton to the dispatcher and blocks until an event
// hands it back (Block under the sharded engine; Wake pushes the event).
func (p *Proc) shardYield() Intr {
	p.sh.dispatch()
	return <-p.ch
}

// dispatch is the shard's event loop. Exactly one goroutine per shard runs
// it at any moment; it returns after handing the baton to a proc, and the
// goroutine that observes global completion (or failure) does the shard's
// final exit accounting.
func (sh *shard) dispatch() {
	eng := sh.eng
	for {
		sh.drain()
		for sh.runnable() {
			hp := sh.minHeld()
			if len(sh.heap.a) > 0 {
				e := &sh.heap.a[0]
				if (hp == nil || e.t < hp.heldT || (e.t == hp.heldT && int(e.pid) < hp.id)) && e.t < sh.safeT {
					ev := sh.heap.pop()
					if sh.execute(&ev) {
						return
					}
					sh.drain()
					continue
				}
			}
			// Otherwise runnable means the minimal stalled proc has its
			// replies: resume it at its boundary.
			sh.removeHeld(hp)
			sh.now = hp.heldT
			if hp.heldLive {
				hp.heldLive = false
				hp.ch <- 0
				return
			}
			if sh.shardContStep(hp) {
				return
			}
			sh.drain()
		}
		// Nothing executable against the cached horizon: refresh once
		// before paying for a sleep.
		sh.refreshSafe()
		if sh.runnable() {
			continue
		}
		if !sh.sleep() {
			if !sh.exited {
				sh.exited = true
				eng.wg.Done()
			}
			return
		}
	}
}

// execute runs one popped event; reports whether the baton left the
// dispatcher.
func (sh *shard) execute(e *sev) bool {
	eng := sh.eng
	switch e.kind {
	case seProc:
		sh.now = e.t
		sh.events++
		p := e.p
		if p.stepFn != nil {
			if p.pendReplies > 0 {
				p.heldT = e.t
				sh.helds = append(sh.helds, p)
				return false
			}
			return sh.shardContStep(p)
		}
		p.ch <- 0
		return true
	case seCall:
		res := eng.sim.remote(int(e.dst), e.op, e.a, e.b, e.chunks)
		eng.shards[e.from].enqueue(sh.idx, sev{kind: seReply, dst: e.pid, slot: e.slot, a: res})
		return false
	default: // seEffect
		eng.sim.remote(int(e.dst), e.op, e.a, e.b, e.chunks)
		return false
	}
}

// sleep publishes this shard's horizon and blocks until a kick or global
// completion. Returns false when the dispatch loop should exit. The
// sleeping flag is raised before the final drain-and-recheck, pairing
// with enqueue's dirty-then-kick order, so a message can never slip in
// unnoticed between the check and the block.
func (sh *shard) sleep() bool {
	eng := sh.eng
	sh.publish(sh.horizon())
	sh.sleeping.Store(1)
	n := eng.sleepers.Add(1)
	sh.refreshSafe()
	if sh.runnable() {
		sh.sleeping.Store(0)
		eng.sleepers.Add(-1)
		return true
	}
	if int(n) == len(eng.shards) {
		eng.checkDeadlock()
	}
	alive := true
	select {
	case <-sh.kick:
	case <-eng.done:
		alive = false
	}
	sh.sleeping.Store(0)
	eng.sleepers.Add(-1)
	if alive {
		select {
		case <-eng.done:
			alive = false
		default:
		}
	}
	return alive
}

// runnable reports whether anything can execute right now (after a drain
// and horizon refresh).
//
//uts:noalloc
func (sh *shard) runnable() bool {
	hp := sh.minHeld()
	if len(sh.heap.a) > 0 {
		e := &sh.heap.a[0]
		if (hp == nil || e.t < hp.heldT || (e.t == hp.heldT && int(e.pid) < hp.id)) && e.t < sh.safeT {
			return true
		}
	}
	return hp != nil && hp.pendReplies == 0
}

// checkDeadlock runs on the last shard to fall asleep. If every shard
// sleeps with an infinite horizon, no proc event exists or can ever be
// created anywhere — promises are monotone, only proc events generate
// messages, and finished runs close done before their last dispatcher
// sleeps — so any unfinished procs are mutually blocked: the sharded form
// of the sequential engine's drained-queue deadlock.
func (eng *shardEngine) checkDeadlock() {
	for _, o := range eng.shards {
		if o.sleeping.Load() == 0 || o.promise.Load() != maxVT {
			return
		}
	}
	blocked := 0
	for _, sh := range eng.shards {
		blocked += sh.nprocs - sh.finished
	}
	if blocked == 0 {
		return
	}
	eng.fail(fmt.Errorf("des: deadlock: %d of %d PEs still blocked (sharded, %d shards)",
		blocked, len(eng.byPid), len(eng.shards)))
}
