package des

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pgas"
	"repro/internal/stack"
	"repro/internal/uts"
)

// buildRemoteWorkload spawns a synthetic workload exercising every remote
// primitive — inline advances, cross-PE calls, fire-and-forget sends, and
// staged boundary reads inside a stepped advance — against a per-PE
// counter partition. It returns the state array and a per-PE log of
// observed call results, both of which must come out bit-identical under
// every engine.
func buildRemoteWorkload(s *Sim, n, rounds int, la time.Duration) (*[]int64, *[][]int64) {
	state := make([]int64, n)
	logs := make([][]int64, n)
	s.SetRemote(func(dst int, op uint8, a, b int64, _ []stack.Chunk) int64 {
		old := state[dst]
		switch op {
		case 0: // fetch-and-add
			state[dst] += a
		case 1: // read
		case 2: // max
			if a > state[dst] {
				state[dst] = a
			}
		}
		return old
	})
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.Advance(time.Duration(1 + (i+k)%3))
				got := p.RemoteCall((i+1+k)%n, la, 0, int64(i*1000+k), 0)
				logs[i] = append(logs[i], got)
				p.RemoteSend((i+3+k)%n, la, 0, 2, int64(k*7+i), 0, nil)
				if k%4 == 0 {
					step := 0
					p.AdvanceStepped(func() (time.Duration, uint8) {
						step++
						if step > 2 {
							return 0, StepDone
						}
						d := p.StageRemote((i+5)%n, la, 1, 0, 0)
						return d, StepNoPoll
					})
					logs[i] = append(logs[i], p.StagedResult(0))
				}
			}
		})
	}
	return &state, &logs
}

// TestShardedMatchesBatchedRaw drives the synthetic remote workload under
// the batched engine and under the sharded engine at several shard counts,
// demanding bit-identical state, per-PE result logs, event counts, and
// makespans — the raw-engine half of the determinism story (the protocol
// half is TestShardedDifferential in run_test territory).
func TestShardedMatchesBatchedRaw(t *testing.T) {
	const n, rounds = 16, 40
	const la = 100 * time.Nanosecond

	ref := New()
	refState, refLogs := buildRemoteWorkload(ref, n, rounds, la)
	if err := ref.Run(); err != nil {
		t.Fatalf("batched: %v", err)
	}

	for _, shards := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := NewSharded(shards, la)
			state, logs := buildRemoteWorkload(s, n, rounds, la)
			if err := s.Run(); err != nil {
				t.Fatalf("sharded: %v", err)
			}
			if !reflect.DeepEqual(*state, *refState) {
				t.Errorf("state diverged:\nsharded %v\nbatched %v", *state, *refState)
			}
			if !reflect.DeepEqual(*logs, *refLogs) {
				t.Errorf("per-PE call results diverged")
			}
			if s.Events() != ref.Events() {
				t.Errorf("event count diverged: sharded %d, batched %d", s.Events(), ref.Events())
			}
			if s.Now() != ref.Now() {
				t.Errorf("makespan diverged: sharded %v, batched %v", s.Now(), ref.Now())
			}
		})
	}
}

// TestShardedEqualHorizonsNoDeadlock is the null-message regression: two
// shards advancing in perfect lockstep issue rendezvous calls at each
// other at exactly equal virtual instants, so at every exchange both
// shards' horizons are equal. Conservative engines that gate on "peer
// horizon strictly greater" livelock here; ours promises t+L > t for both
// sides, so the run must complete — and with both clocks agreeing.
func TestShardedEqualHorizonsNoDeadlock(t *testing.T) {
	const la = 50 * time.Nanosecond
	const rounds = 200
	s := NewSharded(2, la)
	state := [2]int64{}
	s.SetRemote(func(dst int, op uint8, a, b int64, _ []stack.Chunk) int64 {
		state[dst]++
		return state[dst]
	})
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn(func(p *Proc) {
			for k := 0; k < rounds; k++ {
				// Both PEs stand at the same instant and call across.
				p.RemoteCall(1-i, la, 0, 0, 0)
			}
		})
	}
	go func() {
		defer close(done)
		if err := s.Run(); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sharded run deadlocked with equal horizons")
	}
	if state[0] != rounds || state[1] != rounds {
		t.Fatalf("lost calls: state %v, want %d each", state, rounds)
	}
	if got, want := s.Now(), time.Duration(rounds)*la; got != want {
		t.Fatalf("makespan %v, want %v", got, want)
	}
}

// TestShardedProtocolDeadlockReported checks that a genuine protocol
// deadlock — every PE blocked with nothing in flight — is reported as an
// error rather than hanging the engine, mirroring the sequential engines'
// drained-queue diagnostics.
func TestShardedProtocolDeadlockReported(t *testing.T) {
	s := NewSharded(2, time.Microsecond)
	s.SetRemote(func(dst int, op uint8, a, b int64, _ []stack.Chunk) int64 { return 0 })
	var blocked atomic.Int32
	for i := 0; i < 2; i++ {
		s.Spawn(func(p *Proc) {
			p.Advance(time.Duration(1+p.ID()) * time.Microsecond)
			blocked.Add(1)
			p.Block() // nobody will ever Wake us
		})
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Run() }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected a deadlock error, got nil")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock went undetected")
	}
	if blocked.Load() != 2 {
		t.Fatalf("only %d PEs reached the blocking point", blocked.Load())
	}
}

// TestShardedDifferential extends the engine differential to the sharded
// engine: for every algorithm × tree × seed of the batched/legacy matrix,
// the sharded engine must reproduce the batched result bit-identically —
// same makespan, same event count, same per-thread counters and state
// times — at every tested shard count. This is the acceptance property of
// the parallel engine: shard count is a parallelism knob, never a semantic
// one.
func TestShardedDifferential(t *testing.T) {
	algos := []core.Algorithm{
		core.Static, core.UPCSharedMem, core.UPCTerm, core.UPCTermRapdif,
		core.UPCDistMem, core.UPCDistMemHier, core.MPIWS,
	}
	trees := []*uts.Spec{&uts.GeoLinear, &uts.T3Small}
	seeds := []int64{1, 2, 3}

	for _, algo := range algos {
		for _, sp := range trees {
			for _, seed := range seeds {
				cfg := Config{
					Algorithm: algo,
					PEs:       16,
					Chunk:     8,
					Model:     &pgas.KittyHawk,
					Seed:      seed,
				}
				bres, binfo, err := RunInfo(sp, cfg)
				if err != nil {
					t.Fatalf("%s/%s/seed%d batched: %v", algo, sp.Name, seed, err)
				}
				for _, shards := range []int{1, 2, 4} {
					name := fmt.Sprintf("%s/%s/seed%d/shards=%d", algo, sp.Name, seed, shards)
					t.Run(name, func(t *testing.T) {
						scfg := cfg
						scfg.Shards = shards
						sres, sinfo, err := RunInfo(sp, scfg)
						if err != nil {
							t.Fatalf("sharded: %v", err)
						}
						if sinfo.Engine != EngineSharded {
							t.Errorf("engine %q, want %q", sinfo.Engine, EngineSharded)
						}
						if sres.Elapsed != bres.Elapsed {
							t.Errorf("makespan diverged: sharded %v, batched %v", sres.Elapsed, bres.Elapsed)
						}
						if sinfo.Events != binfo.Events {
							t.Errorf("event count diverged: sharded %d, batched %d", sinfo.Events, binfo.Events)
						}
						for i := range bres.Threads {
							if !reflect.DeepEqual(sres.Threads[i], bres.Threads[i]) {
								t.Errorf("thread %d diverged:\nsharded %+v\nbatched %+v",
									i, sres.Threads[i], bres.Threads[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestShardedValidation covers the configuration ladder around
// Config.Shards.
func TestShardedValidation(t *testing.T) {
	base := Config{Algorithm: core.UPCDistMem, PEs: 4, Model: &pgas.KittyHawk}

	neg := base
	neg.Shards = -1
	if _, _, err := RunInfo(&uts.BenchTiny, neg); err == nil {
		t.Error("negative shard count accepted")
	}

	leg := base
	leg.Shards = 2
	leg.Engine = EngineLegacy
	if _, _, err := RunInfo(&uts.BenchTiny, leg); err == nil {
		t.Error("legacy engine accepted a shard count")
	}

	zl := base
	zl.Shards = 2
	zl.Model = &pgas.SharedMemory
	if _, _, err := RunInfo(&uts.BenchTiny, zl); err == nil {
		t.Error("zero-latency model accepted with multiple shards")
	}
	zl.Shards = 1
	if _, _, err := RunInfo(&uts.BenchTiny, zl); err != nil {
		t.Errorf("zero-latency model rejected at one shard: %v", err)
	}

	// Shard count is capped at PEs, and the shared-memory family is
	// forced to a single shard.
	cap := base
	cap.Shards = 64
	_, info, err := RunInfo(&uts.BenchTiny, cap)
	if err != nil {
		t.Fatalf("capped run: %v", err)
	}
	if info.Shards != 4 {
		t.Errorf("shard count %d, want capped at 4 PEs", info.Shards)
	}
	shm := base
	shm.Algorithm = core.UPCSharedMem
	shm.Shards = 4
	_, info, err = RunInfo(&uts.BenchTiny, shm)
	if err != nil {
		t.Fatalf("shared-memory run: %v", err)
	}
	if info.Shards != 1 {
		t.Errorf("shared-memory family ran with %d shards, want 1", info.Shards)
	}

	// Traced runs sample global state and need a single shard.
	if _, _, err := RunTraced(&uts.BenchTiny, leg, 0); err == nil {
		t.Error("zero trace interval accepted")
	}
	tr := base
	tr.Shards = 2
	if _, _, err := RunTraced(&uts.BenchTiny, tr, time.Millisecond); err == nil {
		t.Error("traced run accepted with multiple shards")
	}
	tr.Shards = 1
	if _, _, err := RunTraced(&uts.BenchTiny, tr, time.Millisecond); err != nil {
		t.Errorf("traced run rejected at one shard: %v", err)
	}
}

// TestShardedSpeedupGate is the CI scaling gate for the sharded engine: a
// mid-scale distributed-memory simulation dispatched by 8 shards must
// reach at least 3x the single-shard event rate. The bar is deliberately
// below the near-linear ratios seen on idle 8-core hosts, leaving headroom
// for noisy runners while still catching any change that serializes the
// shards (a global lock, a lost-wakeup spin, an over-tight horizon).
// Skipped unless DES_BENCH_GATE=1 and at least 8 cores are available.
func TestShardedSpeedupGate(t *testing.T) {
	if os.Getenv("DES_BENCH_GATE") != "1" {
		t.Skip("set DES_BENCH_GATE=1 to run the sharded scaling gate")
	}
	if runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("sharded scaling gate needs 8 cores, have %d", runtime.GOMAXPROCS(0))
	}
	run := func(shards int) float64 {
		_, info, err := RunInfo(&uts.T3Small, Config{
			Algorithm: core.UPCDistMem, PEs: 256, Chunk: 8,
			Model: &pgas.KittyHawk, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now() //uts:ok detcheck real-time throughput measurement of the engine itself
		for i := 0; i < 3; i++ {
			if _, _, err := RunInfo(&uts.T3Small, Config{
				Algorithm: core.UPCDistMem, PEs: 256, Chunk: 8,
				Model: &pgas.KittyHawk, Shards: shards,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return 3 * float64(info.Events) / time.Since(start).Seconds()
	}
	run(8) // warm up the scheduler and page in the tree
	one, eight := run(1), run(8)
	ratio := eight / one
	t.Logf("1 shard %.2fM events/s, 8 shards %.2fM events/s, ratio %.1fx",
		one/1e6, eight/1e6, ratio)
	if ratio < 3 {
		t.Errorf("8 shards dispatch at only %.1fx the single-shard rate; want >= 3x", ratio)
	}
}
