package des

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/uts"
)

// Config configures a simulated run.
type Config struct {
	// Algorithm is any of the five parallel implementations of
	// internal/core (the Sequential pseudo-algorithm is not simulated).
	Algorithm core.Algorithm
	// PEs is the number of simulated processing elements.
	PEs int
	// Chunk is the steal granularity k in nodes; default 16.
	Chunk int
	// Model is the machine profile; nil means pgas.KittyHawk (a cluster —
	// simulating a zero-latency machine is better done with the real
	// goroutine implementation). Zero cost entries are clamped to 1ns so
	// that poll loops always advance virtual time.
	Model *pgas.Model
	// PollInterval is the number of nodes an mpi-ws rank explores between
	// message-queue polls; default 8.
	PollInterval int
	// Batch is the number of nodes a UPC-variant PE explores between
	// protocol service points (request polling happens per node in the
	// real implementation; the simulator batches it to bound event
	// counts). Default min(Chunk, 8), at least 1.
	Batch int
	// Seed randomizes probe orders.
	Seed int64
	// NodeSize, when >= 2, groups PEs into cluster nodes of NodeSize
	// consecutive IDs; references between same-node PEs are charged to
	// Intra instead of Model. Only the distributed-memory protocols are
	// topology-aware (the paper's Section 6.2 direction).
	NodeSize int
	// Intra is the intra-node cost model used with NodeSize.
	Intra *pgas.Model
	// Tracer, when non-nil, records the steal-protocol event stream —
	// one lane per PE, stamped with virtual time (build it with
	// obs.NewVirtual(PEs, ringSize)). Recording costs no virtual time,
	// so traced runs are bit-identical to untraced ones.
	Tracer *obs.Tracer
	// Engine selects the simulation engine: EngineBatched (the default,
	// also selected by "") or EngineLegacy, the original reference engine.
	// Both produce bit-identical results; legacy exists for differential
	// testing and as the benchmark baseline.
	Engine string
	// Adapt, when non-nil, gives every simulated PE a closed-loop
	// controller (internal/policy) that adapts the chunk size, the
	// steal-half selection, and the mpi-ws poll interval from windowed
	// steal feedback. Windows are measured in virtual time, so adaptive
	// runs stay deterministic across engines and shard counts. A zero
	// Adapt.Window derives a window from the machine model: 16 remote
	// references or 64 node expansions, whichever is longer. Nil keeps
	// every knob fixed and the simulation byte-identical to earlier
	// releases.
	Adapt *policy.Config
	// Shards, when > 0, runs the simulation on the sharded engine: the
	// simulated PEs are partitioned into that many contiguous-ID shards,
	// each dispatched by its own goroutine (so a real core), synchronized
	// conservatively with the machine model's minimum remote-hop cost as
	// lookahead. Results are bit-identical to the sequential engines for
	// any shard count; Shards is a parallelism knob, not a semantic one.
	// It is capped at PEs. The shared-memory family (upc-shmem, upc-term,
	// upc-term-rapdif) synchronizes through zero-latency lock handoffs and
	// always runs as a single shard. Zero selects the sequential engine
	// named by Engine. Requires a model (and, with NodeSize >= 2, an Intra
	// model) whose MinRemoteHop is positive when more than one shard is in
	// play, and is incompatible with EngineLegacy.
	Shards int
}

// Engine names accepted by Config.Engine (EngineSharded is reported in
// Info when Config.Shards > 0, never set in Config.Engine).
const (
	EngineBatched = "batched"
	EngineLegacy  = "legacy"
	EngineSharded = "sharded"
)

// Info reports engine-level facts about a completed simulation.
type Info struct {
	// Engine is the engine that ran ("batched", "legacy" or "sharded").
	Engine string
	// Events is the number of simulated-time boundaries executed; it is
	// identical across engines for the same configuration, so events per
	// wall second compares pure engine overhead.
	Events uint64
	// Shards is the effective shard count of a sharded run (after capping
	// at PEs and the single-shard algorithm restrictions); 0 under the
	// sequential engines.
	Shards int
	// Lookahead is the conservative-synchronization window of a sharded
	// run: the minimum virtual latency separating any cross-PE operation
	// from its decision instant, derived from the clamped cost model.
	Lookahead time.Duration
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = core.UPCDistMem
	}
	if c.PEs == 0 {
		c.PEs = 1
	}
	if c.Chunk == 0 {
		c.Chunk = 16
	}
	if c.Model == nil {
		c.Model = &pgas.KittyHawk
	}
	if c.PollInterval == 0 {
		c.PollInterval = 8
	}
	if c.Batch == 0 {
		c.Batch = c.Chunk
		if c.Batch > 8 {
			c.Batch = 8
		}
	}
	return c
}

// costs holds the clamped per-operation virtual costs for a run.
type costs struct {
	localRef  time.Duration
	remoteRef time.Duration
	lockRTT   time.Duration
	nodeCost  time.Duration
	perKB     time.Duration
	respPoll  time.Duration // thief's poll interval while awaiting a response
	idlePoll  time.Duration // mpi-ws idle loop poll interval
	iprobe    time.Duration // mpi-ws per-poll message-queue check (MPI_Iprobe)
}

func newCosts(m *pgas.Model) costs {
	clamp := func(d, min time.Duration) time.Duration {
		if d < min {
			return min
		}
		return d
	}
	c := costs{
		localRef:  clamp(m.LocalRef, time.Nanosecond),
		remoteRef: clamp(m.RemoteRef, time.Nanosecond),
		nodeCost:  clamp(m.NodeCost, time.Nanosecond),
		perKB:     m.PerKB,
		lockRTT:   clamp(m.LockRTT, m.RemoteRef),
	}
	c.lockRTT = clamp(c.lockRTT, time.Nanosecond)
	c.respPoll = clamp(c.remoteRef/4, 100*time.Nanosecond)
	c.idlePoll = clamp(c.remoteRef/4, 250*time.Nanosecond)
	// An MPI message-queue poll costs real library time on every check,
	// even when no message is pending — the overhead the paper's one-sided
	// protocol avoids (a UPC victim polls a local word instead). Scaled to
	// the interconnect: ~1/8 of a remote reference, at least the local
	// reference cost.
	c.iprobe = clamp(c.remoteRef/8, c.localRef)
	return c
}

// bulk returns the one-sided transfer cost of n bytes.
func (c *costs) bulk(n int) time.Duration {
	return c.remoteRef + time.Duration(int64(c.perKB)*int64(n)/1024)
}

// Sample is one point of a diffusion trace.
type Sample struct {
	T time.Duration // virtual time of the sample
	// WorkSources is the number of PEs with stealable surplus — the
	// quantity Section 3.3.2's rapid diffusion is designed to grow.
	WorkSources int
	// Working is the number of PEs currently holding any work.
	Working int
}

// Trace is a time series sampled during a simulated run.
type Trace struct {
	Interval time.Duration
	Samples  []Sample
}

// TimeToSources returns the first sample time at which the number of work
// sources reached n, or -1 if it never did. This is the diffusion speed
// metric used by the D1 experiment.
func (tr *Trace) TimeToSources(n int) time.Duration {
	for _, s := range tr.Samples {
		if s.WorkSources >= n {
			return s.T
		}
	}
	return -1
}

// sampler reports (work sources, PEs holding work) for a protocol's
// current state; each protocol setup returns one.
type sampler func() (sources, working int)

// Run simulates a complete traversal of sp on cfg.PEs virtual processors
// and returns the same Result shape as core.Run, with Elapsed set to the
// virtual makespan and SeqRate to the model's sequential rate (1/NodeCost),
// so Speedup and Efficiency read exactly as in the paper.
func Run(sp *uts.Spec, cfg Config) (*core.Result, error) {
	res, _, _, err := run(sp, cfg, 0)
	return res, err
}

// RunInfo is Run plus engine-level facts (which engine ran, how many
// events it executed) for benchmarks and regression gates.
func RunInfo(sp *uts.Spec, cfg Config) (*core.Result, Info, error) {
	res, _, info, err := run(sp, cfg, 0)
	return res, info, err
}

// RunTraced is Run plus a diffusion trace sampled every interval of
// virtual time.
func RunTraced(sp *uts.Spec, cfg Config, interval time.Duration) (*core.Result, *Trace, error) {
	if interval <= 0 {
		return nil, nil, fmt.Errorf("des: trace interval must be positive, got %v", interval)
	}
	res, trace, _, err := run(sp, cfg, interval)
	return res, trace, err
}

func run(sp *uts.Spec, cfg Config, interval time.Duration) (*core.Result, *Trace, Info, error) {
	var info Info
	if err := sp.Validate(); err != nil {
		return nil, nil, info, err
	}
	cfg = cfg.withDefaults()
	if cfg.PEs < 1 {
		return nil, nil, info, fmt.Errorf("des: need at least one PE, got %d", cfg.PEs)
	}
	if cfg.Chunk < 1 {
		return nil, nil, info, fmt.Errorf("des: need chunk >= 1, got %d", cfg.Chunk)
	}
	cs := newCosts(cfg.Model)
	var sim *Sim
	switch cfg.Engine {
	case "", EngineBatched:
		info.Engine = EngineBatched
		sim = New()
	case EngineLegacy:
		info.Engine = EngineLegacy
		sim = NewLegacy()
	default:
		return nil, nil, info, fmt.Errorf("des: unknown engine %q (valid: %s, %s)", cfg.Engine, EngineBatched, EngineLegacy)
	}
	if cfg.Shards < 0 {
		return nil, nil, info, fmt.Errorf("des: need shards >= 0, got %d", cfg.Shards)
	}
	if cfg.Shards > 0 {
		if cfg.Engine == EngineLegacy {
			return nil, nil, info, fmt.Errorf("des: the legacy engine cannot shard (drop shards or the engine override)")
		}
		shards := cfg.Shards
		if shards > cfg.PEs {
			shards = cfg.PEs
		}
		switch cfg.Algorithm {
		case core.UPCSharedMem, core.UPCTerm, core.UPCTermRapdif, core.UPCTermRelaxed:
			// The shared-memory family synchronizes through zero-latency
			// lock handoffs (Block/Wake), which carry no lookahead; it
			// runs sharded but undivided.
			shards = 1
		}
		if interval > 0 && shards > 1 {
			return nil, nil, info, fmt.Errorf("des: traced runs sample global protocol state and need a single shard, got %d", shards)
		}
		la := cs.remoteRef
		if shards > 1 {
			if cfg.Model.MinRemoteHop() <= 0 {
				return nil, nil, info, fmt.Errorf("des: model %q has no minimum remote-hop cost; a zero-latency machine cannot run sharded (use shards <= 1)", cfg.Model.Name)
			}
			if cfg.NodeSize >= 2 && cfg.Intra != nil {
				if cfg.Intra.MinRemoteHop() <= 0 {
					return nil, nil, info, fmt.Errorf("des: intra-node model %q has no minimum remote-hop cost; a zero-latency machine cannot run sharded (use shards <= 1)", cfg.Intra.Name)
				}
				if ila := newCosts(cfg.Intra).remoteRef; ila < la {
					la = ila
				}
			}
		}
		info.Engine = EngineSharded
		info.Shards = shards
		info.Lookahead = la
		sim = NewSharded(shards, la)
	}

	res := &core.Result{Spec: sp, Algorithm: cfg.Algorithm, Chunk: cfg.Chunk}
	res.Threads = make([]stats.Thread, cfg.PEs)
	for i := range res.Threads {
		res.Threads[i].ID = i
	}
	res.SeqRate = float64(time.Second) / float64(cs.nodeCost)

	// Adaptive runs: one controller per simulated PE, windows in virtual
	// time. The default window is derived from the machine model so that
	// a fast interconnect adapts on a finer grain than a slow one.
	var pset *policy.Set
	if cfg.Adapt != nil {
		acfg := *cfg.Adapt
		if acfg.Window <= 0 {
			// 8 remote references or 32 node expansions, whichever is
			// longer: short enough for several decisions per run even on
			// small trees, and safe because windows without steal evidence
			// extend instead of closing (the controller's evidence gate).
			acfg.Window = 8 * cs.remoteRef
			if w := 32 * cs.nodeCost; w > acfg.Window {
				acfg.Window = w
			}
		}
		pset = policy.NewSet(&acfg, policy.Base{
			Chunk:     cfg.Chunk,
			Poll:      cfg.PollInterval,
			StealHalf: cfg.Algorithm == core.UPCTermRapdif,
			NodeSize:  cfg.NodeSize,
			HierPays:  hierPays(cfg.Model, cfg.Intra),
		}, cfg.PEs)
	}

	// Completion bookkeeping must be shard-safe: every PE records its own
	// end time (disjoint writes), and the live count — read by the trace
	// sampler — is atomic.
	ends := make([]time.Duration, cfg.PEs)
	var alive atomic.Int64
	alive.Store(int64(cfg.PEs))
	finish := func(p *Proc) {
		ends[p.ID()] = p.Now()
		alive.Add(-1)
	}

	var smp sampler
	var err error
	switch cfg.Algorithm {
	case core.Static:
		smp, err = simStatic(sim, sp, cfg, cs, res, finish)
	case core.UPCSharedMem:
		smp, err = simShared(sim, sp, cfg, cs, res, sharedMode{}, pset, finish)
	case core.UPCTerm:
		smp, err = simShared(sim, sp, cfg, cs, res, sharedMode{streamTerm: true}, pset, finish)
	case core.UPCTermRapdif:
		smp, err = simShared(sim, sp, cfg, cs, res, sharedMode{streamTerm: true, stealHalf: true}, pset, finish)
	case core.UPCTermRelaxed:
		smp, err = simShared(sim, sp, cfg, cs, res, sharedMode{streamTerm: true, relaxed: true}, pset, finish)
	case core.UPCDistMem, core.UPCDistMemHier:
		smp, err = simDistMem(sim, sp, cfg, cs, res, pset, finish)
	case core.MPIWS:
		smp, err = simMPIWS(sim, sp, cfg, cs, res, pset, finish)
	default:
		return nil, nil, info, fmt.Errorf("des: cannot simulate algorithm %q", cfg.Algorithm)
	}
	if err != nil {
		return nil, nil, info, err
	}

	var trace *Trace
	if interval > 0 {
		trace = &Trace{Interval: interval}
		sim.Spawn(func(p *Proc) {
			for alive.Load() > 0 {
				s, w := smp()
				trace.Samples = append(trace.Samples, Sample{T: p.Now(), WorkSources: s, Working: w})
				p.Advance(interval)
			}
		})
	}

	if err := sim.Run(); err != nil {
		return nil, nil, info, err
	}
	info.Events = sim.Events()
	var makespan time.Duration
	for _, t := range ends {
		if t > makespan {
			makespan = t
		}
	}
	res.Elapsed = makespan
	res.Obs = cfg.Tracer.Summary()
	res.Policy = pset.Summary()
	return res, trace, info, nil
}

// hierPays reports whether the latency model makes intra-node victims
// worth preferring: a same-node steal round trip (lock plus reference)
// costing at most half the remote one. With no intra model the machine
// is flat and tiering cannot pay. Mirrors the wiring in internal/core.
func hierPays(remote, intra *pgas.Model) bool {
	if intra == nil || remote == nil {
		return false
	}
	return 2*(intra.LockRTT+intra.RemoteRef) <= remote.LockRTT+remote.RemoteRef
}
