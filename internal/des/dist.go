package des

import (
	"math/bits"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// simDistRun is the run state of the simulated distributed-memory
// algorithm (Section 3.3.3).
type simDistRun struct {
	sp  *uts.Spec
	cfg Config
	cs  costs
	pes []*simDistPE

	// Two-level topology (Section 6.2 future work): PEs in nodes of
	// nodeSize consecutive IDs, same-node references charged to intra.
	nodeSize int
	intra    costs
	hier     bool // locality-aware probe order (upc-distmem-hier)

	sbCount     int
	sbAnnounced bool

	finish func(*Proc)
}

// sameNode reports whether PEs a and b share a cluster node.
func (r *simDistRun) sameNode(a, b int) bool {
	return r.nodeSize > 1 && a/r.nodeSize == b/r.nodeSize
}

// refCost is one one-sided reference from a to b's partition.
func (r *simDistRun) refCost(a, b int) time.Duration {
	if r.sameNode(a, b) {
		return r.intra.remoteRef
	}
	return r.cs.remoteRef
}

// lockCost is one lock round trip from a to b's partition.
func (r *simDistRun) lockCost(a, b int) time.Duration {
	if r.sameNode(a, b) {
		return r.intra.lockRTT
	}
	return r.cs.lockRTT
}

// bulkCost is a one-sided transfer of n bytes between a and b.
func (r *simDistRun) bulkCost(a, b, n int) time.Duration {
	if r.sameNode(a, b) {
		return r.intra.bulk(n)
	}
	return r.cs.bulk(n)
}

// simDistPE is one simulated PE: owner-only stack and pool, a request
// word claimed by thieves, and an incoming response slot.
type simDistPE struct {
	r     *simDistRun
	p     *Proc
	me    int
	t     *stats.Thread
	lane  *obs.Lane // nil when the run is untraced
	state stats.State

	local     stack.Deque
	pool      stack.Pool
	workAvail int
	request   int // thief ID or -1

	resp      []stack.Chunk
	respReady bool

	rng *core.ProbeOrder
	ex  *uts.Expander
}

func simDistMem(sim *Sim, sp *uts.Spec, cfg Config, cs costs, res *core.Result, finish func(*Proc)) (sampler, error) {
	r := &simDistRun{sp: sp, cfg: cfg, cs: cs, finish: finish,
		hier: cfg.Algorithm == core.UPCDistMemHier}
	if cfg.NodeSize >= 2 && cfg.Intra != nil {
		r.nodeSize = cfg.NodeSize
		r.intra = newCosts(cfg.Intra)
	}
	r.pes = make([]*simDistPE, cfg.PEs)
	for i := 0; i < cfg.PEs; i++ {
		pe := &simDistPE{r: r, me: i, t: &res.Threads[i], lane: cfg.Tracer.Lane(i), request: -1, rng: core.NewProbeOrder(cfg.Seed, i), ex: uts.NewExpander(sp)}
		r.pes[i] = pe
		if i == 0 {
			pe.local.Push(uts.Root(sp))
		}
		sim.Spawn(func(p *Proc) {
			pe.p = p
			pe.main()
			r.finish(p)
		})
	}
	return func() (sources, working int) {
		for _, pe := range r.pes {
			if pe.workAvail > 0 {
				sources++
			}
			if pe.local.Len() > 0 || pe.pool.Len() > 0 {
				working++
			}
		}
		return
	}, nil
}

func (pe *simDistPE) advance(d time.Duration) {
	pe.t.AddState(pe.state, d)
	pe.p.Advance(d)
}

// rec records an event stamped with the PE's current virtual time.
func (pe *simDistPE) rec(k obs.Kind, other int32, value int64) {
	pe.lane.RecV(k, other, value, pe.p.Now())
}

// setState pairs the stats state charge target with the tracer's state
// event.
func (pe *simDistPE) setState(s stats.State) {
	pe.state = s
	pe.rec(obs.KindStateChange, -1, int64(s))
}

func (pe *simDistPE) main() {
	pe.rec(obs.KindStateChange, -1, int64(stats.Working))
	for {
		pe.work()
		pe.workAvail = -1
		pe.setState(stats.Searching)
		if pe.search() {
			pe.setState(stats.Working)
			continue
		}
		pe.setState(stats.Idle)
		pe.t.TermBarrierEntries++
		pe.rec(obs.KindTermEnter, -1, 0)
		if pe.terminate() {
			pe.service()
			return
		}
		pe.rec(obs.KindTermExit, -1, 0)
		pe.setState(stats.Working)
	}
}

// work explores nodes batch-wise. The real implementation polls its
// request word every node; the simulator services requests at batch
// boundaries and release points, bounding event counts while keeping the
// response latency within one batch of node work.
func (pe *simDistPE) work() {
	cs := &pe.r.cs
	k := pe.r.cfg.Chunk
	batch := pe.r.cfg.Batch
	pending := 0
	flush := func() {
		if pending > 0 {
			pe.advance(time.Duration(pending) * cs.nodeCost)
			pending = 0
		}
		pe.service()
	}
	for {
		n, ok := pe.local.Pop()
		if !ok {
			flush()
			c, ok2 := pe.pool.TakeNewest()
			if !ok2 {
				return
			}
			pe.workAvail = pe.pool.Len()
			pe.t.Reacquires++
			pe.rec(obs.KindReacquire, -1, int64(len(c)))
			pe.local.PushAll(c)
			continue
		}
		pending++
		pe.t.Nodes++
		if n.NumKids == 0 {
			pe.t.Leaves++
		} else {
			pe.local.PushAll(pe.ex.Children(&n))
		}
		pe.t.NoteDepth(pe.local.Len())
		if pe.local.Len() >= 2*k {
			flush()
			pe.pool.Put(pe.local.TakeBottom(k))
			pe.workAvail = pe.pool.Len()
			pe.t.Releases++
			pe.rec(obs.KindRelease, -1, int64(pe.workAvail))
		} else if pending >= batch {
			flush()
		}
	}
}

// service answers a pending request: half the pool (rapid diffusion) or a
// denial, for the cost of two remote writes.
func (pe *simDistPE) service() {
	if pe.request < 0 {
		return
	}
	thief := pe.r.pes[pe.request]
	var chunks []stack.Chunk
	if pe.pool.Len() > 0 {
		chunks = pe.pool.TakeHalf()
		pe.workAvail = pe.pool.Len()
	}
	pe.advance(2 * pe.r.refCost(pe.me, thief.me)) // amount + address writes
	thief.resp = chunks
	thief.respReady = true
	pe.request = -1
	pe.t.Requests++
	if len(chunks) > 0 {
		pe.rec(obs.KindStealGrant, int32(thief.me), int64(len(chunks)))
	} else {
		pe.rec(obs.KindStealDeny, int32(thief.me), 0)
	}
}

func (pe *simDistPE) search() bool {
	n := len(pe.r.pes)
	if n == 1 {
		return false
	}
	for {
		sawWorker := false
		var perm []int
		if pe.r.hier {
			perm = pe.rng.CycleHier(pe.me, n, pe.r.nodeSize)
		} else {
			perm = pe.rng.Cycle(pe.me, n)
		}
		for _, v := range perm {
			pe.service()
			wa := pe.probe(v)
			if wa > 0 {
				pe.setState(stats.Stealing)
				ok := pe.steal(v)
				pe.setState(stats.Searching)
				if ok {
					return true
				}
			}
			if wa >= 0 {
				sawWorker = true
			}
		}
		if !sawWorker {
			return false
		}
	}
}

func (pe *simDistPE) probe(v int) int {
	pe.rec(obs.KindProbeStart, int32(v), 0)
	pe.advance(pe.r.refCost(pe.me, v))
	pe.t.Probes++
	wa := pe.r.pes[v].workAvail
	pe.rec(obs.KindProbeResult, int32(v), int64(wa))
	return wa
}

// steal claims the victim's request word and polls its own response slot
// until the owner answers. The wait is a poll loop rather than a blocking
// sleep because the waiting thief must keep servicing its own request word
// (two thieves can be each other's victims).
func (pe *simDistPE) steal(v int) bool {
	r := pe.r
	cs := &r.cs
	vs := r.pes[v]

	pe.rec(obs.KindStealRequest, int32(v), 0)
	pe.advance(r.lockCost(pe.me, v)) // lock-protected request-word write
	if vs.request != -1 {
		pe.t.FailedSteals++
		pe.rec(obs.KindStealFail, int32(v), 0)
		return false
	}
	vs.request = pe.me

	for !pe.respReady {
		pe.service()
		pe.advance(cs.respPoll)
	}
	chunks := pe.resp
	pe.resp = nil
	pe.respReady = false

	if len(chunks) == 0 {
		pe.t.FailedSteals++
		pe.rec(obs.KindStealFail, int32(v), 0)
		return false
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	pe.advance(r.bulkCost(pe.me, v, total*nodeBytes)) // one-sided get
	pe.t.Steals++
	pe.t.ChunksGot += int64(len(chunks))
	pe.rec(obs.KindChunkTransfer, int32(v), int64(total))

	pe.local.PushAll(chunks[0])
	for _, c := range chunks[1:] {
		pe.pool.Put(c)
	}
	pe.workAvail = pe.pool.Len()
	return true
}

func (pe *simDistPE) sbEnter() bool {
	r := pe.r
	pe.advance(r.cs.remoteRef)
	r.sbCount++
	if r.sbCount == len(r.pes) {
		if len(r.pes) > 1 {
			pe.advance(time.Duration(bits.Len(uint(len(r.pes)-1))) * r.cs.remoteRef)
		}
		r.sbAnnounced = true
		return true
	}
	return false
}

func (pe *simDistPE) terminate() bool {
	r := pe.r
	if pe.sbEnter() {
		return true
	}
	n := len(r.pes)
	for {
		pe.service()
		pe.advance(r.cs.remoteRef) // poll the announcement flag
		if r.sbAnnounced {
			return true
		}
		v := pe.rng.Victim(pe.me, n)
		if wa := pe.probe(v); wa > 0 {
			if r.sbAnnounced {
				return true
			}
			pe.advance(r.cs.remoteRef) // leave the barrier
			r.sbCount--
			pe.setState(stats.Stealing)
			ok := pe.steal(v)
			pe.setState(stats.Idle)
			if ok {
				return false
			}
			if pe.sbEnter() {
				return true
			}
		}
	}
}
