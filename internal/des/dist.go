package des

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/term"
	"repro/internal/uts"
)

// simDistRun is the run state of the simulated distributed-memory
// algorithm (Section 3.3.3).
type simDistRun struct {
	sp  *uts.Spec
	cfg Config
	cs  costs
	pes []*simDistPE

	// Two-level topology (Section 6.2 future work): PEs in nodes of
	// nodeSize consecutive IDs, same-node references charged to intra.
	nodeSize int
	intra    costs
	hier     bool // locality-aware probe order (upc-distmem-hier)

	sbCount     int
	sbAnnounced bool

	finish func(*Proc)
}

// Remote operations of the distributed-memory protocol (see remote.go).
// Every cross-PE effect — probing a victim's work counter, claiming its
// request word, delivering a steal response, entering or leaving the
// termination barrier — goes through one of these, so the owner of the
// touched state applies it in global key order under every engine.
const (
	// opDistReadAvail reads dst's stealable-work counter (a probe).
	opDistReadAvail uint8 = iota
	// opDistClaim claims dst's request word for thief a; returns 1 on
	// success, 0 if another thief holds it.
	opDistClaim
	// opDistReadAnnounced reads the termination-announcement flag (dst 0:
	// the barrier state has PE 0 affinity).
	opDistReadAnnounced
	// opDistDeliver writes a steal response (the chunks, possibly none)
	// into thief dst's response slot.
	opDistDeliver
	// opDistSbEnter increments the barrier count at PE 0; returns 1 when
	// this arrival completed the barrier.
	opDistSbEnter
	// opDistSbLeave decrements the barrier count at PE 0.
	opDistSbLeave
	// opDistSbAnnounce sets the termination-announcement flag at PE 0.
	opDistSbAnnounce
)

// apply interprets the protocol's remote operations. It runs in the
// destination PE's execution context — under the sharded engine that is the
// shard owning dst (PE 0's shard for the barrier state) — and never
// advances time.
func (r *simDistRun) apply(dst int, op uint8, a, b int64, chunks []stack.Chunk) int64 {
	switch op {
	case opDistReadAvail:
		return int64(r.pes[dst].workAvail)
	case opDistClaim:
		vs := r.pes[dst]
		if vs.request != -1 {
			return 0
		}
		vs.request = int(a)
		vs.p.Post(IntrSteal)
		return 1
	case opDistReadAnnounced:
		if r.sbAnnounced {
			return 1
		}
		return 0
	case opDistDeliver:
		tp := r.pes[dst]
		tp.resp = chunks
		tp.respReady = true
		return 0
	case opDistSbEnter:
		r.sbCount++
		if r.sbCount == len(r.pes) {
			return 1
		}
		return 0
	case opDistSbLeave:
		r.sbCount--
		return 0
	default: // opDistSbAnnounce
		r.sbAnnounced = true
		return 0
	}
}

// sameNode reports whether PEs a and b share a cluster node.
func (r *simDistRun) sameNode(a, b int) bool {
	return r.nodeSize > 1 && a/r.nodeSize == b/r.nodeSize
}

// refCost is one one-sided reference from a to b's partition.
func (r *simDistRun) refCost(a, b int) time.Duration {
	if r.sameNode(a, b) {
		return r.intra.remoteRef
	}
	return r.cs.remoteRef
}

// lockCost is one lock round trip from a to b's partition.
func (r *simDistRun) lockCost(a, b int) time.Duration {
	if r.sameNode(a, b) {
		return r.intra.lockRTT
	}
	return r.cs.lockRTT
}

// bulkCost is a one-sided transfer of n bytes between a and b.
func (r *simDistRun) bulkCost(a, b, n int) time.Duration {
	if r.sameNode(a, b) {
		return r.intra.bulk(n)
	}
	return r.cs.bulk(n)
}

// simDistPE is one simulated PE: owner-only stack and pool, a request
// word claimed by thieves, and an incoming response slot.
type simDistPE struct {
	r     *simDistRun
	p     *Proc
	me    int
	t     *stats.Thread
	lane  *obs.Lane // nil when the run is untraced
	state stats.State

	local     stack.Deque
	pool      stack.Pool
	workAvail int
	request   int // thief ID or -1

	resp      []stack.Chunk
	respReady bool

	rng *core.ProbeOrder
	ex  *uts.Expander

	nodesFlushed int64              // t.Nodes already published to the lane's live counter
	ctl          *policy.Controller // nil when the run is not adaptive
	ctlNodes     int64              // t.Nodes already reported to the controller
	stolen       int                // nodes delivered by the last steal (controller feedback)
}

// flushNodes publishes node progress to the lane's live counter in
// batches at the work loop's quantum boundaries — one atomic add per
// flush, never per node, and never a schedule perturbation (the live
// counter is observation-only).
func (pe *simDistPE) flushNodes() {
	if d := pe.t.Nodes - pe.nodesFlushed; d != 0 {
		pe.lane.AddNodes(d)
		pe.nodesFlushed = pe.t.Nodes
	}
}

// noteCtl feeds node progress to the PE's controller stamped with virtual
// time, closing adaptation windows; a no-op for fixed-knob runs.
func (pe *simDistPE) noteCtl() {
	if pe.ctl == nil {
		return
	}
	pe.ctl.NoteNodes(int(pe.t.Nodes-pe.ctlNodes), pe.local.Len(), int64(pe.p.Now()))
	pe.ctlNodes = pe.t.Nodes
}

// chunk returns the release granularity in effect: the adapted value under
// a controller, the configured constant otherwise.
func (pe *simDistPE) chunk() int {
	if pe.ctl != nil {
		return pe.ctl.Chunk()
	}
	return pe.r.cfg.Chunk
}

// stealTimed brackets a steal attempt with the controller's latency probe,
// stamped with virtual time on both edges.
func (pe *simDistPE) stealTimed(v int) bool {
	if pe.ctl == nil {
		return pe.steal(v)
	}
	pe.ctl.StealBegin(int64(pe.p.Now()))
	pe.stolen = 0
	ok := pe.steal(v)
	pe.ctl.StealEnd(ok, pe.stolen, int64(pe.p.Now()))
	return ok
}

func simDistMem(sim *Sim, sp *uts.Spec, cfg Config, cs costs, res *core.Result, ps *policy.Set, finish func(*Proc)) (sampler, error) {
	r := &simDistRun{sp: sp, cfg: cfg, cs: cs, finish: finish,
		hier: cfg.Algorithm == core.UPCDistMemHier}
	if cfg.NodeSize >= 2 && cfg.Intra != nil {
		r.nodeSize = cfg.NodeSize
		r.intra = newCosts(cfg.Intra)
	}
	sim.SetRemote(r.apply)
	r.pes = make([]*simDistPE, cfg.PEs)
	for i := 0; i < cfg.PEs; i++ {
		pe := &simDistPE{r: r, me: i, t: &res.Threads[i], lane: cfg.Tracer.Lane(i), request: -1, rng: core.NewProbeOrder(cfg.Seed, i), ex: uts.NewExpander(sp), ctl: ps.Controller(i)}
		r.pes[i] = pe
		if i == 0 {
			pe.local.Push(uts.Root(sp))
		}
		sim.Spawn(func(p *Proc) {
			pe.p = p
			pe.main()
			r.finish(p)
		})
	}
	return func() (sources, working int) {
		for _, pe := range r.pes {
			if pe.workAvail > 0 {
				sources++
			}
			if pe.local.Len() > 0 || pe.pool.Len() > 0 {
				working++
			}
		}
		return
	}, nil
}

func (pe *simDistPE) advance(d time.Duration) {
	pe.t.AddState(pe.state, d)
	pe.p.Advance(d)
}

// charge books d of virtual time against the PE's current state without
// advancing the clock — used by step functions, where the engine advances.
func (pe *simDistPE) charge(d time.Duration) time.Duration {
	pe.t.AddState(pe.state, d)
	return d
}

// rec records an event stamped with the PE's current virtual time.
func (pe *simDistPE) rec(k obs.Kind, other int32, value int64) {
	pe.lane.RecV(k, other, value, pe.p.Now())
}

// setState pairs the stats state charge target with the tracer's state
// event.
func (pe *simDistPE) setState(s stats.State) {
	pe.state = s
	pe.rec(obs.KindStateChange, -1, int64(s))
}

func (pe *simDistPE) main() {
	pe.rec(obs.KindStateChange, -1, int64(stats.Working))
	for {
		pe.work()
		pe.workAvail = -1
		pe.setState(stats.Searching)
		if pe.search() {
			pe.setState(stats.Working)
			continue
		}
		pe.setState(stats.Idle)
		pe.t.TermBarrierEntries++
		pe.rec(obs.KindTermEnter, -1, 0)
		if pe.terminate() {
			pe.service()
			return
		}
		pe.rec(obs.KindTermExit, -1, 0)
		pe.setState(stats.Working)
	}
}

// work explores nodes batch-wise as one stepped advance: each quantum is a
// batch of node work (ending early at a release threshold or stack drain),
// and the boundary between quanta is the polling point where a thief's
// posted interrupt is observed — the same virtual instant the original
// per-batch service() call would have seen the request word, but with zero
// events while no thief is knocking. Release and reacquire are executed at
// the boundary instant, after any pending request has been serviced, which
// reproduces the original flush-then-manipulate order exactly.
func (pe *simDistPE) work() {
	cs := &pe.r.cs
	k := pe.chunk()
	batch := pe.r.cfg.Batch
	pending := 0
	releasing := false
	drained := false
	done := false
	step := func() (time.Duration, uint8) {
		if releasing {
			releasing = false
			pe.pool.Put(pe.local.TakeBottom(k))
			pe.workAvail = pe.pool.Len()
			pe.t.Releases++
			pe.rec(obs.KindRelease, -1, int64(pe.workAvail))
		}
		if drained {
			drained = false
			c, ok := pe.pool.TakeNewest()
			if !ok {
				done = true
				return 0, StepDone
			}
			pe.workAvail = pe.pool.Len()
			pe.t.Reacquires++
			pe.rec(obs.KindReacquire, -1, int64(len(c)))
			pe.local.PushAll(c)
		}
		for {
			n, ok := pe.local.Pop()
			if !ok {
				drained = true
				d := time.Duration(pending) * cs.nodeCost
				pending = 0
				pe.flushNodes()
				return pe.charge(d), 0
			}
			pending++
			pe.t.Nodes++
			if n.NumKids == 0 {
				pe.t.Leaves++
			} else {
				pe.local.PushAll(pe.ex.Children(&n))
			}
			pe.t.NoteDepth(pe.local.Len())
			if pe.local.Len() >= 2*k {
				releasing = true
				d := time.Duration(pending) * cs.nodeCost
				pending = 0
				return pe.charge(d), 0
			}
			if pending >= batch {
				d := time.Duration(pending) * cs.nodeCost
				pending = 0
				pe.flushNodes()
				// The knob refresh sits at the batch boundary — a point with
				// no release pending, so the 2k threshold and the released
				// chunk never straddle a chunk-size change.
				pe.noteCtl()
				k = pe.chunk()
				return pe.charge(d), 0
			}
		}
	}
	for !done {
		if m := pe.p.AdvanceStepped(step); m != 0 {
			pe.service()
		}
	}
}

// service answers a pending request: half the pool (rapid diffusion) or a
// denial, for the cost of two remote writes. It also clears the steal
// interrupt, so a request consumed through a direct check cannot trigger a
// stale second wakeup at the next polling boundary.
func (pe *simDistPE) service() {
	pe.p.ClearIntr(IntrSteal)
	if pe.request < 0 {
		return
	}
	thief := pe.request
	var chunks []stack.Chunk
	if pe.pool.Len() > 0 {
		chunks = pe.pool.TakeHalf()
		pe.workAvail = pe.pool.Len()
	}
	d := 2 * pe.r.refCost(pe.me, thief) // amount + address writes
	pe.t.AddState(pe.state, d)
	pe.p.RemoteSend(thief, d, 0, opDistDeliver, 0, 0, chunks)
	pe.request = -1
	pe.t.Requests++
	if len(chunks) > 0 {
		pe.rec(obs.KindStealGrant, int32(thief), int64(len(chunks)))
	} else {
		if pe.ctl != nil && pe.local.Len() > 0 {
			// Denied while the local stack holds work: victim-side evidence
			// that the 2k release threshold is withholding work from demand.
			pe.ctl.NoteDenied()
		}
		pe.rec(obs.KindStealDeny, int32(thief), 0)
	}
}

// search probe phases.
const (
	phPoll  = iota // zero-length quantum whose boundary is a service point
	phProbe        // pay the probe's remote reference (no service point)
	phEval         // read workAvail at the probe's completion instant
)

func (pe *simDistPE) search() bool {
	n := len(pe.r.pes)
	if n == 1 {
		return false
	}
	var walk core.ProbeWalk
	sawWorker := false
	stealFrom := -1
	exhausted := false
	newWalk := func() {
		switch {
		case pe.r.hier:
			walk = pe.rng.WalkHier(pe.me, n, pe.r.nodeSize)
		case pe.ctl != nil && pe.ctl.NodeSize() > 1:
			// Adaptive tiering: the controller turned on the intra-node
			// tier because the latency model says same-node steals pay.
			walk = pe.rng.WalkHier(pe.me, n, pe.ctl.NodeSize())
		default:
			walk = pe.rng.Walk(pe.me, n)
		}
		sawWorker = false
	}
	newWalk()
	ph := phPoll
	victim := -1
	// One quantum triple per victim: a zero-length service point (the
	// original loop called service() before every probe), the probe's
	// remote reference with the boundary check suppressed (the original
	// had no service point between issuing a probe and reading it), and
	// the evaluation at the completion instant.
	step := func() (time.Duration, uint8) {
		switch ph {
		case phPoll:
			ph = phProbe
			return 0, 0
		case phProbe:
			victim = walk.Victim()
			pe.rec(obs.KindProbeStart, int32(victim), 0)
			ph = phEval
			d := pe.p.StageRemote(victim, pe.r.refCost(pe.me, victim), opDistReadAvail, 0, 0)
			return pe.charge(d), StepNoPoll
		default: // phEval
			pe.t.Probes++
			wa := int(pe.p.StagedResult(0))
			pe.rec(obs.KindProbeResult, int32(victim), int64(wa))
			if wa > 0 {
				sawWorker = true
				stealFrom = victim
				return 0, StepDone
			}
			if wa >= 0 {
				sawWorker = true
			}
			walk.Advance()
			if walk.Exhausted() {
				if !sawWorker {
					exhausted = true
					return 0, StepDone
				}
				newWalk()
			}
			ph = phProbe
			return 0, 0 // service point before the next probe
		}
	}
	for {
		if m := pe.p.AdvanceStepped(step); m != 0 {
			pe.service()
			continue
		}
		if exhausted {
			return false
		}
		v := stealFrom
		stealFrom = -1
		pe.setState(stats.Stealing)
		ok := pe.stealTimed(v)
		pe.setState(stats.Searching)
		pe.noteCtl()
		if ok {
			return true
		}
		walk.Advance()
		if walk.Exhausted() {
			if !sawWorker {
				return false
			}
			newWalk()
		}
		ph = phPoll // the original serviced before the next probe
	}
}

// steal claims the victim's request word, posts the steal interrupt that
// makes the victim's engine observe the request at its next quantized
// polling boundary, and polls its own response slot until the owner
// answers. The wait is a poll loop rather than a blocking sleep because
// the waiting thief must keep servicing its own request word (two thieves
// can be each other's victims).
func (pe *simDistPE) steal(v int) bool {
	r := pe.r
	cs := &r.cs

	pe.rec(obs.KindStealRequest, int32(v), 0)
	d := r.lockCost(pe.me, v) // lock-protected request-word write
	pe.t.AddState(pe.state, d)
	if pe.p.RemoteCall(v, d, opDistClaim, int64(pe.me), 0) == 0 {
		pe.t.FailedSteals++
		pe.rec(obs.KindStealFail, int32(v), 0)
		return false
	}

	// The response wait is a stepped advance: each quantum is one respPoll,
	// each boundary is the original loop-top respReady check, and a steal
	// request landing mid-wait surfaces as an interrupt at the boundary —
	// the same virtual instant the original loop's service() call saw the
	// request word. `polled` enforces the original's service-then-poll-
	// then-check order: after any service point the next quantum charges
	// before respReady is consulted again.
	pe.service() // the original serviced once before the first poll
	polled := false
	step := func() (time.Duration, uint8) {
		if polled && pe.respReady {
			return 0, StepDone
		}
		polled = true
		return pe.charge(cs.respPoll), 0
	}
	for {
		m := pe.p.AdvanceStepped(step)
		if m == 0 {
			break // respReady observed at a poll boundary
		}
		// The original checks respReady before servicing: when the
		// response arrived at this same boundary, exit and leave the
		// request — interrupt re-posted — for the next service point.
		if pe.respReady {
			pe.p.Post(m)
			break
		}
		pe.service()
		polled = false
	}
	chunks := pe.resp
	pe.resp = nil
	pe.respReady = false

	if len(chunks) == 0 {
		pe.t.FailedSteals++
		pe.rec(obs.KindStealFail, int32(v), 0)
		return false
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	pe.advance(r.bulkCost(pe.me, v, total*nodeBytes)) // one-sided get
	pe.t.Steals++
	pe.t.ChunksGot += int64(len(chunks))
	pe.stolen = total
	pe.rec(obs.KindChunkTransfer, int32(v), int64(total))

	pe.local.PushAll(chunks[0])
	for _, c := range chunks[1:] {
		pe.pool.Put(c)
	}
	pe.workAvail = pe.pool.Len()
	return true
}

func (pe *simDistPE) sbEnter() bool {
	r := pe.r
	d := r.cs.remoteRef
	pe.t.AddState(pe.state, d)
	if pe.p.RemoteCall(0, d, opDistSbEnter, 0, 0) != 0 {
		// This arrival completed the barrier: announce termination, paying
		// one remote reference per level of the announcement tree.
		ad := time.Duration(term.AnnounceLevels(len(r.pes))) * r.cs.remoteRef
		pe.t.AddState(pe.state, ad)
		pe.p.RemoteSend(0, ad, 0, opDistSbAnnounce, 0, 0, nil)
		return true
	}
	return false
}

// terminate phases beyond the shared poll/probe/eval triple.
const (
	phAnn = phEval + 1 // pay the announcement-flag poll (no service point)
)

func (pe *simDistPE) terminate() bool {
	r := pe.r
	if pe.sbEnter() {
		return true
	}
	n := len(r.pes)
	announced := false
	sawAnn := false
	stealFrom := -1
	ph := phPoll
	victim := -1
	// Each in-barrier iteration is [service point, announcement poll,
	// probe, eval], with the boundary check suppressed on the two advances
	// the original performed back-to-back without a service call between.
	// The announcement flag lives at PE 0, so reading it is a staged remote
	// op completing at the poll's boundary; the probe quantum stages two
	// reads — the victim's work counter and the flag again — because the
	// original re-checks announcement at the probe's completion instant
	// before leaving the barrier to steal.
	step := func() (time.Duration, uint8) {
		switch ph {
		case phPoll:
			ph = phAnn
			return 0, 0
		case phAnn:
			ph = phProbe
			d := pe.p.StageRemote(0, r.cs.remoteRef, opDistReadAnnounced, 0, 0)
			return pe.charge(d), StepNoPoll
		case phProbe:
			if pe.p.StagedResult(0) != 0 {
				announced = true
				return 0, StepDone
			}
			victim = pe.rng.Victim(pe.me, n)
			pe.rec(obs.KindProbeStart, int32(victim), 0)
			ph = phEval
			d := pe.p.StageRemote(victim, pe.r.refCost(pe.me, victim), opDistReadAvail, 0, 0)
			pe.p.StageRemote(0, d, opDistReadAnnounced, 0, 0)
			return pe.charge(d), StepNoPoll
		default: // phEval
			pe.t.Probes++
			wa := int(pe.p.StagedResult(0))
			sawAnn = pe.p.StagedResult(1) != 0
			pe.rec(obs.KindProbeResult, int32(victim), int64(wa))
			ph = phPoll
			if wa > 0 {
				stealFrom = victim
				return 0, StepDone
			}
			return 0, 0 // service point at the next iteration's top
		}
	}
	for {
		if m := pe.p.AdvanceStepped(step); m != 0 {
			pe.service()
			continue
		}
		if announced {
			return true
		}
		v := stealFrom
		stealFrom = -1
		if sawAnn {
			return true
		}
		ld := r.cs.remoteRef // leave the barrier
		pe.t.AddState(pe.state, ld)
		pe.p.RemoteCall(0, ld, opDistSbLeave, 0, 0)
		pe.setState(stats.Stealing)
		ok := pe.stealTimed(v)
		pe.setState(stats.Idle)
		if ok {
			return false
		}
		if pe.sbEnter() {
			return true
		}
		ph = phPoll
	}
}
