package des

import (
	"container/heap"
	"fmt"
)

// This file is the legacy reference engine: the original event loop that
// wakes and parks each PE through a pair of unbuffered channels and keeps
// the event queue in a boxed container/heap. It is retained verbatim (plus
// the Events counter and the stepped-advance emulation) so the batched
// engine's schedule can be proven bit-identical against it — see the
// differential tests in engine_test.go and Config.Engine.

// runLegacy is the legacy central loop: two channel rendezvous and one
// goroutine switch per event.
func (s *Sim) runLegacy() error {
	for s.lheap.Len() > 0 {
		e := heap.Pop(&s.lheap).(ev)
		if e.t < s.now {
			return fmt.Errorf("des: time went backwards (%d < %d)", e.t, s.now)
		}
		s.now = e.t
		s.events++
		e.p.wake <- struct{}{}
		<-e.p.park
		switch e.p.status {
		case statusRunnable:
			s.schedule(e.p, s.now+e.p.delay)
		case statusBlocked:
			// Another PE must Wake it later.
		case statusFinished:
			s.finished++
		}
	}
	if s.finished != s.nprocs {
		s.stuck = true
		return fmt.Errorf("des: deadlock: %d of %d PEs still blocked at t=%v",
			s.nprocs-s.finished, s.nprocs, s.Now())
	}
	return nil
}

// legacyAdvance is the original Advance: park, let the loop reschedule us
// at now+d, resume when the event fires.
func (p *Proc) legacyAdvance(d int64) {
	p.status = statusRunnable
	p.delay = d
	p.park <- struct{}{}
	<-p.wake
}

// legacyBlock is the original Block.
func (p *Proc) legacyBlock() {
	p.status = statusBlocked
	p.park <- struct{}{}
	<-p.wake
}

// legacyAdvanceStepped emulates the stepped-advance contract with one full
// park/schedule/pop round trip per nonzero quantum — the per-boundary cost
// profile of the original engine — while applying the boundary flags in
// exactly the order the batched engine does.
func (p *Proc) legacyAdvanceStepped(step Stepper) Intr {
	for {
		d, fl := step()
		if d > 0 {
			p.legacyAdvance(int64(d))
		}
		if p.nstag > 0 {
			p.runStaged()
		}
		if fl&StepDone != 0 {
			return 0
		}
		if fl&StepNoPoll == 0 && p.intr != 0 {
			m := p.intr
			p.intr = 0
			return m
		}
	}
}

// evHeap is the legacy boxed min-heap on (t, seq).
type evHeap []ev

func (h evHeap) Len() int            { return len(h) }
func (h evHeap) Less(i, j int) bool  { return evLess(h[i], h[j]) }
func (h evHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x interface{}) { *h = append(*h, x.(ev)) }
func (h *evHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// push mirrors flatHeap.push for the shared schedule path.
func (h *evHeap) push(e ev) { heap.Push(h, e) }
