package des_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/pgas"
	"repro/internal/uts"
)

// Simulating 64 processors of the paper's Kitty Hawk cluster. The
// simulation is deterministic: identical configuration, identical result,
// including the virtual makespan and every per-PE counter.
func ExampleRun() {
	res, err := des.Run(&uts.Balanced3x7, des.Config{
		Algorithm: core.UPCDistMem,
		PEs:       64,
		Chunk:     8,
		Model:     &pgas.KittyHawk,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Nodes(), res.Leaves())
	// Output: 3280 2187
}
