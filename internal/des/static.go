package des

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// simStatic is the simulated no-load-balancing baseline: the root's
// children are dealt round-robin and each PE explores its share to
// completion in isolation. Its makespan is the largest share — on critical
// binomial trees, essentially the whole tree on one PE — which is the
// quantitative form of the paper's premise that UTS cannot be statically
// partitioned.
func simStatic(sim *Sim, sp *uts.Spec, cfg Config, cs costs, res *core.Result, finish func(*Proc)) (sampler, error) {
	st := sp.Stream()
	root := uts.Root(sp)
	kids := uts.Children(sp, st, &root, nil)

	pes := make([]*simStaticPE, cfg.PEs)
	for i := 0; i < cfg.PEs; i++ {
		pe := &simStaticPE{sp: sp, cs: cs, me: i, t: &res.Threads[i], lane: cfg.Tracer.Lane(i), batch: cfg.Batch, ex: uts.NewExpander(sp)}
		pes[i] = pe
		if i == 0 {
			pe.extraRoot = &root
		}
		for j := i; j < len(kids); j += cfg.PEs {
			pe.local.Push(kids[j])
		}
		sim.Spawn(func(p *Proc) {
			pe.p = p
			pe.run()
			finish(p)
		})
	}
	return func() (sources, working int) {
		for _, pe := range pes {
			if pe.local.Len() > 0 {
				working++
			}
		}
		return 0, working
	}, nil
}

type simStaticPE struct {
	sp        *uts.Spec
	cs        costs
	p         *Proc
	me        int
	t         *stats.Thread
	lane      *obs.Lane // nil when the run is untraced
	batch     int
	local     stack.Deque
	extraRoot *uts.Node
	ex        *uts.Expander

	nodesFlushed int64 // t.Nodes already published to the lane's live counter
}

// flushNodes publishes node progress to the lane's live counter in
// batches at the quantum boundaries — one atomic add per flush, never
// per node.
func (pe *simStaticPE) flushNodes() {
	if d := pe.t.Nodes - pe.nodesFlushed; d != 0 {
		pe.lane.AddNodes(d)
		pe.nodesFlushed = pe.t.Nodes
	}
}

func (pe *simStaticPE) run() {
	pe.lane.RecV(obs.KindStateChange, -1, int64(stats.Working), pe.p.Now())
	if pe.extraRoot != nil {
		pe.t.Nodes++
		if pe.extraRoot.NumKids == 0 {
			pe.t.Leaves++
		}
	}
	// The whole share is one stepped advance: one quantum per batch of
	// node work, committed inline whenever no other PE's boundary lands
	// earlier — a statically partitioned PE never interacts, so its entire
	// traversal typically costs a handful of events.
	pending := 0
	pe.p.AdvanceStepped(func() (time.Duration, uint8) {
		for {
			n, ok := pe.local.Pop()
			if !ok {
				d := time.Duration(pending) * pe.cs.nodeCost
				pending = 0
				pe.flushNodes()
				pe.t.AddState(stats.Working, d)
				return d, StepDone
			}
			pending++
			pe.t.Nodes++
			if n.NumKids == 0 {
				pe.t.Leaves++
			} else {
				pe.local.PushAll(pe.ex.Children(&n))
			}
			pe.t.NoteDepth(pe.local.Len())
			if pending >= pe.batch {
				d := time.Duration(pending) * pe.cs.nodeCost
				pending = 0
				pe.flushNodes()
				pe.t.AddState(stats.Working, d)
				return d, 0
			}
		}
	})
	pe.lane.RecV(obs.KindStateChange, -1, int64(stats.Idle), pe.p.Now())
}
