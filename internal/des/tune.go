package des

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/uts"
)

// TuneChunk finds the best steal granularity for a configuration by
// simulating the candidate chunk sizes and returning the one with the
// highest exploration rate, along with each candidate's result.
//
// This automates the manual tuning the paper's Section 4.2.1 describes:
// the chunk-size sweet spot is a plateau whose position depends on the
// machine's message costs and that narrows with processor count, so a
// deployment at a new scale needs re-tuning. A simulated sweep under the
// machine's cost model answers in seconds what a testbed sweep answers in
// machine-hours. Candidates default to the Figure 4 axis {1,2,...,128}.
func TuneChunk(sp *uts.Spec, cfg Config, candidates []int) (best int, results map[int]*core.Result, err error) {
	if len(candidates) == 0 {
		candidates = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	results = make(map[int]*core.Result, len(candidates))
	rates := make(map[int]float64, len(candidates))
	for _, k := range candidates {
		if k < 1 {
			return 0, nil, fmt.Errorf("des: chunk candidate %d out of range", k)
		}
		c := cfg
		c.Chunk = k
		c.Batch = 0 // re-derive the service batch from each chunk size
		res, runErr := Run(sp, c)
		if runErr != nil {
			return 0, nil, fmt.Errorf("des: tuning chunk %d: %w", k, runErr)
		}
		results[k] = res
		rates[k] = res.Rate()
	}
	best = bestCandidate(candidates, rates)
	return best, results, nil
}

// bestCandidate selects the candidate with the highest finite rate.
// Non-finite rates (NaN/±Inf from degenerate runs — a zero-duration
// makespan, a division artifact) never win: a NaN would poison every `>`
// comparison and silently keep whatever candidate preceded it. Ties break
// deterministically toward the smaller chunk, since on the paper's
// Figure-4 plateau the smaller granularity transfers less per steal for
// the same rate. Returns 0 if no candidate has a finite rate.
func bestCandidate(candidates []int, rates map[int]float64) int {
	best, bestRate := 0, math.Inf(-1)
	for _, k := range candidates {
		r, ok := rates[k]
		if !ok || math.IsNaN(r) || math.IsInf(r, 0) {
			continue
		}
		if best == 0 || r > bestRate || (r == bestRate && k < best) {
			bestRate, best = r, k
		}
	}
	return best
}
