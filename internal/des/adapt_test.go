package des

import (
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pgas"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/uts"
)

// fingerprint condenses a simulated run into the tuple the differential
// tests compare: every field is deterministic under the DES, so any
// drift — a stray virtual-time charge, a perturbed probe order, an extra
// release — shows up here.
type fingerprint struct {
	Elapsed      time.Duration
	Events       uint64
	Nodes        int64
	Steals       int64
	Probes       int64
	FailedSteals int64
	Releases     int64
}

func fp(res *core.Result, info Info) fingerprint {
	return fingerprint{
		Elapsed:      res.Elapsed,
		Events:       info.Events,
		Nodes:        res.Nodes(),
		Steals:       res.Sum(func(t *stats.Thread) int64 { return t.Steals }),
		Probes:       res.Sum(func(t *stats.Thread) int64 { return t.Probes }),
		FailedSteals: res.Sum(func(t *stats.Thread) int64 { return t.FailedSteals }),
		Releases:     res.Sum(func(t *stats.Thread) int64 { return t.Releases }),
	}
}

// TestAdaptOffByteIdentical pins controller-disabled runs to golden
// fingerprints captured on the tree at the commit BEFORE the adaptive
// wiring existed. Every scheduler hook sits behind a single nil check, so
// a run with Config.Adapt == nil must reproduce these tuples exactly; a
// mismatch means the wiring perturbed the fixed-knob path.
func TestAdaptOffByteIdentical(t *testing.T) {
	altix := pgas.Altix
	cases := []struct {
		name string
		sp   *uts.Spec
		cfg  Config
		want fingerprint
	}{
		{"distmem-t3s-kh", &uts.T3Small,
			Config{Algorithm: core.UPCDistMem, PEs: 64, Chunk: 16, Model: &pgas.KittyHawk, Seed: 1},
			fingerprint{1159213, 18074, 6089, 16, 15315, 94, 17}},
		{"rapdif-t3s-altix", &uts.T3Small,
			Config{Algorithm: core.UPCTermRapdif, PEs: 32, Chunk: 8, Model: &pgas.Altix, Seed: 2},
			fingerprint{855210, 36032, 6089, 57, 33419, 164, 57}},
		{"mpiws-t3s-kh", &uts.T3Small,
			Config{Algorithm: core.MPIWS, PEs: 16, Chunk: 16, PollInterval: 8, Model: &pgas.KittyHawk, Seed: 3},
			fingerprint{923853, 16053, 6089, 16, 1259, 1228, 16}},
		{"hier-t3s-kh", &uts.T3Small,
			Config{Algorithm: core.UPCDistMemHier, PEs: 64, Chunk: 16, Model: &pgas.KittyHawk, NodeSize: 8, Intra: &altix, Seed: 4},
			fingerprint{1077800, 18498, 6089, 17, 15547, 83, 17}},
		{"relaxed-t3s-ts", &uts.T3Small,
			Config{Algorithm: core.UPCTermRelaxed, PEs: 16, Chunk: 16, Model: &pgas.Topsail, Seed: 5},
			fingerprint{807406, 2743, 6089, 17, 1658, 74, 17}},
		{"shmem-tiny-kh", &uts.BenchTiny,
			Config{Algorithm: core.UPCSharedMem, PEs: 8, Chunk: 4, Model: &pgas.KittyHawk, Seed: 6},
			fingerprint{1226414, 2338, 3337, 37, 158, 13, 108}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, info, err := RunInfo(tc.sp, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fp(res, info); got != tc.want {
				t.Errorf("fixed-knob run drifted from pre-adaptive golden:\ngot  %+v\nwant %+v", got, tc.want)
			}
			if res.Policy != nil {
				t.Errorf("Adapt == nil must leave Result.Policy nil, got %+v", res.Policy)
			}
		})
	}
}

// TestAdaptiveDeterministic demands bit-identical adaptive runs across
// engines and shard counts: the controllers consume only virtual-time
// feedback, so the sharded dispatch must not change a single decision.
func TestAdaptiveDeterministic(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"distmem", Config{Algorithm: core.UPCDistMem, PEs: 64, Chunk: 2,
			Model: &pgas.KittyHawk, Seed: 11, Adapt: &policy.Config{}}},
		{"mpiws", Config{Algorithm: core.MPIWS, PEs: 32, Chunk: 4, PollInterval: 2,
			Model: &pgas.Altix, Seed: 12, Adapt: &policy.Config{}}},
		{"rapdif", Config{Algorithm: core.UPCTermRapdif, PEs: 32, Chunk: 64,
			Model: &pgas.Altix, Seed: 13, Adapt: &policy.Config{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, refInfo, err := RunInfo(&uts.T3Small, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Policy == nil {
				t.Fatal("adaptive run returned no policy summary")
			}
			for _, shards := range []int{1, 4} {
				cfg := tc.cfg
				cfg.Shards = shards
				res, info, err := RunInfo(&uts.T3Small, cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got, want := fp(res, info), fp(ref, refInfo); got != want {
					t.Errorf("shards=%d diverged from sequential:\ngot  %+v\nwant %+v", shards, got, want)
				}
				if got, want := *res.Policy, *ref.Policy; got.Windows != want.Windows ||
					got.Changes != want.Changes || got.ChunkFinalMean != want.ChunkFinalMean ||
					got.ChunkLo != want.ChunkLo || got.ChunkHi != want.ChunkHi {
					t.Errorf("shards=%d policy summary diverged:\ngot  %+v\nwant %+v", shards, got, want)
				}
			}
		})
	}
}

// TestAdaptiveConverges is the closed-loop check on the small tree:
// started from a deliberately bad chunk on either side of the plateau,
// the adaptive run must reach 80% of the best fixed-chunk rate found by
// a TuneChunk sweep — on two machine profiles — and must at least double
// a start whose fixed rate was under half the best (the serialized k=128
// pathology). T3Small is ~6k nodes, so the adaptation transient is a
// large fraction of the run; the full within-10%-of-best acceptance bar
// runs on T3XXL behind ADAPT_BENCH_GATE (TestAdaptBenchGate), where the
// transient amortizes.
func TestAdaptiveConverges(t *testing.T) {
	models := []*pgas.Model{&pgas.KittyHawk, &pgas.Altix}
	for _, m := range models {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			base := Config{Algorithm: core.UPCDistMem, PEs: 64, Model: m, Seed: 21}
			best, results, err := TuneChunk(&uts.T3Small, base, nil)
			if err != nil {
				t.Fatal(err)
			}
			bestRate := results[best].Rate()
			for _, bad := range []int{1, 128} {
				cfg := base
				cfg.Chunk = bad
				cfg.Adapt = &policy.Config{}
				res, err := Run(&uts.T3Small, cfg)
				if err != nil {
					t.Fatalf("chunk=%d: %v", bad, err)
				}
				rate := res.Rate()
				fixed := results[bad].Rate()
				t.Logf("chunk=%d: adaptive %.0f nodes/s, fixed-at-start %.0f, best fixed %.0f (k=%d); policy: %s",
					bad, rate, fixed, bestRate, best, res.Policy)
				if rate < 0.8*bestRate {
					t.Errorf("chunk=%d: adaptive rate %.0f below 80%% of best fixed %.0f (k=%d)",
						bad, rate, bestRate, best)
				}
				if fixed < 0.5*bestRate && rate < 2*fixed {
					t.Errorf("chunk=%d: adaptive rate %.0f failed to double the bad fixed rate %.0f",
						bad, rate, fixed)
				}
			}
		})
	}
}

// TestAdaptBenchGate is the acceptance bar from the issue, on the big
// tree: adaptive control started from the worst chunk in the sweep must
// land within 5% of the best fixed-chunk rate on T3XXL, where the
// adaptation transient amortizes over 5.2M nodes. It sweeps a reduced
// candidate set and runs ~15s single-core, so it only runs when the
// ADAPT_BENCH_GATE environment variable is set (`make bench-adapt`).
func TestAdaptBenchGate(t *testing.T) {
	if os.Getenv("ADAPT_BENCH_GATE") == "" {
		t.Skip("set ADAPT_BENCH_GATE=1 (or run `make bench-adapt`) to run the T3XXL gate")
	}
	base := Config{Algorithm: core.UPCDistMem, PEs: 256,
		Model: &pgas.KittyHawk, Seed: 7, Shards: runtime.NumCPU()}
	best, results, err := TuneChunk(&uts.T3XXL, base, []int{1, 8, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	bestRate := results[best].Rate()
	worst, worstRate := best, bestRate
	for k, r := range results { //uts:ok detcheck min-rate scan: only the rate is compared, order-independent
		if r.Rate() < worstRate {
			worst, worstRate = k, r.Rate()
		}
	}
	cfg := base
	cfg.Chunk = worst
	cfg.Adapt = &policy.Config{}
	res, err := Run(&uts.T3XXL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := res.Rate()
	t.Logf("T3XXL: adaptive from worst k=%d: %.0f nodes/s; best fixed %.0f (k=%d), worst fixed %.0f; policy: %s",
		worst, rate, bestRate, best, worstRate, res.Policy)
	if rate < 0.95*bestRate {
		t.Errorf("adaptive rate %.0f below 95%% of best fixed %.0f (k=%d)", rate, bestRate, best)
	}
}

// TestAdaptiveHierTier pins the latency-model-driven victim tier: with an
// intra-node model cheap enough that same-node steals pay, an adaptive
// flat-distmem run reports the hierarchical tier in its summary (the
// controller drives the walk even though the operator asked for the flat
// algorithm).
func TestAdaptiveHierTier(t *testing.T) {
	altix := pgas.Altix
	cfg := Config{Algorithm: core.UPCDistMem, PEs: 32, Chunk: 8,
		Model: &pgas.KittyHawk, NodeSize: 8, Intra: &altix, Seed: 31,
		Adapt: &policy.Config{}}
	res, err := Run(&uts.T3Small, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy == nil || res.Policy.HierTier != 8 {
		t.Fatalf("expected hier tier 8 from the latency model, got %+v", res.Policy)
	}
	// A flat machine (no intra model) must stay flat.
	cfg.Intra = nil
	cfg.NodeSize = 0
	res, err = Run(&uts.T3Small, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy.HierTier != 1 {
		t.Fatalf("flat machine must keep tier 1, got %d", res.Policy.HierTier)
	}
}

// TestAdaptiveSummaryRendered checks the stats plumbing end to end: an
// adaptive run's Summary() block carries the adaptive line, a fixed run's
// does not.
func TestAdaptiveSummaryRendered(t *testing.T) {
	cfg := Config{Algorithm: core.UPCDistMem, PEs: 16, Chunk: 2,
		Model: &pgas.KittyHawk, Seed: 41, Adapt: &policy.Config{}}
	res, err := Run(&uts.BenchTiny, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if want := "adaptive: chunk 2 -> "; !strings.Contains(sum, want) {
		t.Errorf("adaptive summary missing %q:\n%s", want, sum)
	}
	cfg.Adapt = nil
	res, err = Run(&uts.BenchTiny, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Summary(), "adaptive:") {
		t.Errorf("fixed-knob summary must not mention adaptation:\n%s", res.Summary())
	}
}
