package des

import (
	"time"

	"repro/internal/stack"
)

// This file is the remote-operation layer: the single doorway through which
// one simulated PE touches state owned by another. Under the sequential
// engines the doorway is a plain function call — exactly one PE runs at any
// instant, so applying an operation inline at the caller's clock is the
// definition of correct. Under the sharded engine (sharded.go) the same
// calls become messages stamped with the virtual instant and the caller's
// (proc, seq) position, and the owning shard applies them in global key
// order — which is why routing every cross-PE effect through this layer is
// what makes the sharded schedule bit-identical to the sequential one.
//
// The vocabulary is three calls:
//
//   - RemoteCall: advance d, then execute op against dst's partition at the
//     completion instant and return its result. Models a lock-protected
//     read-modify-write (claiming a victim's request word).
//   - RemoteSend: advance adv, then apply op at dst. Models one-sided
//     writes whose effect is committed at the completion instant (a steal
//     response) or — with effectDelay > 0 — a payload that becomes visible
//     to the receiver only later (an MPI message in flight). Delayed ops
//     must gate observable visibility on a stamp carried in their payload;
//     the layer itself applies them eagerly under sequential engines.
//   - StageRemote: stage op to execute against dst exactly at the boundary
//     of the quantum the surrounding Stepper is about to return — the
//     completion instant of an in-flight one-sided read. The result is
//     available through StagedResult once the boundary is reached. At most
//     two ops may be staged per quantum (a termination probe reads both the
//     victim's work counter and the barrier's announcement flag at the same
//     completion instant).
//
// Operations run in the owner's execution context: they may freely mutate
// the destination PE's state and post interrupts, but must not advance any
// clock, block, or initiate further remote operations.

// RemoteApply interprets one remote operation against the partition of PE
// dst. Protocols register one interpreter per run via Sim.SetRemote; the op
// codes and argument packing are private to each protocol.
type RemoteApply func(dst int, op uint8, a, b int64, chunks []stack.Chunk) int64

// stagedOp is one remote operation staged against the current quantum's
// boundary.
type stagedOp struct {
	dst   int32
	op    uint8
	local bool // sharded engine: same-shard op, executed at the boundary
	a     int64
	b     int64
	res   int64
}

// SetRemote registers the remote-operation interpreter for this run. Must
// be called before Run by any protocol that uses the remote-operation
// layer.
func (s *Sim) SetRemote(fn RemoteApply) { s.remote = fn }

// RemoteCall advances d of virtual time, then executes op against dst's
// partition at the completion instant and returns its result. The caller
// observes the destination exactly as it stands when the clock reaches
// now+d, with every smaller-keyed event already applied.
//
//uts:noalloc
func (p *Proc) RemoteCall(dst int, d time.Duration, op uint8, a, b int64) int64 {
	if p.sh != nil {
		return p.sh.remoteCall(p, dst, d, op, a, b)
	}
	p.Advance(d)
	return p.sim.remote(dst, op, a, b, nil)
}

// RemoteSend advances adv of virtual time, then applies op against dst's
// partition: a fire-and-forget committed effect. effectDelay > 0 declares
// that the operation's observable effect lags its application by that long
// (an in-flight message); such ops must gate visibility on a stamp carried
// in their payload, because the sequential engines apply them at the
// completion instant of adv while the sharded engine applies them at
// now+adv+effectDelay.
//
//uts:noalloc
func (p *Proc) RemoteSend(dst int, adv, effectDelay time.Duration, op uint8, a, b int64, chunks []stack.Chunk) {
	if p.sh != nil {
		p.sh.remoteSend(p, dst, adv, effectDelay, op, a, b, chunks)
		return
	}
	p.Advance(adv)
	p.sim.remote(dst, op, a, b, chunks)
}

// StageRemote stages op to execute against dst's partition exactly at the
// boundary of the quantum the surrounding Stepper is about to return with
// duration d (which StageRemote returns for convenience). The op executes
// after every smaller-keyed event at that instant; its result is available
// through StagedResult once the boundary has been reached. Only valid
// inside a Stepper, at most twice per quantum.
//
//uts:noalloc
func (p *Proc) StageRemote(dst int, d time.Duration, op uint8, a, b int64) time.Duration {
	if p.nstag == len(p.staged) {
		panic("des: more than two remote ops staged in one quantum")
	}
	p.staged[p.nstag] = stagedOp{dst: int32(dst), op: op, a: a, b: b}
	p.nstag++
	if p.sh != nil {
		p.sh.stageRemote(p, d)
	}
	return d
}

// StagedResult returns the result of the i-th op staged in the quantum
// whose boundary was last reached, in staging order.
//
//uts:noalloc
func (p *Proc) StagedResult(i int) int64 { return p.staged[i].res }

// runStaged executes the staged ops of a quantum that just reached its
// boundary, in staging order, under the sequential engines. (The sharded
// engine resolves staged ops through rendezvous replies instead; see
// sharded.go.)
//
//uts:noalloc
func (p *Proc) runStaged() {
	for i := 0; i < p.nstag; i++ {
		st := &p.staged[i]
		st.res = p.sim.remote(int(st.dst), st.op, st.a, st.b, nil)
	}
	p.nstag = 0
}
