package des

import (
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/uts"
)

// TestTracingIsObservationOnly is the differential test for the event
// tracer: the simulator is deterministic and recording adds no virtual
// time, so a traced run must be bit-identical to an untraced one — same
// makespan, same per-thread schedule, same counters — for every
// algorithm.
func TestTracingIsObservationOnly(t *testing.T) {
	sp := &uts.BenchTiny
	for _, alg := range core.Algorithms {
		cfg := Config{Algorithm: alg, PEs: 8, Chunk: 4}
		plain, err := Run(sp, cfg)
		if err != nil {
			t.Fatalf("%s untraced: %v", alg, err)
		}
		tr := obs.NewVirtual(8, 0)
		cfg.Tracer = tr
		traced, err := Run(sp, cfg)
		if err != nil {
			t.Fatalf("%s traced: %v", alg, err)
		}
		if plain.Elapsed != traced.Elapsed {
			t.Errorf("%s: tracing changed the makespan: %v vs %v", alg, plain.Elapsed, traced.Elapsed)
		}
		if len(plain.Threads) != len(traced.Threads) {
			t.Fatalf("%s: thread counts differ", alg)
		}
		for i := range plain.Threads {
			a, b := &plain.Threads[i], &traced.Threads[i]
			if a.Nodes != b.Nodes || a.Leaves != b.Leaves ||
				a.Steals != b.Steals || a.ChunksGot != b.ChunksGot ||
				a.Probes != b.Probes || a.FailedSteals != b.FailedSteals ||
				a.Releases != b.Releases || a.Reacquires != b.Reacquires ||
				a.Requests != b.Requests || a.TermBarrierEntries != b.TermBarrierEntries {
				t.Errorf("%s PE %d: counters diverged under tracing:\nuntraced %+v\ntraced   %+v", alg, i, a, b)
			}
			if a.InState != b.InState {
				t.Errorf("%s PE %d: state times diverged under tracing", alg, i)
			}
		}
		if traced.Obs == nil {
			t.Fatalf("%s: traced run has no histogram summary", alg)
		}
		if plain.Obs != nil {
			t.Errorf("%s: untraced run grew a histogram summary", alg)
		}

		// Cross-check the tracer against the counters it shadows: every
		// scheduler records exactly one chunk-transfer event per
		// successful steal, and the untraced report must not carry the
		// trace section.
		steals := traced.Sum(func(th *stats.Thread) int64 { return th.Steals })
		if got := traced.Obs.ChunkSize.Count(); got != steals {
			t.Errorf("%s: %d chunk-transfer events for %d steals", alg, got, steals)
		}
		if strings.Contains(plain.Summary(), "steal-latency") {
			t.Errorf("%s: untraced summary contains trace output", alg)
		}
		if steals > 0 && !strings.Contains(traced.Summary(), "steal-latency: p50=") {
			t.Errorf("%s: traced summary lacks the steal-latency line:\n%s", alg, traced.Summary())
		}
	}
}

// TestSamplerIsObservationOnly extends the differential to the live
// telemetry plane: a run with a Sampler attached and folding at full
// speed from another goroutine must stay bit-identical to an untraced
// run — the sampler touches only the rings' seqlock read side and the
// lanes' atomic progress counters, never the schedule.
func TestSamplerIsObservationOnly(t *testing.T) {
	sp := &uts.BenchTiny
	for _, alg := range core.Algorithms {
		cfg := Config{Algorithm: alg, PEs: 8, Chunk: 4}
		plain, err := Run(sp, cfg)
		if err != nil {
			t.Fatalf("%s untraced: %v", alg, err)
		}

		tr := obs.NewVirtual(8, 64) // tiny rings: sampling under constant wraparound
		cfg.Tracer = tr
		s := obs.NewSampler(tr)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
					s.Sample()
				}
			}
		}()
		sampled, err := Run(sp, cfg)
		close(stop)
		<-done
		if err != nil {
			t.Fatalf("%s sampled: %v", alg, err)
		}

		if plain.Elapsed != sampled.Elapsed {
			t.Errorf("%s: sampling changed the makespan: %v vs %v", alg, plain.Elapsed, sampled.Elapsed)
		}
		for i := range plain.Threads {
			a, b := &plain.Threads[i], &sampled.Threads[i]
			if a.Nodes != b.Nodes || a.Steals != b.Steals || a.Probes != b.Probes ||
				a.FailedSteals != b.FailedSteals || a.InState != b.InState {
				t.Errorf("%s PE %d: counters diverged under sampling:\nplain   %+v\nsampled %+v", alg, i, a, b)
			}
		}

		// The sampler's own view must reconcile with the run it watched:
		// the flushed node counter covers the whole tree, and the final
		// fold accounts for every recorded event.
		st := s.Sample()
		if nodes := plain.Nodes(); st.Nodes != nodes {
			t.Errorf("%s: sampler saw %d nodes, run expanded %d", alg, st.Nodes, nodes)
		}
		if st.Events <= 0 || !st.Virtual {
			t.Errorf("%s: sampler stats implausible: %+v", alg, st)
		}
		var kindSum int64
		for k := 0; k < obs.NumKinds; k++ {
			kindSum += st.Kinds[k]
		}
		if kindSum+st.Missed != st.Events {
			t.Errorf("%s: replayed %d + missed %d != recorded %d", alg, kindSum, st.Missed, st.Events)
		}
	}
}

// TestSamplerOverheadGate is the CI regression gate for the telemetry
// read side: a traced simulation with a Sampler folding at millisecond
// cadence must run within 2% of the same traced simulation without one.
// The sampler only reads the rings' seqlock side from its own goroutine,
// so any measurable slowdown means a lock, a store, or an allocation
// leaked onto the record path. Best-of-5 wall times on a deterministic
// workload keep scheduler noise below the threshold. Skipped unless
// OBS_BENCH_GATE=1, and — like the sharded dispatch gate — it needs real
// parallelism: on a single core the sampler's own fold work timeshares
// with the simulation and the wall clock measures CPU sharing, not
// record-path interference (which the differential tests already pin to
// zero).
func TestSamplerOverheadGate(t *testing.T) {
	if os.Getenv("OBS_BENCH_GATE") != "1" {
		t.Skip("set OBS_BENCH_GATE=1 to run the sampler overhead gate")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("sampler overhead gate needs a spare core for the sampler goroutine")
	}
	run := func(sampled bool) time.Duration {
		tr := obs.NewVirtual(64, 0)
		var s *obs.Sampler
		if sampled {
			s = obs.NewSampler(tr)
			s.Start(time.Millisecond)
		}
		start := time.Now() //uts:ok detcheck real-time overhead measurement of the sampler itself
		_, err := Run(&uts.T3Small, Config{Algorithm: core.UPCDistMem, PEs: 64, Chunk: 8, Tracer: tr})
		wall := time.Since(start)
		s.Stop()
		if err != nil {
			t.Fatal(err)
		}
		return wall
	}
	best := func(sampled bool) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			if w := run(sampled); w < b {
				b = w
			}
		}
		return b
	}
	run(true) // warm caches and the scheduler before timing
	plain, sampled := best(false), best(true)
	overhead := float64(sampled-plain) / float64(plain)
	t.Logf("detached %v, attached %v, overhead %.2f%%", plain, sampled, 100*overhead)
	if overhead > 0.02 {
		t.Errorf("sampler adds %.2f%% to a traced run; want <= 2%%", 100*overhead)
	}
}

// TestTracedEventsWellFormed runs one stealing-heavy configuration and
// checks the merged event stream invariants: nondecreasing virtual
// timestamps, per-lane sequence numbers, and kinds within the taxonomy.
func TestTracedEventsWellFormed(t *testing.T) {
	tr := obs.NewVirtual(8, 0)
	if _, err := Run(&uts.BenchTiny, Config{Algorithm: core.UPCDistMem, PEs: 8, Chunk: 4, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	lastSeq := map[int32]uint64{}
	for i, e := range events {
		if i > 0 && e.T() < events[i-1].T() {
			t.Fatalf("event %d out of time order", i)
		}
		if e.Virt < 0 {
			t.Fatalf("event %d has no virtual timestamp: %+v", i, e)
		}
		if e.PE < 0 || e.PE >= 8 {
			t.Fatalf("event %d from unknown PE %d", i, e.PE)
		}
		if e.Kind.String() == "" || strings.HasPrefix(e.Kind.String(), "Kind(") {
			t.Fatalf("event %d has unknown kind %d", i, e.Kind)
		}
		if last, ok := lastSeq[e.PE]; ok && e.Seq <= last {
			t.Fatalf("PE %d sequence regressed at event %d", e.PE, i)
		}
		lastSeq[e.PE] = e.Seq
	}
}
