package des

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/uts"
)

// TestTracingIsObservationOnly is the differential test for the event
// tracer: the simulator is deterministic and recording adds no virtual
// time, so a traced run must be bit-identical to an untraced one — same
// makespan, same per-thread schedule, same counters — for every
// algorithm.
func TestTracingIsObservationOnly(t *testing.T) {
	sp := &uts.BenchTiny
	for _, alg := range core.Algorithms {
		cfg := Config{Algorithm: alg, PEs: 8, Chunk: 4}
		plain, err := Run(sp, cfg)
		if err != nil {
			t.Fatalf("%s untraced: %v", alg, err)
		}
		tr := obs.NewVirtual(8, 0)
		cfg.Tracer = tr
		traced, err := Run(sp, cfg)
		if err != nil {
			t.Fatalf("%s traced: %v", alg, err)
		}
		if plain.Elapsed != traced.Elapsed {
			t.Errorf("%s: tracing changed the makespan: %v vs %v", alg, plain.Elapsed, traced.Elapsed)
		}
		if len(plain.Threads) != len(traced.Threads) {
			t.Fatalf("%s: thread counts differ", alg)
		}
		for i := range plain.Threads {
			a, b := &plain.Threads[i], &traced.Threads[i]
			if a.Nodes != b.Nodes || a.Leaves != b.Leaves ||
				a.Steals != b.Steals || a.ChunksGot != b.ChunksGot ||
				a.Probes != b.Probes || a.FailedSteals != b.FailedSteals ||
				a.Releases != b.Releases || a.Reacquires != b.Reacquires ||
				a.Requests != b.Requests || a.TermBarrierEntries != b.TermBarrierEntries {
				t.Errorf("%s PE %d: counters diverged under tracing:\nuntraced %+v\ntraced   %+v", alg, i, a, b)
			}
			if a.InState != b.InState {
				t.Errorf("%s PE %d: state times diverged under tracing", alg, i)
			}
		}
		if traced.Obs == nil {
			t.Fatalf("%s: traced run has no histogram summary", alg)
		}
		if plain.Obs != nil {
			t.Errorf("%s: untraced run grew a histogram summary", alg)
		}

		// Cross-check the tracer against the counters it shadows: every
		// scheduler records exactly one chunk-transfer event per
		// successful steal, and the untraced report must not carry the
		// trace section.
		steals := traced.Sum(func(th *stats.Thread) int64 { return th.Steals })
		if got := traced.Obs.ChunkSize.Count(); got != steals {
			t.Errorf("%s: %d chunk-transfer events for %d steals", alg, got, steals)
		}
		if strings.Contains(plain.Summary(), "steal-latency") {
			t.Errorf("%s: untraced summary contains trace output", alg)
		}
		if steals > 0 && !strings.Contains(traced.Summary(), "steal-latency: p50=") {
			t.Errorf("%s: traced summary lacks the steal-latency line:\n%s", alg, traced.Summary())
		}
	}
}

// TestTracedEventsWellFormed runs one stealing-heavy configuration and
// checks the merged event stream invariants: nondecreasing virtual
// timestamps, per-lane sequence numbers, and kinds within the taxonomy.
func TestTracedEventsWellFormed(t *testing.T) {
	tr := obs.NewVirtual(8, 0)
	if _, err := Run(&uts.BenchTiny, Config{Algorithm: core.UPCDistMem, PEs: 8, Chunk: 4, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	lastSeq := map[int32]uint64{}
	for i, e := range events {
		if i > 0 && e.T() < events[i-1].T() {
			t.Fatalf("event %d out of time order", i)
		}
		if e.Virt < 0 {
			t.Fatalf("event %d has no virtual timestamp: %+v", i, e)
		}
		if e.PE < 0 || e.PE >= 8 {
			t.Fatalf("event %d from unknown PE %d", i, e.PE)
		}
		if e.Kind.String() == "" || strings.HasPrefix(e.Kind.String(), "Kind(") {
			t.Fatalf("event %d has unknown kind %d", i, e.Kind)
		}
		if last, ok := lastSeq[e.PE]; ok && e.Seq <= last {
			t.Fatalf("PE %d sequence regressed at event %d", e.PE, i)
		}
		lastSeq[e.PE] = e.Seq
	}
}
