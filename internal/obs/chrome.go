package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteChromeTrace writes the tracer's retained events as Chrome
// trace_event JSON (the "JSON Array Format" with a traceEvents wrapper),
// loadable in ui.perfetto.dev or chrome://tracing. The rendering per PE
// lane is:
//
//   - one named thread ("PE n") per lane, all in process 0;
//   - a "X" (complete) slice per Figure-1 state interval, reconstructed
//     from consecutive KindStateChange events, so each lane reads as a
//     colored Working/Searching/Stealing/Idle band;
//   - an "i" (instant) mark per protocol event;
//   - an "s"/"f" (flow) arrow per successful steal, drawn from the
//     victim's lane at the request timestamp to the thief's lane at the
//     transfer timestamp — the steal arrows between lanes.
//
// Timestamps are microseconds (the trace_event unit) with ns precision
// kept as fractional digits; virtual tracers export virtual time, real
// tracers wall time. Field order within each JSON event is fixed (struct
// order), so output for a given event stream is byte-stable — the golden
// test depends on this.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	enc := newChromeEncoder(bw)
	for pe := 0; pe < t.PEs(); pe++ {
		enc.emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: pe,
			Args: map[string]interface{}{"name": fmt.Sprintf("PE %d", pe)},
		})
	}
	events := t.Events()

	// Per-lane reconstruction state: current Figure-1 state and when it
	// began, plus the pending steal request for flow pairing.
	type laneState struct {
		state      int64
		since      int64
		hasSteal   bool
		stealTs    int64
		stealOther int32
	}
	lanes := make([]laneState, t.PEs())
	var end int64
	for _, e := range events {
		if ts := e.T(); ts > end {
			end = ts
		}
	}
	flowID := 0
	for _, e := range events {
		if int(e.PE) >= len(lanes) {
			continue
		}
		ls := &lanes[e.PE]
		ts := e.T()
		switch e.Kind {
		case KindStateChange:
			if ts > ls.since {
				enc.emit(chromeEvent{
					Name: StateName(ls.state), Cat: "state", Ph: "X",
					Ts: usec(ls.since), Dur: usec(ts - ls.since),
					Pid: 0, Tid: int(e.PE),
				})
			}
			ls.state = e.Value
			ls.since = ts
		case KindStealRequest:
			ls.hasSteal = true
			ls.stealTs = ts
			ls.stealOther = e.Other
			enc.instant(e, ts)
		case KindChunkTransfer:
			if ls.hasSteal && ls.stealOther == e.Other {
				flowID++
				enc.emit(chromeEvent{
					Name: "steal", Cat: "steal", Ph: "s",
					Ts: usec(ls.stealTs), Pid: 0, Tid: int(e.Other),
					ID: flowID,
				})
				enc.emit(chromeEvent{
					Name: "steal", Cat: "steal", Ph: "f", BP: "e",
					Ts: usec(ts), Pid: 0, Tid: int(e.PE),
					ID: flowID,
				})
			}
			ls.hasSteal = false
			enc.instant(e, ts)
		case KindStealFail:
			ls.hasSteal = false
			enc.instant(e, ts)
		default:
			enc.instant(e, ts)
		}
	}
	// Close the open state interval of every lane at the trace end.
	for pe := range lanes {
		ls := &lanes[pe]
		if end > ls.since {
			enc.emit(chromeEvent{
				Name: StateName(ls.state), Cat: "state", Ph: "X",
				Ts: usec(ls.since), Dur: usec(end - ls.since),
				Pid: 0, Tid: pe,
			})
		}
	}
	if err := enc.close(); err != nil {
		return err
	}
	return bw.Flush()
}

// usec converts ns to the trace_event microsecond unit.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// chromeEvent is one trace_event entry. Field order is the exporter's
// stability contract; do not reorder.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   int                    `json:"id,omitempty"`
	BP   string                 `json:"bp,omitempty"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeEncoder streams the {"traceEvents":[…]} wrapper one event per
// line.
type chromeEncoder struct {
	w     io.Writer
	n     int
	fail  error
	wrote bool
}

func newChromeEncoder(w io.Writer) *chromeEncoder {
	return &chromeEncoder{w: w}
}

func (c *chromeEncoder) emit(e chromeEvent) {
	if c.fail != nil {
		return
	}
	if !c.wrote {
		if _, err := io.WriteString(c.w, "{\"traceEvents\":[\n"); err != nil {
			c.fail = err
			return
		}
		c.wrote = true
	}
	b, err := json.Marshal(e)
	if err != nil {
		c.fail = err
		return
	}
	sep := ",\n"
	if c.n == 0 {
		sep = ""
	}
	if _, err := fmt.Fprintf(c.w, "%s%s", sep, b); err != nil {
		c.fail = err
		return
	}
	c.n++
}

// instant emits an "i" mark for e, carrying its peer and value as args.
func (c *chromeEncoder) instant(e Event, ts int64) {
	ev := chromeEvent{
		Name: e.Kind.String(), Cat: "protocol", Ph: "i",
		Ts: usec(ts), Pid: 0, Tid: int(e.PE), S: "t",
	}
	args := map[string]interface{}{}
	if e.Other >= 0 {
		args["other"] = int(e.Other)
	}
	switch e.Kind {
	case KindProbeResult:
		args["avail"] = e.Value
	case KindStealGrant:
		args["chunks"] = e.Value
	case KindChunkTransfer:
		args["nodes"] = e.Value
	case KindRelease:
		args["avail"] = e.Value
	case KindReacquire:
		args["nodes"] = e.Value
	}
	if len(args) > 0 {
		ev.Args = args
	}
	c.emit(ev)
}

func (c *chromeEncoder) close() error {
	if c.fail != nil {
		return c.fail
	}
	if !c.wrote {
		_, err := io.WriteString(c.w, "{\"traceEvents\":[")
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(c.w, "\n],\"displayTimeUnit\":\"ns\"}\n")
	return err
}
