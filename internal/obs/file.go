package obs

import (
	"bufio"
	"os"
)

// WriteChromeTraceFile writes the tracer's Chrome trace_event JSON to
// path, creating or truncating it. Nil-safe: a nil tracer writes an
// empty (but valid) trace.
func WriteChromeTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteChromeTrace(bw, t); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTimelineFile writes the merged text timeline to path. Nil-safe.
func WriteTimelineFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTimeline(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
