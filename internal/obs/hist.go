package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram is a fixed-size log-bucket (HDR-style) histogram of
// non-negative int64 values. Values below 16 get exact unit buckets;
// above that, each power of two is split into 8 sub-buckets, bounding
// the relative quantile error at 1/16 (6.25%) while keeping the whole
// structure a flat array — Observe is a handful of bit operations and
// one increment, with no allocation, suitable for a worker's hot
// protocol path. The zero value is an empty histogram ready for use.
type Histogram struct {
	n, sum   int64
	min, max int64
	buckets  [numBuckets]int64
}

// Buckets 0..15 are exact; log buckets cover bit lengths 5..63 with 8
// sub-buckets each.
const (
	linearBuckets = 16
	subBuckets    = 8
	numBuckets    = linearBuckets + (63-4)*subBuckets
)

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < linearBuckets {
		return int(v)
	}
	nbits := bits.Len64(uint64(v)) // >= 5 here
	sub := int((v >> (nbits - 4)) & (subBuckets - 1))
	return linearBuckets + (nbits-5)*subBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket b.
func bucketLow(b int) int64 {
	if b < linearBuckets {
		return int64(b)
	}
	nbits := (b-linearBuckets)/subBuckets + 5
	sub := int64((b - linearBuckets) % subBuckets)
	return int64(1)<<(nbits-1) + sub<<(nbits-4)
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// DeltaFrom returns the windowed difference h − prev, where prev is an
// earlier snapshot of the same monotonically-growing histogram: the
// observations recorded after prev was taken. Bucket counts, n, and sum
// subtract with a clamp at zero, so a prev that is not actually a prefix
// of h (or a torn copy) can never produce negative counts. The window's
// min/max are reconstructed from its own occupied buckets (bucket lower
// bounds, clamped into h's observed range), since the exact extremes of
// only-the-new observations are not recoverable from two cumulative
// snapshots.
func (h *Histogram) DeltaFrom(prev *Histogram) Histogram {
	var d Histogram
	if prev == nil {
		d = *h
		return d
	}
	for i := range h.buckets {
		if c := h.buckets[i] - prev.buckets[i]; c > 0 {
			d.buckets[i] += c
			d.n += c
		}
	}
	if d.n == 0 {
		return d
	}
	if s := h.sum - prev.sum; s > 0 {
		d.sum = s
	}
	for i := range d.buckets {
		if d.buckets[i] > 0 {
			d.min = bucketLow(i)
			break
		}
	}
	for i := len(d.buckets) - 1; i >= 0; i-- {
		if d.buckets[i] > 0 {
			d.max = bucketLow(i)
			break
		}
	}
	if d.min < h.min {
		d.min = h.min
	}
	if d.max > h.max {
		d.max = h.max
	}
	if d.max < d.min {
		d.max = d.min
	}
	// The sum subtracts wholesale while bucket counts clamp per-bucket, so
	// a torn/non-prefix prev can leave d.sum inconsistent with the window's
	// own extremes (Mean() above max or below min). Clamp it into
	// [n·min, n·max]; the upper product is overflow-checked because max can
	// be near 2^63 while the counts stay small.
	if d.min > 0 && d.n <= math.MaxInt64/d.min {
		if lo := d.n * d.min; d.sum < lo {
			d.sum = lo
		}
	}
	if d.max <= 0 || d.n <= math.MaxInt64/d.max {
		if hi := d.n * d.max; d.sum > hi {
			d.sum = hi
		}
	}
	return d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() int64 { return h.min }
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]): the lower
// bound of the bucket holding the rank-⌈q·n⌉ observation, clamped to the
// observed [min, max]. Exact for values below 16, within 6.25% above.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	// The documented contract is the rank-⌈q·n⌉ observation (1-based).
	// floor(q·n) followed by a strictly-greater scan lands one rank too
	// high exactly when q·n is an integer (q=0.5 with even n, q=0.25 with
	// n divisible by 4, ...), so take the ceiling and scan with >=.
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank > h.n {
		rank = h.n
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen >= rank {
			v := bucketLow(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Summarize renders "p50=… p95=… p99=… max=… (n=…)" with values passed
// through the fmt formatter (e.g. a ns→duration prettifier).
func (h *Histogram) Summarize(format func(int64) string) string {
	if h.n == 0 {
		return "(no samples)"
	}
	var b strings.Builder
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		fmt.Fprintf(&b, "%s=%s ", p.name, format(h.Quantile(p.q)))
	}
	fmt.Fprintf(&b, "max=%s (n=%d)", format(h.max), h.n)
	return b.String()
}
