package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	const ringSize, total = 8, 20
	tr := NewVirtual(1, ringSize)
	l := tr.Lane(0)
	for i := 0; i < total; i++ {
		l.RecV(KindTermEnter, int32(i), int64(i), time.Duration(i))
	}
	if got := l.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	evs := l.Snapshot(nil)
	if len(evs) != ringSize {
		t.Fatalf("snapshot retained %d events, want %d", len(evs), ringSize)
	}
	for i, e := range evs {
		wantSeq := uint64(total - ringSize + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Value != int64(wantSeq) || e.Other != int32(wantSeq) || e.Virt != int64(wantSeq) {
			t.Errorf("event %d: payload %+v does not match seq %d", i, e, wantSeq)
		}
		if e.PE != 0 || e.Kind != KindTermEnter {
			t.Errorf("event %d: wrong identity %+v", i, e)
		}
	}
	sum := tr.Summary()
	if sum.Events != total || sum.Dropped != total-ringSize {
		t.Errorf("summary events=%d dropped=%d, want %d and %d",
			sum.Events, sum.Dropped, total, total-ringSize)
	}
}

// TestSnapshotConcurrent exercises the seqlock under the race detector: a
// reader snapshots continuously while the owner records, and every event
// that comes back must be internally consistent (Other, Value, and Virt
// all carry the sequence number, so a torn slot would disagree).
func TestSnapshotConcurrent(t *testing.T) {
	const total = 50000
	tr := NewVirtual(1, 64)
	l := tr.Lane(0)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf []Event
		for {
			buf = l.Snapshot(buf[:0])
			var lastSeq int64 = -1
			for _, e := range buf {
				if e.Value != int64(e.Other) || e.Virt != e.Value {
					t.Errorf("torn event escaped the seqlock: %+v", e)
					return
				}
				if int64(e.Seq) <= lastSeq {
					t.Errorf("snapshot out of order at seq %d", e.Seq)
					return
				}
				lastSeq = int64(e.Seq)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	for i := 0; i < total; i++ {
		l.RecV(KindTermEnter, int32(i%math.MaxInt32), int64(i%math.MaxInt32), time.Duration(i%math.MaxInt32))
	}
	close(done)
	wg.Wait()
	if got := l.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
}

func TestHistogramExactBelow16(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	if h.Count() != 16 || h.Sum() != 120 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	// With 16 uniform values 0..15, the rank-⌈q·16⌉ observation is exact:
	// ⌈0.5·16⌉ = 8th observation (1-based) is the value 7. The pre-fix
	// floor-rank/strictly-greater scan returned 8 here — one rank high.
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Errorf("p100 = %d, want 15", got)
	}
}

// TestHistogramQuantileRankContract pins the rank-⌈q·n⌉ contract over the
// exact (<16) bucket range, where every bucket holds one value and the
// quantile must be exact. Covers the exact-divisor points (q·n integral)
// that the pre-fix floor/> scan got wrong, plus non-divisor points,
// duplicates, and the q=0 / q=1 ends.
func TestHistogramQuantileRankContract(t *testing.T) {
	obs := func(vs ...int64) *Histogram {
		var h Histogram
		for _, v := range vs {
			h.Observe(v)
		}
		return &h
	}
	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want int64
	}{
		// Exact divisors: q·n integral, rank = q·n exactly.
		{"even-n-median", obs(0, 1, 2, 3, 4, 5, 6, 7), 0.5, 3}, // ⌈4⌉ = 4th = 3
		{"n4-q25", obs(2, 4, 6, 8), 0.25, 2},                   // ⌈1⌉ = 1st = 2
		{"n4-q75", obs(2, 4, 6, 8), 0.75, 6},                   // ⌈3⌉ = 3rd = 6
		{"n10-q10", obs(0, 1, 2, 3, 4, 5, 6, 7, 8, 9), 0.1, 0}, // ⌈1⌉ = 1st
		{"n10-q90", obs(0, 1, 2, 3, 4, 5, 6, 7, 8, 9), 0.9, 8}, // ⌈9⌉ = 9th = 8
		{"n2-median", obs(3, 11), 0.5, 3},                      // ⌈1⌉ = 1st = 3
		// Non-divisors: rank rounds up.
		{"odd-n-median", obs(1, 5, 9), 0.5, 5},          // ⌈1.5⌉ = 2nd
		{"n3-q90", obs(1, 5, 9), 0.9, 9},                // ⌈2.7⌉ = 3rd
		{"n7-q25", obs(0, 2, 4, 6, 8, 10, 12), 0.25, 2}, // ⌈1.75⌉ = 2nd
		// Duplicates: ranks land inside a run.
		{"dup-median", obs(4, 4, 4, 9), 0.5, 4}, // ⌈2⌉ = 2nd = 4
		{"dup-high", obs(1, 9, 9, 9), 0.75, 9},  // ⌈3⌉ = 3rd = 9
		// Ends.
		{"q0-is-min", obs(5, 7, 13), 0, 5},
		{"q1-is-max", obs(5, 7, 13), 1, 13},
		{"single", obs(6), 0.5, 6},
	}
	for _, tc := range cases {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%g) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %d, want 0", got)
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	// Sandwich each value between a smaller and a larger one so the
	// [min, max] clamp cannot make the estimate exact; the log buckets
	// then bound the error at one sub-bucket width (1/8 of the value).
	for _, v := range []int64{17, 100, 1000, 12345, 1 << 20, 1<<40 + 12345} {
		var h Histogram
		h.Observe(0)
		h.Observe(v)
		h.Observe(2 * v)
		q := h.Quantile(0.5)
		if q > v || v-q > v/8 {
			t.Errorf("value %d: p50 estimate %d outside the sub-bucket bound", v, q)
		}
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation not clamped: %+v", h)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(0); v < 10; v++ {
		a.Observe(v)
	}
	for v := int64(100); v < 110; v++ {
		b.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != 20 || a.Min() != 0 || a.Max() != 109 {
		t.Fatalf("merged count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
	if got := a.Quantile(0.99); got < 100 {
		t.Errorf("p99 after merge = %d, want >= 100", got)
	}
	var empty Histogram
	a.Merge(&empty) // must not disturb min/max
	if a.Min() != 0 || a.Max() != 109 {
		t.Errorf("merge with empty changed extremes: min=%d max=%d", a.Min(), a.Max())
	}
	if empty.Summarize(fmtCount) != "(no samples)" {
		t.Errorf("empty Summarize = %q", empty.Summarize(fmtCount))
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 15, 16, 17, 255, 256, 1 << 30, 1 << 62} {
		b := bucketOf(v)
		lo := bucketLow(b)
		if lo > v {
			t.Errorf("bucketLow(%d) = %d > value %d", b, lo, v)
		}
		if bucketOf(lo) != b {
			t.Errorf("bucketOf(bucketLow(%d)) = %d, want %d", b, bucketOf(lo), b)
		}
	}
}

// TestLanePairing drives the steal-protocol state machine on one lane and
// checks the derived histograms.
func TestLanePairing(t *testing.T) {
	tr := NewVirtual(1, 0)
	l := tr.Lane(0)
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }

	l.RecV(KindStateChange, -1, 0, us(0))     // working
	l.RecV(KindStateChange, -1, 1, us(100))   // searching after 100µs working
	l.RecV(KindProbeResult, 1, 0, us(110))    // empty probe
	l.RecV(KindProbeResult, 2, 3, us(120))    // found work
	l.RecV(KindStealRequest, 2, 0, us(130))   // steal begins
	l.RecV(KindStealFail, 2, 0, us(150))      // ...and loses the race: 20µs
	l.RecV(KindProbeResult, 3, 1, us(160))    // probe again
	l.RecV(KindStealRequest, 3, 0, us(170))   // second attempt
	l.RecV(KindChunkTransfer, 3, 16, us(230)) // lands 16 nodes: 60µs
	l.RecV(KindStateChange, -1, 0, us(240))   // back to working

	s := tr.Summary()
	if !s.Virtual {
		t.Error("summary should be virtual")
	}
	if n := s.StealLatency.Count(); n != 2 {
		t.Fatalf("steal-latency samples = %d, want 2 (one fail, one success)", n)
	}
	if min, max := s.StealLatency.Min(), s.StealLatency.Max(); min != int64(20*time.Microsecond) || max != int64(60*time.Microsecond) {
		t.Errorf("steal-latency range [%d, %d], want [20µs, 60µs]", min, max)
	}
	if n := s.ChunkSize.Count(); n != 1 || s.ChunkSize.Max() != 16 {
		t.Errorf("chunk-size n=%d max=%d, want 1 and 16", n, s.ChunkSize.Max())
	}
	// Three probes between losing work and landing the steal.
	if n := s.ProbeDistance.Count(); n != 1 || s.ProbeDistance.Max() != 3 {
		t.Errorf("probe-distance n=%d max=%d, want 1 and 3", n, s.ProbeDistance.Max())
	}
	// The initial state-change closes a zero-length working dwell; the
	// switch to searching closes the real 100µs one.
	if n := s.Dwell[0].Count(); n != 2 || s.Dwell[0].Max() != int64(100*time.Microsecond) {
		t.Errorf("working dwell n=%d max=%d", n, s.Dwell[0].Max())
	}
	if s.Dwell[3].Count() != 0 {
		t.Errorf("idle dwell should be empty, got %d", s.Dwell[3].Count())
	}
	out := s.String()
	for _, want := range []string{"steal-latency: p50=", "p95=", "p99=", "virtual clock", "chunk-size(nodes)"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}

func TestEventsMergedOrder(t *testing.T) {
	tr := NewVirtual(3, 0)
	tr.Lane(2).RecV(KindTermEnter, -1, 0, 300)
	tr.Lane(0).RecV(KindTermEnter, -1, 0, 100)
	tr.Lane(1).RecV(KindTermEnter, -1, 0, 100) // tie with lane 0: PE breaks it
	tr.Lane(0).RecV(KindTermExit, -1, 0, 200)
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	wantPE := []int32{0, 1, 0, 2}
	for i, e := range evs {
		if e.PE != wantPE[i] {
			t.Errorf("position %d: PE %d, want %d", i, e.PE, wantPE[i])
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T() < evs[i-1].T() {
			t.Errorf("events out of time order at %d", i)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.PEs() != 0 || tr.Virtual() || tr.Summary() != nil || tr.Events() != nil {
		t.Error("nil tracer accessors should be zero-valued")
	}
	l := tr.Lane(0)
	if l != nil {
		t.Fatal("nil tracer must hand out nil lanes")
	}
	// None of these may panic.
	l.Rec(KindStealRequest, 1, 0)
	l.RecV(KindChunkTransfer, 1, 16, time.Microsecond)
	if l.Snapshot(nil) != nil || l.Recorded() != 0 {
		t.Error("nil lane should be empty")
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer trace is not valid JSON: %v\n%s", err, buf.String())
	}
	buf.Reset()
	if err := WriteTimeline(&buf, tr); err != nil {
		t.Fatalf("WriteTimeline(nil): %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil-tracer timeline should be empty, got %q", buf.String())
	}
	// Out-of-range lanes are nil too.
	real := New(2, 16)
	if real.Lane(-1) != nil || real.Lane(2) != nil {
		t.Error("out-of-range Lane must be nil")
	}
	if real.Lane(1) == nil {
		t.Error("in-range Lane must not be nil")
	}
}

func TestTimelineFormat(t *testing.T) {
	tr := NewVirtual(2, 0)
	tr.Lane(1).RecV(KindStealRequest, 0, 0, 1500)
	tr.Lane(0).RecV(KindStealGrant, 1, 4, 2500)
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "PE   1") || !strings.Contains(lines[0], "steal-request → PE 0") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "PE   0") || !strings.Contains(lines[1], "steal-grant → PE 1 chunks=4") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestWallClockRecording(t *testing.T) {
	tr := New(1, 0)
	l := tr.Lane(0)
	l.Rec(KindStealRequest, -1, 0)
	time.Sleep(time.Millisecond)
	l.Rec(KindChunkTransfer, -1, 8)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	for _, e := range evs {
		if e.Virt != -1 {
			t.Errorf("real-time event has virtual timestamp %d", e.Virt)
		}
		if e.T() != e.Wall {
			t.Errorf("T() should fall back to wall time")
		}
	}
	if evs[1].Wall <= evs[0].Wall {
		t.Errorf("wall clock did not advance: %d then %d", evs[0].Wall, evs[1].Wall)
	}
	if n := tr.Summary().StealLatency.Count(); n != 1 {
		t.Errorf("steal-latency samples = %d, want 1", n)
	}
}
