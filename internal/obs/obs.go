// Package obs is the observability substrate of the reproduction: a
// low-overhead, per-PE ring-buffer event tracer plus log-bucket (HDR-style)
// latency histograms, wired through every scheduler in internal/core,
// internal/des, and internal/cluster.
//
// Design constraints, in order:
//
//  1. A disabled tracer must cost nothing. Every recording method is
//     defined on a pointer receiver and begins with a nil check, so
//     workers hold a possibly-nil *Lane and call it unconditionally —
//     one predictable compare-and-branch on the protocol path, zero on
//     the per-node hot loop (no events are emitted per tree node).
//  2. An enabled tracer must not perturb the schedule it observes: each
//     PE records into its own fixed-size ring with no locks and no
//     allocation; the only shared-memory operations are uncontended
//     atomic stores to memory the recording PE owns.
//  3. Events must be inspectable while the run is still going (and under
//     the race detector): every ring word is accessed atomically and each
//     slot carries a seqlock stamp, so a concurrent Snapshot never
//     observes a torn event — a slot being overwritten is detected and
//     dropped rather than returned half-written.
//
// Events carry both a wall timestamp (ns since the tracer epoch) and a
// virtual one (ns of DES time, −1 outside the simulator), so the same
// exporters serve real goroutine runs and discrete-event runs. On top of
// the rings sit three consumers: a Chrome trace_event JSON exporter
// (WriteChromeTrace — open the file in ui.perfetto.dev), a merged
// time-ordered text timeline (WriteTimeline), and histogram aggregation
// (Tracer.Summary) for steal round-trip latency, probe-to-work distance,
// chunk size, and per-state dwell times.
package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Kind enumerates the steal-protocol event taxonomy. The set is a
// superset of what any one scheduler emits: the shared-memory family has
// no victim-side protocol (a steal is a remote lock-and-take), so it
// emits no StealGrant/StealDeny; the request/response protocols
// (upc-distmem, mpi-ws, cluster) emit those from the victim's lane.
type Kind uint8

const (
	// KindStateChange: the PE moved to Figure-1 state Value (the
	// internal/stats state codes: 0 working, 1 searching, 2 stealing,
	// 3 idle).
	KindStateChange Kind = iota
	// KindProbeStart: a work-availability probe of PE Other was issued.
	// Only the discrete-event simulator emits it (there the probe has
	// latency); real implementations emit just KindProbeResult, since a
	// probe is a single remote read.
	KindProbeStart
	// KindProbeResult: the probe of PE Other answered workAvail=Value.
	KindProbeResult
	// KindStealRequest: this PE asked PE Other for work (claimed the
	// request word, sent the steal message, or began a lock-and-take).
	KindStealRequest
	// KindStealGrant: this PE, as a victim, granted Value chunks to the
	// thief PE Other.
	KindStealGrant
	// KindStealDeny: this PE, as a victim, denied the thief PE Other.
	KindStealDeny
	// KindStealFail: this PE's own steal attempt at PE Other came back
	// empty (CAS lost, pool drained, or an explicit denial arrived).
	KindStealFail
	// KindChunkTransfer: this PE's steal from PE Other succeeded and
	// Value nodes landed on its stacks.
	KindChunkTransfer
	// KindRelease: the PE moved a chunk local → shared/steal region;
	// Value is the stealable-chunk count after the release.
	KindRelease
	// KindReacquire: the PE moved a chunk back shared → local; Value is
	// the number of nodes reacquired.
	KindReacquire
	// KindTermEnter: the PE entered the termination barrier.
	KindTermEnter
	// KindTermExit: the PE left the barrier to resume work.
	KindTermExit
	// KindRPCRetry: an RPC to PE Other failed its deadline and is being
	// retried; Value is the attempt number (1 = first retry). Only the
	// real-TCP cluster emits it.
	KindRPCRetry
	// KindPeerDead: this PE declared PE Other dead after its RPCs
	// exhausted their retries; Other is removed from probe cycles and
	// the run degrades to the surviving membership.
	KindPeerDead
	// KindHandoffReclaim: this PE withdrew Value reserved chunks back
	// into its pool because thief PE Other never fetched them (it gave
	// up on the exchange, or died). Only the real-TCP cluster emits it.
	KindHandoffReclaim
	// KindDuplicateTake: this PE took (read) Value chunks from PE Other's
	// relaxed ring but lost the multiplicity-ledger arbitration to a
	// concurrent claimer, so the copies were discarded before exploration.
	// Only upc-term-relaxed emits it (DESIGN.md §14).
	KindDuplicateTake
	numKinds
)

// NumKinds is the number of declared event kinds; per-kind tallies
// (Sampler counters, /metrics families) are indexed by Kind below it.
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	"state-change", "probe-start", "probe-result",
	"steal-request", "steal-grant", "steal-deny", "steal-fail",
	"chunk-transfer", "release", "reacquire",
	"term-enter", "term-exit",
	"rpc-retry", "peer-dead", "handoff-reclaim", "duplicate-take",
}

// String names the kind in the hyphenated vocabulary used by the
// timeline and Chrome exporters.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NumStates is the number of Figure-1 states (mirrors internal/stats,
// which this package must not import: Working, Searching, Stealing,
// Idle).
const NumStates = 4

// StateName names a Figure-1 state code as carried by KindStateChange
// events (same order as internal/stats.States).
func StateName(code int64) string {
	names := [NumStates]string{"working", "searching", "stealing", "idle"}
	if code >= 0 && code < NumStates {
		return names[code]
	}
	return fmt.Sprintf("state(%d)", code)
}

// Event is one recorded protocol event.
type Event struct {
	// Seq is the per-lane sequence number, starting at 0. Gaps never
	// occur within a snapshot except by ring wraparound (oldest events
	// overwritten).
	Seq uint64
	// PE is the recording processing element.
	PE int32
	// Other is the peer PE the event concerns (victim for thief-side
	// kinds, thief for victim-side kinds), or −1 when there is none.
	Other int32
	// Kind is the event type.
	Kind Kind
	// Value is the kind-specific payload (see the Kind constants).
	Value int64
	// Wall is the wall-clock timestamp in ns since the tracer epoch.
	Wall int64
	// Virt is the virtual (DES) timestamp in ns, or −1 for real-time
	// runs.
	Virt int64
}

// T returns the timestamp that orders this event: virtual time when the
// event has one, wall time otherwise.
func (e Event) T() int64 {
	if e.Virt >= 0 {
		return e.Virt
	}
	return e.Wall
}

// String renders the event as one timeline line (without the timestamp
// column, which the timeline writer owns).
func (e Event) String() string {
	switch e.Kind {
	case KindStateChange:
		return fmt.Sprintf("state-change → %s", StateName(e.Value))
	case KindProbeStart:
		return fmt.Sprintf("probe-start → PE %d", e.Other)
	case KindProbeResult:
		return fmt.Sprintf("probe-result ← PE %d avail=%d", e.Other, e.Value)
	case KindStealRequest:
		return fmt.Sprintf("steal-request → PE %d", e.Other)
	case KindStealGrant:
		return fmt.Sprintf("steal-grant → PE %d chunks=%d", e.Other, e.Value)
	case KindStealDeny:
		return fmt.Sprintf("steal-deny → PE %d", e.Other)
	case KindStealFail:
		return fmt.Sprintf("steal-fail ← PE %d", e.Other)
	case KindChunkTransfer:
		return fmt.Sprintf("chunk-transfer ← PE %d nodes=%d", e.Other, e.Value)
	case KindRelease:
		return fmt.Sprintf("release avail=%d", e.Value)
	case KindReacquire:
		return fmt.Sprintf("reacquire nodes=%d", e.Value)
	case KindTermEnter:
		return "term-enter"
	case KindTermExit:
		return "term-exit"
	case KindRPCRetry:
		return fmt.Sprintf("rpc-retry → PE %d attempt=%d", e.Other, e.Value)
	case KindPeerDead:
		return fmt.Sprintf("peer-dead PE %d", e.Other)
	case KindHandoffReclaim:
		return fmt.Sprintf("handoff-reclaim ← PE %d chunks=%d", e.Other, e.Value)
	}
	return e.Kind.String()
}

// DefaultRingSize is the per-PE ring capacity (events) used when a
// non-positive size is requested: large enough to hold the full protocol
// history of the bench trees, small enough that a 1024-PE tracer stays
// around 400 MB.
const DefaultRingSize = 1 << 13

// Tracer owns one event lane per PE plus the shared epoch. The zero
// value of *Tracer (nil) is a valid, disabled tracer: every method is
// nil-safe, and Lane returns a nil *Lane whose recording methods are
// no-ops.
type Tracer struct {
	epoch   time.Time
	virtual bool
	lanes   []Lane
}

// New creates a tracer with pes lanes of ringSize events each
// (DefaultRingSize when ringSize <= 0), stamping events with wall time
// relative to now.
func New(pes, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	t := &Tracer{epoch: time.Now(), lanes: make([]Lane, pes)}
	for i := range t.lanes {
		l := &t.lanes[i]
		l.t = t
		l.pe = int32(i)
		l.ring.init(ringSize)
		l.stealT0 = -1
	}
	return t
}

// NewVirtual is New for discrete-event runs: consumers order events by
// their virtual timestamps, and histograms measure virtual durations.
func NewVirtual(pes, ringSize int) *Tracer {
	t := New(pes, ringSize)
	t.virtual = true
	return t
}

// Virtual reports whether the tracer orders events by virtual time.
// Nil-safe.
func (t *Tracer) Virtual() bool { return t != nil && t.virtual }

// PEs returns the lane count. Nil-safe.
func (t *Tracer) PEs() int {
	if t == nil {
		return 0
	}
	return len(t.lanes)
}

// Lane returns PE pe's lane, or nil when the tracer is nil or pe is out
// of range — callers hold the result and record into it unconditionally.
func (t *Tracer) Lane(pe int) *Lane {
	if t == nil || pe < 0 || pe >= len(t.lanes) {
		return nil
	}
	return &t.lanes[pe]
}

// wallNow returns ns since the tracer epoch (monotonic).
func (t *Tracer) wallNow() int64 { return int64(time.Since(t.epoch)) }

// Events returns a merged snapshot of every lane, ordered by timestamp
// (virtual for virtual tracers, wall otherwise) with (PE, Seq) as the
// tie-break, so simultaneous DES events appear in a deterministic order.
// Safe to call while PEs are still recording; see Lane.Snapshot for the
// consistency guarantee. Nil-safe: a nil tracer has no events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var all []Event
	for i := range t.lanes {
		all = t.lanes[i].ring.snapshot(all)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.T() != b.T() {
			return a.T() < b.T()
		}
		if a.PE != b.PE {
			return a.PE < b.PE
		}
		return a.Seq < b.Seq
	})
	return all
}

// Lane is one PE's recording handle: a private event ring plus the
// owner-only histogram state that turns raw events into latency
// measurements as they are recorded (the rings wrap; the histograms do
// not, so summaries cover the whole run even when the event history does
// not). All recording methods are owner-only and nil-safe.
type Lane struct {
	t    *Tracer
	pe   int32
	ring ring

	hists Hists

	// nodes is the lane's live progress counter: tree nodes expanded by
	// the owning PE, flushed in batches from the worker's own counter at
	// its protocol cadence (release/reacquire/steal boundaries), never
	// per node. Atomic so the Sampler and the cluster metrics engine can
	// read it from any goroutine while the owner keeps writing.
	nodes atomic.Int64

	// stealT0 is the pending steal's start timestamp (−1 when no steal
	// is in flight); searchProbes counts probes since work was last
	// held; curState/stateSince drive the dwell histograms.
	stealT0      int64
	searchProbes int64
	curState     int64
	stateSince   int64
}

// Hists is the per-lane histogram set. Durations are wall ns for real
// runs and virtual ns for DES runs; ProbeDistance counts probes and
// ChunkSize counts nodes.
type Hists struct {
	// StealLatency is the request→outcome round trip of this PE's own
	// steal attempts, successful (KindChunkTransfer) and failed
	// (KindStealFail) alike — for the asynchronous protocols the denial
	// round trip is exactly the cost the paper's Section 3.3.3 design
	// bounds.
	StealLatency Histogram
	// ProbeDistance is the number of probes issued between losing work
	// and landing a successful steal — the "distance to work" the rapid
	// diffusion of Section 3.3.2 shrinks.
	ProbeDistance Histogram
	// ChunkSize is the nodes obtained per successful steal.
	ChunkSize Histogram
	// Dwell is the time per visit spent in each Figure-1 state, indexed
	// by the internal/stats state codes.
	Dwell [NumStates]Histogram
}

// Rec records an event with the current wall timestamp and no virtual
// one — the form the real goroutine implementations use. No-op on a nil
// lane.
//
//uts:noalloc
func (l *Lane) Rec(k Kind, other int32, value int64) {
	if l == nil {
		return
	}
	wall := l.t.wallNow()
	l.rec(k, other, value, wall, -1, wall)
}

// RecV records an event carrying both the given virtual timestamp and
// the current wall one — the form the discrete-event simulators use.
// Histogram durations use the virtual clock. No-op on a nil lane.
//
//uts:noalloc
func (l *Lane) RecV(k Kind, other int32, value int64, virt time.Duration) {
	if l == nil {
		return
	}
	l.rec(k, other, value, l.t.wallNow(), int64(virt), int64(virt))
}

// rec feeds the histograms (using clock, the run's authoritative
// timebase) and appends the event to the ring.
//
//uts:noalloc
func (l *Lane) rec(k Kind, other int32, value, wall, virt, clock int64) {
	switch k {
	case KindStateChange:
		l.hists.Dwell[stateIndex(l.curState)].Observe(clock - l.stateSince)
		l.curState = value
		l.stateSince = clock
	case KindProbeResult:
		l.searchProbes++
	case KindStealRequest:
		l.stealT0 = clock
	case KindStealFail:
		if l.stealT0 >= 0 {
			l.hists.StealLatency.Observe(clock - l.stealT0)
			l.stealT0 = -1
		}
	case KindChunkTransfer:
		if l.stealT0 >= 0 {
			l.hists.StealLatency.Observe(clock - l.stealT0)
			l.stealT0 = -1
		}
		l.hists.ProbeDistance.Observe(l.searchProbes)
		l.searchProbes = 0
		l.hists.ChunkSize.Observe(value)
	}
	l.ring.record(k, l.pe, other, value, wall, virt)
}

// stateIndex clamps a state code into the dwell array.
func stateIndex(code int64) int {
	if code < 0 || code >= NumStates {
		return 0
	}
	return int(code)
}

// Snapshot appends the lane's retained events (oldest first) to dst and
// returns the result. It is safe to call concurrently with the owner
// recording: a slot being overwritten at that instant is skipped, never
// returned torn. Nil-safe.
func (l *Lane) Snapshot(dst []Event) []Event {
	if l == nil {
		return dst
	}
	return l.ring.snapshot(dst)
}

// SnapshotSince appends the lane's retained events with sequence number
// >= since (oldest first) to dst. It returns the extended slice, the
// cursor to pass next time (one past the newest sequence examined), and
// how many events in [since, cursor) were overwritten before this reader
// could copy them — nonzero means the reader fell at least one full ring
// revolution behind. Incremental consumers (the Sampler) re-read only
// what is new; the same seqlock guarantees as Snapshot apply. Nil-safe.
func (l *Lane) SnapshotSince(since uint64, dst []Event) (events []Event, next, missed uint64) {
	if l == nil {
		return dst, since, 0
	}
	return l.ring.snapshotSince(since, dst)
}

// AddNodes adds delta to the lane's live node-progress counter. Owner
// cadence: workers flush their private node counts here at protocol
// boundaries (release, reacquire, steal, termination), never per node, so
// the hot loop stays free of shared-memory traffic. Nil-safe, no-op when
// tracing is off.
//
//uts:noalloc
func (l *Lane) AddNodes(delta int64) {
	if l == nil {
		return
	}
	l.nodes.Add(delta)
}

// LiveNodes returns the lane's live node-progress counter. Safe from any
// goroutine. Nil-safe.
func (l *Lane) LiveNodes() int64 {
	if l == nil {
		return 0
	}
	return l.nodes.Load()
}

// Recorded returns the number of events the lane has ever recorded
// (possibly more than the ring retains). Nil-safe.
func (l *Lane) Recorded() int64 {
	if l == nil {
		return 0
	}
	return int64(l.ring.pos.Load())
}
