package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSnapshotSinceWraparound(t *testing.T) {
	const ringSize = 8
	tr := NewVirtual(1, ringSize)
	l := tr.Lane(0)

	// Empty lane: nothing to return, cursor stays put.
	evs, next, missed := l.SnapshotSince(0, nil)
	if len(evs) != 0 || next != 0 || missed != 0 {
		t.Fatalf("empty lane: got %d events, next=%d missed=%d", len(evs), next, missed)
	}

	for i := 0; i < 5; i++ {
		l.RecV(KindTermEnter, int32(i), int64(i), time.Duration(i))
	}
	evs, next, missed = l.SnapshotSince(0, nil)
	if len(evs) != 5 || next != 5 || missed != 0 {
		t.Fatalf("first read: got %d events, next=%d missed=%d, want 5, 5, 0", len(evs), next, missed)
	}
	for i, e := range evs {
		if e.Seq != uint64(i) || e.Value != int64(i) {
			t.Errorf("event %d: seq=%d value=%d", i, e.Seq, e.Value)
		}
	}

	// Incremental read sees only the new events.
	for i := 5; i < 7; i++ {
		l.RecV(KindTermEnter, int32(i), int64(i), time.Duration(i))
	}
	evs, next, missed = l.SnapshotSince(next, evs[:0])
	if len(evs) != 2 || next != 7 || missed != 0 {
		t.Fatalf("incremental read: got %d events, next=%d missed=%d, want 2, 7, 0", len(evs), next, missed)
	}
	if evs[0].Seq != 5 || evs[1].Seq != 6 {
		t.Errorf("incremental read returned seqs %d,%d, want 5,6", evs[0].Seq, evs[1].Seq)
	}

	// Fall a full revolution behind: the overwritten gap is reported as
	// missed and the read resumes at the oldest retained event.
	for i := 7; i < 30; i++ {
		l.RecV(KindTermEnter, int32(i), int64(i), time.Duration(i))
	}
	evs, next, missed = l.SnapshotSince(7, evs[:0])
	if next != 30 {
		t.Fatalf("post-wrap next = %d, want 30", next)
	}
	if wantMissed := uint64(30 - ringSize - 7); missed != wantMissed {
		t.Errorf("post-wrap missed = %d, want %d", missed, wantMissed)
	}
	if len(evs) != ringSize {
		t.Fatalf("post-wrap retained %d events, want %d", len(evs), ringSize)
	}
	if evs[0].Seq != 30-ringSize {
		t.Errorf("post-wrap oldest seq = %d, want %d", evs[0].Seq, 30-ringSize)
	}

	// A cursor already at the head returns nothing.
	evs, next, missed = l.SnapshotSince(next, evs[:0])
	if len(evs) != 0 || next != 30 || missed != 0 {
		t.Errorf("caught-up read: got %d events, next=%d missed=%d", len(evs), next, missed)
	}
}

// TestSamplerStress runs every lane's writer at full rate against a
// high-frequency sampler (the -race build is the point: the sampler may
// only touch the seqlock read side and the atomic node counters).
// Across successive samples every cumulative quantity must be monotone,
// quantile estimates must stay inside the observed range, and the final
// fold must account for every recorded event.
func TestSamplerStress(t *testing.T) {
	const (
		pes      = 4
		perPE    = 20000
		ringSize = 64 // tiny on purpose: force wraparound under the sampler
	)
	tr := NewVirtual(pes, ringSize)
	s := NewSampler(tr)

	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			l := tr.Lane(pe)
			virt := time.Duration(0)
			for i := 0; i < perPE; i++ {
				switch i % 4 {
				case 0:
					l.RecV(KindStateChange, -1, 2, virt) // stealing
				case 1:
					l.RecV(KindStealRequest, int32((pe+1)%pes), 0, virt)
				case 2:
					l.RecV(KindChunkTransfer, int32((pe+1)%pes), int64(i%64+1), virt)
				case 3:
					l.RecV(KindStateChange, -1, 0, virt) // working
					l.AddNodes(3)
				}
				virt += time.Duration(i%5) * time.Microsecond
			}
		}(pe)
	}

	stop := make(chan struct{})
	go func() { wg.Wait(); close(stop) }()
	var prev LiveStats
	samples := 0
	for sampling := true; sampling; {
		select {
		case <-stop:
			sampling = false
		default:
		}
		st := s.Sample()
		samples++
		if st.Events < prev.Events || st.Nodes < prev.Nodes || st.Missed < prev.Missed {
			t.Fatalf("cumulative counters regressed: %+v after %+v", st, prev)
		}
		for k := 0; k < NumKinds; k++ {
			if st.Kinds[k] < prev.Kinds[k] {
				t.Fatalf("kind %d tally regressed: %d after %d", k, st.Kinds[k], prev.Kinds[k])
			}
		}
		if st.StealLatencyCum.Count() < prev.StealLatencyCum.Count() {
			t.Fatal("cumulative steal-latency count regressed")
		}
		if c := st.StealLatency.Count(); c < 0 || c > st.StealLatencyCum.Count() {
			t.Fatalf("windowed steal count %d out of bounds (cum %d)", c, st.StealLatencyCum.Count())
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if h := &st.StealLatencyCum; h.Count() > 0 {
				if v := h.Quantile(q); v < h.Min() || v > h.Max() {
					t.Fatalf("q%.2f=%d outside [%d,%d]", q, v, h.Min(), h.Max())
				}
			}
		}
		var frac float64
		for _, f := range st.DwellFrac {
			if f < 0 || f > 1 {
				t.Fatalf("dwell fraction %v out of [0,1]", f)
			}
			frac += f
		}
		if frac > 1.0001 {
			t.Fatalf("dwell fractions sum to %v", frac)
		}
		prev = st
	}

	final := s.Sample()
	// The cursor-based event count survives wraparound (it tracks the
	// writers' sequence numbers, not the retained slots), so it is exact
	// even though the tiny rings dropped most events before the sampler
	// saw them; the per-kind tallies cover exactly the replayed ones.
	if want := int64(pes * perPE); final.Events != want {
		t.Errorf("final events = %d, want %d", final.Events, want)
	}
	if want := int64(pes * perPE / 4 * 3); final.Nodes != want {
		t.Errorf("final nodes = %d, want %d", final.Nodes, want)
	}
	var kindSum int64
	for k := 0; k < NumKinds; k++ {
		kindSum += final.Kinds[k]
	}
	if kindSum+final.Missed != final.Events {
		t.Errorf("replayed %d + missed %d != recorded %d", kindSum, final.Missed, final.Events)
	}
	if samples < 2 {
		t.Errorf("sampler only ran %d times against live writers", samples)
	}
}

// TestSamplerFold checks the replay arithmetic on a hand-built event
// stream: steal round trips pair request→outcome, dwell charges the
// state in effect, and the windowed views cover exactly the deltas.
func TestSamplerFold(t *testing.T) {
	tr := NewVirtual(2, 0)
	s := NewSampler(tr)
	l0, l1 := tr.Lane(0), tr.Lane(1)

	l0.RecV(KindStateChange, -1, 2, 0)                     // stealing from t=0
	l0.RecV(KindStealRequest, 1, 0, 10*time.Microsecond)   // request at t=10µs
	l0.RecV(KindChunkTransfer, 1, 32, 25*time.Microsecond) // 15µs round trip
	l0.AddNodes(100)
	l1.RecV(KindStateChange, -1, 0, 0) // working from t=0
	l1.RecV(KindTermEnter, -1, 0, 40*time.Microsecond)

	st := s.Sample()
	if st.Events != 5 || st.Nodes != 100 || st.Missed != 0 {
		t.Fatalf("events=%d nodes=%d missed=%d, want 5, 100, 0", st.Events, st.Nodes, st.Missed)
	}
	if st.Steals != 1 || st.Kinds[KindStealRequest] != 1 || st.Kinds[KindTermEnter] != 1 {
		t.Fatalf("kind tallies wrong: %+v", st.Kinds)
	}
	if st.StealLatencyCum.Count() != 1 || st.StealLatencyCum.Max() != int64(15*time.Microsecond) {
		t.Fatalf("steal latency: count=%d max=%d, want one 15µs sample",
			st.StealLatencyCum.Count(), st.StealLatencyCum.Max())
	}
	if st.ChunkSize.Count() != 1 || st.ChunkSize.Max() != 32 {
		t.Fatalf("chunk size histogram: %+v", st.ChunkSize)
	}
	if !st.Virtual || st.Virt != 40*time.Microsecond {
		t.Fatalf("virtual time = %v (virtual=%v), want 40µs", st.Virt, st.Virtual)
	}
	// Lane 0 dwelt 10µs stealing then (25µs charged at transfer); lane 1
	// dwelt 40µs working. All charged intervals land on those states.
	if st.DwellFrac[0] <= 0 || st.DwellFrac[2] <= 0 {
		t.Fatalf("dwell fractions missing working/stealing time: %+v", st.DwellFrac)
	}
	if sum := st.DwellFrac[0] + st.DwellFrac[2]; math.Abs(sum-1) > 1e-9 {
		t.Fatalf("dwell fractions sum to %v, want 1", sum)
	}

	// Second window: no new events → empty windowed histogram, counters hold.
	st2 := s.Sample()
	if st2.Events != 5 || st2.StealLatency.Count() != 0 {
		t.Fatalf("idle window: events=%d windowed steals=%d", st2.Events, st2.StealLatency.Count())
	}
	if st2.StealLatencyCum.Count() != 1 {
		t.Fatal("cumulative histogram lost its sample")
	}

	line := st2.Line()
	for _, want := range []string{"virt=", "nodes=100", "steals=1"} {
		if !strings.Contains(line, want) {
			t.Errorf("Line() = %q, missing %q", line, want)
		}
	}
}

func TestSamplerNilAndLifecycle(t *testing.T) {
	var s *Sampler = NewSampler(nil)
	if s != nil {
		t.Fatal("NewSampler(nil) should yield a nil sampler")
	}
	s.OnSample(func(LiveStats) {})
	s.Start(time.Millisecond)
	s.Stop()
	if st := s.Sample(); st.Events != 0 {
		t.Fatal("nil sampler returned non-zero stats")
	}

	// A live sampler's OnSample hook fires on ticks and once at Stop.
	tr := NewVirtual(1, 0)
	live := NewSampler(tr)
	var mu sync.Mutex
	calls := 0
	live.OnSample(func(LiveStats) { mu.Lock(); calls++; mu.Unlock() })
	live.Start(time.Millisecond)
	tr.Lane(0).RecV(KindTermEnter, -1, 0, 0)
	time.Sleep(20 * time.Millisecond)
	live.Stop()
	mu.Lock()
	defer mu.Unlock()
	if calls < 2 {
		t.Errorf("OnSample fired %d times, want ticks plus the final Stop sample", calls)
	}
}

func TestHistogramDeltaFrom(t *testing.T) {
	var cum, prev Histogram
	// Delta against a nil/empty prev is the histogram itself.
	cum.Observe(10)
	cum.Observe(500)
	d := cum.DeltaFrom(nil)
	if d.Count() != 2 || d.Sum() != 510 || d.Min() != 10 || d.Max() != 500 {
		t.Fatalf("delta from nil: %+v", d)
	}
	d = cum.DeltaFrom(&prev)
	if d.Count() != 2 || d.Sum() != 510 {
		t.Fatalf("delta from empty: count=%d sum=%d", d.Count(), d.Sum())
	}

	// A proper window: only the new observations.
	prev = cum
	cum.Observe(1000)
	cum.Observe(7)
	d = cum.DeltaFrom(&prev)
	if d.Count() != 2 || d.Sum() != 1007 {
		t.Fatalf("windowed delta: count=%d sum=%d, want 2, 1007", d.Count(), d.Sum())
	}
	if d.Min() != 7 || d.Max() > cum.Max() || d.Max() < 1000*15/16 {
		t.Fatalf("windowed extremes [%d,%d] implausible for {7,1000}", d.Min(), d.Max())
	}
	if q := d.Quantile(0.5); q < d.Min() || q > d.Max() {
		t.Fatalf("windowed quantile %d outside [%d,%d]", q, d.Min(), d.Max())
	}

	// An empty window never goes negative.
	prev = cum
	d = cum.DeltaFrom(&prev)
	if d.Count() != 0 || d.Sum() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatalf("empty window not empty: %+v", d)
	}

	// A torn prev (not a prefix: some buckets ahead of cum) clamps to
	// zero rather than underflowing.
	var ahead Histogram
	for i := 0; i < 10; i++ {
		ahead.Observe(3)
	}
	d = cum.DeltaFrom(&ahead)
	if d.Count() < 0 || d.Sum() < 0 {
		t.Fatalf("torn prev produced negative delta: %+v", d)
	}
	for _, c := range d.buckets {
		if c < 0 {
			t.Fatal("negative bucket count in delta")
		}
	}
}

// TestHistogramDeltaFromSumClamp pins the windowed-sum consistency fix: a
// torn/non-prefix prev clamps bucket counts per bucket but used to subtract
// sum wholesale, so the window's Mean() could exceed its own max (or fall
// below its min). The sum must now land in [n·min, n·max].
func TestHistogramDeltaFromSumClamp(t *testing.T) {
	// Mean > max: a torn prev whose bucket array includes a large
	// observation its sum missed. The per-bucket clamp removes the large
	// bucket from the window, but the wholesale sum difference keeps its
	// weight — pre-fix the window was {3} with sum 2^40+3.
	var h Histogram
	h.Observe(1 << 40)
	prev := h
	prev.sum = 0 // torn copy: buckets seen, sum not yet
	h.Observe(3)
	d := h.DeltaFrom(&prev)
	if d.Count() != 1 || d.Max() != 3 {
		t.Fatalf("window should be the single small observation, got %+v", d)
	}
	if m := d.Mean(); m > float64(d.Max()) {
		t.Errorf("windowed Mean %g exceeds windowed max %d", m, d.Max())
	}
	if m := d.Mean(); m < float64(d.Min()) {
		t.Errorf("windowed Mean %g below windowed min %d", m, d.Min())
	}

	// Mean < min: prev's sum is ahead of h's, so the wholesale difference
	// clamps to 0 while the window still holds large observations.
	var h2, prev2 Histogram
	for i := 0; i < 8; i++ {
		prev2.Observe(1 << 30)
	}
	for i := 0; i < 8; i++ {
		h2.Observe(1 << 20) // different buckets, smaller sum
	}
	h2.Observe(1 << 21)
	d = h2.DeltaFrom(&prev2)
	if d.Count() <= 0 {
		t.Fatalf("expected a non-empty window, got %+v", d)
	}
	if m := d.Mean(); m < float64(d.Min()) || m > float64(d.Max()) {
		t.Errorf("windowed Mean %g outside [%d,%d]", m, d.Min(), d.Max())
	}

	// Property sweep: random torn prevs; the invariant n·min ≤ sum ≤ n·max
	// must hold for every window.
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 200; trial++ {
		var a, b Histogram
		for i := 0; i < int(next()%20); i++ {
			a.Observe(int64(next() % (1 << (next() % 40))))
		}
		for i := 0; i < int(next()%20); i++ {
			b.Observe(int64(next() % (1 << (next() % 40))))
		}
		d := a.DeltaFrom(&b)
		if d.Count() == 0 {
			if d.Sum() != 0 {
				t.Fatalf("trial %d: empty window with sum %d", trial, d.Sum())
			}
			continue
		}
		if d.Sum() < d.Count()*d.Min() || d.Sum() > d.Count()*d.Max() {
			t.Fatalf("trial %d: sum %d outside [%d,%d] (n=%d min=%d max=%d)",
				trial, d.Sum(), d.Count()*d.Min(), d.Count()*d.Max(),
				d.Count(), d.Min(), d.Max())
		}
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	// Near 2^63: bucketing must stay in range and quantiles must clamp
	// into the observed extremes.
	var h Histogram
	big := int64(math.MaxInt64)
	h.Observe(big)
	h.Observe(big - 1)
	h.Observe(big / 2)
	if h.Count() != 3 || h.Max() != big {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v < h.Min() || v > h.Max() {
			t.Fatalf("q%.2f=%d outside [%d,%d]", q, v, h.Min(), h.Max())
		}
	}

	// Single observation: every quantile is exactly it.
	var one Histogram
	one.Observe(12345)
	for _, q := range []float64{0, 0.5, 1} {
		if v := one.Quantile(q); v != 12345 {
			t.Fatalf("single-sample q%.2f = %d, want 12345", q, v)
		}
	}

	// Merge with an empty receiver adopts the operand's extremes; an
	// empty operand (or nil) changes nothing.
	var dst Histogram
	dst.Merge(&one)
	if dst.Min() != 12345 || dst.Max() != 12345 || dst.Count() != 1 {
		t.Fatalf("merge into empty: min=%d max=%d n=%d", dst.Min(), dst.Max(), dst.Count())
	}
	var empty Histogram
	dst.Merge(&empty)
	dst.Merge(nil)
	if dst.Min() != 12345 || dst.Max() != 12345 || dst.Count() != 1 {
		t.Fatalf("merge of empty operand changed the receiver: min=%d max=%d n=%d", dst.Min(), dst.Max(), dst.Count())
	}
}
