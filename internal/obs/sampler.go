package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Sampler is the live read side of the tracer: where Summary folds the
// rings once at end-of-run, a Sampler re-reads each lane incrementally
// (via the cursor-based SnapshotSince) on a periodic wall-clock tick and
// maintains — while the run is still going — monotonic per-kind counters,
// cumulative and *windowed* steal-latency histograms, windowed per-state
// dwell fractions, and throughput rates (events/s, nodes/s, steals/s over
// the last window).
//
// The Sampler uses only the seqlock read side of the rings plus the
// lanes' atomic progress counters, so attaching one changes nothing on
// the owning PEs' record path: no locks, no allocation, no extra stores —
// a sampled run's schedule and counters are byte-identical to an
// unsampled one (the traced-vs-untraced differential gates extend to
// sampler-attached runs).
//
// Wall-clock time lives here, in the consumer, never in the
// detcheck-scoped scheduler packages: the sampler goroutine owns the
// ticker, and DES runs keep their virtual clocks untouched — the sampler
// merely reports the newest virtual timestamp it has seen.
//
// A nil *Sampler is a valid, disabled sampler: every method is nil-safe,
// mirroring the nil-*Tracer convention.
type Sampler struct {
	t     *Tracer
	start time.Time

	mu       sync.Mutex
	cursors  []uint64 // per-lane SnapshotSince cursor
	scratch  []Event  // reused event buffer
	lanes    []replay // per-lane event-replay state
	events   int64    // cumulative events recorded (sum of cursors)
	missed   int64    // cumulative events overwritten before sampling
	virtMax  int64    // newest virtual timestamp seen (-1 when none)
	kinds    [NumKinds]int64
	stealCum Histogram
	chunkCum Histogram
	dwell    [NumStates]int64 // cumulative ns per state

	// Previous-window snapshots for delta computation.
	prevWall   time.Time
	prevEvents int64
	prevNodes  int64
	prevKinds  [NumKinds]int64
	prevSteal  Histogram
	prevDwell  [NumStates]int64

	last LiveStats

	onSample func(LiveStats)
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// replay is the per-lane state reconstructing latency and dwell measures
// from the raw event stream — the read-side mirror of Lane.rec's
// owner-only bookkeeping.
type replay struct {
	stealT0 int64 // pending steal-request timestamp, -1 when none
	state   int64 // current Figure-1 state code
	lastT   int64 // timestamp up to which dwell has been charged
}

// LiveStats is one sampled view of a running (or finished) traversal.
// Counters and the cumulative histograms are monotonic across successive
// samples; the windowed fields cover the wall-clock interval since the
// previous sample.
type LiveStats struct {
	// Elapsed is wall time since the sampler was created; Window is the
	// wall interval the windowed fields cover.
	Elapsed, Window time.Duration
	// Virtual reports whether the underlying tracer timestamps events in
	// virtual (DES) time; Virt is then the newest virtual timestamp seen.
	Virtual bool
	Virt    time.Duration
	// Events is the cumulative number of events recorded across lanes;
	// Missed counts events the rings overwrote before the sampler read
	// them (the sampler fell a full ring revolution behind).
	Events, Missed int64
	// Nodes is the cumulative tree-node progress flushed by the workers
	// (Lane.AddNodes).
	Nodes int64
	// Kinds tallies every event kind recorded so far, indexed by Kind.
	Kinds [NumKinds]int64
	// Steals, Probes, FailedSteals, Releases, Reacquires are the headline
	// protocol counters (projections of Kinds, here for convenience).
	Steals, Probes, FailedSteals, Releases, Reacquires int64
	// EventsPerSec, NodesPerSec, StealsPerSec are windowed wall-clock
	// rates.
	EventsPerSec, NodesPerSec, StealsPerSec float64
	// StealLatency holds the steal round trips completed in the last
	// window; StealLatencyCum all of them since the run began. Durations
	// are virtual ns for DES runs, wall ns otherwise.
	StealLatency, StealLatencyCum Histogram
	// ChunkSize is the cumulative nodes-per-successful-steal histogram.
	ChunkSize Histogram
	// DwellFrac is the fraction of observed PE-time spent in each
	// Figure-1 state during the last window (zeroes when the window saw
	// no state activity).
	DwellFrac [NumStates]float64
}

// NewSampler builds a sampler over t's lanes. A nil tracer yields a nil
// (disabled, nil-safe) sampler.
func NewSampler(t *Tracer) *Sampler {
	if t == nil {
		return nil
	}
	s := &Sampler{
		t:       t,
		start:   time.Now(),
		cursors: make([]uint64, t.PEs()),
		lanes:   make([]replay, t.PEs()),
		virtMax: -1,
	}
	for i := range s.lanes {
		s.lanes[i].stealT0 = -1
	}
	s.prevWall = s.start
	return s
}

// OnSample registers fn to run after every periodic (and final) sample,
// called from the sampler goroutine with the fresh stats — the hook the
// CLI -live progress lines hang off. Register before Start. Nil-safe.
func (s *Sampler) OnSample(fn func(LiveStats)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onSample = fn
	s.mu.Unlock()
}

// Start launches the periodic sampling goroutine with the given interval
// (non-positive means 1s). Call Stop to halt it; Start is not reentrant.
// Nil-safe (a nil sampler ignores Start).
func (s *Sampler) Start(interval time.Duration) {
	if s == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	s.stopCh = make(chan struct{})
	s.doneCh = make(chan struct{})
	go func() {
		defer close(s.doneCh)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-tick.C:
				s.sampleAndNotify()
			}
		}
	}()
}

// Stop halts the periodic goroutine (if running) and takes one final
// sample so the last window is never lost. Nil-safe.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	if s.stopCh != nil {
		close(s.stopCh)
		<-s.doneCh
		s.stopCh, s.doneCh = nil, nil
	}
	s.sampleAndNotify()
}

// sampleAndNotify folds once and runs the OnSample hook outside the lock.
func (s *Sampler) sampleAndNotify() {
	st := s.Sample()
	s.mu.Lock()
	fn := s.onSample
	s.mu.Unlock()
	if fn != nil {
		fn(st)
	}
}

// Sample folds every lane's new events into the cumulative state, closes
// the current window, and returns the resulting stats. Safe from any
// goroutine (the fold is serialized by the sampler's own lock; the ring
// reads are seqlock-consistent against the recording PEs). Nil-safe.
func (s *Sampler) Sample() LiveStats {
	if s == nil {
		return LiveStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()

	var events, nodes int64
	for i := range s.cursors {
		l := s.t.Lane(i)
		var evs []Event
		evs, next, missed := l.SnapshotSince(s.cursors[i], s.scratch[:0])
		s.cursors[i] = next
		s.missed += int64(missed)
		events += int64(next)
		nodes += l.LiveNodes()
		s.replayLane(&s.lanes[i], evs)
		s.scratch = evs[:0]
	}
	s.events = events

	st := LiveStats{
		Elapsed: now.Sub(s.start),
		Window:  now.Sub(s.prevWall),
		Virtual: s.t.Virtual(),
		Events:  s.events,
		Missed:  s.missed,
		Nodes:   nodes,
		Kinds:   s.kinds,

		Steals:          s.kinds[KindChunkTransfer],
		Probes:          s.kinds[KindProbeResult],
		FailedSteals:    s.kinds[KindStealFail],
		Releases:        s.kinds[KindRelease],
		Reacquires:      s.kinds[KindReacquire],
		StealLatencyCum: s.stealCum,
		ChunkSize:       s.chunkCum,
	}
	if s.virtMax >= 0 {
		st.Virt = time.Duration(s.virtMax)
	}
	st.StealLatency = s.stealCum.DeltaFrom(&s.prevSteal)
	if sec := st.Window.Seconds(); sec > 0 {
		st.EventsPerSec = float64(st.Events-s.prevEvents) / sec
		st.NodesPerSec = float64(st.Nodes-s.prevNodes) / sec
		st.StealsPerSec = float64(st.Steals-s.prevKinds[KindChunkTransfer]) / sec
	}
	var dwellTotal int64
	var win [NumStates]int64
	for i := range win {
		if d := s.dwell[i] - s.prevDwell[i]; d > 0 {
			win[i] = d
			dwellTotal += d
		}
	}
	if dwellTotal > 0 {
		for i := range win {
			st.DwellFrac[i] = float64(win[i]) / float64(dwellTotal)
		}
	}

	s.prevWall = now
	s.prevEvents = st.Events
	s.prevNodes = st.Nodes
	s.prevKinds = s.kinds
	s.prevSteal = s.stealCum
	s.prevDwell = s.dwell
	s.last = st
	return st
}

// Stats returns the most recently sampled stats without folding. Nil-safe.
func (s *Sampler) Stats() LiveStats {
	if s == nil {
		return LiveStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Line renders one -live progress line: elapsed (and, for DES runs,
// virtual) time, node and event throughput with windowed rates, steal
// totals, the window's steal-latency p95, and the windowed working-state
// fraction. This is what the CLI -live flag prints to stderr each tick.
func (st LiveStats) Line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live %8s", st.Elapsed.Round(100*time.Millisecond))
	if st.Virtual {
		fmt.Fprintf(&b, " virt=%s", st.Virt.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, " nodes=%s (%s/s) events=%s (%s/s) steals=%d",
		quantity(float64(st.Nodes)), quantity(st.NodesPerSec),
		quantity(float64(st.Events)), quantity(st.EventsPerSec), st.Steals)
	if st.StealLatency.Count() > 0 {
		fmt.Fprintf(&b, " p95(steal)=%s", time.Duration(st.StealLatency.Quantile(0.95)).Round(time.Microsecond))
	}
	var dwell float64
	for _, f := range st.DwellFrac {
		dwell += f
	}
	if dwell > 0 {
		fmt.Fprintf(&b, " work=%.0f%%", 100*st.DwellFrac[0])
	}
	if st.Missed > 0 {
		fmt.Fprintf(&b, " missed=%d", st.Missed)
	}
	return b.String()
}

// quantity renders a count or rate with a k/M/G suffix.
func quantity(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// replayLane feeds one lane's new events through the read-side mirror of
// Lane.rec: steal round trips pair KindStealRequest with the next
// outcome, dwell charges every inter-event interval to the state in
// effect, and per-kind tallies grow monotonically.
func (s *Sampler) replayLane(r *replay, evs []Event) {
	for i := range evs {
		e := &evs[i]
		if int(e.Kind) < NumKinds {
			s.kinds[e.Kind]++
		}
		t := e.T()
		if e.Virt > s.virtMax {
			s.virtMax = e.Virt
		}
		if t > r.lastT {
			s.dwell[stateIndex(r.state)] += t - r.lastT
			r.lastT = t
		}
		switch e.Kind {
		case KindStateChange:
			r.state = e.Value
		case KindStealRequest:
			r.stealT0 = t
		case KindStealFail:
			if r.stealT0 >= 0 {
				s.stealCum.Observe(t - r.stealT0)
				r.stealT0 = -1
			}
		case KindChunkTransfer:
			if r.stealT0 >= 0 {
				s.stealCum.Observe(t - r.stealT0)
				r.stealT0 = -1
			}
			s.chunkCum.Observe(e.Value)
		}
	}
}
