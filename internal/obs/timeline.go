package obs

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// WriteTimeline writes the merged, time-ordered text timeline — the
// quick terminal triage view. One line per retained event:
//
//	123.456µs  PE   3  steal-request → PE 7
//	131.002µs  PE   7  steal-grant → PE 3 chunks=4
//
// Virtual tracers print virtual timestamps, real tracers wall time
// since the tracer epoch. Nil-safe: a nil tracer writes nothing.
func WriteTimeline(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		ts := time.Duration(e.T()).Round(time.Nanosecond)
		if _, err := fmt.Fprintf(bw, "%14s  PE %3d  %s\n", ts, e.PE, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
