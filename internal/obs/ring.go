package obs

import "sync/atomic"

// ring is a single-writer, many-reader event ring. The writer (the
// owning PE) never blocks, never allocates, and takes no locks; readers
// may snapshot at any time, including while the writer is recording.
//
// Each slot is slotWords uint64 words, all accessed atomically. Word 0
// is a seqlock stamp: the writer invalidates it (stores 0) before
// touching the payload words and publishes seq+1 after, so a reader that
// sees the same non-zero stamp before and after copying the payload has
// a consistent event, and a reader that raced an overwrite sees the
// stamp change (or the 0 marker) and drops the slot. This is what keeps
// concurrent snapshots race-detector-clean without a lock on the record
// path: every shared word is an atomic access, and torn payloads are
// detected rather than returned.
type ring struct {
	buf  []uint64
	size uint64
	// pos is the next sequence number to write — equivalently, the
	// number of events ever recorded.
	pos atomic.Uint64
}

// slot layout: [stamp, kind|pe, other, value, wall, virt]
const slotWords = 6

func (r *ring) init(size int) {
	r.size = uint64(size)
	r.buf = make([]uint64, uint64(size)*slotWords)
}

// record appends one event. Owner-only. The stamp bracket is a
// seqlock: the invalidating zero store precedes every payload word,
// and every payload word precedes the publishing stamp — ordercheck
// enforces both halves by dominance.
//
//uts:noalloc
//uts:orders invalidate<payload payload<publish
func (r *ring) record(k Kind, pe, other int32, value, wall, virt int64) {
	seq := r.pos.Load() // single writer: no contention on the load
	i := (seq % r.size) * slotWords
	b := r.buf
	atomic.StoreUint64(&b[i], 0)                                  //uts:mark invalidate
	atomic.StoreUint64(&b[i+1], uint64(k)|uint64(uint32(pe))<<32) //uts:mark payload
	atomic.StoreUint64(&b[i+2], uint64(int64(other)))             //uts:mark payload
	atomic.StoreUint64(&b[i+3], uint64(value))                    //uts:mark payload
	atomic.StoreUint64(&b[i+4], uint64(wall))                     //uts:mark payload
	atomic.StoreUint64(&b[i+5], uint64(virt))                     //uts:mark payload
	atomic.StoreUint64(&b[i], seq+1)                              //uts:mark publish
	r.pos.Store(seq + 1)
}

// snapshot appends the retained events, oldest first, to dst. Safe from
// any goroutine; slots overwritten mid-read are skipped.
func (r *ring) snapshot(dst []Event) []Event {
	dst, _, _ = r.snapshotSince(0, dst)
	return dst
}

// snapshotSince appends the retained events with sequence number >= since,
// oldest first, to dst. It returns the extended slice, the cursor to pass
// on the next call (one past the newest sequence number examined), and how
// many events in [since, cursor) this reader lost — overwritten before it
// got to them, or overwritten mid-copy and dropped by the seqlock check.
// Safe from any goroutine. Every sequence number in [since, cursor) is
// thus accounted for exactly once: returned or counted missed.
func (r *ring) snapshotSince(since uint64, dst []Event) ([]Event, uint64, uint64) {
	if r.size == 0 {
		return dst, since, 0
	}
	hi := r.pos.Load()
	lo := uint64(0)
	if hi > r.size {
		lo = hi - r.size
	}
	var missed uint64
	if since > lo {
		lo = since
	} else if since < lo {
		missed = lo - since
	}
	b := r.buf
	for s := lo; s < hi; s++ {
		i := (s % r.size) * slotWords
		if atomic.LoadUint64(&b[i]) != s+1 {
			missed++ // the writer lapped this slot before we read it
			continue
		}
		kp := atomic.LoadUint64(&b[i+1])
		other := int64(atomic.LoadUint64(&b[i+2]))
		value := int64(atomic.LoadUint64(&b[i+3]))
		wall := int64(atomic.LoadUint64(&b[i+4]))
		virt := int64(atomic.LoadUint64(&b[i+5]))
		if atomic.LoadUint64(&b[i]) != s+1 {
			missed++ // overwritten while copying: payload may be torn
			continue
		}
		dst = append(dst, Event{
			Seq:   s,
			Kind:  Kind(kp & 0xff),
			PE:    int32(kp >> 32),
			Other: int32(other),
			Value: value,
			Wall:  wall,
			Virt:  virt,
		})
	}
	return dst, hi, missed
}
