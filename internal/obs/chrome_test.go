package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden Chrome trace")

// goldenTracer replays a small deterministic steal episode on two virtual
// lanes: PE 1 probes PE 0, steals from it, and both settle. It exercises
// every exporter branch — metadata, state slices, instants with args, the
// flow arrow pair, a failed steal, and open-interval closing.
func goldenTracer() *Tracer {
	tr := NewVirtual(2, 16)
	l0, l1 := tr.Lane(0), tr.Lane(1)
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }

	l0.RecV(KindStateChange, -1, 0, us(0)) // PE 0 starts working
	l1.RecV(KindStateChange, -1, 0, us(0))
	l1.RecV(KindStateChange, -1, 1, us(50)) // PE 1 runs dry, searches
	l1.RecV(KindProbeStart, 0, 0, us(60))
	l1.RecV(KindProbeResult, 0, 2, us(80))  // PE 0 has 2 chunks
	l1.RecV(KindStateChange, -1, 2, us(90)) // stealing
	l1.RecV(KindStealRequest, 0, 0, us(100))
	l0.RecV(KindStealGrant, 1, 1, us(150))    // victim grants 1 chunk
	l1.RecV(KindChunkTransfer, 0, 8, us(200)) // 8 nodes land: flow 100→200
	l1.RecV(KindStateChange, -1, 0, us(210))  // back to working
	l0.RecV(KindRelease, -1, 1, us(250))
	l1.RecV(KindReacquire, -1, 8, us(260))
	l1.RecV(KindStateChange, -1, 1, us(300)) // dry again
	l1.RecV(KindStealRequest, 0, 0, us(310))
	l1.RecV(KindStealFail, 0, 0, us(330)) // nothing left this time
	l0.RecV(KindTermEnter, -1, 0, us(400))
	l1.RecV(KindTermEnter, -1, 0, us(410))
	return tr
}

// TestChromeGolden byte-compares the exporter output against the checked-in
// golden file — the field-order and framing stability contract. Regenerate
// with: go test ./internal/obs -run TestChromeGolden -update
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exporter output drifted from golden file (regenerate with -update if intentional)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeStructure parses the exporter output and checks the semantic
// shape: valid JSON, one thread_name per lane, a matched s/f flow pair for
// the successful steal and none for the failed one.
func TestChromeStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
			ID   int     `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	var flowStart, flowEnd *struct {
		ts      float64
		tid, id int
	}
	for _, e := range doc.TraceEvents {
		counts[e.Ph]++
		switch e.Ph {
		case "s":
			flowStart = &struct {
				ts      float64
				tid, id int
			}{e.Ts, e.Tid, e.ID}
		case "f":
			flowEnd = &struct {
				ts      float64
				tid, id int
			}{e.Ts, e.Tid, e.ID}
		}
	}
	if counts["M"] != 2 {
		t.Errorf("thread_name metadata events = %d, want 2", counts["M"])
	}
	if counts["s"] != 1 || counts["f"] != 1 {
		t.Fatalf("flow events s=%d f=%d, want exactly one pair (failed steal must not draw an arrow)",
			counts["s"], counts["f"])
	}
	if flowStart.id != flowEnd.id {
		t.Errorf("flow ids differ: %d vs %d", flowStart.id, flowEnd.id)
	}
	// Arrow runs from the victim's lane at request time to the thief's
	// lane at transfer time.
	if flowStart.tid != 0 || flowStart.ts != 100 {
		t.Errorf("flow start tid=%d ts=%v, want victim tid 0 at 100µs", flowStart.tid, flowStart.ts)
	}
	if flowEnd.tid != 1 || flowEnd.ts != 200 {
		t.Errorf("flow end tid=%d ts=%v, want thief tid 1 at 200µs", flowEnd.tid, flowEnd.ts)
	}
	if counts["X"] == 0 {
		t.Error("no state slices emitted")
	}
	// Every lane's open interval is closed at the trace end (410µs), so
	// no slice may extend past it.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Ts > 410 {
			t.Errorf("state slice starts at %vµs, past the trace end", e.Ts)
		}
	}
}
