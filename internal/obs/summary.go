package obs

import (
	"fmt"
	"strings"
	"time"
)

// Summary is the run-wide histogram aggregation: every lane's owner-only
// histograms merged after (or during) a run. It is the piece of the
// tracer that internal/stats folds into its reports — rings wrap, so the
// timeline may be partial, but the Summary always covers every protocol
// operation of the run.
type Summary struct {
	// Virtual reports whether durations are virtual (DES) ns rather
	// than wall ns.
	Virtual bool
	// PEs is the lane count.
	PEs int
	// Events is the total number of events recorded across lanes;
	// Dropped is how many of those the rings have already overwritten.
	Events  int64
	Dropped int64

	// The merged histograms; see Hists for the semantics of each.
	StealLatency  Histogram
	ProbeDistance Histogram
	ChunkSize     Histogram
	Dwell         [NumStates]Histogram
}

// Summary merges every lane's histograms. It is meant to be called after
// the run (the histograms are owner-only during it); calling it mid-run
// from a PE's own goroutine is safe but sees only completed operations.
// Nil-safe: a nil tracer summarizes to nil.
func (t *Tracer) Summary() *Summary {
	if t == nil {
		return nil
	}
	s := &Summary{Virtual: t.virtual, PEs: len(t.lanes)}
	for i := range t.lanes {
		l := &t.lanes[i]
		n := int64(l.ring.pos.Load())
		s.Events += n
		if over := n - int64(l.ring.size); over > 0 {
			s.Dropped += over
		}
		s.StealLatency.Merge(&l.hists.StealLatency)
		s.ProbeDistance.Merge(&l.hists.ProbeDistance)
		s.ChunkSize.Merge(&l.hists.ChunkSize)
		for st := range s.Dwell {
			s.Dwell[st].Merge(&l.hists.Dwell[st])
		}
	}
	return s
}

// fmtDur renders a ns value as a rounded duration.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

// fmtCount renders a plain count value.
func fmtCount(v int64) string { return fmt.Sprint(v) }

// String renders the multi-line histogram report appended to the
// internal/stats run summary:
//
//	steal-latency: p50=… p95=… p99=… max=… (n=…)
//	chunk-size(nodes): … ; probe-distance(probes): …
//	dwell working: … | searching: … | stealing: … | idle: …
func (s *Summary) String() string {
	if s == nil {
		return ""
	}
	clock := "wall"
	if s.Virtual {
		clock = "virtual"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events (%d dropped), %s clock\n", s.Events, s.Dropped, clock)
	fmt.Fprintf(&b, "steal-latency: %s\n", s.StealLatency.Summarize(fmtDur))
	fmt.Fprintf(&b, "chunk-size(nodes): %s; probe-distance(probes): %s\n",
		s.ChunkSize.Summarize(fmtCount), s.ProbeDistance.Summarize(fmtCount))
	b.WriteString("dwell")
	for st := 0; st < NumStates; st++ {
		if st > 0 {
			b.WriteString(" |")
		}
		fmt.Fprintf(&b, " %s: %s", StateName(int64(st)), s.Dwell[st].Summarize(fmtDur))
	}
	b.WriteByte('\n')
	return b.String()
}
