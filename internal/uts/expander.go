package uts

import "repro/internal/rng"

// Expander is a per-traversal child generator: it resolves the spec's
// stream once and owns a capacity-managed scratch buffer that Children
// calls reuse, so a worker's steady-state exploration loop performs zero
// heap allocations. Every traversal loop in this repository — the
// sequential oracle, the real-concurrency workers in internal/core, and
// the simulator PEs in internal/des — expands nodes through an Expander,
// which keeps the Figure 3 comparison apples-to-apples: all
// implementations pay exactly the same per-node generation cost.
//
// An Expander is owned by a single goroutine; create one per worker.
type Expander struct {
	sp  *Spec
	st  rng.Stream
	buf []Node
}

// NewExpander returns an Expander for sp. The scratch buffer starts at the
// MaxChildren cap, so only a wide root (binomial B0 above the cap) ever
// grows it; after that one growth it is never reallocated.
func NewExpander(sp *Spec) *Expander {
	return &Expander{sp: sp, st: sp.Stream(), buf: make([]Node, 0, MaxChildren)}
}

// Spec returns the tree spec the Expander was built for.
func (e *Expander) Spec() *Spec { return e.sp }

// Children returns the children of n in the Expander's scratch buffer.
// The slice is valid only until the next Children call: callers copy the
// nodes onto their own stack (e.g. Deque.PushAll) before expanding any of
// them. It returns an empty slice for leaves.
func (e *Expander) Children(n *Node) []Node {
	e.buf = Children(e.sp, e.st, n, e.buf[:0])
	return e.buf
}

// Root returns the root node of the Expander's tree.
func (e *Expander) Root() Node { return Root(e.sp) }
