package uts

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

// pinned holds the exact node counts of the sample trees, measured once and
// frozen. Any change to the RNG conventions or child-generation rules will
// trip these, which is the point: the trees are the ground truth for every
// parallel result in the repository.
var pinned = map[string]struct {
	nodes, leaves int64
	maxDepth      int32
}{
	"bench-tiny":   {3337, 1698, 100},
	"bench-small":  {63575, 31887, 319},
	"geo-linear":   {9332, 5184, 10},
	"hybrid-small": {22176, 11262, 193},
	"balanced-3x7": {3280, 2187, 7},
}

var pinnedLarge = map[string]struct {
	nodes, leaves int64
	maxDepth      int32
}{
	"bench-medium": {481599, 241049, 1665},
	"geo-fixed":    {153910, 123131, 8},
	"geo-cyclic":   {240850, 152422, 20},
	"bench-large":  {6698443, 3350221, 6853},
}

func TestPinnedCounts(t *testing.T) {
	for name, want := range pinned { //uts:ok detcheck assertion sweep over golden counts; order cannot affect pass/fail
		sp := ByName(name)
		if sp == nil {
			t.Fatalf("tree %q not found", name)
		}
		c := SearchSequential(sp)
		if c.Nodes != want.nodes || c.Leaves != want.leaves || c.MaxDepth != want.maxDepth {
			t.Errorf("%s: got (nodes=%d leaves=%d depth=%d), want (%d, %d, %d)",
				name, c.Nodes, c.Leaves, c.MaxDepth, want.nodes, want.leaves, want.maxDepth)
		}
	}
}

func TestPinnedCountsLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large trees skipped in -short mode")
	}
	for name, want := range pinnedLarge { //uts:ok detcheck assertion sweep over golden counts; order cannot affect pass/fail
		sp := ByName(name)
		c := SearchSequential(sp)
		if c.Nodes != want.nodes || c.Leaves != want.leaves || c.MaxDepth != want.maxDepth {
			t.Errorf("%s: got (nodes=%d leaves=%d depth=%d), want (%d, %d, %d)",
				name, c.Nodes, c.Leaves, c.MaxDepth, want.nodes, want.leaves, want.maxDepth)
		}
	}
}

func TestBalancedExactStructure(t *testing.T) {
	// A balanced b-ary tree of depth d has (b^(d+1)-1)/(b-1) nodes and b^d
	// leaves; verify across several shapes.
	for _, tc := range []struct{ b, d int }{{2, 10}, {3, 7}, {5, 4}, {1, 6}, {7, 3}} {
		sp := Spec{Name: "bal", Kind: Balanced, B0: tc.b, GenMx: tc.d}
		c := SearchSequential(&sp)
		wantLeaves := int64(math.Pow(float64(tc.b), float64(tc.d)))
		var wantNodes int64
		if tc.b == 1 {
			wantNodes = int64(tc.d) + 1
		} else {
			wantNodes = (wantLeaves*int64(tc.b) - 1) / int64(tc.b-1)
		}
		if c.Nodes != wantNodes {
			t.Errorf("balanced(%d,%d): nodes=%d want %d", tc.b, tc.d, c.Nodes, wantNodes)
		}
		if c.Leaves != wantLeaves {
			t.Errorf("balanced(%d,%d): leaves=%d want %d", tc.b, tc.d, c.Leaves, wantLeaves)
		}
		if int(c.MaxDepth) != tc.d {
			t.Errorf("balanced(%d,%d): depth=%d want %d", tc.b, tc.d, c.MaxDepth, tc.d)
		}
	}
}

func TestRootProperties(t *testing.T) {
	r := Root(&BenchTiny)
	if r.Height != 0 {
		t.Errorf("root height = %d", r.Height)
	}
	if int(r.NumKids) != BenchTiny.B0 {
		t.Errorf("binomial root has %d kids, want B0=%d", r.NumKids, BenchTiny.B0)
	}
}

func TestChildrenDeterministic(t *testing.T) {
	st := BenchTiny.Stream()
	r := Root(&BenchTiny)
	a := Children(&BenchTiny, st, &r, nil)
	b := Children(&BenchTiny, st, &r, nil)
	if len(a) != len(b) {
		t.Fatalf("child counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("child %d differs", i)
		}
	}
}

func TestChildrenAppendSemantics(t *testing.T) {
	st := BenchTiny.Stream()
	r := Root(&BenchTiny)
	prefix := []Node{{Height: 99}}
	out := Children(&BenchTiny, st, &r, prefix)
	if len(out) != 1+int(r.NumKids) {
		t.Fatalf("append result length %d, want %d", len(out), 1+r.NumKids)
	}
	if out[0].Height != 99 {
		t.Error("Children clobbered existing prefix")
	}
}

func TestNodeCountsMatchChildSum(t *testing.T) {
	// Invariant: nodes = 1 + sum of child counts over all nodes; equivalently
	// nodes = leaves + interior, and for binomial interior non-root nodes all
	// have exactly M children: nodes = 1 + B0 + M*(interior - 1).
	sp := &BenchTiny
	c := SearchSequential(sp)
	interior := c.Nodes - c.Leaves
	want := 1 + int64(sp.B0) + int64(sp.M)*(interior-1)
	if c.Nodes != want {
		t.Errorf("binomial identity violated: nodes=%d want %d", c.Nodes, want)
	}
}

func TestValidate(t *testing.T) {
	good := []Spec{BenchTiny, GeoFixed, GeoCyclic, HybridSmall, Balanced3x7, T1Paper, T2Paper}
	for _, sp := range good {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: unexpected validate error: %v", sp.Name, err)
		}
	}
	bad := []Spec{
		{Kind: Binomial, B0: -1},
		{Kind: Binomial, B0: 10, M: 2, Q: 0.6},          // supercritical
		{Kind: Binomial, B0: 10, M: -3, Q: 0.1},         // negative M
		{Kind: Binomial, B0: 10, M: 2, Q: 1.5},          // Q out of range
		{Kind: Geometric, B0: 4, GenMx: 0},              // no depth
		{Kind: Hybrid, B0: 4, GenMx: 5, Shift: 2},       // bad shift
		{Kind: Kind(42), B0: 1},                         // unknown kind
		{Kind: Binomial, B0: 4, M: 2, Q: 0.1, RNG: "x"}, // unknown rng
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestExpectedSizeBinomial(t *testing.T) {
	// BenchTiny: 1 + 60/(1-2*0.5*(1-5e-3)) = 1 + 60/0.005 = 12001.
	got := BenchTiny.ExpectedSize()
	if math.Abs(got-12001) > 1 {
		t.Errorf("ExpectedSize = %g, want 12001", got)
	}
	sup := Spec{Kind: Binomial, B0: 2, M: 2, Q: 0.6}
	if !math.IsInf(sup.ExpectedSize(), 1) {
		t.Error("supercritical tree should have infinite expected size")
	}
}

func TestExpectedSizeBalanced(t *testing.T) {
	got := Balanced3x7.ExpectedSize()
	if got != 3280 {
		t.Errorf("balanced expected size = %g, want 3280", got)
	}
}

func TestSearchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := SearchSequentialCtx(ctx, &BenchMedium)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if c.Nodes >= 481599 {
		t.Errorf("cancelled run should be partial, got %d nodes", c.Nodes)
	}
}

func TestSearchTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now() //uts:ok detcheck measures real cancellation latency, not simulated time
	_, err := SearchSequentialCtx(ctx, &BenchLarge)
	if err == nil {
		t.Skip("machine fast enough to finish BenchLarge in 20ms?!")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("cancellation took %v, polling too coarse", el)
	}
}

func TestByName(t *testing.T) {
	if ByName("bench-small") == nil {
		t.Error("bench-small not found")
	}
	if ByName("T1paper") == nil {
		t.Error("paper trees should be resolvable by name")
	}
	if ByName("no-such-tree") != nil {
		t.Error("unknown name should return nil")
	}
}

func TestCountRate(t *testing.T) {
	c := Count{Nodes: 1000, Elapsed: time.Second}
	if c.Rate() != 1000 {
		t.Errorf("rate = %g", c.Rate())
	}
	if (Count{Nodes: 5}).Rate() != 0 {
		t.Error("zero elapsed should give zero rate")
	}
}

// TestGeometricKidsBounds property-checks that geometric child draws always
// land in [0, MaxChildren] for arbitrary states and depths.
func TestGeometricKidsBounds(t *testing.T) {
	sp := &GeoFixed
	st := sp.Stream()
	f := func(raw [rng.StateSize]byte, depth uint8) bool {
		n := Node{State: rng.State(raw), Height: int32(depth % 12), NumKids: -1}
		k := numChildren(sp, st, &n)
		return k >= 0 && k <= MaxChildren
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBinomialKidsZeroOrM property-checks the binomial rule: non-root nodes
// have exactly 0 or M children.
func TestBinomialKidsZeroOrM(t *testing.T) {
	sp := &BenchSmall
	st := sp.Stream()
	f := func(raw [rng.StateSize]byte) bool {
		n := Node{State: rng.State(raw), Height: 3, NumKids: -1}
		k := numChildren(sp, st, &n)
		return k == 0 || k == sp.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBinomialLeafFraction checks that the empirical leaf probability over
// non-root nodes approximates 1−Q.
func TestBinomialLeafFraction(t *testing.T) {
	sp := &BenchSmall
	c := SearchSequential(sp)
	// Root's B0 children are drawn with probability Q of having M kids, same
	// as everyone else; only the root itself is special.
	nonRoot := float64(c.Nodes - 1)
	leafFrac := float64(c.Leaves) / nonRoot
	wantLeaf := 1 - sp.Q
	if math.Abs(leafFrac-wantLeaf) > 0.02 {
		t.Errorf("leaf fraction %.4f, want ≈ %.4f", leafFrac, wantLeaf)
	}
}

func TestKindAndShapeStrings(t *testing.T) {
	if Binomial.String() != "binomial" || Geometric.String() != "geometric" ||
		Hybrid.String() != "hybrid" || Balanced.String() != "balanced" {
		t.Error("kind names wrong")
	}
	if ShapeFixed.String() != "fixed" || ShapeLinear.String() != "linear" ||
		ShapeExpDec.String() != "expdec" || ShapeCyclic.String() != "cyclic" {
		t.Error("shape names wrong")
	}
	if Kind(9).String() == "" || Shape(9).String() == "" {
		t.Error("out-of-range enums should still stringify")
	}
}

func TestSpecString(t *testing.T) {
	for _, sp := range SampleTrees {
		if sp.String() == "" {
			t.Errorf("%s: empty String()", sp.Name)
		}
	}
}

func BenchmarkSequentialBRG(b *testing.B) {
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		c := SearchSequential(&BenchTiny)
		nodes += c.Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
}

func BenchmarkSequentialALFG(b *testing.B) {
	sp := BenchTiny
	sp.RNG = "ALFG"
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		c := SearchSequential(&sp)
		nodes += c.Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
}

func TestGranularityOneIsDefault(t *testing.T) {
	a := BenchTiny
	a.Granularity = 1
	ca := SearchSequential(&a)
	cb := SearchSequential(&BenchTiny)
	if ca.Nodes != cb.Nodes || ca.Leaves != cb.Leaves {
		t.Errorf("granularity 1 changed the tree: %d vs %d nodes", ca.Nodes, cb.Nodes)
	}
}

func TestGranularityDefinesDifferentTree(t *testing.T) {
	g3 := BenchTiny
	g3.Granularity = 3
	a := SearchSequential(&g3)
	b := SearchSequential(&g3)
	if a.Nodes != b.Nodes {
		t.Error("granularity-3 tree not deterministic")
	}
	base := SearchSequential(&BenchTiny)
	if a.Nodes == base.Nodes {
		t.Log("granularity-3 tree happens to have the same size as base; acceptable but unlikely")
	}
	if a.Nodes < 2 {
		t.Errorf("granularity-3 tree degenerate: %d nodes", a.Nodes)
	}
}

func TestGranularityValidation(t *testing.T) {
	sp := BenchTiny
	sp.Granularity = -1
	if err := sp.Validate(); err == nil {
		t.Error("negative granularity accepted")
	}
	sp.Granularity = 4
	if err := sp.Validate(); err != nil {
		t.Errorf("granularity 4 rejected: %v", err)
	}
}

func TestRootSharesDominance(t *testing.T) {
	// The paper's imbalance claim: on a critical binomial tree, one root
	// subtree holds the overwhelming majority of the work.
	shares, total := RootShares(&BenchSmall)
	if len(shares) != BenchSmall.B0 {
		t.Fatalf("%d shares for %d root children", len(shares), BenchSmall.B0)
	}
	var sum int64 = 1
	for _, s := range shares {
		sum += s
	}
	if sum != total {
		t.Fatalf("shares sum to %d, total %d", sum, total)
	}
	if total != 63575 {
		t.Fatalf("total = %d, want the pinned count", total)
	}
	// At bench-small's extinction margin (ε = 5e-3) the dominance is less
	// extreme than the paper's 99.9% at ε = 1e-8, but the heavy tail must
	// be unmistakable: the top subtree holds a large constant fraction and
	// dwarfs the median one.
	top := float64(shares[0]) / float64(total)
	if top < 0.2 {
		t.Errorf("largest root subtree holds only %.1f%% of the tree; expected a heavy tail", 100*top)
	}
	median := shares[len(shares)/2]
	if shares[0] < 100*median {
		t.Errorf("top share %d not ≫ median share %d; distribution not heavy-tailed", shares[0], median)
	}
	// Shares are sorted descending.
	for i := 1; i < len(shares); i++ {
		if shares[i] > shares[i-1] {
			t.Fatal("shares not sorted")
		}
	}
}
