package uts

import (
	"math"

	"repro/internal/rng"
)

// Node is one tree node. It is self-describing: the RNG state plus the
// spec determine the node's children completely, so traversals keep nodes
// only while they sit on a depth-first stack — exactly the property that
// makes UTS cheap to steal (a stolen chunk is just an array of Node values,
// 24 bytes each).
type Node struct {
	State  rng.State
	Height int32 // depth below the root; the root has height 0
	// NumKids caches the child count, computed once when the node is
	// generated. −1 means "not yet computed".
	NumKids int32
}

// Root returns the root node of the tree described by sp.
func Root(sp *Spec) Node {
	st := sp.Stream()
	n := Node{State: st.Init(sp.Seed), Height: 0, NumKids: -1}
	n.NumKids = int32(numChildren(sp, st, &n))
	return n
}

// Children appends the children of n to dst and returns the extended slice.
// The append order is child index 0..k−1, so a depth-first traversal that
// pops from the end of dst explores the highest-index subtree first — any
// fixed convention is fine; this one matches pushing onto a LIFO stack.
//
// This is the traversal hot path: for the built-in stream families it runs
// entirely on concrete code (the batched SHA-1 spawn kernel for BRG, the
// inlinable concrete methods for ALFG) and performs no heap allocation
// beyond amortized growth of dst — in particular n never escapes, so
// callers can keep their current node in a stack variable. Third-party
// Stream implementations take a generic path that costs two short-lived
// allocations per expansion (state copies made so the interface calls
// cannot leak n).
func Children(sp *Spec, st rng.Stream, n *Node, dst []Node) []Node {
	k := int(n.NumKids)
	if k < 0 {
		k = numChildren(sp, st, n)
		n.NumKids = int32(k)
	}
	if k == 0 {
		return dst
	}
	g := sp.Granularity
	if g < 1 {
		g = 1
	}

	// Grow dst once up front (append's amortized policy, without append's
	// temporary for the added elements), then fill the new tail in place.
	base := len(dst)
	if total := base + k; total <= cap(dst) {
		dst = dst[:total]
	} else {
		grown := make([]Node, total, total+total/2)
		copy(grown, dst[:base])
		dst = grown
	}
	kids := dst[base:]
	h := n.Height + 1

	switch st.(type) {
	case rng.BRG:
		// Fast path: one Spawner hoists the parent-dependent prefix of the
		// SHA-1 block across all k·g spawns of this node.
		var z rng.Spawner
		z.Reset(&n.State)
		idx := 0
		for i := range kids {
			c := &kids[i]
			// Compute granularity (UTS -g): g spawns per child, the child
			// taking the state of the last one. The first g−1 evaluations
			// are the knob that scales per-node computation; they must run
			// in full, so they share c.State as a discard target.
			for j := 1; j < g; j++ {
				z.SpawnInto(&c.State, idx)
				idx++
			}
			z.SpawnInto(&c.State, idx)
			idx++
			c.Height = h
			c.NumKids = int32(childCount(sp, h, rng.StateRand(&c.State)))
		}
	case rng.ALFG:
		var a rng.ALFG
		idx := 0
		for i := range kids {
			c := &kids[i]
			for j := 1; j < g; j++ {
				a.SpawnInto(&c.State, &n.State, idx)
				idx++
			}
			a.SpawnInto(&c.State, &n.State, idx)
			idx++
			c.Height = h
			c.NumKids = int32(childCount(sp, h, rng.StateRand(&c.State)))
		}
	default:
		// Generic streams: work on copies so the interface calls leak the
		// copies, not n or the dst backing array.
		ps := n.State
		var tmp rng.State
		idx := 0
		for i := range kids {
			c := &kids[i]
			s := st.Spawn(&ps, idx)
			idx++
			for j := 1; j < g; j++ {
				s = st.Spawn(&ps, idx)
				idx++
			}
			tmp = s
			c.State = s
			c.Height = h
			c.NumKids = int32(childCount(sp, h, st.Rand(&tmp)))
		}
	}
	return dst
}

// numChildren computes the child count for a node under the spec.
func numChildren(sp *Spec, st rng.Stream, n *Node) int {
	switch st.(type) {
	case rng.BRG, rng.ALFG:
		// Both built-in families expose the node's draw in the trailing
		// state bytes; reading it directly keeps n on the caller's stack.
		return childCount(sp, n.Height, rng.StateRand(&n.State))
	}
	tmp := n.State
	return childCount(sp, n.Height, st.Rand(&tmp))
}

// childCount maps a node's height and 31-bit random draw to its child
// count under the spec. The draw is consulted only by the kinds that use
// one (binomial non-root, geometric, the hybrid mix of the two).
func childCount(sp *Spec, height, r int32) int {
	var k int
	switch sp.Kind {
	case Binomial:
		if height == 0 {
			k = sp.B0
		} else {
			k = binomialCount(sp, r)
		}
	case Geometric:
		k = geometricCount(sp, height, r)
	case Hybrid:
		cut := int32(sp.Shift * float64(sp.GenMx))
		if height < cut {
			k = geometricCount(sp, height, r)
		} else if height == 0 {
			k = sp.B0
		} else {
			k = binomialCount(sp, r)
		}
	case Balanced:
		if int(height) < sp.GenMx {
			k = sp.B0
		}
	}
	if k > MaxChildren && sp.Kind != Binomial {
		// Binomial B0/M are validated against the cap up front; geometric
		// draws are unbounded and must be clipped, as in the UTS sources.
		k = MaxChildren
	}
	return k
}

// binomialCount draws M with probability Q, else 0, by comparing the node's
// 31-bit random value against Q scaled to the RNG range.
func binomialCount(sp *Spec, r int32) int {
	if r < int32(sp.Q*float64(rng.RandMax)) {
		return sp.M
	}
	return 0
}

// geometricCount draws from a geometric distribution with mean geoBranch(d):
// with p = 1/(1+b), the count floor(log(u)/log(1−p)) has mean b. Depths at
// or below GenMx are leaves.
func geometricCount(sp *Spec, height, r int32) int {
	d := int(height)
	if d >= sp.GenMx {
		return 0
	}
	b := sp.geoBranch(d)
	if b < 1e-12 {
		return 0
	}
	p := 1 / (1 + b)
	u := float64(r) / float64(rng.RandMax)
	// Guard u == 0: log(0) is −Inf which would give a huge count before
	// the MaxChildren clip; treat it as the largest representable draw.
	if u <= 0 {
		return MaxChildren
	}
	k := int(math.Log(u) / math.Log(1-p))
	if k < 0 {
		k = 0
	}
	return k
}
