package uts

import (
	"math"

	"repro/internal/rng"
)

// Node is one tree node. It is self-describing: the RNG state plus the
// spec determine the node's children completely, so traversals keep nodes
// only while they sit on a depth-first stack — exactly the property that
// makes UTS cheap to steal (a stolen chunk is just an array of Node values,
// 24 bytes each).
type Node struct {
	State  rng.State
	Height int32 // depth below the root; the root has height 0
	// NumKids caches the child count, computed once when the node is
	// generated. −1 means "not yet computed".
	NumKids int32
}

// Root returns the root node of the tree described by sp.
func Root(sp *Spec) Node {
	st := sp.Stream()
	n := Node{State: st.Init(sp.Seed), Height: 0, NumKids: -1}
	n.NumKids = int32(numChildren(sp, st, &n))
	return n
}

// Children appends the children of n to dst and returns the extended slice.
// The append order is child index 0..k−1, so a depth-first traversal that
// pops from the end of dst explores the highest-index subtree first — any
// fixed convention is fine; this one matches pushing onto a LIFO stack.
func Children(sp *Spec, st rng.Stream, n *Node, dst []Node) []Node {
	k := int(n.NumKids)
	if k < 0 {
		k = numChildren(sp, st, n)
		n.NumKids = int32(k)
	}
	g := sp.Granularity
	if g < 1 {
		g = 1
	}
	for i := 0; i < k; i++ {
		// Compute granularity: g spawns per child, the child taking the
		// state of the last one (UTS -g). The first g−1 evaluations are
		// the knob that scales per-node computation.
		s := st.Spawn(&n.State, i*g)
		for j := 1; j < g; j++ {
			s = st.Spawn(&n.State, i*g+j)
		}
		c := Node{
			State:   s,
			Height:  n.Height + 1,
			NumKids: -1,
		}
		c.NumKids = int32(numChildren(sp, st, &c))
		dst = append(dst, c)
	}
	return dst
}

// numChildren computes the child count for a node under the spec.
func numChildren(sp *Spec, st rng.Stream, n *Node) int {
	var k int
	switch sp.Kind {
	case Binomial:
		if n.Height == 0 {
			k = sp.B0
		} else {
			k = binomialKids(sp, st, n)
		}
	case Geometric:
		k = geometricKids(sp, st, n)
	case Hybrid:
		cut := int32(sp.Shift * float64(sp.GenMx))
		if n.Height < cut {
			k = geometricKids(sp, st, n)
		} else if n.Height == 0 {
			k = sp.B0
		} else {
			k = binomialKids(sp, st, n)
		}
	case Balanced:
		if int(n.Height) < sp.GenMx {
			k = sp.B0
		}
	}
	if k > MaxChildren && sp.Kind != Binomial {
		// Binomial B0/M are validated against the cap up front; geometric
		// draws are unbounded and must be clipped, as in the UTS sources.
		k = MaxChildren
	}
	return k
}

// binomialKids draws M with probability Q, else 0, by comparing the node's
// 31-bit random value against Q scaled to the RNG range.
func binomialKids(sp *Spec, st rng.Stream, n *Node) int {
	if st.Rand(&n.State) < int32(sp.Q*float64(rng.RandMax)) {
		return sp.M
	}
	return 0
}

// geometricKids draws from a geometric distribution with mean geoBranch(d):
// with p = 1/(1+b), the count floor(log(u)/log(1−p)) has mean b. Depths at
// or below GenMx are leaves.
func geometricKids(sp *Spec, st rng.Stream, n *Node) int {
	d := int(n.Height)
	if d >= sp.GenMx {
		return 0
	}
	b := sp.geoBranch(d)
	if b < 1e-12 {
		return 0
	}
	p := 1 / (1 + b)
	u := float64(st.Rand(&n.State)) / float64(rng.RandMax)
	// Guard u == 0: log(0) is −Inf which would give a huge count before
	// the MaxChildren clip; treat it as the largest representable draw.
	if u <= 0 {
		return MaxChildren
	}
	k := int(math.Log(u) / math.Log(1-p))
	if k < 0 {
		k = 0
	}
	return k
}
