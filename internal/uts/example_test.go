package uts_test

import (
	"fmt"

	"repro/internal/uts"
)

// Counting a named sample tree sequentially: the ground truth every
// parallel implementation must reproduce exactly.
func ExampleSearchSequential() {
	c := uts.SearchSequential(&uts.BenchTiny)
	fmt.Println(c.Nodes, c.Leaves, c.MaxDepth)
	// Output: 3337 1698 100
}

// Defining a custom tree: a small subcritical binomial spec.
func ExampleSpec() {
	sp := uts.Spec{
		Name: "demo",
		Kind: uts.Binomial,
		Seed: 1,
		B0:   10,  // root fan-out
		M:    2,   // children of an interior node
		Q:    0.3, // probability an interior node has M children
	}
	if err := sp.Validate(); err != nil {
		fmt.Println(err)
		return
	}
	c := uts.SearchSequential(&sp)
	fmt.Println(c.Nodes)
	// Output: 21
}

// The heavy-tailed imbalance that motivates dynamic load balancing: the
// largest root subtree dwarfs the median one.
func ExampleRootShares() {
	shares, total := uts.RootShares(&uts.BenchTiny)
	fmt.Printf("children=%d total=%d top=%d median=%d\n",
		len(shares), total, shares[0], shares[len(shares)/2])
	// Output: children=60 total=3337 top=1585 median=3
}
