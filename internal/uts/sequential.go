package uts

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Count summarizes one complete traversal of a UTS tree. All parallel
// implementations in internal/core must reproduce Nodes and Leaves exactly;
// MaxDepth is schedule-independent as well.
type Count struct {
	Nodes    int64 // total nodes visited (including the root)
	Leaves   int64 // nodes with zero children
	MaxDepth int32 // maximum height observed
	Elapsed  time.Duration
}

// Rate returns the exploration rate in nodes per second.
func (c Count) Rate() float64 {
	if c.Elapsed <= 0 {
		return 0
	}
	return float64(c.Nodes) / c.Elapsed.Seconds()
}

// SearchSequential explores the whole tree depth-first on the calling
// goroutine and returns the exact node count. It is the correctness oracle
// and the denominator of every speedup number in this repository (the
// paper's Section 4.1 sequential baseline).
func SearchSequential(sp *Spec) Count {
	c, _ := SearchSequentialCtx(context.Background(), sp)
	return c
}

// seqStacks pools the DFS stacks of sequential traversals so repeated
// searches (tuning sweeps, benchmark iterations) run with zero steady-state
// allocations. Stacks that ballooned on a huge tree are dropped rather than
// pinned (see seqStackKeep).
var seqStacks = sync.Pool{New: func() any {
	s := make([]Node, 0, 4096)
	return &s
}}

// seqStackKeep is the largest stack capacity, in nodes, returned to the
// pool. Above it (≈7 MB of nodes) the memory is left to the GC.
const seqStackKeep = 1 << 18

// SearchSequentialCtx is SearchSequential with cooperative cancellation:
// the context is polled every few thousand nodes so that runaway trees
// (e.g. the full 157-billion-node paper tree) can be abandoned. The partial
// count accumulated so far is returned along with ctx.Err().
func SearchSequentialCtx(ctx context.Context, sp *Spec) (Count, error) {
	const pollEvery = 4096
	st := sp.Stream()
	start := time.Now() //uts:ok detcheck elapsed-time reporting only (Count.Elapsed); never feeds traversal order or results

	var c Count
	sp0 := seqStacks.Get().(*[]Node)
	stack := (*sp0)[:0]
	defer func() {
		if cap(stack) <= seqStackKeep {
			*sp0 = stack[:0]
			seqStacks.Put(sp0)
		}
	}()
	stack = append(stack, Root(sp))
	sincePoll := 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c.Nodes++
		if n.Height > c.MaxDepth {
			c.MaxDepth = n.Height
		}
		if n.NumKids == 0 {
			c.Leaves++
		} else {
			stack = Children(sp, st, &n, stack)
		}
		if sincePoll++; sincePoll >= pollEvery {
			sincePoll = 0
			if err := ctx.Err(); err != nil {
				c.Elapsed = time.Since(start)
				return c, err
			}
		}
	}
	c.Elapsed = time.Since(start)
	return c, nil
}

// RootShares returns the sizes of the subtrees under each root child,
// sorted descending, plus the total node count. It quantifies the
// imbalance claim of Section 4.1 ("over 99.9% of the work is contained in
// just one of the 2000 subtrees below the root"): on critical binomial
// trees the largest share dominates utterly, which is why static
// partitioning fails and chunk-level stealing succeeds.
func RootShares(sp *Spec) (shares []int64, total int64) {
	st := sp.Stream()
	root := Root(sp)
	total = 1
	kids := Children(sp, st, &root, nil)
	shares = make([]int64, 0, len(kids))
	stack := make([]Node, 0, 4096)
	for _, kid := range kids {
		var n int64
		stack = append(stack[:0], kid)
		for len(stack) > 0 {
			nd := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n++
			if nd.NumKids != 0 {
				stack = Children(sp, st, &nd, stack)
			}
		}
		shares = append(shares, n)
		total += n
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i] > shares[j] })
	return shares, total
}
