// Package uts implements the Unbalanced Tree Search benchmark tree: an
// implicitly defined random tree in which any subtree can be generated
// entirely from its parent's 20-byte RNG state. The package provides the
// tree-shape families of the UTS distribution (binomial, geometric, hybrid,
// balanced), node/child generation, and a sequential depth-first counter
// that serves as the ground truth for every parallel implementation in this
// repository.
//
// The paper's experiments use the binomial family: the root has b0 children
// and every other node has m children with probability q and none with
// probability 1−q. With m·q slightly below 1 the tree is a critical
// branching process — expected subtree size is identical at every node but
// the distribution has enormous variance, which is what makes UTS an
// adversarial load-balancing workload.
package uts

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Kind selects the tree-shape family.
type Kind int

const (
	// Binomial trees: root has B0 children; every other node has M children
	// with probability Q, none otherwise. The paper's family.
	Binomial Kind = iota
	// Geometric trees: the branching factor is drawn from a geometric
	// distribution whose mean depends on depth through Shape, and the tree
	// is truncated below depth GenMx.
	Geometric
	// Hybrid trees: geometric down to Shift·GenMx, binomial below.
	Hybrid
	// Balanced trees: every node above depth GenMx has exactly B0 children.
	// Deterministic; used by tests that need an exactly known structure.
	Balanced
)

// String names the kind as in the UTS command-line convention.
func (k Kind) String() string {
	switch k {
	case Binomial:
		return "binomial"
	case Geometric:
		return "geometric"
	case Hybrid:
		return "hybrid"
	case Balanced:
		return "balanced"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Shape selects how a geometric tree's expected branching factor varies
// with depth.
type Shape int

const (
	// ShapeFixed keeps the expected branching factor at B0 for all depths
	// above GenMx.
	ShapeFixed Shape = iota
	// ShapeLinear decreases the expected branching factor linearly with
	// depth, reaching zero at GenMx.
	ShapeLinear
	// ShapeExpDec decays the expected branching factor exponentially
	// with depth.
	ShapeExpDec
	// ShapeCyclic varies the expected branching factor sinusoidally with
	// period GenMx/5, producing alternating bushy and sparse bands.
	ShapeCyclic
)

// String names the shape function.
func (s Shape) String() string {
	switch s {
	case ShapeFixed:
		return "fixed"
	case ShapeLinear:
		return "linear"
	case ShapeExpDec:
		return "expdec"
	case ShapeCyclic:
		return "cyclic"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// MaxChildren caps the number of children of any node, as in the UTS
// sources; it bounds stack growth per visit.
const MaxChildren = 100

// Spec fully describes a UTS tree. A Spec plus the rng stream name pins the
// tree exactly: every traversal of the same Spec visits the same node set.
type Spec struct {
	Name string // human-readable label for reports

	Kind Kind
	// Seed is the root RNG seed (UTS -r).
	Seed int32
	// B0 is the root branching factor (UTS -b). For Geometric trees it is
	// the expected branching factor at the root.
	B0 int
	// M is the number of children of an interior non-root node in Binomial
	// and Hybrid trees (UTS -m).
	M int
	// Q is the probability that a non-root node of a Binomial tree has M
	// children (UTS -q). Critical trees have M·Q ≈ 1.
	Q float64
	// GenMx is the depth cutoff for Geometric/Hybrid/Balanced trees
	// (UTS -d).
	GenMx int
	// Shape selects the geometric branching-factor profile (UTS -a).
	Shape Shape
	// Shift is the fraction of GenMx at which a Hybrid tree switches from
	// geometric to binomial behaviour (UTS -f).
	Shift float64
	// Granularity is the compute granularity (UTS -g): the number of RNG
	// spawns performed per child generated. Values above 1 scale the
	// per-node work — the knob for studying how computation grain affects
	// load-balancing overheads. 0 means 1. Note that the granularity is
	// part of the tree definition: a child's state is the g-th spawn, so
	// trees with different granularities are different trees.
	Granularity int
	// RNG names the stream family: "BRG" (default) or "ALFG".
	RNG string
}

// Stream returns the rng stream for the spec, defaulting to BRG.
func (sp *Spec) Stream() rng.Stream {
	if sp.RNG == "" {
		return rng.BRG{}
	}
	s := rng.New(sp.RNG)
	if s == nil {
		return rng.BRG{}
	}
	return s
}

// Validate reports whether the spec describes a generable tree.
func (sp *Spec) Validate() error {
	if sp.B0 < 0 || sp.B0 > 1<<20 {
		return fmt.Errorf("uts: B0 %d out of range [0, 2^20]", sp.B0)
	}
	switch sp.Kind {
	case Binomial:
		if sp.M < 0 || sp.M > MaxChildren {
			return fmt.Errorf("uts: M %d out of range [0, %d]", sp.M, MaxChildren)
		}
		if sp.Q < 0 || sp.Q > 1 {
			return fmt.Errorf("uts: Q %g out of range [0,1]", sp.Q)
		}
		if float64(sp.M)*sp.Q >= 1 {
			return fmt.Errorf("uts: supercritical binomial tree (M*Q = %g >= 1) is almost surely infinite", float64(sp.M)*sp.Q)
		}
	case Geometric, Balanced:
		if sp.GenMx <= 0 {
			return errors.New("uts: geometric/balanced trees need GenMx > 0")
		}
	case Hybrid:
		if sp.GenMx <= 0 {
			return errors.New("uts: hybrid trees need GenMx > 0")
		}
		if sp.Shift < 0 || sp.Shift > 1 {
			return fmt.Errorf("uts: Shift %g out of range [0,1]", sp.Shift)
		}
		if sp.Q < 0 || sp.Q > 1 || float64(sp.M)*sp.Q >= 1 {
			return fmt.Errorf("uts: hybrid binomial phase supercritical (M*Q = %g)", float64(sp.M)*sp.Q)
		}
	default:
		return fmt.Errorf("uts: unknown kind %d", sp.Kind)
	}
	if sp.Granularity < 0 {
		return fmt.Errorf("uts: negative granularity %d", sp.Granularity)
	}
	if sp.RNG != "" && rng.New(sp.RNG) == nil {
		return fmt.Errorf("uts: unknown rng %q", sp.RNG)
	}
	return nil
}

// ExpectedSize estimates the expected number of nodes. For binomial trees
// this is exact in expectation: 1 + B0/(1−M·Q). For other kinds it is a
// rough guide only (the geometric estimate ignores the cap at MaxChildren).
func (sp *Spec) ExpectedSize() float64 {
	switch sp.Kind {
	case Binomial:
		eps := 1 - float64(sp.M)*sp.Q
		if eps <= 0 {
			return math.Inf(1)
		}
		return 1 + float64(sp.B0)/eps
	case Balanced:
		n := 1.0
		level := 1.0
		for d := 0; d < sp.GenMx; d++ {
			level *= float64(sp.B0)
			n += level
		}
		return n
	case Geometric:
		// Expected branching factor b per level gives a geometric series.
		n := 1.0
		level := 1.0
		for d := 0; d < sp.GenMx; d++ {
			level *= sp.geoBranch(d)
			n += level
			if level < 1e-9 {
				break
			}
		}
		return n
	case Hybrid:
		// Geometric phase estimate times expected binomial subtree size.
		cut := int(sp.Shift * float64(sp.GenMx))
		pre := *sp
		pre.Kind = Geometric
		pre.GenMx = cut
		eps := 1 - float64(sp.M)*sp.Q
		if eps <= 0 {
			return math.Inf(1)
		}
		return pre.ExpectedSize() / eps
	}
	return math.NaN()
}

// geoBranch is the expected branching factor of a geometric tree at depth d.
func (sp *Spec) geoBranch(d int) float64 {
	b0 := float64(sp.B0)
	switch sp.Shape {
	case ShapeFixed:
		return b0
	case ShapeLinear:
		f := 1 - float64(d)/float64(sp.GenMx)
		if f < 0 {
			f = 0
		}
		return b0 * f
	case ShapeExpDec:
		// Decay so the expected branching reaches 1 at GenMx.
		if b0 <= 1 {
			return b0
		}
		return b0 * math.Pow(b0, -float64(d)/float64(sp.GenMx))
	case ShapeCyclic:
		if d >= sp.GenMx {
			return 0
		}
		// Sinusoidal with period GenMx/5, floored at 0.1·B0 so that sparse
		// bands throttle growth without truncating the tree outright.
		return b0 * (0.55 + 0.45*math.Sin(2*math.Pi*float64(d)/float64(sp.GenMx)*5))
	}
	return b0
}

// String gives a compact UTS-style description of the spec.
func (sp *Spec) String() string {
	switch sp.Kind {
	case Binomial:
		return fmt.Sprintf("%s[binomial r=%d b0=%d m=%d q=%g rng=%s]",
			sp.Name, sp.Seed, sp.B0, sp.M, sp.Q, sp.Stream().Name())
	case Geometric:
		return fmt.Sprintf("%s[geometric r=%d b0=%d d=%d shape=%s rng=%s]",
			sp.Name, sp.Seed, sp.B0, sp.GenMx, sp.Shape, sp.Stream().Name())
	case Hybrid:
		return fmt.Sprintf("%s[hybrid r=%d b0=%d m=%d q=%g d=%d f=%g rng=%s]",
			sp.Name, sp.Seed, sp.B0, sp.M, sp.Q, sp.GenMx, sp.Shift, sp.Stream().Name())
	case Balanced:
		return fmt.Sprintf("%s[balanced b0=%d d=%d]", sp.Name, sp.B0, sp.GenMx)
	}
	return sp.Name
}
