package uts

// Named tree specifications.
//
// T1Paper and T2Paper are the exact parameter sets reported in Section 4 of
// the paper (footnotes 1 and 2). They generate roughly 10.6 billion and 157
// billion nodes respectively — hours of CPU on this hardware — and are
// included so the full experiment can be run where that budget exists.
//
// The Bench* family keeps the paper's structure (binomial, root fan-out
// B0 = 2000 or a scaled-down fan-out, M = 2, critical q = (1−ε)/2) while
// raising the extinction margin ε to bring expected sizes into the
// 10^4–10^7 range. Because the binomial family is self-similar, the
// subtree-size distribution at every node has the same shape at any ε;
// only the overall scale changes, so load-balancing behaviour is preserved.
//
// The Geo* and Hybrid* trees exercise the other UTS families; they are used
// by the cross-implementation correctness tests and the customtree example.
var (
	// T1Paper is the 10.6-billion-node tree of Section 4.1, footnote 1.
	T1Paper = Spec{Name: "T1paper", Kind: Binomial, Seed: 0, B0: 2000, M: 2,
		Q: 0.5 * (1 - 1e-8)}

	// T2Paper is the 157-billion-node tree of Section 4.2.2, footnote 2.
	T2Paper = Spec{Name: "T2paper", Kind: Binomial, Seed: 559, B0: 2000, M: 2,
		Q: 0.5 * (1 - 1e-6)}

	// BenchTiny: a few thousand nodes; unit tests.
	BenchTiny = Spec{Name: "bench-tiny", Kind: Binomial, Seed: 17, B0: 60, M: 2,
		Q: 0.5 * (1 - 5e-3)}

	// BenchSmall: expected ~40k nodes; integration tests.
	BenchSmall = Spec{Name: "bench-small", Kind: Binomial, Seed: 42, B0: 200, M: 2,
		Q: 0.5 * (1 - 5e-3)}

	// BenchMedium: expected ~500k nodes; local benchmarks.
	BenchMedium = Spec{Name: "bench-medium", Kind: Binomial, Seed: 7, B0: 500, M: 2,
		Q: 0.5 * (1 - 1e-3)}

	// BenchLarge: expected ~4M nodes; figure regeneration (the role the
	// 10.6B tree plays in the paper's Figure 4).
	BenchLarge = Spec{Name: "bench-large", Kind: Binomial, Seed: 0, B0: 2000, M: 2,
		Q: 0.5 * (1 - 5e-4)}

	// BenchHuge: tens of millions of nodes; ALFG-driven simulator runs
	// (the Figure 5 stand-in for the 157B tree).
	BenchHuge = Spec{Name: "bench-huge", Kind: Binomial, Seed: 559, B0: 2000, M: 2,
		Q: 0.5 * (1 - 1e-4), RNG: "ALFG"}

	// T3Small: expected ~10k nodes with the paper's T3 shape (binomial,
	// B0 = 200 fan-out); sized for differential engine tests where every
	// algorithm × seed combination must run in tier-1 time.
	T3Small = Spec{Name: "t3-small", Kind: Binomial, Seed: 31, B0: 200, M: 2,
		Q: 0.5 * (1 - 2e-2)}

	// T3XXL: expected ~5M nodes, ALFG-driven like the paper's runs; the
	// 1024-PE scale workload for the batched DES engine (the BENCH_PR3
	// wall-time target).
	T3XXL = Spec{Name: "t3-xxl", Kind: Binomial, Seed: 100, B0: 2000, M: 2,
		Q: 0.5 * (1 - 4e-4), RNG: "ALFG"}

	// GeoFixed is a small geometric tree with depth-independent branching.
	GeoFixed = Spec{Name: "geo-fixed", Kind: Geometric, Seed: 19, B0: 4,
		GenMx: 8, Shape: ShapeFixed}

	// GeoLinear mimics the UTS T1 shape: linearly decaying branching.
	GeoLinear = Spec{Name: "geo-linear", Kind: Geometric, Seed: 19, B0: 4,
		GenMx: 10, Shape: ShapeLinear}

	// GeoCyclic alternates bushy and sparse depth bands.
	GeoCyclic = Spec{Name: "geo-cyclic", Kind: Geometric, Seed: 2, B0: 4,
		GenMx: 20, Shape: ShapeCyclic}

	// HybridSmall switches from geometric to binomial at 30% of GenMx.
	HybridSmall = Spec{Name: "hybrid-small", Kind: Hybrid, Seed: 8, B0: 6,
		M: 2, Q: 0.49, GenMx: 10, Shift: 0.3}

	// Balanced3x7 is a deterministic 3-ary depth-7 tree with exactly
	// (3^8−1)/2 = 3280 nodes; used wherever tests need a known structure.
	Balanced3x7 = Spec{Name: "balanced-3x7", Kind: Balanced, B0: 3, GenMx: 7}
)

// SampleTrees lists every runnable named tree (the paper-scale trees are
// deliberately excluded) for use by CLIs and table-driven tests.
var SampleTrees = []*Spec{
	&BenchTiny, &BenchSmall, &BenchMedium, &BenchLarge, &BenchHuge,
	&T3Small, &T3XXL,
	&GeoFixed, &GeoLinear, &GeoCyclic, &HybridSmall, &Balanced3x7,
}

// ByName returns the named sample tree (including the paper-scale specs),
// or nil if the name is unknown.
func ByName(name string) *Spec {
	all := append([]*Spec{&T1Paper, &T2Paper}, SampleTrees...)
	for _, sp := range all {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}
