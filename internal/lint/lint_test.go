package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestGolden runs each analyzer over its testdata corpus and checks the
// findings against the // want expectations embedded in the sources.
// Every corpus contains at least one true positive and one justified
// //uts:ok suppression, so this test pins both directions: the rule
// fires, and the escape hatch works.
func TestGolden(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			for _, err := range RunGolden(a, dir) {
				t.Error(err)
			}
		})
	}
}

// TestMalformedSuppression checks that //uts:ok without a justification
// is itself a finding and silences nothing.
func TestMalformedSuppression(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(Detcheck, pkg)
	if err != nil {
		t.Fatal(err)
	}
	var sawBadComment, sawFinding bool
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a justification") {
			sawBadComment = true
		}
		if strings.Contains(d.Message, "time.Now") {
			sawFinding = true
		}
	}
	if !sawBadComment {
		t.Errorf("malformed //uts:ok was not reported; got %v", diags)
	}
	if !sawFinding {
		t.Errorf("malformed //uts:ok silenced the underlying finding; got %v", diags)
	}
}

// TestMalformedDirectives checks the directive-hygiene findings that
// cannot be expressed as // want goldens (a // want comment cannot
// share the line with the malformed directive it describes): a
// //uts:plain with no reason, empty and malformed //uts:orders
// directives, and a nameless //uts:mark.
func TestMalformedDirectives(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "directivebad"))
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	for _, a := range []*Analyzer{Atomiccheck, Ordercheck} {
		ds, err := Run(a, pkg)
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
	}
	for _, wantSub := range []string{
		"//uts:plain needs a justification",
		"plain write of atomic word g.top", // the reasonless //uts:plain silences nothing
		"empty //uts:orders directive",
		`malformed //uts:orders pair "ledger<"`,
		"//uts:mark needs a group name",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, wantSub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got %v", wantSub, diags)
		}
	}
}

// TestRepoClean is the acceptance gate: the full suite over the whole
// module must report zero findings. Real violations get fixed; accepted
// approximation gaps get an inline //uts:ok with a reason. This test is
// what `make lint` and CI run.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint needs go list -export; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, a := range All() {
			if !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			diags, err := Run(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
	}
}
