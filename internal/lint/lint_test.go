package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestGolden runs each analyzer over its testdata corpus and checks the
// findings against the // want expectations embedded in the sources.
// Every corpus contains at least one true positive and one justified
// //uts:ok suppression, so this test pins both directions: the rule
// fires, and the escape hatch works.
func TestGolden(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			for _, err := range RunGolden(a, dir) {
				t.Error(err)
			}
		})
	}
}

// TestMalformedSuppression checks that //uts:ok without a justification
// is itself a finding and silences nothing.
func TestMalformedSuppression(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(Detcheck, pkg)
	if err != nil {
		t.Fatal(err)
	}
	var sawBadComment, sawFinding bool
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a justification") {
			sawBadComment = true
		}
		if strings.Contains(d.Message, "time.Now") {
			sawFinding = true
		}
	}
	if !sawBadComment {
		t.Errorf("malformed //uts:ok was not reported; got %v", diags)
	}
	if !sawFinding {
		t.Errorf("malformed //uts:ok silenced the underlying finding; got %v", diags)
	}
}

// TestRepoClean is the acceptance gate: the full suite over the whole
// module must report zero findings. Real violations get fixed; accepted
// approximation gaps get an inline //uts:ok with a reason. This test is
// what `make lint` and CI run.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint needs go list -export; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, a := range All() {
			if !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			diags, err := Run(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
	}
}
