// Package lint is the repo's custom static-analysis suite: five
// analyzers that machine-check the invariants the paper's results stand
// on and that the Go type system cannot see.
//
//   - chargecheck: in internal/core, touching another PE's affinity
//     state (stacks, steal slots, response words) without first charging
//     the PGAS latency model silently corrupts every simulated-cost
//     figure. The paper's experiment *is* the cost accounting.
//   - detcheck: internal/des, internal/core, and internal/uts must stay
//     deterministic functions of (spec, algorithm, model, seed) —
//     byte-identical differential tests depend on it — so wall-clock
//     reads, global math/rand state, and map-order iteration are banned
//     there.
//   - noalloc: functions annotated //uts:noalloc (spawn kernel, DES
//     dispatch, obs record path, msg ring ops) are checked for
//     constructs that heap-allocate or box.
//   - retrycheck: in internal/cluster only RPC kinds declared in
//     idempotentKind may flow into the multi-attempt retry path, and
//     every Lock/Acquire is released on every exit path.
//   - obscheck: obs events are recorded with declared Kind* constants,
//     and the obs package's recording API stays nil-receiver-safe (a
//     nil tracer is the documented "tracing off" representation).
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Reportf, analysistest-style golden files)
// but is built on the standard library alone: the toolchain image this
// repo builds in carries no third-party modules. Analyzers match code
// by name and type structure (method names, field names, package
// suffixes) rather than by fully-qualified import paths, which keeps
// the golden-file test packages self-contained.
//
// # Suppressions
//
// A finding is silenced with an inline justification comment on the
// same line or the line above:
//
//	//uts:ok <analyzer> <reason>
//
// The reason is mandatory; an //uts:ok comment without one is itself
// reported. Suppressions are per-line and per-analyzer, so one cannot
// blanket-disable a rule. atomiccheck has a dedicated escape hatch,
//
//	//uts:plain <reason>
//
// for provably single-threaded init/reset regions; it follows the same
// line-coverage and mandatory-reason rules. The uts-vet driver's
// -unused-suppressions mode audits both forms against the raw findings
// and reports comments that no longer silence anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one lint rule set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //uts:ok
	// suppression comments.
	Name string
	// Doc is the one-line description shown by uts-vet -help.
	Doc string
	// Paths restricts which packages the multichecker applies the
	// analyzer to: a package is analyzed when its import path contains
	// any of the substrings. Empty means every package. Golden tests
	// bypass this gate and run the analyzer directly.
	Paths []string
	// Run reports findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the multichecker should run the analyzer on
// the package with the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Paths) == 0 {
		return true
	}
	for _, p := range a.Paths {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Run executes one analyzer over one package and returns its findings
// with //uts:ok suppressions applied, sorted by position. Malformed
// suppression comments (no justification) are reported as findings of
// the analyzer they tried to silence.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	sup, bad := suppressions(pkg.Fset, pkg.Files, a.Name)
	var out []Diagnostic
	for _, d := range pass.diags {
		if sup[lineKey{d.Pos.Filename, d.Pos.Line}] {
			continue
		}
		out = append(out, d)
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

type lineKey struct {
	file string
	line int
}

// A Suppression is one //uts:ok or //uts:plain comment: the analyzer it
// silences, the lines it covers (its own and the one below), and
// whether it carries the mandatory justification. The driver's
// -unused-suppressions audit diffs these against Unsuppressed findings.
type Suppression struct {
	Analyzer  string
	Pos       token.Position
	Lines     []int // line numbers covered, in Pos.Filename
	Justified bool
	Comment   string
}

// Covers reports whether the suppression's lines include the position.
func (s Suppression) Covers(pos token.Position) bool {
	if pos.Filename != s.Pos.Filename {
		return false
	}
	for _, l := range s.Lines {
		if l == pos.Line {
			return true
		}
	}
	return false
}

// badMessage is the finding text for a suppression missing its reason.
func (s Suppression) badMessage() string {
	if strings.HasPrefix(s.Comment, "//uts:plain") {
		return "//uts:plain needs a justification: //uts:plain <reason>"
	}
	return "//uts:ok " + s.Analyzer + " needs a justification: //uts:ok " + s.Analyzer + " <reason>"
}

// Suppressions lists every suppression comment in the files:
// //uts:ok <analyzer> <reason> for any analyzer, and
// //uts:plain <reason>, which is atomiccheck's single-threaded-region
// escape hatch.
func Suppressions(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				var s Suppression
				if text, ok := strings.CutPrefix(c.Text, "//uts:ok"); ok {
					fields := strings.Fields(text)
					if len(fields) == 0 {
						continue // no analyzer named: inert, matches nothing
					}
					s = Suppression{
						Analyzer:  fields[0],
						Pos:       pos,
						Justified: len(fields) >= 2,
						Comment:   c.Text,
					}
				} else if text, ok := strings.CutPrefix(c.Text, "//uts:plain"); ok {
					s = Suppression{
						Analyzer:  "atomiccheck",
						Pos:       pos,
						Justified: len(strings.Fields(text)) >= 1,
						Comment:   c.Text,
					}
				} else {
					continue
				}
				s.Lines = []int{pos.Line, pos.Line + 1}
				out = append(out, s)
			}
		}
	}
	return out
}

// suppressions collects the lines silenced for analyzer name, and
// reports malformed suppression comments (missing justification) as
// diagnostics. A comment suppresses its own line and, when it is the
// whole line (a comment-only line), the line below it.
func suppressions(fset *token.FileSet, files []*ast.File, name string) (map[lineKey]bool, []Diagnostic) {
	sup := make(map[lineKey]bool)
	var bad []Diagnostic
	for _, s := range Suppressions(fset, files) {
		if s.Analyzer != name {
			continue
		}
		if !s.Justified {
			bad = append(bad, Diagnostic{Analyzer: name, Pos: s.Pos, Message: s.badMessage()})
			continue
		}
		for _, l := range s.Lines {
			sup[lineKey{s.Pos.Filename, l}] = true
		}
	}
	return sup, bad
}

// Unsuppressed runs the analyzer over the package and returns the raw
// findings with no suppression filtering and no malformed-comment
// diagnostics added — the comparison side of the driver's
// -unused-suppressions audit.
func Unsuppressed(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	return pass.diags, nil
}

// Inspect walks every file of the pass in depth-first order, calling f
// for each node; f returning false prunes the subtree.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// --- shared type/AST helpers used by the analyzers ---

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// fieldOf resolves a selector to the struct field it names, or nil for
// method selections, package-qualified names, and untypeable code.
func (p *Pass) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.Info.Selections[sel]; ok {
		if s.Kind() != types.FieldVal {
			return nil
		}
		v, _ := s.Obj().(*types.Var)
		return v
	}
	if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// deref removes one level of pointer indirection.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedTypeName returns the name of e's (possibly pointer-wrapped) named
// type, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if n, ok := deref(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// methodCall reports the receiver type name and method name of a call
// expression like x.M(...), resolved through the type checker. It
// returns ok=false for non-method calls (including package-qualified
// function calls).
func (p *Pass) methodCall(call *ast.CallExpr) (recvType, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, isMethod := p.Info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return "", "", false
	}
	return namedTypeName(s.Recv()), s.Obj().Name(), true
}

// pkgFuncCall reports the package path and name of a package-level
// function call like pkg.F(...). ok=false for everything else.
func (p *Pass) pkgFuncCall(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", "", false
	}
	obj, isUse := p.Info.Uses[id].(*types.Func)
	if !isUse || obj.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := obj.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return "", "", false // method, not package-level function
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// recvIdent returns the receiver identifier of a function declaration,
// or nil for plain functions and anonymous receivers.
func recvIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// hasFuncComment reports whether the function's doc comment contains the
// given directive line (e.g. "//uts:noalloc").
func hasFuncComment(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directive ||
			strings.HasPrefix(strings.TrimSpace(c.Text), directive+" ") {
			return true
		}
	}
	return false
}

// exprString renders a (small) expression for matching and messages:
// identifiers, selectors, and indexes only, "" for anything else.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		base := exprString(e.X)
		idx := exprString(e.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	}
	return ""
}

// stmtList returns the statement list a node directly holds — the body
// of a block, switch case, or select comm clause — or nil. Dominance
// walks treat all three as block levels: a statement sequence where a
// prior sibling executes before a later one.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// pathTo returns the chain of AST nodes from the function body down to
// the node at pos (inclusive), or nil. It is the backbone of the
// lexical-dominance approximation shared by chargecheck and retrycheck.
func pathTo(root ast.Node, target ast.Node) []ast.Node {
	var path []ast.Node
	var found bool
	ast.Inspect(root, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		path = append(path, n)
		if n == target {
			found = true
			return false
		}
		// Keep descending; prune the tail when the subtree misses.
		return true
	})
	if !found {
		return nil
	}
	// path contains every node visited before target in DFS order, not
	// just ancestors: filter to nodes whose range encloses target.
	var chain []ast.Node
	tpos, tend := target.Pos(), target.End()
	for _, n := range path {
		if n.Pos() <= tpos && tend <= n.End() {
			chain = append(chain, n)
		}
	}
	return chain
}
