package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns with the go command (building export data as a
// side effect), then parses and type-checks every non-standard matched
// package. Imports — including intra-module ones — are satisfied from
// the compiler's export data, so packages can be checked independently
// and no source outside the matched set is parsed.
//
// This is the stdlib-only equivalent of golang.org/x/tools/go/packages
// LoadSyntax: the toolchain image carries no third-party modules, so
// the x/tools loader (and the analysis framework it feeds) cannot be
// vendored in.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	seen := make(map[string]bool)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || seen[p.ImportPath] || len(p.GoFiles) == 0 {
			continue
		}
		seen[p.ImportPath] = true
		pc := p
		targets = append(targets, &pc)
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// NewExportImporter returns a types.Importer that resolves every import
// through lookup, reading compiler ("gc") export data.
func NewExportImporter(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses and type-checks one package from explicit files.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil && len(typeErrs) > 0 {
		err = typeErrs[0]
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// LoadDir parses the single package rooted at dir (every .go file, no
// build-tag filtering) and type-checks it against export data for the
// standard library — the loader the golden-file analyzer tests use for
// testdata packages, which live outside the module's package graph.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	exports, err := stdExports(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: testdata may only import the standard library; no export data for %q", path)
		}
		return os.Open(f)
	})
	return checkPackage(fset, imp, filepath.Base(dir), dir, goFiles)
}

// stdExports returns export-data paths for the standard library,
// building them into the go cache on first use.
func stdExports(dir string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-json", "-export", "std")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list std failed: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
