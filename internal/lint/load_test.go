package lint

import "testing"

// TestLoadModulePackages exercises the export-data loader over real
// module packages, including one (core) that imports several others.
func TestLoadModulePackages(t *testing.T) {
	pkgs, err := Load("../..", "./internal/pgas", "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	for _, want := range []string{"repro/internal/pgas", "repro/internal/core"} {
		p, ok := byPath[want]
		if !ok {
			t.Fatalf("Load returned no package %s (got %d packages)", want, len(pkgs))
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Fatalf("%s loaded without types or files", want)
		}
	}
	core := byPath["repro/internal/core"]
	if core.Types.Scope().Lookup("Options") == nil {
		t.Fatal("core.Options not found in type-checked scope")
	}
}
