package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadModulePackages exercises the export-data loader over real
// module packages, including one (core) that imports several others.
func TestLoadModulePackages(t *testing.T) {
	pkgs, err := Load("../..", "./internal/pgas", "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	for _, want := range []string{"repro/internal/pgas", "repro/internal/core"} {
		p, ok := byPath[want]
		if !ok {
			t.Fatalf("Load returned no package %s (got %d packages)", want, len(pkgs))
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Fatalf("%s loaded without types or files", want)
		}
	}
	core := byPath["repro/internal/core"]
	if core.Types.Scope().Lookup("Options") == nil {
		t.Fatal("core.Options not found in type-checked scope")
	}
}

// writeTree lays out a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// wantErr asserts err is non-nil and mentions every substring — the
// loader's contract is not just failing but saying what failed.
func wantErr(t *testing.T, err error, subs ...string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected an error containing %q, got nil", subs)
	}
	for _, sub := range subs {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("error %q does not mention %q", err, sub)
		}
	}
}

// TestLoadGoListFailure: a pattern the go command cannot resolve must
// surface go list's own stderr, not a bare exit status.
func TestLoadGoListFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go command; skipped in -short")
	}
	dir := writeTree(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.22\n",
	})
	_, err := Load(dir, "./nosuchdir/...")
	wantErr(t, err, "lint: go list failed")
}

// TestLoadCompileErrorPackage: a package that does not type-check has
// no export data; the loader must name the failure instead of panicking
// or silently skipping the package.
func TestLoadCompileErrorPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go command; skipped in -short")
	}
	dir := writeTree(t, map[string]string{
		"go.mod":  "module tmp\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() { undefinedIdent() }\n",
	})
	_, err := Load(dir, "./...")
	wantErr(t, err, "lint:", "undefinedIdent")
}

// TestLoadDirParseError: a syntactically invalid file fails with the
// file named.
func TestLoadDirParseError(t *testing.T) {
	if testing.Short() {
		t.Skip("needs std export data; skipped in -short")
	}
	dir := writeTree(t, map[string]string{
		"bad.go": "package bad\n\nfunc oops( {\n",
	})
	_, err := LoadDir(dir)
	wantErr(t, err, "lint: parsing", "bad.go")
}

// TestLoadDirTypeError: a well-formed file that fails type-checking
// reports the real type error, not just "type-checking failed".
func TestLoadDirTypeError(t *testing.T) {
	if testing.Short() {
		t.Skip("needs std export data; skipped in -short")
	}
	dir := writeTree(t, map[string]string{
		"bad.go": "package bad\n\nvar x int = \"not an int\"\n",
	})
	_, err := LoadDir(dir)
	wantErr(t, err, "lint: type-checking")
}

// TestLoadDirMissingExportData: testdata packages may import only the
// standard library — anything else has no export data on the LoadDir
// path and must say so.
func TestLoadDirMissingExportData(t *testing.T) {
	if testing.Short() {
		t.Skip("needs std export data; skipped in -short")
	}
	dir := writeTree(t, map[string]string{
		"ext.go": "package ext\n\nimport _ \"example.com/not/vendored\"\n",
	})
	_, err := LoadDir(dir)
	wantErr(t, err, "no export data", "example.com/not/vendored")
}

// TestLoadDirEmpty: a directory with no Go files is an explicit error,
// not an empty package.
func TestLoadDirEmpty(t *testing.T) {
	dir := t.TempDir()
	_, err := LoadDir(dir)
	wantErr(t, err, "no .go files")
}
