package lint

// Intraprocedural control-flow layer: basic blocks over go/ast, a
// dominator tree, and a small forward-lattice dataflow solver. This is
// the flow-sensitive backbone the memory-ordering analyzers stand on —
// atomiccheck, ordercheck and hookcheck prove their disciplines on
// every path, not just the paths a stress test happens to schedule, and
// retrycheck's lock-pairing rule runs a lock-held lattice over the same
// graph instead of the old lexical-region heuristic.
//
// The construction is standard: one block per maximal straight-line
// statement run, explicit condition nodes (an if/for condition and each
// boolean switch-case expression is a node of the block that evaluates
// it), labeled edges carrying the condition and the branch outcome so
// guard-sensitive analyses (nil checks, idempotence guards) can refine
// facts along an edge. Returns, panics, and fall-through all flow into
// one synthetic exit block; `for {}` loops have no edge to it, so code
// holding a lock forever is not an unreleased-lock finding. Nested
// function literals are NOT traversed — each gets its own CFG; a
// statement's expression tree (which may syntactically contain a
// FuncLit) is a single node here.
//
// Dominators use the Cooper–Harvey–Kennedy iterative algorithm over a
// reverse postorder; the solver is a worklist fixpoint in the same
// order. Both operate only on blocks reachable from the entry:
// unreachable blocks keep their statements (builders park dead code in
// fresh predecessor-less blocks) but dominate nothing and are skipped
// by the solver.

import (
	"fmt"
	"go/ast"
	"go/token"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block // synthetic: every return/panic/fall-through flows here

	pos  map[ast.Node]stmtPos
	rpo  []*Block // reachable blocks, reverse postorder (Entry first)
	idom []*Block // immediate dominator per block index; nil = unreachable
}

// stmtPos locates a statement or condition node inside its block.
type stmtPos struct {
	b *Block
	i int
}

// A Block is one basic block: statements and condition expressions in
// execution order, with labeled edges to and from its neighbours.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge

	rpoNum int // position in rpo; -1 when unreachable
}

// ExitKind classifies how an edge into the exit block leaves the
// function.
type ExitKind uint8

const (
	// ExitNone marks an ordinary intra-function edge.
	ExitNone ExitKind = iota
	// ExitReturn is an explicit return statement.
	ExitReturn
	// ExitPanic is a call to the panic builtin.
	ExitPanic
	// ExitFall is the implicit fall-through off the end of the body.
	ExitFall
)

// An Edge connects two blocks. When the transfer is conditional, Cond
// holds the controlling expression and Branch its outcome along this
// edge — the hook a guard-sensitive analysis refines its facts on.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Branch   bool
	Kind     ExitKind
}

// BuildCFG constructs the graph of one function body (from a FuncDecl
// or FuncLit body). The body must be non-nil.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{c: &CFG{pos: make(map[ast.Node]stmtPos)}}
	b.c.Entry = b.newBlock()
	b.c.Exit = b.newBlock()
	b.cur = b.c.Entry
	b.stmt(body)
	if b.cur != nil {
		b.edgeKind(b.cur, b.c.Exit, ExitFall)
	}
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target, nil, false)
		}
	}
	b.c.computeOrder()
	b.c.computeDominators()
	return b.c
}

// PosOf reports the block and in-block index of a statement or
// condition node, if it was recorded during construction.
func (c *CFG) PosOf(n ast.Node) (*Block, int, bool) {
	p, ok := c.pos[n]
	if !ok {
		return nil, 0, false
	}
	return p.b, p.i, true
}

// Reachable reports whether b is reachable from the entry.
func (b *Block) Reachable() bool { return b.rpoNum >= 0 }

// RPO returns the reachable blocks in reverse postorder, entry first.
func (c *CFG) RPO() []*Block { return c.rpo }

// Dominates reports whether a dominates b (reflexively): every path
// from the entry to b passes through a. Unreachable blocks dominate
// nothing and are dominated by nothing.
func (c *CFG) Dominates(a, b *Block) bool {
	if !a.Reachable() || !b.Reachable() {
		return false
	}
	for d := b; d != nil; d = c.idom[d.Index] {
		if d == a {
			return true
		}
		if d == c.Entry {
			break
		}
	}
	return false
}

// NodeDominates reports whether statement (or condition) x executes
// before y on every path from the entry to y — strict dominance at
// statement granularity: same-block nodes order by position, distinct
// blocks by block dominance. x == y reports false.
func (c *CFG) NodeDominates(x, y ast.Node) bool {
	px, okx := c.pos[x]
	py, oky := c.pos[y]
	if !okx || !oky || x == y {
		return false
	}
	if px.b == py.b {
		return px.i < py.i
	}
	return c.Dominates(px.b, py.b)
}

// --- construction ---

type loopScope struct {
	label  string
	brk    *Block // break target (nil: scope breaks not allowed)
	cont   *Block // continue target (nil for switch/select)
	isLoop bool
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	c            *CFG
	cur          *Block // nil after a terminator: following code is dead
	scopes       []loopScope
	fallTargets  []*Block // fallthrough target stack (switch bodies)
	labels       map[string]*Block
	gotos        []pendingGoto
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.c.Blocks), rpoNum: -1}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

// block returns the current block, parking dead code after a terminator
// in a fresh unreachable block so its statements stay mapped.
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.block()
	b.c.pos[n] = stmtPos{blk, len(blk.Nodes)}
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, branch bool) {
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

func (b *cfgBuilder) edgeKind(from, to *Block, kind ExitKind) {
	e := &Edge{From: from, To: to, Kind: kind}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// takeLabel consumes the label a LabeledStmt recorded for the
// immediately following loop/switch/select statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.buildIf(s)
	case *ast.ForStmt:
		b.buildFor(s)
	case *ast.RangeStmt:
		b.buildRange(s)
	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, nil, s.Body, s)
	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, nil, s.Assign, s.Body, s)
	case *ast.SelectStmt:
		b.buildSelect(s)
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.block(), lb, nil, false)
		b.cur = lb
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edgeKind(b.cur, b.c.Exit, ExitReturn)
		b.cur = nil
	case *ast.BranchStmt:
		b.buildBranch(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.edgeKind(b.cur, b.c.Exit, ExitPanic)
				b.cur = nil
			}
		}
	case *ast.EmptyStmt:
	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Bad: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) buildIf(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock()
	b.edge(cond, then, s.Cond, true)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur
	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock()
		b.edge(cond, els, s.Cond, false)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	join := b.newBlock()
	if !hasElse {
		b.edge(cond, join, s.Cond, false)
	}
	if thenEnd != nil {
		b.edge(thenEnd, join, nil, false)
	}
	if elseEnd != nil {
		b.edge(elseEnd, join, nil, false)
	}
	b.cur = join
}

func (b *cfgBuilder) buildFor(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.edge(b.block(), head, nil, false)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	condEnd := b.cur // == head unless cond spawned blocks (it cannot)
	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		b.edge(condEnd, body, s.Cond, true)
		b.edge(condEnd, after, s.Cond, false)
	} else {
		b.edge(condEnd, body, nil, false)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.scopes = append(b.scopes, loopScope{label: label, brk: after, cont: cont, isLoop: true})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, cont, nil, false)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.edge(post, head, nil, false)
	}
	b.cur = after
}

func (b *cfgBuilder) buildRange(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.edge(b.block(), head, nil, false)
	b.cur = head
	b.add(s) // the per-iteration key/value binding and the range read
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body, nil, false)
	b.edge(head, after, nil, false)
	b.scopes = append(b.scopes, loopScope{label: label, brk: after, cont: head, isLoop: true})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, head, nil, false)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// buildSwitch handles expression and type switches. Boolean switches
// (no tag) are lowered into a test chain so each case body's entry edge
// carries its own condition — the form the nil-guard analyses consume.
func (b *cfgBuilder) buildSwitch(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, sw ast.Stmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	after := b.newBlock()

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	defaultIdx := -1
	for i, cc := range clauses {
		bodies[i] = b.newBlock()
		if len(cc.List) == 0 {
			defaultIdx = i
		}
	}

	// Test chain in evaluation order: source order, default last.
	test := b.block()
	for i, cc := range clauses {
		if i == defaultIdx {
			continue
		}
		var cond ast.Expr
		if tag == nil && len(cc.List) == 1 {
			cond = cc.List[0]
			b.c.pos[cond] = stmtPos{test, len(test.Nodes)}
			test.Nodes = append(test.Nodes, cond)
		}
		b.edge(test, bodies[i], cond, true)
		next := b.newBlock()
		b.edge(test, next, cond, false)
		test = next
	}
	if defaultIdx >= 0 {
		b.edge(test, bodies[defaultIdx], nil, false)
	} else {
		b.edge(test, after, nil, false)
	}

	b.scopes = append(b.scopes, loopScope{label: label, brk: after})
	for i, cc := range clauses {
		var fall *Block
		if i+1 < len(clauses) {
			fall = bodies[i+1]
		}
		b.fallTargets = append(b.fallTargets, fall)
		b.cur = bodies[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		if b.cur != nil {
			b.edge(b.cur, after, nil, false)
		}
		b.fallTargets = b.fallTargets[:len(b.fallTargets)-1]
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *cfgBuilder) buildSelect(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.block()
	after := b.newBlock()
	b.scopes = append(b.scopes, loopScope{label: label, brk: after})
	any := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		b.edge(head, blk, nil, false)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		if b.cur != nil {
			b.edge(b.cur, after, nil, false)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	if !any {
		// select {} blocks forever: no edge to after.
		b.cur = nil
		_ = after
		return
	}
	b.cur = after
}

func (b *cfgBuilder) buildBranch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if sc.brk != nil && (label == "" || sc.label == label) {
				b.edge(b.block(), sc.brk, nil, false)
				b.cur = nil
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if sc.isLoop && sc.cont != nil && (label == "" || sc.label == label) {
				b.edge(b.block(), sc.cont, nil, false)
				b.cur = nil
				return
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.block(), label: label})
		b.cur = nil
		return
	case token.FALLTHROUGH:
		if n := len(b.fallTargets); n > 0 && b.fallTargets[n-1] != nil {
			b.edge(b.block(), b.fallTargets[n-1], nil, false)
		}
		b.cur = nil
		return
	}
	// Unresolvable break/continue (malformed source): terminate the block.
	b.cur = nil
}

// --- reverse postorder and dominators ---

func (c *CFG) computeOrder() {
	seen := make([]bool, len(c.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, e := range b.Succs {
			if !seen[e.To.Index] {
				dfs(e.To)
			}
		}
		post = append(post, b)
	}
	dfs(c.Entry)
	c.rpo = make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		post[i].rpoNum = len(c.rpo)
		c.rpo = append(c.rpo, post[i])
	}
}

// computeDominators is the Cooper–Harvey–Kennedy iterative algorithm.
func (c *CFG) computeDominators() {
	c.idom = make([]*Block, len(c.Blocks))
	c.idom[c.Entry.Index] = c.Entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for a.rpoNum > b.rpoNum {
				a = c.idom[a.Index]
			}
			for b.rpoNum > a.rpoNum {
				b = c.idom[b.Index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range c.rpo[1:] {
			var nd *Block
			for _, e := range b.Preds {
				p := e.From
				if !p.Reachable() || c.idom[p.Index] == nil {
					continue
				}
				if nd == nil {
					nd = p
				} else {
					nd = intersect(nd, p)
				}
			}
			if nd != nil && c.idom[b.Index] != nd {
				c.idom[b.Index] = nd
				changed = true
			}
		}
	}
	c.idom[c.Entry.Index] = nil // entry has no strict dominator; Dominates special-cases it
}

// --- forward dataflow solver ---

// A FlowAnalysis is one forward dataflow problem over a CFG. Facts are
// analysis-defined values; nil is reserved by the solver for "not yet
// computed" and is never passed to Transfer, FlowEdge, Meet, or Equal.
type FlowAnalysis interface {
	// Boundary is the fact at the function entry.
	Boundary() any
	// Transfer flows a fact through a block's statements.
	Transfer(b *Block, in any) any
	// FlowEdge refines a block's out-fact along one outgoing edge —
	// where condition outcomes (Edge.Cond/Branch) sharpen the fact.
	FlowEdge(e *Edge, out any) any
	// Meet combines the facts arriving over two edges.
	Meet(a, b any) any
	// Equal reports whether two facts are the same (fixpoint test).
	Equal(a, b any) bool
}

// Solve runs the analysis to fixpoint and returns the in-fact of every
// reachable block (unreachable blocks map to nil). Iteration is in
// reverse postorder, bounded defensively against non-monotone lattices.
func (c *CFG) Solve(fa FlowAnalysis) map[*Block]any {
	in := make(map[*Block]any, len(c.rpo))
	out := make(map[*Block]any, len(c.rpo))
	in[c.Entry] = fa.Boundary()
	out[c.Entry] = fa.Transfer(c.Entry, in[c.Entry])
	maxIter := 4*len(c.rpo) + 8
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for _, b := range c.rpo {
			if b == c.Entry {
				continue
			}
			var acc any
			for _, e := range b.Preds {
				po, ok := out[e.From]
				if !ok || po == nil {
					continue
				}
				f := fa.FlowEdge(e, po)
				if acc == nil {
					acc = f
				} else {
					acc = fa.Meet(acc, f)
				}
			}
			if acc == nil {
				continue // no computed predecessor yet
			}
			if prev, ok := in[b]; !ok || !fa.Equal(prev, acc) {
				in[b] = acc
				out[b] = fa.Transfer(b, acc)
				changed = true
			}
		}
		if !changed {
			return in
		}
	}
	// Non-monotone analysis: fail loudly in tests, return best effort.
	panic(fmt.Sprintf("lint: dataflow did not converge in %d iterations", maxIter))
}
