// Package atomicdata is the atomiccheck golden corpus: a miniature of
// the fence-free ring and seqlock access patterns, with every flavour
// of plain/atomic mixing the analyzer must catch.
package atomicdata

import "sync/atomic"

type worker struct {
	top    int64    // word mode: its address flows into sync/atomic
	buf    []uint64 // element mode: seqlock ring, &buf[i] into sync/atomic
	shadow int64    // owner-private mirror, never atomic: untracked
	flag   atomic.Bool
	led    atomic.Pointer[worker]
	state  [4]atomic.Int32
	dead   []atomic.Bool
}

func (w *worker) publish(v int64) {
	atomic.StoreInt64(&w.top, v)
}

func (w *worker) load() int64 {
	return atomic.LoadInt64(&w.top)
}

func (w *worker) badPlainRead() bool {
	return w.top > 0 // want "plain read of atomic word w.top"
}

func (w *worker) badPlainWrite() {
	w.top = 0 // want "plain write of atomic word w.top"
}

func (w *worker) badEscape() *int64 {
	return &w.top // want "address of atomic word w.top"
}

// okShadow: the plain mirror never mixes with atomics.
func (w *worker) okShadow() int64 {
	w.shadow++
	return w.shadow
}

// okPlainReset is a constructor-style single-threaded region.
func (w *worker) okPlainReset() {
	w.top = 0 //uts:plain the worker is not published to any thief yet
}

// okSuppressed carries a reviewed //uts:ok.
func (w *worker) okSuppressed() int64 {
	return w.top //uts:ok atomiccheck owner-side read after quiescence barrier
}

// record is the seqlock write bracket: all element accesses atomic,
// including through the local alias.
func (w *worker) record(seq, a uint64) {
	b := w.buf
	i := int(seq) % (len(b) - 1)
	atomic.StoreUint64(&b[i], seq|1)
	atomic.StoreUint64(&b[i+1], a)
	atomic.StoreUint64(&b[i], seq+2)
}

func (w *worker) badPlainElem(i int) uint64 {
	return w.buf[i] // want "plain element read"
}

func (w *worker) badAliasElem(i int) {
	b := w.buf
	b[i] = 7 // want "plain element write"
}

func (w *worker) badRangeValues() uint64 {
	var s uint64
	for _, v := range w.buf { // want "ranging over the values"
		s += v
	}
	return s
}

// okHeader: slice-header uses carry no element access.
func (w *worker) okHeader(n int) int {
	w.buf = make([]uint64, n)
	return len(w.buf)
}

// Typed atomics: methods and address-taking are fine, copies are not.
func (w *worker) okTyped() bool {
	w.flag.Store(true)
	w.led.Store(w)
	return w.flag.Load() && w.state[1].Load() > 0
}

func (w *worker) badTypedCopy() atomic.Bool {
	return w.flag // want "copied or used plainly"
}

func (w *worker) badTypedElemCopy() int32 {
	s := w.state[0] // want "element of array of typed atomic values"
	return s.Load()
}

func (w *worker) badArrayCopy() [4]atomic.Int32 {
	return w.state // want "copying array of typed atomic values"
}

// okTypedSlice: whole-slice make/len are header uses.
func (w *worker) okTypedSlice(n int) int {
	w.dead = make([]atomic.Bool, n)
	w.dead[0].Store(false)
	return len(w.dead)
}
