// Package noalloc is the noalloc golden corpus: every flagged
// construct class, the panic exemption, a justified suppression, and
// an unannotated function that allocates freely.
package noalloc

import "fmt"

type ring struct {
	buf []int
}

//uts:noalloc
func badNew() *int {
	return new(int) // want "new allocates"
}

//uts:noalloc
func badMake(n int) []int {
	s := make([]int, n) // want "make allocates"
	return s
}

//uts:noalloc
func badAppend(s []int, v int) []int {
	return append(s, v) // want "append may grow the backing array"
}

//uts:noalloc
func badSliceLit() []int {
	return []int{1, 2, 3} // want "slice literal allocates"
}

//uts:noalloc
func badEscape() *ring {
	return &ring{} // want "composite literal escapes"
}

//uts:noalloc
func badBox(v int) any {
	return v // want "boxed into interface"
}

//uts:noalloc
func badClosure(v int) func() int {
	return func() int { return v } // want "function literal may allocate"
}

//uts:noalloc
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//uts:noalloc
func badBytes(s string) []byte {
	return []byte(s) // want "conversion copies and allocates"
}

func sink(vs ...int) {}

//uts:noalloc
func badVariadic() {
	sink(1, 2) // want "variadic parameter"
}

//uts:noalloc
func badGo(f func()) {
	go f() // want "go statement allocates"
}

// okPanic: constructs inside a panic argument are off the measured
// path and exempt.
//
//uts:noalloc
func okPanic(v int) int {
	if v < 0 {
		panic(fmt.Sprintf("negative %d", v))
	}
	return v
}

// push appends into a backing array recycled across runs; the cap check
// above the append keeps it allocation-free in steady state.
//
//uts:noalloc
func (r *ring) push(v int) bool {
	if len(r.buf) == cap(r.buf) {
		return false
	}
	r.buf = append(r.buf, v) //uts:ok noalloc cap checked above, append never grows the recycled backing array
	return true
}

// unannotated functions allocate freely.
func unannotated(n int) []int {
	return make([]int, n)
}
