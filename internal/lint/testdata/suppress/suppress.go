// Package suppress holds the malformed-suppression case: an //uts:ok
// with no justification must itself be reported, and must not silence
// the finding it points at.
package suppress

import "time"

func stamp() time.Time {
	//uts:ok detcheck
	return time.Now()
}
