// Package orderdata is the ordercheck golden corpus: declared
// publish-order invariants over miniature fence-free publish and
// seqlock write brackets.
package orderdata

import "sync/atomic"

type ring struct {
	buf  []uint64
	n    []int32
	slot atomic.Uint64
	seq  uint64
}

// publish is the correct fence-free shape: ledger strictly before the
// publishing store, on every path.
//
//uts:orders ledger<slot
func (r *ring) publish(i int, v uint64) {
	r.n[i] = 1 //uts:mark ledger
	r.slot.Store(v)
}

// badReorder publishes before the ledger write.
//
//uts:orders ledger<slot
func (r *ring) badReorder(i int, v uint64) {
	r.slot.Store(v) // want "publish-order invariant ledger<slot violated"
	r.n[i] = 1      //uts:mark ledger
}

// badConditional guards the ledger write, so it no longer dominates
// the publish.
//
//uts:orders ledger<slot
func (r *ring) badConditional(i int, v uint64, deep bool) {
	if deep {
		r.n[i] = 1 //uts:mark ledger
	}
	r.slot.Store(v) // want "does not precede this slot write on every path"
}

// record is a correct seqlock bracket: invalidate, payload, publish.
//
//uts:orders invalidate<payload payload<publish
func (r *ring) record(i int, a, b uint64) {
	atomic.StoreUint64(&r.buf[i], r.seq|1) //uts:mark invalidate
	atomic.StoreUint64(&r.buf[i+1], a)     //uts:mark payload
	atomic.StoreUint64(&r.buf[i+2], b)     //uts:mark payload
	atomic.StoreUint64(&r.buf[i], r.seq+2) //uts:mark publish
	r.seq += 2
}

// badBracket publishes the even sequence before the last payload word.
//
//uts:orders payload<publish
func (r *ring) badBracket(i int, a, b uint64) {
	atomic.StoreUint64(&r.buf[i+1], a)     //uts:mark payload
	atomic.StoreUint64(&r.buf[i], r.seq+2) //uts:mark publish // want "publish-order invariant payload<publish violated"
	atomic.StoreUint64(&r.buf[i+2], b)     //uts:mark payload
}

// badStale declares a group no statement carries anymore.
//
//uts:orders ledger<gone
func (r *ring) badStale(i int, v uint64) { // want "matches no statement"
	r.n[i] = 1 //uts:mark ledger
	r.slot.Store(v)
}

// okFieldNames needs no marks: the unmarked fallback groups stores by
// the innermost field name they target.
//
//uts:orders seq<slot
func (r *ring) okFieldNames(v uint64) {
	r.seq++
	r.slot.Store(v)
}

// okSuppressed carries a reviewed //uts:ok for a documented exception.
//
//uts:orders ledger<slot
func (r *ring) okSuppressed(i int, v uint64) {
	r.slot.Store(v) //uts:ok ordercheck corpus exception: reorder is documented and benign here
	r.n[i] = 1      //uts:mark ledger
}
