// Package det is the detcheck golden corpus: wall-clock reads, global
// math/rand state, and map-order iteration, next to the allowed forms
// (seeded generators, stats wall timers, slice iteration).
package det

import (
	"math/rand"
	"sort"
	"time"
)

// Thread mirrors the stats wall-timer sink whose arguments are exempt.
type Thread struct{ last time.Time }

func (t *Thread) Switch(now time.Time)      { t.last = now }
func (t *Thread) StartTimers(now time.Time) { t.last = now }

func badNow() time.Time {
	return time.Now() // want "time.Now in a deterministic package"
}

func badRand() int {
	return rand.Intn(10) // want "global math/rand state"
}

func okSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func okTimer(t *Thread) {
	t.Switch(time.Now()) // wall timer sink: reporting only, never steers scheduling
}

func badMapRange(m map[int]int) int {
	s := 0
	for k := range m { // want "map iteration order is randomized"
		s += k
	}
	return s
}

func okSortedRange(m map[int]int) int {
	keys := make([]int, 0, len(m))
	for k := range m { //uts:ok detcheck keys are sorted before results are read
		keys = append(keys, k)
	}
	sort.Ints(keys)
	s := 0
	for _, k := range keys {
		s += m[k]
	}
	return s
}
