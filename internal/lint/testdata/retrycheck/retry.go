// Package retry is the retrycheck golden corpus: a miniature of the
// cluster transport's retry machinery (idempotentKind declaration,
// request literals, the attempt method, guarded budgets) plus the lock
// pairing patterns.
package retry

import "sync"

type kind uint8

const (
	kindGetAvail kind = iota
	kindStats
	kindPut
	kindCAS
)

// idempotentKind declares which RPC kinds may be retried.
func idempotentKind(k kind) bool {
	switch k {
	case kindGetAvail, kindStats:
		return true
	}
	return false
}

type request struct {
	Kind kind
	Seq  uint64
}

type response struct{ OK bool }

type node struct {
	mu      sync.Mutex
	retries int
}

func (n *node) attempt(rank int, req *request, attempts int) (*response, error) {
	return nil, nil
}

// okProbe retries a declared-idempotent request.
func (n *node) okProbe() {
	probe := request{Kind: kindGetAvail}
	_, _ = n.attempt(1, &probe, 1+n.retries)
}

// okSingle sends a non-idempotent request exactly once.
func (n *node) okSingle() {
	r := request{Kind: kindCAS}
	_, _ = n.attempt(1, &r, 1)
}

// badRetry retries a mutation that is not declared idempotent.
func (n *node) badRetry() {
	r := request{Kind: kindPut}
	_, _ = n.attempt(1, &r, 1+n.retries) // want "not in the declared idempotent set"
}

// okGuarded raises the attempt budget only under an idempotentKind
// guard — the transport's own call() pattern.
func (n *node) okGuarded(req *request) {
	attempts := 1
	if idempotentKind(req.Kind) {
		attempts += n.retries
	}
	_, _ = n.attempt(1, req, attempts)
}

// badUnproven feeds a request of unknowable kind into the retry path.
func (n *node) badUnproven(req *request, budget int) {
	_, _ = n.attempt(1, req, budget) // want "cannot prove"
}

// okDefer pairs the lock with an immediate defer.
func (n *node) okDefer() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.retries++
}

// okStraight releases on the straight-line path.
func (n *node) okStraight() {
	n.mu.Lock()
	n.retries++
	n.mu.Unlock()
}

// badEarlyReturn leaks the lock on the early exit.
func (n *node) badEarlyReturn(v int) int {
	n.mu.Lock()
	if v < 0 {
		return -1 // want "may leave n.mu held"
	}
	n.mu.Unlock()
	return v
}

// okSwitchCase pairs lock and unlock inside one switch case; the
// unrelated return in the default clause is outside the lock's region.
func (n *node) okSwitchCase(k kind) bool {
	switch k {
	case kindPut:
		n.mu.Lock()
		n.retries++
		n.mu.Unlock()
	default:
		return false
	}
	return true
}

// okBothArms releases on each arm — invisible to the old lexical rule,
// proven by the CFG lattice.
func (n *node) okBothArms(deep bool) {
	n.mu.Lock()
	if deep {
		n.retries++
		n.mu.Unlock()
	} else {
		n.mu.Unlock()
	}
}

// badOneArm releases on only one arm.
func (n *node) badOneArm(deep bool) {
	n.mu.Lock() // want "not released on the path falling out"
	if deep {
		n.mu.Unlock()
	}
}

// okLoopBody pairs the lock inside each iteration.
func (n *node) okLoopBody(k int) {
	for i := 0; i < k; i++ {
		n.mu.Lock()
		n.retries++
		n.mu.Unlock()
	}
}

// okInfinite holds the lock into a loop that never exits: there is no
// exit path to leak on.
func (n *node) okInfinite() {
	n.mu.Lock()
	for {
		n.retries++
	}
}

// okPanicExit: panicking with the lock held is not a leak finding —
// the runtime unwinds, and the CFG routes panic edges past the check.
func (n *node) okPanicExit(v int) {
	n.mu.Lock()
	if v < 0 {
		panic("negative")
	}
	n.retries = v
	n.mu.Unlock()
}

// transferOwned hands the held lock to its caller by contract; the
// release lives in finishTransfer.
func (n *node) transferOwned() {
	n.mu.Lock() //uts:ok retrycheck ownership transfers to the caller, released in finishTransfer
	n.retries++
}

func (n *node) finishTransfer() {
	n.retries = 0
	n.mu.Unlock()
}
