// Package hookdata is the hookcheck golden corpus: calls through the
// adaptive-policy controller and On*/on* callback fields, guarded and
// unguarded, across the guard shapes the real tree uses (direct if,
// early return, boolean switch with short-circuit, local copies).
package hookdata

// Controller mirrors the policy controller: methods are deliberately
// not nil-receiver-safe.
type Controller struct{ n int }

func (c *Controller) Chunk() int    { c.n++; return c.n }
func (c *Controller) NodeSize() int { return c.n }

type sample struct{ v int }

type worker struct {
	ctl      *Controller
	onSample func(sample)
	quota    int
}

// okGuardedIf calls under a direct guard.
func (w *worker) okGuardedIf() {
	if w.ctl != nil {
		w.quota = w.ctl.Chunk()
	}
}

// okEarlyReturn guards with an early return.
func (w *worker) okEarlyReturn() int {
	if w.ctl == nil {
		return 0
	}
	return w.ctl.Chunk()
}

// badUnguarded has no check at all.
func (w *worker) badUnguarded() int {
	return w.ctl.Chunk() // want "not dominated by a nil check of w.ctl"
}

// badWrongBranch calls on the nil branch.
func (w *worker) badWrongBranch() int {
	if w.ctl == nil {
		return w.ctl.Chunk() // want "not dominated by a nil check"
	}
	return 0
}

// okSwitchGuard is the des/dist shape: a boolean switch case whose
// condition both guards and uses the hook via short-circuit.
func (w *worker) okSwitchGuard(n int) int {
	switch {
	case w.ctl != nil && w.ctl.NodeSize() > 1:
		return w.ctl.Chunk()
	default:
		return n
	}
}

// okLocalCopy is the sampler shape: copy the hook, check the copy.
func (w *worker) okLocalCopy(s sample) {
	fn := w.onSample
	if fn != nil {
		fn(s)
	}
}

// badLocalCopy calls the copy unchecked.
func (w *worker) badLocalCopy(s sample) {
	fn := w.onSample
	fn(s) // want "not dominated by a nil check of fn"
}

// badFieldCall calls the field with no check.
func (w *worker) badFieldCall(s sample) {
	w.onSample(s) // want "call through hook field w.onSample"
}

// okFieldGuard checks the field directly.
func (w *worker) okFieldGuard(s sample) {
	if w.onSample != nil {
		w.onSample(s)
	}
}

// badKilledGuard invalidates the guard by reassigning the receiver.
func (w *worker) badKilledGuard(other *worker) int {
	if w.ctl != nil {
		w = other
		return w.ctl.Chunk() // want "not dominated by a nil check"
	}
	return 0
}

// okTransferred moves the guarded fact through a copy.
func (w *worker) okTransferred() int {
	if w.ctl == nil {
		return 0
	}
	ctl := w.ctl
	return ctl.Chunk()
}

// badClosure: outer guards do not carry into a closure — the hook can
// be swapped between the guard and the deferred call.
func (w *worker) badClosure() func() int {
	if w.ctl == nil {
		return nil
	}
	return func() int {
		return w.ctl.Chunk() // want "not dominated by a nil check"
	}
}

// okValue calls on an addressable value, which cannot be nil.
func okValue() int {
	var c Controller
	return c.Chunk()
}

// okSuppressed documents an invariant the analysis cannot see.
func (w *worker) okSuppressed() int {
	return w.ctl.Chunk() //uts:ok hookcheck the constructor sets ctl unconditionally on this path
}
