// Package directivebad exercises the malformed-directive findings that
// cannot share a line with a // want comment: a //uts:plain without a
// reason, empty and malformed //uts:orders directives, and a nameless
// //uts:mark. The checks are programmatic (TestMalformedDirectives).
package directivebad

import "sync/atomic"

type gauge struct {
	top int64
	n   []int32
	w   atomic.Uint64
}

func (g *gauge) bump() {
	atomic.AddInt64(&g.top, 1)
}

// badPlain annotates a plain write with no reason: the directive is a
// finding and the underlying plain-access finding still fires.
func (g *gauge) badPlain() {
	g.top = 0 //uts:plain
}

// badEmptyOrders declares nothing.
//
//uts:orders
func (g *gauge) badEmptyOrders(i int) {
	g.n[i] = 1
	g.w.Store(1)
}

// badPair declares a pair with no right-hand side.
//
//uts:orders ledger<
func (g *gauge) badPair(i int) {
	g.n[i] = 1 //uts:mark ledger
	g.w.Store(1)
}

// badMark carries a nameless mark; the pair itself holds via the
// field-name fallback, so the only finding is the mark's.
//
//uts:orders n<w
func (g *gauge) badMark(i int) {
	g.n[i] = 1 //uts:mark
	g.w.Store(1)
}
