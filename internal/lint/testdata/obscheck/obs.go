// Package obs is the obscheck golden corpus: a miniature of the
// tracing layer's Lane/Tracer API with the Kind vocabulary, the
// nil-receiver contract, one violation of each rule, and a justified
// suppression.
package obs

type Kind uint8

const (
	KindSpawn Kind = iota
	KindSteal
)

// rawKind is deliberately mis-named: a declared constant whose name
// does not start with Kind falls outside the exporters' taxonomy.
const rawKind Kind = 7

const numKinds = 3

// kindNames is one entry short: index 2 zero-fills to "", so Kind(2)
// would stringify to the fallback form and fork the exporters' names.
var kindNames = [numKinds]string{"spawn", "steal"} // want "kindNames entry 2 is missing or empty"

type Lane struct {
	n int
}

// Rec carries the documented guard: a nil lane means tracing is off.
func (l *Lane) Rec(k Kind, pe int) {
	if l == nil {
		return
	}
	l.n++
}

// RecV forgets the guard.
func (l *Lane) RecV(k Kind, pe int, v uint64) { // want "must begin with a nil-receiver check"
	l.n++
}

func (l *Lane) Flush() { //uts:ok obscheck Flush is only reachable from a non-nil Tracer Close path
	l.n = 0
}

type Tracer struct {
	lanes []Lane
}

// Enabled guards inside the return expression; that counts.
func (t *Tracer) Enabled() bool {
	return t != nil && len(t.lanes) > 0
}

func use(l *Lane, k Kind) {
	l.Rec(KindSpawn, 1)
	l.Rec(k, 2) // forwarding a Kind-typed value is fine
	l.Rec(rawKind, 3) // want "not a declared Kind"
	l.RecV(KindSteal, 1, 9)
}
