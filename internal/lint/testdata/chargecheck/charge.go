// Package charge is the chargecheck golden corpus: a miniature of the
// internal/core worker vocabulary (a Domain latency model, pgas-style
// locks, a stacks slice indexed by PE id) exercising the legal charged
// patterns, the violations, and one justified suppression.
package charge

type Domain struct{}

func (d *Domain) ChargeRef(me, owner int)     {}
func (d *Domain) ChargeBulk(me, owner, n int) {}
func (d *Domain) ChargeLockRTT(me, owner int) {}

type Lock struct{}

func (l *Lock) Acquire(me int) {}
func (l *Lock) Release(me int) {}

// ring stands in for the relaxed fence-free ring (stack.Relaxed): its
// methods touch the owner's slot words and multiplicity ledger with raw
// atomics instead of a lock, so a thief-side Claim through a remote
// handle is a remote access like any other — the fence-free path must
// not become a PGAS cost-model bypass.
type ring struct{}

func (r *ring) Claim(tag int) int { return 0 }
func (r *ring) Full() bool        { return false }

type stack struct {
	lk        Lock
	ring      ring
	workAvail int
	top       int
}

type run struct {
	dom    *Domain
	stacks []*stack
}

type worker struct {
	run *run
	me  int
}

// stack indexes with the worker's own id: local affinity, never charged.
func (w *worker) stack() *stack { return w.run.stacks[w.me] }

// probe reads a victim's workAvail after charging — the legal pattern.
func (w *worker) probe(v int) int {
	w.run.dom.ChargeRef(w.me, v)
	return w.run.stacks[v].workAvail
}

// badProbe reads the same word without paying for the reference.
func (w *worker) badProbe(v int) int {
	return w.run.stacks[v].workAvail // want "uncharged remote reference"
}

// badHandle shows that binding the handle is free but the dereference
// still needs a charge.
func (w *worker) badHandle(v int) int {
	vs := w.run.stacks[v]
	return vs.top // want "uncharged remote reference"
}

func (w *worker) okHandle(v int) int {
	vs := w.run.stacks[v]
	w.run.dom.ChargeRef(w.me, v)
	return vs.top
}

// okLock: the lock acquire is itself the payment (ChargeLockRTT happens
// inside Acquire in the real Domain), and it dominates the accesses
// that follow.
func (w *worker) okLock(v int) {
	vs := w.run.stacks[v]
	vs.lk.Acquire(w.me)
	vs.top = 0
	vs.lk.Release(w.me)
}

// okBulk charges a bulk transfer before draining the victim's steal
// half.
func (w *worker) okBulk(v, n int) int {
	w.run.dom.ChargeBulk(w.me, v, n)
	got := w.run.stacks[v].top
	w.run.stacks[v].top = 0
	return got
}

// badClaim reaches into a victim's relaxed ring without paying for the
// slot scan or the claim handshake: lock-free does not mean latency-free.
func (w *worker) badClaim(v int) int {
	vs := w.run.stacks[v]
	return vs.ring.Claim(w.me) // want "uncharged remote reference"
}

// okClaim charges the two remote rounds of the fence-free handshake
// (slot-word scan, claim store + ledger CAS) before the claim — the
// pattern stealRelaxed uses in internal/core.
func (w *worker) okClaim(v int) int {
	vs := w.run.stacks[v]
	w.run.dom.ChargeRef(w.me, v)
	w.run.dom.ChargeRef(w.me, v)
	return vs.ring.Claim(w.me)
}

// ownRing reads the worker's own ring through the me-indexed helper:
// local affinity, never charged.
func (w *worker) ownRing() bool {
	return w.stack().ring.Full()
}

// newRun builds the stacks slice single-threaded before any PE exists:
// plain functions (no worker receiver with a me field) are exempt.
func newRun(n int) *run {
	r := &run{dom: &Domain{}, stacks: make([]*stack, n)}
	for i := range r.stacks {
		r.stacks[i] = &stack{}
		r.stacks[i].top = 0
	}
	return r
}

// termCount reads every PE's counter in the sequential drain after the
// run has ended; the reference is deliberately free.
func (w *worker) termCount() int {
	n := 0
	for i := range w.run.stacks {
		n += w.run.stacks[i].top //uts:ok chargecheck post-run accounting outside the timed region
	}
	return n
}
