package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Ordercheck verifies declared publish-order invariants by dominance
// on the real control-flow graph. The fence-free ring and the obs
// seqlock both stand on "this write happens before that write on every
// path": the ledger/payload stores must precede the publishing store,
// and the seq-odd store must precede the payload writes which must
// precede the seq-even store. Reordering any of them is a silent
// memory-model bug no test deterministically catches.
//
// A function opts in with a doc-comment directive:
//
//	//uts:orders ledger<slot
//	//uts:orders invalidate<payload payload<publish
//
// Each a<b pair demands: every statement in group a strictly dominates
// every statement in group b (executes before it on every path from
// the function entry). Statements join a group either by an explicit
// trailing mark,
//
//	seg.n[i] = int32(len(c)) //uts:mark ledger
//
// or, unmarked, by the innermost field name they store to — an
// assignment to x.slot, x.slot.Store(v), or atomic.StoreX(&x.slot, v)
// is in group "slot". A pair whose group matches no statement is a
// finding (the invariant went stale); so is a malformed directive or a
// nameless mark.
var Ordercheck = &Analyzer{
	Name: "ordercheck",
	Doc:  "//uts:orders a<b publish-order invariants hold by dominance on every path",
	Run:  runOrdercheck,
}

// atomicWriteMethods are the typed-atomic methods that publish a value.
var atomicWriteMethods = map[string]bool{
	"Store": true, "Swap": true, "Add": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

func runOrdercheck(pass *Pass) error {
	for _, file := range pass.Files {
		marks := collectMarks(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pairs := ordersPairs(pass, fd)
			if len(pairs) == 0 {
				continue
			}
			checkOrders(pass, fd, pairs, marks)
		}
	}
	return nil
}

// orderPair is one declared a<b ordering.
type orderPair struct{ before, after string }

// ordersPairs parses the //uts:orders directives in fd's doc comment,
// reporting malformed ones.
func ordersPairs(pass *Pass, fd *ast.FuncDecl) []orderPair {
	if fd.Doc == nil {
		return nil
	}
	var pairs []orderPair
	for _, c := range fd.Doc.List {
		text, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//uts:orders")
		if !ok {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			pass.Reportf(c.Pos(), "empty //uts:orders directive: expected //uts:orders a<b [c<d ...]")
			continue
		}
		for _, f := range fields {
			before, after, ok := strings.Cut(f, "<")
			if !ok || before == "" || after == "" || strings.Contains(after, "<") {
				pass.Reportf(c.Pos(), "malformed //uts:orders pair %q: expected a<b", f)
				continue
			}
			pairs = append(pairs, orderPair{before, after})
		}
	}
	return pairs
}

// collectMarks maps source lines to the //uts:mark group names declared
// on them, reporting nameless marks.
func collectMarks(pass *Pass, file *ast.File) map[lineKey][]string {
	marks := make(map[lineKey][]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//uts:mark")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			pos := pass.Fset.Position(c.Pos())
			if len(fields) == 0 {
				pass.Reportf(c.Pos(), "//uts:mark needs a group name: //uts:mark <group>")
				continue
			}
			name := fields[0]
			marks[lineKey{pos.Filename, pos.Line}] = append(marks[lineKey{pos.Filename, pos.Line}], name)
		}
	}
	return marks
}

func checkOrders(pass *Pass, fd *ast.FuncDecl, pairs []orderPair, marks map[lineKey][]string) {
	groupNames := make(map[string]bool)
	for _, p := range pairs {
		groupNames[p.before] = true
		groupNames[p.after] = true
	}

	c := BuildCFG(fd.Body)
	groups := make(map[string][]ast.Node)
	type memberKey struct {
		g string
		n ast.Node
	}
	seen := make(map[memberKey]bool)
	for n := range c.pos {
		for _, g := range nodeGroups(pass, n, marks) {
			if groupNames[g] && !seen[memberKey{g, n}] {
				seen[memberKey{g, n}] = true
				groups[g] = append(groups[g], n)
			}
		}
	}

	for _, p := range pairs {
		before, after := groups[p.before], groups[p.after]
		if len(before) == 0 || len(after) == 0 {
			for _, g := range []string{p.before, p.after} {
				if len(groups[g]) == 0 {
					pass.Reportf(fd.Name.Pos(), "publish-order invariant %s<%s names group %q, which matches no statement in %s: the declared invariant went stale",
						p.before, p.after, g, fd.Name.Name)
				}
			}
			continue
		}
		for _, b := range after {
			for _, a := range before {
				if !c.NodeDominates(a, b) {
					pass.Reportf(b.Pos(), "publish-order invariant %s<%s violated: the %s write at %s does not precede this %s write on every path",
						p.before, p.after, p.before, pass.Fset.Position(a.Pos()), p.after)
				}
			}
		}
	}
}

// nodeGroups returns the ordering groups a CFG node belongs to: the
// explicit //uts:mark names on its line plus the field names its
// stores target.
func nodeGroups(pass *Pass, n ast.Node, marks map[lineKey][]string) []string {
	pos := pass.Fset.Position(n.Pos())
	var gs []string
	if _, isStmt := n.(ast.Stmt); isStmt {
		gs = append(gs, marks[lineKey{pos.Filename, pos.Line}]...)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if name := innermostFieldName(lhs); name != "" {
				gs = append(gs, name)
			}
		}
	case *ast.IncDecStmt:
		if name := innermostFieldName(n.X); name != "" {
			gs = append(gs, name)
		}
	case *ast.ExprStmt:
		call, ok := n.X.(*ast.CallExpr)
		if !ok {
			break
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && atomicWriteMethods[sel.Sel.Name] {
			if _, _, isMethod := pass.methodCall(call); isMethod {
				if name := innermostFieldName(sel.X); name != "" {
					gs = append(gs, name)
				}
			}
		}
		if path, fn, ok := pass.pkgFuncCall(call); ok && path == "sync/atomic" &&
			(strings.HasPrefix(fn, "Store") || strings.HasPrefix(fn, "Swap") ||
				strings.HasPrefix(fn, "Add") || strings.HasPrefix(fn, "CompareAndSwap")) &&
			len(call.Args) > 0 {
			if ue, ok := unparen(call.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if name := innermostFieldName(ue.X); name != "" {
					gs = append(gs, name)
				}
			}
		}
	}
	return gs
}

// innermostFieldName strips indexing, dereference, and parens and
// returns the final selected (or bare) name a store targets:
// x.slot → "slot", x.buf[i] → "buf", *p.w → "w", n → "n".
func innermostFieldName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
