package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Obscheck keeps the observability layer honest about its two core
// contracts:
//
//  1. Event vocabulary: every Lane.Rec / Lane.RecV call names its event
//     with a declared Kind* constant (or forwards a value already typed
//     Kind). Raw integer literals or arithmetic would silently fall out
//     of the exporters' taxonomy (timeline names, Chrome trace lanes,
//     histogram routing).
//  2. Nil-tracer guards: a nil *Tracer/*Lane is the documented
//     "tracing off" representation — every scheduler holds a possibly
//     nil lane and records unconditionally — so every exported method
//     with a *Tracer or *Lane receiver in the obs package must begin by
//     checking its receiver against nil. A missing guard is a latent
//     panic on every untraced run.
//  3. Name completeness: the kindNames table must carry a non-empty
//     entry for every declared Kind. The array type [numKinds]string
//     makes an over-long table a compile error, but a *missing* tail
//     entry just zero-fills — Kind.String then falls back to "Kind(n)"
//     and every exporter keyed on the name (timeline, Chrome lanes,
//     /metrics kind labels) silently forks its vocabulary.
var Obscheck = &Analyzer{
	Name: "obscheck",
	Doc:  "obs events use declared Kind* constants; obs recording methods keep their nil-receiver guards",
	Run:  runObscheck,
}

func runObscheck(pass *Pass) error {
	// Rule 1: event kinds at every Rec/RecV call site, repo-wide.
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, isMethod := pass.methodCall(call)
		if !isMethod || recv != "Lane" || (method != "Rec" && method != "RecV") || len(call.Args) == 0 {
			return true
		}
		if !isDeclaredKind(pass, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "obs.Lane.%s called with an event kind that is not a declared Kind* constant: undeclared kinds break the timeline/Chrome exporters and histogram routing", method)
		}
		return true
	})

	// Rule 2: nil-receiver guards, only inside the obs package itself.
	if pass.Pkg == nil || pass.Pkg.Name() != "obs" {
		return nil
	}
	checkKindNames(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName := namedTypeName(pass.TypeOf(fd.Recv.List[0].Type))
			if recvName != "Lane" && recvName != "Tracer" {
				continue
			}
			if _, isPtr := fd.Recv.List[0].Type.(*ast.StarExpr); !isPtr {
				continue
			}
			r := recvIdent(fd)
			if r == nil || len(fd.Body.List) == 0 || !firstStmtNilChecks(pass, fd.Body.List[0], r.Name) {
				pass.Reportf(fd.Pos(), "exported method (*%s).%s must begin with a nil-receiver check: a nil tracer/lane is the documented tracing-off value and every call site relies on it", recvName, fd.Name.Name)
			}
		}
	}
	return nil
}

// checkKindNames enforces rule 3: each index of the kindNames array
// literal holds a non-empty string.
func checkKindNames(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "kindNames" || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				arr, ok := pass.TypeOf(lit).Underlying().(*types.Array)
				if !ok {
					continue
				}
				names := make([]bool, arr.Len())
				idx := 0
				for _, el := range lit.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if tv, ok := pass.Info.Types[kv.Key]; ok && tv.Value != nil {
							if v, exact := constant.Int64Val(tv.Value); exact {
								idx = int(v)
							}
						}
						el = kv.Value
					}
					if idx >= 0 && idx < len(names) {
						tv, ok := pass.Info.Types[el]
						names[idx] = ok && tv.Value != nil && constant.StringVal(tv.Value) != ""
					}
					idx++
				}
				for k, named := range names {
					if !named {
						pass.Reportf(lit.Pos(), "kindNames entry %d is missing or empty: Kind.String falls back to \"Kind(%d)\" and the timeline/Chrome/metrics vocabulary silently forks", k, k)
						break
					}
				}
			}
			return true
		})
	}
}

// isDeclaredKind reports whether e is an acceptable event-kind
// argument: a constant whose name starts with "Kind", or a plain
// identifier whose static type is the named Kind type (a forwarded
// parameter).
func isDeclaredKind(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		return strings.HasPrefix(id.Name, "Kind")
	}
	// Non-constant: allow variables/parameters already typed Kind.
	return namedTypeName(obj.Type()) == "Kind"
}

// firstStmtNilChecks reports whether stmt contains a comparison of the
// identifier recv against nil (if recv == nil {...}, or
// return recv != nil && ...).
func firstStmtNilChecks(pass *Pass, stmt ast.Stmt, recv string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		var x, y ast.Expr = be.X, be.Y
		for _, pair := range [][2]ast.Expr{{x, y}, {y, x}} {
			id, isIdent := pair[0].(*ast.Ident)
			nilId, isNil := pair[1].(*ast.Ident)
			if isIdent && isNil && id.Name == recv && nilId.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}
