package lint

// All returns the full analyzer suite in the order uts-vet runs it.
func All() []*Analyzer {
	return []*Analyzer{
		Chargecheck,
		Detcheck,
		Noalloc,
		Retrycheck,
		Obscheck,
		Atomiccheck,
		Ordercheck,
		Hookcheck,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
