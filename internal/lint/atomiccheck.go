package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomiccheck enforces the repo's atomics discipline: once any access
// to a struct field goes through sync/atomic — a Load/Store/Add/Swap/
// CompareAndSwap taking the field's address, or the field having a
// typed atomic.* type — every access to that word must be atomic on
// every path. One plain read racing one atomic store is exactly the
// bug class the fence-free ring (internal/stack/relaxed.go), the
// sharded-DES promise words, and the obs seqlock rings hand-roll
// around, and it is invisible to the type checker and to any race-run
// that happens not to schedule the interleaving.
//
// The analyzer classifies each implicated field into one of four
// shapes and checks the accesses it sees package-wide (the fields in
// question are unexported, so the package is the whole universe of
// accesses):
//
//   - word: &x.f is passed to a sync/atomic function. Plain reads,
//     plain writes, and taking the address outside a sync/atomic call
//     are findings.
//   - element words: &x.f[i] (directly or through a local alias
//     b := x.f) is passed to sync/atomic. Plain element reads/writes
//     and ranging over the values are findings; slice-header uses
//     (len, make-assignment, aliasing the slice itself) are not — the
//     words are the elements, not the header.
//   - typed: the field's type is atomic.Bool/Int32/.../Pointer[T].
//     Method calls and address-taking are atomic by construction;
//     copying the value out is a finding (it is also a vet copylocks
//     violation, but this pins the memory-model reading too).
//   - typed elements: []atomic.X or [N]atomic.X fields; indexed method
//     calls are fine, copying elements or the whole array is not.
//
// Provably single-threaded regions (constructors before the object is
// published, test setup that owns the world, owner-side reset paths)
// are annotated //uts:plain <reason>; the reason is mandatory and the
// driver's -unused-suppressions audit keeps the annotations honest.
var Atomiccheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "fields accessed through sync/atomic must be accessed atomically on every path (//uts:plain <reason> escapes single-threaded regions)",
	Run:  runAtomiccheck,
}

// atomicMode classifies how a tracked field's atomic word is shaped.
type atomicMode uint8

const (
	modeWord       atomicMode = iota // the field itself is the word (&x.f → sync/atomic)
	modeElems                        // the field's elements are words (&x.f[i] → sync/atomic)
	modeTyped                        // field has a typed atomic.* type
	modeTypedElems                   // field is a slice/array of typed atomics
)

func (m atomicMode) String() string {
	switch m {
	case modeWord:
		return "atomic word"
	case modeElems:
		return "array of atomic words"
	case modeTyped:
		return "typed atomic value"
	default:
		return "array of typed atomic values"
	}
}

// atomicWord records why a field is tracked: its shape and the first
// atomic use (or type declaration) that implicated it, for messages.
type atomicWord struct {
	mode atomicMode
	at   token.Pos // the implicating atomic call or field declaration
}

func runAtomiccheck(pass *Pass) error {
	aliases := collectSliceAliases(pass)
	words := collectAtomicWords(pass, aliases)
	if len(words) == 0 {
		return nil
	}

	// Walk with an explicit parent stack: classification depends on how
	// the enclosing expression uses the field.
	var stack []ast.Node
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if f := pass.fieldOf(n); f != nil {
					if w, ok := words[f]; ok {
						checkAtomicAccess(pass, n, f, w, stack)
					}
				}
			case *ast.Ident:
				// Element access through a local alias of a tracked
				// slice field: b := r.buf; b[i] = v.
				obj := pass.Info.Uses[n]
				if obj == nil {
					return true
				}
				f, ok := aliases[obj]
				if !ok {
					return true
				}
				if w, tracked := words[f]; tracked && (w.mode == modeElems || w.mode == modeTypedElems) {
					checkAtomicAccess(pass, n, f, w, stack)
				}
			}
			return true
		})
	}
	return nil
}

// collectSliceAliases maps local variables to the slice/array struct
// field they alias (b := r.buf), so element accesses through the alias
// inherit the field's discipline.
func collectSliceAliases(pass *Pass) map[types.Object]*types.Var {
	aliases := make(map[types.Object]*types.Var)
	pass.Inspect(func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			sel, ok := unparen(as.Rhs[i]).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			f := pass.fieldOf(sel)
			if f == nil {
				continue
			}
			switch f.Type().Underlying().(type) {
			case *types.Slice, *types.Array:
			default:
				continue
			}
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = pass.Info.Defs[id]
			} else {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				aliases[obj] = f
			}
		}
		return true
	})
	return aliases
}

// collectAtomicWords finds every struct field the package treats as an
// atomic word: typed atomic.* fields by declaration, and fields whose
// address (or element address) flows into a sync/atomic call.
func collectAtomicWords(pass *Pass, aliases map[types.Object]*types.Var) map[*types.Var]atomicWord {
	words := make(map[*types.Var]atomicWord)
	record := func(f *types.Var, mode atomicMode, at token.Pos) {
		if _, seen := words[f]; !seen {
			words[f] = atomicWord{mode: mode, at: at}
		}
	}

	// Typed atomic fields, from the package's own struct declarations.
	for _, obj := range pass.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			continue
		}
		switch t := v.Type().(type) {
		case *types.Named:
			if isAtomicNamed(t) {
				record(v, modeTyped, v.Pos())
			}
		case *types.Slice:
			if n, ok := t.Elem().(*types.Named); ok && isAtomicNamed(n) {
				record(v, modeTypedElems, v.Pos())
			}
		case *types.Array:
			if n, ok := t.Elem().(*types.Named); ok && isAtomicNamed(n) {
				record(v, modeTypedElems, v.Pos())
			}
		}
	}

	// Fields whose address is passed to sync/atomic package functions.
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		path, _, ok := pass.pkgFuncCall(call)
		if !ok || path != "sync/atomic" {
			return true
		}
		ue, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			return true
		}
		switch target := unparen(ue.X).(type) {
		case *ast.SelectorExpr:
			if f := pass.fieldOf(target); f != nil {
				record(f, modeWord, call.Pos())
			}
		case *ast.IndexExpr:
			switch base := unparen(target.X).(type) {
			case *ast.SelectorExpr:
				if f := pass.fieldOf(base); f != nil {
					record(f, modeElems, call.Pos())
				}
			case *ast.Ident:
				if obj := pass.Info.Uses[base]; obj != nil {
					if f, ok := aliases[obj]; ok {
						record(f, modeElems, call.Pos())
					}
				}
			}
		}
		return true
	})
	return words
}

// isAtomicNamed reports whether the named type comes from sync/atomic
// (atomic.Bool, atomic.Int64, atomic.Pointer[T], ...).
func isAtomicNamed(n *types.Named) bool {
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// checkAtomicAccess classifies one appearance of a tracked field (or a
// tracked alias) by its enclosing expression and reports plain uses.
// stack is the DFS parent chain; stack[len-1] is the access itself.
func checkAtomicAccess(pass *Pass, access ast.Expr, f *types.Var, w atomicWord, stack []ast.Node) {
	at := func(k int) ast.Node {
		if i := len(stack) - 1 - k; i >= 0 {
			return stack[i]
		}
		return nil
	}
	parent := skipParensFrom(1, at)
	desc := exprString(access)
	if desc == "" {
		desc = f.Name()
	}
	where := pass.Fset.Position(w.at)

	switch w.mode {
	case modeWord:
		if ue, ok := parent.node.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if isAtomicArg(pass, at(parent.depth+1), ue) {
				return
			}
			pass.Reportf(access.Pos(), "address of %s %s (atomic use at %s) escapes to a non-atomic context: every access must go through sync/atomic, or the region needs //uts:plain <reason>",
				w.mode, desc, where)
			return
		}
		pass.Reportf(access.Pos(), "plain %s of %s %s (atomic use at %s): every access must go through sync/atomic, or the region needs //uts:plain <reason>",
			accessKind(stack, access), w.mode, desc, where)

	case modeElems:
		idx, ok := parent.node.(*ast.IndexExpr)
		if ok && unparen(idx.X) == access {
			grand := skipParensFrom(parent.depth+1, at)
			if ue, ok := grand.node.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if isAtomicArg(pass, at(grand.depth+1), ue) {
					return
				}
				pass.Reportf(access.Pos(), "address of an element of %s %s (atomic use at %s) escapes to a non-atomic context",
					w.mode, desc, where)
				return
			}
			pass.Reportf(access.Pos(), "plain element %s of %s %s (atomic use at %s): elements are atomic words; use sync/atomic, or annotate the single-threaded region //uts:plain <reason>",
				accessKind(stack, idx), w.mode, desc, where)
			return
		}
		if rs, ok := parent.node.(*ast.RangeStmt); ok && unparen(rs.X) == access && rs.Value != nil {
			pass.Reportf(access.Pos(), "ranging over the values of %s %s (atomic use at %s) reads its elements plainly: range over indices and load atomically",
				w.mode, desc, where)
			return
		}
		// Slice-header uses (len, cap, make-assignment, aliasing) carry
		// no element access and are fine.

	case modeTyped:
		if psel, ok := parent.node.(*ast.SelectorExpr); ok && unparen(psel.X) == access {
			return // method call or method value: atomic by construction
		}
		if ue, ok := parent.node.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			return // address-of: the receiver stays shared, ops stay atomic
		}
		pass.Reportf(access.Pos(), "%s %s copied or used plainly: go through its Load/Store/... methods (value copies tear the word and break the happens-before edges)",
			w.mode, desc)

	case modeTypedElems:
		if idx, ok := parent.node.(*ast.IndexExpr); ok && unparen(idx.X) == access {
			grand := skipParensFrom(parent.depth+1, at)
			if psel, ok := grand.node.(*ast.SelectorExpr); ok && unparen(psel.X) == idx {
				return // indexed method call
			}
			if ue, ok := grand.node.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				return
			}
			pass.Reportf(access.Pos(), "element of %s %s copied or used plainly: call the element's atomic methods in place", w.mode, desc)
			return
		}
		if rs, ok := parent.node.(*ast.RangeStmt); ok && unparen(rs.X) == access && rs.Value != nil {
			pass.Reportf(access.Pos(), "ranging over the values of %s %s copies its elements: range over indices and use the atomic methods", w.mode, desc)
			return
		}
		if _, isArray := f.Type().Underlying().(*types.Array); isArray {
			if isValueCopyContext(parent.node, access) {
				pass.Reportf(access.Pos(), "copying %s %s duplicates live atomic words: index into it in place", w.mode, desc)
			}
		}
		// Slice-header uses are fine.
	}
}

// parentInfo pairs a parent node with its distance above the access.
type parentInfo struct {
	node  ast.Node
	depth int
}

// skipParens walks upward past ParenExprs starting at the given
// stack depth above the access.
func skipParensFrom(depth int, at func(int) ast.Node) parentInfo {
	n := at(depth)
	for {
		if _, ok := n.(*ast.ParenExpr); !ok {
			return parentInfo{node: n, depth: depth}
		}
		depth++
		n = at(depth)
	}
}

// isAtomicArg reports whether call is a sync/atomic function call with
// ue among its arguments.
func isAtomicArg(pass *Pass, callNode ast.Node, ue *ast.UnaryExpr) bool {
	call, ok := callNode.(*ast.CallExpr)
	if !ok {
		return false
	}
	path, _, ok := pass.pkgFuncCall(call)
	if !ok || path != "sync/atomic" {
		return false
	}
	for _, a := range call.Args {
		if unparen(a) == ue {
			return true
		}
	}
	return false
}

// isValueCopyContext reports whether the access appears where its value
// is copied out: an assignment RHS, a var initializer, a call argument,
// or a return value.
func isValueCopyContext(parent ast.Node, access ast.Expr) bool {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if unparen(r) == access {
				return true
			}
		}
	case *ast.ValueSpec:
		for _, v := range p.Values {
			if unparen(v) == access {
				return true
			}
		}
	case *ast.CallExpr:
		for _, a := range p.Args {
			if unparen(a) == access {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range p.Results {
			if unparen(r) == access {
				return true
			}
		}
	}
	return false
}

// accessKind renders "read" or "write" for the access by scanning the
// enclosing statement on the parent stack.
func accessKind(stack []ast.Node, access ast.Expr) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if containsExpr(l, access) {
					return "write"
				}
			}
			return "read"
		case *ast.IncDecStmt:
			if containsExpr(s.X, access) {
				return "write"
			}
			return "read"
		case ast.Stmt:
			return "read"
		}
	}
	return "read"
}

// containsExpr reports whether target appears in the subtree of root.
func containsExpr(root ast.Node, target ast.Expr) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
