package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hookcheck proves that every call through an optional hook is
// dominated by a nil check of that hook, so a run with the hooks
// disabled can never panic. Two shapes of hook exist:
//
//   - the adaptive-policy controller: methods on a *Controller are not
//     nil-receiver-safe (by design — the nil check happens once at the
//     call site, not on every accessor), so w.ctl.StealHalf() must sit
//     under a w.ctl != nil guard on every path;
//   - telemetry/observer callbacks: func-typed struct fields following
//     the On*/on* naming convention (onSample, OnSteal, ...), called
//     directly (s.onSample(st)) or through a local copy
//     (fn := s.onSample; if fn != nil { fn(st) }).
//
// The proof is a forward must-analysis over the function's CFG: the
// fact at a point is the set of expressions known non-nil on every
// path reaching it. Facts are gained along condition edges (x != nil
// true-edges, x == nil false-edges, && and || short-circuit structure,
// negation) and through copies (ctl := w.ctl transfers w.ctl's fact to
// ctl), and killed when any prefix of the expression is reassigned.
// Function literals are separate functions: outer guards do not carry
// into a closure, which is sound — the hook can change between the
// guard and the deferred call.
//
// Test files are skipped: tests exercise concrete controllers and
// callbacks they just constructed, and a nil dereference there fails
// the test loudly. The guard contract protects production paths.
var Hookcheck = &Analyzer{
	Name: "hookcheck",
	Doc:  "calls through policy/telemetry hooks (a *Controller method or an On*/on* func field) are dominated by a nil check of the hook",
	Run:  runHookcheck,
}

func runHookcheck(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Inside a *Controller method the receiver is past the
			// call-site nil check by contract: self-calls are exempt.
			self := ""
			if id := recvIdent(fd); id != nil {
				if namedTypeName(pass.TypeOf(id)) == "Controller" {
					self = id.Name
				}
			}
			checkHookBody(pass, fd.Body, self)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkHookBody(pass, lit.Body, self)
				}
				return true
			})
		}
	}
	return nil
}

// nilFacts is the must-non-nil set: rendered expressions proven
// non-nil on every path to the current point.
type nilFacts map[string]bool

func cloneFacts(f nilFacts) nilFacts {
	out := make(nilFacts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// hookFlow is the FlowAnalysis computing nilFacts per block.
type hookFlow struct{}

func (hookFlow) Boundary() any { return nilFacts{} }

func (hookFlow) Transfer(b *Block, in any) any {
	out := cloneFacts(in.(nilFacts))
	for _, n := range b.Nodes {
		applyNilFacts(n, out)
	}
	return out
}

func (hookFlow) FlowEdge(e *Edge, out any) any {
	if e.Cond == nil {
		return out
	}
	f := cloneFacts(out.(nilFacts))
	addNonNilFacts(e.Cond, e.Branch, f)
	return f
}

func (hookFlow) Meet(a, b any) any {
	am, bm := a.(nilFacts), b.(nilFacts)
	out := make(nilFacts)
	for k := range am {
		if bm[k] {
			out[k] = true
		}
	}
	return out
}

func (hookFlow) Equal(a, b any) bool {
	am, bm := a.(nilFacts), b.(nilFacts)
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}

// applyNilFacts updates the fact set across one straight-line node:
// assignments kill facts rooted at their targets and transfer facts
// through simple copies; range bindings kill their key/value.
func applyNilFacts(n ast.Node, facts nilFacts) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			l := exprString(unparen(lhs))
			if l == "" || l == "_" {
				continue
			}
			var gain bool
			if len(n.Rhs) == len(n.Lhs) {
				rhs := unparen(n.Rhs[i])
				if rs := exprString(rhs); rs != "" && facts[rs] {
					gain = true
				} else if isDefinitelyNonNil(rhs) {
					gain = true
				}
			}
			killFacts(facts, l)
			if gain {
				facts[l] = true
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if l := exprString(unparen(e)); l != "" && l != "_" {
				killFacts(facts, l)
			}
		}
	}
}

// killFacts removes every fact the assignment to l invalidates: l
// itself and anything selected or indexed from it.
func killFacts(facts nilFacts, l string) {
	for k := range facts {
		if k == l || strings.HasPrefix(k, l+".") || strings.HasPrefix(k, l+"[") {
			delete(facts, k)
		}
	}
}

// isDefinitelyNonNil reports syntactic non-nil values: address-of,
// composite and function literals.
func isDefinitelyNonNil(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		return e.Op == token.AND
	case *ast.CompositeLit, *ast.FuncLit:
		return true
	}
	return false
}

// addNonNilFacts folds the outcome of a condition into the fact set:
// cond evaluated to branch.
func addNonNilFacts(cond ast.Expr, branch bool, facts nilFacts) {
	switch e := unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ, token.EQL:
			operand := nilComparisonOperand(e)
			if operand == "" {
				return
			}
			if (e.Op == token.NEQ) == branch {
				facts[operand] = true
			}
		case token.LAND:
			if branch { // both conjuncts held
				addNonNilFacts(e.X, true, facts)
				addNonNilFacts(e.Y, true, facts)
			}
		case token.LOR:
			if !branch { // both disjuncts failed
				addNonNilFacts(e.X, false, facts)
				addNonNilFacts(e.Y, false, facts)
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			addNonNilFacts(e.X, !branch, facts)
		}
	}
}

// nilComparisonOperand returns the rendered non-nil side of an x ==/!=
// nil comparison, or "".
func nilComparisonOperand(e *ast.BinaryExpr) string {
	x, y := unparen(e.X), unparen(e.Y)
	if isNilIdent(y) {
		return exprString(x)
	}
	if isNilIdent(x) {
		return exprString(y)
	}
	return ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkHookBody runs the guard analysis over one function body. self
// names the enclosing *Controller method receiver ("" otherwise),
// whose own hook calls are exempt.
func checkHookBody(pass *Pass, body *ast.BlockStmt, self string) {
	hookVars := collectHookVars(pass, body)
	c := BuildCFG(body)
	in := c.Solve(hookFlow{})
	for _, b := range c.RPO() {
		facts, _ := in[b].(nilFacts)
		if facts == nil {
			facts = nilFacts{}
		}
		facts = cloneFacts(facts)
		for _, n := range b.Nodes {
			scanHookCalls(pass, n, facts, hookVars, self)
			applyNilFacts(n, facts)
		}
	}
}

// collectHookVars maps local variables to the hook field they copy
// (fn := s.onSample), so calls through the copy are checked against a
// nil check of the copy.
func collectHookVars(pass *Pass, body *ast.BlockStmt) map[types.Object]string {
	vars := make(map[types.Object]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			sel, ok := unparen(as.Rhs[i]).(*ast.SelectorExpr)
			if !ok || !isHookFuncField(pass, sel) {
				continue
			}
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = pass.Info.Defs[id]
			} else {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				vars[obj] = exprString(sel)
			}
		}
		return true
	})
	return vars
}

// scanHookCalls finds hook calls inside one straight-line node,
// refining facts through && and || short-circuiting as it descends.
// Function literals are skipped (each is analyzed as its own body);
// range statements contribute only their range expression (the body is
// separate CFG blocks).
func scanHookCalls(pass *Pass, n ast.Node, facts nilFacts, hookVars map[types.Object]string, self string) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		scanHookCalls(pass, rs.X, facts, hookVars, self)
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if x.Op == token.LAND || x.Op == token.LOR {
				scanHookCalls(pass, x.X, facts, hookVars, self)
				refined := cloneFacts(facts)
				addNonNilFacts(x.X, x.Op == token.LAND, refined)
				scanHookCalls(pass, x.Y, refined, hookVars, self)
				return false
			}
		case *ast.CallExpr:
			checkHookCall(pass, x, facts, hookVars, self)
		}
		return true
	})
}

// checkHookCall reports the call if it goes through a hook that is not
// proven non-nil at this point.
func checkHookCall(pass *Pass, call *ast.CallExpr, facts nilFacts, hookVars map[types.Object]string, self string) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[fun]; ok {
			switch s.Kind() {
			case types.MethodVal:
				if namedTypeName(s.Recv()) != "Controller" {
					return
				}
				if _, isPtr := s.Recv().(*types.Pointer); !isPtr {
					return // value receiver on an addressable value: cannot be nil
				}
				guard := exprString(fun.X)
				if self != "" && guard == self {
					return // the method's own receiver: checked by the caller
				}
				if guard == "" {
					pass.Reportf(call.Pos(), "policy hook method %s called through an expression the nil-guard analysis cannot track: bind the *Controller to a local, nil-check it, and call through the local", s.Obj().Name())
					return
				}
				if !facts[guard] {
					pass.Reportf(call.Pos(), "call to %s.%s is not dominated by a nil check of %s: a run with the adaptive policy disabled (nil controller) panics here", guard, s.Obj().Name(), guard)
				}
			case types.FieldVal:
				if !isHookFuncField(pass, fun) {
					return
				}
				guard := exprString(fun)
				if guard == "" {
					pass.Reportf(call.Pos(), "hook field %s called through an expression the nil-guard analysis cannot track: copy the hook to a local, nil-check it, and call through the local", fun.Sel.Name)
					return
				}
				if !facts[guard] {
					pass.Reportf(call.Pos(), "call through hook field %s is not dominated by a nil check of %s: a run with the hook unset panics here", guard, guard)
				}
			}
		}
	case *ast.Ident:
		obj := pass.Info.Uses[fun]
		if obj == nil {
			return
		}
		src, ok := hookVars[obj]
		if !ok {
			return
		}
		if !facts[fun.Name] {
			pass.Reportf(call.Pos(), "call through %s (a copy of hook field %s) is not dominated by a nil check of %s: a run with the hook unset panics here", fun.Name, src, fun.Name)
		}
	}
}

// isHookFuncField reports whether sel names a func-typed struct field
// following the hook naming convention (onSample, OnSteal, ...).
func isHookFuncField(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return false
	}
	if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
		return false
	}
	name := v.Name()
	if len(name) < 3 {
		return false
	}
	if !strings.HasPrefix(name, "On") && !strings.HasPrefix(name, "on") {
		return false
	}
	return name[2] >= 'A' && name[2] <= 'Z'
}
