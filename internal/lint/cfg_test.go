package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFG parses one function declaration and builds its CFG.
func buildCFG(t *testing.T, src string) (*CFG, *ast.FuncDecl, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", "package p"+src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd.Body), fd, fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil, nil
}

// stmtOnLine returns the recorded CFG node starting on the given line
// (1-based within the synthesized file, where the package clause is
// line 1).
func stmtOnLine(t *testing.T, c *CFG, fset *token.FileSet, line int) ast.Node {
	t.Helper()
	for n := range c.pos {
		if fset.Position(n.Pos()).Line == line {
			return n
		}
	}
	t.Fatalf("no CFG node on line %d", line)
	return nil
}

// condOnLine returns the recorded condition (expression) node on the
// given line — lines like a for header hold several CFG nodes (init,
// condition, post) and tests need the condition specifically.
func condOnLine(t *testing.T, c *CFG, fset *token.FileSet, line int) ast.Node {
	t.Helper()
	for n := range c.pos {
		if _, isExpr := n.(ast.Expr); isExpr && fset.Position(n.Pos()).Line == line {
			return n
		}
	}
	t.Fatalf("no CFG condition node on line %d", line)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f() int {
	a := 1
	b := 2
	return a + b
}`)
	if len(c.RPO()) != 2 { // entry block + exit
		t.Fatalf("straight-line function has %d reachable blocks, want 2", len(c.RPO()))
	}
	a := stmtOnLine(t, c, fset, 3)
	ret := stmtOnLine(t, c, fset, 5)
	if !c.NodeDominates(a, ret) {
		t.Error("a := 1 must dominate the return")
	}
	if c.NodeDominates(ret, a) {
		t.Error("the return must not dominate a := 1")
	}
	if c.NodeDominates(a, a) {
		t.Error("NodeDominates is strict: a node does not dominate itself")
	}
	var kinds []ExitKind
	for _, e := range c.Exit.Preds {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 1 || kinds[0] != ExitReturn {
		t.Errorf("exit preds = %v, want one ExitReturn edge", kinds)
	}
}

func TestCFGIfElse(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f(x int) int {
	y := 0
	if x > 0 {
		y = 1
	} else {
		y = 2
	}
	return y
}`)
	cond := stmtOnLine(t, c, fset, 4)
	then := stmtOnLine(t, c, fset, 5)
	els := stmtOnLine(t, c, fset, 7)
	ret := stmtOnLine(t, c, fset, 9)
	if !c.NodeDominates(cond, then) || !c.NodeDominates(cond, els) || !c.NodeDominates(cond, ret) {
		t.Error("the condition must dominate both arms and the join")
	}
	if c.NodeDominates(then, ret) || c.NodeDominates(els, ret) {
		t.Error("neither arm alone dominates the join")
	}
	// The condition's block carries true and false edges naming it.
	cb, _, ok := c.PosOf(cond)
	if !ok {
		t.Fatal("condition not recorded")
	}
	var seenTrue, seenFalse bool
	for _, e := range cb.Succs {
		if e.Cond == cond {
			if e.Branch {
				seenTrue = true
			} else {
				seenFalse = true
			}
		}
	}
	if !seenTrue || !seenFalse {
		t.Error("condition block must have labeled true and false edges")
	}
}

func TestCFGEarlyReturnGuard(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f(p *int) int {
	if p == nil {
		return 0
	}
	return *p
}`)
	cond := stmtOnLine(t, c, fset, 3)
	deref := stmtOnLine(t, c, fset, 6)
	if !c.NodeDominates(cond, deref) {
		t.Error("guard condition must dominate the code after the early return")
	}
	// The block holding the dereference is entered only over the guard's
	// false edge.
	db, _, _ := c.PosOf(deref)
	if len(db.Preds) != 1 || db.Preds[0].Cond != cond || db.Preds[0].Branch {
		t.Error("post-guard block must be entered only via the guard's false edge")
	}
}

func TestCFGForLoop(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	body := stmtOnLine(t, c, fset, 5)
	ret := stmtOnLine(t, c, fset, 7)
	cond := condOnLine(t, c, fset, 4) // the i < n condition node
	if c.NodeDominates(body, ret) {
		t.Error("loop body must not dominate the code after the loop (zero-trip path)")
	}
	if !c.NodeDominates(cond, ret) || !c.NodeDominates(cond, body) {
		t.Error("loop condition must dominate both the body and the loop exit")
	}
	// The head has a back edge: some reachable block loops to it.
	hb, _, _ := c.PosOf(cond)
	back := false
	for _, e := range hb.Preds {
		if e.From.Reachable() && c.Dominates(hb, e.From) {
			back = true
		}
	}
	if !back {
		t.Error("loop head has no back edge")
	}
}

func TestCFGInfiniteLoopNoExit(t *testing.T) {
	c, _, _ := buildCFG(t, `
func f() {
	x := 0
	for {
		x++
	}
}`)
	reachableExits := 0
	for _, e := range c.Exit.Preds {
		if e.From.Reachable() {
			reachableExits++
		}
	}
	if reachableExits != 0 {
		t.Errorf("for {} never reaches the exit; exit has %d reachable preds", reachableExits)
	}
	if c.Exit.Reachable() {
		t.Error("exit block must be unreachable")
	}
}

func TestCFGBooleanSwitchLowering(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f(p *int, q *int) int {
	switch {
	case p != nil:
		return *p
	case q != nil:
		return *q
	default:
		return 0
	}
}`)
	deref := stmtOnLine(t, c, fset, 5)
	db, _, _ := c.PosOf(deref)
	if len(db.Preds) != 1 {
		t.Fatalf("case body has %d preds, want 1", len(db.Preds))
	}
	e := db.Preds[0]
	if e.Cond == nil || !e.Branch {
		t.Error("boolean switch case body must be entered over its condition's true edge")
	}
	// The second case's test is guarded by the first being false: the
	// second condition node must be dominated by the first.
	c1 := stmtOnLine(t, c, fset, 4)
	c2 := stmtOnLine(t, c, fset, 6)
	if !c.NodeDominates(c1, c2) {
		t.Error("case conditions must be evaluated in order")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f(k int) int {
	x := 0
	switch k {
	case 1:
		x = 1
		fallthrough
	case 2:
		x += 2
	}
	return x
}`)
	first := stmtOnLine(t, c, fset, 6)
	second := stmtOnLine(t, c, fset, 9)
	fb, _, _ := c.PosOf(first)
	sb, _, _ := c.PosOf(second)
	linked := false
	for _, e := range fb.Succs {
		if e.To == sb {
			linked = true
		}
	}
	if !linked {
		t.Error("fallthrough must link the first case body to the second")
	}
	if c.NodeDominates(first, second) {
		t.Error("the fallthrough source must not dominate the shared case body")
	}
}

func TestCFGGotoLabel(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f(n int) int {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	return i
}`)
	inc := stmtOnLine(t, c, fset, 5)
	ret := stmtOnLine(t, c, fset, 9)
	if !c.NodeDominates(inc, ret) {
		t.Error("the labeled statement dominates the return")
	}
	ib, _, _ := c.PosOf(inc)
	if len(ib.Preds) < 2 {
		t.Errorf("label block has %d preds, want >= 2 (fall-in and goto)", len(ib.Preds))
	}
}

func TestCFGSelect(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f(a, b chan int) int {
	x := 0
	select {
	case v := <-a:
		x = v
	case <-b:
		x = 1
	}
	return x
}`)
	armA := stmtOnLine(t, c, fset, 6)
	ret := stmtOnLine(t, c, fset, 10)
	if c.NodeDominates(armA, ret) {
		t.Error("a single select arm must not dominate the join")
	}
	ab, _, _ := c.PosOf(armA)
	if !ab.Reachable() {
		t.Error("select arm unreachable")
	}
}

// mustExec is a toy must-analysis used to exercise the solver: the fact
// at a block is the set of node indices guaranteed to have executed on
// every path reaching it.
type mustExec struct {
	c  *CFG
	id map[ast.Node]int
}

func (m *mustExec) Boundary() any { return map[int]bool{} }
func (m *mustExec) Transfer(b *Block, in any) any {
	out := map[int]bool{}
	for k := range in.(map[int]bool) {
		out[k] = true
	}
	for _, n := range b.Nodes {
		if id, ok := m.id[n]; ok {
			out[id] = true
		}
	}
	return out
}
func (m *mustExec) FlowEdge(e *Edge, out any) any { return out }
func (m *mustExec) Meet(a, b any) any {
	am, bm := a.(map[int]bool), b.(map[int]bool)
	out := map[int]bool{}
	for k := range am {
		if bm[k] {
			out[k] = true
		}
	}
	return out
}
func (m *mustExec) Equal(a, b any) bool {
	am, bm := a.(map[int]bool), b.(map[int]bool)
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}

func TestCFGSolverMustExecute(t *testing.T) {
	c, _, fset := buildCFG(t, `
func f(x int) int {
	a := 1
	if x > 0 {
		a = 2
	}
	b := a
	for x > 10 {
		b++
	}
	return b
}`)
	m := &mustExec{c: c, id: map[ast.Node]int{
		stmtOnLine(t, c, fset, 3): 0, // a := 1   (always)
		stmtOnLine(t, c, fset, 5): 1, // a = 2    (branch only)
		stmtOnLine(t, c, fset, 7): 2, // b := a   (always)
		stmtOnLine(t, c, fset, 9): 3, // b++      (loop body only)
	}}
	in := c.Solve(m)
	ret := stmtOnLine(t, c, fset, 11)
	rb, _, _ := c.PosOf(ret)
	fact, ok := in[rb].(map[int]bool)
	if !ok {
		t.Fatal("no fact at the return block")
	}
	if !fact[0] || !fact[2] {
		t.Errorf("unconditional statements missing from must-set: %v", fact)
	}
	if fact[1] || fact[3] {
		t.Errorf("branch/loop-only statements wrongly in must-set: %v", fact)
	}
}
