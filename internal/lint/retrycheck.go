package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// Retrycheck enforces the cluster transport's failure-model contract:
//
//  1. Retry idempotence: only RPC kinds declared in the package's
//     idempotentKind function may flow into the multi-attempt retry
//     path (the attempt method with an attempt count other than the
//     literal 1). Retrying a non-idempotent kind (CASRequest,
//     PutResponse, GetChunks, barrier transitions) can double-apply a
//     steal grant or barrier transition — the exact double-delivery
//     bugs PR 4's exactly-once handoff machinery exists to rule out.
//     A call passes if its attempt count is the literal 1, if the
//     request traces to a composite literal whose Kind is in the
//     declared set, or if the count variable is only ever raised under
//     an idempotentKind(...) guard.
//
//  2. Lock pairing: every mutex Lock/RLock (and every pgas-style
//     Acquire) is matched by an Unlock/RUnlock (Release) on every exit
//     path of the function. This runs a may-held lock lattice over the
//     function's CFG: the fact at a point is the set of receivers that
//     may still be held, acquires add to it, releases (including a
//     defer, which covers every later exit) remove it, and the meet is
//     union. A return reached with a lock possibly held is a finding;
//     so is falling off the end of the function while holding one.
//     Paths that end in panic or loop forever are not leaks. Function
//     literals are analyzed as functions of their own.
var Retrycheck = &Analyzer{
	Name: "retrycheck",
	Doc:  "only declared-idempotent RPC kinds may be retried; every Lock/Acquire is released on all exit paths",
	Paths: []string{
		"internal/cluster", "internal/core", "internal/msg",
	},
	Run: runRetrycheck,
}

func runRetrycheck(pass *Pass) error {
	idem := idempotentKindSet(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if idem != nil {
				checkRetryIdempotence(pass, fd, idem)
			}
			checkLockPairing(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockPairing(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// idempotentKindSet extracts the declared idempotent kind names from
// the package's idempotentKind function (the switch-case constants).
// nil when the package declares no such function.
func idempotentKindSet(pass *Pass) map[string]bool {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "idempotentKind" || fd.Body == nil {
				continue
			}
			set := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, isCase := n.(*ast.CaseClause)
				if !isCase {
					return true
				}
				// Only cases that lead to `return true` declare kinds.
				returnsTrue := false
				for _, s := range cc.Body {
					if ret, isRet := s.(*ast.ReturnStmt); isRet && len(ret.Results) == 1 {
						if id, isIdent := ret.Results[0].(*ast.Ident); isIdent && id.Name == "true" {
							returnsTrue = true
						}
					}
				}
				if !returnsTrue {
					return true
				}
				for _, e := range cc.List {
					if id, isIdent := e.(*ast.Ident); isIdent {
						set[id.Name] = true
					}
				}
				return true
			})
			return set
		}
	}
	return nil
}

// checkRetryIdempotence validates every call to the attempt method
// inside fd.
func checkRetryIdempotence(pass *Pass, fd *ast.FuncDecl, idem map[string]bool) {
	if fd.Name.Name == "call" {
		// The call method is the one place allowed to hold both worlds:
		// it computes the attempt budget from idempotentKind itself.
		// Its guard pattern is still validated below; this comment only
		// documents intent.
		_ = fd
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		callE, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, method, isMethod := pass.methodCall(callE)
		if !isMethod || method != "attempt" || len(callE.Args) != 3 {
			return true
		}
		attemptsArg, reqArg := callE.Args[2], callE.Args[1]
		if isIntLiteral(attemptsArg, "1") {
			return true
		}
		if kindName, found := requestKindName(pass, fd, reqArg); found {
			if idem[kindName] {
				return true
			}
			pass.Reportf(callE.Pos(), "request kind %s is not in the declared idempotent set but flows into the retry path (attempts != 1); retrying it can double-apply the RPC", kindName)
			return true
		}
		if id, isIdent := attemptsArg.(*ast.Ident); isIdent && attemptsGuardedByIdempotentKind(fd, id.Name) {
			return true
		}
		pass.Reportf(callE.Pos(), "cannot prove the request reaching this retry path (attempts != 1) is idempotent: construct the request with a Kind from the idempotentKind set, or guard the attempt count with idempotentKind(...)")
		return true
	})
}

// requestKindName traces reqArg (an ident or &ident) to a request
// composite literal assigned in fd and returns the name of its Kind
// field value.
func requestKindName(pass *Pass, fd *ast.FuncDecl, reqArg ast.Expr) (string, bool) {
	if ue, ok := reqArg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		reqArg = ue.X
	}
	if cl, ok := reqArg.(*ast.CompositeLit); ok {
		return kindFieldName(cl)
	}
	id, ok := reqArg.(*ast.Ident)
	if !ok {
		return "", false
	}
	var name string
	var found bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			lid, isIdent := lhs.(*ast.Ident)
			if !isIdent || lid.Name != id.Name || i >= len(as.Rhs) {
				continue
			}
			rhs := as.Rhs[i]
			if ue, isUnary := rhs.(*ast.UnaryExpr); isUnary && ue.Op == token.AND {
				rhs = ue.X
			}
			if cl, isLit := rhs.(*ast.CompositeLit); isLit {
				if k, ok2 := kindFieldName(cl); ok2 {
					name, found = k, true
				}
			}
		}
		return !found
	})
	return name, found
}

// kindFieldName returns the identifier assigned to the Kind field of a
// composite literal.
func kindFieldName(cl *ast.CompositeLit) (string, bool) {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
			if val, ok := kv.Value.(*ast.Ident); ok {
				return val.Name, true
			}
			return "", false
		}
	}
	return "", false
}

// attemptsGuardedByIdempotentKind reports whether every statement that
// raises the named attempts variable above its initial value sits under
// an if whose condition calls idempotentKind.
func attemptsGuardedByIdempotentKind(fd *ast.FuncDecl, name string) bool {
	guarded := true
	sawRaise := false
	var walk func(n ast.Node, underGuard bool)
	walk = func(n ast.Node, underGuard bool) {
		switch n := n.(type) {
		case *ast.IfStmt:
			g := underGuard || condCallsIdempotentKind(n.Cond)
			if n.Init != nil {
				walk(n.Init, underGuard)
			}
			walk(n.Body, g)
			if n.Else != nil {
				walk(n.Else, underGuard)
			}
			return
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
					if n.Tok == token.DEFINE || n.Tok == token.ASSIGN {
						// Initial definition / reset: not a raise.
						continue
					}
					sawRaise = true
					if !underGuard {
						guarded = false
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok && id.Name == name {
				sawRaise = true
				if !underGuard {
					guarded = false
				}
			}
		}
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n || c == nil {
				return true
			}
			switch c.(type) {
			case *ast.IfStmt, *ast.AssignStmt, *ast.IncDecStmt:
				walk(c, underGuard)
				return false
			}
			return true
		})
	}
	walk(fd.Body, false)
	return guarded && sawRaise
}

// condCallsIdempotentKind reports whether the expression contains a
// call to idempotentKind.
func condCallsIdempotentKind(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "idempotentKind" {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockPairs maps an acquire method name to its matching releases.
var lockPairs = map[string][]string{
	"Lock":    {"Unlock"},
	"RLock":   {"RUnlock"},
	"Acquire": {"Release"},
}

// releaseNames is the set of all release method names.
var releaseNames = func() map[string]bool {
	m := make(map[string]bool)
	for _, rels := range lockPairs {
		for _, r := range rels {
			m[r] = true
		}
	}
	return m
}()

// heldLock records one possibly-held acquire for the lattice.
type heldLock struct {
	name string // acquire method: Lock, RLock, Acquire
	rels []string
	pos  token.Pos // the acquire statement
}

// lockFacts maps a rendered receiver (e.g. "n.mu") to its possibly-held
// acquire. The lattice is may-held: meet is union, so a lock held on
// any path into a point is held at that point.
type lockFacts map[string]heldLock

func cloneLockFacts(f lockFacts) lockFacts {
	out := make(lockFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// lockFlow is the FlowAnalysis tracking possibly-held locks.
type lockFlow struct{ pass *Pass }

func (lockFlow) Boundary() any { return lockFacts{} }

func (l lockFlow) Transfer(b *Block, in any) any {
	out := cloneLockFacts(in.(lockFacts))
	for _, n := range b.Nodes {
		applyLockOp(l.pass, n, out)
	}
	return out
}

func (lockFlow) FlowEdge(e *Edge, out any) any { return out }

func (lockFlow) Meet(a, b any) any {
	am, bm := a.(lockFacts), b.(lockFacts)
	out := cloneLockFacts(am)
	for k, v := range bm {
		// Deterministic merge: keep the earliest acquire site.
		if cur, ok := out[k]; !ok || v.pos < cur.pos {
			out[k] = v
		}
	}
	return out
}

func (lockFlow) Equal(a, b any) bool {
	am, bm := a.(lockFacts), b.(lockFacts)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		w, ok := bm[k]
		if !ok || v.pos != w.pos || v.name != w.name {
			return false
		}
	}
	return true
}

// applyLockOp updates the held set across one straight-line node:
// recv.Lock() adds, recv.Unlock() (or defer recv.Unlock(), which
// covers every later exit) removes.
func applyLockOp(pass *Pass, n ast.Node, facts lockFacts) {
	var call *ast.CallExpr
	isDefer := false
	switch s := n.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call, isDefer = s.Call, true
	}
	if call == nil {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := exprString(sel.X)
	if recv == "" {
		return
	}
	name := sel.Sel.Name
	if rels, isAcq := lockPairs[name]; isAcq && !isDefer {
		// Only method calls on lock-ish receivers, not same-name funcs.
		if _, _, isMethod := pass.methodCall(call); isMethod {
			facts[recv] = heldLock{name: name, rels: rels, pos: n.Pos()}
		}
		return
	}
	if releaseNames[name] {
		if h, held := facts[recv]; held {
			for _, r := range h.rels {
				if r == name {
					delete(facts, recv)
					break
				}
			}
		}
	}
}

// checkLockPairing runs the lock-held lattice over one function body
// and reports exits that may leave a lock held: every return reached
// with a held lock, and the implicit fall-through off the end of the
// body. Panic exits and infinite loops are not leaks — the CFG has no
// fall-through edge for them, which is what replaces the old lexical
// region/switch/select special-casing.
func checkLockPairing(pass *Pass, body *ast.BlockStmt) {
	c := BuildCFG(body)
	flow := lockFlow{pass}
	in := c.Solve(flow)
	for _, b := range c.RPO() {
		facts, _ := in[b].(lockFacts)
		if facts == nil {
			facts = lockFacts{}
		}
		facts = cloneLockFacts(facts)
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, recv := range sortedLockKeys(facts) {
					h := facts[recv]
					pass.Reportf(ret.Pos(), "return may leave %s held: %s.%s at %s has no dominating %s before this exit (or use defer)",
						recv, recv, h.name, pass.Fset.Position(h.pos), h.rels[0])
				}
			}
			applyLockOp(pass, n, facts)
		}
		for _, e := range b.Succs {
			if e.Kind != ExitFall {
				continue
			}
			for _, recv := range sortedLockKeys(facts) {
				h := facts[recv]
				pass.Reportf(h.pos, "%s.%s is not released on the path falling out of its block (no %s after the acquire)",
					recv, h.name, h.rels[0])
			}
		}
	}
}

func sortedLockKeys(facts lockFacts) []string {
	keys := make([]string, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// isIntLiteral reports whether e is the given integer literal.
func isIntLiteral(e ast.Expr, lit string) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == lit
}
