package lint

import (
	"go/ast"
	"go/token"
)

// Retrycheck enforces the cluster transport's failure-model contract:
//
//  1. Retry idempotence: only RPC kinds declared in the package's
//     idempotentKind function may flow into the multi-attempt retry
//     path (the attempt method with an attempt count other than the
//     literal 1). Retrying a non-idempotent kind (CASRequest,
//     PutResponse, GetChunks, barrier transitions) can double-apply a
//     steal grant or barrier transition — the exact double-delivery
//     bugs PR 4's exactly-once handoff machinery exists to rule out.
//     A call passes if its attempt count is the literal 1, if the
//     request traces to a composite literal whose Kind is in the
//     declared set, or if the count variable is only ever raised under
//     an idempotentKind(...) guard.
//
//  2. Lock pairing: every mutex Lock/RLock (and every pgas-style
//     Acquire) is matched by an Unlock/RUnlock (Release) on every exit
//     path of the function — via an immediate defer or a
//     lexically-dominating release before each return and before
//     function fall-through. The dominance test is lexical (prior
//     statements on the return's own block path), the same
//     approximation chargecheck uses.
var Retrycheck = &Analyzer{
	Name: "retrycheck",
	Doc:  "only declared-idempotent RPC kinds may be retried; every Lock/Acquire is released on all exit paths",
	Paths: []string{
		"internal/cluster", "internal/core", "internal/msg",
	},
	Run: runRetrycheck,
}

func runRetrycheck(pass *Pass) error {
	idem := idempotentKindSet(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if idem != nil {
				checkRetryIdempotence(pass, fd, idem)
			}
			checkLockPairing(pass, fd)
		}
	}
	return nil
}

// idempotentKindSet extracts the declared idempotent kind names from
// the package's idempotentKind function (the switch-case constants).
// nil when the package declares no such function.
func idempotentKindSet(pass *Pass) map[string]bool {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "idempotentKind" || fd.Body == nil {
				continue
			}
			set := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, isCase := n.(*ast.CaseClause)
				if !isCase {
					return true
				}
				// Only cases that lead to `return true` declare kinds.
				returnsTrue := false
				for _, s := range cc.Body {
					if ret, isRet := s.(*ast.ReturnStmt); isRet && len(ret.Results) == 1 {
						if id, isIdent := ret.Results[0].(*ast.Ident); isIdent && id.Name == "true" {
							returnsTrue = true
						}
					}
				}
				if !returnsTrue {
					return true
				}
				for _, e := range cc.List {
					if id, isIdent := e.(*ast.Ident); isIdent {
						set[id.Name] = true
					}
				}
				return true
			})
			return set
		}
	}
	return nil
}

// checkRetryIdempotence validates every call to the attempt method
// inside fd.
func checkRetryIdempotence(pass *Pass, fd *ast.FuncDecl, idem map[string]bool) {
	if fd.Name.Name == "call" {
		// The call method is the one place allowed to hold both worlds:
		// it computes the attempt budget from idempotentKind itself.
		// Its guard pattern is still validated below; this comment only
		// documents intent.
		_ = fd
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		callE, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, method, isMethod := pass.methodCall(callE)
		if !isMethod || method != "attempt" || len(callE.Args) != 3 {
			return true
		}
		attemptsArg, reqArg := callE.Args[2], callE.Args[1]
		if isIntLiteral(attemptsArg, "1") {
			return true
		}
		if kindName, found := requestKindName(pass, fd, reqArg); found {
			if idem[kindName] {
				return true
			}
			pass.Reportf(callE.Pos(), "request kind %s is not in the declared idempotent set but flows into the retry path (attempts != 1); retrying it can double-apply the RPC", kindName)
			return true
		}
		if id, isIdent := attemptsArg.(*ast.Ident); isIdent && attemptsGuardedByIdempotentKind(fd, id.Name) {
			return true
		}
		pass.Reportf(callE.Pos(), "cannot prove the request reaching this retry path (attempts != 1) is idempotent: construct the request with a Kind from the idempotentKind set, or guard the attempt count with idempotentKind(...)")
		return true
	})
}

// requestKindName traces reqArg (an ident or &ident) to a request
// composite literal assigned in fd and returns the name of its Kind
// field value.
func requestKindName(pass *Pass, fd *ast.FuncDecl, reqArg ast.Expr) (string, bool) {
	if ue, ok := reqArg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		reqArg = ue.X
	}
	if cl, ok := reqArg.(*ast.CompositeLit); ok {
		return kindFieldName(cl)
	}
	id, ok := reqArg.(*ast.Ident)
	if !ok {
		return "", false
	}
	var name string
	var found bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			lid, isIdent := lhs.(*ast.Ident)
			if !isIdent || lid.Name != id.Name || i >= len(as.Rhs) {
				continue
			}
			rhs := as.Rhs[i]
			if ue, isUnary := rhs.(*ast.UnaryExpr); isUnary && ue.Op == token.AND {
				rhs = ue.X
			}
			if cl, isLit := rhs.(*ast.CompositeLit); isLit {
				if k, ok2 := kindFieldName(cl); ok2 {
					name, found = k, true
				}
			}
		}
		return !found
	})
	return name, found
}

// kindFieldName returns the identifier assigned to the Kind field of a
// composite literal.
func kindFieldName(cl *ast.CompositeLit) (string, bool) {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
			if val, ok := kv.Value.(*ast.Ident); ok {
				return val.Name, true
			}
			return "", false
		}
	}
	return "", false
}

// attemptsGuardedByIdempotentKind reports whether every statement that
// raises the named attempts variable above its initial value sits under
// an if whose condition calls idempotentKind.
func attemptsGuardedByIdempotentKind(fd *ast.FuncDecl, name string) bool {
	guarded := true
	sawRaise := false
	var walk func(n ast.Node, underGuard bool)
	walk = func(n ast.Node, underGuard bool) {
		switch n := n.(type) {
		case *ast.IfStmt:
			g := underGuard || condCallsIdempotentKind(n.Cond)
			if n.Init != nil {
				walk(n.Init, underGuard)
			}
			walk(n.Body, g)
			if n.Else != nil {
				walk(n.Else, underGuard)
			}
			return
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
					if n.Tok == token.DEFINE || n.Tok == token.ASSIGN {
						// Initial definition / reset: not a raise.
						continue
					}
					sawRaise = true
					if !underGuard {
						guarded = false
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok && id.Name == name {
				sawRaise = true
				if !underGuard {
					guarded = false
				}
			}
		}
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n || c == nil {
				return true
			}
			switch c.(type) {
			case *ast.IfStmt, *ast.AssignStmt, *ast.IncDecStmt:
				walk(c, underGuard)
				return false
			}
			return true
		})
	}
	walk(fd.Body, false)
	return guarded && sawRaise
}

// condCallsIdempotentKind reports whether the expression contains a
// call to idempotentKind.
func condCallsIdempotentKind(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "idempotentKind" {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockPairs maps an acquire method name to its matching releases.
var lockPairs = map[string][]string{
	"Lock":    {"Unlock"},
	"RLock":   {"RUnlock"},
	"Acquire": {"Release"},
}

// checkLockPairing runs the per-function lock/release pairing check.
func checkLockPairing(pass *Pass, fd *ast.FuncDecl) {
	type acquire struct {
		stmt ast.Stmt
		call *ast.CallExpr
		recv string // rendered receiver expression, e.g. "ib.mu"
		rels []string
	}
	var acquires []acquire
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		rels, isAcq := lockPairs[sel.Sel.Name]
		if !isAcq {
			return true
		}
		// Only consider method calls on lock-ish receivers (named type
		// with a matching release method), not arbitrary same-name funcs.
		if _, _, isMethod := pass.methodCall(call); !isMethod {
			return true
		}
		recv := exprString(sel.X)
		if recv == "" {
			return true
		}
		acquires = append(acquires, acquire{stmt: es, call: call, recv: recv, rels: rels})
		return true
	})

	for _, acq := range acquires {
		if deferredReleaseFollows(pass, fd, acq.stmt, acq.recv, acq.rels) {
			continue
		}
		// Exit paths to validate: returns inside the acquire's own region
		// subtree (checked individually for a dominating release), and
		// the region's fall-through (which also stands in for any later
		// code outside it). A region is the innermost block, switch case,
		// or select clause holding the acquire.
		region := enclosingRegion(fd, acq.stmt)
		if region == nil {
			continue
		}
		bad := 0
		ast.Inspect(region, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() <= acq.stmt.Pos() {
				return true
			}
			if !releaseDominates(pass, fd, acq.stmt, ret, acq.recv, acq.rels) {
				bad++
				pass.Reportf(ret.Pos(), "return may leave %s held: %s.%s at %s has no dominating %s before this exit (or use defer)",
					acq.recv, acq.recv, lockName(acq.call), pass.Fset.Position(acq.stmt.Pos()), acq.rels[0])
			}
			return true
		})
		if bad == 0 && !fallThroughReleased(pass, fd, acq.stmt, acq.recv, acq.rels) {
			pass.Reportf(acq.stmt.Pos(), "%s.%s is not released on the path falling out of its block (no %s after the acquire)",
				acq.recv, lockName(acq.call), acq.rels[0])
		}
	}
}

func lockName(call *ast.CallExpr) string {
	return call.Fun.(*ast.SelectorExpr).Sel.Name
}

// isReleaseStmt reports whether stmt is recv.Release(...) (or a defer
// of it) for one of the given release names.
func isReleaseStmt(stmt ast.Stmt, recv string, rels []string) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || exprString(sel.X) != recv {
		return false
	}
	for _, r := range rels {
		if sel.Sel.Name == r {
			return true
		}
	}
	return false
}

// deferredReleaseFollows reports whether a defer of the matching
// release appears in the statements immediately after the acquire in
// the same region (the idiomatic mu.Lock(); defer mu.Unlock() pair, in
// any of the next few statements as long as no return intervenes).
func deferredReleaseFollows(pass *Pass, fd *ast.FuncDecl, acqStmt ast.Stmt, recv string, rels []string) bool {
	region := enclosingRegion(fd, acqStmt)
	if region == nil {
		return false
	}
	seen := false
	for _, s := range stmtList(region) {
		if s == acqStmt {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		if ds, ok := s.(*ast.DeferStmt); ok && isReleaseStmt(ds, recv, rels) {
			return true
		}
		if _, isRet := s.(*ast.ReturnStmt); isRet {
			return false
		}
	}
	return false
}

// releaseDominates reports whether a release of recv lexically
// dominates ret: it appears as a direct prior statement on ret's own
// block path (prior siblings at each enclosing block level), after the
// acquire. Releases nested inside control flow of a prior sibling do
// not count — they may be on a different path.
func releaseDominates(pass *Pass, fd *ast.FuncDecl, acqStmt ast.Stmt, ret ast.Stmt, recv string, rels []string) bool {
	chain := pathTo(fd.Body, ret)
	for _, n := range chain {
		for _, s := range stmtList(n) {
			if s.Pos() >= ret.Pos() {
				break
			}
			if s.Pos() > acqStmt.Pos() && isReleaseStmt(s, recv, rels) {
				return true
			}
		}
	}
	return false
}

// fallThroughReleased reports whether the function's implicit final
// exit is covered: a release appears in the acquire's own region after
// the acquire, or the region provably cannot fall through (ends in an
// infinite loop or return — in which case the per-return checks above
// already covered every exit).
func fallThroughReleased(pass *Pass, fd *ast.FuncDecl, acqStmt ast.Stmt, recv string, rels []string) bool {
	region := enclosingRegion(fd, acqStmt)
	if region == nil {
		return true
	}
	list := stmtList(region)
	after := false
	for _, s := range list {
		if s == acqStmt {
			after = true
			continue
		}
		if after && isReleaseStmt(s, recv, rels) {
			return true
		}
	}
	// No textual release after the acquire in its own region: accept only
	// when the region's last statement cannot complete normally.
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true // covered by the per-return dominance checks
	case *ast.ForStmt:
		return last.Cond == nil // for {} never falls through
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// enclosingRegion returns the innermost block, switch case, or select
// clause containing stmt.
func enclosingRegion(fd *ast.FuncDecl, stmt ast.Stmt) ast.Node {
	chain := pathTo(fd.Body, stmt)
	var region ast.Node
	for _, n := range chain {
		if stmtList(n) != nil {
			region = n
		}
	}
	return region
}

// isIntLiteral reports whether e is the given integer literal.
func isIntLiteral(e ast.Expr, lit string) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == lit
}
