package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// RunGolden loads the single testdata package at dir, runs the analyzer
// over it, and compares the findings against the `// want "substring"`
// expectation comments embedded in the sources — the same golden-file
// convention as x/tools analysistest, substring-matched.
//
// A line may carry several expectations: // want "a" "b". Every
// expectation must be matched by a diagnostic on its line, and every
// diagnostic must be claimed by an expectation; leftovers on either
// side are returned as errors.
func RunGolden(a *Analyzer, dir string) []error {
	pkg, err := LoadDir(dir)
	if err != nil {
		return []error{err}
	}
	diags, err := Run(a, pkg)
	if err != nil {
		return []error{err}
	}
	wants, err := collectWants(pkg)
	if err != nil {
		return []error{err}
	}

	var errs []error
	for _, d := range diags {
		key := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if !w.used && strings.Contains(d.Message, w.substr) {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Errorf("%s: unexpected diagnostic: %s", posString(d.Pos), d.Message))
		}
	}
	var unmet []string
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				unmet = append(unmet, fmt.Sprintf("%s:%d: no diagnostic matching %q", filepath.Base(key.file), key.line, w.substr))
			}
		}
	}
	sort.Strings(unmet)
	for _, m := range unmet {
		errs = append(errs, fmt.Errorf("%s", m))
	}
	return errs
}

type wantExpectation struct {
	substr string
	used   bool
}

var wantRe = regexp.MustCompile(`// want((?: "(?:[^"\\]|\\.)*")+)`)
var wantStrRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants extracts // want "..." expectations keyed by file:line.
func collectWants(pkg *Package) (map[lineKey][]wantExpectation, error) {
	wants := make(map[lineKey][]wantExpectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						return nil, fmt.Errorf("%s: malformed want comment: %s", posString(pkg.Fset.Position(c.Pos())), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, s := range wantStrRe.FindAllStringSubmatch(m[1], -1) {
					wants[key] = append(wants[key], wantExpectation{substr: s[1]})
				}
			}
		}
	}
	return wants, nil
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}
