package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Chargecheck enforces the PGAS cost discipline at the heart of the
// reproduction: in internal/core, every touch of another PE's affinity
// state — the per-thread stack structs reached through a run's `stacks`
// slice: steal pools, workAvail words, request words, response slots —
// must be paid for through the latency model before it happens, via
// Domain.ChargeRef / ChargeBulk / ChargeLockRTT or a pgas Lock
// Acquire (which charges internally). An uncharged remote reference
// compiles and runs fine, but silently deflates the simulated cost of
// the protocol — the exact quantity the paper's figures measure.
//
// Mechanics: the check runs inside methods whose receiver struct has a
// `me` field (a PE worker context; setup code that builds the stacks
// slice single-threaded has no PE identity and is exempt). Indexing
// the stacks slice with anything other than the worker's own `me` (or
// through a helper like stack(), which indexes with me) produces a
// *remote handle*; dereferencing that handle — selecting a field or
// calling a method through it — is a remote access and must be
// lexically dominated by a charge call: a Charge* / Acquire statement
// among the prior statements on the access's own block path. Binding
// the handle to a variable is free (taking a pointer is not a
// reference); an access that is itself part of a charging call (e.g.
// vs.lk.Acquire(me)) is its own payment.
//
// Lexical dominance is an approximation of real dominance: a charge in
// a sibling branch does not count, a charge earlier in the same
// straight-line path does. It accepts the repo's protocol code as
// written and catches the regression that matters — a probe, service
// write, or transfer added without its ChargeRef/ChargeBulk.
var Chargecheck = &Analyzer{
	Name:  "chargecheck",
	Doc:   "remote affinity-state accesses in internal/core must be dominated by a latency-model charge",
	Paths: []string{"internal/core"},
	Run:   runChargecheck,
}

// chargeMethods are the Domain methods that pay for a remote
// reference, plus the lock operations that charge internally.
var chargeMethods = map[string]string{
	"ChargeRef":     "Domain",
	"ChargeBulk":    "Domain",
	"ChargeLockRTT": "Domain",
	"Acquire":       "Lock",
	"Release":       "Lock",
}

func runChargecheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := workerRecv(pass, fd)
			if recv == nil {
				continue
			}
			checkCharges(pass, fd, recv.Name)
		}
	}
	return nil
}

// workerRecv returns the receiver identifier when fd is a method on a
// worker context — a struct type with a `me` field, i.e. code that runs
// with a PE identity — and nil otherwise (plain functions and the
// single-threaded setup methods are exempt).
func workerRecv(pass *Pass, fd *ast.FuncDecl) *ast.Ident {
	r := recvIdent(fd)
	if r == nil {
		return nil
	}
	obj := pass.Info.Defs[r]
	if obj == nil {
		return nil
	}
	st, ok := deref(obj.Type()).Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "me" {
			return r
		}
	}
	return nil
}

func checkCharges(pass *Pass, fd *ast.FuncDecl, recvName string) {
	// Remote handles: variables bound to stacks[i] with a non-self
	// index, identified by their declaring ident object.
	remoteVars := make(map[string]bool) // variable name -> remote

	isSelfIndex := func(idx ast.Expr) bool {
		switch idx := idx.(type) {
		case *ast.Ident:
			return idx.Name == "me"
		case *ast.SelectorExpr:
			return idx.Sel.Name == "me"
		}
		return false
	}

	// stacksIndex reports whether e is an index into a field named
	// "stacks" and whether the index is the worker's own id.
	stacksIndex := func(e ast.Expr) (isStacks, self bool) {
		ie, ok := e.(*ast.IndexExpr)
		if !ok {
			return false, false
		}
		switch x := ie.X.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name != "stacks" {
				return false, false
			}
		case *ast.Ident:
			if x.Name != "stacks" {
				return false, false
			}
		default:
			return false, false
		}
		return true, isSelfIndex(ie.Index)
	}

	// Pass 1: collect remote handle bindings (vs := r.stacks[v]).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if isStacks, self := stacksIndex(rhs); isStacks && !self {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					remoteVars[id.Name] = true
				}
			}
		}
		return true
	})

	// chargeCallRanges: source ranges of charging calls, so an access
	// inside its own charge (vs.lk.Acquire(me)) is exempt, and charge
	// statements can be recognized for dominance.
	isChargeCall := func(call *ast.CallExpr) bool {
		recv, method, ok := pass.methodCall(call)
		if !ok {
			return false
		}
		want, isCharge := chargeMethods[method]
		return isCharge && recv == want
	}
	var chargeRanges [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isChargeCall(call) {
			chargeRanges = append(chargeRanges, [2]token.Pos{call.Pos(), call.End()})
		}
		return true
	})
	inChargeCall := func(pos token.Pos) bool {
		for _, r := range chargeRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	// stmtContainsCharge: does the statement subtree contain a charge
	// call (used for dominance over prior path statements)?
	stmtCharges := func(s ast.Stmt) bool {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isChargeCall(call) {
				found = true
			}
			return !found
		})
		return found
	}

	// dominatedByCharge: a charge call appears among the statements
	// lexically preceding the node on its own block path.
	dominatedByCharge := func(target ast.Node) bool {
		chain := pathTo(fd.Body, target)
		for _, n := range chain {
			for _, s := range stmtList(n) {
				if s.Pos() >= target.Pos() {
					break
				}
				if stmtCharges(s) {
					return true
				}
			}
		}
		// Control-flow headers on the path (if init/cond, for init)
		// execute before the body: count their charges too.
		for _, n := range chain {
			switch h := n.(type) {
			case *ast.IfStmt:
				if h.Body.Pos() <= target.Pos() || (h.Else != nil && h.Else.Pos() <= target.Pos()) {
					if (h.Init != nil && stmtCharges(h.Init)) || exprCharges(h.Cond, isChargeCall) {
						return true
					}
				}
			case *ast.ForStmt:
				if h.Body.Pos() <= target.Pos() && h.Init != nil && stmtCharges(h.Init) {
					return true
				}
			}
		}
		return false
	}

	// Pass 2: find remote accesses and validate dominance.
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "uncharged remote reference: %s touches another PE's affinity state with no dominating Domain.ChargeRef/ChargeBulk/ChargeLockRTT or pgas Lock acquire on this path — the latency model never sees this access", what)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Direct form: r.stacks[v].field...
		if isStacks, self := stacksIndex(sel.X); isStacks {
			if !self && !inChargeCall(sel.Pos()) && !dominatedByCharge(outermostStmtExpr(fd, sel)) {
				report(sel.Pos(), exprString(sel))
			}
			return true
		}
		// Handle form: vs.field... where vs is a remote handle.
		if id, isIdent := sel.X.(*ast.Ident); isIdent && remoteVars[id.Name] {
			if !inChargeCall(sel.Pos()) && !dominatedByCharge(outermostStmtExpr(fd, sel)) {
				report(sel.Pos(), exprString(sel))
			}
		}
		return true
	})
}

// exprCharges reports whether an expression subtree contains a charge
// call.
func exprCharges(e ast.Expr, isChargeCall func(*ast.CallExpr) bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isChargeCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// outermostStmtExpr returns the outermost statement containing the
// expression, so dominance is evaluated at statement granularity.
func outermostStmtExpr(fd *ast.FuncDecl, e ast.Expr) ast.Node {
	chain := pathTo(fd.Body, e)
	// The last statement on the chain before e itself is the innermost
	// statement; dominance walks every enclosing block anyway, so any
	// enclosing statement works. Use the innermost statement.
	var stmt ast.Node = e
	for _, n := range chain {
		if _, ok := n.(ast.Stmt); ok {
			stmt = n
		}
	}
	return stmt
}
