package lint

import (
	"go/ast"
	"go/types"
)

// Detcheck enforces virtual-time determinism in the simulator and the
// algorithm kernels: a run must be an exact function of (tree spec,
// algorithm, machine profile, seed), which is what the byte-identical
// DES differential tests and the cross-implementation count tests pin.
//
// Banned inside internal/des, internal/core, internal/uts, and
// internal/policy (the controllers must be clockless — they consume
// caller-supplied timestamps so the DES variant stays deterministic):
//
//   - time.Now — wall-clock reads. Exception: feeding a stats.Thread
//     wall timer (Switch / StartTimers / StopTimers) directly, since
//     those only time the real-time run for reporting and never steer
//     a scheduling or protocol decision.
//   - package-level math/rand state (rand.Intn, rand.Float64, ...).
//     Constructing explicitly seeded generators (rand.New,
//     rand.NewSource, rand.NewZipf) is allowed.
//   - ranging over a map where iteration order is observable — Go
//     randomizes it per run.
var Detcheck = &Analyzer{
	Name: "detcheck",
	Doc:  "forbid wall-clock reads, global math/rand state, and map-order iteration in the deterministic packages",
	Paths: []string{
		"internal/des", "internal/core", "internal/uts", "internal/policy",
	},
	Run: runDetcheck,
}

// statsTimerMethods are the wall-clock reporting sinks a time.Now
// result may flow into directly.
var statsTimerMethods = map[string]bool{
	"Switch": true, "StartTimers": true, "StopTimers": true,
}

// seededConstructors are the math/rand functions that build an
// explicitly-seeded generator rather than touching global state.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDetcheck(pass *Pass) error {
	// Collect the time.Now calls that appear as direct arguments of a
	// stats timer call; those are exempt.
	allowedNow := make(map[*ast.CallExpr]bool)
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, isMethod := pass.methodCall(call)
		if !isMethod || recv != "Thread" || !statsTimerMethods[method] {
			return true
		}
		for _, arg := range call.Args {
			if ac, isCall := arg.(*ast.CallExpr); isCall {
				if path, name, isFn := pass.pkgFuncCall(ac); isFn && path == "time" && name == "Now" {
					allowedNow[ac] = true
				}
			}
		}
		return true
	})

	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			path, name, ok := pass.pkgFuncCall(n)
			if !ok {
				return true
			}
			if path == "time" && name == "Now" && !allowedNow[n] {
				pass.Reportf(n.Pos(), "time.Now in a deterministic package: virtual-time code must not read the wall clock (use the DES clock or charge the cost model)")
			}
			if (path == "math/rand" || path == "math/rand/v2") && !seededConstructors[name] {
				pass.Reportf(n.Pos(), "global math/rand state (rand.%s) in a deterministic package: draw from an explicitly seeded generator (internal/rng or rand.New)", name)
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration order is randomized per run: ranging over a map in a deterministic package feeds nondeterminism into results (iterate a sorted key slice instead)")
				}
			}
		}
		return true
	})
	return nil
}
