package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc checks functions annotated with a //uts:noalloc doc-comment
// line for constructs that heap-allocate or box. The annotated set is
// the repo's measured zero-alloc hot paths — the SHA-1 spawn kernel,
// the DES dispatch/heap core, the obs record path, and the msg inbox
// ring — whose 0 allocs/op benchmarks are part of the paper numbers.
//
// The check is a conservative syntactic/type approximation of escape
// analysis, not a reimplementation of it: it flags constructs that
// *can* allocate. Amortized or provably-stack cases (an append into a
// recycled backing array, say) are silenced with //uts:ok noalloc and a
// justification, which keeps each exception visible in the diff that
// introduces it. Arguments of panic calls are exempt — a panicking hot
// path is already off the measured path.
//
// Flagged: new, make, append, &composite{}, slice/map/func literals,
// interface boxing (concrete value assigned/passed/returned as an
// interface), string concatenation and string<->[]byte conversions,
// calls that spread one or more operands into a variadic parameter,
// go statements, and deferred function literals.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //uts:noalloc must not contain allocating or boxing constructs",
	Run:  runNoalloc,
}

const noallocDirective = "//uts:noalloc"

func runNoalloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasFuncComment(fd, noallocDirective) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil
}

func checkNoalloc(pass *Pass, fd *ast.FuncDecl) {
	// Positions inside panic(...) arguments are exempt: the panic
	// itself leaves the measured path.
	var panicRanges [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					panicRanges = append(panicRanges, [2]token.Pos{call.Pos(), call.End()})
				}
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !inPanic(pos) {
			pass.Reportf(pos, "//uts:noalloc "+fd.Name.Name+": "+format, args...)
		}
	}

	sig, _ := pass.Info.Defs[fd.Name].Type().(*types.Signature)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoallocCall(pass, n, report)
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal may allocate its closure")
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			if _, isLit := n.Call.Fun.(*ast.FuncLit); isLit {
				report(n.Pos(), "deferred function literal may allocate")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypeOf(n.X); t != nil {
					if b, isBasic := t.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(pass, pass.TypeOf(n.Lhs[i]), rhs, report)
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					checkBoxing(pass, sig.Results().At(i).Type(), res, report)
				}
			}
		}
		return true
	})
}

// checkNoallocCall flags allocating call forms: new/make/append
// builtins, string<->[]byte/[]rune conversions, and calls spreading
// arguments into a variadic parameter.
func checkNoallocCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new":
				report(call.Pos(), "new allocates")
			case "make":
				report(call.Pos(), "make allocates")
			case "append":
				report(call.Pos(), "append may grow the backing array")
			}
			return
		}
	}
	// Conversion? (CallExpr whose Fun names a type.)
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypeOf(call.Args[0])
		if isStringBytesConv(to, from) {
			report(call.Pos(), "string/byte-slice conversion copies and allocates")
		}
		checkBoxing(pass, to, call.Args[0], report)
		return
	}
	// Ordinary call: boxing into interface parameters, and variadic
	// argument slices.
	sigT := pass.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				pt = params.At(params.Len() - 1).Type() // passing slice as-is
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, pt, arg, report)
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		report(call.Pos(), "call spreads %d operand(s) into a variadic parameter, allocating the argument slice", len(call.Args)-params.Len()+1)
	}
}

// checkBoxing flags e when its concrete value would be boxed into an
// interface-typed destination.
func checkBoxing(pass *Pass, dst types.Type, e ast.Expr, report func(token.Pos, string, ...any)) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if _, alreadyIface := tv.Type.Underlying().(*types.Interface); alreadyIface {
		return
	}
	if tv.IsNil() {
		return
	}
	// Pointers and channels box without allocating the payload, but the
	// eface/iface pair itself may still escape; keep the check strict
	// and let call sites justify with //uts:ok noalloc if needed.
	report(e.Pos(), "value of concrete type %s boxed into interface %s", tv.Type, dst)
}

// isStringBytesConv reports string <-> []byte/[]rune conversions.
func isStringBytesConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}
