// Package repro's root test file holds one testing.B benchmark per paper
// table/figure (see DESIGN.md's per-experiment index), plus micro-benches
// of the load-balancing hot paths. The figure benchmarks run their
// experiment drivers at Smoke scale so `go test -bench=.` stays fast;
// regenerate publication-scale numbers with `go run ./cmd/uts-bench
// -scale full`.
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/stats"
	"repro/internal/uts"
)

// benchExperiment runs one experiment driver per iteration and reports
// the row count so regressions to zero output are visible.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := bench.ByID(id)
	if e == nil {
		b.Fatalf("experiment %s not found", id)
	}
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(bench.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkE1SequentialRate regenerates the Section 4.1 sequential table.
func BenchmarkE1SequentialRate(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Fig4ChunkSweep regenerates Figure 4 (chunk-size sweep).
func BenchmarkE2Fig4ChunkSweep(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Fig5Scaling regenerates Figure 5 (processor-count scaling).
func BenchmarkE3Fig5Scaling(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Fig6SharedMem regenerates Figure 6 (Altix shared memory).
func BenchmarkE4Fig6SharedMem(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Refinements regenerates the Section 4.2 refinement stack.
func BenchmarkE5Refinements(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Efficiency regenerates the Sections 1/6.2 operational profile.
func BenchmarkE6Efficiency(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7SweetSpot regenerates the Section 4.2.1 sweet-spot table.
func BenchmarkE7SweetSpot(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkA1StealHalf regenerates the rapid-diffusion ablation.
func BenchmarkA1StealHalf(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2PollInterval regenerates the mpi-ws polling-interval ablation.
func BenchmarkA2PollInterval(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkA3Lockless regenerates the lock-guarded vs lock-less ablation.
func BenchmarkA3Lockless(b *testing.B) { benchExperiment(b, "A3") }

// --- micro-benchmarks of the hot paths -------------------------------

// BenchmarkSequentialSearch measures the raw sequential exploration rate
// (the denominator of every speedup in the paper).
func BenchmarkSequentialSearch(b *testing.B) {
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		nodes += uts.SearchSequential(&uts.BenchTiny).Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
}

// BenchmarkRealRun measures end-to-end real concurrent runs of each
// implementation at 4 goroutine threads on the tiny tree.
func BenchmarkRealRun(b *testing.B) {
	for _, alg := range core.Algorithms {
		b.Run(string(alg), func(b *testing.B) {
			b.ReportAllocs()
			var steals int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(&uts.BenchTiny, core.Options{Algorithm: alg, Threads: 4, Chunk: 8})
				if err != nil {
					b.Fatal(err)
				}
				if res.Nodes() != 3337 {
					b.Fatalf("count mismatch: %d", res.Nodes())
				}
				steals += res.Sum(func(t *stats.Thread) int64 { return t.Steals })
			}
			b.ReportMetric(float64(steals)/float64(b.N), "steals/run")
		})
	}
}

// BenchmarkTracerDisabled and BenchmarkTracerEnabled bracket the cost of
// the internal/obs event tracer on a real concurrent run. Disabled means
// the workers hold nil lanes and every recording call is one nil check —
// the difference against pre-tracer builds must stay under 2% (compare
// BenchmarkSequentialSearch against results/BENCH_PR1.json). Enabled
// shows the full recording cost for scale: the protocol path only, never
// the per-node loop.
func BenchmarkTracerDisabled(b *testing.B) { benchTracedRun(b, false) }
func BenchmarkTracerEnabled(b *testing.B)  { benchTracedRun(b, true) }

func benchTracedRun(b *testing.B, traced bool) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		opt := core.Options{Algorithm: core.UPCDistMem, Threads: 4, Chunk: 8}
		if traced {
			opt.Tracer = obs.New(4, 0)
		}
		res, err := core.Run(&uts.BenchTiny, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Nodes() != 3337 {
			b.Fatalf("count mismatch: %d", res.Nodes())
		}
		if traced {
			events += res.Obs.Events
		}
	}
	if traced {
		b.ReportMetric(float64(events)/float64(b.N), "events/run")
	}
}

// BenchmarkLaneRec measures the raw cost of recording one event into a
// lane's ring — the per-protocol-operation price of an enabled tracer.
func BenchmarkLaneRec(b *testing.B) {
	tr := obs.New(1, 0)
	l := tr.Lane(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Rec(obs.KindProbeResult, 1, int64(i))
	}
}

// BenchmarkSimRun measures simulator throughput (virtual PEs simulated
// per wall second matters for how big a figure run is affordable).
func BenchmarkSimRun(b *testing.B) {
	for _, alg := range core.Algorithms {
		b.Run(string(alg), func(b *testing.B) {
			b.ReportAllocs()
			var eff float64
			for i := 0; i < b.N; i++ {
				res, err := des.Run(&uts.BenchTiny, des.Config{Algorithm: alg, PEs: 16, Chunk: 8, Model: &pgas.KittyHawk})
				if err != nil {
					b.Fatal(err)
				}
				eff = res.Efficiency()
			}
			b.ReportMetric(100*eff, "virt-eff-%")
		})
	}
}
