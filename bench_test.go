// Package repro's root test file holds one testing.B benchmark per paper
// table/figure (see DESIGN.md's per-experiment index), plus micro-benches
// of the load-balancing hot paths. The figure benchmarks run their
// experiment drivers at Smoke scale so `go test -bench=.` stays fast;
// regenerate publication-scale numbers with `go run ./cmd/uts-bench
// -scale full`.
package repro

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uts"
)

// benchExperiment runs one experiment driver per iteration and reports
// the row count so regressions to zero output are visible.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := bench.ByID(id)
	if e == nil {
		b.Fatalf("experiment %s not found", id)
	}
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(bench.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkE1SequentialRate regenerates the Section 4.1 sequential table.
func BenchmarkE1SequentialRate(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Fig4ChunkSweep regenerates Figure 4 (chunk-size sweep).
func BenchmarkE2Fig4ChunkSweep(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Fig5Scaling regenerates Figure 5 (processor-count scaling).
func BenchmarkE3Fig5Scaling(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Fig6SharedMem regenerates Figure 6 (Altix shared memory).
func BenchmarkE4Fig6SharedMem(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Refinements regenerates the Section 4.2 refinement stack.
func BenchmarkE5Refinements(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Efficiency regenerates the Sections 1/6.2 operational profile.
func BenchmarkE6Efficiency(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7SweetSpot regenerates the Section 4.2.1 sweet-spot table.
func BenchmarkE7SweetSpot(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkA1StealHalf regenerates the rapid-diffusion ablation.
func BenchmarkA1StealHalf(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2PollInterval regenerates the mpi-ws polling-interval ablation.
func BenchmarkA2PollInterval(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkA3Lockless regenerates the lock-guarded vs lock-less ablation.
func BenchmarkA3Lockless(b *testing.B) { benchExperiment(b, "A3") }

// --- micro-benchmarks of the hot paths -------------------------------

// BenchmarkSequentialSearch measures the raw sequential exploration rate
// (the denominator of every speedup in the paper).
func BenchmarkSequentialSearch(b *testing.B) {
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		nodes += uts.SearchSequential(&uts.BenchTiny).Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
}

// BenchmarkRealRun measures end-to-end real concurrent runs of each
// implementation at 4 goroutine threads on the tiny tree.
func BenchmarkRealRun(b *testing.B) {
	for _, alg := range append(append([]core.Algorithm{}, core.Algorithms...), core.UPCTermRelaxed) {
		b.Run(string(alg), func(b *testing.B) {
			b.ReportAllocs()
			var steals int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(&uts.BenchTiny, core.Options{Algorithm: alg, Threads: 4, Chunk: 8})
				if err != nil {
					b.Fatal(err)
				}
				if res.Nodes() != 3337 {
					b.Fatalf("count mismatch: %d", res.Nodes())
				}
				steals += res.Sum(func(t *stats.Thread) int64 { return t.Steals })
			}
			b.ReportMetric(float64(steals)/float64(b.N), "steals/run")
		})
	}
}

// BenchmarkTracerDisabled and BenchmarkTracerEnabled bracket the cost of
// the internal/obs event tracer on a real concurrent run. Disabled means
// the workers hold nil lanes and every recording call is one nil check —
// the difference against pre-tracer builds must stay under 2% (compare
// BenchmarkSequentialSearch against results/BENCH_PR1.json). Enabled
// shows the full recording cost for scale: the protocol path only, never
// the per-node loop.
func BenchmarkTracerDisabled(b *testing.B) { benchTracedRun(b, false) }
func BenchmarkTracerEnabled(b *testing.B)  { benchTracedRun(b, true) }

func benchTracedRun(b *testing.B, traced bool) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		opt := core.Options{Algorithm: core.UPCDistMem, Threads: 4, Chunk: 8}
		if traced {
			opt.Tracer = obs.New(4, 0)
		}
		res, err := core.Run(&uts.BenchTiny, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Nodes() != 3337 {
			b.Fatalf("count mismatch: %d", res.Nodes())
		}
		if traced {
			events += res.Obs.Events
		}
	}
	if traced {
		b.ReportMetric(float64(events)/float64(b.N), "events/run")
	}
}

// BenchmarkSamplerDetached and BenchmarkSamplerAttached bracket the cost
// of the live telemetry read side on a traced run: the attached variant
// adds a Sampler folding at millisecond cadence from its own goroutine.
// The pair is the measured form of the <2% overhead gate
// (TestSamplerOverheadGate, OBS_BENCH_GATE=1): the sampler reads only the
// rings' seqlock side, so the two must be within noise of each other.
func BenchmarkSamplerDetached(b *testing.B) { benchSampledRun(b, false) }
func BenchmarkSamplerAttached(b *testing.B) { benchSampledRun(b, true) }

func benchSampledRun(b *testing.B, sampled bool) {
	b.ReportAllocs()
	var folded int64
	for i := 0; i < b.N; i++ {
		tr := obs.New(4, 0)
		var s *obs.Sampler
		if sampled {
			s = obs.NewSampler(tr)
			s.Start(time.Millisecond)
		}
		res, err := core.Run(&uts.BenchTiny, core.Options{Algorithm: core.UPCDistMem, Threads: 4, Chunk: 8, Tracer: tr})
		if err != nil {
			b.Fatal(err)
		}
		s.Stop()
		if res.Nodes() != 3337 {
			b.Fatalf("count mismatch: %d", res.Nodes())
		}
		if sampled {
			folded += s.Stats().Events
		}
	}
	if sampled {
		b.ReportMetric(float64(folded)/float64(b.N), "events/run")
	}
}

// BenchmarkLaneRec measures the raw cost of recording one event into a
// lane's ring — the per-protocol-operation price of an enabled tracer.
func BenchmarkLaneRec(b *testing.B) {
	tr := obs.New(1, 0)
	l := tr.Lane(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Rec(obs.KindProbeResult, 1, int64(i))
	}
}

// --- owner-path microbenchmarks (PR 8 win condition) -----------------

// sinkChunk keeps the retracted chunk observable so the compiler cannot
// elide the owner-path loop bodies.
var sinkChunk []uts.Node

// benchOwnerChunk builds the 16-node chunk both owner paths cycle.
func benchOwnerChunk() []uts.Node {
	c := make([]uts.Node, 16)
	for i := range c {
		c[i].Height = int32(i)
	}
	return c
}

// ownerPathDepth is the burst size both owner-path benchmarks cycle: each
// benchmark iteration performs ownerPathDepth releases followed by
// ownerPathDepth reacquires, the shape of an owner riding the 2k release
// threshold and then draining its surplus back. Both paths do identical
// logical work per iteration, so their ns/op are directly comparable.
const ownerPathDepth = 8

// ownerPathBallast pins 64 MiB of live heap for the duration of an
// owner-path benchmark. A real run carries megabytes of live tree, deque
// and trace state, against which the relaxed ledger's ~32 B/publish churn
// is collector noise; in a bare benchmark heap the same churn re-triggers
// the collector hundreds of times per second and the loop measures mark
// assists instead of protocol cost. Both benchmarks hold the identical
// ballast (the lock path allocates nothing, so it is unaffected either
// way), keeping the comparison symmetric. Callers defer the returned
// release.
func ownerPathBallast() func() {
	ballast := make([]byte, 64<<20)
	return func() { runtime.KeepAlive(ballast) }
}

// BenchmarkOwnerPathLock measures the lock-based owner path exactly as
// sharedWorker.release/reacquire perform it: lock round trip, pool
// append, workAvail store, unlock — per release and again per reacquire.
func BenchmarkOwnerPathLock(b *testing.B) {
	dom, err := pgas.NewDomain(1, &pgas.SharedMemory)
	if err != nil {
		b.Fatal(err)
	}
	lk := dom.NewLock(0)
	var pool stack.Pool
	var workAvail atomic.Int32
	chunk := benchOwnerChunk()
	defer ownerPathBallast()()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < ownerPathDepth; j++ {
			lk.Acquire(0)
			pool.Put(chunk)
			workAvail.Store(int32(pool.Len()))
			lk.Release(0)
		}
		for j := 0; j < ownerPathDepth; j++ {
			lk.Acquire(0)
			c, ok := pool.TakeNewest()
			if ok {
				workAvail.Store(int32(pool.Len()))
			}
			lk.Release(0)
			if !ok {
				b.Fatal("pool drained")
			}
			sinkChunk = c
		}
	}
}

// BenchmarkOwnerPathRelaxed measures the same burst through the
// fence-free ring: one atomic slot store per publish, one ledger
// compare-and-swap per retract, and workAvail written only on the
// empty↔nonempty transitions — two stores per burst instead of two per
// operation, exactly the transition-only policy releaseRelaxed and
// reacquireRelaxed implement. The ≥2x gate (TestRelaxedOwnerPathGate,
// RELAXED_BENCH_GATE=1) compares this against BenchmarkOwnerPathLock.
func BenchmarkOwnerPathRelaxed(b *testing.B) {
	ring := stack.NewRelaxed(0)
	var workAvail atomic.Int32
	chunk := benchOwnerChunk()
	defer ownerPathBallast()()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < ownerPathDepth; j++ {
			if _, ok := ring.Publish(chunk); !ok {
				b.Fatal("ring full")
			}
			if ring.Live() == 1 {
				workAvail.Store(1)
			}
		}
		for j := 0; j < ownerPathDepth; j++ {
			c, ok := ring.Retract()
			if !ok {
				b.Fatal("ring drained")
			}
			if ring.Live() == 0 {
				workAvail.Store(0)
			}
			sinkChunk = c
		}
	}
}

// TestRelaxedOwnerPathGate is the CI speedup gate for the PR 8 win
// condition: the relaxed owner path must run at least 2x the lock-based
// path's throughput. Opt-in via RELAXED_BENCH_GATE=1 (benchmark-grade
// timing has no place in a default test run) and self-skipping below 4
// cores, where a loaded runner's scheduling noise swamps the measurement.
func TestRelaxedOwnerPathGate(t *testing.T) {
	if os.Getenv("RELAXED_BENCH_GATE") == "" {
		t.Skip("set RELAXED_BENCH_GATE=1 to run the owner-path speedup gate")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores for stable timing, have %d", runtime.NumCPU())
	}
	// Min of three runs per side: the minimum is the least-interference
	// estimate, so a background hiccup during any single run cannot fail
	// (or pass) the gate on its own.
	best := func(bench func(*testing.B)) int64 {
		m := int64(0)
		for i := 0; i < 3; i++ {
			if ns := testing.Benchmark(bench).NsPerOp(); ns > 0 && (m == 0 || ns < m) {
				m = ns
			}
		}
		return m
	}
	lock := best(BenchmarkOwnerPathLock)
	relaxed := best(BenchmarkOwnerPathRelaxed)
	if lock <= 0 || relaxed <= 0 {
		t.Fatalf("degenerate timings: lock %dns relaxed %dns", lock, relaxed)
	}
	ratio := float64(lock) / float64(relaxed)
	t.Logf("owner path: lock %dns/op, relaxed %dns/op, speedup %.2fx", lock, relaxed, ratio)
	if ratio < 2.0 {
		t.Errorf("relaxed owner path speedup %.2fx < 2x gate (lock %dns/op, relaxed %dns/op)",
			ratio, lock, relaxed)
	}
}

// BenchmarkSimRun measures simulator throughput (virtual PEs simulated
// per wall second matters for how big a figure run is affordable).
func BenchmarkSimRun(b *testing.B) {
	for _, alg := range core.Algorithms {
		b.Run(string(alg), func(b *testing.B) {
			b.ReportAllocs()
			var eff float64
			for i := 0; i < b.N; i++ {
				res, err := des.Run(&uts.BenchTiny, des.Config{Algorithm: alg, PEs: 16, Chunk: 8, Model: &pgas.KittyHawk})
				if err != nil {
					b.Fatal(err)
				}
				eff = res.Efficiency()
			}
			b.ReportMetric(100*eff, "virt-eff-%")
		})
	}
}

// BenchmarkSimEngine compares the batched DES engine against the retained
// legacy reference on the same mid-scale configuration. Both engines
// execute identical event sequences (the differential suite proves it),
// so the events/s metric isolates pure engine overhead: heap handling,
// goroutine handoffs, and allocation.
func BenchmarkSimEngine(b *testing.B) {
	for _, engine := range []string{des.EngineBatched, des.EngineLegacy} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				_, info, err := des.RunInfo(&uts.T3Small, des.Config{
					Algorithm: core.UPCDistMem, PEs: 64, Chunk: 8,
					Model: &pgas.KittyHawk, Engine: engine,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += info.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSimSteal stresses the steal path: chunk 1 under rapid diffusion
// makes nearly every explored node a protocol interaction, so interrupt
// delivery and the lock waiter ring dominate instead of batched work.
func BenchmarkSimSteal(b *testing.B) {
	for _, engine := range []string{des.EngineBatched, des.EngineLegacy} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			var steals int64
			for i := 0; i < b.N; i++ {
				res, info, err := des.RunInfo(&uts.BenchTiny, des.Config{
					Algorithm: core.UPCTermRapdif, PEs: 16, Chunk: 1,
					Model: &pgas.KittyHawk, Engine: engine,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += info.Events
				for _, t := range res.Threads {
					steals += t.Steals
				}
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(steals)/float64(b.N), "steals/run")
		})
	}
}

// BenchmarkSimSharded measures parallel dispatch scaling of the sharded
// engine: the same mid-scale distributed-memory simulation dispatched by
// 1, 2, 4 and 8 shard goroutines. Every variant executes the bit-identical
// event schedule (TestShardedDifferential proves it), so events/s isolates
// how well conservative-lookahead synchronization converts cores into
// dispatch throughput. On a single-core runner the variants tie — compare
// across shard counts only on a machine with that many idle cores.
func BenchmarkSimSharded(b *testing.B) {
	for _, shards := range []int{0, 1, 2, 4, 8} {
		name := "batched" // shards == 0: the sequential baseline
		if shards > 0 {
			name = fmt.Sprintf("shards=%d", shards)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				_, info, err := des.RunInfo(&uts.T3Small, des.Config{
					Algorithm: core.UPCDistMem, PEs: 256, Chunk: 8,
					Model: &pgas.KittyHawk, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += info.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSimDispatch is the pure engine microbenchmark: 64 PEs burn
// interleaved 1-4ns stepped quanta with no tree or protocol work, so
// every cost is dispatch itself — heap exchange, quantum accounting, and
// (for the legacy engine) one goroutine round trip per event. This is
// the number the batched rewrite targets; BenchmarkSimEngine shows the
// same ratio diluted by the simulation's real node-expansion work.
func BenchmarkSimDispatch(b *testing.B) {
	for _, engine := range []string{des.EngineBatched, des.EngineLegacy} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			const pes = 64
			quanta := b.N/pes + 1
			var sim *des.Sim
			if engine == des.EngineLegacy {
				sim = des.NewLegacy()
			} else {
				sim = des.New()
			}
			for i := 0; i < pes; i++ {
				sim.Spawn(func(p *des.Proc) {
					n := 0
					p.AdvanceStepped(func() (time.Duration, uint8) {
						if n >= quanta {
							return 0, des.StepDone
						}
						n++
						return time.Duration(1 + (n & 3)), 0
					})
				})
			}
			if err := sim.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sim.Events())/b.Elapsed().Seconds(), "events/s")
		})
	}
}
