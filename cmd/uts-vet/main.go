// Command uts-vet runs the repo's custom analyzer suite (internal/lint):
// chargecheck, detcheck, noalloc, retrycheck, obscheck, atomiccheck,
// ordercheck, hookcheck — the invariants the paper's numbers stand on,
// which the Go type system cannot express.
//
// Three modes:
//
//	uts-vet [packages]          standalone: load, check, report
//	uts-vet -unused-suppressions [packages]   audit stale //uts:ok / //uts:plain
//	go vet -vettool=$(which uts-vet) ./...   as a go vet tool
//
// Standalone mode defaults to ./... relative to the current directory
// and exits 1 when any finding survives its //uts:ok suppressions.
//
// The -unused-suppressions audit re-runs every analyzer with
// suppression filtering disabled and reports each //uts:ok or
// //uts:plain comment whose covered lines carry no raw finding — the
// invariant it once excused no longer needs excusing, so the comment
// is stale documentation. The audit sees the same files the analyzers
// see (package GoFiles; _test.go files are not loaded), and exits 1
// when any stale suppression is found.
//
// The vettool mode speaks the cmd/go unitchecker protocol: -V=full
// prints a version fingerprint for the build cache, -flags declares no
// extra flags, and a lone *.cfg argument is a JSON config describing
// one package (file set, import map, export data) to analyze. Findings
// go to stderr as file:line:col lines with exit status 2, which go vet
// folds into its own output.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// version feeds go vet's build cache via -V=full: bump it whenever the
// analyzer suite changes behavior, or cached vet results go stale.
const version = "uts-vet version 1.1.0"

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		// cmd/go fingerprints the tool for its build cache.
		fmt.Println(version)
		return
	case len(args) == 1 && args[0] == "-flags":
		// cmd/go asks which flags the tool accepts; none beyond protocol.
		fmt.Println("[]")
		return
	case len(args) >= 1 && args[0] == "-unused-suppressions":
		os.Exit(auditSuppressions(args[1:]))
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0]))
	default:
		os.Exit(standalone(args))
	}
}

// standalone loads the requested packages (default ./...) with the go
// command and runs every applicable analyzer.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range lint.All() {
			if !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			diags, err := lint.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			for _, d := range diags {
				fmt.Println(d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "uts-vet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// auditSuppressions loads the requested packages (default ./...) and
// reports every //uts:ok / //uts:plain comment that no longer silences
// anything: the analyzers are re-run with suppression filtering off,
// and a suppression none of whose covered lines carries a raw finding
// from its analyzer is stale.
func auditSuppressions(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	stale := 0
	for _, pkg := range pkgs {
		sups := lint.Suppressions(pkg.Fset, pkg.Files)
		if len(sups) == 0 {
			continue
		}
		// Raw findings per analyzer, computed once per package.
		raw := make(map[string][]lint.Diagnostic)
		for name, a := range byName {
			if !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			diags, err := lint.Unsuppressed(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			raw[name] = diags
		}
		for _, s := range sups {
			if _, known := byName[s.Analyzer]; !known {
				fmt.Printf("%s: suppression names unknown analyzer %q: %s\n", s.Pos, s.Analyzer, s.Comment)
				stale++
				continue
			}
			used := false
			for _, d := range raw[s.Analyzer] {
				if s.Covers(d.Pos) {
					used = true
					break
				}
			}
			if !used {
				fmt.Printf("%s: stale suppression: %s silences no %s finding\n", s.Pos, s.Comment, s.Analyzer)
				stale++
			}
		}
	}
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "uts-vet: %d stale suppression(s)\n", stale)
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet.cfg the tool consumes.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by the config file,
// in-process, the way x/tools' unitchecker does. Exit codes follow go
// vet's convention: 0 clean, 1 tool error, 2 findings.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uts-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "uts-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The tool exports no analysis facts, but cmd/go requires the vetx
	// file to exist to cache the (empty) result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "uts-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency visited only for facts; we have none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "uts-vet:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := lint.NewExportImporter(fset, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "uts-vet:", err)
		return 1
	}

	pkg := &lint.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	findings := 0
	for _, a := range lint.All() {
		if !a.AppliesTo(cfg.ImportPath) {
			continue
		}
		diags, err := lint.Run(a, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uts-vet:", err)
			return 1
		}
		for _, d := range diags {
			// go vet surfaces stderr lines verbatim; the file:line:col
			// prefix lets editors jump to the finding.
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		return 2
	}
	return 0
}
