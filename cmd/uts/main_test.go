package main

import "testing"

func TestParseCustom(t *testing.T) {
	sp, err := parseCustom("binomial r=7 b0=50 m=2 q=0.45")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 7 || sp.B0 != 50 || sp.M != 2 || sp.Q != 0.45 {
		t.Errorf("parsed %+v", sp)
	}
	// Defaults apply for omitted fields.
	sp, err = parseCustom("binomial r=1")
	if err != nil {
		t.Fatal(err)
	}
	if sp.B0 != 100 || sp.M != 2 {
		t.Errorf("defaults not applied: %+v", sp)
	}
}

func TestParseCustomErrors(t *testing.T) {
	for _, in := range []string{
		"",                            // empty
		"geometric r=1",               // only binomial supported
		"binomial r",                  // missing value
		"binomial r=x",                // bad int
		"binomial q=zero",             // bad float
		"binomial nope=1",             // unknown field
		"binomial b0=2 m=2 q=0.9",     // supercritical fails validation
		"binomial r=0 b0=-5 m=2 q=.1", // negative fan-out
	} {
		if _, err := parseCustom(in); err == nil {
			t.Errorf("parseCustom(%q) accepted", in)
		}
	}
}
