// Command uts runs one parallel Unbalanced Tree Search with real
// goroutine threads (the concurrent implementations of internal/core) and
// prints a UTS-style report. For cluster-scale virtual runs use uts-sim;
// for whole figures use uts-bench.
//
// Examples:
//
//	uts -tree bench-small -alg upc-distmem -threads 8 -chunk 16
//	uts -tree bench-medium -alg mpi-ws -threads 4 -poll 16
//	uts -t 'binomial r=5 b0=100 m=2 q=0.49' -threads 2   # custom tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/policy"
	"repro/internal/uts"
)

func main() {
	tree := flag.String("tree", "bench-small", "named sample tree (see -trees)")
	custom := flag.String("t", "", "custom binomial tree: 'binomial r=SEED b0=N m=M q=Q'")
	alg := flag.String("alg", string(core.UPCDistMem), "seq, upc-sharedmem, upc-term, upc-term-rapdif, upc-term-relaxed, upc-distmem, mpi-ws")
	threads := flag.Int("threads", 4, "worker threads (goroutines)")
	chunk := flag.Int("chunk", 16, "steal granularity k (nodes)")
	adapt := flag.Bool("adapt", false, "adapt chunk/steal-half/poll per thread at runtime from steal feedback (closed-loop, bounded around -chunk/-poll)")
	poll := flag.Int("poll", 8, "mpi-ws polling interval (nodes)")
	profile := flag.String("profile", "sharedmem", "latency model: sharedmem, altix, kittyhawk, topsail")
	seed := flag.Int64("seed", 0, "probe-order seed")
	verbose := flag.Bool("verbose", false, "print the per-thread counter table")
	baseline := flag.Bool("baseline", false, "measure the sequential rate first for speedup reporting")
	trees := flag.Bool("trees", false, "list sample trees and exit")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (open in ui.perfetto.dev)")
	timeline := flag.Bool("timeline", false, "print the merged steal-protocol event timeline")
	hist := flag.Bool("hist", false, "record protocol events and fold latency histograms into the summary")
	ring := flag.Int("ring", 0, "per-thread trace ring capacity in events (0 = default)")
	live := flag.Duration("live", 0, "print a live progress line to stderr every interval (e.g. 1s; 0 = off)")
	flag.Parse()

	if *trees {
		for _, sp := range uts.SampleTrees {
			fmt.Printf("%-14s %s  (expected ~%.3g nodes)\n", sp.Name, sp.String(), sp.ExpectedSize())
		}
		return
	}

	var sp *uts.Spec
	if *custom != "" {
		parsed, err := parseCustom(*custom)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sp = parsed
	} else {
		sp = uts.ByName(*tree)
		if sp == nil {
			fmt.Fprintf(os.Stderr, "unknown tree %q (use -trees)\n", *tree)
			os.Exit(2)
		}
	}
	model, ok := pgas.Profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	opt := core.Options{
		Algorithm:    core.Algorithm(*alg),
		Threads:      *threads,
		Chunk:        *chunk,
		PollInterval: *poll,
		Model:        model,
		Seed:         *seed,
	}
	if *adapt {
		opt.Adapt = &policy.Config{}
	}
	var tracer *obs.Tracer
	if *traceOut != "" || *timeline || *hist || *live > 0 {
		tracer = obs.New(*threads, *ring)
		opt.Tracer = tracer
	}
	if *baseline {
		c := uts.SearchSequential(sp)
		opt.SeqRate = c.Rate()
		fmt.Printf("sequential baseline: %.2fM nodes/s\n", c.Rate()/1e6)
	}
	var sampler *obs.Sampler
	if *live > 0 {
		sampler = obs.NewSampler(tracer)
		sampler.OnSample(func(st obs.LiveStats) { fmt.Fprintln(os.Stderr, st.Line()) })
		sampler.Start(*live)
	}
	res, err := core.Run(sp, opt)
	sampler.Stop() // nil-safe; takes and prints the final sample
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("tree=%s alg=%s\n", sp.String(), res.Algorithm)
	fmt.Print(res.Summary())
	if *verbose {
		fmt.Print(res.PerThreadTable())
	}
	if *timeline {
		if err := obs.WriteTimeline(os.Stdout, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := obs.WriteChromeTraceFile(*traceOut, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}

// parseCustom parses 'binomial r=SEED b0=N m=M q=Q' into a spec.
func parseCustom(s string) (*uts.Spec, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 || fields[0] != "binomial" {
		return nil, fmt.Errorf("custom trees must start with 'binomial' (got %q)", s)
	}
	sp := &uts.Spec{Name: "custom", Kind: uts.Binomial, B0: 100, M: 2, Q: 0.49}
	for _, f := range fields[1:] {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad field %q", f)
		}
		switch kv[0] {
		case "r":
			v, err := strconv.ParseInt(kv[1], 10, 32)
			if err != nil {
				return nil, err
			}
			sp.Seed = int32(v)
		case "b0":
			v, err := strconv.Atoi(kv[1])
			if err != nil {
				return nil, err
			}
			sp.B0 = v
		case "m":
			v, err := strconv.Atoi(kv[1])
			if err != nil {
				return nil, err
			}
			sp.M = v
		case "q":
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return nil, err
			}
			sp.Q = v
		default:
			return nil, fmt.Errorf("unknown field %q", kv[0])
		}
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}
