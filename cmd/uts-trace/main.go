// Command uts-trace visualizes the rapid-diffusion mechanism of Section
// 3.3.2: it runs a simulated search while sampling the number of "work
// sources" (PEs with stealable surplus) over virtual time, then prints the
// curve as a text chart. Comparing -alg upc-term (steal-one) against
// upc-term-rapdif or upc-distmem (steal-half) shows work sources
// multiplying far faster under steal-half — the effect the paper relies on
// to cut victim-discovery costs.
//
// Example:
//
//	uts-trace -tree bench-medium -pes 64 -alg upc-term
//	uts-trace -tree bench-medium -pes 64 -alg upc-distmem
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/uts"
)

func main() {
	tree := flag.String("tree", "bench-medium", "named sample tree")
	alg := flag.String("alg", string(core.UPCDistMem), "algorithm to trace")
	pes := flag.Int("pes", 64, "simulated processing elements")
	chunk := flag.Int("chunk", 8, "steal granularity k (nodes)")
	profile := flag.String("profile", "kittyhawk", "machine profile")
	buckets := flag.Int("buckets", 40, "time buckets in the chart")
	width := flag.Int("width", 50, "chart width in characters")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (open in ui.perfetto.dev)")
	timeline := flag.Bool("timeline", false, "print the merged steal-protocol event timeline")
	hist := flag.Bool("hist", false, "print the steal-protocol latency histograms")
	flag.Parse()

	sp := uts.ByName(*tree)
	if sp == nil {
		fmt.Fprintf(os.Stderr, "unknown tree %q\n", *tree)
		os.Exit(2)
	}
	model, ok := pgas.Profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	// First a quick untraced run to size the sampling interval so the
	// chart covers the whole makespan at the requested resolution.
	pre, err := des.Run(sp, des.Config{Algorithm: core.Algorithm(*alg), PEs: *pes, Chunk: *chunk, Model: model})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	interval := pre.Elapsed / time.Duration(*buckets*4)
	if interval <= 0 {
		interval = time.Microsecond
	}
	cfg := des.Config{Algorithm: core.Algorithm(*alg), PEs: *pes, Chunk: *chunk, Model: model}
	var tracer *obs.Tracer
	if *traceOut != "" || *timeline || *hist {
		tracer = obs.NewVirtual(*pes, 0)
		cfg.Tracer = tracer
	}
	res, trace, err := des.RunTraced(sp, cfg, interval)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("work sources over virtual time: %s, %d PEs, chunk %d, %s\n",
		*alg, *pes, *chunk, model.Name)
	fmt.Printf("makespan %v, rate %.1fM nodes/s, efficiency %.1f%%\n\n",
		res.Elapsed.Round(time.Microsecond), res.Rate()/1e6, 100*res.Efficiency())

	// Bucket the samples and draw one bar per bucket (peak value in the
	// bucket, scaled to the PE count).
	samples := trace.Samples
	if len(samples) == 0 {
		fmt.Println("(no samples)")
		return
	}
	span := samples[len(samples)-1].T
	if span <= 0 {
		span = interval
	}
	peaks := make([]int, *buckets)
	for _, s := range samples {
		b := int(int64(s.T) * int64(*buckets) / (int64(span) + 1))
		if s.WorkSources > peaks[b] {
			peaks[b] = s.WorkSources
		}
	}
	for b, v := range peaks {
		bar := v * *width / *pes
		if v > 0 && bar == 0 {
			bar = 1
		}
		fmt.Printf("%8v |%s%s| %d\n",
			(span * time.Duration(b) / time.Duration(*buckets)).Round(time.Microsecond),
			strings.Repeat("█", bar), strings.Repeat(" ", *width-bar), v)
	}
	if t := trace.TimeToSources(*pes / 4); t >= 0 {
		fmt.Printf("\nreached %d work sources (P/4) at %v\n", *pes/4, t.Round(time.Microsecond))
	} else {
		fmt.Printf("\nnever reached %d work sources (P/4)\n", *pes/4)
	}
	if *hist && res.Obs != nil {
		fmt.Print("\n" + res.Obs.String())
	}
	if *timeline {
		if err := obs.WriteTimeline(os.Stdout, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := obs.WriteChromeTraceFile(*traceOut, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}
