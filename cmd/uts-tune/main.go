// Command uts-tune finds the chunk-size sweet spot (Section 4.2.1) for a
// given machine profile and processor count by simulated sweep — answering
// in seconds the tuning question that needs machine-hours on a testbed.
//
// Example:
//
//	uts-tune -tree bench-medium -pes 256 -profile topsail
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/pgas"
	"repro/internal/policy"
	"repro/internal/uts"
)

func main() {
	tree := flag.String("tree", "bench-medium", "named sample tree")
	alg := flag.String("alg", string(core.UPCDistMem), "algorithm to tune")
	pes := flag.Int("pes", 64, "simulated processing elements")
	profile := flag.String("profile", "kittyhawk", "machine profile")
	engine := flag.String("engine", des.EngineBatched, "simulation engine: batched, legacy")
	shards := flag.Int("shards", 1, "parallel dispatcher shards per sweep point (0 = one per available core; 1 = sequential engine)")
	adapt := flag.Bool("adapt", false, "after the sweep, run the closed-loop controller from the worst candidate and compare it against the best fixed chunk")
	flag.Parse()

	sp := uts.ByName(*tree)
	if sp == nil {
		fmt.Fprintf(os.Stderr, "unknown tree %q\n", *tree)
		os.Exit(2)
	}
	model, ok := pgas.Profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "-shards %d out of range (want 0 for auto or a positive count)\n", *shards)
		os.Exit(2)
	}
	nshards := *shards
	if nshards == 0 {
		nshards = runtime.GOMAXPROCS(0)
	}

	cfg := des.Config{
		Algorithm: core.Algorithm(*alg), PEs: *pes, Model: model, Engine: *engine,
	}
	if nshards > 1 {
		cfg.Shards = nshards
	}
	best, results, err := des.TuneChunk(sp, cfg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("chunk-size sweep: %s on %d simulated PEs (%s profile), %s\n\n",
		*alg, *pes, model.Name, sp.Name)
	chunks := make([]int, 0, len(results))
	for k := range results {
		chunks = append(chunks, k)
	}
	sort.Ints(chunks)
	fmt.Printf("%7s %10s %11s %9s\n", "chunk", "Mnodes/s", "efficiency", "of-peak")
	peak := results[best].Rate()
	for _, k := range chunks {
		res := results[k]
		marker := ""
		if k == best {
			marker = "  <- best"
		}
		fmt.Printf("%7d %10.2f %10.1f%% %8.0f%%%s\n",
			k, res.Rate()/1e6, 100*res.Efficiency(), 100*res.Rate()/peak, marker)
	}

	if *adapt {
		// Start the controller from the sweep's worst candidate — the
		// harshest recovery test — and report where it lands relative to
		// the sweep's peak.
		worst := best
		for _, k := range chunks {
			if results[k].Rate() < results[worst].Rate() {
				worst = k
			}
		}
		acfg := cfg
		acfg.Chunk = worst
		acfg.Adapt = &policy.Config{}
		res, err := des.Run(sp, acfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nadaptive from worst (k=%d): %.2f Mnodes/s = %.0f%% of the best fixed chunk\n  %s\n",
			worst, res.Rate()/1e6, 100*res.Rate()/peak, res.Policy)
	}
}
