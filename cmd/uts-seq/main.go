// Command uts-seq measures the sequential exploration rate (the Section 4.1
// baseline) over the named sample trees, or over one tree given by -tree.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/uts"
)

func main() {
	tree := flag.String("tree", "", "run only the named tree (default: all samples)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-tree time budget")
	flag.Parse()

	specs := uts.SampleTrees
	if *tree != "" {
		sp := uts.ByName(*tree)
		if sp == nil {
			fmt.Fprintf(os.Stderr, "unknown tree %q\n", *tree)
			os.Exit(2)
		}
		specs = []*uts.Spec{sp}
	}
	fmt.Printf("%-14s %-6s %12s %12s %8s %10s\n", "tree", "rng", "nodes", "leaves", "maxdep", "Mnodes/s")
	for _, sp := range specs {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		c, err := uts.SearchSequentialCtx(ctx, sp)
		cancel()
		status := ""
		if err != nil {
			status = " (partial: " + err.Error() + ")"
		}
		fmt.Printf("%-14s %-6s %12d %12d %8d %10.2f%s\n",
			sp.Name, sp.Stream().Name(), c.Nodes, c.Leaves, c.MaxDepth, c.Rate()/1e6, status)
	}
}
