// Command uts-sim runs one simulated cluster-scale search and prints a
// UTS-style report. It is the exploratory companion of cmd/uts-bench: where
// uts-bench regenerates whole figures, uts-sim runs a single point.
//
// Example:
//
//	uts-sim -tree bench-medium -alg upc-distmem -pes 256 -chunk 16 -profile kittyhawk
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/uts"
)

func main() {
	tree := flag.String("tree", "bench-medium", "named sample tree")
	alg := flag.String("alg", string(core.UPCDistMem), "algorithm: "+algList())
	pes := flag.Int("pes", 64, "simulated processing elements")
	chunk := flag.Int("chunk", 16, "steal granularity k (nodes)")
	profile := flag.String("profile", "kittyhawk", "machine profile: sharedmem, altix, kittyhawk, topsail")
	poll := flag.Int("poll", 8, "mpi-ws polling interval (nodes)")
	seed := flag.Int64("seed", 0, "probe-order seed")
	verbose := flag.Bool("verbose", false, "print the per-thread counter table")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (open in ui.perfetto.dev)")
	timeline := flag.Bool("timeline", false, "print the merged steal-protocol event timeline")
	hist := flag.Bool("hist", false, "record protocol events and fold latency histograms into the summary")
	ring := flag.Int("ring", 0, "per-PE trace ring capacity in events (0 = default)")
	flag.Parse()

	sp := uts.ByName(*tree)
	if sp == nil {
		fmt.Fprintf(os.Stderr, "unknown tree %q\n", *tree)
		os.Exit(2)
	}
	model, ok := pgas.Profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	cfg := des.Config{
		Algorithm:    core.Algorithm(*alg),
		PEs:          *pes,
		Chunk:        *chunk,
		Model:        model,
		PollInterval: *poll,
		Seed:         *seed,
	}
	var tracer *obs.Tracer
	if *traceOut != "" || *timeline || *hist {
		tracer = obs.NewVirtual(*pes, *ring)
		cfg.Tracer = tracer
	}
	res, err := des.Run(sp, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("tree=%s alg=%s pes=%d chunk=%d profile=%s\n", sp.Name, *alg, *pes, *chunk, *profile)
	fmt.Print(res.Summary())
	if *verbose {
		fmt.Print(res.PerThreadTable())
	}
	if *timeline {
		if err := obs.WriteTimeline(os.Stdout, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := obs.WriteChromeTraceFile(*traceOut, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}

func algList() string {
	names := make([]string, len(core.Algorithms))
	for i, a := range core.Algorithms {
		names[i] = string(a)
	}
	return strings.Join(names, ", ")
}
