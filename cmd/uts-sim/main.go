// Command uts-sim runs one simulated cluster-scale search and prints a
// UTS-style report. It is the exploratory companion of cmd/uts-bench: where
// uts-bench regenerates whole figures, uts-sim runs a single point.
//
// Example:
//
//	uts-sim -tree bench-medium -alg upc-distmem -pes 256 -chunk 16 -profile kittyhawk
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/pgas"
	"repro/internal/policy"
	"repro/internal/uts"
)

func main() {
	tree := flag.String("tree", "bench-medium", "named sample tree")
	alg := flag.String("alg", string(core.UPCDistMem), "algorithm: "+algList())
	pes := flag.Int("pes", 64, "simulated processing elements (1..1048576)")
	chunk := flag.Int("chunk", 16, "steal granularity k (nodes)")
	adapt := flag.Bool("adapt", false, "adapt chunk/steal-half/poll per PE at runtime from steal feedback (virtual-time windows; deterministic)")
	profile := flag.String("profile", "kittyhawk", "machine profile: sharedmem, altix, kittyhawk, topsail")
	poll := flag.Int("poll", 8, "mpi-ws polling interval (nodes)")
	seed := flag.Int64("seed", 0, "probe-order seed")
	verbose := flag.Bool("verbose", false, "print the per-thread counter table")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (open in ui.perfetto.dev)")
	timeline := flag.Bool("timeline", false, "print the merged steal-protocol event timeline")
	hist := flag.Bool("hist", false, "record protocol events and fold latency histograms into the summary")
	ring := flag.Int("ring", 0, "per-PE trace ring capacity in events (0 = default)")
	engine := flag.String("engine", des.EngineBatched, "simulation engine: batched, legacy")
	shards := flag.Int("shards", 1, "parallel dispatcher shards (0 = one per available core; 1 = sequential engine); results are identical at any count")
	progress := flag.Duration("progress", 0, "emit a wall-clock heartbeat to stderr every interval (e.g. 10s; 0 = off)")
	live := flag.Duration("live", 0, "print a live progress line (rates, virtual time, steal p95) to stderr every interval (e.g. 1s; 0 = off)")
	flag.Parse()

	sp := uts.ByName(*tree)
	if sp == nil {
		fmt.Fprintf(os.Stderr, "unknown tree %q\n", *tree)
		os.Exit(2)
	}
	if !validAlg(*alg) {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q (valid: %s)\n", *alg, algList())
		os.Exit(2)
	}
	if *pes < 1 || *pes > maxPEs {
		fmt.Fprintf(os.Stderr, "-pes %d out of range [1, %d]\n", *pes, maxPEs)
		os.Exit(2)
	}
	model, ok := pgas.Profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "-shards %d out of range (want 0 for auto or a positive count)\n", *shards)
		os.Exit(2)
	}
	nshards := *shards
	if nshards == 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	cfg := des.Config{
		Algorithm:    core.Algorithm(*alg),
		PEs:          *pes,
		Chunk:        *chunk,
		Model:        model,
		PollInterval: *poll,
		Seed:         *seed,
		Engine:       *engine,
	}
	if nshards > 1 {
		cfg.Shards = nshards
	}
	if *adapt {
		cfg.Adapt = &policy.Config{}
	}
	var tracer *obs.Tracer
	if *traceOut != "" || *timeline || *hist || *live > 0 {
		tracer = obs.NewVirtual(*pes, *ring)
		cfg.Tracer = tracer
	}
	var stopBeat chan struct{}
	if *progress > 0 {
		stopBeat = heartbeat(*progress)
	}
	var sampler *obs.Sampler
	if *live > 0 {
		sampler = obs.NewSampler(tracer)
		sampler.OnSample(func(st obs.LiveStats) { fmt.Fprintln(os.Stderr, st.Line()) })
		sampler.Start(*live)
	}
	start := time.Now()
	res, info, err := des.RunInfo(sp, cfg)
	wall := time.Since(start)
	sampler.Stop() // nil-safe; takes and prints the final sample
	if stopBeat != nil {
		close(stopBeat)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	shardNote := ""
	if info.Shards > 0 {
		shardNote = fmt.Sprintf(" shards=%d lookahead=%v", info.Shards, info.Lookahead)
	}
	fmt.Printf("tree=%s alg=%s pes=%d chunk=%d profile=%s engine=%s%s events=%d wall=%v\n",
		sp.Name, *alg, *pes, *chunk, *profile, info.Engine, shardNote, info.Events, wall.Round(time.Millisecond))
	fmt.Print(res.Summary())
	if *verbose {
		fmt.Print(res.PerThreadTable())
	}
	if *timeline {
		if err := obs.WriteTimeline(os.Stdout, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := obs.WriteChromeTraceFile(*traceOut, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}

// maxPEs bounds -pes: above this, memory for per-PE state (goroutine
// stacks, counters, trace lanes) exceeds what a single host handles. The
// sharded engine's horizon protocol keeps per-PE engine state constant, so
// the bound is set by goroutine stacks alone: ~1M PEs fits in a few GB.
const maxPEs = 1 << 20

func validAlg(name string) bool {
	for _, a := range simulatable() {
		if string(a) == name {
			return true
		}
	}
	return false
}

// simulatable lists every algorithm the simulator accepts: the paper's
// five plus the post-paper extensions. Sequential is excluded (simulate
// it as 1 PE of any algorithm).
func simulatable() []core.Algorithm {
	return append(append([]core.Algorithm{}, core.Algorithms...), core.Extensions...)
}

// heartbeat prints elapsed wall time to stderr every interval until the
// returned channel is closed, so long sweeps show liveness.
func heartbeat(interval time.Duration) chan struct{} {
	stop := make(chan struct{})
	start := time.Now()
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "... %v elapsed\n", time.Since(start).Round(time.Second))
			}
		}
	}()
	return stop
}

func algList() string {
	algs := simulatable()
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = string(a)
	}
	return strings.Join(names, ", ")
}
