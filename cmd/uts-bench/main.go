// Command uts-bench regenerates the paper's tables and figures. Each
// experiment (see DESIGN.md's per-experiment index) prints a text table;
// -csv additionally writes one CSV per experiment for plotting.
//
// Examples:
//
//	uts-bench                      # all experiments at quick scale
//	uts-bench -exp E2 -scale full  # Figure 4 at the largest scale
//	uts-bench -list                # what is available
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (E1..E7, A1..A3) or \"all\"")
	scale := flag.String("scale", "quick", "smoke, quick or full")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files (optional)")
	jsonOut := flag.String("json", "", "write all experiment tables to this file as JSON (optional)")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle to reachable allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *mutexProfile != "" {
		// Sample every mutex-contention event: the steal protocol's hot
		// paths are lock-free, so contention is rare enough to keep whole.
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProfile)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1) // nanoseconds; 1 = every blocking event
		defer writeProfile("block", *blockProfile)
	}

	if *list {
		for _, e := range bench.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Paper)
		}
		return
	}
	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	exps := bench.All
	if *exp != "all" {
		e := bench.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		exps = []bench.Experiment{*e}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("# UTS load-balancing reproduction — scale=%s\n\n", sc)
	var tables []*bench.Table
	for _, e := range exps {
		start := time.Now()
		tab, err := e.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		tab.Notes = append(tab.Notes, fmt.Sprintf("scale=%s, generated in %v", sc, time.Since(start).Round(time.Millisecond)))
		tab.Fprint(os.Stdout)
		tables = append(tables, tab)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut != "" {
		doc := struct {
			Scale       string         `json:"scale"`
			GeneratedAt string         `json:"generated_at"`
			Go          string         `json:"go"`
			Experiments []*bench.Table `json:"experiments"`
		}{
			Scale:       sc.String(),
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Go:          runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			Experiments: tables,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("json results written to %s\n", *jsonOut)
	}
}

// writeProfile dumps a named runtime/pprof profile (mutex, block, ...)
// to path. Profiling rates must have been set before the run.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	p := pprof.Lookup(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "no %s profile\n", name)
		return
	}
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
