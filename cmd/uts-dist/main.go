// Command uts-dist runs the distributed-memory work-stealing search across
// real operating-system processes connected by TCP (package
// internal/cluster) — the genuinely distributed deployment of the paper's
// Section 3.3 algorithm.
//
// Convenience launcher (spawns ranks 1..N-1 as child processes of itself):
//
//	uts-dist -launch 4 -tree bench-small -chunk 8
//
// Manual deployment, one process per host/core:
//
//	uts-dist -rank 0 -ranks 4 -coord 10.0.0.1:7777 -tree bench-small   # on host A
//	uts-dist -rank 1 -ranks 4 -coord 10.0.0.1:7777 -tree bench-small   # on host B
//	...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/uts"
)

func main() {
	os.Exit(run())
}

func run() int {
	launch := flag.Int("launch", 0, "spawn this many ranks locally (rank 0 in-process, others as children)")
	rank := flag.Int("rank", 0, "this process's rank")
	ranks := flag.Int("ranks", 1, "total number of ranks")
	coord := flag.String("coord", "127.0.0.1:17717", "coordinator address (rank 0 listens, others dial)")
	tree := flag.String("tree", "bench-small", "named sample tree")
	chunk := flag.Int("chunk", 16, "steal granularity k (nodes)")
	seed := flag.Int64("seed", 0, "probe-order seed")
	traceOut := flag.String("trace", "", "write Chrome trace_event JSON per rank (rank 0 to the path, rank N to path.rankN)")
	timeline := flag.Bool("timeline", false, "print rank 0's steal-protocol event timeline")
	hist := flag.Bool("hist", false, "record protocol events and fold rank 0's histograms into the summary")
	flag.Parse()

	sp := uts.ByName(*tree)
	if sp == nil {
		fmt.Fprintf(os.Stderr, "unknown tree %q\n", *tree)
		return 2
	}

	if *launch > 0 {
		return launchLocal(*launch, *coord, *tree, *chunk, *seed, *traceOut, *timeline, *hist, sp)
	}

	cfg := cluster.Config{
		Rank: *rank, Ranks: *ranks, Coord: *coord,
		Spec: sp, Chunk: *chunk, Seed: *seed,
	}
	var tracer *obs.Tracer
	if *traceOut != "" || *timeline || *hist {
		tracer = obs.New(*ranks, 0)
		cfg.Tracer = tracer
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if res != nil { // rank 0
		fmt.Printf("tree=%s ranks=%d chunk=%d\n", sp.String(), *ranks, *chunk)
		fmt.Print(res.Summary())
		if *timeline {
			if err := obs.WriteTimeline(os.Stdout, tracer); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
	}
	if *traceOut != "" {
		path := rankTracePath(*traceOut, *rank)
		if err := obs.WriteChromeTraceFile(path, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *rank == 0 {
			fmt.Printf("trace written to %s\n", path)
		}
	}
	return 0
}

// rankTracePath places rank 0's trace at the requested path and every
// other rank's alongside it with a .rankN suffix.
func rankTracePath(path string, rank int) string {
	if rank == 0 {
		return path
	}
	return fmt.Sprintf("%s.rank%d", path, rank)
}

// launchLocal runs rank 0 in-process and spawns ranks 1..n-1 as child
// processes of this binary, all against the same coordinator address.
func launchLocal(n int, coord, tree string, chunk int, seed int64, traceOut string, timeline, hist bool, sp *uts.Spec) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	children := make([]*exec.Cmd, 0, n-1)
	for r := 1; r < n; r++ {
		args := []string{
			"-rank", fmt.Sprint(r),
			"-ranks", fmt.Sprint(n),
			"-coord", coord,
			"-tree", tree,
			"-chunk", fmt.Sprint(chunk),
			"-seed", fmt.Sprint(seed),
		}
		if traceOut != "" {
			args = append(args, "-trace", traceOut)
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "spawn rank %d: %v\n", r, err)
			return 1
		}
		children = append(children, cmd)
	}

	cfg := cluster.Config{
		Rank: 0, Ranks: n, Coord: coord,
		Spec: sp, Chunk: chunk, Seed: seed,
	}
	var tracer *obs.Tracer
	if traceOut != "" || timeline || hist {
		tracer = obs.New(n, 0)
		cfg.Tracer = tracer
	}
	res, err := cluster.Run(cfg)
	status := 0
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		status = 1
	}
	for r, cmd := range children {
		if werr := cmd.Wait(); werr != nil {
			fmt.Fprintf(os.Stderr, "rank %d: %v\n", r+1, werr)
			status = 1
		}
	}
	if res != nil {
		fmt.Printf("tree=%s ranks=%d chunk=%d (local processes)\n", sp.String(), n, chunk)
		fmt.Print(res.Summary())
		if timeline {
			if err := obs.WriteTimeline(os.Stdout, tracer); err != nil {
				fmt.Fprintln(os.Stderr, err)
				status = 1
			}
		}
	}
	if traceOut != "" {
		if err := obs.WriteChromeTraceFile(traceOut, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			status = 1
		} else {
			fmt.Printf("trace written to %s (plus .rankN files)\n", traceOut)
		}
	}
	return status
}
